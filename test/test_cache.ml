(* Content-addressed analysis cache: a warm hit serves exactly the bytes
   the cold run produced; any change to source, config or analyzer
   version moves the address; a corrupted or truncated entry is a miss
   that surfaces a structured [Fault] and never a wrong report. *)

module Pipeline = Nadroid_core.Pipeline
module Cache = Nadroid_core.Cache
module Fault = Nadroid_core.Fault
module Corpus = Nadroid_corpus.Corpus

(* each test gets its own directory under the test cwd (inside _build) *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "_cache_test.%d.%d" (Unix.getpid ()) !n

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let app () =
  match Corpus.find "Zxing" with Some a -> a | None -> Alcotest.fail "no Zxing"

let check_entry_equal msg (a : Cache.entry) (b : Cache.entry) =
  Alcotest.(check int) (msg ^ ": potential") a.Cache.e_potential b.Cache.e_potential;
  Alcotest.(check int) (msg ^ ": after-sound") a.Cache.e_after_sound b.Cache.e_after_sound;
  Alcotest.(check int) (msg ^ ": after-unsound") a.Cache.e_after_unsound b.Cache.e_after_unsound;
  (* byte identity of the rendered report is the whole point *)
  Alcotest.(check string) (msg ^ ": report bytes") a.Cache.e_report b.Cache.e_report

let warm_hit_is_byte_identical () =
  with_dir (fun dir ->
      let a = app () in
      let cold, o1 = Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source in
      (match o1 with Cache.Miss -> () | _ -> Alcotest.fail "first run must miss");
      let warm, o2 = Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source in
      (match o2 with Cache.Hit -> () | _ -> Alcotest.fail "second run must hit");
      check_entry_equal "warm = cold" cold warm;
      (* and both match the uncached pipeline *)
      let direct =
        Cache.entry_of_result (Pipeline.analyze ~file:a.Corpus.name a.Corpus.source)
      in
      check_entry_equal "cached = direct" direct cold)

let source_edit_busts () =
  let a = app () in
  let config = Pipeline.default_config in
  let k1 = Cache.key ~config a.Corpus.source in
  let k2 = Cache.key ~config (a.Corpus.source ^ "\n// touched\n") in
  Alcotest.(check bool) "edited source gets a new address" true (k1 <> k2)

let config_change_busts () =
  let a = app () in
  let base = Cache.key ~config:Pipeline.default_config a.Corpus.source in
  let variants =
    [
      ("k", { Pipeline.default_config with Pipeline.k = 1 });
      ("filters", Pipeline.sound_only_config);
      ( "solver",
        { Pipeline.default_config with Pipeline.solver = Nadroid_analysis.Pta.Reference } );
      ( "budget",
        {
          Pipeline.default_config with
          Pipeline.budgets = { Pipeline.no_budgets with Pipeline.pta_steps = Some 7 };
        } );
    ]
  in
  List.iter
    (fun (what, config) ->
      Alcotest.(check bool)
        (what ^ " change gets a new address")
        true
        (Cache.key ~config a.Corpus.source <> base))
    variants

let version_bump_busts () =
  let a = app () in
  let config = Pipeline.default_config in
  Alcotest.(check bool)
    "version bump gets a new address" true
    (Cache.key ~config a.Corpus.source
    <> Cache.key ~version:(Cache.version ^ "'") ~config a.Corpus.source)

(* Overwrite an entry's file with [mangle applied to its bytes], then
   check [find] reports Corrupt (an Internal fault, never a wrong entry)
   and [analyze] still returns the correct result and repairs the
   entry. *)
let corruption_is_a_surfaced_miss mangle () =
  with_dir (fun dir ->
      let a = app () in
      let cold, _ = Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source in
      let k = Cache.key ~config:Pipeline.default_config a.Corpus.source in
      let p = Filename.concat dir (k ^ ".cache") in
      let raw =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin p in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (mangle raw));
      (match Cache.find ~dir k with
      | None, Cache.Corrupt (Fault.Internal _) -> ()
      | Some _, _ -> Alcotest.fail "corrupt entry must not decode"
      | None, (Cache.Hit | Cache.Miss | Cache.Corrupt _) ->
          Alcotest.fail "expected a Corrupt outcome carrying an Internal fault");
      let again, o = Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source in
      (match o with
      | Cache.Corrupt (Fault.Internal _) -> ()
      | _ -> Alcotest.fail "analyze must surface the corruption");
      check_entry_equal "re-analysis over corrupt entry" cold again;
      (* the corrupt entry was replaced: next lookup is a clean hit *)
      match Cache.find ~dir k with
      | Some e, Cache.Hit -> check_entry_equal "repaired entry" cold e
      | _ -> Alcotest.fail "entry not repaired after corruption")

let truncate raw = String.sub raw 0 (String.length raw / 2)

let flip_payload_byte raw =
  let b = Bytes.of_string raw in
  let i = String.length raw - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let bad_header _raw = "not a cache entry\njunk"

(* Concurrent stores of the same key from several domains: a pid-only
   temp-file name is shared by every domain of the process, so racing
   stores used to interleave their writes into one temp file and publish
   a garbled entry. With per-store unique temp names the entry must stay
   intact (Hit, byte-identical) at every point, never Corrupt. *)
let concurrent_stores_never_corrupt () =
  with_dir (fun dir ->
      let a = app () in
      let e =
        Cache.entry_of_result (Pipeline.analyze ~file:a.Corpus.name a.Corpus.source)
      in
      let k = Cache.key ~config:Pipeline.default_config a.Corpus.source in
      let corrupted = Atomic.make 0 in
      let worker () =
        for _ = 1 to 25 do
          Cache.store ~dir k e;
          match Cache.find ~dir k with
          | Some _, Cache.Hit | None, Cache.Miss -> ()
          | _, Cache.Corrupt _ -> Atomic.incr corrupted
          | _ -> ()
        done
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains;
      Alcotest.(check int) "no store/find observed a corrupt entry" 0 (Atomic.get corrupted);
      match Cache.find ~dir k with
      | Some got, Cache.Hit -> check_entry_equal "entry intact after the race" e got
      | _ -> Alcotest.fail "expected an intact hit after concurrent stores")

(* LRU eviction: with explicit mtimes, evict removes oldest-first until
   the cap holds, leaves recently-used entries alone, and skips foreign
   files. A find hit refreshes an entry's mtime so it survives. *)
let lru_eviction () =
  with_dir (fun dir ->
      let a = app () in
      let e =
        Cache.entry_of_result (Pipeline.analyze ~file:a.Corpus.name a.Corpus.source)
      in
      let keys = List.init 4 (fun i -> Printf.sprintf "%032d" i) in
      List.iter (fun k -> Cache.store ~dir k e) keys;
      let size = (Unix.stat (Cache.path ~dir (List.hd keys))).Unix.st_size in
      (* oldest first: key i gets mtime i (seconds after the epoch) *)
      List.iteri
        (fun i k ->
          let t = float_of_int (i + 1) in
          Unix.utimes (Cache.path ~dir k) t t)
        keys;
      (* a foreign file must neither count toward the size nor be removed *)
      let foreign = Filename.concat dir "README" in
      let oc = open_out_bin foreign in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc "not a cache entry");
      Alcotest.(check int) "dir_bytes counts only entries" (4 * size) (Cache.dir_bytes ~dir);
      (* a hit on the oldest entry touches it to "now": it must survive *)
      (match Cache.find ~dir (List.hd keys) with
      | Some _, Cache.Hit -> ()
      | _ -> Alcotest.fail "expected a hit on entry 0");
      Alcotest.(check bool)
        "hit refreshed the mtime" true
        ((Unix.stat (Cache.path ~dir (List.hd keys))).Unix.st_mtime > 4.0);
      (* cap at two entries: the two stale ones (keys 1 and 2) must go *)
      let removed = Cache.evict ~dir ~max_bytes:(2 * size) in
      Alcotest.(check int) "two entries evicted" 2 removed;
      Alcotest.(check int) "cap holds" (2 * size) (Cache.dir_bytes ~dir);
      List.iteri
        (fun i k ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %d %s" i (if i = 1 || i = 2 then "evicted" else "kept"))
            (not (i = 1 || i = 2))
            (Sys.file_exists (Cache.path ~dir k)))
        keys;
      Alcotest.(check bool) "foreign file untouched" true (Sys.file_exists foreign);
      Sys.remove foreign)

(* The acceptance-criterion shape: a full corpus batch under
   --cache-max-bytes keeps the directory at or below the cap after every
   store (the uncapped batch is ~80 KB, so a 32 KB cap forces eviction
   partway through). *)
let eviction_caps_corpus_batch () =
  with_dir (fun dir ->
      let cap = 32 * 1024 in
      List.iter
        (fun (a : Corpus.app) ->
          ignore (Cache.analyze ~max_bytes:cap ~dir ~file:a.Corpus.name a.Corpus.source);
          Alcotest.(check bool)
            (a.Corpus.name ^ ": cache at or below the cap")
            true
            (Cache.dir_bytes ~dir <= cap))
        (Lazy.force Corpus.all);
      Alcotest.(check bool) "eviction ran (not every entry survived)" true
        (List.length (Sys.readdir dir |> Array.to_list) < List.length (Lazy.force Corpus.all)))

(* metrics JSON (the --json observability satellite): solver work
   counters are present and positive on a real analysis *)
let metrics_json_has_solver_counters () =
  let a = app () in
  let t = Pipeline.analyze ~file:a.Corpus.name a.Corpus.source in
  let json = Nadroid_core.Report.metrics_to_json ~name:a.Corpus.name t.Pipeline.metrics in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (key ^ " present in metrics json")
        true
        (Astring.String.is_infix ~affix:(Printf.sprintf "\"%s\":" key) json))
    [ "pta_visits"; "pta_steps" ];
  Alcotest.(check bool) "visits counted" true (t.Pipeline.metrics.Pipeline.m_pta_visits > 0);
  Alcotest.(check bool) "steps counted" true (t.Pipeline.metrics.Pipeline.m_pta_steps > 0)

let suite =
  [
    ( "cache",
      [
        Alcotest.test_case "warm hit is byte-identical to cold run" `Quick
          warm_hit_is_byte_identical;
        Alcotest.test_case "source edit busts the address" `Quick source_edit_busts;
        Alcotest.test_case "config change busts the address" `Quick config_change_busts;
        Alcotest.test_case "version bump busts the address" `Quick version_bump_busts;
        Alcotest.test_case "truncated entry = surfaced miss" `Quick
          (corruption_is_a_surfaced_miss truncate);
        Alcotest.test_case "bit-flipped entry = surfaced miss" `Quick
          (corruption_is_a_surfaced_miss flip_payload_byte);
        Alcotest.test_case "foreign file = surfaced miss" `Quick
          (corruption_is_a_surfaced_miss bad_header);
        Alcotest.test_case "concurrent same-key stores never corrupt" `Quick
          concurrent_stores_never_corrupt;
        Alcotest.test_case "LRU eviction enforces the size cap" `Quick lru_eviction;
        Alcotest.test_case "corpus batch stays under --cache-max-bytes" `Quick
          eviction_caps_corpus_batch;
        Alcotest.test_case "metrics json carries solver work counters" `Quick
          metrics_json_has_solver_counters;
      ] );
  ]
