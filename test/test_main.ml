let () =
  (* the test binary hosts supervised workers (crash-survival tests
     fork+exec it): in a marked child this serves requests and exits *)
  Nadroid_core.Supervise.worker_check ();
  Alcotest.run "nadroid"
    (Test_lang.suite @ Test_frontend.suite @ Test_datalog.suite @ Test_ir.suite @ Test_android.suite @ Test_analysis.suite @ Test_core.suite @ Test_dynamic.suite @ Test_corpus.suite @ Test_deva.suite @ Test_energy.suite @ Test_more.suite @ Test_props.suite @ Test_robustness.suite @ Test_differential.suite @ Test_cache.suite @ Test_serve.suite @ Test_crash.suite @ Test_fleet.suite)
