(* Second-layer coverage: differential testing of the interpreter against
   a reference evaluator, cancellation semantics in the simulator,
   multi-pair warning filtering, DOT export, and corpus-wide structural
   invariants of the analyses. *)

open Nadroid_ir
open Nadroid_dynamic
module Spec = Nadroid_corpus.Spec
module Gen = Nadroid_corpus.Gen
module Pipeline = Nadroid_core.Pipeline

let prog_of src = Prog.of_source ~file:"t" src

let run_app src script =
  let prog = prog_of src in
  let w = World.create prog in
  List.iter
    (fun prefix ->
      match
        List.find_opt
          (fun a ->
            let s = Fmt.str "%a" World.pp_action a in
            String.length s >= String.length prefix
            && String.equal (String.sub s 0 (String.length prefix)) prefix)
          (World.enabled_actions w)
      with
      | Some a -> World.perform w a
      | None -> Alcotest.failf "no enabled action matching %s" prefix)
    script;
  w

(* -- differential interpreter testing ----------------------------------- *)

(* Integer expressions with a reference OCaml evaluation. *)
type iexpr = Lit of int | Add of iexpr * iexpr | Sub of iexpr * iexpr | Mul of iexpr * iexpr

let rec ieval = function
  | Lit n -> n
  | Add (a, b) -> ieval a + ieval b
  | Sub (a, b) -> ieval a - ieval b
  | Mul (a, b) -> ieval a * ieval b

let rec iprint = function
  | Lit n -> string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (iprint a) (iprint b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (iprint a) (iprint b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (iprint a) (iprint b)

let gen_iexpr : iexpr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n = 0 then map (fun i -> Lit (i mod 100)) small_int
         else
           oneof
             [
               map (fun i -> Lit (i mod 100)) small_int;
               map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2));
             ])

let interp_matches_reference =
  QCheck2.Test.make ~name:"interpreter agrees with a reference evaluator" ~count:150 gen_iexpr
    (fun e ->
      let src =
        Printf.sprintf
          "class A extends Activity { method void onCreate() { log(i2s(%s)); } }" (iprint e)
      in
      match Nadroid_lang.Diag.protect (fun () -> run_app src [ "lifecycle:A.onCreate" ]) with
      | Error _ -> false
      | Ok w -> World.logs w = [ string_of_int (ieval e) ])

(* -- cancellation semantics --------------------------------------------- *)

let cancellation_tests =
  [
    Alcotest.test_case "unbindService removes the connection" `Quick (fun () ->
        let w =
          run_app
            {|class A extends Activity { field ServiceConnection conn;
                method void onCreate() {
                  conn = new ServiceConnection() {
                    method void onServiceConnected(Binder b) { log("up"); }
                    method void onServiceDisconnected() { log("down"); }
                  };
                  this.bindService(conn);
                }
                method void onBackPressed() { this.unbindService(conn); } }|}
            [ "lifecycle:A.onCreate"; "lifecycle:A.onStart"; "ui:A.onBackPressed" ]
        in
        Alcotest.(check int) "no connections left" 0 (List.length w.World.connections));
    Alcotest.test_case "unregisterReceiver removes the receiver" `Quick (fun () ->
        let w =
          run_app
            {|class A extends Activity { field BroadcastReceiver r;
                method void onCreate() {
                  r = new BroadcastReceiver() { method void onReceive(Intent i) { log("rx"); } };
                  this.registerReceiver(r);
                  this.unregisterReceiver(r);
                } }|}
            [ "lifecycle:A.onCreate" ]
        in
        Alcotest.(check int) "no receivers" 0 (List.length w.World.receivers));
    Alcotest.test_case "asynctask cancel drops the pending completion" `Quick (fun () ->
        let w =
          run_app
            {|class A extends Activity { field AsyncTask task;
                method void onCreate() {
                  task = new AsyncTask() {
                    method void doInBackground() { log("bg"); }
                    method void onPostExecute() { log("done"); }
                  };
                  task.execute();
                }
                method void onBackPressed() { task.cancel(true); } }|}
            [
              "lifecycle:A.onCreate";
              "lifecycle:A.onStart";
              "thread:0" (* doInBackground runs, queues onPostExecute *);
              "ui:A.onBackPressed" (* cancel drops it *);
            ]
        in
        Alcotest.(check bool) "bg ran" true (List.mem "bg" (World.logs w));
        Alcotest.(check int) "completion dropped" 0 (List.length w.World.queue));
    Alcotest.test_case "removeUpdates stops location events" `Quick (fun () ->
        let w =
          run_app
            {|class A extends Activity { field LocationListener l;
                method void onCreate() {
                  l = new LocationListener() {
                    method void onLocationChanged(Location loc) { log("fix"); }
                  };
                  this.getLocationManager().requestLocationUpdates(l);
                  this.getLocationManager().removeUpdates(l);
                } }|}
            [ "lifecycle:A.onCreate" ]
        in
        Alcotest.(check int) "no listeners" 0 (List.length w.World.locations));
  ]

(* -- multi-pair warnings -------------------------------------------------- *)

let multi_pair_tests =
  [
    Alcotest.test_case "filters prune pairs, not whole warnings" `Quick (fun () ->
        (* one use races with one free from two distinct posted threads:
           one pair PHB-prunable (poster lineage), one not *)
        let src =
          {|class Data { method void op() { } }
            class A extends Activity { field Data d; field Handler h;
              method void onCreate() {
                d = new Data();
                h = new Handler() { method void handleMessage(Message m) { d = null; } };
              }
              method void onStart() {
                // poster: use before posting the free
                this.findViewById(1).setOnClickListener(new OnClickListener() {
                  method void onClick(View v) { d.op(); h.sendEmptyMessage(0); }
                });
                // an unrelated click also posts the same free
                this.findViewById(2).setOnClickListener(new OnClickListener() {
                  method void onClick(View v) { h.sendEmptyMessage(0); }
                });
              } }|}
        in
        let t = Pipeline.analyze ~file:"t" src in
        (* the use in onClick#1 races with handleMessage frees posted from
           both clicks: the pair through its own post is PHB-pruned, the
           pair through the other click's post survives *)
        match t.Pipeline.after_unsound with
        | [ w ] -> Alcotest.(check int) "one surviving pair" 1 (List.length w.Nadroid_core.Detect.w_pairs)
        | ws -> Alcotest.failf "expected one warning, got %d" (List.length ws));
  ]

(* -- misc ------------------------------------------------------------------ *)

let misc_tests =
  [
    Alcotest.test_case "DOT export covers every modeled thread" `Quick (fun () ->
        let app = Option.get (Nadroid_corpus.Corpus.find "ConnectBot") in
        let t = Pipeline.analyze ~file:"cb" app.Nadroid_corpus.Corpus.source in
        let dot = Nadroid_core.Threadify.to_dot t.Pipeline.threads in
        Alcotest.(check bool) "digraph" true (Astring.String.is_prefix ~affix:"digraph" dot);
        List.iter
          (fun th ->
            Alcotest.(check bool)
              (Printf.sprintf "node t%d present" th.Nadroid_core.Threadify.th_id)
              true
              (Astring.String.is_infix
                 ~affix:(Printf.sprintf "t%d [" th.Nadroid_core.Threadify.th_id)
                 dot))
          (Nadroid_core.Threadify.threads t.Pipeline.threads));
    Alcotest.test_case "count_loc ignores blank lines" `Quick (fun () ->
        Alcotest.(check int) "three" 3 (Pipeline.count_loc "a\n\n  \nb\nc\n"));
    Alcotest.test_case "count_loc ignores comment-only lines" `Quick (fun () ->
        (* a line holding nothing but a // comment is not code; trailing
           comments on code lines still count *)
        Alcotest.(check int) "two" 2
          (Pipeline.count_loc "// header\na\n  // indented comment\nb // trailing\n\n"));
    Alcotest.test_case "guided runs are deterministic per seed" `Quick (fun () ->
        let app = Option.get (Nadroid_corpus.Corpus.find "QKSMS") in
        let t = Pipeline.analyze ~file:"q" app.Nadroid_corpus.Corpus.source in
        match t.Pipeline.after_unsound with
        | w :: _ ->
            let o1 = Explorer.guided_run t.Pipeline.prog w ~seed:11 ~max_steps:25 in
            let o2 = Explorer.guided_run t.Pipeline.prog w ~seed:11 ~max_steps:25 in
            Alcotest.(check (list string)) "same trace"
              (List.map (Fmt.str "%a" World.pp_action) o1.Explorer.o_trace)
              (List.map (Fmt.str "%a" World.pp_action) o2.Explorer.o_trace)
        | [] -> Alcotest.fail "expected warnings");
  ]

(* -- corpus-wide structural invariants -------------------------------------- *)

let structural_invariant =
  QCheck2.Test.make ~name:"analysis invariants hold on every corpus app" ~count:27
    (QCheck2.Gen.oneofl (Lazy.force Nadroid_corpus.Corpus.all))
    (fun (app : Nadroid_corpus.Corpus.app) ->
      let t = Pipeline.analyze ~file:app.Nadroid_corpus.Corpus.name app.Nadroid_corpus.Corpus.source in
      let pta = t.Pipeline.pta in
      let n_inst = Nadroid_analysis.Pta.n_instances pta in
      let n_obj = Nadroid_analysis.Pta.n_objects pta in
      (* every edge endpoint is a valid instance *)
      List.for_all
        (fun (e : Nadroid_analysis.Pta.call_edge) ->
          e.Nadroid_analysis.Pta.ce_from >= 0
          && e.Nadroid_analysis.Pta.ce_from < n_inst
          && e.Nadroid_analysis.Pta.ce_to >= 0
          && e.Nadroid_analysis.Pta.ce_to < n_inst)
        (Nadroid_analysis.Pta.edges pta)
      (* escaping objects are real objects *)
      && Nadroid_analysis.Pta.IntSet.for_all
           (fun oid -> oid >= 0 && oid < n_obj)
           t.Pipeline.esc.Nadroid_analysis.Escape.escaping
      (* every thread's entry instance is valid; parents precede children *)
      && List.for_all
           (fun th ->
             (th.Nadroid_core.Threadify.th_entry = -1
             || (th.Nadroid_core.Threadify.th_entry >= 0
                && th.Nadroid_core.Threadify.th_entry < n_inst))
             &&
             match th.Nadroid_core.Threadify.th_parent with
             | Some p -> p < th.Nadroid_core.Threadify.th_id
             | None -> th.Nadroid_core.Threadify.th_id = 0)
           (Nadroid_core.Threadify.threads t.Pipeline.threads)
      (* warnings only mention threads that exist, and use <> free thread *)
      && List.for_all
           (fun (w : Nadroid_core.Detect.warning) ->
             w.Nadroid_core.Detect.w_pairs <> []
             && List.for_all
                  (fun (u, f) ->
                    u <> f
                    && u < Nadroid_core.Threadify.n_threads t.Pipeline.threads
                    && f < Nadroid_core.Threadify.n_threads t.Pipeline.threads)
                  w.Nadroid_core.Detect.w_pairs)
           t.Pipeline.potential)

let mhb_is_asymmetric =
  QCheck2.Test.make ~name:"lifecycle must-happens-before is asymmetric" ~count:100
    QCheck2.Gen.(
      pair
        (oneofl ("onClick" :: Nadroid_android.Callback.activity_lifecycle))
        (oneofl ("onClick" :: Nadroid_android.Callback.activity_lifecycle)))
    (fun (a, b) ->
      not
        (Nadroid_android.Lifecycle.must_happen_before ~first:a ~second:b
        && Nadroid_android.Lifecycle.must_happen_before ~first:b ~second:a))

(* -- MHP (the dropped Chord analysis, implemented for the ablation) ------- *)

let mhp_tests =
  [
    Alcotest.test_case "join orders the callback after the thread" `Quick (fun () ->
        let src =
          {|class Data { method void op() { } }
            class A extends Activity { field Data d;
              method void onCreate() { d = new Data(); }
              method void onStart() {
                this.findViewById(1).setOnClickListener(new OnClickListener() {
                  method void onClick(View v) {
                    var Thread t = new Thread(new Runnable() {
                      method void run() { d = null; }
                    });
                    t.start();
                    t.join();
                    d.op();
                  }
                });
              } }|}
        in
        let t = Pipeline.analyze ~file:"t" src in
        Alcotest.(check bool) "detected without MHP" true (List.length t.Pipeline.potential >= 1);
        Alcotest.(check int) "pruned by MHP" 0
          (List.length (Nadroid_core.Mhp.prune t.Pipeline.threads t.Pipeline.potential)));
    Alcotest.test_case "no join, no MHP pruning" `Quick (fun () ->
        let src =
          {|class Data { method void op() { } }
            class A extends Activity { field Data d;
              method void onCreate() { d = new Data(); }
              method void onStart() {
                this.findViewById(1).setOnClickListener(new OnClickListener() {
                  method void onClick(View v) {
                    new Thread(new Runnable() { method void run() { d = null; } }).start();
                    d.op();
                  }
                });
              } }|}
        in
        let t = Pipeline.analyze ~file:"t" src in
        Alcotest.(check int) "untouched" (List.length t.Pipeline.potential)
          (List.length (Nadroid_core.Mhp.prune t.Pipeline.threads t.Pipeline.potential)));
    Alcotest.test_case "use before the join stays parallel" `Quick (fun () ->
        let src =
          {|class Data { method void op() { } }
            class A extends Activity { field Data d;
              method void onCreate() { d = new Data(); }
              method void onStart() {
                this.findViewById(1).setOnClickListener(new OnClickListener() {
                  method void onClick(View v) {
                    var Thread t = new Thread(new Runnable() {
                      method void run() { d = null; }
                    });
                    t.start();
                    d.op();
                    t.join();
                  }
                });
              } }|}
        in
        let t = Pipeline.analyze ~file:"t" src in
        Alcotest.(check int) "not pruned" (List.length t.Pipeline.potential)
          (List.length (Nadroid_core.Mhp.prune t.Pipeline.threads t.Pipeline.potential)));
  ]

let replay_tests =
  [
    Alcotest.test_case "a validation witness replays to the same crash" `Quick (fun () ->
        let src, _ =
          Gen.generate
            {
              Spec.app_name = "t";
              activities =
                [ { Spec.act_name = "MainActivity"; patterns = [ Spec.P_ec_pc_uaf ] } ];
              services = 0;
              padding = 0;
            }
        in
        let t = Pipeline.analyze ~file:"t" src in
        match t.Pipeline.after_unsound with
        | [ w ] -> (
            let v = Explorer.validate t.Pipeline.prog w () in
            match v.Explorer.v_witness with
            | Some trace ->
                let script = List.map (Fmt.str "%a" World.pp_action) trace in
                let o = Explorer.replay t.Pipeline.prog script in
                Alcotest.(check bool) "witness reproduces" true
                  (List.exists (Explorer.npe_matches t.Pipeline.prog w) o.Explorer.o_npes)
            | None -> Alcotest.fail "no witness")
        | _ -> Alcotest.fail "expected one warning");
    Alcotest.test_case "action strings round-trip through the parser" `Quick (fun () ->
        let app = Option.get (Nadroid_corpus.Corpus.find "ConnectBot") in
        let prog = prog_of app.Nadroid_corpus.Corpus.source in
        let w = World.create prog in
        List.iter
          (fun a ->
            let s = Fmt.str "%a" World.pp_action a in
            match World.action_of_string w s with
            | Some a' -> Alcotest.(check string) ("round-trip " ^ s) s (Fmt.str "%a" World.pp_action a')
            | None -> Alcotest.failf "unparseable enabled action %s" s)
          (World.enabled_actions w));
    Alcotest.test_case "disabled actions are rejected" `Quick (fun () ->
        let app = Option.get (Nadroid_corpus.Corpus.find "ConnectBot") in
        let prog = prog_of app.Nadroid_corpus.Corpus.source in
        let w = World.create prog in
        (* onResume is not enabled from the initial state *)
        Alcotest.(check bool) "rejected" true
          (World.action_of_string w "lifecycle:ConsoleActivity.onResume" = None));
  ]

let suite =
  [
    ("interp-differential", [ QCheck_alcotest.to_alcotest interp_matches_reference ]);
    ("world-cancellation", cancellation_tests);
    ("filters-multipair", multi_pair_tests);
    ("mhp", mhp_tests);
    ("replay", replay_tests);
    ("misc", misc_tests);
    ( "invariants",
      List.map QCheck_alcotest.to_alcotest [ structural_invariant; mhb_is_asymmetric ] );
  ]
