(* The serve daemon, end to end: the protocol codec round-trips, a warm
   daemon answers byte-for-byte what the cold CLI prints (under real
   concurrency), an in-flight deadline degrades a request without
   costing the worker, and disconnects / malformed lines cost at most
   their own connection. The daemon runs in-process on its own domain —
   the same code path as `nadroid serve`, minus the signal handlers. *)

module Protocol = Nadroid_serve.Protocol
module Server = Nadroid_serve.Server
module Client = Nadroid_serve.Client
module Pipeline = Nadroid_core.Pipeline
module Cache = Nadroid_core.Cache
module Fault = Nadroid_core.Fault
module Corpus = Nadroid_corpus.Corpus

(* -- protocol codec ------------------------------------------------------ *)

let json_roundtrip =
  QCheck2.Test.make ~name:"escape_string round-trips through parse_json" ~count:300
    QCheck2.Gen.string (fun s ->
      match Protocol.parse_json (Protocol.escape_string s) with
      | Ok (Protocol.Str s') -> String.equal s s'
      | Ok _ | Error _ -> false)

let analyze_roundtrip =
  let gen =
    QCheck2.Gen.(
      map3
        (fun path k deadline ->
          {
            Protocol.a_path = Some path;
            a_source = None;
            a_file = None;
            a_k = k;
            a_sound_only = deadline = None;
            a_deadline = deadline;
            a_budget_pta = k;
            a_budget_tuples = None;
            a_budget_explorer = None;
            a_cache = Some (k = None);
          })
        string
        (opt (int_range 0 5))
        (opt (map (fun f -> float_of_int f /. 8.0) (int_range 0 100))))
  in
  QCheck2.Test.make ~name:"render_analyze round-trips through parse_request" ~count:200 gen
    (fun a ->
      match Protocol.parse_request (Protocol.render_analyze a) with
      | Ok (Protocol.Analyze a') -> a = a'
      | Ok _ | Error _ -> false)

let parse_request_rejects () =
  let bad line frag =
    match Protocol.parse_request line with
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions %s (got %S)" line frag e)
          true
          Astring.String.(is_infix ~affix:frag e)
    | Ok _ -> Alcotest.failf "%S should not parse" line
  in
  bad "" "bad JSON";
  bad "{}" "op";
  bad "{\"op\":\"reboot\"}" "unknown op";
  bad "{\"op\":\"analyze\"}" "\"path\" or a \"source\"";
  bad "{\"op\":\"analyze\",\"path\":\"a\",\"source\":\"b\"}" "not both";
  bad "{\"op\":\"analyze\",\"path\":\"a\",\"k\":\"two\"}" "integer";
  bad "{\"op\":\"analyze\",\"path\":\"a\"} trailing" "trailing"

let response_exit_map () =
  Alcotest.(check int) "ok" 0 (Protocol.response_exit "{\"ok\":true}");
  Alcotest.(check int) "clean analyze" 0
    (Protocol.response_exit "{\"files\":1,\"apps\":[],\"faults\":[]}");
  Alcotest.(check int) "worst fault wins" 4
    (Protocol.response_exit
       "{\"files\":2,\"apps\":[],\"faults\":[{\"exit\":3},{\"exit\":4}]}");
  Alcotest.(check int) "protocol error" 2
    (Protocol.response_exit (Protocol.error_response "nope"));
  Alcotest.(check int) "garbage" 2 (Protocol.response_exit "not json")

(* -- daemon harness ------------------------------------------------------ *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nadroid-test-%s-%d.sock" name (Unix.getpid ()))

(* Run [f] against a live in-process daemon; always drain it afterwards
   (the explicit shutdown is itself part of every test: Domain.join
   hangs unless Server.run returns). *)
let with_daemon ?(jobs = 2) name f =
  let sock = sock_path name in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let config =
    {
      Server.default_config with
      Server.jobs = Some jobs;
      quiet = true;
      install_signals = false;
    }
  in
  let daemon = Domain.spawn (fun () -> Server.run ~config (`Unix sock)) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect ~timeout:0.0 (`Unix sock) in
         ignore (Client.request c Protocol.shutdown_request);
         Client.close c
       with _ -> () (* the test already shut it down *));
      Domain.join daemon)
    (fun () -> f (`Unix sock))

(* What `nadroid analyze --json` prints for this source — same builders,
   computed cold in the test process. *)
let cold_response ~name source =
  Protocol.analyze_response ~name
    (Fault.wrap (fun () ->
         Cache.entry_of_result (Pipeline.analyze ~file:name source)))

let inline_request ?deadline ~name source =
  Protocol.render_analyze
    {
      Protocol.a_path = None;
      a_source = Some source;
      a_file = Some name;
      a_k = None;
      a_sound_only = false;
      a_deadline = deadline;
      a_budget_pta = None;
      a_budget_tuples = None;
      a_budget_explorer = None;
      a_cache = None;
    }

(* -- integration --------------------------------------------------------- *)

(* The acceptance bar: >= 8 requests in flight at once against a warm
   daemon, every response byte-identical to a cold run. Each client is
   its own domain with its own connection. *)
let concurrent_requests_byte_identical () =
  let apps =
    List.filteri (fun i _ -> i < 8) (Lazy.force Corpus.all)
  in
  Alcotest.(check int) "eight apps" 8 (List.length apps);
  let expected =
    List.map
      (fun (a : Corpus.app) -> cold_response ~name:a.Corpus.name a.Corpus.source)
      apps
  in
  with_daemon "concurrent" (fun listen ->
      let clients =
        List.map
          (fun (a : Corpus.app) ->
            Domain.spawn (fun () ->
                let c = Client.connect listen in
                let r =
                  Client.request c (inline_request ~name:a.Corpus.name a.Corpus.source)
                in
                Client.close c;
                r))
          apps
      in
      let responses = List.map Domain.join clients in
      List.iteri
        (fun i ((a : Corpus.app), response) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: daemon response = cold analyze --json" a.Corpus.name)
            (List.nth expected i) response)
        (List.combine apps responses))

(* A deadline that expires mid-request must come back DEGRADED — and the
   worker that served it (there is only one) must answer the next
   request of the same connection cleanly. *)
let deadline_degrades_not_kills () =
  let adversarial = Nadroid_corpus.Synth.adversarial ~seed:0 ~size:40 in
  let small = List.hd (Lazy.force Corpus.all) in
  with_daemon ~jobs:1 "deadline" (fun listen ->
      let c = Client.connect listen in
      let r =
        Client.request c (inline_request ~deadline:0.4 ~name:"adversarial" adversarial)
      in
      (match Protocol.parse_json r with
      | Ok j -> (
          match Protocol.member "apps" j with
          | Some (Protocol.Arr [ app ]) -> (
              match Protocol.member "degraded" app with
              | Some (Protocol.Arr (_ :: _)) -> ()
              | _ -> Alcotest.failf "expected a degraded marker in %s" r)
          | _ -> Alcotest.failf "expected one app in %s" r)
      | Error e -> Alcotest.failf "unparseable response %s: %s" r e);
      (* same connection, hence same (sole) worker: a clean run *)
      let r2 =
        Client.request c (inline_request ~name:small.Corpus.name small.Corpus.source)
      in
      Alcotest.(check string) "next request on the worker is clean"
        (cold_response ~name:small.Corpus.name small.Corpus.source)
        r2;
      Client.close c)

(* A client that vanishes mid-request costs its connection, nothing
   else: the daemon still answers others and still drains cleanly. *)
let disconnect_mid_request_is_isolated () =
  let adversarial = Nadroid_corpus.Synth.adversarial ~seed:0 ~size:40 in
  let small = List.hd (Lazy.force Corpus.all) in
  with_daemon ~jobs:1 "disconnect" (fun listen ->
      let dead = Client.connect listen in
      Client.send dead (inline_request ~deadline:0.4 ~name:"orphan" adversarial);
      (* hang up without reading the response *)
      Client.close dead;
      let c = Client.connect listen in
      Alcotest.(check string) "daemon still answers" "{\"ok\":true}"
        (Client.request c Protocol.ping_request);
      Alcotest.(check string) "the worker is not wedged"
        (cold_response ~name:small.Corpus.name small.Corpus.source)
        (Client.request c (inline_request ~name:small.Corpus.name small.Corpus.source));
      Client.close c)

(* Pipelined requests: a client that writes several request lines in one
   burst and then goes quiet must still get every response. Once the
   first response flushes there is no further fd event for the lines
   already buffered server-side, so the loop itself must keep
   dispatching them. The burst mixes pings (answered inline) with an
   analyze (answered via the completion queue) to cover both paths, and
   reads are select-bounded so a regression fails instead of hanging. *)
let pipelined_requests_all_answered () =
  let small = List.hd (Lazy.force Corpus.all) in
  let expected =
    [
      "{\"ok\":true}";
      cold_response ~name:small.Corpus.name small.Corpus.source;
      "{\"ok\":true}";
    ]
  in
  with_daemon ~jobs:1 "pipeline" (fun listen ->
      (* a raw fd (Client is strictly request/response), but with
         Client.connect's patience: the daemon may still be binding *)
      let rec connect_retry deadline path =
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> fd
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
          when Unix.gettimeofday () < deadline ->
            Unix.close fd;
            Unix.sleepf 0.02;
            connect_retry deadline path
        | exception e ->
            Unix.close fd;
            raise e
      in
      let fd =
        match listen with
        | `Unix path -> connect_retry (Unix.gettimeofday () +. 10.0) path
        | _ -> assert false
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let burst =
            String.concat "\n"
              [
                Protocol.ping_request;
                inline_request ~name:small.Corpus.name small.Corpus.source;
                Protocol.ping_request;
              ]
            ^ "\n"
          in
          let b = Bytes.of_string burst in
          assert (Unix.write fd b 0 (Bytes.length b) = Bytes.length b);
          let buf = Buffer.create 256 in
          let chunk = Bytes.create 8192 in
          let lines () =
            List.filter
              (fun l -> String.length l > 0)
              (String.split_on_char '\n' (Buffer.contents buf))
          in
          let deadline = Unix.gettimeofday () +. 30.0 in
          let rec read_until () =
            if List.length (lines ()) < 3 then begin
              let left = deadline -. Unix.gettimeofday () in
              let stall () =
                Alcotest.failf "pipelined responses stalled; got %S"
                  (Buffer.contents buf)
              in
              if left <= 0.0 then stall ();
              match Unix.select [ fd ] [] [] left with
              | [], _, _ -> stall ()
              | _ -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 ->
                      Alcotest.failf "daemon closed after %S"
                        (Buffer.contents buf)
                  | n ->
                      Buffer.add_subbytes buf chunk 0 n;
                      read_until ()
                  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                      read_until ())
            end
          in
          read_until ();
          List.iteri
            (fun i (want, got) ->
              Alcotest.(check string)
                (Printf.sprintf "pipelined response %d" i)
                want got)
            (List.combine expected (lines ()))))

(* One malformed line answers with a structured error on the same
   connection, which stays usable. *)
let bad_request_keeps_connection () =
  with_daemon ~jobs:1 "bad-request" (fun listen ->
      let c = Client.connect listen in
      let r = Client.request c "{\"op\":17}" in
      Alcotest.(check int) "usage-error exit" 2 (Protocol.response_exit r);
      Alcotest.(check string) "connection survives" "{\"ok\":true}"
        (Client.request c Protocol.ping_request);
      Client.close c)

(* Graceful shutdown: the request is acknowledged, in-flight work
   finishes first, Server.run returns (checked by with_daemon's join),
   and the socket file is gone. *)
let shutdown_drains () =
  let small = List.hd (Lazy.force Corpus.all) in
  with_daemon ~jobs:1 "shutdown" (fun listen ->
      let c = Client.connect listen in
      Alcotest.(check string) "analysis before the drain"
        (cold_response ~name:small.Corpus.name small.Corpus.source)
        (Client.request c (inline_request ~name:small.Corpus.name small.Corpus.source));
      Alcotest.(check string) "drain acknowledged" "{\"ok\":true,\"draining\":true}"
        (Client.request c Protocol.shutdown_request);
      Client.close c);
  match Unix.stat (sock_path "shutdown") with
  | _ -> Alcotest.fail "socket file should be unlinked after the drain"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let suite =
  [
    ( "serve-protocol",
      [
        QCheck_alcotest.to_alcotest json_roundtrip;
        QCheck_alcotest.to_alcotest analyze_roundtrip;
        Alcotest.test_case "malformed requests are rejected with the field" `Quick
          parse_request_rejects;
        Alcotest.test_case "response_exit mirrors the fault taxonomy" `Quick
          response_exit_map;
      ] );
    ( "serve-daemon",
      [
        Alcotest.test_case "8 concurrent requests match cold runs byte-for-byte" `Quick
          concurrent_requests_byte_identical;
        Alcotest.test_case "mid-request deadline degrades, worker survives" `Quick
          deadline_degrades_not_kills;
        Alcotest.test_case "client disconnect is isolated to its connection" `Quick
          disconnect_mid_request_is_isolated;
        Alcotest.test_case "pipelined burst gets every response" `Quick
          pipelined_requests_all_answered;
        Alcotest.test_case "malformed line keeps the connection usable" `Quick
          bad_request_keeps_connection;
        Alcotest.test_case "shutdown drains, returns and unlinks the socket" `Quick
          shutdown_drains;
      ] );
  ]
