(* Fleet-scale machinery: the streaming work-stealing scheduler
   ({!Parallel.stream}), the seeded mega-corpus generator
   ({!Megacorpus}) and cache eviction under real pressure.

   The load-bearing property is scheduler equivalence: for any corpus,
   any job count and either scheduling mode, the emitted per-app JSON
   objects — reports, faults and their order — are byte-identical to a
   sequential run, including when injected kills and wedges take
   workers down mid-batch. The schedulers may only change *when* work
   runs, never what comes out. *)

module Pipeline = Nadroid_core.Pipeline
module Cache = Nadroid_core.Cache
module Fault = Nadroid_core.Fault
module Parallel = Nadroid_core.Parallel
module Supervise = Nadroid_core.Supervise
module Faultinject = Nadroid_core.Faultinject
module Megacorpus = Nadroid_corpus.Megacorpus
module Protocol = Nadroid_serve.Protocol
module Clock = Nadroid_clock.Clock

let fresh_dir =
  let n = ref 0 in
  fun () -> Printf.sprintf "_fleet_test.%d.%d" (Unix.getpid ()) (incr n; !n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let config = Pipeline.default_config

(* -- Parallel.stream unit properties ------------------------------------- *)

(* In-order emission with crash isolation: every index is emitted exactly
   once, in input order, failures in their own slots. *)
let stream_in_order_and_isolated () =
  let n = 60 in
  let emitted = ref [] in
  Parallel.stream ~jobs:4 ~n
    (fun i -> if i mod 7 = 3 then failwith (Printf.sprintf "boom%d" i) else i * i)
    (fun i r -> emitted := (i, r) :: !emitted);
  let emitted = List.rev !emitted in
  Alcotest.(check (list int))
    "indices emitted in input order"
    (List.init n Fun.id)
    (List.map fst emitted);
  List.iter
    (fun (i, r) ->
      match r with
      | Ok v ->
          Alcotest.(check bool) "ok slot not a planted failure" true (i mod 7 <> 3);
          Alcotest.(check int) "value" (i * i) v
      | Error (Failure m) ->
          Alcotest.(check string) "failure in its own slot" (Printf.sprintf "boom%d" i) m
      | Error e -> raise e)
    emitted

(* The admission window bounds how far any running task may be ahead of
   the emission watermark — the O(window) memory discipline. *)
let stream_window_bounds_inflight () =
  let window = 8 in
  let emitted = Atomic.make 0 in
  let violations = Atomic.make 0 in
  Parallel.stream ~jobs:4 ~window ~n:200
    (fun i ->
      if i - Atomic.get emitted >= window then ignore (Atomic.fetch_and_add violations 1);
      i)
    (fun _ _ -> Atomic.incr emitted);
  Alcotest.(check int)
    "no task ever starts a full window past the watermark" 0
    (Atomic.get violations)

(* An exception from [emit] stops further emission and re-raises in the
   caller once in-flight tasks drain. *)
let stream_emit_exception_propagates () =
  let last = ref (-1) in
  (match
     Parallel.stream ~jobs:4 ~n:50
       (fun i -> i)
       (fun i _ -> if i = 5 then failwith "emit-stop" else last := i)
   with
  | () -> Alcotest.fail "emit exception must re-raise"
  | exception Failure m -> Alcotest.(check string) "the emit exception" "emit-stop" m);
  Alcotest.(check bool) "nothing emitted past the failing index" true (!last < 5)

(* The wall-clock case for stealing, demonstrable even on one core
   because sleeps overlap: under the static split every straggler lands
   in one residue class (worker 0), serializing them; stealing spreads
   them across the fleet. *)
let steal_beats_static_on_stragglers () =
  let n = 16 and jobs = 4 in
  let task i = Unix.sleepf (if i mod jobs = 0 then 0.25 else 0.01) in
  let wall sched =
    let t0 = Clock.now () in
    Parallel.stream ~jobs ~sched ~n task (fun _ _ -> ());
    Clock.now () -. t0
  in
  let static = wall Parallel.Static in
  let steal = wall Parallel.Steal in
  Alcotest.(check bool)
    (Printf.sprintf "steal (%.2fs) well under static (%.2fs)" steal static)
    true
    (steal *. 1.3 < static)

(* -- scheduler equivalence (qcheck) -------------------------------------- *)

(* Adversarial apps are capped small here: the property is about
   scheduling, not about paying size^3 per qcheck case. *)
let tame (a : Megacorpus.app) =
  match a.Megacorpus.mc_kind with
  | Megacorpus.Adversarial s ->
      { a with Megacorpus.mc_kind = Megacorpus.Adversarial (min s 10) }
  | Megacorpus.Normal _ -> a

let small_plan ~seed ~apps ~adversarial =
  Array.map tame
    (Megacorpus.plan
       {
         Megacorpus.mc_seed = seed;
         mc_apps = apps;
         mc_adversarial = adversarial;
         mc_loc_scale = 0.1;
       })

(* One full pass: every app analyzed in-process, rendered to the same
   per-app JSON the CLI emits, collected in input order. *)
let render_plan ~jobs ~sched (plan : Megacorpus.app array) : string list =
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let out = Array.make (Array.length plan) "" in
  Parallel.stream ~jobs ~sched ~n:(Array.length plan)
    (fun i ->
      let a = plan.(i) in
      let name = a.Megacorpus.mc_name in
      match
        Fault.wrap (fun () ->
            Cache.entry_of_result
              (Pipeline.analyze ~config ~file:name (Megacorpus.source a)))
      with
      | Ok e -> Protocol.entry_json ~name e
      | Error f -> Nadroid_core.Report.fault_to_json ~name f)
    (fun i r ->
      out.(i) <- (match r with Ok s -> s | Error e -> "EXN:" ^ Printexc.to_string e));
  Array.to_list out

let scheduler_equivalence =
  QCheck2.Test.make ~name:"stream schedulers are byte-identical to sequential"
    ~count:6
    QCheck2.Gen.(
      triple (int_range 0 999) (int_range 3 10) (oneofl [ 0.0; 0.15; 0.3 ]))
    (fun (seed, apps, adversarial) ->
      let plan = small_plan ~seed ~apps ~adversarial in
      let reference = render_plan ~jobs:1 ~sched:Parallel.Static plan in
      List.for_all
        (fun (jobs, sched) -> render_plan ~jobs ~sched plan = reference)
        [
          (2, Parallel.Static);
          (2, Parallel.Steal);
          (4, Parallel.Static);
          (4, Parallel.Steal);
          (8, Parallel.Steal);
        ])

(* -- scheduler equivalence under injected kills and wedges --------------- *)

(* Worker pids vary run to run; everything else about a fault rendering
   must not. *)
let mask_digits = String.map (fun c -> if c >= '0' && c <= '9' then '#' else c)

(* One supervised pass over [plan]: kills/wedges armed via the
   (scheduling-independent) key rule in NADROID_FAULTS land on the same
   app in every run, so outputs must agree across schedulers — the
   faulted app answers a quarantine/heartbeat fault, everyone else
   byte-identical entries. *)
let supervised_render ~jobs ~sched ?heartbeat (plan : Megacorpus.app array) :
    string list =
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let sp = Supervise.create ~jobs ?heartbeat () in
  Fun.protect
    ~finally:(fun () -> Supervise.shutdown sp)
    (fun () ->
      let out = Array.make (Array.length plan) "" in
      Parallel.stream ~jobs ~sched ~n:(Array.length plan)
        (fun i ->
          let a = plan.(i) in
          let name = a.Megacorpus.mc_name in
          match Supervise.analyze sp ~config ~file:name (Megacorpus.source a) with
          | Ok e -> Protocol.entry_json ~name e
          | Error f -> "FAULT:" ^ mask_digits (Fault.to_string f))
        (fun i r ->
          out.(i) <-
            (match r with Ok s -> s | Error e -> "EXN:" ^ Printexc.to_string e));
      Array.to_list out)

let equivalence_under_faults ~action ~expect ?heartbeat () =
  let plan = small_plan ~seed:11 ~apps:5 ~adversarial:0.0 in
  let victim = plan.(2).Megacorpus.mc_name in
  Unix.putenv Faultinject.env_var
    (Printf.sprintf "worker_task=%s:%s" victim action);
  Fun.protect
    ~finally:(fun () -> Unix.putenv Faultinject.env_var "")
    (fun () ->
      let reference = supervised_render ~jobs:1 ~sched:Parallel.Static ?heartbeat plan in
      let faulted =
        List.filter (String.starts_with ~prefix:"FAULT:") reference
      in
      Alcotest.(check int) "exactly the victim faults" 1 (List.length faulted);
      Alcotest.(check bool)
        (Printf.sprintf "fault names %S" expect)
        true
        (Astring.String.is_infix ~affix:expect (List.hd faulted));
      List.iter
        (fun (jobs, sched) ->
          Alcotest.(check (list string))
            (Printf.sprintf "jobs=%d equals sequential under injected %s" jobs
               action)
            reference
            (supervised_render ~jobs ~sched ?heartbeat plan))
        [ (2, Parallel.Steal); (4, Parallel.Static) ])

let equivalence_under_kills () =
  equivalence_under_faults ~action:"kill" ~expect:"quarantined" ()

let equivalence_under_wedges () =
  equivalence_under_faults ~action:"wedge" ~expect:"heartbeat" ~heartbeat:0.6 ()

(* -- megacorpus ---------------------------------------------------------- *)

let megacorpus_is_deterministic () =
  let spec = { Megacorpus.default with Megacorpus.mc_apps = 40; mc_seed = 5 } in
  let p1 = Megacorpus.plan spec and p2 = Megacorpus.plan spec in
  Alcotest.(check bool) "plans identical" true (p1 = p2);
  Array.iteri
    (fun i a ->
      if i < 4 then
        Alcotest.(check string)
          (a.Megacorpus.mc_name ^ ": source deterministic")
          (Megacorpus.source a) (Megacorpus.source p2.(i)))
    p1

let megacorpus_names_unique () =
  let plan = Megacorpus.plan { Megacorpus.default with Megacorpus.mc_apps = 500 } in
  let seen = Hashtbl.create 512 in
  Array.iter (fun a -> Hashtbl.replace seen a.Megacorpus.mc_name ()) plan;
  Alcotest.(check int) "500 distinct names" 500 (Hashtbl.length seen)

let megacorpus_respects_adversarial_fraction () =
  let count frac =
    let plan =
      Megacorpus.plan
        { Megacorpus.default with Megacorpus.mc_apps = 2000; mc_adversarial = frac }
    in
    Array.fold_left
      (fun n a ->
        match a.Megacorpus.mc_kind with
        | Megacorpus.Adversarial _ -> n + 1
        | Megacorpus.Normal _ -> n)
      0 plan
  in
  Alcotest.(check int) "fraction 0 means none" 0 (count 0.0);
  let n = count 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "fraction 0.1 over 2000 apps lands near 200 (got %d)" n)
    true
    (n > 120 && n < 280)

(* Normal apps land near their Table 1-drawn LOC target; adversarial
   sizes stay in the heavy-tailed 8..30 envelope. *)
let megacorpus_size_envelope () =
  let plan =
    Megacorpus.plan
      { Megacorpus.default with Megacorpus.mc_apps = 30; mc_adversarial = 0.2; mc_seed = 3 }
  in
  Array.iter
    (fun a ->
      match a.Megacorpus.mc_kind with
      | Megacorpus.Normal target ->
          if a.Megacorpus.mc_index < 12 then begin
            let loc = Pipeline.count_loc (Megacorpus.source a) in
            let dev = abs (loc - target) in
            Alcotest.(check bool)
              (Printf.sprintf "%s: loc %d within 15%% of target %d"
                 a.Megacorpus.mc_name loc target)
              true
              (float_of_int dev <= 0.15 *. float_of_int target +. 12.0)
          end
      | Megacorpus.Adversarial s ->
          Alcotest.(check bool)
            (Printf.sprintf "adversarial size %d in 8..30" s)
            true (s >= 8 && s <= 30))
    plan

(* -- cache eviction under pressure --------------------------------------- *)

let count_entries dir =
  Array.fold_left
    (fun n f -> if Filename.check_suffix f ".cache" then n + 1 else n)
    0 (Sys.readdir dir)

(* A 500-app corpus through a cache capped far below its footprint:
   the cap holds mid-run (modulo in-flight stores that haven't run
   their eviction yet), eviction provably happens, survivors still hit
   with correct bytes, evicted entries recompute identically, and no
   .tmp.* orphans remain. *)
let eviction_under_pressure () =
  with_dir (fun dir ->
      let plan =
        Megacorpus.plan
          {
            Megacorpus.mc_seed = 7;
            mc_apps = 500;
            mc_adversarial = 0.0;
            mc_loc_scale = 0.1;
          }
      in
      let cap = 64 * 1024 in
      let jobs = 4 in
      (* a store runs eviction only after it lands: up to [jobs] stores
         can be in flight past the cap at once, never more *)
      let slack = jobs * 16 * 1024 in
      let over = ref 0 in
      ignore (Lazy.force Nadroid_lang.Builtins.program);
      Parallel.stream ~jobs ~n:(Array.length plan)
        (fun i ->
          let a = plan.(i) in
          fst
            (Cache.analyze ~config ~max_bytes:cap ~dir
               ~file:a.Megacorpus.mc_name (Megacorpus.source a)))
        (fun _ r ->
          match r with
          | Ok _ -> if Cache.dir_bytes ~dir > cap + slack then incr over
          | Error e -> raise e);
      Alcotest.(check int) "cap holds mid-run (beyond in-flight slack)" 0 !over;
      Alcotest.(check bool) "final size is under the cap" true
        (Cache.dir_bytes ~dir <= cap);
      Alcotest.(check bool) "eviction actually happened" true
        (count_entries dir < Array.length plan);
      Alcotest.(check bool) "something survived to hit" true (count_entries dir > 0);
      (* no .tmp orphans *)
      Array.iter
        (fun f ->
          if String.length f >= 5 && String.sub f 0 5 = ".tmp." then
            Alcotest.failf "orphaned temp file %s" f)
        (Sys.readdir dir);
      (* classify a survivor and an evictee; check both still answer
         byte-correctly *)
      let fresh (a : Megacorpus.app) =
        Cache.entry_of_result
          (Pipeline.analyze ~config ~file:a.Megacorpus.mc_name (Megacorpus.source a))
      in
      let entry_equal msg (a : Cache.entry) (b : Cache.entry) =
        Alcotest.(check int) (msg ^ ": potential") a.Cache.e_potential b.Cache.e_potential;
        Alcotest.(check string) (msg ^ ": report") a.Cache.e_report b.Cache.e_report
      in
      let survivor = ref None and evictee = ref None in
      Array.iter
        (fun (a : Megacorpus.app) ->
          let key = Cache.key ~config (Megacorpus.source a) in
          match Cache.find ~dir key with
          | Some e, Cache.Hit -> if !survivor = None then survivor := Some (a, e)
          | None, Cache.Miss -> if !evictee = None then evictee := Some a
          | _ -> ())
        plan;
      (match !survivor with
      | None -> Alcotest.fail "no surviving entry found"
      | Some (a, e) -> entry_equal "survivor hit is correct after eviction" (fresh a) e);
      match !evictee with
      | None -> Alcotest.fail "no evicted entry found"
      | Some a -> (
          match
            Cache.analyze ~config ~max_bytes:cap ~dir ~file:a.Megacorpus.mc_name
              (Megacorpus.source a)
          with
          | e, Cache.Miss -> entry_equal "evictee recomputes identically" (fresh a) e
          | _, _ -> Alcotest.fail "evicted entry must re-analyze as a miss"))

let suite =
  [
    ( "fleet-stream",
      [
        Alcotest.test_case "in-order emission, crash-isolated slots" `Quick
          stream_in_order_and_isolated;
        Alcotest.test_case "admission window bounds in-flight distance" `Quick
          stream_window_bounds_inflight;
        Alcotest.test_case "emit exception stops the stream and re-raises" `Quick
          stream_emit_exception_propagates;
        Alcotest.test_case "stealing beats the static split on stragglers" `Quick
          steal_beats_static_on_stragglers;
      ] );
    ( "fleet-sched-equiv",
      [
        QCheck_alcotest.to_alcotest scheduler_equivalence;
        Alcotest.test_case "byte-identical under injected worker kills" `Quick
          equivalence_under_kills;
        Alcotest.test_case "byte-identical under injected worker wedges" `Quick
          equivalence_under_wedges;
      ] );
    ( "fleet-megacorpus",
      [
        Alcotest.test_case "plan and sources are pure functions of the spec" `Quick
          megacorpus_is_deterministic;
        Alcotest.test_case "names are unique" `Quick megacorpus_names_unique;
        Alcotest.test_case "adversarial fraction is respected" `Quick
          megacorpus_respects_adversarial_fraction;
        Alcotest.test_case "sizes track their targets and envelopes" `Quick
          megacorpus_size_envelope;
      ] );
    ( "fleet-cache-pressure",
      [
        Alcotest.test_case "500-app corpus under a tight --cache-max-bytes" `Quick
          eviction_under_pressure;
      ] );
  ]
