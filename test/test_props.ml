(* Compositional properties.

   The corpus generator instantiates every pattern on its own field, so
   pattern instances must be analysis-independent: the pipeline counts of
   an app seeded with a random multiset of patterns must equal the sums
   of the counts each pattern produces alone. This is a strong
   end-to-end property — it fails if points-to ever confuses two
   instances' objects, if a filter prunes across instances, or if
   threadification miscounts — and it is exactly the assumption the
   Table 1 calibration rests on.

   Also: random-walk robustness of the simulator (no uncaught exceptions
   on arbitrary corpus apps and seeds). *)

module Spec = Nadroid_corpus.Spec
module Gen = Nadroid_corpus.Gen
module Pipeline = Nadroid_core.Pipeline

(* patterns that are pairwise independent by construction (each owns its
   field and views); P_chb is excluded because its finish() cancels the
   whole activity and thus interferes with other instances' UI events *)
let composable : Spec.pattern list =
  [
    Spec.P_ec_pc_uaf;
    Spec.P_pc_pc_uaf;
    Spec.P_c_rt_uaf;
    Spec.P_ec_ec_uaf;
    Spec.P_guarded;
    Spec.P_intra_alloc;
    Spec.P_mhb_service;
    Spec.P_mhb_lifecycle;
    Spec.P_ma;
    Spec.P_ur;
    Spec.P_tt;
    Spec.P_fp_path;
    Spec.P_safe;
  ]

let counts_of patterns =
  let spec =
    {
      Spec.app_name = "prop";
      activities = [ { Spec.act_name = "MainActivity"; patterns } ];
      services = 0;
      padding = 0;
    }
  in
  let src, _ = Gen.generate spec in
  let t = Pipeline.analyze ~file:"prop" src in
  ( List.length t.Pipeline.potential,
    List.length t.Pipeline.after_sound,
    List.length t.Pipeline.after_unsound )

(* per-pattern counts, computed once *)
let singleton_counts : (Spec.pattern * (int * int * int)) list Lazy.t =
  lazy (List.map (fun p -> (p, counts_of [ p ])) composable)

let composition =
  QCheck2.Test.make ~name:"pipeline counts compose over independent patterns" ~count:25
    QCheck2.Gen.(list_size (int_range 2 6) (oneofl composable))
    (fun patterns ->
      let p, s, u = counts_of patterns in
      let ep, es, eu =
        List.fold_left
          (fun (p, s, u) pat ->
            let p', s', u' = List.assoc pat (Lazy.force singleton_counts) in
            (p + p', s + s', u + u'))
          (0, 0, 0) patterns
      in
      p = ep && s = es && u = eu)

let random_walks_do_not_raise =
  QCheck2.Test.make ~name:"random simulator walks never raise" ~count:40
    QCheck2.Gen.(
      pair (oneofl (Lazy.force Nadroid_corpus.Corpus.all)) (int_bound 1000))
    (fun ((app : Nadroid_corpus.Corpus.app), seed) ->
      let prog = Nadroid_ir.Prog.of_source ~file:app.Nadroid_corpus.Corpus.name app.Nadroid_corpus.Corpus.source in
      let o = Nadroid_dynamic.Explorer.random_run prog ~seed ~max_steps:50 in
      o.Nadroid_dynamic.Explorer.o_steps <= 50)

let generated_sources_reanalyze_deterministically =
  QCheck2.Test.make ~name:"analysis is deterministic" ~count:8
    (QCheck2.Gen.oneofl (Lazy.force Nadroid_corpus.Corpus.test))
    (fun (app : Nadroid_corpus.Corpus.app) ->
      let run () =
        let t = Pipeline.analyze ~file:app.Nadroid_corpus.Corpus.name app.Nadroid_corpus.Corpus.source in
        List.map Nadroid_core.Detect.warning_key t.Pipeline.after_unsound
      in
      run () = run ())

module Detect = Nadroid_core.Detect
module Corpus = Nadroid_corpus.Corpus

(* The field-indexed join must be a pure optimization: same warnings,
   same pairs, as the naive cross-product join it replaced. Compared as
   sorted sets because the Datalog fact-insertion order (and hence query
   order) differs between the two joins. *)
let indexed_join_equals_naive =
  QCheck2.Test.make ~name:"field-indexed join equals naive cross-product join" ~count:20
    QCheck2.Gen.(list_size (int_range 1 6) (oneofl composable))
    (fun patterns ->
      let spec =
        {
          Spec.app_name = "join";
          activities = [ { Spec.act_name = "MainActivity"; patterns } ];
          services = 0;
          padding = 0;
        }
      in
      let src, _ = Gen.generate spec in
      let t = Pipeline.analyze ~file:"join" src in
      let norm ws =
        List.sort compare
          (List.map
             (fun (w : Detect.warning) ->
               (Detect.warning_key w, List.sort compare w.Detect.w_pairs))
             ws)
      in
      norm (Detect.run t.Pipeline.threads t.Pipeline.esc)
      = norm (Detect.run_reference t.Pipeline.threads t.Pipeline.esc))

(* Parallel corpus analysis must be invisible: app-for-app, the rendered
   report at jobs=4 is byte-identical to jobs=1 (each app's analysis is
   internally sequential; the pool only changes which domain runs it). *)
let analyze_all_is_jobs_invariant =
  QCheck2.Test.make ~name:"analyze_all at jobs=4 equals jobs=1 app-for-app" ~count:5
    QCheck2.Gen.(
      list_size (int_range 2 4) (list_size (int_range 1 3) (oneofl composable)))
    (fun patternss ->
      let apps =
        List.mapi
          (fun i patterns ->
            let spec =
              {
                Spec.app_name = "papp" ^ string_of_int i;
                activities = [ { Spec.act_name = "MainActivity"; patterns } ];
                services = 0;
                padding = 0;
              }
            in
            let src, seeded = Gen.generate spec in
            { Corpus.name = spec.Spec.app_name; group = Corpus.Test; source = src; seeded })
          patternss
      in
      let norm results =
        List.map
          (fun ((a : Corpus.app), r) ->
            match r with
            | Ok (t : Pipeline.t) ->
                ( a.Corpus.name,
                  List.map Detect.warning_key t.Pipeline.after_unsound,
                  Nadroid_core.Report.to_string t.Pipeline.threads t.Pipeline.after_unsound )
            | Error f -> (a.Corpus.name, [], Nadroid_core.Fault.to_string f))
          results
      in
      norm (Corpus.analyze_all ~jobs:1 apps) = norm (Corpus.analyze_all ~jobs:4 apps))

module Synth = Nadroid_corpus.Synth
module Differential = Nadroid_corpus.Differential

(* §6.1 soundness on arbitrary generated apps: the sound-config warning
   set never misses a dynamically witnessed NPE, and never drops a
   seeded ground-truth pair that only an unsound filter may remove. *)
let sound_filters_never_drop_witnessed =
  QCheck2.Test.make ~name:"sound filters never drop a witnessed pair on generated apps"
    ~count:15
    QCheck2.Gen.(int_bound 5000)
    (fun seed ->
      let oracle = { Differential.dr_runs = 10; dr_guided = 2; dr_steps = 40 } in
      let v = Differential.examine ~oracle (Synth.generate ~seed) in
      v.Differential.vd_discrepancies = [])

(* Sound degradation extends to synthesized inputs: starving the PTA
   budget down to a k=0 fixpoint may only add warnings, never lose one
   the full-precision run reports. *)
let degraded_superset_on_synth =
  QCheck2.Test.make ~name:"budget degradation keeps a warning superset on generated apps"
    ~count:10
    QCheck2.Gen.(int_bound 5000)
    (fun seed ->
      let src, _ = Synth.render (Synth.generate ~seed) in
      let full = Pipeline.analyze ~file:"synth" src in
      let prog = full.Pipeline.prog in
      let k0_steps = (Nadroid_analysis.Pta.run ~k:0 prog).Nadroid_analysis.Pta.steps in
      let config =
        {
          Pipeline.default_config with
          Pipeline.budgets = { Pipeline.no_budgets with Pipeline.pta_steps = Some k0_steps };
        }
      in
      let degraded = Pipeline.analyze_prog ~config prog in
      let keys t = List.map Detect.warning_key t.Pipeline.after_unsound in
      List.for_all (fun k -> List.mem k (keys degraded)) (keys full))

module Pta = Nadroid_analysis.Pta

let lower ~file src =
  Nadroid_ir.Prog.of_sema (Nadroid_lang.Sema.of_source ~file src)

(* The worklist solver is gated on bit-identical equivalence with the
   snapshot-iterate-all reference solver: same objects, instances,
   points-to sets, call edges and roots — which is what keeps the golden
   reports byte-stable across the solver switch. *)
let worklist_equals_reference_on_synth =
  QCheck2.Test.make ~name:"worklist PTA equals the reference solver on generated apps"
    ~count:200
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let src, _ = Synth.render (Synth.generate ~seed) in
      let prog = lower ~file:"synth" src in
      Pta.equal_results (Pta.run prog) (Pta.run_reference prog))

let worklist_equals_reference_on_corpus () =
  List.iter
    (fun (app : Nadroid_corpus.Corpus.app) ->
      let prog = lower ~file:app.Nadroid_corpus.Corpus.name app.Nadroid_corpus.Corpus.source in
      let w = Pta.run prog and r = Pta.run_reference prog in
      Alcotest.(check bool)
        (app.Nadroid_corpus.Corpus.name ^ ": worklist = reference") true
        (Pta.equal_results w r);
      Alcotest.(check bool)
        (app.Nadroid_corpus.Corpus.name ^ ": worklist does not visit more") true
        (Pta.visits w <= Pta.visits r && Pta.steps w <= Pta.steps r))
    (Lazy.force Nadroid_corpus.Corpus.all)

let suite =
  [
    ( "composition",
      List.map QCheck_alcotest.to_alcotest
        [ composition; random_walks_do_not_raise; generated_sources_reanalyze_deterministically ]
    );
    ( "pta-equivalence",
      QCheck_alcotest.to_alcotest worklist_equals_reference_on_synth
      :: [
           Alcotest.test_case "worklist equals reference on all corpus apps" `Quick
             worklist_equals_reference_on_corpus;
         ] );
    ( "join-and-parallel",
      List.map QCheck_alcotest.to_alcotest
        [ indexed_join_equals_naive; analyze_all_is_jobs_invariant ] );
    ( "differential-props",
      List.map QCheck_alcotest.to_alcotest
        [ sound_filters_never_drop_witnessed; degraded_superset_on_synth ] );
  ]
