(* Frontend equivalence and regression tests (the PR-10 gate).

   The table-driven lexer and the array-cursor parser are pure speed
   refactors: every observable — token streams with locations, ASTs,
   and final analysis reports — must be byte-identical to the
   reference implementations. The same holds for batch-shared
   interning: handing every analysis of a batch one hash-consed symbol
   table must never change a report, because engine iteration order is
   insertion-ordered and thus independent of id assignment. These
   properties are checked over 200 generated apps and the whole
   27-app corpus. *)

open Nadroid_lang
module Pipeline = Nadroid_core.Pipeline
module Cache = Nadroid_core.Cache
module Corpus = Nadroid_corpus.Corpus
module Synth = Nadroid_corpus.Synth

let synth_src seed = fst (Synth.render (Synth.generate ~seed))

(* -- unit: UTF-8 BOM ----------------------------------------------------- *)

let bom = "\xEF\xBB\xBF"

let bom_tests =
  let src = "class A extends Activity { method void onCreate() { } }" in
  [
    Alcotest.test_case "leading BOM is skipped by both lexer paths" `Quick (fun () ->
        let plain = Lexer.tokens ~file:"t" src in
        List.iter
          (fun (what, toks) ->
            Alcotest.(check bool) (what ^ ": tokens identical") true (toks = plain);
            let _, l = toks.(0) in
            Alcotest.(check int) (what ^ ": first line") 1 l.Loc.line;
            Alcotest.(check int) (what ^ ": first col — the BOM costs no column") 1
              l.Loc.col)
          [
            ("table", Lexer.tokens ~file:"t" (bom ^ src));
            ("reference", Lexer.Reference.tokens ~file:"t" (bom ^ src));
          ]);
    Alcotest.test_case "BOM-free input is untouched" `Quick (fun () ->
        Alcotest.(check bool) "same streams" true
          (Lexer.tokens ~file:"t" src = Lexer.Reference.tokens ~file:"t" src));
  ]

(* -- unit: escape diagnostic location ------------------------------------ *)

let escape_tests =
  [
    Alcotest.test_case "invalid escape points at its backslash" `Quick (fun () ->
        (* "ab\q" — the backslash opens the literal's 4th column *)
        let src = {|"ab\q"|} in
        List.iter
          (fun (what, lex) ->
            match lex src with
            | (_ : (Token.t * Loc.t) array) ->
                Alcotest.failf "%s: invalid escape was accepted" what
            | exception Diag.Error d ->
                Alcotest.(check string) (what ^ ": message")
                  "invalid escape sequence: \\q" d.Diag.message;
                Alcotest.(check int) (what ^ ": line") 1 d.Diag.loc.Loc.line;
                Alcotest.(check int) (what ^ ": column of the backslash") 4
                  d.Diag.loc.Loc.col)
          [
            ("table", Lexer.tokens ~file:"t");
            ("reference", Lexer.Reference.tokens ~file:"t");
          ]);
  ]

(* -- unit: count_loc ----------------------------------------------------- *)

let loc_tests =
  let check what expect src =
    Alcotest.(check int) what expect (Pipeline.count_loc src)
  in
  [
    Alcotest.test_case "block-comment-only lines do not count" `Quick (fun () ->
        check "single line" 0 "/* c */\n";
        check "multi-line interior" 0 "/* a\n   b\n   c */\n";
        check "code before" 1 "x = 1; /* c */\n";
        check "code after" 1 "/* c */ x = 1;\n");
    Alcotest.test_case "multi-line block comments split code lines correctly" `Quick
      (fun () ->
        (* line 1 has x, line 2 is comment interior + y *)
        check "both ends carry code" 2 "x = 1; /* a\nb */ y = 2;\n";
        check "interior-only middle line" 2 "x = 1; /* a\nb\nc */ y = 2;\n");
    Alcotest.test_case "comment openers inside strings still count as code" `Quick
      (fun () ->
        check "block opener in string" 1 "s = \"/* not a comment */\";\n";
        check "line opener in string" 1 "s = \"// also code\";\n");
    Alcotest.test_case "line comments and blanks (PR-1 behaviour kept)" `Quick (fun () ->
        check "three" 3 "a\n\n  \nb\nc\n";
        check "two" 2 "// header\na\n  // indented comment\nb // trailing\n\n");
  ]

(* -- equivalence properties ---------------------------------------------- *)

let gen_seed = QCheck2.Gen.int_bound 1_000_000

let lexer_equiv =
  QCheck2.Test.make ~name:"table-driven lexer = reference lexer (tokens + locs)"
    ~count:200 gen_seed (fun seed ->
      let src = synth_src seed in
      Lexer.tokens ~file:"synth" src = Lexer.Reference.tokens ~file:"synth" src)

let parser_equiv =
  QCheck2.Test.make ~name:"token-array parse = source parse (ASTs)" ~count:200 gen_seed
    (fun seed ->
      let src = synth_src seed in
      Parser.parse_program ~file:"synth" src
      = Parser.parse_program_tokens ~file:"synth"
          (Lexer.Reference.tokens ~file:"synth" src))

let entry_key (e : Cache.entry) =
  (e.Cache.e_potential, e.Cache.e_after_sound, e.Cache.e_after_unsound, e.Cache.e_report)

let entry_of src ?interner name =
  Cache.entry_of_result (Pipeline.analyze ?interner ~file:name src)

(* One table accumulating across all 100 runs of the property — exactly
   the batch-sharing shape: by the later runs the shared table's ids
   bear no relation to a fresh table's, so byte-identity here proves
   the engine's output is id-independent. *)
let interner_equiv =
  let shared = Pipeline.create_interner () in
  QCheck2.Test.make ~name:"shared-interner report = fresh-interner report" ~count:100
    gen_seed (fun seed ->
      let src = synth_src seed in
      entry_key (entry_of src "synth") = entry_key (entry_of src ~interner:shared "synth"))

(* -- corpus sweeps -------------------------------------------------------- *)

(* Naive restatement of the LOC spec ("a line counts iff it carries at
   least one character that is neither whitespace nor comment"), written
   as an explicit state machine over individual characters — structured
   nothing like the single-pass scanner in [Pipeline.count_loc], so a
   divergence on real sources means one of the two drifted from the
   spec. *)
let spec_loc src =
  let n = String.length src in
  let count = ref 0 in
  let state = ref `Code (* `Code | `Line_comment | `Block_comment | `String *) in
  let line_has_code = ref false in
  let flush () =
    if !line_has_code then incr count;
    line_has_code := false
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let next = if !i + 1 < n then Some src.[!i + 1] else None in
    (match (!state, c, next) with
    | _, '\n', _ ->
        if !state = `Line_comment then state := `Code;
        flush ();
        (* a lexically-invalid newline inside a literal marks both
           lines as code, like the scanner does *)
        if !state = `String then line_has_code := true
    | `Code, '/', Some '/' ->
        state := `Line_comment;
        incr i
    | `Code, '/', Some '*' ->
        state := `Block_comment;
        incr i
    | `Code, '"', _ ->
        line_has_code := true;
        state := `String
    | `Code, (' ' | '\t' | '\r'), _ -> ()
    | `Code, _, _ -> line_has_code := true
    | `String, '\\', Some _ ->
        line_has_code := true;
        incr i
    | `String, '"', _ -> state := `Code
    | `String, _, _ -> line_has_code := true
    | `Block_comment, '*', Some '/' ->
        state := `Code;
        incr i
    | (`Line_comment | `Block_comment), _, _ -> ());
    incr i
  done;
  flush ();
  !count

let corpus_tests =
  [
    Alcotest.test_case "corpus: count_loc matches the LOC spec on all 27 apps" `Quick
      (fun () ->
        List.iter
          (fun (app : Corpus.app) ->
            Alcotest.(check int)
              (app.Corpus.name ^ ": count_loc = spec")
              (spec_loc app.Corpus.source)
              (Pipeline.count_loc app.Corpus.source))
          (Lazy.force Corpus.all));
    Alcotest.test_case "corpus: lexer and parser equivalence on all 27 apps" `Quick
      (fun () ->
        List.iter
          (fun (app : Corpus.app) ->
            let name = app.Corpus.name and src = app.Corpus.source in
            let toks = Lexer.tokens ~file:name src in
            let ref_toks = Lexer.Reference.tokens ~file:name src in
            Alcotest.(check bool) (name ^ ": token streams identical") true
              (toks = ref_toks);
            Alcotest.(check bool) (name ^ ": ASTs identical") true
              (Parser.parse_program ~file:name src
              = Parser.parse_program_tokens ~file:name ref_toks))
          (Lazy.force Corpus.all));
    Alcotest.test_case "corpus: batch-shared interning is byte-identical" `Slow
      (fun () ->
        let apps = Lazy.force Corpus.all in
        let fresh =
          List.map (fun (a : Corpus.app) -> entry_of a.Corpus.source a.Corpus.name) apps
        in
        (* share one table across the batch, analyzed in REVERSE order so
           the interned ids disagree maximally with the fresh runs *)
        let shared_tbl = Pipeline.create_interner () in
        let shared =
          List.rev
            (List.map
               (fun (a : Corpus.app) ->
                 entry_of a.Corpus.source ~interner:shared_tbl a.Corpus.name)
               (List.rev apps))
        in
        List.iter2
          (fun (a : Corpus.app) (f, s) ->
            Alcotest.(check bool) (a.Corpus.name ^ ": report bytes identical") true
              (entry_key f = entry_key s))
          apps
          (List.combine fresh shared));
  ]

let suite =
  [
    ("frontend", bom_tests @ escape_tests @ loc_tests);
    ( "frontend-equivalence",
      List.map QCheck_alcotest.to_alcotest [ lexer_equiv; parser_equiv; interner_equiv ]
      @ corpus_tests );
  ]
