(* Datalog engine tests: fixpoints, stratified negation, range
   restriction, and a qcheck property comparing the semi-naive engine
   against a reference naive evaluator on random graphs. *)

open Nadroid_datalog

let v x = Engine.Var x

let path_db edges =
  let db = Engine.create () in
  List.iter (fun (a, b) -> Engine.fact db "edge" [ a; b ]) edges;
  Engine.add_rule db (Engine.atom "path" [ v "x"; v "y" ])
    [ Engine.Pos (Engine.atom "edge" [ v "x"; v "y" ]) ];
  Engine.add_rule db (Engine.atom "path" [ v "x"; v "z" ])
    [
      Engine.Pos (Engine.atom "path" [ v "x"; v "y" ]);
      Engine.Pos (Engine.atom "edge" [ v "y"; v "z" ]);
    ];
  db

let tests =
  [
    Alcotest.test_case "transitive closure" `Quick (fun () ->
        let db = path_db [ ("a", "b"); ("b", "c"); ("c", "d") ] in
        Alcotest.(check bool) "a->d" true (Engine.mem db "path" [ "a"; "d" ]);
        Alcotest.(check bool) "no back" false (Engine.mem db "path" [ "d"; "a" ]);
        Alcotest.(check int) "count" 6 (Engine.cardinal db "path"));
    Alcotest.test_case "cycle closure terminates" `Quick (fun () ->
        let db = path_db [ ("a", "b"); ("b", "a") ] in
        Alcotest.(check bool) "self via cycle" true (Engine.mem db "path" [ "a"; "a" ]);
        Alcotest.(check int) "count" 4 (Engine.cardinal db "path"));
    Alcotest.test_case "constants in rule bodies" `Quick (fun () ->
        let db = path_db [ ("a", "b"); ("b", "c"); ("x", "y") ] in
        Engine.add_rule db (Engine.atom "from_a" [ v "y" ])
          [ Engine.Pos { Engine.pred = "path"; args = [ Engine.const db "a"; v "y" ] } ];
        Alcotest.(check int) "reachable from a" 2 (Engine.cardinal db "from_a"));
    Alcotest.test_case "stratified negation" `Quick (fun () ->
        let db = path_db [ ("a", "b"); ("b", "c") ] in
        List.iter (fun n -> Engine.fact db "node" [ n ]) [ "a"; "b"; "c"; "z" ];
        Engine.add_rule db (Engine.atom "isolated" [ v "x" ])
          [
            Engine.Pos (Engine.atom "node" [ v "x" ]);
            Engine.Neg (Engine.atom "path" [ Engine.const db "a"; v "x" ]);
          ];
        Alcotest.(check bool) "z isolated" true (Engine.mem db "isolated" [ "z" ]);
        Alcotest.(check bool) "b not isolated" false (Engine.mem db "isolated" [ "b" ]);
        (* a is isolated from a: no self-path without a cycle *)
        Alcotest.(check bool) "a isolated from a" true (Engine.mem db "isolated" [ "a" ]));
    Alcotest.test_case "negation through two strata" `Quick (fun () ->
        let db = Engine.create () in
        Engine.fact db "p" [ "1" ];
        Engine.fact db "q" [ "1" ];
        Engine.fact db "q" [ "2" ];
        Engine.add_rule db (Engine.atom "not_p" [ v "x" ])
          [ Engine.Pos (Engine.atom "q" [ v "x" ]); Engine.Neg (Engine.atom "p" [ v "x" ]) ];
        Engine.add_rule db (Engine.atom "top" [ v "x" ])
          [ Engine.Pos (Engine.atom "q" [ v "x" ]); Engine.Neg (Engine.atom "not_p" [ v "x" ]) ];
        Alcotest.(check bool) "not_p(2)" true (Engine.mem db "not_p" [ "2" ]);
        Alcotest.(check bool) "top(1)" true (Engine.mem db "top" [ "1" ]);
        Alcotest.(check bool) "top(2)" false (Engine.mem db "top" [ "2" ]));
    Alcotest.test_case "unstratifiable program rejected" `Quick (fun () ->
        let db = Engine.create () in
        Engine.fact db "seed" [ "a" ];
        Engine.add_rule db (Engine.atom "p" [ v "x" ])
          [ Engine.Pos (Engine.atom "seed" [ v "x" ]); Engine.Neg (Engine.atom "q" [ v "x" ]) ];
        Engine.add_rule db (Engine.atom "q" [ v "x" ])
          [ Engine.Pos (Engine.atom "seed" [ v "x" ]); Engine.Neg (Engine.atom "p" [ v "x" ]) ];
        Alcotest.check_raises "negative cycle"
          (Invalid_argument "Datalog program is not stratifiable (negative cycle)") (fun () ->
            Engine.solve db));
    Alcotest.test_case "unbound head variable rejected" `Quick (fun () ->
        let db = Engine.create () in
        ignore (Engine.relation db "e" ~arity:1);
        Alcotest.(check bool) "raises" true
          (try
             Engine.add_rule db (Engine.atom "p" [ v "x"; v "y" ])
               [ Engine.Pos (Engine.atom "e" [ v "x" ]) ];
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "unbound negated variable rejected" `Quick (fun () ->
        let db = Engine.create () in
        ignore (Engine.relation db "e" ~arity:1);
        ignore (Engine.relation db "q" ~arity:1);
        Alcotest.(check bool) "raises" true
          (try
             Engine.add_rule db (Engine.atom "p" [ v "x" ])
               [ Engine.Pos (Engine.atom "e" [ v "x" ]); Engine.Neg (Engine.atom "q" [ v "z" ]) ];
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let db = Engine.create () in
        Engine.fact db "e" [ "a"; "b" ];
        Alcotest.(check bool) "raises" true
          (try
             ignore (Engine.relation db "e" ~arity:3);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "incremental facts re-solve" `Quick (fun () ->
        let db = path_db [ ("a", "b") ] in
        Alcotest.(check bool) "before" false (Engine.mem db "path" [ "a"; "c" ]);
        Engine.fact db "edge" [ "b"; "c" ];
        Alcotest.(check bool) "after" true (Engine.mem db "path" [ "a"; "c" ]));
    Alcotest.test_case "query returns rows" `Quick (fun () ->
        let db = path_db [ ("a", "b") ] in
        match Engine.query db "path" with
        | [ [| "a"; "b" |] ] -> ()
        | rows -> Alcotest.failf "unexpected rows (%d)" (List.length rows));
  ]

(* Reference naive evaluator for reachability, to compare against. *)
let naive_reach edges =
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let reach = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.replace reach (a, b) ()) edges;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            List.iter
              (fun z ->
                if
                  Hashtbl.mem reach (x, y) && Hashtbl.mem reach (y, z)
                  && not (Hashtbl.mem reach (x, z))
                then begin
                  Hashtbl.replace reach (x, z) ();
                  changed := true
                end)
              nodes)
          nodes)
      nodes
  done;
  reach

let gen_edges =
  QCheck2.Gen.(
    list_size (int_bound 20)
      (pair (map string_of_int (int_bound 6)) (map string_of_int (int_bound 6))))

let closure_matches_naive =
  QCheck2.Test.make ~name:"semi-naive closure = naive closure" ~count:200 gen_edges
    (fun edges ->
      let db = path_db edges in
      let reference = naive_reach edges in
      let engine_count = Engine.cardinal db "path" in
      let naive_count = Hashtbl.length reference in
      engine_count = naive_count
      && Hashtbl.fold (fun (a, b) () acc -> acc && Engine.mem db "path" [ a; b ]) reference true)

let monotone_under_new_facts =
  QCheck2.Test.make ~name:"adding facts never removes derived tuples" ~count:100
    QCheck2.Gen.(pair gen_edges (pair (map string_of_int (int_bound 6)) (map string_of_int (int_bound 6))))
    (fun (edges, extra) ->
      let db = path_db edges in
      Engine.solve db;
      let before = Engine.cardinal db "path" in
      Engine.fact db "edge" [ fst extra; snd extra ];
      Engine.cardinal db "path" >= before)

(* [Relation.add] must maintain existing column indexes in place: after
   inserts, lookups through a pre-built index see exactly the tuples a
   fresh scan would, and the index is neither dropped nor duplicated. *)
let index_survives_inserts () =
  let r = Relation.create ~name:"t" ~arity:2 () in
  ignore (Relation.add r [| 1; 10 |]);
  ignore (Relation.add r [| 2; 20 |]);
  (* build indexes on both columns, then insert more tuples *)
  let lookup0 k = Relation.lookup r ~cols:[ 0 ] ~key:[ k ] in
  let lookup1 k = Relation.lookup r ~cols:[ 1 ] ~key:[ k ] in
  Alcotest.(check int) "col0 pre-insert" 1 (List.length (lookup0 1));
  Alcotest.(check int) "col1 pre-insert" 1 (List.length (lookup1 20));
  Alcotest.(check int) "two live indexes" 2 (Relation.n_indexes r);
  Alcotest.(check bool) "insert is new" true (Relation.add r [| 1; 30 |]);
  Alcotest.(check bool) "duplicate rejected" false (Relation.add r [| 1; 30 |]);
  ignore (Relation.add r [| 3; 20 |]);
  Alcotest.(check int) "indexes survive inserts" 2 (Relation.n_indexes r);
  let sorted l = List.sort compare (List.map Array.to_list l) in
  Alcotest.(check (list (list int)))
    "col0 bucket updated in place"
    [ [ 1; 10 ]; [ 1; 30 ] ]
    (sorted (lookup0 1));
  Alcotest.(check (list (list int)))
    "col1 bucket updated in place"
    [ [ 2; 20 ]; [ 3; 20 ] ]
    (sorted (lookup1 20));
  Alcotest.(check (list (list int))) "fresh bucket visible" [ [ 3; 20 ] ] (sorted (lookup0 3));
  Alcotest.(check (list (list int))) "absent key still empty" [] (sorted (lookup0 99));
  Alcotest.(check int) "lookups created no extra indexes" 2 (Relation.n_indexes r);
  (* a full unindexed scan agrees with the maintained indexes *)
  Alcotest.(check int) "cardinal" 4 (Relation.cardinal r);
  Alcotest.(check (list (list int)))
    "index union = relation"
    (sorted (Relation.to_list r))
    (sorted (List.concat_map lookup0 [ 1; 2; 3 ]))

(* Concurrent interning: N domains racing overlapping name sets (more
   distinct names than the initial 256-slot [by_id], so resize races are
   exercised too) must agree on one bijection — same name, same id;
   dense ids; [name] inverting [intern]. *)
let symbol_concurrent_bijection =
  QCheck2.Test.make ~name:"concurrent interning yields a consistent bijection" ~count:10
    QCheck2.Gen.(pair (int_range 300 700) (int_bound 1000))
    (fun (distinct, salt) ->
      let names = Array.init distinct (fun i -> Printf.sprintf "sym-%d-%d" salt i) in
      let sym = Symbol.create () in
      let order d =
        (* each domain interns every name, in its own rotation *)
        let rot = d * (distinct / 4) in
        List.init distinct (fun i -> names.((i + rot) mod distinct))
      in
      let domains =
        List.init 4 (fun d ->
            let mine = order d in
            Domain.spawn (fun () -> List.map (fun n -> (n, Symbol.intern sym n)) mine))
      in
      let per_domain = List.map Domain.join domains in
      (* one consistent bijection: idempotent re-interning agrees with
         what every domain saw, names invert, ids are dense *)
      Symbol.size sym = distinct
      && List.for_all
           (List.for_all (fun (n, id) ->
                Symbol.intern sym n = id
                && Symbol.find_opt sym n = Some id
                && String.equal (Symbol.name sym id) n))
           per_domain
      && List.sort_uniq compare
           (List.map (fun (_, id) -> id) (List.concat per_domain))
         = List.init distinct Fun.id)

let suite =
  [
    ("datalog", tests @ [ Alcotest.test_case "indexes survive inserts" `Quick index_survives_inserts ]);
    ( "datalog-properties",
      List.map QCheck_alcotest.to_alcotest
        [ closure_matches_naive; monotone_under_new_facts; symbol_concurrent_bijection ]
    );
  ]
