(* Robustness of the analysis runtime: the fault taxonomy's guarantees
   hold under hostile inputs and starved budgets.

   - arbitrary truncation of a real source is either analyzed cleanly or
     rejected with a frontend diagnostic — never any other exception;
   - one poisoned input in a parallel corpus run costs exactly its own
     slot, never the batch;
   - a starved PTA budget degrades to a coarser k whose warning set is a
     superset of the full-precision run (sound degradation);
   - the chaos harness itself finds nothing on the shipped corpus;
   - user-reachable runtime faults in the simulator surface as located
     [Interp.Stuck] records, not as crashes of the harness. *)

module Pipeline = Nadroid_core.Pipeline
module Fault = Nadroid_core.Fault
module Detect = Nadroid_core.Detect
module Corpus = Nadroid_corpus.Corpus
module Chaos = Nadroid_corpus.Chaos
module Clock = Nadroid_clock.Clock

let analyze_src src =
  Fault.wrap (fun () -> Pipeline.analyze ~file:"fuzz" src)

(* Truncating a well-formed source at any byte must hit the structured
   frontend path (or still parse, for cuts in trailing whitespace or at
   a top-level boundary) — never an assertion, Not_found, or other
   internal failure. *)
let truncation_prop =
  QCheck2.Test.make ~name:"truncated corpus sources fail only with frontend diagnostics"
    ~count:120
    QCheck2.Gen.(
      pair (oneofl (Lazy.force Corpus.all)) (float_bound_inclusive 1.0))
    (fun (app, frac) ->
      let src = app.Corpus.source in
      let cut = int_of_float (frac *. float_of_int (String.length src)) in
      match analyze_src (String.sub src 0 cut) with
      | Ok _ | Error (Fault.Frontend _) -> true
      | Error (Fault.Budget _ | Fault.Internal _) -> false)

let poisoned_corpus () =
  let good = Lazy.force Corpus.all in
  let poisoned =
    { (List.hd good) with Corpus.name = "poisoned"; source = "class Broken extends {{{" }
  in
  let results = Corpus.analyze_all ~jobs:2 (good @ [ poisoned ]) in
  Alcotest.(check int) "all slots present" (List.length good + 1) (List.length results);
  let oks, errs = List.partition (fun (_, r) -> Result.is_ok r) results in
  Alcotest.(check int) "good apps all analyzed" (List.length good) (List.length oks);
  match errs with
  | [ (app, Error (Fault.Frontend _)) ] ->
      Alcotest.(check string) "failure is the poisoned app" "poisoned" app.Corpus.name
  | _ -> Alcotest.fail "expected exactly one frontend fault"

(* Budget = the exact step count of an unbudgeted k=0 fixpoint: k=2 and
   k=1 exhaust it, the k=0 retry just fits, and the run must come back
   degraded with every full-precision warning still present. *)
let degraded_superset () =
  let app =
    match Corpus.find "Zxing" with Some a -> a | None -> Alcotest.fail "no Zxing"
  in
  let full = Pipeline.analyze ~file:app.Corpus.name app.Corpus.source in
  let prog = full.Pipeline.prog in
  let k0_steps = (Nadroid_analysis.Pta.run ~k:0 prog).Nadroid_analysis.Pta.steps in
  Alcotest.(check bool)
    "k=0 is strictly cheaper than k=2" true
    (k0_steps < full.Pipeline.pta.Nadroid_analysis.Pta.steps);
  let config =
    {
      Pipeline.default_config with
      Pipeline.budgets = { Pipeline.no_budgets with Pipeline.pta_steps = Some k0_steps };
    }
  in
  let degraded = Pipeline.analyze_prog ~config prog in
  Alcotest.(check bool)
    "run is marked degraded" true
    (degraded.Pipeline.metrics.Pipeline.m_degraded <> []);
  let keys t = List.map Detect.warning_key t.Pipeline.after_unsound in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "full-precision warning %s survives degradation" (fst k))
        true
        (List.mem k (keys degraded)))
    (keys full)

(* Budget auto-calibration headroom: the LOC-derived default budget must
   leave every corpus app fully precise — a degradation under the default
   config would mean the calibration constant regressed. *)
let auto_budget_headroom () =
  Alcotest.(check int) "derived floor" 5_500 (Pipeline.auto_pta_steps ~loc:1);
  List.iter
    (fun (app : Corpus.app) ->
      let t = Pipeline.analyze ~file:app.Corpus.name app.Corpus.source in
      (match t.Pipeline.config.Pipeline.budgets.Pipeline.pta_steps with
      | Some s ->
          Alcotest.(check bool)
            (app.Corpus.name ^ ": budget derived from loc") true
            (s = Pipeline.auto_pta_steps ~loc:(Pipeline.count_loc app.Corpus.source))
      | None -> Alcotest.fail (app.Corpus.name ^ ": no derived budget"));
      Alcotest.(check (list string))
        (app.Corpus.name ^ ": undegraded under the derived budget")
        []
        (List.map Pipeline.degradation_to_string t.Pipeline.metrics.Pipeline.m_degraded))
    (Lazy.force Corpus.all)

(* The degrade ladder engages at the derived budget too: squashing a
   source onto one line drives the LOC-derived budget to its 5,500-step
   floor, which InstaMaterial's k=2 and k=1 solves exhaust while k=0
   still fits — so [Pipeline.analyze] with no explicit budget must come
   back degraded-to-k=0 with a warning superset of the full-precision
   run. *)
let degrade_ladder_at_derived_budget () =
  let app =
    match Corpus.find "InstaMaterial" with
    | Some a -> a
    | None -> Alcotest.fail "no InstaMaterial"
  in
  let squashed =
    String.concat " "
      (List.filter
         (fun l ->
           let l = String.trim l in
           (not (String.equal l ""))
           && not (String.length l >= 2 && l.[0] = '/' && l.[1] = '/'))
         (String.split_on_char '\n' app.Corpus.source))
  in
  Alcotest.(check int) "squashed to one line" 1 (Pipeline.count_loc squashed);
  let t = Pipeline.analyze ~file:"one-line" squashed in
  Alcotest.(check (option int))
    "budget derived at the floor" (Some (Pipeline.auto_pta_steps ~loc:1))
    t.Pipeline.config.Pipeline.budgets.Pipeline.pta_steps;
  Alcotest.(check (list string))
    "degraded to k=0" [ "pta-k=0" ]
    (List.map Pipeline.degradation_to_string t.Pipeline.metrics.Pipeline.m_degraded);
  let full = Pipeline.analyze_prog t.Pipeline.prog in
  let keys r = List.map Detect.warning_key r.Pipeline.after_unsound in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "full-precision warning %s survives the derived-budget ladder" (fst k))
        true
        (List.mem k (keys t)))
    (keys full)

(* In-flight deadline cancellation: the adversarial Synth app spends
   almost all its time inside the filter phase (RHB re-analyzes a long
   onResume body per warning), so a deadline that expires mid-filters
   must cancel the running loop at a checkpoint — not wait for the phase
   to finish. The run must come back well inside 2x the deadline, be
   marked degraded (filters skipped), and its warning set must be a
   superset of the full-precision run's (skipping filters only
   over-reports). *)
let deadline_is_honoured_in_flight () =
  let src = Nadroid_corpus.Synth.adversarial ~seed:0 ~size:40 in
  let d = 0.4 in
  let config =
    {
      Pipeline.default_config with
      Pipeline.budgets = { Pipeline.no_budgets with Pipeline.deadline = Some d };
    }
  in
  let t0 = Clock.now () in
  let t = Pipeline.analyze ~config ~file:"adversarial" src in
  let wall = Clock.now () -. t0 in
  Alcotest.(check bool)
    (Fmt.str "terminates within 2x the deadline (took %.2fs)" wall)
    true (wall <= 2.0 *. d);
  (match t.Pipeline.metrics.Pipeline.m_degraded with
  | [] -> Alcotest.fail "expected a degraded run under the pathological app"
  | ds ->
      Alcotest.(check bool)
        "degradation is filter-skipping" true
        (List.exists
           (function Pipeline.D_filters_skipped _ -> true | Pipeline.D_pta_k _ -> false)
           ds));
  let full = Pipeline.analyze ~file:"adversarial" src in
  Alcotest.(check (list string)) "full-precision run is undegraded" []
    (List.map Pipeline.degradation_to_string full.Pipeline.metrics.Pipeline.m_degraded);
  let keys r = List.map Detect.warning_key r.Pipeline.after_unsound in
  let degraded_keys = keys t in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "full-precision warning %s survives the deadline cut" (fst k))
        true (List.mem k degraded_keys))
    (keys full)

(* Deadlines live on the monotonic clock, so a wall-clock step (NTP
   correction, DST, an operator fixing the date) between deriving a
   deadline and hitting a checkpoint must change nothing: a forward jump
   must not fire it early, a backward jump must not starve it — it still
   expires exactly once, at its real instant. [Clock.step_wall] skews
   only the wall clock ({!Clock.wall}, display); if any deadline check
   consulted wall time, one of the two runs below would break. *)
let deadline_survives_wall_clock_step () =
  let with_budget d =
    {
      Pipeline.default_config with
      Pipeline.budgets = { Pipeline.no_budgets with Pipeline.deadline = Some d };
    }
  in
  let app =
    match Corpus.find "Zxing" with Some a -> a | None -> Alcotest.fail "no Zxing"
  in
  (* wall jumps a day ahead mid-run: a wall-derived deadline would have
     expired before the first checkpoint *)
  Fun.protect
    ~finally:(fun () -> Clock.step_wall (-86_400.0))
    (fun () ->
      Clock.step_wall 86_400.0;
      let t =
        Pipeline.analyze ~config:(with_budget 30.0) ~file:app.Corpus.name app.Corpus.source
      in
      Alcotest.(check (list string))
        "forward wall step does not fire a live deadline" []
        (List.map Pipeline.degradation_to_string t.Pipeline.metrics.Pipeline.m_degraded));
  (* wall jumps a day back: a wall-derived deadline would never expire,
     letting the pathological app run the filter phase to completion *)
  Fun.protect
    ~finally:(fun () -> Clock.step_wall 86_400.0)
    (fun () ->
      Clock.step_wall (-86_400.0);
      let d = 0.4 in
      let src = Nadroid_corpus.Synth.adversarial ~seed:0 ~size:40 in
      let t0 = Clock.now () in
      let t = Pipeline.analyze ~config:(with_budget d) ~file:"adversarial" src in
      let wall = Clock.now () -. t0 in
      Alcotest.(check bool)
        (Fmt.str "backward wall step does not starve the deadline (took %.2fs)" wall)
        true (wall <= 2.0 *. d);
      Alcotest.(check bool)
        "the deadline still expired (run degraded) exactly once" true
        (t.Pipeline.metrics.Pipeline.m_degraded <> []))

let chaos_smoke () =
  let s = Chaos.run ~jobs:2 ~seed:7 ~mutants:48 (Lazy.force Corpus.all) in
  Alcotest.(check int) "all mutants ran" 48 s.Chaos.s_mutants;
  if Chaos.failed s then Alcotest.failf "chaos found failures:@.%a" Chaos.pp_summary s

let mutate_deterministic () =
  let src = (List.hd (Lazy.force Corpus.all)).Corpus.source in
  let m i = Chaos.mutate (Random.State.make [| 3; i |]) src in
  List.iter (fun i -> Alcotest.(check (pair string string)) "same rng, same mutant" (m i) (m i))
    [ 0; 1; 2; 17 ]

(* A division by zero inside a callback is a user fault: the simulator
   must record a located stuck and keep the harness alive. *)
let stuck_is_located () =
  let prog =
    Nadroid_ir.Prog.of_source ~file:"t"
      {|class A extends Activity { field int d;
          method void onCreate() { var int x = 7 / d; log(i2s(x)); } }|}
  in
  let o = Nadroid_dynamic.Explorer.random_run ~resume_on_npe:true prog ~seed:0 ~max_steps:40 in
  match o.Nadroid_dynamic.Explorer.o_stucks with
  | [] -> Alcotest.fail "expected a stuck record"
  | s :: _ ->
      Alcotest.(check string)
        "reason" "division by zero" s.Nadroid_dynamic.Interp.st_reason;
      Alcotest.(check string)
        "faulting method" "onCreate" s.Nadroid_dynamic.Interp.st_mref.Nadroid_ir.Instr.mr_name

let suite =
  [
    ( "robustness",
      [
        QCheck_alcotest.to_alcotest truncation_prop;
        Alcotest.test_case "poisoned corpus app fails alone" `Quick poisoned_corpus;
        Alcotest.test_case "starved PTA degrades to a warning superset" `Quick degraded_superset;
        Alcotest.test_case "auto budget leaves the corpus undegraded" `Quick auto_budget_headroom;
        Alcotest.test_case "degrade ladder engages at the derived budget" `Quick
          degrade_ladder_at_derived_budget;
        Alcotest.test_case "deadline is honoured in flight" `Quick
          deadline_is_honoured_in_flight;
        Alcotest.test_case "deadline survives a wall-clock step" `Quick
          deadline_survives_wall_clock_step;
        Alcotest.test_case "chaos smoke finds nothing on the corpus" `Slow chaos_smoke;
        Alcotest.test_case "mutator is deterministic per (seed, index)" `Quick
          mutate_deterministic;
        Alcotest.test_case "runtime faults surface as located stucks" `Quick stuck_is_located;
      ] );
  ]
