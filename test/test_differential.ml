(* Differential soundness harness: generator cleanliness over many
   seeds, sabotage detection with deterministic shrinking, an
   end-to-end difftest smoke, and the golden-report regression over the
   shipped corpus. *)

module Fault = Nadroid_core.Fault
module Synth = Nadroid_corpus.Synth
module Differential = Nadroid_corpus.Differential
module Golden = Nadroid_corpus.Golden

(* Generated apps are well-typed by construction: parse, sema and
   lowering succeed for 200 consecutive seeds. *)
let synth_sources_are_clean () =
  for seed = 0 to 199 do
    let src, _ = Synth.render (Synth.generate ~seed) in
    match
      Fault.wrap (fun () ->
          Nadroid_ir.Prog.of_source ~file:(Printf.sprintf "synth%d" seed) src)
    with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "seed %d does not lower: %s" seed (Fault.to_string f)
  done

(* A cheaper oracle than the CLI default keeps the suite fast; the
   properties under test are oracle-independent. *)
let small_oracle = { Differential.dr_runs = 12; dr_guided = 2; dr_steps = 40 }

(* The guard-inverted IG sabotage must be caught on generated apps, the
   shrunk reproducer must be no larger than the original, and shrinking
   must be a pure function of the app. *)
let weakened_ig_is_caught () =
  let weaken = Differential.W_invert_ig in
  let cxs =
    List.filter_map
      (fun seed ->
        let t = Synth.generate ~seed in
        match Differential.check ~oracle:small_oracle ~weaken t with
        | _, Some cx -> Some (t, cx)
        | _, None -> None)
      (List.init 20 Fun.id)
  in
  Alcotest.(check bool) "sabotage caught on at least one app" true (cxs <> []);
  List.iter
    (fun (t, cx) ->
      Alcotest.(check bool)
        "shrunk app is no larger" true
        (Synth.size cx.Differential.cx_shrunk <= Synth.size t);
      Alcotest.(check bool)
        "shrunk app still has a discrepancy" true
        ((Differential.examine ~oracle:small_oracle ~weaken cx.Differential.cx_shrunk)
           .Differential.vd_discrepancies
        <> []);
      let again = Differential.shrink ~oracle:small_oracle ~weaken t in
      Alcotest.(check string) "shrinking is deterministic" cx.Differential.cx_shrunk_src
        (fst (Synth.render again)))
    cxs

(* End-to-end smoke of the unweakened harness: a batch of generated
   apps yields no soundness counterexamples and no runtime faults. *)
let difftest_smoke () =
  let s = Differential.run ~jobs:2 ~oracle:small_oracle ~seed:42 ~apps:12 () in
  Alcotest.(check int) "all apps examined" 12 s.Differential.su_apps;
  if Differential.failed s || s.Differential.su_faults <> [] then
    Alcotest.failf "difftest failed:@.%a" Differential.pp_summary s

(* The committed golden reports match a fresh analysis byte-for-byte. *)
let golden_matches () =
  let results = Golden.check ~dir:"golden" ~jobs:2 () in
  Alcotest.(check bool) "golden files present" true (results <> []);
  List.iter
    (fun (name, st) ->
      if st <> Golden.G_ok then Alcotest.failf "%a" Golden.pp_status (name, st))
    results

let suite =
  [
    ( "differential",
      [
        Alcotest.test_case "200 generated apps parse, check and lower" `Quick
          synth_sources_are_clean;
        Alcotest.test_case "weakened IG is caught with a deterministic shrink" `Slow
          weakened_ig_is_caught;
        Alcotest.test_case "difftest smoke finds no counterexamples" `Slow difftest_smoke;
        Alcotest.test_case "golden reports match the corpus" `Slow golden_matches;
      ] );
  ]
