(* The crash-survival stack, end to end: the journal replays exactly its
   valid record prefix and never a half-written tail; the cache absorbs
   injected I/O faults without losing a computed result or serving wrong
   bytes; a supervised worker that is killed, aborted or wedged costs
   exactly its own entry while the pool keeps serving; and a batch run
   killed mid-flight resumes to byte-identical output. Fault injection
   ({!Nadroid_core.Faultinject}) makes every crash deterministic. *)

module Pipeline = Nadroid_core.Pipeline
module Cache = Nadroid_core.Cache
module Fault = Nadroid_core.Fault
module Journal = Nadroid_core.Journal
module Supervise = Nadroid_core.Supervise
module Faultinject = Nadroid_core.Faultinject
module Faultfuzz = Nadroid_corpus.Faultfuzz
module Corpus = Nadroid_corpus.Corpus
module Protocol = Nadroid_serve.Protocol
module Server = Nadroid_serve.Server
module Client = Nadroid_serve.Client
module Clock = Nadroid_clock.Clock

let is_infix affix s = Astring.String.is_infix ~affix s

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "_crash_test.%d.%d" (Unix.getpid ()) !n

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let small_app () =
  match Lazy.force Corpus.all with a :: _ -> a | [] -> Alcotest.fail "empty corpus"

let zxing () =
  match Corpus.find "Zxing" with Some a -> a | None -> Alcotest.fail "no Zxing"

let check_entry_equal msg (a : Cache.entry) (b : Cache.entry) =
  Alcotest.(check int) (msg ^ ": potential") a.Cache.e_potential b.Cache.e_potential;
  Alcotest.(check int) (msg ^ ": after-sound") a.Cache.e_after_sound b.Cache.e_after_sound;
  Alcotest.(check int) (msg ^ ": after-unsound") a.Cache.e_after_unsound b.Cache.e_after_unsound;
  Alcotest.(check string) (msg ^ ": report bytes") a.Cache.e_report b.Cache.e_report

(* -- journal ------------------------------------------------------------- *)

let zero_metrics =
  {
    Pipeline.m_frontend_lex = 0.0;
    m_frontend_parse = 0.0;
    m_frontend_sema = 0.0;
    m_frontend_lower = 0.0;
    m_pta = 0.0;
    m_aux = 0.0;
    m_threadify = 0.0;
    m_detect = 0.0;
    m_ctx = 0.0;
    m_filter = 0.0;
    m_wall = 0.0;
    m_pta_visits = 0;
    m_pta_steps = 0;
    m_pta_tuples = 0;
    m_pruned = [];
    m_degraded = [];
  }

let entry n report =
  {
    Cache.e_potential = n;
    e_after_sound = n;
    e_after_unsound = n;
    e_report = report;
    e_metrics = zero_metrics;
  }

let record name n =
  { Journal.j_name = name; j_key = "key-" ^ name; j_result = Ok (entry n name) }

let check_records msg want got =
  Alcotest.(check int) (msg ^ ": record count") (List.length want) (List.length got);
  List.iter2
    (fun (w : Journal.record) (g : Journal.record) ->
      Alcotest.(check string) (msg ^ ": name") w.Journal.j_name g.Journal.j_name;
      Alcotest.(check string) (msg ^ ": key") w.Journal.j_key g.Journal.j_key;
      match (w.Journal.j_result, g.Journal.j_result) with
      | Ok we, Ok ge -> check_entry_equal (msg ^ ": " ^ w.Journal.j_name) we ge
      | Error wf, Error gf ->
          Alcotest.(check string)
            (msg ^ ": fault")
            (Fault.to_string wf) (Fault.to_string gf)
      | _ -> Alcotest.failf "%s: %s changed ok/error side" msg w.Journal.j_name)
    want got

let journal_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "journal" in
      let records =
        [
          record "a" 1;
          record "b" 2;
          { Journal.j_name = "c"; j_key = "key-c"; j_result = Error (Fault.Internal "boom") };
        ]
      in
      let j, replayed = Journal.open_ ~path ~resume:false in
      Alcotest.(check int) "fresh journal is empty" 0 (List.length replayed);
      List.iter (Journal.append j) records;
      Journal.close j;
      check_records "replay = appended" records (Journal.replay ~path);
      (* last record wins in the index *)
      let idx = Journal.latest (Journal.replay ~path @ [ record "a" 9 ]) in
      match (Hashtbl.find_opt idx "a" : Journal.record option) with
      | Some r -> (
          match r.Journal.j_result with
          | Ok e -> Alcotest.(check int) "latest a is the re-record" 9 e.Cache.e_potential
          | Error _ -> Alcotest.fail "latest a must be Ok")
      | None -> Alcotest.fail "a must be indexed")

(* A record damaged mid-file bounds the replay to the records before it;
   reopening with --resume truncates the garbage and appends after the
   valid prefix. *)
let journal_damage_bounds_replay mangle () =
  with_dir (fun dir ->
      let path = Filename.concat dir "journal" in
      let j, _ = Journal.open_ ~path ~resume:false in
      Journal.append j (record "a" 1);
      let s1 = (Unix.stat path).Unix.st_size in
      Journal.append j (record "b" 2);
      let s2 = (Unix.stat path).Unix.st_size in
      Journal.append j (record "c" 3);
      Journal.close j;
      write_file path (mangle ~s1 ~s2 (read_file path));
      check_records "only the prefix replays" [ record "a" 1 ] (Journal.replay ~path);
      (* resume-open truncates the garbage and appends cleanly after it *)
      let j, replayed = Journal.open_ ~path ~resume:true in
      check_records "resume sees the prefix" [ record "a" 1 ] replayed;
      Journal.append j (record "d" 4);
      Journal.close j;
      check_records "append after repair" [ record "a" 1; record "d" 4 ]
        (Journal.replay ~path))

(* kill mid-append: the file ends inside record b *)
let truncated_tail ~s1 ~s2 raw = String.sub raw 0 ((s1 + s2) / 2)

(* disk corruption: one payload byte of record b flipped *)
let flipped_byte ~s1 ~s2 raw =
  let b = Bytes.of_string raw in
  let i = (s1 + s2) / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let journal_absent_or_garbage_is_empty () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      Alcotest.(check int)
        "absent journal replays empty" 0
        (List.length (Journal.replay ~path:(Filename.concat dir "nope")));
      let path = Filename.concat dir "garbage" in
      write_file path "not a journal at all\n";
      Alcotest.(check int)
        "garbage journal replays empty" 0
        (List.length (Journal.replay ~path)))

(* -- cache under injected faults ----------------------------------------- *)

let sweep_removes_only_stale_tmp () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let stale = Filename.concat dir ".tmp.stale" in
      let fresh = Filename.concat dir ".tmp.fresh" in
      let foreign = Filename.concat dir "README" in
      List.iter (fun p -> write_file p "x") [ stale; fresh; foreign ];
      Unix.utimes stale 1.0 1.0;
      Alcotest.(check int) "one stale temp swept" 1 (Cache.sweep_tmp ~dir ());
      Alcotest.(check bool) "stale temp gone" false (Sys.file_exists stale);
      Alcotest.(check bool) "fresh temp kept" true (Sys.file_exists fresh);
      Alcotest.(check bool) "foreign file kept" true (Sys.file_exists foreign);
      Sys.remove fresh)

let arm spec =
  match Faultinject.arm_spec spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm %S: %s" spec e

(* An injected store failure may cost the next run its warm hit — never
   this run its already-computed result. *)
let store_failure_never_loses_result () =
  with_dir (fun dir ->
      let a = small_app () in
      arm "cache_write:1";
      let e, o =
        Fun.protect ~finally:Faultinject.disarm (fun () ->
            Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source)
      in
      Alcotest.(check int) "injection fired" 1 (Faultinject.fires ());
      (match o with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "cold run must be a miss");
      (* the failed store published nothing: the rerun misses again and
         recomputes the same bytes *)
      let e2, o2 = Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source in
      (match o2 with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "a failed store must not publish an entry");
      check_entry_equal "result survives the store failure" e e2)

(* An injected read failure surfaces as a Corrupt outcome naming the
   injection, the entry is recomputed (same bytes) and repaired. *)
let read_failure_is_surfaced_and_repaired () =
  with_dir (fun dir ->
      let a = small_app () in
      let cold, _ = Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source in
      arm "cache_read:1";
      let warm, o =
        Fun.protect ~finally:Faultinject.disarm (fun () ->
            Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source)
      in
      (match o with
      | Cache.Corrupt (Fault.Internal d) ->
          Alcotest.(check bool) "fault names the injection" true (is_infix "faultinject" d)
      | _ -> Alcotest.fail "injected read must surface as Corrupt");
      check_entry_equal "recomputed bytes identical" cold warm;
      match Cache.analyze ~dir ~file:a.Corpus.name a.Corpus.source with
      | e, Cache.Hit -> check_entry_equal "repaired entry" cold e
      | _, _ -> Alcotest.fail "entry not repaired after the injected read")

(* -- fault injection: determinism and the spec grammar ------------------- *)

let tripped site =
  match Faultinject.trip site with
  | () -> false
  | exception Unix.Unix_error (Unix.EIO, "faultinject", _) -> true

let nth_fires_exactly_once () =
  arm "server_accept:3";
  let pattern =
    Fun.protect ~finally:Faultinject.disarm (fun () ->
        List.init 6 (fun _ -> tripped Faultinject.Server_accept))
  in
  Alcotest.(check (list bool))
    "only the 3rd occurrence fires"
    [ false; false; true; false; false; false ]
    pattern

let key_rule_matches_exactly () =
  arm "worker_task=CrashApp";
  Fun.protect ~finally:Faultinject.disarm (fun () ->
      let fired key =
        match Faultinject.trip ?key Faultinject.Worker_task with
        | () -> false
        | exception Unix.Unix_error (Unix.EIO, "faultinject", _) -> true
      in
      Alcotest.(check bool) "matching key fires" true (fired (Some "CrashApp"));
      Alcotest.(check bool) "matching key fires again" true (fired (Some "CrashApp"));
      Alcotest.(check bool) "other key passes" false (fired (Some "OtherApp"));
      Alcotest.(check bool) "no key passes" false (fired None))

let seeded_mode_is_deterministic () =
  let pattern seed =
    Faultinject.arm_seeded ~seed ~rate:0.25 ~sites:[ Faultinject.Server_send ] ();
    let fired = List.init 200 (fun _ -> tripped Faultinject.Server_send) in
    let n = Faultinject.fires () in
    Faultinject.disarm ();
    (fired, n)
  in
  let p1, n1 = pattern 9 in
  let p2, n2 = pattern 9 in
  Alcotest.(check (list bool)) "same seed, same fire pattern" p1 p2;
  Alcotest.(check int) "same seed, same fire count" n1 n2;
  Alcotest.(check int) "fires() counts the firings" n1
    (List.length (List.filter Fun.id p1));
  Alcotest.(check bool) "rate 0.25 over 200 trips fires some" true (n1 > 0);
  Alcotest.(check bool) "and spares some" true (n1 < 200)

let bad_specs_are_rejected () =
  List.iter
    (fun spec ->
      match Faultinject.arm_spec spec with
      | Error _ -> ()
      | Ok () ->
          Faultinject.disarm ();
          Alcotest.failf "%S must be rejected" spec)
    [
      "bogus:1";
      "cache_read:0";
      "cache_read:x";
      "rate=x";
      "sites=bogus";
      "cache_read:1:explode";
      (* an action suffix on a config entry would silently arm the
         default raise action instead of the one written *)
      "rate=0.5:kill";
      "seed=7:abort";
      "sites=cache_read:wedge";
    ];
  arm "";
  Alcotest.(check bool) "empty spec disarms" false (Faultinject.armed ())

(* -- supervised workers -------------------------------------------------- *)

let config = Pipeline.default_config

let supervised_matches_inprocess () =
  let sp = Supervise.create ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Supervise.shutdown sp)
    (fun () ->
      List.iter
        (fun (a : Corpus.app) ->
          let direct =
            Cache.entry_of_result (Pipeline.analyze ~config ~file:a.Corpus.name a.Corpus.source)
          in
          match Supervise.analyze sp ~config ~file:a.Corpus.name a.Corpus.source with
          | Ok e -> check_entry_equal (a.Corpus.name ^ ": supervised = in-process") direct e
          | Error f -> Alcotest.failf "%s: %s" a.Corpus.name (Fault.to_string f))
        [ small_app (); zxing () ])

(* The acceptance criterion: an app that SIGKILLs its worker costs
   exactly one quarantine fault; every other app in the batch comes out
   byte-identical to an in-process run, on the same (respawned) pool. *)
let worker_crash_is_isolated_and_quarantined () =
  let a = small_app () in
  Unix.putenv Faultinject.env_var "worker_task=CrashApp:kill";
  let sp = Supervise.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () ->
      Supervise.shutdown sp;
      Unix.putenv Faultinject.env_var "")
    (fun () ->
      let direct =
        Cache.entry_of_result (Pipeline.analyze ~config ~file:a.Corpus.name a.Corpus.source)
      in
      let outcomes =
        List.map
          (fun file -> (file, Supervise.analyze sp ~config ~file a.Corpus.source))
          [ "before"; "CrashApp"; "after" ]
      in
      List.iter
        (fun (file, r) ->
          match (file, r) with
          | "CrashApp", Error (Fault.Internal d) ->
              Alcotest.(check bool) "quarantine is named" true (is_infix "quarantined" d);
              Alcotest.(check bool) "the killing signal is named" true (is_infix "SIGKILL" d)
          | "CrashApp", Ok _ -> Alcotest.fail "the crashing app must be quarantined"
          | "CrashApp", Error f ->
              Alcotest.failf "expected a quarantine, got %s" (Fault.to_string f)
          | _, Ok e -> check_entry_equal (file ^ ": unaffected by the crash") direct e
          | _, Error f -> Alcotest.failf "%s caught the blast: %s" file (Fault.to_string f))
        outcomes)

(* SIGABRT — the stand-in for a segfaulting runtime — takes the same
   quarantine path and names the signal. *)
let aborting_worker_is_quarantined () =
  let a = small_app () in
  Unix.putenv Faultinject.env_var "worker_task=AbortApp:abort";
  let sp = Supervise.create ~jobs:1 () in
  Fun.protect
    ~finally:(fun () ->
      Supervise.shutdown sp;
      Unix.putenv Faultinject.env_var "")
    (fun () ->
      (match Supervise.analyze sp ~config ~file:"AbortApp" a.Corpus.source with
      | Error (Fault.Internal d) ->
          Alcotest.(check bool) "quarantined" true (is_infix "quarantined" d);
          Alcotest.(check bool) "SIGABRT named" true (is_infix "SIGABRT" d)
      | Ok _ -> Alcotest.fail "aborting app must fault"
      | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f));
      match Supervise.analyze sp ~config ~file:a.Corpus.name a.Corpus.source with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "pool did not recover: %s" (Fault.to_string f))

(* A worker that wedges (never answers) is bounded by the heartbeat:
   killed, replaced, the app quarantined — and the pool keeps serving. *)
let wedged_worker_hits_heartbeat () =
  let a = small_app () in
  Unix.putenv Faultinject.env_var "worker_task=WedgeApp:wedge";
  let sp = Supervise.create ~jobs:1 ~heartbeat:1.5 () in
  Fun.protect
    ~finally:(fun () ->
      Supervise.shutdown sp;
      Unix.putenv Faultinject.env_var "")
    (fun () ->
      let t0 = Clock.now () in
      (match Supervise.analyze sp ~config ~file:"WedgeApp" a.Corpus.source with
      | Error (Fault.Internal d) ->
          Alcotest.(check bool) "heartbeat timeout is named" true (is_infix "heartbeat" d)
      | Ok _ -> Alcotest.fail "wedged app must fault"
      | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f));
      Alcotest.(check bool)
        "bounded by the heartbeat, not the wedge" true
        (Clock.now () -. t0 < 30.0);
      match Supervise.analyze sp ~config ~file:a.Corpus.name a.Corpus.source with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "pool did not recover: %s" (Fault.to_string f))

let shutdown_is_idempotent () =
  let sp = Supervise.create ~jobs:1 () in
  Supervise.shutdown sp;
  Supervise.shutdown sp;
  match Supervise.analyze sp ~config ~file:"x" "thread t { }" with
  | Error (Fault.Internal d) ->
      Alcotest.(check bool) "names the shutdown" true (is_infix "shut down" d)
  | Ok _ -> Alcotest.fail "a shut-down supervisor must fault"
  | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

(* -- client connect bound ------------------------------------------------ *)

let connect_timeout_is_bounded () =
  let missing = `Unix (Filename.concat (fresh_dir ()) "never-bound.sock") in
  let t0 = Clock.now () in
  (match Client.connect ~timeout:0.3 missing with
  | _ -> Alcotest.fail "connect to a missing socket must fail"
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ());
  let dt = Clock.now () -. t0 in
  Alcotest.(check bool) "kept retrying until the deadline" true (dt >= 0.25);
  Alcotest.(check bool) "gave up shortly after it" true (dt < 3.0);
  let t0 = Clock.now () in
  (match Client.connect ~timeout:0.0 missing with
  | _ -> Alcotest.fail "single-attempt connect must fail"
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ());
  Alcotest.(check bool) "timeout 0 is one attempt" true (Clock.now () -. t0 < 0.2)

(* -- supervised serve daemon --------------------------------------------- *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nadroid-crash-%s-%d.sock" name (Unix.getpid ()))

let inline_request ~name source =
  Protocol.render_analyze
    {
      Protocol.a_path = None;
      a_source = Some source;
      a_file = Some name;
      a_k = None;
      a_sound_only = false;
      a_deadline = None;
      a_budget_pta = None;
      a_budget_tuples = None;
      a_budget_explorer = None;
      a_cache = None;
    }

(* A request that segfaults its worker answers with a quarantine fault;
   the daemon and its (respawned) worker keep serving, byte-identically. *)
let supervised_daemon_survives_crashing_request () =
  let a = small_app () in
  let sock = sock_path "supervised" in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  Unix.putenv Faultinject.env_var "worker_task=CrashApp:kill";
  let server_config =
    {
      Server.default_config with
      Server.jobs = Some 1;
      quiet = true;
      install_signals = false;
      supervise = true;
      heartbeat = Some 60.0;
    }
  in
  let daemon = Domain.spawn (fun () -> Server.run ~config:server_config (`Unix sock)) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect (`Unix sock) in
         ignore (Client.request c Protocol.shutdown_request);
         Client.close c
       with _ -> ());
      Domain.join daemon;
      Unix.putenv Faultinject.env_var "")
    (fun () ->
      let c = Client.connect (`Unix sock) in
      let crash = Client.request c (inline_request ~name:"CrashApp" a.Corpus.source) in
      Alcotest.(check int) "crashing request answers a fault" 4
        (Protocol.response_exit crash);
      Alcotest.(check bool) "response names the quarantine" true
        (is_infix "quarantined" crash);
      let clean = Client.request c (inline_request ~name:a.Corpus.name a.Corpus.source) in
      Alcotest.(check string)
        "daemon still serves, byte-identical to a cold run"
        (Protocol.analyze_response ~name:a.Corpus.name
           (Fault.wrap (fun () ->
                Cache.entry_of_result
                  (Pipeline.analyze ~file:a.Corpus.name a.Corpus.source))))
        clean;
      Client.close c)

(* -- the CLI under SIGTERM and SIGKILL ----------------------------------- *)

(* the built CLI, next to this test binary in _build (cwd varies between
   `dune runtest` and `dune exec`) *)
let nadroid_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "..")
    (Filename.concat "bin" "nadroid.exe")

(* Run the real binary with a clean injection environment plus [faults];
   stdout captured, stderr discarded. *)
let run_cli ?(faults = "") args =
  let keep e =
    not
      (String.starts_with ~prefix:(Faultinject.env_var ^ "=") e
      || String.starts_with ~prefix:(Supervise.env_var ^ "=") e)
  in
  let env =
    Array.of_list
      (List.filter keep (Array.to_list (Unix.environment ()))
      @ (if faults = "" then [] else [ Faultinject.env_var ^ "=" ^ faults ]))
  in
  let out = Filename.temp_file "nadroid-crash" ".out" in
  let out_fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o600 in
  let pid =
    Unix.create_process_env nadroid_exe
      (Array.of_list (nadroid_exe :: args))
      env Unix.stdin out_fd null
  in
  Unix.close out_fd;
  Unix.close null;
  let _, status = Unix.waitpid [] pid in
  let stdout = read_file out in
  Sys.remove out;
  (status, stdout)

(* Three corpus apps as on-disk files plus a golden uninterrupted run. *)
let with_batch f =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let files =
        List.filteri (fun i _ -> i < 3) (Lazy.force Corpus.all)
        |> List.map (fun (a : Corpus.app) ->
               let p = Filename.concat dir (a.Corpus.name ^ ".mand") in
               write_file p a.Corpus.source;
               p)
      in
      let jpath = Filename.concat dir "journal" in
      let golden_status, golden =
        run_cli ([ "analyze"; "--json"; "--jobs"; "1" ] @ files)
      in
      (match golden_status with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.failf "golden run: %s" (Supervise.status_string s));
      f ~files ~jpath ~golden)

(* SIGTERM mid-batch: files already analyzed still print and journal,
   files never started become batch faults, the exit code is the worst
   class seen — and --resume completes the batch byte-identically. *)
let sigterm_stops_batch_durably () =
  with_batch (fun ~files ~jpath ~golden ->
      let status, partial =
        run_cli ~faults:"journal_append:2:term"
          ([ "analyze"; "--json"; "--jobs"; "1"; "--journal"; jpath ] @ files)
      in
      (match status with
      | Unix.WEXITED 3 -> ()
      | s -> Alcotest.failf "SIGTERM run must exit 3 (budget), got %s" (Supervise.status_string s));
      Alcotest.(check bool) "partial report was still flushed" true
        (is_infix "\"files\":3" partial);
      Alcotest.(check bool) "skipped files are batch faults" true
        (is_infix "batch" partial && not (is_infix "\"faults\":[]" partial));
      Alcotest.(check int) "both finished apps are journaled" 2
        (List.length (Journal.replay ~path:jpath));
      let status, resumed =
        run_cli
          ([ "analyze"; "--json"; "--jobs"; "1"; "--journal"; jpath; "--resume" ] @ files)
      in
      (match status with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.failf "resume: %s" (Supervise.status_string s));
      Alcotest.(check string) "resumed output = uninterrupted run" golden resumed)

(* SIGKILL mid-batch — no handler can run: the journal's flushed records
   survive, the half-written one is truncated away, --resume replays the
   survivors and the merged output is byte-identical. *)
let sigkill_then_resume_is_byte_identical () =
  with_batch (fun ~files ~jpath ~golden ->
      let status, _ =
        run_cli ~faults:"journal_append:2:kill"
          ([ "analyze"; "--json"; "--jobs"; "1"; "--journal"; jpath ] @ files)
      in
      (match status with
      | Unix.WSIGNALED n when n = Sys.sigkill -> ()
      | s -> Alcotest.failf "expected death by SIGKILL, got %s" (Supervise.status_string s));
      Alcotest.(check int) "the flushed record survives the kill" 1
        (List.length (Journal.replay ~path:jpath));
      let status, resumed =
        run_cli
          ([ "analyze"; "--json"; "--jobs"; "1"; "--journal"; jpath; "--resume" ] @ files)
      in
      (match status with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.failf "resume: %s" (Supervise.status_string s));
      Alcotest.(check string) "kill + resume = uninterrupted run" golden resumed)

(* -- streamed emission vs the batch report ------------------------------- *)

(* The streamed JSON-lines are the batch report, reordered into nothing:
   concatenating the per-app lines of `--stream` inside the batch
   envelope must reproduce `--json` byte for byte — over the full
   corpus, with the stream running parallel and the batch sequential. *)
let stream_concat_equals_batch_over_corpus () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let files =
        List.map
          (fun (a : Corpus.app) ->
            let p = Filename.concat dir (a.Corpus.name ^ ".mand") in
            write_file p a.Corpus.source;
            p)
          (Lazy.force Corpus.all)
      in
      let batch_status, batch =
        run_cli ([ "analyze"; "--json"; "--jobs"; "1" ] @ files)
      in
      (match batch_status with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.failf "batch run: %s" (Supervise.status_string s));
      let stream_status, stream =
        run_cli ([ "analyze"; "--stream"; "--jobs"; "4" ] @ files)
      in
      (match stream_status with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.failf "stream run: %s" (Supervise.status_string s));
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' stream)
      in
      Alcotest.(check int) "one JSON line per app" (List.length files)
        (List.length lines);
      let reconstructed =
        Printf.sprintf "{\"files\":%d,\"apps\":[%s],\"faults\":[]}\n"
          (List.length files)
          (String.concat "," lines)
      in
      Alcotest.(check string) "stream lines re-wrapped = batch report" batch
        reconstructed)

(* SIGKILL mid-stream: completed lines are already on stdout and in the
   journal; --resume replays them and the full merged stream is
   byte-identical to an uninterrupted one. *)
let stream_sigkill_then_resume_is_byte_identical () =
  with_batch (fun ~files ~jpath ~golden:_ ->
      let status, golden_stream =
        run_cli ([ "analyze"; "--stream"; "--jobs"; "1" ] @ files)
      in
      (match status with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.failf "golden stream: %s" (Supervise.status_string s));
      let status, partial =
        run_cli ~faults:"journal_append:2:kill"
          ([ "analyze"; "--stream"; "--jobs"; "1"; "--journal"; jpath ] @ files)
      in
      (match status with
      | Unix.WSIGNALED n when n = Sys.sigkill -> ()
      | s -> Alcotest.failf "expected death by SIGKILL, got %s" (Supervise.status_string s));
      (* app 1's line was flushed before the kill landed on app 2's
         journal append — streaming means the reader already has it *)
      (match String.index_opt golden_stream '\n' with
      | None -> Alcotest.fail "golden stream has no lines"
      | Some i ->
          Alcotest.(check string) "flushed prefix survives on stdout"
            (String.sub golden_stream 0 (i + 1))
            partial);
      Alcotest.(check int) "the flushed record survives in the journal" 1
        (List.length (Journal.replay ~path:jpath));
      let status, resumed =
        run_cli
          ([ "analyze"; "--stream"; "--jobs"; "1"; "--journal"; jpath; "--resume" ]
          @ files)
      in
      (match status with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.failf "stream resume: %s" (Supervise.status_string s));
      Alcotest.(check string) "kill + resume streams identical bytes"
        golden_stream resumed)

(* -- blast-radius fuzzing ------------------------------------------------ *)

let faultfuzz_smoke () =
  let s = Faultfuzz.run ~jobs:2 ~apps:3 ~seed:7 ~trials:2 () in
  Alcotest.(check int) "both trials ran" 2 s.Faultfuzz.fz_trials;
  match s.Faultfuzz.fz_escapes with
  | [] -> ()
  | x :: _ ->
      Alcotest.failf "blast-radius escape: trial %d (%s) %s: %s" x.Faultfuzz.x_trial
        x.Faultfuzz.x_mode x.Faultfuzz.x_app x.Faultfuzz.x_what

let suite =
  [
    ( "crash-journal",
      [
        Alcotest.test_case "append / replay round-trips, last record wins" `Quick
          journal_roundtrip;
        Alcotest.test_case "truncated tail replays the valid prefix" `Quick
          (journal_damage_bounds_replay truncated_tail);
        Alcotest.test_case "bit-flipped record bounds the replay" `Quick
          (journal_damage_bounds_replay flipped_byte);
        Alcotest.test_case "absent or garbage journal replays empty" `Quick
          journal_absent_or_garbage_is_empty;
      ] );
    ( "crash-cache",
      [
        Alcotest.test_case "orphaned temp files are swept on open" `Quick
          sweep_removes_only_stale_tmp;
        Alcotest.test_case "injected store failure never loses the result" `Quick
          store_failure_never_loses_result;
        Alcotest.test_case "injected read failure surfaces and repairs" `Quick
          read_failure_is_surfaced_and_repaired;
      ] );
    ( "crash-inject",
      [
        Alcotest.test_case "nth-occurrence rule fires exactly once" `Quick
          nth_fires_exactly_once;
        Alcotest.test_case "key rule fires on its key only" `Quick
          key_rule_matches_exactly;
        Alcotest.test_case "seeded mode is deterministic per seed" `Quick
          seeded_mode_is_deterministic;
        Alcotest.test_case "malformed specs are rejected" `Quick bad_specs_are_rejected;
      ] );
    ( "crash-supervise",
      [
        Alcotest.test_case "supervised analysis = in-process, byte for byte" `Quick
          supervised_matches_inprocess;
        Alcotest.test_case "SIGKILLed worker costs one quarantine, batch unharmed" `Quick
          worker_crash_is_isolated_and_quarantined;
        Alcotest.test_case "SIGABRT (segfault stand-in) is quarantined" `Quick
          aborting_worker_is_quarantined;
        Alcotest.test_case "wedged worker is bounded by the heartbeat" `Quick
          wedged_worker_hits_heartbeat;
        Alcotest.test_case "shutdown is idempotent and faults later calls" `Quick
          shutdown_is_idempotent;
      ] );
    ( "crash-client",
      [
        Alcotest.test_case "connect retries with backoff until --connect-timeout" `Quick
          connect_timeout_is_bounded;
      ] );
    ( "crash-serve",
      [
        Alcotest.test_case "supervised daemon survives a crashing request" `Quick
          supervised_daemon_survives_crashing_request;
      ] );
    ( "crash-cli",
      [
        Alcotest.test_case "SIGTERM mid-batch: durable journal, worst-class exit" `Quick
          sigterm_stops_batch_durably;
        Alcotest.test_case "kill -9 then --resume is byte-identical" `Quick
          sigkill_then_resume_is_byte_identical;
        Alcotest.test_case "--stream lines re-wrapped = --json batch, full corpus" `Quick
          stream_concat_equals_batch_over_corpus;
        Alcotest.test_case "kill -9 mid-stream then --resume is byte-identical" `Quick
          stream_sigkill_then_resume_is_byte_identical;
      ] );
    ( "crash-fuzz",
      [ Alcotest.test_case "seeded fuzz over all seams: 0 escapes" `Quick faultfuzz_smoke ]
    );
  ]
