(* nAdroid core tests: threadification (§4), detection (§5), every filter
   (§6), classification (§7), and the pipeline plumbing. *)

open Nadroid_core
module Spec = Nadroid_corpus.Spec
module Gen = Nadroid_corpus.Gen

let analyze src = Pipeline.analyze ~file:"t" src

let kinds t =
  List.map
    (fun th -> Fmt.str "%a" Threadify.pp_kind th.Threadify.th_kind)
    (Threadify.threads t.Pipeline.threads)

let threadify_tests =
  [
    Alcotest.test_case "dummy main is thread 0" `Quick (fun () ->
        let t = analyze "class A extends Activity { method void onCreate() { } }" in
        match Threadify.threads t.Pipeline.threads with
        | main :: _ ->
            Alcotest.(check bool) "kind" true (main.Threadify.th_kind = Threadify.Dummy_main);
            Alcotest.(check bool) "no parent" true (main.Threadify.th_parent = None)
        | [] -> Alcotest.fail "no threads");
    Alcotest.test_case "entry callbacks hang off the dummy main" `Quick (fun () ->
        let t =
          analyze
            "class A extends Activity { method void onCreate() { } method void onResume() { } \
             }"
        in
        let ths = Threadify.threads t.Pipeline.threads in
        Alcotest.(check int) "main + 2 ECs" 3 (List.length ths);
        List.iter
          (fun th ->
            match th.Threadify.th_kind with
            | Threadify.Entry_cb _ ->
                Alcotest.(check (option int)) "parent is main" (Some 0) th.Threadify.th_parent
            | _ -> ())
          ths);
    Alcotest.test_case "posted callbacks are children of their poster" `Quick (fun () ->
        let t =
          analyze
            "class A extends Activity { field Handler h; method void onCreate() { h = new \
             Handler(); h.post(new Runnable() { method void run() { } }); } }"
        in
        let ths = Threadify.threads t.Pipeline.threads in
        let poster =
          List.find (fun th -> String.equal th.Threadify.th_method "onCreate") ths
        in
        let postee = List.find (fun th -> String.equal th.Threadify.th_method "run") ths in
        Alcotest.(check bool) "PC kind" true
          (match postee.Threadify.th_kind with Threadify.Posted_cb _ -> true | _ -> false);
        Alcotest.(check (option int)) "lineage" (Some poster.Threadify.th_id)
          postee.Threadify.th_parent);
    Alcotest.test_case "imperative click listeners are ECs under the dummy main" `Quick
      (fun () ->
        let t =
          analyze
            "class A extends Activity { method void onStart() { \
             this.findViewById(1).setOnClickListener(new OnClickListener() { method void \
             onClick(View v) { } }); } }"
        in
        let click =
          List.find
            (fun th -> String.equal th.Threadify.th_method "onClick")
            (Threadify.threads t.Pipeline.threads)
        in
        Alcotest.(check bool) "EC" true
          (match click.Threadify.th_kind with Threadify.Entry_cb _ -> true | _ -> false);
        Alcotest.(check (option int)) "parent main" (Some 0) click.Threadify.th_parent);
    Alcotest.test_case "asynctask produces four modeled threads" `Quick (fun () ->
        let t =
          analyze
            "class A extends Activity { method void onCreate() { new AsyncTask() { method \
             void onPreExecute() { } method void doInBackground() { } method void \
             onProgressUpdate(int p) { } method void onPostExecute() { } }.execute(); } }"
        in
        let k = kinds t in
        Alcotest.(check bool) "has async-bg" true (List.mem "async-bg" k);
        Alcotest.(check int) "three PCs"
          3
          (List.length (List.filter (fun s -> String.length s > 2 && String.sub s 0 2 = "PC") k)));
    Alcotest.test_case "self-reposting runnable terminates" `Quick (fun () ->
        let t =
          analyze
            "class A extends Activity { field Handler h; method void onCreate() { h = new \
             Handler(); h.post(new Runnable() { method void run() { h.post(this); } }); } }"
        in
        Alcotest.(check bool) "bounded forest" true (Threadify.n_threads t.Pipeline.threads < 10));
    Alcotest.test_case "lineage string walks to main" `Quick (fun () ->
        let t =
          analyze
            "class A extends Activity { field Handler h; method void onCreate() { h = new \
             Handler(); h.post(new Runnable() { method void run() { } }); } }"
        in
        let postee =
          List.find
            (fun th -> String.equal th.Threadify.th_method "run")
            (Threadify.threads t.Pipeline.threads)
        in
        Alcotest.(check string) "lineage" "main -> A.onCreate -> A$1.run"
          (Threadify.lineage t.Pipeline.threads postee));
  ]

(* Pattern-level expectations: each corpus pattern in isolation must
   behave exactly as its ground truth says. This doubles as the filter
   test suite: one test per filter with the idiom it was designed for. *)
let pattern_case p =
  Alcotest.test_case (Spec.pattern_to_string p) `Quick (fun () ->
      let spec =
        {
          Spec.app_name = "t";
          activities = [ { Spec.act_name = "MainActivity"; patterns = [ p ] } ];
          services = 0;
          padding = 0;
        }
      in
      let src, _ = Gen.generate spec in
      let t = analyze src in
      let np = List.length t.Pipeline.potential in
      let ns = List.length t.Pipeline.after_sound in
      let nu = List.length t.Pipeline.after_unsound in
      match Spec.expectation p with
      | Spec.E_true_bug c ->
          Alcotest.(check bool) "survives all filters" true (nu >= 1);
          let cat = Classify.of_warning t.Pipeline.threads (List.hd t.Pipeline.after_unsound) in
          Alcotest.(check string) "category" (Classify.to_string c) (Classify.to_string cat)
      | Spec.E_filtered f ->
          Alcotest.(check bool) "was detected" true (np >= 1);
          if List.mem f Filters.sound then
            Alcotest.(check bool) "pruned by sound stage" true (ns < np)
          else begin
            Alcotest.(check bool) "survives sound stage" true (ns >= 1);
            Alcotest.(check bool) "pruned by unsound stage" true (nu < ns)
          end;
          (* and the designated filter alone must prune it *)
          Alcotest.(check bool)
            (Filters.name_to_string f ^ " alone prunes")
            true
            (Filters.pruned_count t.Pipeline.ctx [ f ]
               (if List.mem f Filters.sound then t.Pipeline.potential else t.Pipeline.after_sound)
            >= 1)
      | Spec.E_false_positive _ -> Alcotest.(check bool) "survives (is a FP)" true (nu >= 1)
      | Spec.E_none -> Alcotest.(check int) "no potential warnings" 0 np)

let filter_tests = List.map pattern_case Spec.all_patterns

let detection_tests =
  [
    Alcotest.test_case "race needs two distinct modeled threads" `Quick (fun () ->
        (* use and free inside the same callback: no pair *)
        let t =
          analyze
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onCreate() { d = new Data(); } method void onPause() { d.op(); d = \
             null; } }"
        in
        (* the only cross-thread pair is (use in onPause, free in onPause)
           which is same-thread, plus onCreate has no use/free *)
        Alcotest.(check int) "no warning" 0 (List.length t.Pipeline.potential));
    Alcotest.test_case "alias requires overlapping base objects" `Quick (fun () ->
        (* two disjoint Data objects in two activities: no race *)
        let t =
          analyze
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onCreate() { d = new Data(); } method void onPause() { d = null; } } \
             class B extends Activity { field Data d; method void onCreate() { d = new \
             Data(); } method void onPause() { d.op(); } }"
        in
        Alcotest.(check int) "no cross-activity warning" 0 (List.length t.Pipeline.potential));
    Alcotest.test_case "warnings deduplicate to site pairs" `Quick (fun () ->
        (* one use races with one free reachable via two thread pairs:
           still a single warning *)
        let t =
          analyze
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onCreate() { d = new Data(); } method void onStart() { \
             this.findViewById(1).setOnClickListener(new OnClickListener() { method void \
             onClick(View v) { d.op(); } }); this.findViewById(2).setOnClickListener(new \
             OnClickListener() { method void onClick(View v) { d = null; } }); } }"
        in
        Alcotest.(check int) "one warning" 1 (List.length t.Pipeline.potential);
        match t.Pipeline.potential with
        | [ w ] -> Alcotest.(check int) "one pair" 1 (List.length w.Detect.w_pairs)
        | _ -> Alcotest.fail "expected one warning");
    Alcotest.test_case "static fields race by key" `Quick (fun () ->
        let t =
          analyze
            "class Data { method void op() { } } class A extends Activity { static field Data \
             cache; method void onCreate() { cache = new Data(); } method void onPause() { \
             cache.op(); } method void onStop() { cache = null; } }"
        in
        Alcotest.(check bool) "warning exists" true (List.length t.Pipeline.potential >= 1));
    Alcotest.test_case "static and instance accesses never alias" `Quick (fun () ->
        (* regression: may_alias used to return true when *either* side
           was static, pairing a static access with an instance access of
           a same-keyed field even though they name different storage.
           The frontend cannot produce this mix for one field, so build
           the accesses directly. *)
        let t = analyze "class A extends Activity { method void onCreate() { } }" in
        let esc = t.Pipeline.esc in
        let fr name =
          {
            Nadroid_lang.Sema.fr_class = "A";
            fr_name = name;
            fr_ty = Nadroid_lang.Ast.Tclass "Data";
            fr_static = false;
          }
        in
        let site =
          let v = { Nadroid_ir.Instr.v_id = 0; v_name = "x" } in
          {
            Detect.s_inst = 0;
            s_mref = { Nadroid_ir.Instr.mr_class = "A"; mr_name = "m" };
            s_instr =
              {
                Nadroid_ir.Instr.i = Nadroid_ir.Instr.Getstatic (v, fr "f");
                loc = Nadroid_lang.Loc.dummy;
                id = 0;
              };
          }
        in
        let access ~thread ~static ~objs field =
          { Detect.a_thread = thread; a_site = site; a_field = field; a_objs = objs; a_static = static }
        in
        let module IS = Nadroid_analysis.Pta.IntSet in
        let static_use = access ~thread:1 ~static:true ~objs:IS.empty (fr "f") in
        let instance_free = access ~thread:2 ~static:false ~objs:(IS.of_list [ 0; 1 ]) (fr "f") in
        let static_free = access ~thread:2 ~static:true ~objs:IS.empty (fr "f") in
        Alcotest.(check bool) "static vs instance" false
          (Detect.may_alias esc static_use instance_free);
        Alcotest.(check bool) "instance vs static" false
          (Detect.may_alias esc instance_free static_use);
        Alcotest.(check bool) "static vs static" true
          (Detect.may_alias esc static_use static_free);
        Alcotest.(check bool) "distinct keys" false
          (Detect.may_alias esc static_use (access ~thread:2 ~static:true ~objs:IS.empty (fr "g"))));
  ]

let parallel_tests =
  [
    Alcotest.test_case "map preserves input order at any jobs" `Quick (fun () ->
        let xs = List.init 100 (fun i -> i) in
        let expect = List.map (fun x -> x * x) xs in
        List.iter
          (fun jobs ->
            Alcotest.(check (list int))
              (Printf.sprintf "jobs=%d" jobs)
              expect
              (Parallel.map ~jobs (fun x -> x * x) xs))
          [ 1; 2; 4; 7 ]);
    Alcotest.test_case "empty and singleton inputs" `Quick (fun () ->
        Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 (fun x -> x) []);
        Alcotest.(check (list int)) "singleton" [ 3 ] (Parallel.map ~jobs:4 (fun x -> x + 1) [ 2 ]));
    Alcotest.test_case "task exceptions propagate to the caller" `Quick (fun () ->
        Alcotest.check_raises "re-raised" Exit (fun () ->
            ignore (Parallel.map ~jobs:4 (fun x -> if x = 13 then raise Exit else x) (List.init 40 Fun.id))));
    Alcotest.test_case "persistent pool: submit/await over many batches" `Quick (fun () ->
        let pool = Parallel.Pool.create ~jobs:3 () in
        (* several waves through the same workers — the daemon's life *)
        for wave = 0 to 4 do
          let futs =
            List.init 50 (fun i -> Parallel.Pool.submit pool (fun () -> (wave * 1000) + (i * i)))
          in
          List.iteri
            (fun i fut ->
              match Parallel.Pool.await fut with
              | Ok v -> Alcotest.(check int) "value" ((wave * 1000) + (i * i)) v
              | Error e -> raise e)
            futs
        done;
        Parallel.Pool.shutdown pool);
    Alcotest.test_case "persistent pool: a task exception stays in its future" `Quick (fun () ->
        let pool = Parallel.Pool.create ~jobs:2 () in
        let bad = Parallel.Pool.submit pool (fun () -> raise Exit) in
        let good = Parallel.Pool.submit pool (fun () -> 41 + 1) in
        (match Parallel.Pool.await bad with
        | Error Exit -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Error Exit");
        (* the worker that ran the raising task still serves the next one *)
        Alcotest.(check int) "worker survives" 42
          (match Parallel.Pool.await good with Ok v -> v | Error e -> raise e);
        Parallel.Pool.shutdown pool);
    Alcotest.test_case "persistent pool: graceful shutdown drains the queue" `Quick (fun () ->
        let pool = Parallel.Pool.create ~jobs:1 () in
        let ran = Atomic.make 0 in
        let futs =
          List.init 20 (fun _ -> Parallel.Pool.submit pool (fun () -> Atomic.incr ran))
        in
        Parallel.Pool.shutdown pool;
        Alcotest.(check int) "every queued task ran before the join" 20 (Atomic.get ran);
        List.iter (fun f -> ignore (Parallel.Pool.await f)) futs;
        Alcotest.check_raises "submit after shutdown rejected"
          (Invalid_argument "Parallel.Pool.submit: pool is shut down") (fun () ->
            ignore (Parallel.Pool.submit pool (fun () -> ()))));
    Alcotest.test_case "map_result rides a shared pool" `Quick (fun () ->
        let pool = Parallel.Pool.create ~jobs:2 () in
        let xs = List.init 30 Fun.id in
        Alcotest.(check (list int))
          "input order" (List.map (fun x -> x * 3) xs)
          (List.map
             (function Ok v -> v | Error e -> raise e)
             (Parallel.map_result ~pool (fun x -> x * 3) xs));
        (* the pool survives the batch, unlike the transient path *)
        Alcotest.(check int) "pool still alive" 7
          (match Parallel.Pool.await (Parallel.Pool.submit pool (fun () -> 7)) with
          | Ok v -> v
          | Error e -> raise e);
        Parallel.Pool.shutdown pool);
  ]

let metrics_tests =
  [
    Alcotest.test_case "phase metrics sum to measured wall time" `Quick (fun () ->
        let app = Option.get (Nadroid_corpus.Corpus.find "Mms") in
        let t = Pipeline.analyze ~file:"Mms" app.Nadroid_corpus.Corpus.source in
        let m = t.Pipeline.metrics in
        let sum = Pipeline.phase_sum m in
        Alcotest.(check bool) "phases fit inside wall" true (sum <= m.Pipeline.m_wall +. 0.005);
        (* the only unattributed work is record plumbing between clock
           reads: the gap must be negligible (create_ctx used to hide
           here) *)
        Alcotest.(check bool) "gap below 50ms" true (m.Pipeline.m_wall -. sum < 0.05));
    Alcotest.test_case "create_ctx is attributed to the filtering phase" `Quick (fun () ->
        let app = Option.get (Nadroid_corpus.Corpus.find "Aard") in
        let t = Pipeline.analyze ~file:"Aard" app.Nadroid_corpus.Corpus.source in
        let m = t.Pipeline.metrics in
        let tt = t.Pipeline.timings in
        Alcotest.(check bool) "filtering = ctx + filters" true
          (abs_float (tt.Pipeline.t_filtering -. (m.Pipeline.m_ctx +. m.Pipeline.m_filter)) < 1e-9);
        (* the paper's three-phase split covers the analysis phases
           only; the frontend phases sit outside it *)
        Alcotest.(check bool) "three-phase split + frontend partitions the phase sum" true
          (abs_float
             (tt.Pipeline.t_modeling +. tt.Pipeline.t_detection +. tt.Pipeline.t_filtering
             +. Pipeline.frontend_sum m
             -. Pipeline.phase_sum m)
          < 1e-9));
    Alcotest.test_case "apply_counted prunes exactly like apply" `Quick (fun () ->
        let app = Option.get (Nadroid_corpus.Corpus.find "Aard") in
        let t = Pipeline.analyze ~file:"Aard" app.Nadroid_corpus.Corpus.source in
        let norm ws =
          List.map (fun (w : Detect.warning) -> (Detect.warning_key w, w.Detect.w_pairs)) ws
        in
        let counted, counts = Filters.apply_counted t.Pipeline.ctx Filters.sound t.Pipeline.potential in
        Alcotest.(check bool) "same survivors" true
          (norm counted = norm (Filters.apply t.Pipeline.ctx Filters.sound t.Pipeline.potential));
        Alcotest.(check int) "one count per filter" (List.length Filters.sound) (List.length counts);
        Alcotest.(check bool) "something was pruned and credited" true
          (List.exists (fun (_, c) -> c > 0) counts));
    Alcotest.test_case "metrics JSON is emitted with every phase field" `Quick (fun () ->
        let t = analyze "class A extends Activity { method void onCreate() { } }" in
        let json = Report.metrics_to_json ~name:"tiny" t.Pipeline.metrics in
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " present") true
              (Astring.String.is_infix ~affix:("\"" ^ k ^ "\":") json))
          [ "name"; "frontend_lex"; "frontend_parse"; "frontend_sema"; "frontend_lower";
            "pta"; "aux"; "threadify"; "detect"; "create_ctx"; "filter"; "phase_sum"; "wall";
            "pruned" ]);
  ]

let classify_tests =
  [
    Alcotest.test_case "category ranking prefers the most asynchronous" `Quick (fun () ->
        Alcotest.(check bool) "C-NT > PC-PC" true
          (Classify.rank Classify.C_NT > Classify.rank Classify.PC_PC);
        Alcotest.(check bool) "PC-PC > EC-EC" true
          (Classify.rank Classify.PC_PC > Classify.rank Classify.EC_EC));
    Alcotest.test_case "histogram covers all categories" `Quick (fun () ->
        let t = analyze "class A extends Activity { method void onCreate() { } }" in
        let h = Classify.histogram t.Pipeline.threads [] in
        Alcotest.(check int) "five buckets" 5 (List.length h);
        List.iter (fun (_, n) -> Alcotest.(check int) "empty" 0 n) h);
  ]

let pipeline_tests =
  [
    Alcotest.test_case "phases are consistent" `Quick (fun () ->
        let src, _ =
          Gen.generate
            {
              Spec.app_name = "t";
              activities =
                [
                  {
                    Spec.act_name = "MainActivity";
                    patterns = [ Spec.P_ec_pc_uaf; Spec.P_guarded; Spec.P_ur ];
                  };
                ];
              services = 0;
              padding = 0;
            }
        in
        let t = analyze src in
        let np = List.length t.Pipeline.potential in
        let ns = List.length t.Pipeline.after_sound in
        let nu = List.length t.Pipeline.after_unsound in
        Alcotest.(check bool) "monotone" true (np >= ns && ns >= nu);
        Alcotest.(check int) "one survivor" 1 nu);
    Alcotest.test_case "sound-only config skips unsound filters" `Quick (fun () ->
        let src, _ =
          Gen.generate
            {
              Spec.app_name = "t";
              activities =
                [ { Spec.act_name = "MainActivity"; patterns = [ Spec.P_ur ] } ];
              services = 0;
              padding = 0;
            }
        in
        let config = { Pipeline.default_config with Pipeline.unsound = [] } in
        let t = Pipeline.analyze ~config ~file:"t" src in
        Alcotest.(check int) "UR not applied" (List.length t.Pipeline.after_sound)
          (List.length t.Pipeline.after_unsound));
    Alcotest.test_case "report renders every surviving warning" `Quick (fun () ->
        let src, _ =
          Gen.generate
            {
              Spec.app_name = "t";
              activities =
                [ { Spec.act_name = "MainActivity"; patterns = [ Spec.P_ec_pc_uaf ] } ];
              services = 0;
              padding = 0;
            }
        in
        let t = analyze src in
        let report = Report.to_string t.Pipeline.threads t.Pipeline.after_unsound in
        Alcotest.(check bool) "mentions the field" true
          (Astring.String.is_infix ~affix:"MainActivity.f0" report);
        Alcotest.(check bool) "mentions lineage" true
          (Astring.String.is_infix ~affix:"main ->" report));
  ]

let suite =
  [
    ("threadify", threadify_tests);
    ("filters-by-pattern", filter_tests);
    ("detect", detection_tests);
    ("classify", classify_tests);
    ("pipeline", pipeline_tests);
    ("parallel", parallel_tests);
    ("metrics", metrics_tests);
  ]
