#!/bin/sh
# CI gate: formatting, build, tests, and a smoke run of the
# machine-readable timing bench. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

# 1. Formatting. dune fmt covers dune files always and OCaml sources
#    only when ocamlformat is installed; without it `dune build @fmt`
#    errors out, so gate on the binary and at least keep dune files
#    honest either way.
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "ci: ocamlformat not found; checking dune files only" >&2
  # @fmt stops at the first missing-ocamlformat error, but the dune-file
  #  rules run first, so a dirty dune file still fails before that point.
  out=$(dune build @fmt 2>&1) && : || true
  if printf '%s' "$out" | grep -q '^diff '; then
    printf '%s\n' "$out" >&2
    echo "ci: dune files are not formatted (run: dune build @fmt --auto-promote)" >&2
    exit 1
  fi
fi

# 2. Build + full test suite (tier 1).
dune build
dune runtest

# 3. Timing bench must emit parseable JSON with the expected totals.
json=$(dune exec --no-print-directory bench/main.exe -- timing --json --jobs 1)
for key in '"jobs"' '"apps"' '"totals"' '"elapsed"' '"pruned"'; do
  case $json in
  *${key}*) ;;
  *)
    echo "ci: timing --json output is missing ${key}" >&2
    exit 1
    ;;
  esac
done
# 4. Chaos-fuzz smoke: mutated corpus sources must only ever produce
#    clean runs or structured frontend/budget faults (exit 0 iff so).
dune exec --no-print-directory bin/nadroid.exe -- fuzz --seed 42 --mutants 200

# 5. Differential soundness gate: 100 generated apps, the sound-config
#    static pipeline cross-checked against the schedule explorer; any
#    dynamically witnessed NPE without a matching warning (or dropped
#    seeded pair) fails with exit 4. Fixed seed, deterministic.
dune exec --no-print-directory bin/nadroid.exe -- difftest --seed 42 --apps 100

# 6. Golden-report regression: the committed canonical reports for the
#    27-app corpus must match a fresh analysis byte-for-byte
#    (regenerate deliberately with `nadroid golden --bless`).
dune exec --no-print-directory bin/nadroid.exe -- golden --dir test/golden

# 7. PTA solver equivalence: the worklist solver must be bit-identical
#    to the reference solver on the corpus and on >= 200 generated apps
#    (the property gating the perf tentpole).
dune exec --no-print-directory test/test_main.exe -- test pta-equivalence

# 8. Cache drift gate: a cold pass filling a fresh cache and a warm pass
#    served from it must both match the golden reports byte-for-byte.
cache_dir="_nadroid_cache/ci.$$"
rm -rf "$cache_dir"
dune exec --no-print-directory bin/nadroid.exe -- golden --dir test/golden --cache --cache-dir "$cache_dir"
dune exec --no-print-directory bin/nadroid.exe -- golden --dir test/golden --cache --cache-dir "$cache_dir"
rm -rf "$cache_dir"

# 9. Perf bench smoke: cold/warm/reference batches must emit the
#    BENCH_9.json trajectory point with its expected keys.
dune exec --no-print-directory bench/main.exe -- perf --json --jobs 1 >/dev/null
for key in '"cold_elapsed"' '"warm_elapsed"' '"reference_elapsed"' '"cold_frontend"' '"speedup_cold_vs_reference"' '"warm_hits"' '"pta_visits"' '"pta_steps"'; do
  case $(cat BENCH_9.json) in
  *${key}*) ;;
  *)
    echo "ci: BENCH_9.json is missing ${key}" >&2
    exit 1
    ;;
  esac
done

# 10. Wedged-analysis gate: an adversarial app whose filter phase runs
#     ~10s unbounded must, under --deadline 2, terminate within 2x the
#     deadline with exit 0 and a partial report marked DEGRADED (the
#     marker prints with the metrics, hence --timings). A hang here
#     means in-flight cancellation regressed.
adv_src="_nadroid_cache/ci-adv.$$.mand"
adv_out="_nadroid_cache/ci-adv.$$.out"
mkdir -p _nadroid_cache
dune build bin/nadroid.exe
./_build/default/bin/nadroid.exe synth --adversarial --seed 0 --size 70 > "$adv_src"
adv_t0=$(date +%s)
./_build/default/bin/nadroid.exe analyze "$adv_src" --deadline 2 --timings > "$adv_out"
adv_elapsed=$(( $(date +%s) - adv_t0 ))
if [ "$adv_elapsed" -gt 4 ]; then
  echo "ci: adversarial analyze took ${adv_elapsed}s under --deadline 2 (limit 4s)" >&2
  exit 1
fi
if ! grep -q 'DEGRADED' "$adv_out"; then
  echo "ci: adversarial analyze under --deadline 2 did not report DEGRADED" >&2
  exit 1
fi
rm -f "$adv_src" "$adv_out"

# 11. Monotonic-clock gate: deadline/duration arithmetic must never read
#     the wall clock. The only gettimeofday in lib/bin/bench is the one
#     inside lib/clock that feeds Clock.wall (display timestamps only).
if grep -rn "Unix.gettimeofday" lib bin bench --include='*.ml' \
  | grep -v '^lib/clock/clock\.ml:'; then
  echo "ci: Unix.gettimeofday outside lib/clock — use Nadroid_clock.Clock" >&2
  exit 1
fi

# 12. Serve daemon smoke: boot, answer a request batch byte-identically
#     to the cold CLI, drain on shutdown, exit 0.
serve_sock="/tmp/nadroid-ci.$$.sock"
serve_src="_nadroid_cache/ci-serve.$$.mand"
rm -f "$serve_sock"
dune build bin/nadroid.exe
./_build/default/bin/nadroid.exe corpus ConnectBot > "$serve_src"
./_build/default/bin/nadroid.exe serve --socket "$serve_sock" --quiet &
serve_pid=$!
cold=$(./_build/default/bin/nadroid.exe analyze --json "$serve_src")
warm=$(./_build/default/bin/nadroid.exe request --socket "$serve_sock" \
  "$serve_src" "$serve_src" "$serve_src")
if [ "$warm" != "$cold
$cold
$cold" ]; then
  echo "ci: daemon responses differ from cold analyze --json" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
./_build/default/bin/nadroid.exe request --socket "$serve_sock" --shutdown \
  > /dev/null
if ! wait "$serve_pid"; then
  echo "ci: serve daemon did not exit 0 on graceful shutdown" >&2
  exit 1
fi
rm -f "$serve_src" "$serve_sock"

# 13. Serve bench smoke: concurrent clients against a forked daemon must
#     report zero byte mismatches and a clean daemon exit in BENCH_6.json.
dune exec --no-print-directory bench/main.exe -- serve --json \
  --clients 4 --rounds 1 --jobs 1 >/dev/null
for key in '"rps"' '"p50"' '"p99"' '"mismatches":0' '"daemon_exit":0'; do
  case $(cat BENCH_6.json) in
  *${key}*) ;;
  *)
    echo "ci: BENCH_6.json is missing ${key}" >&2
    exit 1
    ;;
  esac
done

# 14. Crash-survival gate: (a) a batch SIGKILLed mid-run leaves a
#     journal whose --resume rerun exits 0 with output byte-identical
#     to an uninterrupted run; (b) an app that kills its supervised
#     worker costs exactly one quarantine fault while the rest of the
#     batch still analyzes; (c) a supervised daemon keeps serving
#     byte-identically after a request crashes its worker.
crash_dir="_nadroid_cache/ci-crash.$$"
mkdir -p "$crash_dir"
for app in ToDoList Zxing Music; do
  ./_build/default/bin/nadroid.exe corpus "$app" > "$crash_dir/$app.mand"
done
crash_files="$crash_dir/ToDoList.mand $crash_dir/Zxing.mand $crash_dir/Music.mand"
crash_golden=$(./_build/default/bin/nadroid.exe analyze --json --jobs 1 $crash_files)
rc=0
NADROID_FAULTS="journal_append:2:kill" \
  ./_build/default/bin/nadroid.exe analyze --json --jobs 1 \
  --journal "$crash_dir/journal" $crash_files > /dev/null 2>&1 || rc=$?
if [ "$rc" -lt 128 ]; then
  echo "ci: injected SIGKILL did not kill the batch (rc=$rc)" >&2
  exit 1
fi
resumed=$(./_build/default/bin/nadroid.exe analyze --json --jobs 1 \
  --journal "$crash_dir/journal" --resume $crash_files)
if [ "$resumed" != "$crash_golden" ]; then
  echo "ci: resumed batch is not byte-identical to the uninterrupted run" >&2
  exit 1
fi
rc=0
sup=$(NADROID_FAULTS="worker_task=Zxing.mand:kill" \
  ./_build/default/bin/nadroid.exe analyze --json --supervise --jobs 1 \
  $crash_files 2>/dev/null) || rc=$?
if [ "$rc" -ne 4 ]; then
  echo "ci: supervised batch with a crashing app should exit 4, got $rc" >&2
  exit 1
fi
case $sup in
*quarantined*) ;;
*)
  echo "ci: supervised batch output does not name the quarantine" >&2
  exit 1
  ;;
esac
if [ "$(printf '%s' "$sup" | grep -o '"fault":' | wc -l)" -ne 1 ]; then
  echo "ci: the crashing app must cost exactly one fault entry" >&2
  exit 1
fi
crash_sock="/tmp/nadroid-ci-crash.$$.sock"
rm -f "$crash_sock"
NADROID_FAULTS="worker_task=Zxing.mand:kill" \
  ./_build/default/bin/nadroid.exe serve --socket "$crash_sock" --quiet \
  --supervise --jobs 1 &
crash_pid=$!
rc=0
./_build/default/bin/nadroid.exe request --socket "$crash_sock" \
  "$crash_dir/Zxing.mand" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 4 ]; then
  echo "ci: crashing request should answer a fault (exit 4), got $rc" >&2
  kill "$crash_pid" 2>/dev/null || true
  exit 1
fi
cold_todo=$(./_build/default/bin/nadroid.exe analyze --json "$crash_dir/ToDoList.mand")
after=$(./_build/default/bin/nadroid.exe request --socket "$crash_sock" \
  "$crash_dir/ToDoList.mand")
if [ "$after" != "$cold_todo" ]; then
  echo "ci: daemon lost byte-identity after a worker crash" >&2
  kill "$crash_pid" 2>/dev/null || true
  exit 1
fi
./_build/default/bin/nadroid.exe request --socket "$crash_sock" --shutdown \
  > /dev/null
if ! wait "$crash_pid"; then
  echo "ci: supervised daemon did not exit 0 after a worker crash" >&2
  exit 1
fi
rm -rf "$crash_dir" "$crash_sock"

# 15. Blast-radius matrix: seeded fault injection across the cache,
#     journal and worker seams; every app outcome must be baseline-
#     identical or an attributable structured fault — any escape
#     exits 4.
dune exec --no-print-directory bin/nadroid.exe -- faultfuzz \
  --seed 42 --trials 8 --apps 6 --jobs 2

# 16. Fleet smoke: a seeded 500-app mega-corpus (2% adversarial) through
#     the work-stealing scheduler on 4 jobs, cached under a tight
#     --cache-max-bytes cap. The driver itself exits non-zero on any
#     fault or any cross-scheduler digest mismatch; re-check both from
#     BENCH_8.json anyway so a silent driver regression can't pass.
fleet_dir="/tmp/nadroid-ci-fleet.$$"
rm -rf "$fleet_dir" BENCH_8.json
mkdir -p "$fleet_dir"
dune exec --no-print-directory bench/main.exe -- fleet --json --jobs 4 \
  --apps 500 --adversarial 0.02 --seed 42 \
  --cache --cache-dir "$fleet_dir" --cache-max-bytes 262144 > /dev/null
case $(cat BENCH_8.json) in
*'"digests_identical":true,"faults":0,'*) ;;
*)
  echo "ci: fleet smoke must report zero faults and identical digests" >&2
  exit 1
  ;;
esac
rm -rf "$fleet_dir"

# 17. Frontend gate: (a) the frontend-equivalence group — table-driven
#     lexer, token-array parser and batch-shared interning must be
#     byte-identical to the reference paths on 200 generated apps and
#     the corpus, and count_loc must agree with the naive LOC-spec
#     scanner on every corpus app; (b) perf smoke — the cold corpus
#     batch must not regress >20% against the committed BENCH_9
#     trajectory point. Step 9 already overwrote the working-tree
#     BENCH_9.json, so the baseline comes from HEAD; the measurement is
#     the better of step 9's run and one fresh run, which keeps a
#     single noisy run on a loaded machine from failing the gate.
dune exec --no-print-directory test/test_main.exe -- test frontend-equivalence
cold_extract() {
  sed -n 's/.*"cold_elapsed":\([0-9.][0-9.]*\).*/\1/p' "$1"
}
baseline_json="_nadroid_cache/ci-bench9-head.$$.json"
mkdir -p _nadroid_cache
if git show HEAD:BENCH_9.json > "$baseline_json" 2>/dev/null; then
  baseline=$(cold_extract "$baseline_json")
  sample1=$(cold_extract BENCH_9.json)
  dune exec --no-print-directory bench/main.exe -- perf --json --jobs 1 >/dev/null
  sample2=$(cold_extract BENCH_9.json)
  if ! awk -v b="$baseline" -v s1="$sample1" -v s2="$sample2" \
    'BEGIN { best = (s1 < s2 ? s1 : s2); exit !(best <= b * 1.2) }'; then
    echo "ci: frontend perf smoke regressed >20% vs committed BENCH_9" \
      "(baseline ${baseline}s, runs ${sample1}s / ${sample2}s)" >&2
    exit 1
  fi
else
  echo "ci: no committed BENCH_9.json at HEAD; skipping perf smoke" >&2
fi
rm -f "$baseline_json"

echo "ci: ok"
