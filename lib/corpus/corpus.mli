(** The evaluation corpus: 27 apps (7 train + 20 test, Table 1) and the
    8 artificially-injected variants of the false-negative study
    (Table 2). Sources are built lazily and deterministically. *)

type group = Train | Test

type app = {
  name : string;
  group : group;
  source : string;
  seeded : Spec.seeded list;  (** ground truth for generated patterns *)
}

val train : app list Lazy.t

val test : app list Lazy.t

val all : app list Lazy.t

val find : string -> app option

val analyze_all :
  ?config:Nadroid_core.Pipeline.config ->
  ?jobs:int ->
  ?window:int ->
  ?sched:Nadroid_core.Parallel.sched ->
  app list ->
  (app * (Nadroid_core.Pipeline.t, Nadroid_core.Fault.t) result) list
(** Run the full pipeline over a batch of apps on a domain pool of
    [jobs] domains (default: all cores). Results are in input order and
    byte-identical at any [jobs] value. Failures are isolated per app:
    a bad source yields [Error fault] in its own slot and the rest of
    the batch still completes. *)

val injected_category : Spec.pattern -> Nadroid_core.Classify.category
(** The nominal origin category an injected pattern is reported under. *)

val injections : (string * Spec.pattern list) list
(** The Table 2 mix: 28 UAFs over 8 apps — EC-EC 4, EC-PC 11, PC-PC 5,
    C-RT 1, C-NT 7, of which 2 undetectable and 3 CHB-pruned. *)

type injected_app = {
  inj_base : app;
  inj_source : string;  (** base source plus an injected activity *)
  inj_seeded : Spec.seeded list;  (** ground truth of the injected UAFs only *)
}

val injected : injected_app list Lazy.t
