(* Grammar-aware random MiniAndroid app generator for the differential
   soundness harness.

   Unlike {!Gen}, which expands fixed per-pattern fragments, this module
   composes random lifecycle bodies, click listeners, Handler posts,
   native threads, AsyncTasks and service connections over a shared
   per-activity field pool. Every generated app is well-typed by
   construction, and — critically — every dynamically reachable NPE in
   it is guaranteed to be statically reported by a *correct*
   sound-filters-only pipeline, so any unmatched NPE the dynamic oracle
   witnesses is a genuine soundness counterexample, never generator
   noise. The invariants that buy this guarantee:

   - every pool field is allocated at the top of [onCreate], before any
     other generated statement, and [onCreate] runs exactly once per
     component (the lifecycle automaton never restarts a destroyed
     activity) — so use-before-init NPEs, which have no free site and
     are out of the detector's scope, cannot occur;
   - within one callback body a field is either dereferenced or nulled,
     never both (two dynamic instances of the same callback share a
     modeled thread, and the detector only pairs sites from two
     different threads); merged lifecycle methods share one partition
     per (activity, method) so the rule survives fragment merging;
   - [onServiceConnected] bodies never dereference a field without
     either a preceding same-statement allocation or a null guard:
     connections can re-connect, so MHB-Service's same-edge pruning is
     only dynamically sound for allocation-protected or guarded uses;
   - AsyncTasks are executed from [onCreate] only, so each execute edge
     runs exactly once and MHB-Async's same-edge pre/post pruning is
     dynamically sound;
   - the Handler helper field lives outside the pool and is never
     nulled.

   On top of the free-form fragments, an app optionally embeds a random
   multiset of {!Spec} patterns (through {!Gen.generate}) whose
   {!Spec.seeded} ground truth feeds the dropped-seed soundness check
   and the unsound-filter precision measurement. [P_mhb_async] is
   excluded: its click-driven execute edge genuinely violates the
   MHB-Async assumption under re-execution, which the simulator can
   reach (that is a known modeling gap of the paper's filter, not a
   pipeline bug this harness should fail on). [P_chb] (whose [finish()]
   interferes with other instances) and [P_inj_unmodeled] (invisible to
   both sides) are also left out.

   Determinism: an app is a pure function of its seed; rendering is a
   pure function of the structure, so shrinking (structure-level
   deletions) re-renders reproducibly. *)

type op =
  | Alloc  (** [f = new Data();] *)
  | Alloc_use  (** [f = new Data(); f.use();] — IA-shaped *)
  | Use  (** [f.use();] *)
  | Guarded_use  (** [if (f != null) { f.use(); }] — IG-shaped *)
  | Null  (** [f = null;] — a free site *)

type stmt = { st_field : int; st_op : op }

type frag =
  | F_lifecycle of string * stmt list  (** body appended to a lifecycle method *)
  | F_click of stmt list  (** its own listener, registered in [onStart] *)
  | F_post of string * stmt list  (** runnable posted from the host method *)
  | F_thread of string * stmt list  (** native thread spawned from the host *)
  | F_async of stmt list * stmt list * stmt list
      (** pre / background / post bodies; executed from [onCreate] *)
  | F_conn of stmt list * stmt list  (** connected / disconnected bodies *)

type sact = { sa_name : string; sa_pool : int; sa_frags : frag list }

type t = { sy_seed : int; sy_acts : sact list; sy_patterns : Spec.pattern list }

let name t = Printf.sprintf "synth%d" t.sy_seed

let lifecycle_methods = [ "onCreate"; "onStart"; "onResume"; "onPause"; "onDestroy" ]

let embeddable : Spec.pattern list =
  [
    Spec.P_ec_pc_uaf;
    Spec.P_pc_pc_uaf;
    Spec.P_c_nt_uaf;
    Spec.P_c_rt_uaf;
    Spec.P_ec_ec_uaf;
    Spec.P_guarded;
    Spec.P_guarded_locked;
    Spec.P_intra_alloc;
    Spec.P_mhb_service;
    Spec.P_mhb_lifecycle;
    Spec.P_rhb;
    Spec.P_phb;
    Spec.P_ma;
    Spec.P_ur;
    Spec.P_tt;
    Spec.P_fp_path;
    Spec.P_fp_missing_hb;
    Spec.P_safe;
  ]

(* -- generation ---------------------------------------------------------- *)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let all_ops = [ Alloc; Alloc_use; Use; Guarded_use; Null ]

(* onServiceConnected: no bare [Use] (see the module comment). *)
let connected_ops = [ Alloc; Alloc_use; Guarded_use; Null ]

(* One body under a null/deref partition of the pool: [nullable.(i)]
   fields may only be nulled or allocated here, the rest may only be
   dereferenced or allocated. An op whose side of the partition is empty
   degrades to a plain allocation. *)
let gen_body rng ~(nullable : bool array) ~allow ~len : stmt list =
  let pool = Array.length nullable in
  let every = List.init pool Fun.id in
  let nulls = List.filter (fun i -> nullable.(i)) every in
  let derefs = List.filter (fun i -> not nullable.(i)) every in
  List.init len (fun _ ->
      let op, candidates =
        match pick rng allow with
        | Null -> if nulls = [] then (Alloc, every) else (Null, nulls)
        | Alloc -> (Alloc, every)
        | (Alloc_use | Use | Guarded_use) as o ->
            if derefs = [] then (Alloc, every) else (o, derefs)
      in
      { st_op = op; st_field = pick rng candidates })

let fresh_split rng pool = Array.init pool (fun _ -> Random.State.bool rng)

let gen_act rng ai : sact =
  let pool = 2 + Random.State.int rng 3 in
  let n_frags = 3 + Random.State.int rng 5 in
  (* all fragments of the same lifecycle method merge into one callback
     body, so they must share one partition per (activity, method) *)
  let lifecycle_split = Hashtbl.create 7 in
  let split_of m =
    match Hashtbl.find_opt lifecycle_split m with
    | Some a -> a
    | None ->
        let a = fresh_split rng pool in
        Hashtbl.add lifecycle_split m a;
        a
  in
  let len () = 1 + Random.State.int rng 3 in
  let gen_frag () =
    match Random.State.int rng 10 with
    | 0 | 1 ->
        let m = pick rng lifecycle_methods in
        F_lifecycle (m, gen_body rng ~nullable:(split_of m) ~allow:all_ops ~len:(len ()))
    | 2 | 3 | 4 -> F_click (gen_body rng ~nullable:(fresh_split rng pool) ~allow:all_ops ~len:(len ()))
    | 5 ->
        F_post
          ( pick rng lifecycle_methods,
            gen_body rng ~nullable:(fresh_split rng pool) ~allow:all_ops ~len:(len ()) )
    | 6 | 7 ->
        F_thread
          ( pick rng lifecycle_methods,
            gen_body rng ~nullable:(fresh_split rng pool) ~allow:all_ops ~len:(len ()) )
    | 8 ->
        F_async
          ( gen_body rng ~nullable:(fresh_split rng pool) ~allow:all_ops ~len:(len ()),
            gen_body rng ~nullable:(fresh_split rng pool) ~allow:all_ops ~len:(len ()),
            gen_body rng ~nullable:(fresh_split rng pool) ~allow:all_ops ~len:(len ()) )
    | _ ->
        F_conn
          ( gen_body rng ~nullable:(fresh_split rng pool) ~allow:connected_ops ~len:(len ()),
            gen_body rng ~nullable:(fresh_split rng pool) ~allow:all_ops ~len:(len ()) )
  in
  {
    sa_name = Printf.sprintf "SynAct%d" ai;
    sa_pool = pool;
    sa_frags = List.init n_frags (fun _ -> gen_frag ());
  }

let generate ~seed : t =
  let rng = Random.State.make [| 0x53_59; seed |] in
  let n_acts = 1 + Random.State.int rng 2 in
  let acts = List.init n_acts (gen_act rng) in
  let n_patterns = Random.State.int rng 4 in
  let patterns = List.init n_patterns (fun _ -> pick rng embeddable) in
  { sy_seed = seed; sy_acts = acts; sy_patterns = patterns }

(* -- rendering ----------------------------------------------------------- *)

let stmt_str s =
  let f = Printf.sprintf "f%d" s.st_field in
  match s.st_op with
  | Alloc -> Printf.sprintf "%s = new Data();" f
  | Alloc_use -> Printf.sprintf "%s = new Data(); %s.use();" f f
  | Use -> Printf.sprintf "%s.use();" f
  | Guarded_use -> Printf.sprintf "if (%s != null) { %s.use(); }" f f
  | Null -> Printf.sprintf "%s = null;" f

let body_str = function
  | [] -> "log(\"nop\");"  (* shrinking can empty a body *)
  | stmts -> String.concat " " (List.map stmt_str stmts)

let render_act (a : sact) : string =
  let has_post = List.exists (function F_post _ -> true | _ -> false) a.sa_frags in
  let buckets : (string, string list ref) Hashtbl.t = Hashtbl.create 7 in
  let add m s =
    let r =
      match Hashtbl.find_opt buckets m with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add buckets m r;
          r
    in
    r := s :: !r
  in
  let n_clicks = ref 0 in
  List.iter
    (fun frag ->
      match frag with
      | F_lifecycle (m, body) -> add m (body_str body)
      | F_click body ->
          let view = !n_clicks in
          incr n_clicks;
          add "onStart" (Gen.click_listener ~view ~body:(body_str body))
      | F_post (host, body) ->
          add host
            (Printf.sprintf "h.post(new Runnable() { method void run() { %s } });"
               (body_str body))
      | F_thread (host, body) ->
          add host
            (Printf.sprintf "new Thread(new Runnable() { method void run() { %s } }).start();"
               (body_str body))
      | F_async (pre, bg, post) ->
          add "onCreate"
            (Printf.sprintf
               "new AsyncTask() { method void onPreExecute() { %s } method void \
                doInBackground() { %s } method void onPostExecute() { %s } }.execute();"
               (body_str pre) (body_str bg) (body_str post))
      | F_conn (connected, disconnected) ->
          add "onCreate"
            (Gen.service_conn ~connected:(body_str connected)
               ~disconnected:(body_str disconnected)))
    a.sa_frags;
  let bucket m = match Hashtbl.find_opt buckets m with Some r -> List.rev !r | None -> [] in
  let pool_inits = List.init a.sa_pool (fun i -> Printf.sprintf "f%d = new Data();" i) in
  let handler_init =
    if has_post then
      [ "h = new Handler() { method void handleMessage(Message m) { log(\"h\"); } };" ]
    else []
  in
  let on_create = pool_inits @ handler_init @ bucket "onCreate" in
  let fields =
    List.init a.sa_pool (fun i -> Printf.sprintf "field Data f%d;" i)
    @ (if has_post then [ "field Handler h;" ] else [])
  in
  let indent s =
    String.split_on_char '\n' s
    |> List.map (fun l -> if l = "" then l else "  " ^ l)
    |> String.concat "\n"
  in
  let method_of m stmts =
    match stmts with
    | [] -> None
    | _ ->
        Some
          (Printf.sprintf "method void %s() {\n%s\n}" m
             (String.concat "\n" (List.map indent stmts)))
  in
  let members =
    fields
    @ List.filter_map
        (fun m -> method_of m (if m = "onCreate" then on_create else bucket m))
        lifecycle_methods
  in
  Printf.sprintf "class %s extends Activity {\n%s\n}" a.sa_name
    (String.concat "\n" (List.map indent members))

let render (t : t) : string * Spec.seeded list =
  let seeded_classes, seeded =
    match t.sy_patterns with
    | [] -> ([ Gen.data_class ], [])
    | patterns ->
        let spec =
          {
            Spec.app_name = name t;
            activities = [ { Spec.act_name = "Seeded"; patterns } ];
            services = 0;
            padding = 0;
          }
        in
        let src, sd = Gen.generate spec in
        ([ String.trim src ], sd)
  in
  let classes = seeded_classes @ List.map render_act t.sy_acts in
  (String.concat "\n\n" classes ^ "\n", seeded)

(* -- adversarial pathology ------------------------------------------------ *)

(* A worst-case app for the deadline machinery: the analysis is
   *correct* on it but asymptotically slow in the filter phase, which is
   exactly where in-flight cancellation must land.

   Shape, for a size parameter [s]: [s] pool fields, each nulled in
   [onPause] (one free site per field); [s] click listeners, each
   dereferencing every pool field ([s*s] use sites, so [s*s] potential
   warnings all pairing a click thread against the [onPause] thread);
   and an [onResume] body of [10*s] allocations of a dummy non-pool
   field. Every warning reaches RHB (same component, free thread is
   [onPause], use thread is not), and RHB re-runs its guard analysis of
   the *whole* [onResume] body per (warning, pair) — uncached by design,
   this is the filter's documented hotspot — so the filter phase costs
   ~[s^2 * 10s] guard transfers while points-to and detection stay
   near-linear and finish well inside any reasonable deadline. The dummy
   field keeps [may_allocates] false for every pool field: RHB never
   prunes, every warning flows on to the remaining unsound filters, and
   the surviving report stays a sound over-approximation.

   The seed only permutes each listener's field-use order, so distinct
   seeds give distinct sources with identical cost structure. *)
let adversarial ~seed ~size : string =
  let size = max 1 size in
  let rng = Random.State.make [| 0x41_44; seed |] in
  let shuffled () =
    let a = Array.init size Fun.id in
    for i = size - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  let fields =
    List.init size (fun i -> Printf.sprintf "  field Data f%d;" i) @ [ "  field Data g;" ]
  in
  let on_create =
    List.init size (fun i -> Printf.sprintf "    f%d = new Data();" i)
    @ [ "    g = new Data();" ]
  in
  let on_start =
    List.init size (fun view ->
        let body =
          String.concat " " (List.map (fun i -> Printf.sprintf "f%d.use();" i) (shuffled ()))
        in
        "    " ^ Gen.click_listener ~view ~body)
  in
  let on_resume = List.init (10 * size) (fun _ -> "    g = new Data();") in
  let on_pause = List.init size (fun i -> Printf.sprintf "    f%d = null;" i) in
  let meth name body = (Printf.sprintf "  method void %s() {" name :: body) @ [ "  }" ] in
  String.concat "\n"
    ([ Gen.data_class; Printf.sprintf "class Adv%d extends Activity {" seed ]
    @ fields
    @ meth "onCreate" on_create
    @ meth "onStart" on_start
    @ meth "onResume" on_resume
    @ meth "onPause" on_pause
    @ [ "}"; "" ])

(* -- shrinking ----------------------------------------------------------- *)

let remove_nth n xs = List.filteri (fun i _ -> i <> n) xs

(* Structure-level one-step deletions, coarsest first, in a fixed order:
   greedy shrinking takes the first variant that still exhibits the
   discrepancy, so the result is deterministic. *)
let shrink_steps (t : t) : t list =
  let drop_patterns =
    List.mapi (fun i _ -> { t with sy_patterns = remove_nth i t.sy_patterns }) t.sy_patterns
  in
  let drop_acts =
    if List.length t.sy_acts <= 1 then []
    else List.mapi (fun i _ -> { t with sy_acts = remove_nth i t.sy_acts }) t.sy_acts
  in
  let with_act ai a' = { t with sy_acts = List.mapi (fun i a -> if i = ai then a' else a) t.sy_acts } in
  let drop_frags =
    List.concat
      (List.mapi
         (fun ai a ->
           List.mapi
             (fun fi _ -> with_act ai { a with sa_frags = remove_nth fi a.sa_frags })
             a.sa_frags)
         t.sy_acts)
  in
  let shrink_frag frag =
    let bodies body rebuild = List.mapi (fun si _ -> rebuild (remove_nth si body)) body in
    match frag with
    | F_lifecycle (m, b) -> bodies b (fun b' -> F_lifecycle (m, b'))
    | F_click b -> bodies b (fun b' -> F_click b')
    | F_post (m, b) -> bodies b (fun b' -> F_post (m, b'))
    | F_thread (m, b) -> bodies b (fun b' -> F_thread (m, b'))
    | F_async (pre, bg, post) ->
        bodies pre (fun b -> F_async (b, bg, post))
        @ bodies bg (fun b -> F_async (pre, b, post))
        @ bodies post (fun b -> F_async (pre, bg, b))
    | F_conn (c, d) ->
        bodies c (fun b -> F_conn (b, d)) @ bodies d (fun b -> F_conn (c, b))
  in
  let drop_stmts =
    List.concat
      (List.mapi
         (fun ai a ->
           List.concat
             (List.mapi
                (fun fi frag ->
                  List.map
                    (fun frag' ->
                      with_act ai
                        { a with sa_frags = List.mapi (fun i f -> if i = fi then frag' else f) a.sa_frags })
                    (shrink_frag frag))
                a.sa_frags))
         t.sy_acts)
  in
  drop_patterns @ drop_acts @ drop_frags @ drop_stmts

let size (t : t) : int =
  let frag_size = function
    | F_lifecycle (_, b) | F_click b | F_post (_, b) | F_thread (_, b) -> 1 + List.length b
    | F_async (a, b, c) -> 1 + List.length a + List.length b + List.length c
    | F_conn (a, b) -> 1 + List.length a + List.length b
  in
  List.length t.sy_patterns
  + List.fold_left
      (fun acc a -> acc + 1 + List.fold_left (fun n f -> n + frag_size f) 0 a.sa_frags)
      0 t.sy_acts
