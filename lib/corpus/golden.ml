(* Golden-report regression over the 27-app corpus.

   Each corpus app has a committed canonical report
   (test/golden/<name>.expected): pipeline counts plus the rendered
   warning report under the default configuration. [check] re-analyzes
   the corpus and fails on any byte drift — the tripwire every future
   perf or refactor PR runs against; [bless] regenerates the files
   (byte-identical on a second run, since the pipeline and the report
   renderer are deterministic). *)

module Pipeline = Nadroid_core.Pipeline
module Report = Nadroid_core.Report
module Fault = Nadroid_core.Fault
module Cache = Nadroid_core.Cache

let canonical_of_entry (app : Corpus.app) (e : Cache.entry) : string =
  Printf.sprintf "app: %s\npotential: %d\nafter-sound: %d\nafter-unsound: %d\n\n%s"
    app.Corpus.name e.Cache.e_potential e.Cache.e_after_sound e.Cache.e_after_unsound
    e.Cache.e_report

let canonical (app : Corpus.app) (t : Pipeline.t) : string =
  canonical_of_entry app (Cache.entry_of_result t)

let filename (app : Corpus.app) = app.Corpus.name ^ ".expected"

(* Canonical report for every corpus app; a corpus app failing to
   analyze is itself a regression, surfaced as the fault. With
   [cache_dir] the reports are served through the analysis cache — the
   entry stores the same counts and rendered report the direct path
   prints, so a warm pass is byte-identical to a cold one (the CI
   cold-then-warm gate). *)
let render_all ?jobs ?cache_dir () : (Corpus.app * string) list =
  match cache_dir with
  | None ->
      List.map
        (fun (app, r) ->
          match r with
          | Ok t -> (app, canonical app t)
          | Error f -> raise (Fault.Fault f))
        (Corpus.analyze_all ?jobs (Lazy.force Corpus.all))
  | Some dir ->
      let apps = Lazy.force Corpus.all in
      ignore (Lazy.force Nadroid_lang.Builtins.program);
      (* batch-shared symbol table for the cache misses (safe: not part
         of the cache key, cannot change an entry) *)
      let interner = Pipeline.create_interner () in
      List.map2
        (fun (app : Corpus.app) r ->
          match r with
          | Ok (e, _outcome) -> (app, canonical_of_entry app e)
          | Error exn -> raise (Fault.Fault (Fault.of_exn exn)))
        apps
        (Nadroid_core.Parallel.map_result ?jobs
           (fun (app : Corpus.app) ->
             Cache.analyze ~interner ~dir ~file:app.Corpus.name app.Corpus.source)
           apps)

type status =
  | G_ok
  | G_missing  (** no committed .expected file *)
  | G_drift of { line : int; expected : string; actual : string }
      (** first differing line (1-based; [""] = past end of file) *)

let first_diff expected actual : (int * string * string) option =
  let e = String.split_on_char '\n' expected and a = String.split_on_char '\n' actual in
  let rec go i = function
    | [], [] -> None
    | x :: xs, y :: ys -> if String.equal x y then go (i + 1) (xs, ys) else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "")
    | [], y :: _ -> Some (i, "", y)
  in
  go 1 (e, a)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check ~dir ?jobs ?cache_dir () : (string * status) list =
  List.map
    (fun ((app : Corpus.app), actual) ->
      let path = Filename.concat dir (filename app) in
      if not (Sys.file_exists path) then (app.Corpus.name, G_missing)
      else
        let expected = read_file path in
        match first_diff expected actual with
        | None -> (app.Corpus.name, G_ok)
        | Some (line, e, a) -> (app.Corpus.name, G_drift { line; expected = e; actual = a }))
    (render_all ?jobs ?cache_dir ())

let ok results = List.for_all (fun (_, s) -> s = G_ok) results

let bless ~dir ?jobs () : int =
  let rendered = render_all ?jobs () in
  List.iter
    (fun ((app : Corpus.app), actual) ->
      let path = Filename.concat dir (filename app) in
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc actual))
    rendered;
  List.length rendered

let pp_status ppf (name, s) =
  match s with
  | G_ok -> Fmt.pf ppf "ok       %s" name
  | G_missing -> Fmt.pf ppf "MISSING  %s (run with --bless to create)" name
  | G_drift { line; expected; actual } ->
      Fmt.pf ppf "DRIFT    %s at line %d:@\n  expected: %s@\n  actual:   %s" name line expected
        actual
