(** Seeded fleet-scale corpus generator for the 5k–10k-app batch runs.

    A mega-corpus is a pure function of its {!spec}: [plan] lays out
    cheap per-app descriptors (name, seed, kind, LOC target) without
    touching any source text, and [source] materializes one app's
    MiniAndroid source on demand — the generate→analyze→drop discipline
    that keeps a 10k-app run at O(window) memory, never O(corpus).

    Normal apps draw their LOC target from the empirical Table 1
    distribution (the 27 {!Corpus.all} apps' LOC, with ±20% jitter) and
    are rendered through {!Gen} with padding tuned to hit the target. A
    configurable fraction are {!Synth.adversarial} stragglers with
    heavy-tailed sizes — the ~size³ filter-phase apps that skew a
    static per-domain split idle. *)

type kind =
  | Normal of int  (** LOC target, drawn from the Table 1 distribution *)
  | Adversarial of int  (** [Synth.adversarial] [~size], heavy-tailed 8–30 *)

type app = {
  mc_index : int;  (** position in the corpus, [0 .. mc_apps-1] *)
  mc_name : string;  (** ["mc<seed>_<index>"], unique per corpus *)
  mc_app_seed : int;  (** per-app generation seed *)
  mc_kind : kind;
}

type spec = {
  mc_seed : int;
  mc_apps : int;
  mc_adversarial : float;  (** fraction of adversarial apps, [0..1] *)
  mc_loc_scale : float;  (** multiplier on the drawn LOC targets (1.0 = Table 1) *)
}

val default : spec
(** seed 0, 5000 apps, 2% adversarial, scale 1.0. *)

val plan : spec -> app array
(** Deterministic per spec; O(mc_apps) descriptors, no source text. *)

val source : app -> string
(** Materialize one app's source. Deterministic per descriptor; call
    sites should drop the result after analysis. Normal apps land
    within ±15% of their LOC target (padding granularity aside). *)
