(* Blast-radius fuzzing: prove injected faults stay contained.

   Each trial arms the seeded fault-injection registry over one group of
   seams and runs a corpus batch through the full crash-survival stack —
   in-process trials exercise the cache and journal seams (twice, cold
   then warm, so both the store and the read/corruption paths see
   faults); supervised trials exercise the worker spawn/pipe seams with
   the analyses in child processes. Afterwards every app's outcome must
   be one of exactly two things:

   - byte-identical to the clean baseline (report and counts), or
   - a structured fault visibly caused by the machinery under test
     (its detail mentions the injection, a quarantine, or a worker).

   Anything else — a silently wrong report, an unexplained fault class,
   an exception escaping the crash-isolation wrapper, a journal whose
   valid prefix no longer parses — is a blast-radius escape: evidence
   that an injected fault leaked outside the app it hit. The driver
   reports all escapes; `nadroid faultfuzz` exits 4 when there are any,
   which is the CI gate. *)

module Fault = Nadroid_core.Fault
module Cache = Nadroid_core.Cache
module Journal = Nadroid_core.Journal
module Supervise = Nadroid_core.Supervise
module Faultinject = Nadroid_core.Faultinject
module Parallel = Nadroid_core.Parallel
module Pipeline = Nadroid_core.Pipeline

type escape = {
  x_trial : int;
  x_mode : string;
  x_app : string;
  x_what : string;
}

type summary = {
  fz_trials : int;
  fz_fires : int;  (** injected faults that actually fired *)
  fz_faulted : int;  (** app entries that became structured faults *)
  fz_clean : int;  (** app entries byte-identical to the baseline *)
  fz_escapes : escape list;
}

(* A fault is attributable to the injection machinery when its detail
   names the injection site, a quarantine, or the worker plumbing. *)
let injected_fault (f : Fault.t) =
  let d = Fault.detail f in
  List.exists
    (fun affix -> Astring.String.is_infix ~affix d)
    [ "faultinject"; "quarantined"; "worker"; "supervisor" ]

let inproc_sites =
  [
    Faultinject.Cache_read;
    Faultinject.Cache_write;
    Faultinject.Cache_rename;
    Faultinject.Journal_append;
  ]

let supervised_sites = [ Faultinject.Worker_spawn; Faultinject.Worker_pipe_read ]

let rm_rf dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        names;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let run ?(jobs = 2) ?(apps = 8) ~seed ~trials () : summary =
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let corpus =
    List.filteri (fun i _ -> i < apps) (Lazy.force Corpus.all)
  in
  let config = Pipeline.default_config in
  (* clean baseline: what every app must still produce when it is not
     the one a fault landed on *)
  let baseline : (string, Cache.entry) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((app : Corpus.app), r) ->
      match r with
      | Ok t -> Hashtbl.replace baseline app.Corpus.name (Cache.entry_of_result t)
      | Error f ->
          invalid_arg
            (Printf.sprintf "faultfuzz: baseline analysis of %s failed: %s"
               app.Corpus.name (Fault.to_string f)))
    (Corpus.analyze_all ~config ~jobs corpus);
  let escapes = ref [] in
  let fires = ref 0 and faulted = ref 0 and clean = ref 0 in
  let escape trial mode app what =
    escapes := { x_trial = trial; x_mode = mode; x_app = app; x_what = what } :: !escapes
  in
  let entry_matches (e : Cache.entry) (b : Cache.entry) =
    String.equal e.Cache.e_report b.Cache.e_report
    && e.Cache.e_potential = b.Cache.e_potential
    && e.Cache.e_after_sound = b.Cache.e_after_sound
    && e.Cache.e_after_unsound = b.Cache.e_after_unsound
  in
  let judge trial mode (app : Corpus.app) outcome =
    match outcome with
    | Error e ->
        (* map_result captured an exception: something escaped the
           crash-isolation wrappers *)
        escape trial mode app.Corpus.name
          ("exception escaped isolation: " ^ Printexc.to_string e)
    | Ok (Ok entry) ->
        if entry_matches entry (Hashtbl.find baseline app.Corpus.name) then
          incr clean
        else
          escape trial mode app.Corpus.name
            "result differs from the clean baseline"
    | Ok (Error f) ->
        incr faulted;
        if not (injected_fault f) then
          escape trial mode app.Corpus.name
            ("fault not attributable to injection: " ^ Fault.to_string f)
  in
  for trial = 0 to trials - 1 do
    let supervised = trial land 1 = 1 in
    let mode = if supervised then "supervised" else "inproc" in
    let dir =
      Filename.concat Cache.default_dir
        (Printf.sprintf "fuzz.%d.%d" (Unix.getpid ()) trial)
    in
    let jpath = Filename.concat dir "journal" in
    Faultinject.arm_seeded ~seed:(seed + trial) ~rate:0.08
      ~sites:(if supervised then supervised_sites else inproc_sites)
      ();
    (* created after arming, so even the initial spawns face fire *)
    let sp = if supervised then Some (Supervise.create ~jobs ()) else None in
    let journal, _ = Journal.open_ ~path:jpath ~resume:false in
    let task (app : Corpus.app) =
      let r =
        match sp with
        | Some sp ->
            Supervise.analyze sp ~config ~file:app.Corpus.name app.Corpus.source
        | None ->
            Fault.wrap (fun () ->
                fst (Cache.analyze ~config ~dir ~file:app.Corpus.name app.Corpus.source))
      in
      (* a journal append may be the injected failure itself; losing the
         record costs resume coverage, never the result *)
      (try
         Journal.append journal
           {
             Journal.j_name = app.Corpus.name;
             j_key = Cache.key ~config app.Corpus.source;
             j_result = r;
           }
       with Sys_error _ | Unix.Unix_error _ -> ());
      r
    in
    let passes = if supervised then 1 else 2 in
    for _pass = 1 to passes do
      (* in-process trials run twice over the same cache dir: the cold
         pass hits the write/rename seams, the warm pass the read seam —
         and a cache under fire must still never serve wrong bytes *)
      List.iter2 (judge trial mode) corpus (Parallel.map_result ~jobs task corpus)
    done;
    Journal.close journal;
    Faultinject.disarm ();
    fires := !fires + Faultinject.fires ();
    Option.iter Supervise.shutdown sp;
    (* whatever the injections did, the journal's valid prefix must
       still replay: records are either whole or truncated, never lies *)
    (match Journal.replay ~path:jpath with
    | _records -> ()
    | exception e ->
        escape trial mode "<journal>" ("replay raised: " ^ Printexc.to_string e));
    rm_rf dir
  done;
  {
    fz_trials = trials;
    fz_fires = !fires;
    fz_faulted = !faulted;
    fz_clean = !clean;
    fz_escapes = List.rev !escapes;
  }

let pp_summary ppf s =
  Fmt.pf ppf "faultfuzz: %d trials, %d injected faults fired@." s.fz_trials
    s.fz_fires;
  Fmt.pf ppf "  app outcomes: %d clean (identical to baseline), %d faulted@."
    s.fz_clean s.fz_faulted;
  if s.fz_escapes = [] then Fmt.pf ppf "  blast-radius escapes: 0@."
  else begin
    Fmt.pf ppf "  blast-radius escapes: %d@." (List.length s.fz_escapes);
    List.iter
      (fun x ->
        Fmt.pf ppf "    trial %d (%s) %s: %s@." x.x_trial x.x_mode x.x_app
          x.x_what)
      s.fz_escapes
  end
