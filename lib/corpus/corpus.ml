(* The evaluation corpus: 27 apps (7 train + 20 test, Table 1) and the
   8 artificially-injected variants used by the false-negative study
   (Table 2). *)

type group = Train | Test

type app = {
  name : string;
  group : group;
  source : string;
  seeded : Spec.seeded list;  (** ground truth for generated patterns *)
}

let of_train (name, (hand, spec)) : app =
  let generated, seeded = Gen.generate spec in
  { name; group = Train; source = hand ^ "\n" ^ generated; seeded }

let of_test (spec : Spec.t) : app =
  let generated, seeded = Gen.generate spec in
  { name = spec.Spec.app_name; group = Test; source = generated; seeded }

let train : app list Lazy.t = lazy (List.map of_train Apps_train.all)

let test : app list Lazy.t = lazy (List.map of_test Apps_test.all)

let all : app list Lazy.t = lazy (Lazy.force train @ Lazy.force test)

let find name =
  List.find_opt (fun a -> String.equal a.name name) (Lazy.force all)

(* Analyze a batch of apps on a domain pool. The detection join's
   symbol table is hash-consed once per batch and shared by every
   worker (it is thread-safe, and engine iteration is insertion-ordered
   so sharing never changes a report); everything else is per-analysis
   state, so apps parallelize freely. Results come back in input order,
   independent of [jobs]. Failures are isolated per app: one poisoned
   source yields a structured [Fault.t] in its own slot while the rest
   of the batch completes. *)
let analyze_all ?config ?jobs ?window ?sched (apps : app list) :
    (app * (Nadroid_core.Pipeline.t, Nadroid_core.Fault.t) result) list =
  (* the builtin framework program is a global lazy: force it before
     spawning so domains never race on the thunk *)
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let interner = Nadroid_core.Pipeline.create_interner () in
  let arr = Array.of_list apps in
  let out = Array.make (Array.length arr) None in
  Nadroid_core.Parallel.stream ?jobs ?window ?sched ~n:(Array.length arr)
    (fun i ->
      Nadroid_core.Pipeline.analyze ?config ~interner ~file:arr.(i).name arr.(i).source)
    (fun i r -> out.(i) <- Some r);
  List.mapi
    (fun i app ->
      match out.(i) with
      | Some r -> (app, Result.map_error Nadroid_core.Fault.of_exn r)
      | None -> assert false)
    apps

(* -- Table 2: artificial UAF injection ----------------------------------- *)

(* The nominal origin category each injected pattern is reported under. *)
let injected_category (p : Spec.pattern) : Nadroid_core.Classify.category =
  match p with
  | Spec.P_ec_ec_uaf | Spec.P_chb_error_path -> Nadroid_core.Classify.EC_EC
  | Spec.P_ec_pc_uaf | Spec.P_inj_unmodeled -> Nadroid_core.Classify.EC_PC
  | Spec.P_pc_pc_uaf -> Nadroid_core.Classify.PC_PC
  | Spec.P_c_rt_uaf -> Nadroid_core.Classify.C_RT
  | Spec.P_c_nt_uaf -> Nadroid_core.Classify.C_NT
  | Spec.P_guarded | Spec.P_guarded_locked | Spec.P_intra_alloc | Spec.P_mhb_service
  | Spec.P_mhb_lifecycle | Spec.P_mhb_async | Spec.P_rhb | Spec.P_chb | Spec.P_phb | Spec.P_ma
  | Spec.P_ur | Spec.P_tt | Spec.P_fp_path | Spec.P_fp_missing_hb | Spec.P_safe ->
      Nadroid_core.Classify.EC_EC

(* Injection mix per app, mirroring Table 2's 28 UAFs: EC-EC 4, EC-PC 11,
   PC-PC 5, C-RT 1, C-NT 7; 2 missed by detection (unanalysed
   framework-mediated path, in Mms), 3 pruned by the unsound CHB filter
   (1 in Puzzles, 2 in Browser). *)
let injections : (string * Spec.pattern list) list =
  [
    ("Tomdroid", [ Spec.P_ec_pc_uaf ]);
    ( "SGTPuzzles",
      [
        Spec.P_ec_pc_uaf;
        Spec.P_ec_pc_uaf;
        Spec.P_ec_pc_uaf;
        Spec.P_ec_pc_uaf;
        Spec.P_c_nt_uaf;
        Spec.P_c_nt_uaf;
        Spec.P_c_nt_uaf;
        Spec.P_c_nt_uaf;
        Spec.P_chb_error_path;
      ] );
    ("Aard", [ Spec.P_ec_ec_uaf ]);
    ( "Music",
      [ Spec.P_ec_pc_uaf; Spec.P_ec_pc_uaf; Spec.P_ec_pc_uaf; Spec.P_ec_pc_uaf; Spec.P_c_nt_uaf; Spec.P_c_nt_uaf ]
    );
    ( "Mms",
      [
        Spec.P_pc_pc_uaf;
        Spec.P_pc_pc_uaf;
        Spec.P_pc_pc_uaf;
        Spec.P_c_rt_uaf;
        Spec.P_inj_unmodeled;
        Spec.P_inj_unmodeled;
      ] );
    ("Browser", [ Spec.P_chb_error_path; Spec.P_chb_error_path; Spec.P_pc_pc_uaf ]);
    ("MyTracks_2", [ Spec.P_pc_pc_uaf ]);
    ("K9Mail", [ Spec.P_c_nt_uaf ]);
  ]

type injected_app = {
  inj_base : app;
  inj_source : string;  (** base source + injected activity *)
  inj_seeded : Spec.seeded list;  (** ground truth of the injected UAFs only *)
}

let inject (base : app) (patterns : Spec.pattern list) : injected_app =
  let spec =
    {
      Spec.app_name = base.name ^ "+inj";
      activities = [ { Spec.act_name = "InjectedActivity"; patterns } ];
      services = 0;
      padding = 0;
    }
  in
  let generated, seeded = Gen.generate spec in
  (* the generated chunk re-emits the Data helper; drop it when the base
     already contains one *)
  let generated =
    if
      Astring.String.is_infix ~affix:"class Data {" base.source
      (* corpus sources always come from Gen for test apps *)
    then
      match String.index_opt generated '\n' with
      | Some _ ->
          (* remove the first class block (Data) by finding its end *)
          let marker = "class InjectedActivity" in
          let idx =
            match Astring.String.find_sub ~sub:marker generated with
            | Some i -> i
            | None -> 0
          in
          String.sub generated idx (String.length generated - idx)
      | None -> generated
    else generated
  in
  { inj_base = base; inj_source = base.source ^ "\n" ^ generated; inj_seeded = seeded }

let injected : injected_app list Lazy.t =
  lazy
    (List.filter_map
       (fun (name, patterns) ->
         match find name with
         | Some base -> Some (inject base patterns)
         | None -> None)
       injections)
