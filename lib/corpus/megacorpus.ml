(* Seeded mega-corpus: cheap plan, lazy per-app materialization.

   Everything is derived from [Random.State.make] over an (tag, corpus
   seed, app index) triple, so any single app can be regenerated in
   isolation — the resume/journal path and the scheduler-equivalence
   tests both rely on [source] being a pure function of the descriptor,
   independent of which domain materializes it or in what order. *)

type kind = Normal of int | Adversarial of int

type app = { mc_index : int; mc_name : string; mc_app_seed : int; mc_kind : kind }

type spec = {
  mc_seed : int;
  mc_apps : int;
  mc_adversarial : float;
  mc_loc_scale : float;
}

let default = { mc_seed = 0; mc_apps = 5000; mc_adversarial = 0.02; mc_loc_scale = 1.0 }

(* The empirical Table 1 LOC distribution: the 27 corpus apps' own line
   counts. Forced once; ~ms. *)
let corpus_loc : int array Lazy.t =
  lazy
    (Array.of_list
       (List.map
          (fun (a : Corpus.app) -> Nadroid_core.Pipeline.count_loc a.Corpus.source)
          (Lazy.force Corpus.all)))

let plan (spec : spec) : app array =
  let loc = Lazy.force corpus_loc in
  Array.init spec.mc_apps (fun i ->
      let rs = Random.State.make [| 0x8eed; spec.mc_seed; i |] in
      let adversarial = Random.State.float rs 1.0 < spec.mc_adversarial in
      let kind =
        if adversarial then begin
          (* heavy tail: mostly small stragglers, occasionally a ~size³
             monster — u² keeps the mass near 8 *)
          let u = Random.State.float rs 1.0 in
          Adversarial (8 + int_of_float (22.0 *. u *. u))
        end
        else begin
          let base = loc.(Random.State.int rs (Array.length loc)) in
          let jitter = 0.8 +. Random.State.float rs 0.4 in
          Normal (max 30 (int_of_float (float_of_int base *. jitter *. spec.mc_loc_scale)))
        end
      in
      {
        mc_index = i;
        mc_name = Printf.sprintf "mc%d_%05d" spec.mc_seed i;
        mc_app_seed = spec.mc_seed lxor (0x5bd1e995 * (i + 1));
        mc_kind = kind;
      })

(* Pattern pool for normal apps: the benign corpus idioms plus a sprinkle
   of true-bug patterns so fleet reports are non-trivial. Weighted the
   way apps_test.ml is: guards and MHB idioms dominate. *)
let pattern_pool : Spec.pattern array =
  [|
    Spec.P_guarded; Spec.P_guarded; Spec.P_guarded; Spec.P_guarded;
    Spec.P_mhb_lifecycle; Spec.P_mhb_lifecycle; Spec.P_mhb_lifecycle;
    Spec.P_intra_alloc; Spec.P_intra_alloc;
    Spec.P_ma; Spec.P_ur; Spec.P_tt; Spec.P_phb;
    Spec.P_safe; Spec.P_safe;
    Spec.P_ec_pc_uaf; Spec.P_pc_pc_uaf; Spec.P_guarded_locked;
  |]

let normal_spec ~rs ~name ~padding target : Spec.t =
  let nact = 1 + min 2 (target / 700) in
  let npat = max 2 (target / 55) in
  let activities =
    List.init nact (fun a ->
        let mine = npat / nact + (if a < npat mod nact then 1 else 0) in
        {
          Spec.act_name = Printf.sprintf "Act%d" a;
          patterns =
            List.init mine (fun _ ->
                pattern_pool.(Random.State.int rs (Array.length pattern_pool)));
        })
  in
  { Spec.app_name = name; activities; services = Random.State.int rs 2; padding }

let source (app : app) : string =
  match app.mc_kind with
  | Adversarial size -> Synth.adversarial ~seed:app.mc_app_seed ~size
  | Normal target ->
      (* two-pass: render unpadded, measure, then pad to the target
         (each padding class is 11 LOC). The pattern draws must not
         depend on the measured base, so both passes re-derive the spec
         from a fresh state of the same seed. *)
      let draw () = Random.State.make [| 0x50ec; app.mc_app_seed |] in
      let bare = normal_spec ~rs:(draw ()) ~name:app.mc_name ~padding:0 target in
      let src0, _ = Gen.generate bare in
      let base = Nadroid_core.Pipeline.count_loc src0 in
      if base >= target then src0
      else begin
        let padding = (target - base + 5) / 11 in
        let padded = normal_spec ~rs:(draw ()) ~name:app.mc_name ~padding target in
        fst (Gen.generate padded)
      end
