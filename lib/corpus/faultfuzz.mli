(** Blast-radius fuzzing: prove injected faults stay contained.

    Seeded trials arm {!Nadroid_core.Faultinject} over the cache/journal
    seams (in-process trials, cold + warm pass) or the worker
    spawn/pipe seams (supervised trials) and run a corpus batch through
    the crash-survival stack. Every app must end either byte-identical
    to a clean baseline or as a structured fault attributable to the
    injection; anything else is a blast-radius escape. [nadroid
    faultfuzz] exits 4 on any escape — the CI gate. *)

type escape = {
  x_trial : int;
  x_mode : string;  (** ["inproc"] or ["supervised"] *)
  x_app : string;
  x_what : string;
}

type summary = {
  fz_trials : int;
  fz_fires : int;  (** injected faults that actually fired *)
  fz_faulted : int;  (** app entries that became structured faults *)
  fz_clean : int;  (** app entries byte-identical to the baseline *)
  fz_escapes : escape list;
}

val run : ?jobs:int -> ?apps:int -> seed:int -> trials:int -> unit -> summary
(** [run ~seed ~trials ()] fuzzes [trials] trials (alternating
    in-process and supervised) over the first [apps] corpus apps
    (default 8) with [jobs]-way parallelism (default 2). Deterministic
    for a given seed up to scheduling of the batch itself. *)

val pp_summary : Format.formatter -> summary -> unit
