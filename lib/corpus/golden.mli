(** Golden-report regression: committed canonical reports for the
    27-app corpus, a differ that fails on any warning-set drift, and a
    bless operation to regenerate them. Rendering is deterministic, so
    blessing twice produces byte-identical files. *)

val canonical : Corpus.app -> Nadroid_core.Pipeline.t -> string
(** Pipeline counts plus the rendered warning report under the default
    configuration. *)

val canonical_of_entry : Corpus.app -> Nadroid_core.Cache.entry -> string
(** Same canonical form, rebuilt from a cache entry — [canonical app t =
    canonical_of_entry app (Cache.entry_of_result t)], which is what
    makes warm golden passes byte-identical to cold ones. *)

val filename : Corpus.app -> string
(** ["<name>.expected"]. *)

type status =
  | G_ok
  | G_missing  (** no committed .expected file *)
  | G_drift of { line : int; expected : string; actual : string }
      (** first differing line (1-based; [""] = past end of file) *)

val check : dir:string -> ?jobs:int -> ?cache_dir:string -> unit -> (string * status) list
(** Re-analyze the corpus and compare each canonical report against
    [dir/<name>.expected]; results in corpus order. A corpus app that
    fails to analyze raises its fault — that too is a regression. With
    [cache_dir] the analyses go through {!Nadroid_core.Cache} (the CI
    cold-then-warm drift gate). *)

val ok : (string * status) list -> bool

val bless : dir:string -> ?jobs:int -> unit -> int
(** Write every canonical report into [dir]; returns the file count. *)

val pp_status : (string * status) Fmt.t
