(** Grammar-aware random MiniAndroid app generator for the differential
    soundness harness ({!Differential}).

    An app is a pure function of its seed: random activities whose
    lifecycle bodies, click listeners, Handler posts, native threads,
    AsyncTasks and service connections null and dereference a shared
    per-activity field pool, plus an optional multiset of {!Spec}
    patterns (rendered through {!Gen}) carrying {!Spec.seeded} ground
    truth. Generation is constrained so that every app is well-typed by
    construction {e and} every dynamically reachable NPE is statically
    reported under a correct sound-filters-only pipeline — so the
    dynamic oracle never produces false counterexamples (see the
    implementation comment for the exact invariants). *)

type op =
  | Alloc  (** [f = new Data();] *)
  | Alloc_use  (** [f = new Data(); f.use();] — IA-shaped *)
  | Use  (** [f.use();] *)
  | Guarded_use  (** [if (f != null) { f.use(); }] — IG-shaped *)
  | Null  (** [f = null;] — a free site *)

type stmt = { st_field : int; st_op : op }

type frag =
  | F_lifecycle of string * stmt list
  | F_click of stmt list
  | F_post of string * stmt list
  | F_thread of string * stmt list
  | F_async of stmt list * stmt list * stmt list
  | F_conn of stmt list * stmt list

type sact = { sa_name : string; sa_pool : int; sa_frags : frag list }

type t = { sy_seed : int; sy_acts : sact list; sy_patterns : Spec.pattern list }

val name : t -> string
(** ["synth<seed>"]. *)

val embeddable : Spec.pattern list
(** The {!Spec} patterns an app may embed: those whose dynamic behaviour
    is consistent with the sound-filter contract in the simulator. *)

val generate : seed:int -> t
(** Deterministic per seed. *)

val render : t -> string * Spec.seeded list
(** Compilable MiniAndroid source plus the embedded patterns' ground
    truth. Pure: shrunk structures re-render reproducibly. *)

val adversarial : seed:int -> size:int -> string
(** A worst-case app for the deadline machinery: [size] fields freed in
    [onPause], [size] click listeners each using every field, and a
    [10*size]-statement [onResume] that RHB re-analyzes per warning —
    the filter phase costs ~[size^3] while modeling and detection stay
    near-linear, so a small [--deadline] lands mid-filters and must be
    honoured in-flight. The seed permutes statement order only; the cost
    structure is seed-independent. Deterministic per (seed, size). *)

val shrink_steps : t -> t list
(** All one-step-smaller variants (drop a pattern, an activity, a
    fragment, or a single statement), coarsest first, in a fixed order —
    the greedy shrinker's candidate list. *)

val size : t -> int
(** Structural size (components + fragments + statements); strictly
    decreases along {!shrink_steps}. *)
