(** Chaos-fuzz harness: deterministic seeded mutation of corpus sources,
    asserting the runtime's failure model — every mutant analyzes
    cleanly or yields a structured [Frontend]/[Budget] fault, never an
    [Internal] fault or escaped exception, never past its deadline. *)

val mutate : Random.State.t -> string -> string * string
(** One random mutation; returns the mutant and a short description of
    the operation applied. Byte-level operations (truncation, token
    deletion/duplication, identifier scrambling, brace/paren flip)
    mostly stress the parser; grammar-aware operations (swapping two
    disjoint statements, renaming one identifier consistently at word
    boundaries, dropping a whole method or class) usually keep the
    mutant parseable and so exercise the phases behind the frontend. *)

type failure = {
  f_app : string;
  f_index : int;  (** mutant index: regenerate with the same seed *)
  f_op : string;
  f_what : string;  (** fault detail or overrun report *)
}

type summary = {
  s_mutants : int;
  s_clean : int;
  s_frontend : int;
  s_budget : int;
  s_uncaught : failure list;  (** internal faults / escaped exceptions *)
  s_overruns : failure list;  (** mutants that ran past the deadline *)
  s_elapsed : float;
}

val failed : summary -> bool

val parse_clean_pct : summary -> float
(** Percentage of mutants that made it past the frontend — the share of
    the fuzz budget actually exercising threadification, detection and
    filtering rather than the parser. *)

val default_pta_steps : int
(** PTA step ceiling used by the default fuzz config — far above the
    largest full-corpus fixpoint, so only pathological mutants hit it. *)

val fuzz_config : deadline:float -> Nadroid_core.Pipeline.config
(** Default analysis config for fuzzing: k = 2 with a PTA step budget
    and a wall-clock filter deadline. *)

val run :
  ?jobs:int ->
  ?config:Nadroid_core.Pipeline.config ->
  ?deadline:float ->
  seed:int ->
  mutants:int ->
  Corpus.app list ->
  summary
(** Generate [mutants] mutants (apps assigned round-robin, one rng per
    mutant seeded from [seed] and the mutant index) and analyze each
    under the budgeted config, classifying the results. Deterministic in
    everything but [s_elapsed] and overrun timings. *)

val pp_failure : failure Fmt.t
val pp_summary : summary Fmt.t
