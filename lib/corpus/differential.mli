(** Differential soundness harness: cross-check the static pipeline's
    sound-filters-only configuration against the schedule explorer as a
    dynamic oracle, over {!Synth}-generated apps.

    The §6.1 contract says the detector plus sound filters may only
    over-report. The harness falsifies it two ways: a dynamically
    witnessed NPE whose use site matches no surviving sound-config
    warning, or an embedded {!Spec.seeded} ground-truth pattern that
    should survive the sound filters but carries no warning. Either is a
    counterexample; counterexamples are shrunk greedily and carry their
    replayable app seed. The same dynamic witnesses also score each
    unsound filter's kills (a killed warning that is a seeded true bug
    or was witnessed dynamically is a bad kill), measuring
    RHB/CHB/PHB/MA/UR/TT precision. *)

type oracle = {
  dr_runs : int;  (** uniform random walks per app *)
  dr_guided : int;  (** guided walks per surviving warning *)
  dr_steps : int;  (** max schedule steps per walk *)
}

val default_oracle : oracle

(** Deliberate filter sabotage, for validating that the harness has
    teeth: [W_invert_ig] replaces IG by its guard-inverted negation (a
    pair survives only if real IG would have pruned it), which must be
    caught as a counterexample. *)
type weaken = W_none | W_invert_ig

val weaken_of_string : string -> weaken option
(** ["none"] / ["invert-ig"]. *)

type discrepancy =
  | D_missed_npe of { mn_site : string; mn_loc : string }
  | D_dropped_seed of { ds_pattern : string; ds_field : string }

val pp_discrepancy : discrepancy Fmt.t

type filter_stat = { fs_kills : int; fs_bad : int }

type verdict = {
  vd_seed : int;
  vd_warnings : int;  (** surviving sound-config warnings *)
  vd_npes : int;  (** distinct dynamically witnessed NPE sites *)
  vd_discrepancies : discrepancy list;
  vd_filter : (Nadroid_core.Filters.name * filter_stat) list;
}

type counterexample = {
  cx_seed : int;
  cx_verdict : verdict;  (** verdict on the unshrunk app *)
  cx_shrunk : Synth.t;
  cx_shrunk_src : string;
}

val examine : ?oracle:oracle -> ?weaken:weaken -> Synth.t -> verdict
(** Static sound-config run + dynamic oracle for one app. Deterministic. *)

val shrink : ?oracle:oracle -> ?weaken:weaken -> Synth.t -> Synth.t
(** Greedy deterministic shrink: repeatedly take the first
    {!Synth.shrink_steps} candidate that still exhibits a discrepancy.
    Returns the input when it exhibits none. *)

val check : ?oracle:oracle -> ?weaken:weaken -> Synth.t -> verdict * counterexample option
(** {!examine}, shrinking into a counterexample when discrepancies are
    found. *)

type summary = {
  su_seed : int;
  su_apps : int;
  su_warnings : int;
  su_npes : int;
  su_counterexamples : counterexample list;
  su_filter : (Nadroid_core.Filters.name * filter_stat) list;
  su_faults : (int * Nadroid_core.Fault.t) list;
  su_elapsed : float;
}

val failed : summary -> bool

val run :
  ?jobs:int -> ?oracle:oracle -> ?weaken:weaken -> seed:int -> apps:int -> unit -> summary
(** Check [apps] generated apps (app [i] uses seed [seed + i], so any
    failure replays alone with [--seed (seed+i) --apps 1]) on a
    crash-isolated domain pool ([Parallel.map_result]). Deterministic in
    everything but [su_elapsed]. *)

val pp_counterexample : counterexample Fmt.t
val pp_summary : summary Fmt.t
