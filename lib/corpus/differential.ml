(* Differential soundness harness.

   For each {!Synth}-generated app the harness cross-checks the static
   pipeline, run in its sound-filters-only configuration, against the
   schedule explorer as a dynamic oracle:

   - any NPE witnessed by the explorer whose use site matches no
     surviving sound-config warning ([Explorer.npe_matches]) is a
     soundness counterexample — the §6.1 contract says sound filters
     may only over-report;
   - any embedded ground-truth pattern ({!Spec.seeded}) expected to
     survive the sound filters (a true bug, a surviving false positive,
     or an idiom only an *unsound* filter should prune) whose field
     carries no sound-config warning is likewise a counterexample;
   - each unsound filter's kills on the sound survivors are scored
     against ground truth and the dynamic witnesses: a killed warning
     that is a seeded true bug or was witnessed as an NPE is a bad kill,
     giving a measured precision for RHB/CHB/PHB/MA/UR/TT instead of
     the paper's anecdotal table.

   Counterexamples are shrunk by greedy structure deletion (first
   {!Synth.shrink_steps} candidate that still exhibits a discrepancy,
   to a fixpoint — deterministic), and every verdict carries the app
   seed, so a failure replays with [nadroid difftest --seed S --apps 1].

   The fan-out over app seeds reuses [Parallel.map_result], so a crash
   while checking one app costs that app's slot, not the batch. *)

module Pipeline = Nadroid_core.Pipeline
module Filters = Nadroid_core.Filters
module Detect = Nadroid_core.Detect
module Fault = Nadroid_core.Fault
module Explorer = Nadroid_dynamic.Explorer
module Interp = Nadroid_dynamic.Interp
module Clock = Nadroid_clock.Clock

type oracle = {
  dr_runs : int;  (** uniform random walks per app *)
  dr_guided : int;  (** guided walks per surviving warning *)
  dr_steps : int;  (** max schedule steps per walk *)
}

let default_oracle = { dr_runs = 24; dr_guided = 4; dr_steps = 48 }

type weaken = W_none | W_invert_ig

let weaken_of_string = function
  | "none" -> Some W_none
  | "invert-ig" -> Some W_invert_ig
  | _ -> None

type discrepancy =
  | D_missed_npe of { mn_site : string; mn_loc : string }
      (** dynamically witnessed NPE with no matching sound warning *)
  | D_dropped_seed of { ds_pattern : string; ds_field : string }
      (** seeded ground truth pruned by a sound filter *)

let pp_discrepancy ppf = function
  | D_missed_npe { mn_site; mn_loc } ->
      Fmt.pf ppf "NPE at %s (%s) matches no sound-config warning" mn_site mn_loc
  | D_dropped_seed { ds_pattern; ds_field } ->
      Fmt.pf ppf "seeded %s on field %s was pruned by a sound filter" ds_pattern ds_field

type filter_stat = { fs_kills : int; fs_bad : int }

type verdict = {
  vd_seed : int;
  vd_warnings : int;  (** surviving sound-config warnings *)
  vd_npes : int;  (** distinct dynamically witnessed NPE sites *)
  vd_discrepancies : discrepancy list;
  vd_filter : (Filters.name * filter_stat) list;
}

type counterexample = {
  cx_seed : int;
  cx_verdict : verdict;  (** verdict on the unshrunk app *)
  cx_shrunk : Synth.t;
  cx_shrunk_src : string;
}

(* -- one app -------------------------------------------------------------- *)

(* The sound warning set the oracle is checked against. [W_invert_ig]
   models the acceptance-criteria sabotage — IG with its guard check
   inverted: a pair survives only if real IG would have pruned it, so
   unguarded true bugs are dropped and the harness must catch them. *)
let sound_warnings ~weaken (t : Pipeline.t) : Detect.warning list =
  match weaken with
  | W_none -> t.Pipeline.after_sound
  | W_invert_ig ->
      List.filter_map
        (fun (w : Detect.warning) ->
          let pairs =
            List.filter
              (fun p ->
                (not (Filters.prunes t.Pipeline.ctx Filters.MHB w p))
                && (not (Filters.prunes t.Pipeline.ctx Filters.IA w p))
                && Filters.prunes t.Pipeline.ctx Filters.IG w p)
              w.Detect.w_pairs
          in
          if pairs = [] then None else Some { w with Detect.w_pairs = pairs })
        t.Pipeline.potential

(* Distinct NPE sites over the whole walk budget, sorted for
   determinism (collection order depends on hashing). *)
let witness prog (warnings : Detect.warning list) ~oracle : Interp.npe list =
  let seen : (string * int, Interp.npe) Hashtbl.t = Hashtbl.create 16 in
  let note (n : Interp.npe) =
    let key = (Fmt.str "%a" Nadroid_ir.Instr.pp_mref n.Interp.npe_mref, n.Interp.npe_instr_id) in
    if not (Hashtbl.mem seen key) then Hashtbl.add seen key n
  in
  let collect (o : Explorer.outcome) = List.iter note o.Explorer.o_npes in
  for seed = 0 to oracle.dr_runs - 1 do
    collect (Explorer.random_run ~resume_on_npe:true prog ~seed ~max_steps:oracle.dr_steps)
  done;
  List.iter
    (fun w ->
      for seed = 0 to oracle.dr_guided - 1 do
        collect (Explorer.guided_run prog w ~seed ~max_steps:oracle.dr_steps)
      done)
    warnings;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) seen []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let field_warned (warnings : Detect.warning list) (sd : Spec.seeded) =
  List.exists
    (fun (w : Detect.warning) ->
      String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_name sd.Spec.sd_field
      && String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_class sd.Spec.sd_activity)
    warnings

(* Must this seeded pattern's field still be warned when only the sound
   filters ran? *)
let survives_sound (sd : Spec.seeded) =
  match sd.Spec.sd_expect with
  | Spec.E_true_bug _ | Spec.E_false_positive _ -> true
  | Spec.E_filtered f -> List.mem f Filters.unsound
  | Spec.E_none -> false

let filter_stats (t : Pipeline.t) ~(npes : Interp.npe list) ~(seeded : Spec.seeded list) :
    (Filters.name * filter_stat) list =
  let prog = t.Pipeline.prog in
  let sound = t.Pipeline.after_sound in
  let true_bug (w : Detect.warning) =
    List.exists
      (fun (sd : Spec.seeded) ->
        (match sd.Spec.sd_expect with Spec.E_true_bug _ -> true | _ -> false)
        && String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_name sd.Spec.sd_field
        && String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_class sd.Spec.sd_activity)
      seeded
  in
  List.map
    (fun f ->
      let kept = List.map Detect.warning_key (Filters.apply t.Pipeline.ctx [ f ] sound) in
      let killed = List.filter (fun w -> not (List.mem (Detect.warning_key w) kept)) sound in
      let bad w =
        true_bug w || List.exists (fun n -> Explorer.npe_matches prog w n) npes
      in
      ( f,
        {
          fs_kills = List.length killed;
          fs_bad = List.length (List.filter bad killed);
        } ))
    Filters.unsound

let examine ?(oracle = default_oracle) ?(weaken = W_none) (sy : Synth.t) : verdict =
  let src, seeded = Synth.render sy in
  let t = Pipeline.analyze ~config:Pipeline.sound_only_config ~file:(Synth.name sy) src in
  let prog = t.Pipeline.prog in
  let sound = sound_warnings ~weaken t in
  let npes = witness prog sound ~oracle in
  let missed =
    List.filter_map
      (fun (n : Interp.npe) ->
        if List.exists (fun w -> Explorer.npe_matches prog w n) sound then None
        else
          Some
            (D_missed_npe
               {
                 mn_site = Fmt.str "%a" Nadroid_ir.Instr.pp_mref n.Interp.npe_mref;
                 mn_loc = Fmt.str "%a" Nadroid_lang.Loc.pp n.Interp.npe_loc;
               }))
      npes
  in
  let dropped =
    List.filter_map
      (fun (sd : Spec.seeded) ->
        if survives_sound sd && not (field_warned sound sd) then
          Some
            (D_dropped_seed
               {
                 ds_pattern = Spec.pattern_to_string sd.Spec.sd_pattern;
                 ds_field = sd.Spec.sd_field;
               })
        else None)
      seeded
  in
  {
    vd_seed = sy.Synth.sy_seed;
    vd_warnings = List.length sound;
    vd_npes = List.length npes;
    vd_discrepancies = missed @ dropped;
    vd_filter = filter_stats t ~npes ~seeded;
  }

(* Greedy deterministic shrink: take the first one-step deletion that
   still exhibits a discrepancy, repeat to a fixpoint. *)
let shrink ?oracle ?weaken (sy : Synth.t) : Synth.t =
  let bad s = (examine ?oracle ?weaken s).vd_discrepancies <> [] in
  let rec go s =
    match List.find_opt bad (Synth.shrink_steps s) with Some s' -> go s' | None -> s
  in
  go sy

let check ?oracle ?weaken (sy : Synth.t) : verdict * counterexample option =
  let v = examine ?oracle ?weaken sy in
  if v.vd_discrepancies = [] then (v, None)
  else
    let shrunk = shrink ?oracle ?weaken sy in
    let src, _ = Synth.render shrunk in
    ( v,
      Some { cx_seed = sy.Synth.sy_seed; cx_verdict = v; cx_shrunk = shrunk; cx_shrunk_src = src }
    )

(* -- batch ---------------------------------------------------------------- *)

type summary = {
  su_seed : int;
  su_apps : int;
  su_warnings : int;
  su_npes : int;  (** distinct witnessed NPE sites, summed over apps *)
  su_counterexamples : counterexample list;
  su_filter : (Filters.name * filter_stat) list;
  su_faults : (int * Fault.t) list;  (** (app seed, fault) crash-isolated slots *)
  su_elapsed : float;
}

let failed s = s.su_counterexamples <> [] || s.su_faults <> []

(* App [i] of a batch uses seed [seed + i], so any app replays alone
   with [--seed (seed + i) --apps 1]. *)
let run ?jobs ?(oracle = default_oracle) ?(weaken = W_none) ~seed ~apps () : summary =
  if apps <= 0 then invalid_arg "Differential.run: apps must be positive";
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let t0 = Clock.now () in
  let one i = check ~oracle ~weaken (Synth.generate ~seed:(seed + i)) in
  let results = Nadroid_core.Parallel.map_result ?jobs one (List.init apps Fun.id) in
  let zero = { fs_kills = 0; fs_bad = 0 } in
  let base =
    {
      su_seed = seed;
      su_apps = apps;
      su_warnings = 0;
      su_npes = 0;
      su_counterexamples = [];
      su_filter = List.map (fun f -> (f, zero)) Filters.unsound;
      su_faults = [];
      su_elapsed = 0.0;
    }
  in
  let s =
    List.fold_left
      (fun (i, s) r ->
        let s =
          match r with
          | Ok (v, cx) ->
              {
                s with
                su_warnings = s.su_warnings + v.vd_warnings;
                su_npes = s.su_npes + v.vd_npes;
                su_counterexamples =
                  (match cx with Some c -> c :: s.su_counterexamples | None -> s.su_counterexamples);
                su_filter =
                  List.map
                    (fun (f, st) ->
                      let a = List.assoc f v.vd_filter in
                      (f, { fs_kills = st.fs_kills + a.fs_kills; fs_bad = st.fs_bad + a.fs_bad }))
                    s.su_filter;
              }
          | Error e -> { s with su_faults = (seed + i, Fault.of_exn e) :: s.su_faults }
        in
        (i + 1, s))
      (0, base) results
    |> snd
  in
  {
    s with
    su_counterexamples = List.rev s.su_counterexamples;
    su_faults = List.rev s.su_faults;
    su_elapsed = Clock.now () -. t0;
  }

(* -- reporting ------------------------------------------------------------ *)

let pp_counterexample ppf cx =
  Fmt.pf ppf "app seed %d (%d discrepanc%s; replay: nadroid difftest --seed %d --apps 1)@\n"
    cx.cx_seed
    (List.length cx.cx_verdict.vd_discrepancies)
    (if List.length cx.cx_verdict.vd_discrepancies = 1 then "y" else "ies")
    cx.cx_seed;
  List.iter
    (fun d -> Fmt.pf ppf "  %a@\n" pp_discrepancy d)
    cx.cx_verdict.vd_discrepancies;
  Fmt.pf ppf "  shrunk to size %d:@\n" (Synth.size cx.cx_shrunk);
  List.iter
    (fun l -> Fmt.pf ppf "  | %s@\n" l)
    (String.split_on_char '\n' (String.trim cx.cx_shrunk_src))

let pp_summary ppf s =
  Fmt.pf ppf
    "difftest: %d app(s) from seed %d in %.1fs: %d sound warning(s), %d distinct NPE site(s) \
     witnessed@\n"
    s.su_apps s.su_seed s.su_elapsed s.su_warnings s.su_npes;
  Fmt.pf ppf "unsound-filter precision against ground truth + dynamic witnesses:@\n";
  List.iter
    (fun (f, st) ->
      let precision =
        if st.fs_kills = 0 then 100.0
        else 100.0 *. float_of_int (st.fs_kills - st.fs_bad) /. float_of_int st.fs_kills
      in
      Fmt.pf ppf "  %-4s kills %4d  bad %3d  precision %5.1f%%@\n"
        (Filters.name_to_string f) st.fs_kills st.fs_bad precision)
    s.su_filter;
  List.iter (fun cx -> Fmt.pf ppf "COUNTEREXAMPLE %a" pp_counterexample cx) s.su_counterexamples;
  List.iter
    (fun (seed, f) -> Fmt.pf ppf "FAULT app seed %d: %s@\n" seed (Fault.to_string f))
    s.su_faults;
  if failed s then
    Fmt.pf ppf "FAILED: %d counterexample(s), %d fault(s)@\n"
      (List.length s.su_counterexamples) (List.length s.su_faults)
  else Fmt.pf ppf "OK: no soundness counterexamples@\n"
