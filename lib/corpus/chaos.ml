(* Chaos-fuzz harness: deterministic seeded source mutation over the
   corpus, asserting the analysis runtime's failure model.

   Every mutant of a corpus source must either analyze cleanly or yield
   a structured fault of an *expected* class — a [Frontend] diagnostic
   (the mutant is malformed) or a [Budget] exhaustion (the mutant is
   pathological). An [Internal] fault or a bare exception is a bug in
   nAdroid; a run past its per-mutant deadline is a liveness bug. The
   harness counts both as failures.

   Determinism: mutant [i] is produced from [Random.State.make [| seed;
   i |]], so a failing mutant can be regenerated from its index alone,
   independent of [--jobs] and of every other mutant. *)

module Fault = Nadroid_core.Fault
module Pipeline = Nadroid_core.Pipeline

(* -- seeded source mutation ---------------------------------------------- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || Char.equal c '_'

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

(* Crude token spans: identifier/number runs and single punctuation
   bytes. Good enough to aim mutations at syntactic units. *)
let tokens (src : string) : (int * int) list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident_char src.[!i] then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      toks := (!i, !j - !i) :: !toks;
      i := !j
    end
    else begin
      (match src.[!i] with ' ' | '\n' | '\t' | '\r' -> () | _ -> toks := (!i, 1) :: !toks);
      incr i
    end
  done;
  List.rev !toks

let splice src ~start ~len replacement =
  String.sub src 0 start ^ replacement
  ^ String.sub src (start + len) (String.length src - start - len)

let pick rng xs =
  match xs with [] -> None | _ :: _ -> Some (List.nth xs (Random.State.int rng (List.length xs)))

let shuffle_string rng s =
  let b = Bytes.of_string s in
  for i = Bytes.length b - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = Bytes.get b i in
    Bytes.set b i (Bytes.get b j);
    Bytes.set b j t
  done;
  Bytes.to_string b

(* Mutate a source; returns the mutant and a replayable description of
   the operation. Falls back to truncation when the chosen operation has
   no eligible target. *)
let mutate (rng : Random.State.t) (src : string) : string * string =
  let truncate () =
    let pos = Random.State.int rng (String.length src + 1) in
    (String.sub src 0 pos, Printf.sprintf "truncate@%d" pos)
  in
  if String.length src = 0 then (src, "empty")
  else
    match Random.State.int rng 5 with
    | 0 -> truncate ()
    | 1 -> (
        (* delete a token *)
        match pick rng (tokens src) with
        | Some (start, len) -> (splice src ~start ~len "", Printf.sprintf "del@%d+%d" start len)
        | None -> truncate ())
    | 2 -> (
        (* duplicate a token in place *)
        match pick rng (tokens src) with
        | Some (start, len) ->
            let tok = String.sub src start len in
            ( splice src ~start ~len (tok ^ " " ^ tok),
              Printf.sprintf "dup@%d+%d" start len )
        | None -> truncate ())
    | 3 -> (
        (* scramble one identifier occurrence *)
        let idents =
          List.filter (fun (s, l) -> l >= 2 && is_letter src.[s]) (tokens src)
        in
        match pick rng idents with
        | Some (start, len) ->
            (splice src ~start ~len (shuffle_string rng (String.sub src start len)),
             Printf.sprintf "scramble@%d+%d" start len)
        | None -> truncate ())
    | _ -> (
        (* flip a brace/paren to a random other delimiter *)
        let delims =
          List.filter
            (fun (s, _) -> match src.[s] with '{' | '}' | '(' | ')' -> true | _ -> false)
            (tokens src)
        in
        match pick rng delims with
        | Some (start, _) ->
            let repl =
              match Random.State.int rng 4 with 0 -> "{" | 1 -> "}" | 2 -> "(" | _ -> ")"
            in
            (splice src ~start ~len:1 repl, Printf.sprintf "flip@%d:%s" start repl)
        | None -> truncate ())

(* -- harness -------------------------------------------------------------- *)

type failure = {
  f_app : string;
  f_index : int;  (** mutant index: regenerate with the same seed *)
  f_op : string;
  f_what : string;  (** fault detail or overrun report *)
}

type summary = {
  s_mutants : int;
  s_clean : int;
  s_frontend : int;
  s_budget : int;
  s_uncaught : failure list;  (** internal faults / escaped exceptions *)
  s_overruns : failure list;  (** mutants that ran past the deadline *)
  s_elapsed : float;
}

let failed s = s.s_uncaught <> [] || s.s_overruns <> []

(* Default per-phase budgets for fuzzing. The PTA step ceiling is ~40x
   the largest full-corpus fixpoint (k=2), so real apps never degrade
   while a mutant whose points-to blows up is cut off deterministically;
   the wall-clock deadline backstops the remaining phases. *)
let default_pta_steps = 2_000_000

let fuzz_config ~deadline : Pipeline.config =
  {
    Pipeline.default_config with
    Pipeline.budgets =
      {
        Pipeline.pta_steps = Some default_pta_steps;
        deadline = Some deadline;
        explorer_schedules = None;
      };
  }

let run ?jobs ?config ?(deadline = 10.0) ~seed ~mutants (apps : Corpus.app list) : summary =
  if apps = [] then invalid_arg "Chaos.run: empty app list";
  let config = match config with Some c -> c | None -> fuzz_config ~deadline in
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let t0 = Unix.gettimeofday () in
  let napps = List.length apps in
  let one i =
    let app = List.nth apps (i mod napps) in
    let rng = Random.State.make [| seed; i |] in
    let mutant, op = mutate rng app.Corpus.source in
    let m0 = Unix.gettimeofday () in
    let r =
      Fault.wrap (fun () ->
          Nadroid_core.Pipeline.analyze ~config
            ~file:(Printf.sprintf "%s#%d" app.Corpus.name i)
            mutant)
    in
    let elapsed = Unix.gettimeofday () -. m0 in
    (app.Corpus.name, i, op, r, elapsed)
  in
  let results =
    List.map
      (function Ok r -> r | Error e -> raise e)
      (Nadroid_core.Parallel.map_result ?jobs one (List.init mutants Fun.id))
  in
  let summary =
    List.fold_left
      (fun s (name, i, op, r, elapsed) ->
        let s =
          if elapsed > deadline then
            {
              s with
              s_overruns =
                {
                  f_app = name;
                  f_index = i;
                  f_op = op;
                  f_what = Printf.sprintf "ran %.2fs against a %.2fs deadline" elapsed deadline;
                }
                :: s.s_overruns;
            }
          else s
        in
        match r with
        | Ok (_ : Pipeline.t) -> { s with s_clean = s.s_clean + 1 }
        | Error (Fault.Frontend _) -> { s with s_frontend = s.s_frontend + 1 }
        | Error (Fault.Budget _) -> { s with s_budget = s.s_budget + 1 }
        | Error (Fault.Internal _ as f) ->
            {
              s with
              s_uncaught =
                { f_app = name; f_index = i; f_op = op; f_what = Fault.to_string f }
                :: s.s_uncaught;
            })
      {
        s_mutants = mutants;
        s_clean = 0;
        s_frontend = 0;
        s_budget = 0;
        s_uncaught = [];
        s_overruns = [];
        s_elapsed = 0.0;
      }
      results
  in
  {
    summary with
    s_elapsed = Unix.gettimeofday () -. t0;
    s_uncaught = List.rev summary.s_uncaught;
    s_overruns = List.rev summary.s_overruns;
  }

let pp_failure ppf f =
  Fmt.pf ppf "mutant #%d of %s (%s): %s" f.f_index f.f_app f.f_op f.f_what

let pp_summary ppf s =
  Fmt.pf ppf "fuzzed %d mutant(s) in %.1fs: %d clean, %d frontend diagnostic(s), %d budget@\n"
    s.s_mutants s.s_elapsed s.s_clean s.s_frontend s.s_budget;
  List.iter (fun f -> Fmt.pf ppf "UNCAUGHT  %a@\n" pp_failure f) s.s_uncaught;
  List.iter (fun f -> Fmt.pf ppf "OVERRUN   %a@\n" pp_failure f) s.s_overruns;
  if failed s then
    Fmt.pf ppf "FAILED: %d uncaught, %d overrun@\n" (List.length s.s_uncaught)
      (List.length s.s_overruns)
  else Fmt.pf ppf "OK: no uncaught exceptions, no deadline overruns@\n"
