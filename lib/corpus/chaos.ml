(* Chaos-fuzz harness: deterministic seeded source mutation over the
   corpus, asserting the analysis runtime's failure model.

   Every mutant of a corpus source must either analyze cleanly or yield
   a structured fault of an *expected* class — a [Frontend] diagnostic
   (the mutant is malformed) or a [Budget] exhaustion (the mutant is
   pathological). An [Internal] fault or a bare exception is a bug in
   nAdroid; a run past its per-mutant deadline is a liveness bug. The
   harness counts both as failures.

   Determinism: mutant [i] is produced from [Random.State.make [| seed;
   i |]], so a failing mutant can be regenerated from its index alone,
   independent of [--jobs] and of every other mutant. *)

module Fault = Nadroid_core.Fault
module Pipeline = Nadroid_core.Pipeline
module Clock = Nadroid_clock.Clock

(* -- seeded source mutation ---------------------------------------------- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || Char.equal c '_'

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

(* Crude token spans: identifier/number runs and single punctuation
   bytes. Good enough to aim mutations at syntactic units. *)
let tokens (src : string) : (int * int) list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident_char src.[!i] then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      toks := (!i, !j - !i) :: !toks;
      i := !j
    end
    else begin
      (match src.[!i] with ' ' | '\n' | '\t' | '\r' -> () | _ -> toks := (!i, 1) :: !toks);
      incr i
    end
  done;
  List.rev !toks

let splice src ~start ~len replacement =
  String.sub src 0 start ^ replacement
  ^ String.sub src (start + len) (String.length src - start - len)

let pick rng xs =
  match xs with [] -> None | _ :: _ -> Some (List.nth xs (Random.State.int rng (List.length xs)))

let shuffle_string rng s =
  let b = Bytes.of_string s in
  for i = Bytes.length b - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = Bytes.get b i in
    Bytes.set b i (Bytes.get b j);
    Bytes.set b j t
  done;
  Bytes.to_string b

(* -- grammar-aware spans --------------------------------------------------- *)

(* Spans of complete simple statements ([...;] at a fixed brace depth),
   tracked per depth so statements nested inside anonymous-class bodies
   are found alongside the enclosing expression statement. String
   literals are skipped so braces and semicolons inside them don't
   confuse the depth counter. *)
let max_depth = 64

let statement_spans (src : string) : (int * int) list =
  let n = String.length src in
  let spans = ref [] in
  let depth = ref 0 in
  let in_str = ref false in
  let starts = Array.make max_depth (-1) in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    (if !in_str then begin
       if Char.equal c '\\' then incr i else if Char.equal c '"' then in_str := false
     end
     else
       match c with
       | '"' ->
           in_str := true;
           if !depth < max_depth && starts.(!depth) < 0 then starts.(!depth) <- !i
       | '{' ->
           incr depth;
           if !depth < max_depth then starts.(!depth) <- -1
       | '}' ->
           (* whatever was pending at this depth was a block header, not
              a simple statement *)
           if !depth >= 0 && !depth < max_depth then starts.(!depth) <- -1;
           decr depth
       | ';' ->
           if !depth >= 0 && !depth < max_depth && starts.(!depth) >= 0 then begin
             spans := (starts.(!depth), !i - starts.(!depth) + 1) :: !spans;
             starts.(!depth) <- -1
           end
       | ' ' | '\n' | '\t' | '\r' -> ()
       | _ -> if !depth >= 0 && !depth < max_depth && starts.(!depth) < 0 then starts.(!depth) <- !i);
    incr i
  done;
  List.rev !spans

(* Span from keyword [kw] at [start] through the matching close brace of
   the first block it opens; [None] when the braces never balance. *)
let block_span (src : string) ~start : (int * int) option =
  let n = String.length src in
  let i = ref start and depth = ref 0 and opened = ref false and stop = ref (-1) in
  let in_str = ref false in
  while !stop < 0 && !i < n do
    let c = src.[!i] in
    (if !in_str then begin
       if Char.equal c '\\' then incr i else if Char.equal c '"' then in_str := false
     end
     else
       match c with
       | '"' -> in_str := true
       | '{' ->
           opened := true;
           incr depth
       | '}' ->
           decr depth;
           if !opened && !depth = 0 then stop := !i
       | _ -> ());
    incr i
  done;
  if !stop < 0 then None else Some (start, !stop - start + 1)

let keywords =
  [
    "class"; "extends"; "field"; "method"; "new"; "null"; "if"; "else"; "while"; "return";
    "void"; "int"; "this"; "true"; "false"; "synchronized";
  ]

(* Word-boundary replacement of every occurrence of [name]. *)
let rename_all (src : string) ~name ~repl : string =
  let n = String.length src and ln = String.length name in
  let buf = Buffer.create (n + 16) in
  let i = ref 0 in
  while !i < n do
    let bounded =
      !i + ln <= n
      && String.equal (String.sub src !i ln) name
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
      && (!i + ln = n || not (is_ident_char src.[!i + ln]))
    in
    if bounded then begin
      Buffer.add_string buf repl;
      i := !i + ln
    end
    else begin
      Buffer.add_char buf src.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Mutate a source; returns the mutant and a replayable description of
   the operation. The first five operations are byte-level (most mutants
   land as frontend diagnostics); the last four are grammar-aware —
   they move or remove whole syntactic units, so the mutant usually
   still parses and exercises the phases *behind* the parser. Falls back
   to truncation when the chosen operation has no eligible target. *)
let mutate (rng : Random.State.t) (src : string) : string * string =
  let truncate () =
    let pos = Random.State.int rng (String.length src + 1) in
    (String.sub src 0 pos, Printf.sprintf "truncate@%d" pos)
  in
  let keyword_spans kw =
    List.filter
      (fun (s, l) -> l = String.length kw && String.equal (String.sub src s l) kw)
      (tokens src)
  in
  if String.length src = 0 then (src, "empty")
  else
    match Random.State.int rng 10 with
    | 0 -> truncate ()
    | 1 -> (
        (* delete a token *)
        match pick rng (tokens src) with
        | Some (start, len) -> (splice src ~start ~len "", Printf.sprintf "del@%d+%d" start len)
        | None -> truncate ())
    | 2 -> (
        (* duplicate a token in place *)
        match pick rng (tokens src) with
        | Some (start, len) ->
            let tok = String.sub src start len in
            ( splice src ~start ~len (tok ^ " " ^ tok),
              Printf.sprintf "dup@%d+%d" start len )
        | None -> truncate ())
    | 3 -> (
        (* scramble one identifier occurrence *)
        let idents =
          List.filter (fun (s, l) -> l >= 2 && is_letter src.[s]) (tokens src)
        in
        match pick rng idents with
        | Some (start, len) ->
            (splice src ~start ~len (shuffle_string rng (String.sub src start len)),
             Printf.sprintf "scramble@%d+%d" start len)
        | None -> truncate ())
    | 4 -> (
        (* flip a brace/paren to a random other delimiter *)
        let delims =
          List.filter
            (fun (s, _) -> match src.[s] with '{' | '}' | '(' | ')' -> true | _ -> false)
            (tokens src)
        in
        match pick rng delims with
        | Some (start, _) ->
            let repl =
              match Random.State.int rng 4 with 0 -> "{" | 1 -> "}" | 2 -> "(" | _ -> ")"
            in
            (splice src ~start ~len:1 repl, Printf.sprintf "flip@%d:%s" start repl)
        | None -> truncate ())
    | 5 | 6 -> (
        (* swap two disjoint statements: reorders operations across
           callbacks without breaking the grammar *)
        let spans = statement_spans src in
        let pairs =
          List.concat_map
            (fun (s1, l1) ->
              List.filter_map
                (fun (s2, l2) -> if s1 + l1 <= s2 then Some ((s1, l1), (s2, l2)) else None)
                spans)
            spans
        in
        match pick rng pairs with
        | Some ((s1, l1), (s2, l2)) ->
            let a = String.sub src s1 l1 and b = String.sub src s2 l2 in
            let m = splice src ~start:s2 ~len:l2 a in
            (splice m ~start:s1 ~len:l1 b, Printf.sprintf "swap@%d+%d,%d+%d" s1 l1 s2 l2)
        | None -> truncate ())
    | 7 -> (
        (* rename one identifier consistently at word boundaries: the
           mutant parses; name resolution decides its fate *)
        let names =
          List.sort_uniq compare
            (List.filter_map
               (fun (s, l) ->
                 if l >= 2 && is_letter src.[s] then
                   let name = String.sub src s l in
                   if List.mem name keywords then None else Some name
                 else None)
               (tokens src))
        in
        match pick rng names with
        | Some name ->
            (rename_all src ~name ~repl:(name ^ "q"), Printf.sprintf "rename:%s" name)
        | None -> truncate ())
    | 8 -> (
        (* drop a whole method *)
        match pick rng (keyword_spans "method") with
        | Some (start, _) -> (
            match block_span src ~start with
            | Some (s, l) -> (splice src ~start:s ~len:l "", Printf.sprintf "dropmethod@%d+%d" s l)
            | None -> truncate ())
        | None -> truncate ())
    | _ -> (
        (* drop a whole class *)
        match pick rng (keyword_spans "class") with
        | Some (start, _) -> (
            match block_span src ~start with
            | Some (s, l) -> (splice src ~start:s ~len:l "", Printf.sprintf "dropclass@%d+%d" s l)
            | None -> truncate ())
        | None -> truncate ())

(* -- harness -------------------------------------------------------------- *)

type failure = {
  f_app : string;
  f_index : int;  (** mutant index: regenerate with the same seed *)
  f_op : string;
  f_what : string;  (** fault detail or overrun report *)
}

type summary = {
  s_mutants : int;
  s_clean : int;
  s_frontend : int;
  s_budget : int;
  s_uncaught : failure list;  (** internal faults / escaped exceptions *)
  s_overruns : failure list;  (** mutants that ran past the deadline *)
  s_elapsed : float;
}

let failed s = s.s_uncaught <> [] || s.s_overruns <> []

(* Default per-phase budgets for fuzzing. The PTA step ceiling is ~40x
   the largest full-corpus fixpoint (k=2), so real apps never degrade
   while a mutant whose points-to blows up is cut off deterministically;
   the wall-clock deadline backstops the remaining phases. *)
let default_pta_steps = 2_000_000

let fuzz_config ~deadline : Pipeline.config =
  {
    Pipeline.default_config with
    Pipeline.budgets =
      {
        Pipeline.pta_steps = Some default_pta_steps;
        pta_tuples = None;
        deadline = Some deadline;
        explorer_schedules = None;
      };
  }

let run ?jobs ?config ?(deadline = 10.0) ~seed ~mutants (apps : Corpus.app list) : summary =
  if apps = [] then invalid_arg "Chaos.run: empty app list";
  let config = match config with Some c -> c | None -> fuzz_config ~deadline in
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let t0 = Clock.now () in
  let napps = List.length apps in
  let one i =
    let app = List.nth apps (i mod napps) in
    let rng = Random.State.make [| seed; i |] in
    let mutant, op = mutate rng app.Corpus.source in
    let m0 = Clock.now () in
    let r =
      Fault.wrap (fun () ->
          Nadroid_core.Pipeline.analyze ~config
            ~file:(Printf.sprintf "%s#%d" app.Corpus.name i)
            mutant)
    in
    let elapsed = Clock.now () -. m0 in
    (app.Corpus.name, i, op, r, elapsed)
  in
  let results =
    List.map
      (function Ok r -> r | Error e -> raise e)
      (Nadroid_core.Parallel.map_result ?jobs one (List.init mutants Fun.id))
  in
  let summary =
    List.fold_left
      (fun s (name, i, op, r, elapsed) ->
        let s =
          if elapsed > deadline then
            {
              s with
              s_overruns =
                {
                  f_app = name;
                  f_index = i;
                  f_op = op;
                  f_what = Printf.sprintf "ran %.2fs against a %.2fs deadline" elapsed deadline;
                }
                :: s.s_overruns;
            }
          else s
        in
        match r with
        | Ok (_ : Pipeline.t) -> { s with s_clean = s.s_clean + 1 }
        | Error (Fault.Frontend _) -> { s with s_frontend = s.s_frontend + 1 }
        | Error (Fault.Budget _) -> { s with s_budget = s.s_budget + 1 }
        | Error (Fault.Internal _ as f) ->
            {
              s with
              s_uncaught =
                { f_app = name; f_index = i; f_op = op; f_what = Fault.to_string f }
                :: s.s_uncaught;
            })
      {
        s_mutants = mutants;
        s_clean = 0;
        s_frontend = 0;
        s_budget = 0;
        s_uncaught = [];
        s_overruns = [];
        s_elapsed = 0.0;
      }
      results
  in
  {
    summary with
    s_elapsed = Clock.now () -. t0;
    s_uncaught = List.rev summary.s_uncaught;
    s_overruns = List.rev summary.s_overruns;
  }

let pp_failure ppf f =
  Fmt.pf ppf "mutant #%d of %s (%s): %s" f.f_index f.f_app f.f_op f.f_what

let parse_clean_pct s =
  if s.s_mutants = 0 then 0.0
  else 100.0 *. float_of_int (s.s_mutants - s.s_frontend) /. float_of_int s.s_mutants

let pp_summary ppf s =
  Fmt.pf ppf
    "fuzzed %d mutant(s) in %.1fs: %d clean, %d frontend diagnostic(s), %d budget \
     (%.1f%% parse-clean)@\n"
    s.s_mutants s.s_elapsed s.s_clean s.s_frontend s.s_budget (parse_clean_pct s);
  List.iter (fun f -> Fmt.pf ppf "UNCAUGHT  %a@\n" pp_failure f) s.s_uncaught;
  List.iter (fun f -> Fmt.pf ppf "OVERRUN   %a@\n" pp_failure f) s.s_overruns;
  if failed s then
    Fmt.pf ppf "FAILED: %d uncaught, %d overrun@\n" (List.length s.s_uncaught)
      (List.length s.s_overruns)
  else Fmt.pf ppf "OK: no uncaught exceptions, no deadline overruns@\n"
