(** MiniAndroid source generator: expands a {!Spec.t} into compilable
    source plus the seeded ground truth used by the Table 1
    false-positive attribution and the Table 2 injection study.

    Every pattern instance owns its field [fN] (plus helpers and a view
    id) so instances never interfere; per-activity lifecycle bodies are
    merged from the fragments each pattern contributes. Generation is
    deterministic. *)

val generate : Spec.t -> string * Spec.seeded list

val data_class : string
(** The shared [Data] payload class every generated source defines
    exactly once; exposed so other generators ({!Synth}) can emit it
    when they build sources without going through {!generate}. *)

val click_listener : view:int -> body:string -> string
(** A click listener on view [view], as registered in [onStart]. *)

val service_conn : connected:string -> disconnected:string -> string
(** A [bindService] call with the two connection callback bodies, as
    registered in [onCreate]. *)
