(** k-object-sensitive points-to analysis with Android framework rules —
    the Chord substitute (paper §5).

    Field-sensitive, flow-insensitive, k-object-sensitive (k
    configurable; the paper's default is 2) points-to analysis whose
    on-the-fly call graph includes the framework's callback dispatch:
    posting a Runnable adds an edge to its [run], binding a service
    connection adds edges to the connection callbacks, starting a Thread
    dispatches its stored target, and so on. Roots are the entry
    callbacks of discovered components, whose instances the modelled
    framework ("dummy main") allocates. *)

open Nadroid_ir

module IntSet : Set.S with type elt = int

type ctx = Instr.alloc_site list
(** Method context: the receiver's allocation string, length <= k. *)

type obj = { o_site : Instr.alloc_site; o_hctx : ctx  (** length <= k-1 *) }

val pp_ctx : ctx Fmt.t

val pp_obj : obj Fmt.t

val obj_class : obj -> string

type instance = { i_id : int; i_mref : Instr.mref; i_ctx : ctx }
(** A context-qualified method: the unit of analysis. *)

val pp_instance : instance Fmt.t

type edge_kind = E_ordinary | E_api of Nadroid_android.Api.kind

type call_edge = {
  ce_from : int;  (** caller instance id *)
  ce_instr : Instr.t;
  ce_kind : edge_kind;
  ce_to : int;  (** callee instance id *)
}

type root = {
  r_instance : int;
  r_component : Nadroid_android.Component.t;
  r_method : string;
  r_cb_kind : Nadroid_android.Callback.kind;
  r_recv : int;  (** object id of the component instance *)
}

(** Pointer nodes; exposed so that client analyses (escape) can traverse
    the final points-to table. Field names are interned to dense ids at
    solver creation (in program order, so ids are a pure function of the
    program) — all-int nodes keep the hot pts/deps probes off string
    hashing. *)
type node =
  | Nvar of int * int  (** (instance id, var slot) *)
  | Nfld of int * int  (** (object id, interned field id) *)
  | Nstatic of int  (** interned field id *)
  | Nret of int

type cell = { mutable c_pts : IntSet.t; mutable c_readers : IntSet.t }
(** A points-to set and the instances that have read it (worklist
    dependency tracking), stored together: the solver probes both on
    nearly every transfer. [c_readers] is empty under the reference
    solver. An empty [c_pts] (a cell only ever read) is equivalent to
    the node being absent. *)

module NodeTbl : Hashtbl.S with type key = node

type t = {
  prog : Prog.t;
  k : int;
  obj_ids : (Instr.alloc_site * ctx, int) Hashtbl.t;
  mutable objs : obj array;
  mutable n_objs : int;
  inst_ids : (Instr.mref * ctx, int) Hashtbl.t;
  mutable insts : instance array;
  mutable n_insts : int;
  field_ids : (string, int) Hashtbl.t;  (** qualified field name -> id *)
  fref_ids : (Instr.fref, int) Hashtbl.t;  (** per-fref interning memo *)
  thread_target_id : int;  (** the synthetic "Thread.target" field *)
  pts : cell NodeTbl.t;  (** the final points-to table *)
  edge_seen : (int * int * int, unit) Hashtbl.t;
  mutable edges : call_edge list;
  mutable roots : root list;
  synth_sites : (string, Instr.alloc_site) Hashtbl.t;
  mutable changed : bool;
  mutable passes : int;
  mutable steps : int;  (** instruction transfers executed so far *)
  budget : int option;  (** step budget; [None] = unbounded *)
  mutable tuples : int;
      (** live points-to tuples stored so far; counted only when
          [tuple_budget] is set *)
  tuple_budget : int option;  (** tuple ceiling; [None] = unbounded *)
  deadline : float option;
      (** absolute wall-clock bound, sampled every 1024 steps *)
  mutable sched_cur : Bytes.t;
  mutable sched_next : Bytes.t;
  mutable pending_next : int;
  mutable cursor : int;
  mutable round_limit : int;
  mutable tracking : bool;
  mutable visits : int;  (** method-instance bodies executed so far *)
  mutable succ_idx : (int, int list) Hashtbl.t option;
      (** lazily built ordinary-edge adjacency ({!ordinary_succs}) *)
  intra_cache : (int, IntSet.t) Hashtbl.t;
      (** entry instance -> intra-thread closure ({!intra_instances}) *)
}
(** Solver state, exposed read-only by convention after {!run}. *)

(** [Worklist] (default) re-visits only instances whose read cells
    changed; [Reference] re-executes every reachable instance each pass.
    Both reach bit-identical states — the worklist emulates the
    reference's interning order; see the implementation header. *)
type solver = Worklist | Reference

val run : ?solver:solver -> ?k:int -> Prog.t -> t
(** Solve to fixpoint. [k] defaults to 2, [solver] to [Worklist]. *)

val run_reference : ?k:int -> Prog.t -> t
(** {!run} with the snapshot-iterate-all reference solver — the oracle
    for the worklist equivalence property. *)

val run_budgeted :
  ?steps:int ->
  ?tuples:int ->
  ?deadline:float ->
  ?solver:solver ->
  ?k:int ->
  Prog.t ->
  t option
(** Like {!run} but bounded. [steps] caps instruction transfers (one step
    per transfer, so the bound is deterministic for a given program, [k]
    and [solver]; the worklist executes fewer transfers than the
    reference). [tuples] caps the live points-to table cardinality — a
    memory ceiling. [deadline] is an absolute monotonic ({!Nadroid_clock.Clock.now}) instant
    sampled every 1024 steps, so an in-flight solve overruns it by at
    most ~1024 transfers. Returns [None] when any bound is hit before the
    fixpoint is reached. *)

val equal_results : t -> t -> bool
(** Structural equality of two solved states: objects, instances,
    points-to sets, call edges and roots. *)

val obj : t -> int -> obj

val instance : t -> int -> instance

val is_synthetic_site : Instr.alloc_site -> bool

val field_key : Instr.fref -> string

val pts_var : t -> inst:int -> v:Instr.var -> IntSet.t

val pts_field : t -> obj_id:int -> fr:Instr.fref -> IntSet.t

val pts_static : t -> Instr.fref -> IntSet.t

val instances : t -> instance list

val n_instances : t -> int

val n_objects : t -> int

val edges : t -> call_edge list

val roots : t -> root list

val passes : t -> int

val visits : t -> int
(** Method-instance bodies executed during the solve — the measure of
    work the worklist saves over the reference solver. *)

val steps : t -> int
(** Instruction transfers executed during the solve. *)

val tuples : t -> int
(** Live points-to tuples stored during the solve; 0 unless a tuple
    ceiling was set (unbudgeted runs skip the accounting). *)

val ordinary_succs : t -> int -> int list
(** Ordinary-call successors of an instance (intra-thread closure);
    amortized O(out-degree) off a lazily built adjacency index. *)

val intra_instances : t -> int -> IntSet.t
(** Instances reachable from [entry] through ordinary (non-thread) call
    edges — the intra-thread closure. Memoized per entry; escape,
    threadify and the filters all share the one computation. *)

val field_succs : t -> int -> IntSet.t
(** Objects stored in any field of the given object. *)

val static_objs : t -> IntSet.t
