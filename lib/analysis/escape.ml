(* Thread-escape analysis.

   An abstract object escapes when it can be reached by more than one
   abstract thread (entry-callback root or framework-dispatched callback /
   spawned thread) or through a static field. Races are only reported on
   escaping objects — the standard Chord pipeline step (§5).

   Thread entries are the points-to roots plus the targets of API edges
   (posted callbacks, spawned runnables): exactly the nodes that
   threadification turns into threads. *)

module IntSet = Pta.IntSet

type t = {
  escaping : IntSet.t;  (** object ids accessible to >= 2 threads or statics *)
}

(* Instances reachable from [entry] through ordinary calls. *)
let intra_thread_instances = Pta.intra_instances

(* One pass over the points-to table, grouping objects by instance and
   building the field-successor map — [run] then works off these maps
   instead of rescanning the table per thread entry. *)
let index_pts pta : (int, IntSet.t) Hashtbl.t * (int, IntSet.t) Hashtbl.t * IntSet.t =
  let by_inst = Hashtbl.create 256 in
  let by_field = Hashtbl.create 256 in
  let statics = ref IntSet.empty in
  let add tbl key s =
    match Hashtbl.find_opt tbl key with
    | Some cur -> Hashtbl.replace tbl key (IntSet.union cur s)
    | None -> Hashtbl.replace tbl key s
  in
  Pta.NodeTbl.iter
    (fun node c ->
      match node with
      | Pta.Nvar (i, _) | Pta.Nret i -> add by_inst i c.Pta.c_pts
      | Pta.Nfld (o, _) -> add by_field o c.Pta.c_pts
      | Pta.Nstatic _ -> statics := IntSet.union !statics c.Pta.c_pts)
    pta.Pta.pts;
  (by_inst, by_field, !statics)

let lookup tbl key = Option.value ~default:IntSet.empty (Hashtbl.find_opt tbl key)

let thread_entries pta : int list =
  let roots = List.map (fun r -> r.Pta.r_instance) (Pta.roots pta) in
  let posted =
    List.filter_map
      (fun e -> match e.Pta.ce_kind with Pta.E_api _ -> Some e.Pta.ce_to | Pta.E_ordinary -> None)
      (Pta.edges pta)
  in
  List.sort_uniq Int.compare (roots @ posted)

(* The per-entry closures run on dense arrays — a byte-array visited mark
   and an adjacency array over field successors — because every thread
   entry reaches most of the heap, so functional-set DFS per entry was
   the pipeline's hottest loop. The resulting escaping set is
   unchanged. *)
let run (pta : Pta.t) : t =
  let by_inst, by_field, statics = index_pts pta in
  let n_objs = max 1 (Pta.n_objects pta) in
  let field_succ = Array.make n_objs [] in
  Hashtbl.iter (fun o s -> field_succ.(o) <- IntSet.elements s) by_field;
  let mark = Bytes.make n_objs '\000' in
  (* field-reachability closure of the seeds; [visit] fires once per
     newly reached object *)
  let closure seed_iter visit =
    Bytes.fill mark 0 n_objs '\000';
    let rec go oid =
      if Bytes.get mark oid = '\000' then begin
        Bytes.set mark oid '\001';
        visit oid;
        List.iter go field_succ.(oid)
      end
    in
    seed_iter go
  in
  (* objects seen by at least two thread entries escape *)
  let counts = Array.make n_objs 0 in
  List.iter
    (fun entry ->
      let insts = intra_thread_instances pta entry in
      closure
        (fun go -> IntSet.iter (fun i -> IntSet.iter go (lookup by_inst i)) insts)
        (fun oid -> counts.(oid) <- counts.(oid) + 1))
    (thread_entries pta);
  (* statics escape unconditionally *)
  let escaping = ref IntSet.empty in
  closure (fun go -> IntSet.iter go statics) (fun oid -> escaping := IntSet.add oid !escaping);
  Array.iteri (fun oid n -> if n >= 2 then escaping := IntSet.add oid !escaping) counts;
  { escaping = !escaping }

let escapes t oid = IntSet.mem oid t.escaping

let n_escaping t = IntSet.cardinal t.escaping
