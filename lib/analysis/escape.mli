(** Thread-escape analysis (paper §5).

    An abstract object escapes when it is reachable by more than one
    abstract thread (entry-callback root or framework-dispatched
    callback / spawned thread) or through a static field; races are only
    reported on escaping objects. *)

module IntSet = Pta.IntSet

type t = {
  escaping : IntSet.t;  (** object ids accessible to >= 2 threads or statics *)
}

val intra_thread_instances : Pta.t -> int -> IntSet.t
(** Instances reachable from an entry through ordinary calls. *)

val thread_entries : Pta.t -> int list
(** Root instances plus targets of API edges: the nodes threadification
    turns into threads. *)

val run : Pta.t -> t

val escapes : t -> int -> bool

val n_escaping : t -> int
