(* Must-held lockset analysis.

   nAdroid ignores locksets for race *detection* (locks do not prevent
   ordering violations, §5) but uses them *selectively* in the If-Guard
   and Intra-Allocation filters: between true threads, a guard only helps
   when check and use are protected by the same lock (§6.1.2).

   A lock object enters the set only when the monitor variable's points-to
   set is a singleton (must-alias); the interprocedural component
   intersects locks held at every ordinary call site of an instance. *)

open Nadroid_ir
module IntSet = Pta.IntSet

type t = {
  entry_locks : (int, IntSet.t) Hashtbl.t;  (** instance -> locks held at entry *)
  at_instr : (int * int, IntSet.t) Hashtbl.t;  (** (instance, instr id) -> locks held *)
}

(* Intra-procedural must-held analysis: a set of object ids. *)
let intra pta ~inst (body : Cfg.body) ~entry_fact : (int * IntSet.t) list =
  let module D = Dataflow in
  let universe = ref IntSet.empty in
  (* collect candidate lock objects to build a finite top *)
  Cfg.iter_instrs
    (fun ins ->
      match ins.Instr.i with
      | Instr.Monitor_enter v -> universe := IntSet.union !universe (Pta.pts_var pta ~inst ~v)
      | Instr.Monitor_exit _ | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _
      | Instr.Putfield _ | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Call _
      | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ ->
          ())
    body;
  let top = IntSet.union !universe entry_fact in
  let lock_token v =
    let p = Pta.pts_var pta ~inst ~v in
    if IntSet.cardinal p = 1 then p else IntSet.empty
  in
  let spec =
    {
      D.init_entry = entry_fact;
      init_other = top;
      join = IntSet.inter;
      equal = IntSet.equal;
      transfer_instr =
        (fun ins fact ->
          match ins.Instr.i with
          | Instr.Monitor_enter v -> IntSet.union fact (lock_token v)
          | Instr.Monitor_exit v -> IntSet.diff fact (Pta.pts_var pta ~inst ~v)
          | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Putfield _
          | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Call _ | Instr.Intrinsic _
          | Instr.Unop _ | Instr.Binop _ ->
              fact);
      transfer_edge = (fun _ _ fact -> fact);
    }
  in
  let res = D.run body spec in
  let out = ref [] in
  D.iter_facts res (fun ins fact -> out := (ins.Instr.id, fact) :: !out);
  !out

let run (pta : Pta.t) : t =
  let prog = pta.Pta.prog in
  let entry_locks = Hashtbl.create 64 in
  let n = Pta.n_instances pta in
  (* Monitor presence per body, memoized by method reference: a body
     with no Monitor_enter/exit has the closed-form solution "every
     fact equals the entry fact" (the transfer is the identity, top
     and the entry meet at the entry fact under intersection), so the
     per-instance dataflow fixpoint is skipped for it. Most bodies
     never lock, which made the fixpoint below the aux phase's hottest
     loop. *)
  let monitors_tbl = Hashtbl.create 64 in
  let has_monitors mref body =
    match Hashtbl.find_opt monitors_tbl mref with
    | Some b -> b
    | None ->
        let b = ref false in
        Cfg.iter_instrs
          (fun ins ->
            match ins.Instr.i with
            | Instr.Monitor_enter _ | Instr.Monitor_exit _ -> b := true
            | _ -> ())
          body;
        Hashtbl.replace monitors_tbl mref !b;
        !b
  in
  (* interprocedural fixpoint: entry lockset = intersection over callers
     of (locks held at the call site); roots and posted callbacks start
     with the empty set. *)
  let get i = Option.value ~default:IntSet.empty (Hashtbl.find_opt entry_locks i) in
  let top_mark = Hashtbl.create 16 in
  (* initially: every instance that is a thread entry has empty lockset;
     others start at "unknown" (represented by absence + top_mark) *)
  let entries = Escape.thread_entries pta in
  List.iter (fun e -> Hashtbl.replace entry_locks e IntSet.empty) entries;
  ignore top_mark;
  (* ordinary out-edges by caller, in edge-list order: the fixpoint reads
     an instance's out-edges every round, so scanning the full edge list
     each time was quadratic *)
  let out_edges = Hashtbl.create 64 in
  List.iter
    (fun (e : Pta.call_edge) ->
      if e.Pta.ce_kind = Pta.E_ordinary then
        Hashtbl.replace out_edges e.Pta.ce_from
          (e :: Option.value ~default:[] (Hashtbl.find_opt out_edges e.Pta.ce_from)))
    (Pta.edges pta);
  Hashtbl.filter_map_inplace (fun _ es -> Some (List.rev es)) out_edges;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let inst = Pta.instance pta i in
      match Prog.body prog inst.Pta.i_mref with
      | None -> ()
      | Some body ->
          if Hashtbl.mem entry_locks i then begin
            let monitored = has_monitors inst.Pta.i_mref body in
            let facts =
              if monitored then intra pta ~inst:i body ~entry_fact:(get i) else []
            in
            (* push held locks into ordinary callees *)
            List.iter
              (fun (e : Pta.call_edge) ->
                  let held_at_site =
                    if monitored then
                      Option.value ~default:IntSet.empty
                        (List.assoc_opt e.Pta.ce_instr.Instr.id facts)
                    else (* closed form: the entry fact holds everywhere *)
                      get i
                  in
                  let updated =
                    match Hashtbl.find_opt entry_locks e.Pta.ce_to with
                    | None -> held_at_site
                    | Some cur -> IntSet.inter cur held_at_site
                  in
                  let cur = Hashtbl.find_opt entry_locks e.Pta.ce_to in
                  if cur <> Some updated then begin
                    Hashtbl.replace entry_locks e.Pta.ce_to updated;
                    changed := true
                  end)
              (Option.value ~default:[] (Hashtbl.find_opt out_edges i))
          end
    done
  done;
  (* final per-instruction locksets *)
  let at_instr = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    let inst = Pta.instance pta i in
    match Prog.body prog inst.Pta.i_mref with
    | None -> ()
    | Some body ->
        if has_monitors inst.Pta.i_mref body then
          List.iter
            (fun (id, fact) -> Hashtbl.replace at_instr (i, id) fact)
            (intra pta ~inst:i body ~entry_fact:(get i))
        else begin
          (* closed form: every instruction holds exactly the entry
             fact; an empty one needs no entries at all, since
             {!locks_at} already defaults to the empty set *)
          let fact = get i in
          if not (IntSet.is_empty fact) then
            Cfg.iter_instrs
              (fun ins -> Hashtbl.replace at_instr (i, ins.Instr.id) fact)
              body
        end
  done;
  { entry_locks; at_instr }

let locks_at t ~inst ~instr_id =
  Option.value ~default:IntSet.empty (Hashtbl.find_opt t.at_instr (inst, instr_id))

(* Are two program points protected by a common lock object? *)
let common_lock t ~inst1 ~instr1 ~inst2 ~instr2 =
  not (IntSet.is_empty (IntSet.inter (locks_at t ~inst:inst1 ~instr_id:instr1) (locks_at t ~inst:inst2 ~instr_id:instr2)))
