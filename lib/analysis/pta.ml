(* k-object-sensitive points-to analysis with Android framework rules.

   This is the Chord substitute (§5): a field-sensitive, flow-insensitive,
   k-object-sensitive (k configurable, default 2) points-to analysis whose
   on-the-fly call graph includes the framework's callback dispatch:
   posting a Runnable creates an edge to its [run], binding a service
   connection creates edges to [onServiceConnected]/[onServiceDisconnected],
   and so on (see {!Nadroid_android.Api}).

   Roots are the entry callbacks of discovered components; the framework
   is modelled as allocating one object per component ("dummy main").

   Two solvers share the transfer functions:

   - [Reference]: iterate every reachable method instance to a fixpoint.
     Each pass re-executes all transfers, so the cost per pass is the
     whole reachable program even when one cell changed.
   - [Worklist] (default): dependency-tracked. Each visit records which
     points-to cells the instance reads; updating a cell re-enqueues
     only its readers. The worklist deliberately emulates the reference
     pass structure — dirty instances are drained in ascending id order,
     an update lands in the current round when its reader sits ahead of
     the cursor and in the next round otherwise, and instances interned
     mid-round wait for the next round — so both solvers intern objects,
     instances and call edges in the same order and reach bit-identical
     states. Clean instances' transfers are no-ops (transfers are
     monotone functions of the cells they read), so skipping them never
     loses facts; the equivalence is gated by a qcheck property and the
     golden corpus reports. *)

module Clock = Nadroid_clock.Clock
open Nadroid_lang
open Nadroid_ir
open Nadroid_android

(* -- abstract objects and contexts -------------------------------------- *)

type ctx = Instr.alloc_site list
(** method context: receiver's allocation string, length <= k *)

type obj = { o_site : Instr.alloc_site; o_hctx : ctx  (** length <= k-1 *) }

let pp_ctx ppf ctx =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ",") Instr.pp_alloc_site) ctx

let pp_obj ppf o = Fmt.pf ppf "%a%a" Instr.pp_alloc_site o.o_site pp_ctx o.o_hctx

let obj_class o = o.o_site.Instr.as_class

let rec take n = function [] -> [] | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

type instance = { i_id : int; i_mref : Instr.mref; i_ctx : ctx }
(** a context-qualified method: the unit of analysis *)

let pp_instance ppf i = Fmt.pf ppf "%a%a" Instr.pp_mref i.i_mref pp_ctx i.i_ctx

type edge_kind = E_ordinary | E_api of Api.kind

type call_edge = {
  ce_from : int;  (** caller instance id *)
  ce_instr : Instr.t;  (** the call instruction *)
  ce_kind : edge_kind;
  ce_to : int;  (** callee instance id *)
}

type root = {
  r_instance : int;
  r_component : Component.t;
  r_method : string;
  r_cb_kind : Callback.kind;
  r_recv : int;  (** object id of the component instance *)
}

(* -- pointer nodes ------------------------------------------------------- *)

(* Field names are interned to dense ints at [create] time (one scan of
   the program in a fixed order), so every pointer node is all-int: the
   pts/deps tables are probed a few times per transfer step, and hashing
   a node must not walk a "Class.field" string each time. Interning
   during [create] — not lazily at first transfer — keeps the ids a pure
   function of the program, so the worklist and reference solvers assign
   identical ids and [equal_results] stays plain structural equality. *)
type node =
  | Nvar of int * int  (** (instance id, var slot) *)
  | Nfld of int * int  (** (object id, interned field id) *)
  | Nstatic of int  (** interned field id *)
  | Nret of int  (** return value of an instance *)

module IntSet = Set.Make (Int)

(* A points-to cell and the instances that have read it, stored together:
   the solver's hot path pairs almost every read with a reader
   registration and every write with a wake-up, so splitting the two
   across tables doubled the node hashing. *)
type cell = { mutable c_pts : IntSet.t; mutable c_readers : IntSet.t }

module NodeTbl = Hashtbl.Make (struct
  type t = node

  let equal (a : node) (b : node) =
    match (a, b) with
    | Nvar (i1, v1), Nvar (i2, v2) -> i1 = i2 && v1 = v2
    | Nfld (o1, f1), Nfld (o2, f2) -> o1 = o2 && f1 = f2
    | Nstatic f1, Nstatic f2 -> f1 = f2
    | Nret i1, Nret i2 -> i1 = i2
    | (Nvar _ | Nfld _ | Nstatic _ | Nret _), _ -> false

  (* all-int mixing; the generic [Hashtbl.hash] block walk is measurable
     at the solver's probe rate *)
  let hash = function
    | Nvar (i, v) -> (i * 0x9E3779B1) lxor (v * 0x85EBCA77) lxor 1
    | Nfld (o, f) -> (o * 0x9E3779B1) lxor (f * 0x85EBCA77) lxor 2
    | Nstatic f -> (f * 0x9E3779B1) lxor 3
    | Nret i -> (i * 0x9E3779B1) lxor 4
end)

let field_key (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

(* -- solver state -------------------------------------------------------- *)

type t = {
  prog : Prog.t;
  k : int;
  (* object interning *)
  obj_ids : (Instr.alloc_site * ctx, int) Hashtbl.t;
  mutable objs : obj array;
  mutable n_objs : int;
  (* instance interning *)
  inst_ids : (Instr.mref * ctx, int) Hashtbl.t;
  mutable insts : instance array;
  mutable n_insts : int;
  (* field-name interning: qualified name -> id, plus a per-fref memo so
     transfers skip the name concatenation *)
  field_ids : (string, int) Hashtbl.t;
  fref_ids : (Instr.fref, int) Hashtbl.t;
  thread_target_id : int;  (* the synthetic "Thread.target" field *)
  (* points-to sets, with per-cell reader tracking *)
  pts : cell NodeTbl.t;
  (* discovered call edges, deduped *)
  edge_seen : (int * int * int, unit) Hashtbl.t;  (* from, instr id, to *)
  mutable edges : call_edge list;
  mutable roots : root list;
  (* synthetic allocation sites, by tag *)
  synth_sites : (string, Instr.alloc_site) Hashtbl.t;
  mutable changed : bool;
  mutable passes : int;
  (* resource budget: instruction transfers executed / allowed *)
  mutable steps : int;
  budget : int option;
  (* memory budget: live points-to tuples (cell, object) stored / allowed.
     Counted only when a ceiling is set, so unbudgeted runs pay nothing. *)
  mutable tuples : int;
  tuple_budget : int option;
  (* absolute wall-clock bound, checked every 1024 steps *)
  deadline : float option;
  (* worklist machinery — inert under the reference solver *)
  mutable sched_cur : Bytes.t;  (* dirty instances, current round *)
  mutable sched_next : Bytes.t;  (* dirty instances, next round *)
  mutable pending_next : int;  (* bits set in sched_next *)
  mutable cursor : int;  (* instance being visited; -1 outside a visit *)
  mutable round_limit : int;  (* n_insts snapshot at round start *)
  mutable tracking : bool;  (* worklist solve in progress *)
  mutable visits : int;  (* method-instance bodies executed *)
  (* lazily built adjacency over ordinary edges, for client traversals *)
  mutable succ_idx : (int, int list) Hashtbl.t option;
  (* memoized ordinary-call closures ({!intra_instances}): escape,
     threadification and detection all query the same entries *)
  intra_cache : (int, IntSet.t) Hashtbl.t;
}

type solver = Worklist | Reference

exception Out_of_budget

let create ?(k = 2) ?budget ?tuple_budget ?deadline (prog : Prog.t) : t =
  let field_ids = Hashtbl.create 64 in
  let fref_ids = Hashtbl.create 64 in
  let intern key =
    match Hashtbl.find_opt field_ids key with
    | Some id -> id
    | None ->
        let id = Hashtbl.length field_ids in
        Hashtbl.add field_ids key id;
        id
  in
  let thread_target_id = intern "Thread.target" in
  Prog.iter_bodies
    (fun body ->
      Cfg.iter_instrs
        (fun ins ->
          match ins.Instr.i with
          | Instr.Getfield (_, _, fr)
          | Instr.Putfield (_, fr, _, _)
          | Instr.Getstatic (_, fr)
          | Instr.Putstatic (fr, _, _) ->
              if not (Hashtbl.mem fref_ids fr) then
                Hashtbl.add fref_ids fr (intern (field_key fr))
          | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Call _ | Instr.Intrinsic _
          | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
              ())
        body)
    prog;
  {
    prog;
    k;
    field_ids;
    fref_ids;
    thread_target_id;
    obj_ids = Hashtbl.create 256;
    objs = Array.make 256 { o_site = { Instr.as_method = { Instr.mr_class = ""; mr_name = "" }; as_idx = 0; as_class = ""; as_loc = Loc.dummy }; o_hctx = [] };
    n_objs = 0;
    inst_ids = Hashtbl.create 256;
    insts = Array.make 256 { i_id = 0; i_mref = { Instr.mr_class = ""; mr_name = "" }; i_ctx = [] };
    n_insts = 0;
    pts = NodeTbl.create 1024;
    edge_seen = Hashtbl.create 256;
    edges = [];
    roots = [];
    synth_sites = Hashtbl.create 32;
    changed = false;
    passes = 0;
    steps = 0;
    budget;
    tuples = 0;
    tuple_budget;
    deadline;
    sched_cur = Bytes.make 256 '\000';
    sched_next = Bytes.make 256 '\000';
    pending_next = 0;
    cursor = -1;
    round_limit = 0;
    tracking = false;
    visits = 0;
    succ_idx = None;
    intra_cache = Hashtbl.create 64;
  }

let obj t id = t.objs.(id)

let instance t id = t.insts.(id)

(* Interned id of a field reference. Program fields were all pre-scanned
   by [create]; the on-demand fallback covers client queries mentioning
   a field the program never touches. *)
let fld t (fr : Instr.fref) =
  match Hashtbl.find_opt t.fref_ids fr with
  | Some id -> id
  | None ->
      let key = field_key fr in
      let id =
        match Hashtbl.find_opt t.field_ids key with
        | Some id -> id
        | None ->
            let id = Hashtbl.length t.field_ids in
            Hashtbl.add t.field_ids key id;
            id
      in
      Hashtbl.add t.fref_ids fr id;
      id

(* Mark instance [j] dirty. Updates land in the current round only when
   the ascending scan has not yet reached [j] and [j] was already part of
   the round's snapshot — exactly the instances whose reference-solver
   visit this pass would observe the update. Everything else (scanned
   already, the visiting instance itself, instances interned mid-round)
   waits for the next round, matching the reference's next pass. *)
let schedule t j =
  if j > t.cursor && j < t.round_limit then Bytes.set t.sched_cur j '\001'
  else if Bytes.get t.sched_next j <> '\001' then begin
    Bytes.set t.sched_next j '\001';
    t.pending_next <- t.pending_next + 1
  end

let intern_obj t site hctx : int =
  let key = (site, hctx) in
  match Hashtbl.find_opt t.obj_ids key with
  | Some id -> id
  | None ->
      let id = t.n_objs in
      t.n_objs <- id + 1;
      if id >= Array.length t.objs then begin
        let bigger = Array.make (2 * Array.length t.objs) t.objs.(0) in
        Array.blit t.objs 0 bigger 0 (Array.length t.objs);
        t.objs <- bigger
      end;
      t.objs.(id) <- { o_site = site; o_hctx = hctx };
      Hashtbl.add t.obj_ids key id;
      t.changed <- true;
      id

let intern_instance t mref ctx : int =
  let key = (mref, ctx) in
  match Hashtbl.find_opt t.inst_ids key with
  | Some id -> id
  | None ->
      let id = t.n_insts in
      t.n_insts <- id + 1;
      if id >= Array.length t.insts then begin
        let bigger = Array.make (2 * Array.length t.insts) t.insts.(0) in
        Array.blit t.insts 0 bigger 0 (Array.length t.insts);
        t.insts <- bigger
      end;
      t.insts.(id) <- { i_id = id; i_mref = mref; i_ctx = ctx };
      Hashtbl.add t.inst_ids key id;
      t.changed <- true;
      if id >= Bytes.length t.sched_cur then begin
        let grow b =
          let bigger = Bytes.make (2 * Bytes.length b) '\000' in
          Bytes.blit b 0 bigger 0 (Bytes.length b);
          bigger
        in
        t.sched_cur <- grow t.sched_cur;
        t.sched_next <- grow t.sched_next
      end;
      if t.tracking then schedule t id;
      id

let synth_site t ~tag ~cls : Instr.alloc_site =
  match Hashtbl.find_opt t.synth_sites tag with
  | Some s -> s
  | None ->
      let s =
        {
          Instr.as_method = { Instr.mr_class = "@framework"; mr_name = tag };
          as_idx = 0;
          as_class = cls;
          as_loc = Loc.dummy;
        }
      in
      Hashtbl.add t.synth_sites tag s;
      s

let is_synthetic_site (s : Instr.alloc_site) = String.equal s.Instr.as_method.Instr.mr_class "@framework"

(* -- points-to set operations ------------------------------------------- *)

(* Reads register the visiting instance as a reader of the cell. Reader
   sets only grow — sound because points-to sets only grow, so a stale
   reader's re-visit is at worst a no-op. Reading an absent cell under
   tracking materializes an empty cell to hold the reader; empty cells
   cost no tuples and are invisible to every client (unions and
   equality checks against the empty set). *)
let get_pts t node =
  match NodeTbl.find_opt t.pts node with
  | Some c ->
      if t.tracking && t.cursor >= 0 && not (IntSet.mem t.cursor c.c_readers) then
        c.c_readers <- IntSet.add t.cursor c.c_readers;
      c.c_pts
  | None ->
      if t.tracking && t.cursor >= 0 then
        NodeTbl.add t.pts node
          { c_pts = IntSet.empty; c_readers = IntSet.singleton t.cursor };
      IntSet.empty

(* Tuple accounting costs a [cardinal] per grown cell, so it is skipped
   entirely when no ceiling is set. A raise here discards the whole
   solver state, so the counter/table ordering is immaterial. *)
let bump_tuples t b delta =
  t.tuples <- t.tuples + delta;
  if t.tuples > b then raise Out_of_budget

let add_pts t node objs =
  if not (IntSet.is_empty objs) then
    match NodeTbl.find_opt t.pts node with
    | Some c ->
        let u = IntSet.union c.c_pts objs in
        if not (IntSet.equal u c.c_pts) then begin
          (match t.tuple_budget with
          | None -> ()
          | Some b -> bump_tuples t b (IntSet.cardinal u - IntSet.cardinal c.c_pts));
          c.c_pts <- u;
          t.changed <- true;
          if t.tracking then IntSet.iter (schedule t) c.c_readers
        end
    | None ->
        (match t.tuple_budget with
        | None -> ()
        | Some b -> bump_tuples t b (IntSet.cardinal objs));
        (* a cell nobody has read yet: no readers to wake *)
        NodeTbl.add t.pts node { c_pts = objs; c_readers = IntSet.empty };
        t.changed <- true

let add_obj t node oid = add_pts t node (IntSet.singleton oid)

(* -- contexts ------------------------------------------------------------ *)

(* Method context for an invocation whose receiver is [o]. *)
let ctx_of_recv t (o : obj) : ctx = take t.k (o.o_site :: o.o_hctx)

(* Heap context for an allocation inside method context [ctx]. *)
let heap_ctx t (ctx : ctx) : ctx = take (max 0 (t.k - 1)) ctx

(* -- call handling -------------------------------------------------------- *)

let record_edge t ~from ~(instr : Instr.t) ~kind ~target =
  let key = (from, instr.Instr.id, target) in
  if not (Hashtbl.mem t.edge_seen key) then begin
    Hashtbl.add t.edge_seen key ();
    t.edges <- { ce_from = from; ce_instr = instr; ce_kind = kind; ce_to = target } :: t.edges;
    t.succ_idx <- None;
    Hashtbl.reset t.intra_cache;
    t.changed <- true
  end

(* Bind a call: receiver object, argument nodes, optional return dst. *)
let bind_call t ~caller ~(instr : Instr.t) ~kind ~recv_obj ~(target : Sema.rmeth)
    ~(arg_pts : IntSet.t list) ~(dst : Instr.var option) =
  let mref = { Instr.mr_class = target.Sema.rm_class; mr_name = target.Sema.rm_name } in
  let ctx = ctx_of_recv t (obj t recv_obj) in
  let callee = intern_instance t mref ctx in
  record_edge t ~from:caller ~instr ~kind ~target:callee;
  match Prog.body t.prog mref with
  | None -> ()
  | Some body ->
      (* params.(0) is [this] *)
      let params = body.Cfg.params in
      (match params with
      | this :: rest ->
          add_obj t (Nvar (callee, this.Instr.v_id)) recv_obj;
          List.iteri
            (fun i p ->
              match List.nth_opt arg_pts i with
              | Some s -> add_pts t (Nvar (callee, p.Instr.v_id)) s
              | None -> ())
            rest
      | [] -> ());
      (match dst with
      | Some d -> add_pts t (Nvar (caller, d.Instr.v_id)) (get_pts t (Nret callee))
      | None -> ())

(* Dispatch [meth] on every object of [objs]; builtin (empty) bodies are
   skipped unless they are one of the real-bodied helpers. *)
let dispatch_objs t ~caller ~instr ~kind ~objs ~meth ~arg_pts ~dst =
  IntSet.iter
    (fun oid ->
      let cls = obj_class (obj t oid) in
      match Sema.dispatch t.prog.Prog.sema cls meth with
      | None -> ()
      | Some m ->
          let decl = Sema.get_class t.prog.Prog.sema m.Sema.rm_class in
          let real_builtin_body =
            match (m.Sema.rm_class, m.Sema.rm_name) with
            | "Thread", "init" | "Message", "init" -> true
            | _, _ -> false
          in
          if (not decl.Sema.rc_builtin) || real_builtin_body then
            bind_call t ~caller ~instr ~kind ~recv_obj:oid ~target:m ~arg_pts ~dst)
    objs

(* A synthetic framework-created argument object (Intent delivered to
   onReceive, View passed to onClick, ...). One per (callsite, class). *)
let synth_arg t ~caller ~(instr : Instr.t) ~cls : IntSet.t =
  let i = instance t caller in
  let tag =
    Fmt.str "@arg:%a#%d:%s" Instr.pp_mref i.i_mref instr.Instr.id cls
  in
  IntSet.singleton (intern_obj t (synth_site t ~tag ~cls) [])

(* -- instruction transfer -------------------------------------------------- *)

let transfer_call t ~caller (instr : Instr.t) dst recv ms args =
  let var v = Nvar (caller, v.Instr.v_id) in
  let recv_pts = get_pts t (var recv) in
  let arg_pts = List.map (fun a -> get_pts t (var a)) args in
  let kind = Api.classify ms in
  match kind with
  | Api.Other ->
      dispatch_objs t ~caller ~instr ~kind:E_ordinary ~objs:recv_pts ~meth:ms.Sema.ms_name
        ~arg_pts ~dst;
      (* opaque framework factory methods return synthetic objects *)
      if Api.opaque_builtin t.prog.Prog.sema ms then begin
        match (dst, ms.Sema.ms_ret) with
        | Some d, Ast.Tclass cls ->
            add_pts t (var d) (synth_arg t ~caller ~instr ~cls)
        | (Some _ | None), (Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid | Ast.Tclass _) -> ()
      end
  | Api.Spawn Api.Spawn_thread ->
      (* run() of the target runnable stored in the Thread object *)
      IntSet.iter
        (fun tid ->
          let targets = get_pts t (Nfld (tid, t.thread_target_id)) in
          dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:targets ~meth:"run"
            ~arg_pts:[] ~dst:None)
        recv_pts
  | Api.Spawn Api.Spawn_executor | Api.Post Api.Post_runnable ->
      let runnables = match arg_pts with r :: _ -> r | [] -> IntSet.empty in
      dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:runnables ~meth:"run" ~arg_pts:[]
        ~dst:None
  | Api.Spawn Api.Spawn_async_task ->
      List.iter
        (fun cb ->
          let cb_args =
            match cb with
            | "onProgressUpdate" -> [ IntSet.empty ]  (* int arg *)
            | _ -> []
          in
          dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:recv_pts ~meth:cb
            ~arg_pts:cb_args ~dst:None)
        (Api.triggered_callbacks kind)
  | Api.Post Api.Post_message ->
      let msg_pts =
        match (ms.Sema.ms_name, arg_pts) with
        | "sendMessage", m :: _ -> m
        | _, _ -> synth_arg t ~caller ~instr ~cls:"Message"
      in
      dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:recv_pts ~meth:"handleMessage"
        ~arg_pts:[ msg_pts ] ~dst:None
  | Api.Register reg ->
      let listeners = match arg_pts with l :: _ -> l | [] -> IntSet.empty in
      List.iter
        (fun cb ->
          let cb_args =
            match (reg, cb) with
            | Api.Reg_service, "onServiceConnected" ->
                [ synth_arg t ~caller ~instr ~cls:"Binder" ]
            | Api.Reg_service, _ -> []
            | Api.Reg_receiver, _ -> [ synth_arg t ~caller ~instr ~cls:"Intent" ]
            | (Api.Reg_click | Api.Reg_long_click), _ ->
                [ synth_arg t ~caller ~instr ~cls:"View" ]
            | Api.Reg_location, _ -> [ synth_arg t ~caller ~instr ~cls:"Location" ]
            | Api.Reg_sensor, _ -> [ IntSet.empty ]
          in
          dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:listeners ~meth:cb
            ~arg_pts:cb_args ~dst:None)
        (Api.triggered_callbacks kind)
  | Api.Cancel _ -> ()

let transfer_instr t ~caller (ins : Instr.t) =
  let var v = Nvar (caller, v.Instr.v_id) in
  match ins.Instr.i with
  | Instr.Move (d, s) -> add_pts t (var d) (get_pts t (var s))
  | Instr.Const _ -> ()
  | Instr.New (d, site, init, args) -> (
      let i = instance t caller in
      let oid = intern_obj t site (heap_ctx t i.i_ctx) in
      add_obj t (var d) oid;
      match init with
      | None -> ()
      | Some ms ->
          let arg_pts = List.map (fun a -> get_pts t (var a)) args in
          dispatch_objs t ~caller ~instr:ins ~kind:E_ordinary ~objs:(IntSet.singleton oid)
            ~meth:ms.Sema.ms_name ~arg_pts ~dst:None)
  | Instr.Getfield (d, o, fr) ->
      let f = fld t fr in
      IntSet.iter
        (fun oid -> add_pts t (var d) (get_pts t (Nfld (oid, f))))
        (get_pts t (var o))
  | Instr.Putfield (o, fr, s, Instr.Src_var) ->
      let f = fld t fr in
      let src = get_pts t (var s) in
      IntSet.iter (fun oid -> add_pts t (Nfld (oid, f)) src) (get_pts t (var o))
  | Instr.Putfield (_, _, _, Instr.Src_null) -> ()
  | Instr.Getstatic (d, fr) -> add_pts t (var d) (get_pts t (Nstatic (fld t fr)))
  | Instr.Putstatic (fr, s, Instr.Src_var) ->
      add_pts t (Nstatic (fld t fr)) (get_pts t (var s))
  | Instr.Putstatic (_, _, Instr.Src_null) -> ()
  | Instr.Call (dst, recv, ms, args) -> transfer_call t ~caller ins dst recv ms args
  | Instr.Intrinsic _ -> ()
  | Instr.Unop _ | Instr.Binop _ -> ()
  | Instr.Monitor_enter _ | Instr.Monitor_exit _ -> ()

(* Return statements feed the instance's return node. *)
let transfer_returns t ~caller (body : Cfg.body) =
  Array.iter
    (fun blk ->
      match blk.Cfg.b_term with
      | Cfg.Ret (Some v) -> add_pts t (Nret caller) (get_pts t (Nvar (caller, v.Instr.v_id)))
      | Cfg.Ret None | Cfg.Goto _ | Cfg.If _ -> ())
    body.Cfg.blocks

(* -- roots ---------------------------------------------------------------- *)

let seed_roots t =
  let sema = t.prog.Prog.sema in
  let components = Component.discover sema in
  List.iter
    (fun (comp : Component.t) ->
      let site = synth_site t ~tag:("@component:" ^ comp.Component.cls) ~cls:comp.Component.cls in
      let recv = intern_obj t site [] in
      List.iter
        (fun (meth, cb_kind) ->
          match Sema.dispatch sema comp.Component.cls meth with
          | None -> ()
          | Some m ->
              let mref = { Instr.mr_class = m.Sema.rm_class; mr_name = m.Sema.rm_name } in
              let ctx = ctx_of_recv t (obj t recv) in
              let inst = intern_instance t mref ctx in
              (match Prog.body t.prog mref with
              | None -> ()
              | Some body -> (
                  match body.Cfg.params with
                  | this :: rest ->
                      add_obj t (Nvar (inst, this.Instr.v_id)) recv;
                      (* framework-supplied arguments *)
                      List.iter
                        (fun (p : Instr.var) ->
                          let pty =
                            List.find_map
                              (fun (ty, name) ->
                                if String.equal name p.Instr.v_name then Some ty else None)
                              (match Sema.dispatch sema comp.Component.cls meth with
                              | Some m -> m.Sema.rm_params
                              | None -> [])
                          in
                          match pty with
                          | Some (Ast.Tclass cls) ->
                              let tag =
                                Fmt.str "@entryarg:%s.%s.%s" comp.Component.cls meth
                                  p.Instr.v_name
                              in
                              add_obj t
                                (Nvar (inst, p.Instr.v_id))
                                (intern_obj t (synth_site t ~tag ~cls) [])
                          | Some (Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid) | None -> ())
                        rest
                  | [] -> ()));
              t.roots <-
                {
                  r_instance = inst;
                  r_component = comp;
                  r_method = meth;
                  r_cb_kind = cb_kind;
                  r_recv = recv;
                }
                :: t.roots)
        comp.Component.entry_callbacks)
    components;
  t.roots <- List.rev t.roots

(* -- fixpoint -------------------------------------------------------------- *)

(* One budget tick per instruction transfer. The count is deterministic
   for a given program and k, which keeps budget-exhaustion behaviour
   reproducible in tests (unlike a wall-clock deadline). The deadline,
   when set, is sampled every 1024 ticks so an in-flight solve overruns
   by at most ~1024 transfers, at negligible per-tick cost. *)
let tick t =
  t.steps <- t.steps + 1;
  (match t.budget with
  | Some b when t.steps > b -> raise Out_of_budget
  | Some _ | None -> ());
  match t.deadline with
  | Some d when t.steps land 1023 = 0 && Clock.now () > d ->
      raise Out_of_budget
  | Some _ | None -> ()

let visit t i =
  let inst = instance t i in
  match Prog.body t.prog inst.i_mref with
  | None -> ()
  | Some body ->
      t.visits <- t.visits + 1;
      Cfg.iter_instrs
        (fun ins ->
          tick t;
          transfer_instr t ~caller:i ins)
        body;
      transfer_returns t ~caller:i body

let solve_reference t =
  seed_roots t;
  t.changed <- true;
  while t.changed do
    t.changed <- false;
    t.passes <- t.passes + 1;
    (* iterate over a snapshot: new instances found this pass are
       processed in the next one *)
    let n = t.n_insts in
    for i = 0 to n - 1 do
      visit t i
    done
  done

(* Dependency-tracked fixpoint. Rounds mirror the reference passes: each
   round drains the dirty instances of a snapshot in ascending id order,
   so interning order — and with it every downstream id, edge order and
   report byte — matches {!solve_reference} exactly (see the header
   comment for the argument). *)
let solve_worklist t =
  t.tracking <- true;
  seed_roots t;
  while t.pending_next > 0 do
    let drained = t.sched_cur in
    t.sched_cur <- t.sched_next;
    t.sched_next <- drained;
    Bytes.fill t.sched_next 0 (Bytes.length t.sched_next) '\000';
    t.pending_next <- 0;
    t.passes <- t.passes + 1;
    t.round_limit <- t.n_insts;
    let i = ref 0 in
    while !i < t.round_limit do
      if Bytes.get t.sched_cur !i = '\001' then begin
        Bytes.set t.sched_cur !i '\000';
        t.cursor <- !i;
        visit t !i;
        t.cursor <- -1
      end;
      incr i
    done;
    t.round_limit <- 0
  done;
  t.tracking <- false

let solve ?(solver = Worklist) t =
  match solver with Worklist -> solve_worklist t | Reference -> solve_reference t

(* -- result API ------------------------------------------------------------ *)

let run ?solver ?k prog =
  let t = create ?k prog in
  solve ?solver t;
  t

let run_reference ?k prog = run ~solver:Reference ?k prog

let run_budgeted ?steps ?tuples ?deadline ?solver ?k prog =
  let t = create ?k ?budget:steps ?tuple_budget:tuples ?deadline prog in
  match solve ?solver t with () -> Some t | exception Out_of_budget -> None

let pts_var t ~inst ~(v : Instr.var) : IntSet.t = get_pts t (Nvar (inst, v.Instr.v_id))

let pts_field t ~obj_id ~(fr : Instr.fref) : IntSet.t = get_pts t (Nfld (obj_id, fld t fr))

let pts_static t (fr : Instr.fref) : IntSet.t = get_pts t (Nstatic (fld t fr))

let instances t = Array.to_list (Array.sub t.insts 0 t.n_insts)

let n_instances t = t.n_insts

let n_objects t = t.n_objs

let edges t = t.edges

let roots t = t.roots

let passes t = t.passes

let visits t = t.visits

let steps t = t.steps

let tuples t = t.tuples

(* Structural equality of two solved states — interning tables, points-to
   sets, call edges and roots. Used by the worklist/reference equivalence
   gate; because the worklist emulates the reference interning order this
   is plain equality, not equality-modulo-renaming. *)
let equal_results a b =
  let pts_subset p q =
    NodeTbl.fold
      (fun node c acc ->
        acc
        && IntSet.equal c.c_pts
             (match NodeTbl.find_opt q node with
             | Some c' -> c'.c_pts
             | None -> IntSet.empty))
      p true
  in
  a.n_objs = b.n_objs
  && a.n_insts = b.n_insts
  && Array.sub a.objs 0 a.n_objs = Array.sub b.objs 0 b.n_objs
  && Array.sub a.insts 0 a.n_insts = Array.sub b.insts 0 b.n_insts
  && pts_subset a.pts b.pts && pts_subset b.pts a.pts
  && a.edges = b.edges && a.roots = b.roots

(* Ordinary-call successors of an instance (intra-thread closure), off a
   lazily built adjacency index: client traversals (escape, lockset)
   query successors for every reachable instance, so the former full
   [edges] scan per query was quadratic in practice. Bucket order matches
   the order the full scan produced. *)
let ordinary_succs t inst =
  let idx =
    match t.succ_idx with
    | Some idx -> idx
    | None ->
        let idx = Hashtbl.create (max 64 t.n_insts) in
        List.iter
          (fun e ->
            if e.ce_kind = E_ordinary then
              Hashtbl.replace idx e.ce_from
                (e.ce_to :: Option.value ~default:[] (Hashtbl.find_opt idx e.ce_from)))
          t.edges;
        Hashtbl.filter_map_inplace (fun _ succs -> Some (List.rev succs)) idx;
        t.succ_idx <- Some idx;
        idx
  in
  Option.value ~default:[] (Hashtbl.find_opt idx inst)

(* Instances reachable from [entry] through ordinary calls, memoized:
   every downstream client (escape counting, forest expansion, access
   collection, filters) closes over the same few dozen thread entries. *)
let intra_instances t entry : IntSet.t =
  match Hashtbl.find_opt t.intra_cache entry with
  | Some s -> s
  | None ->
      let mark = Bytes.make (max (entry + 1) t.n_insts) '\000' in
      let acc = ref [] in
      let rec go i =
        if Bytes.get mark i = '\000' then begin
          Bytes.set mark i '\001';
          acc := i :: !acc;
          List.iter go (ordinary_succs t i)
        end
      in
      go entry;
      let s = IntSet.of_list !acc in
      Hashtbl.replace t.intra_cache entry s;
      s

(* All objects stored anywhere in a field of [oid] — the heap-reachability
   step used by the escape analysis. *)
let field_succs t oid =
  NodeTbl.fold
    (fun node c acc ->
      match node with
      | Nfld (o, _) when o = oid -> IntSet.union c.c_pts acc
      | Nfld _ | Nvar _ | Nstatic _ | Nret _ -> acc)
    t.pts IntSet.empty

let static_objs t =
  NodeTbl.fold
    (fun node c acc ->
      match node with
      | Nstatic _ -> IntSet.union c.c_pts acc
      | Nfld _ | Nvar _ | Nret _ -> acc)
    t.pts IntSet.empty
