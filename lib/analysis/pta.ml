(* k-object-sensitive points-to analysis with Android framework rules.

   This is the Chord substitute (§5): a field-sensitive, flow-insensitive,
   k-object-sensitive (k configurable, default 2) points-to analysis whose
   on-the-fly call graph includes the framework's callback dispatch:
   posting a Runnable creates an edge to its [run], binding a service
   connection creates edges to [onServiceConnected]/[onServiceDisconnected],
   and so on (see {!Nadroid_android.Api}).

   Roots are the entry callbacks of discovered components; the framework
   is modelled as allocating one object per component ("dummy main").

   The solver iterates all reachable method instances to a fixpoint —
   precision matches the classic worklist formulation; the corpus
   programs are small enough that simplicity wins. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_android

(* -- abstract objects and contexts -------------------------------------- *)

type ctx = Instr.alloc_site list
(** method context: receiver's allocation string, length <= k *)

type obj = { o_site : Instr.alloc_site; o_hctx : ctx  (** length <= k-1 *) }

let pp_ctx ppf ctx =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ",") Instr.pp_alloc_site) ctx

let pp_obj ppf o = Fmt.pf ppf "%a%a" Instr.pp_alloc_site o.o_site pp_ctx o.o_hctx

let obj_class o = o.o_site.Instr.as_class

let rec take n = function [] -> [] | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

type instance = { i_id : int; i_mref : Instr.mref; i_ctx : ctx }
(** a context-qualified method: the unit of analysis *)

let pp_instance ppf i = Fmt.pf ppf "%a%a" Instr.pp_mref i.i_mref pp_ctx i.i_ctx

type edge_kind = E_ordinary | E_api of Api.kind

type call_edge = {
  ce_from : int;  (** caller instance id *)
  ce_instr : Instr.t;  (** the call instruction *)
  ce_kind : edge_kind;
  ce_to : int;  (** callee instance id *)
}

type root = {
  r_instance : int;
  r_component : Component.t;
  r_method : string;
  r_cb_kind : Callback.kind;
  r_recv : int;  (** object id of the component instance *)
}

(* -- pointer nodes ------------------------------------------------------- *)

type node =
  | Nvar of int * int  (** (instance id, var slot) *)
  | Nfld of int * string  (** (object id, qualified field name) *)
  | Nstatic of string
  | Nret of int  (** return value of an instance *)

module IntSet = Set.Make (Int)

let field_key (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

(* -- solver state -------------------------------------------------------- *)

type t = {
  prog : Prog.t;
  k : int;
  (* object interning *)
  obj_ids : (Instr.alloc_site * ctx, int) Hashtbl.t;
  mutable objs : obj array;
  mutable n_objs : int;
  (* instance interning *)
  inst_ids : (Instr.mref * ctx, int) Hashtbl.t;
  mutable insts : instance array;
  mutable n_insts : int;
  (* points-to sets *)
  pts : (node, IntSet.t ref) Hashtbl.t;
  (* discovered call edges, deduped *)
  edge_seen : (int * int * int, unit) Hashtbl.t;  (* from, instr id, to *)
  mutable edges : call_edge list;
  mutable roots : root list;
  (* synthetic allocation sites, by tag *)
  synth_sites : (string, Instr.alloc_site) Hashtbl.t;
  mutable changed : bool;
  mutable passes : int;
  (* resource budget: instruction transfers executed / allowed *)
  mutable steps : int;
  budget : int option;
}

exception Out_of_budget

let create ?(k = 2) ?budget (prog : Prog.t) : t =
  {
    prog;
    k;
    obj_ids = Hashtbl.create 256;
    objs = Array.make 256 { o_site = { Instr.as_method = { Instr.mr_class = ""; mr_name = "" }; as_idx = 0; as_class = ""; as_loc = Loc.dummy }; o_hctx = [] };
    n_objs = 0;
    inst_ids = Hashtbl.create 256;
    insts = Array.make 256 { i_id = 0; i_mref = { Instr.mr_class = ""; mr_name = "" }; i_ctx = [] };
    n_insts = 0;
    pts = Hashtbl.create 1024;
    edge_seen = Hashtbl.create 256;
    edges = [];
    roots = [];
    synth_sites = Hashtbl.create 32;
    changed = false;
    passes = 0;
    steps = 0;
    budget;
  }

let obj t id = t.objs.(id)

let instance t id = t.insts.(id)

let intern_obj t site hctx : int =
  let key = (site, hctx) in
  match Hashtbl.find_opt t.obj_ids key with
  | Some id -> id
  | None ->
      let id = t.n_objs in
      t.n_objs <- id + 1;
      if id >= Array.length t.objs then begin
        let bigger = Array.make (2 * Array.length t.objs) t.objs.(0) in
        Array.blit t.objs 0 bigger 0 (Array.length t.objs);
        t.objs <- bigger
      end;
      t.objs.(id) <- { o_site = site; o_hctx = hctx };
      Hashtbl.add t.obj_ids key id;
      t.changed <- true;
      id

let intern_instance t mref ctx : int =
  let key = (mref, ctx) in
  match Hashtbl.find_opt t.inst_ids key with
  | Some id -> id
  | None ->
      let id = t.n_insts in
      t.n_insts <- id + 1;
      if id >= Array.length t.insts then begin
        let bigger = Array.make (2 * Array.length t.insts) t.insts.(0) in
        Array.blit t.insts 0 bigger 0 (Array.length t.insts);
        t.insts <- bigger
      end;
      t.insts.(id) <- { i_id = id; i_mref = mref; i_ctx = ctx };
      Hashtbl.add t.inst_ids key id;
      t.changed <- true;
      id

let synth_site t ~tag ~cls : Instr.alloc_site =
  match Hashtbl.find_opt t.synth_sites tag with
  | Some s -> s
  | None ->
      let s =
        {
          Instr.as_method = { Instr.mr_class = "@framework"; mr_name = tag };
          as_idx = 0;
          as_class = cls;
          as_loc = Loc.dummy;
        }
      in
      Hashtbl.add t.synth_sites tag s;
      s

let is_synthetic_site (s : Instr.alloc_site) = String.equal s.Instr.as_method.Instr.mr_class "@framework"

(* -- points-to set operations ------------------------------------------- *)

let get_pts t node =
  match Hashtbl.find_opt t.pts node with
  | Some s -> !s
  | None -> IntSet.empty

let add_pts t node objs =
  if not (IntSet.is_empty objs) then
    match Hashtbl.find_opt t.pts node with
    | Some s ->
        let u = IntSet.union !s objs in
        if not (IntSet.equal u !s) then begin
          s := u;
          t.changed <- true
        end
    | None ->
        Hashtbl.add t.pts node (ref objs);
        t.changed <- true

let add_obj t node oid = add_pts t node (IntSet.singleton oid)

(* -- contexts ------------------------------------------------------------ *)

(* Method context for an invocation whose receiver is [o]. *)
let ctx_of_recv t (o : obj) : ctx = take t.k (o.o_site :: o.o_hctx)

(* Heap context for an allocation inside method context [ctx]. *)
let heap_ctx t (ctx : ctx) : ctx = take (max 0 (t.k - 1)) ctx

(* -- call handling -------------------------------------------------------- *)

let record_edge t ~from ~(instr : Instr.t) ~kind ~target =
  let key = (from, instr.Instr.id, target) in
  if not (Hashtbl.mem t.edge_seen key) then begin
    Hashtbl.add t.edge_seen key ();
    t.edges <- { ce_from = from; ce_instr = instr; ce_kind = kind; ce_to = target } :: t.edges;
    t.changed <- true
  end

(* Bind a call: receiver object, argument nodes, optional return dst. *)
let bind_call t ~caller ~(instr : Instr.t) ~kind ~recv_obj ~(target : Sema.rmeth)
    ~(arg_pts : IntSet.t list) ~(dst : Instr.var option) =
  let mref = { Instr.mr_class = target.Sema.rm_class; mr_name = target.Sema.rm_name } in
  let ctx = ctx_of_recv t (obj t recv_obj) in
  let callee = intern_instance t mref ctx in
  record_edge t ~from:caller ~instr ~kind ~target:callee;
  match Prog.body t.prog mref with
  | None -> ()
  | Some body ->
      (* params.(0) is [this] *)
      let params = body.Cfg.params in
      (match params with
      | this :: rest ->
          add_obj t (Nvar (callee, this.Instr.v_id)) recv_obj;
          List.iteri
            (fun i p ->
              match List.nth_opt arg_pts i with
              | Some s -> add_pts t (Nvar (callee, p.Instr.v_id)) s
              | None -> ())
            rest
      | [] -> ());
      (match dst with
      | Some d -> add_pts t (Nvar (caller, d.Instr.v_id)) (get_pts t (Nret callee))
      | None -> ())

(* Dispatch [meth] on every object of [objs]; builtin (empty) bodies are
   skipped unless they are one of the real-bodied helpers. *)
let dispatch_objs t ~caller ~instr ~kind ~objs ~meth ~arg_pts ~dst =
  IntSet.iter
    (fun oid ->
      let cls = obj_class (obj t oid) in
      match Sema.dispatch t.prog.Prog.sema cls meth with
      | None -> ()
      | Some m ->
          let decl = Sema.get_class t.prog.Prog.sema m.Sema.rm_class in
          let real_builtin_body =
            match (m.Sema.rm_class, m.Sema.rm_name) with
            | "Thread", "init" | "Message", "init" -> true
            | _, _ -> false
          in
          if (not decl.Sema.rc_builtin) || real_builtin_body then
            bind_call t ~caller ~instr ~kind ~recv_obj:oid ~target:m ~arg_pts ~dst)
    objs

(* A synthetic framework-created argument object (Intent delivered to
   onReceive, View passed to onClick, ...). One per (callsite, class). *)
let synth_arg t ~caller ~(instr : Instr.t) ~cls : IntSet.t =
  let i = instance t caller in
  let tag =
    Fmt.str "@arg:%a#%d:%s" Instr.pp_mref i.i_mref instr.Instr.id cls
  in
  IntSet.singleton (intern_obj t (synth_site t ~tag ~cls) [])

(* -- instruction transfer -------------------------------------------------- *)

let transfer_call t ~caller (instr : Instr.t) dst recv ms args =
  let var v = Nvar (caller, v.Instr.v_id) in
  let recv_pts = get_pts t (var recv) in
  let arg_pts = List.map (fun a -> get_pts t (var a)) args in
  let kind = Api.classify ms in
  match kind with
  | Api.Other ->
      dispatch_objs t ~caller ~instr ~kind:E_ordinary ~objs:recv_pts ~meth:ms.Sema.ms_name
        ~arg_pts ~dst;
      (* opaque framework factory methods return synthetic objects *)
      if Api.opaque_builtin t.prog.Prog.sema ms then begin
        match (dst, ms.Sema.ms_ret) with
        | Some d, Ast.Tclass cls ->
            add_pts t (var d) (synth_arg t ~caller ~instr ~cls)
        | (Some _ | None), (Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid | Ast.Tclass _) -> ()
      end
  | Api.Spawn Api.Spawn_thread ->
      (* run() of the target runnable stored in the Thread object *)
      IntSet.iter
        (fun tid ->
          let targets = get_pts t (Nfld (tid, "Thread.target")) in
          dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:targets ~meth:"run"
            ~arg_pts:[] ~dst:None)
        recv_pts
  | Api.Spawn Api.Spawn_executor | Api.Post Api.Post_runnable ->
      let runnables = match arg_pts with r :: _ -> r | [] -> IntSet.empty in
      dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:runnables ~meth:"run" ~arg_pts:[]
        ~dst:None
  | Api.Spawn Api.Spawn_async_task ->
      List.iter
        (fun cb ->
          let cb_args =
            match cb with
            | "onProgressUpdate" -> [ IntSet.empty ]  (* int arg *)
            | _ -> []
          in
          dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:recv_pts ~meth:cb
            ~arg_pts:cb_args ~dst:None)
        (Api.triggered_callbacks kind)
  | Api.Post Api.Post_message ->
      let msg_pts =
        match (ms.Sema.ms_name, arg_pts) with
        | "sendMessage", m :: _ -> m
        | _, _ -> synth_arg t ~caller ~instr ~cls:"Message"
      in
      dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:recv_pts ~meth:"handleMessage"
        ~arg_pts:[ msg_pts ] ~dst:None
  | Api.Register reg ->
      let listeners = match arg_pts with l :: _ -> l | [] -> IntSet.empty in
      List.iter
        (fun cb ->
          let cb_args =
            match (reg, cb) with
            | Api.Reg_service, "onServiceConnected" ->
                [ synth_arg t ~caller ~instr ~cls:"Binder" ]
            | Api.Reg_service, _ -> []
            | Api.Reg_receiver, _ -> [ synth_arg t ~caller ~instr ~cls:"Intent" ]
            | (Api.Reg_click | Api.Reg_long_click), _ ->
                [ synth_arg t ~caller ~instr ~cls:"View" ]
            | Api.Reg_location, _ -> [ synth_arg t ~caller ~instr ~cls:"Location" ]
            | Api.Reg_sensor, _ -> [ IntSet.empty ]
          in
          dispatch_objs t ~caller ~instr ~kind:(E_api kind) ~objs:listeners ~meth:cb
            ~arg_pts:cb_args ~dst:None)
        (Api.triggered_callbacks kind)
  | Api.Cancel _ -> ()

let transfer_instr t ~caller (ins : Instr.t) =
  let var v = Nvar (caller, v.Instr.v_id) in
  match ins.Instr.i with
  | Instr.Move (d, s) -> add_pts t (var d) (get_pts t (var s))
  | Instr.Const _ -> ()
  | Instr.New (d, site, init, args) -> (
      let i = instance t caller in
      let oid = intern_obj t site (heap_ctx t i.i_ctx) in
      add_obj t (var d) oid;
      match init with
      | None -> ()
      | Some ms ->
          let arg_pts = List.map (fun a -> get_pts t (var a)) args in
          dispatch_objs t ~caller ~instr:ins ~kind:E_ordinary ~objs:(IntSet.singleton oid)
            ~meth:ms.Sema.ms_name ~arg_pts ~dst:None)
  | Instr.Getfield (d, o, fr) ->
      IntSet.iter
        (fun oid -> add_pts t (var d) (get_pts t (Nfld (oid, field_key fr))))
        (get_pts t (var o))
  | Instr.Putfield (o, fr, s, Instr.Src_var) ->
      let src = get_pts t (var s) in
      IntSet.iter (fun oid -> add_pts t (Nfld (oid, field_key fr)) src) (get_pts t (var o))
  | Instr.Putfield (_, _, _, Instr.Src_null) -> ()
  | Instr.Getstatic (d, fr) -> add_pts t (var d) (get_pts t (Nstatic (field_key fr)))
  | Instr.Putstatic (fr, s, Instr.Src_var) ->
      add_pts t (Nstatic (field_key fr)) (get_pts t (var s))
  | Instr.Putstatic (_, _, Instr.Src_null) -> ()
  | Instr.Call (dst, recv, ms, args) -> transfer_call t ~caller ins dst recv ms args
  | Instr.Intrinsic _ -> ()
  | Instr.Unop _ | Instr.Binop _ -> ()
  | Instr.Monitor_enter _ | Instr.Monitor_exit _ -> ()

(* Return statements feed the instance's return node. *)
let transfer_returns t ~caller (body : Cfg.body) =
  Array.iter
    (fun blk ->
      match blk.Cfg.b_term with
      | Cfg.Ret (Some v) -> add_pts t (Nret caller) (get_pts t (Nvar (caller, v.Instr.v_id)))
      | Cfg.Ret None | Cfg.Goto _ | Cfg.If _ -> ())
    body.Cfg.blocks

(* -- roots ---------------------------------------------------------------- *)

let seed_roots t =
  let sema = t.prog.Prog.sema in
  let components = Component.discover sema in
  List.iter
    (fun (comp : Component.t) ->
      let site = synth_site t ~tag:("@component:" ^ comp.Component.cls) ~cls:comp.Component.cls in
      let recv = intern_obj t site [] in
      List.iter
        (fun (meth, cb_kind) ->
          match Sema.dispatch sema comp.Component.cls meth with
          | None -> ()
          | Some m ->
              let mref = { Instr.mr_class = m.Sema.rm_class; mr_name = m.Sema.rm_name } in
              let ctx = ctx_of_recv t (obj t recv) in
              let inst = intern_instance t mref ctx in
              (match Prog.body t.prog mref with
              | None -> ()
              | Some body -> (
                  match body.Cfg.params with
                  | this :: rest ->
                      add_obj t (Nvar (inst, this.Instr.v_id)) recv;
                      (* framework-supplied arguments *)
                      List.iter
                        (fun (p : Instr.var) ->
                          let pty =
                            List.find_map
                              (fun (ty, name) ->
                                if String.equal name p.Instr.v_name then Some ty else None)
                              (match Sema.dispatch sema comp.Component.cls meth with
                              | Some m -> m.Sema.rm_params
                              | None -> [])
                          in
                          match pty with
                          | Some (Ast.Tclass cls) ->
                              let tag =
                                Fmt.str "@entryarg:%s.%s.%s" comp.Component.cls meth
                                  p.Instr.v_name
                              in
                              add_obj t
                                (Nvar (inst, p.Instr.v_id))
                                (intern_obj t (synth_site t ~tag ~cls) [])
                          | Some (Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid) | None -> ())
                        rest
                  | [] -> ()));
              t.roots <-
                {
                  r_instance = inst;
                  r_component = comp;
                  r_method = meth;
                  r_cb_kind = cb_kind;
                  r_recv = recv;
                }
                :: t.roots)
        comp.Component.entry_callbacks)
    components;
  t.roots <- List.rev t.roots

(* -- fixpoint -------------------------------------------------------------- *)

(* One budget tick per instruction transfer. The count is deterministic
   for a given program and k, which keeps budget-exhaustion behaviour
   reproducible in tests (unlike a wall-clock deadline). *)
let tick t =
  t.steps <- t.steps + 1;
  match t.budget with
  | Some b when t.steps > b -> raise Out_of_budget
  | Some _ | None -> ()

let solve t =
  seed_roots t;
  t.changed <- true;
  while t.changed do
    t.changed <- false;
    t.passes <- t.passes + 1;
    (* iterate over a snapshot: new instances found this pass are
       processed in the next one *)
    let n = t.n_insts in
    for i = 0 to n - 1 do
      let inst = instance t i in
      match Prog.body t.prog inst.i_mref with
      | None -> ()
      | Some body ->
          Cfg.iter_instrs
            (fun ins ->
              tick t;
              transfer_instr t ~caller:i ins)
            body;
          transfer_returns t ~caller:i body
    done
  done

(* -- result API ------------------------------------------------------------ *)

let run ?k prog =
  let t = create ?k prog in
  solve t;
  t

let run_budgeted ~steps ?k prog =
  let t = create ?k ~budget:steps prog in
  match solve t with () -> Some t | exception Out_of_budget -> None

let pts_var t ~inst ~(v : Instr.var) : IntSet.t = get_pts t (Nvar (inst, v.Instr.v_id))

let pts_field t ~obj_id ~(fr : Instr.fref) : IntSet.t = get_pts t (Nfld (obj_id, field_key fr))

let pts_static t (fr : Instr.fref) : IntSet.t = get_pts t (Nstatic (field_key fr))

let instances t = Array.to_list (Array.sub t.insts 0 t.n_insts)

let n_instances t = t.n_insts

let n_objects t = t.n_objs

let edges t = t.edges

let roots t = t.roots

let passes t = t.passes

(* Ordinary-call successors of an instance (intra-thread closure). *)
let ordinary_succs t inst =
  List.filter_map
    (fun e -> if e.ce_from = inst && e.ce_kind = E_ordinary then Some e.ce_to else None)
    t.edges

(* All objects stored anywhere in a field of [oid] — the heap-reachability
   step used by the escape analysis. *)
let field_succs t oid =
  Hashtbl.fold
    (fun node s acc ->
      match node with
      | Nfld (o, _) when o = oid -> IntSet.union !s acc
      | Nfld _ | Nvar _ | Nstatic _ | Nret _ -> acc)
    t.pts IntSet.empty

let static_objs t =
  Hashtbl.fold
    (fun node s acc ->
      match node with
      | Nstatic _ -> IntSet.union !s acc
      | Nfld _ | Nvar _ | Nret _ -> acc)
    t.pts IntSet.empty
