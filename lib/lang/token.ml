(* Lexical tokens of MiniAndroid. *)

type t =
  (* literals and names *)
  | INT of int
  | STRING of string
  | IDENT of string  (** lowercase-initial identifier *)
  | UIDENT of string  (** uppercase-initial identifier: class names *)
  (* keywords *)
  | KW_CLASS
  | KW_EXTENDS
  | KW_FIELD
  | KW_STATIC
  | KW_METHOD
  | KW_VAR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_NEW
  | KW_NULL
  | KW_THIS
  | KW_TRUE
  | KW_FALSE
  | KW_SYNCHRONIZED
  | KW_INT
  | KW_BOOL
  | KW_STRING
  | KW_VOID
  (* punctuation *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | COMMA
  | DOT
  (* operators *)
  | ASSIGN  (** [=] *)
  | EQ  (** [==] *)
  | NE  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ANDAND
  | OROR
  | BANG
  | EOF

let keyword_table : (string * t) list =
  [
    ("class", KW_CLASS);
    ("extends", KW_EXTENDS);
    ("field", KW_FIELD);
    ("static", KW_STATIC);
    ("method", KW_METHOD);
    ("var", KW_VAR);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("return", KW_RETURN);
    ("new", KW_NEW);
    ("null", KW_NULL);
    ("this", KW_THIS);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("synchronized", KW_SYNCHRONIZED);
    ("int", KW_INT);
    ("bool", KW_BOOL);
    ("string", KW_STRING);
    ("void", KW_VOID);
  ]

(* The lexer hits this on every identifier, so the lookup is a hash
   table rather than a 20-entry assoc scan. *)
let keyword_tbl : (string, t) Hashtbl.t Lazy.t =
  lazy
    (let h = Hashtbl.create 64 in
     List.iter (fun (k, v) -> Hashtbl.add h k v) keyword_table;
     h)

let keyword_of_string s = Hashtbl.find_opt (Lazy.force keyword_tbl) s

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s | UIDENT s -> s
  | KW_CLASS -> "class"
  | KW_EXTENDS -> "extends"
  | KW_FIELD -> "field"
  | KW_STATIC -> "static"
  | KW_METHOD -> "method"
  | KW_VAR -> "var"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_NEW -> "new"
  | KW_NULL -> "null"
  | KW_THIS -> "this"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_SYNCHRONIZED -> "synchronized"
  | KW_INT -> "int"
  | KW_BOOL -> "bool"
  | KW_STRING -> "string"
  | KW_VOID -> "void"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b
