(** Table-driven lexer for MiniAndroid.

    Operates on whole in-memory strings (corpus apps are embedded
    sources), tracks line/column positions, skips [//] line comments and
    non-nesting [/* */] block comments, and skips a leading UTF-8 BOM.
    The hot path dispatches on a 256-entry character-class table, so no
    option is allocated per scanned byte. Lexical errors raise
    {!Diag.Error}. *)

type t

val create : file:string -> string -> t
(** A lexer over [src]. A leading UTF-8 byte-order mark is skipped
    without charging the column: the first real token is still 1:1. *)

val next : t -> Token.t * Loc.t
(** The next token and its start location; returns {!Token.EOF} at the
    end of input and keeps returning it afterwards. *)

val tokens : file:string -> string -> (Token.t * Loc.t) array
(** The whole token stream as one batch-allocated array, ending with a
    single {!Token.EOF}. This is the parser's input representation. *)

val tokenize : file:string -> string -> (Token.t * Loc.t) list
(** The whole token stream as a list, ending with a single
    {!Token.EOF}. [Array.to_list (tokens ~file src)]. *)

(** The previous option-based lexer, kept verbatim (plus the BOM and
    escape-location fixes shared with the table-driven path) as a
    differential oracle for the frontend-equivalence tests. *)
module Reference : sig
  val tokens : file:string -> string -> (Token.t * Loc.t) array
end
