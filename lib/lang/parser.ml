(* Recursive-descent parser for MiniAndroid.

   The grammar is LL(2); the only place two tokens of lookahead are needed
   is distinguishing an assignment [lhs = e;] from an expression statement,
   which we instead resolve by parsing an expression first and inspecting
   the following token (the parsed expression is reinterpreted as an
   l-value when an [=] follows).

   Anonymous inner classes — [new Runnable() { method void run() {...} }]
   — are hoisted here into fresh top-level classes named ["Outer$n"]; the
   allocation site becomes a plain [New] of the hoisted class. *)

type t = {
  toks : (Token.t * Loc.t) array;  (* always ends with a single EOF *)
  mutable cursor : int;
  mutable hoisted : Ast.cls list;  (* anonymous classes, in reverse order *)
  mutable anon_counter : int;
  file : string;
}

(* The cursor walks a batch-allocated token array ({!Lexer.tokens})
   instead of consuming a cons cell per token; [of_tokens] also lets the
   equivalence tests drive the parser from the reference lexer. *)
let of_tokens ~file toks = { toks; cursor = 0; hoisted = []; anon_counter = 0; file }

let create ~file src = of_tokens ~file (Lexer.tokens ~file src)

let peek p =
  if p.cursor < Array.length p.toks then Array.unsafe_get p.toks p.cursor
  else (Token.EOF, Loc.dummy)

let peek_tok p = fst (peek p)

let advance p = if p.cursor < Array.length p.toks then p.cursor <- p.cursor + 1

let cur_loc p = snd (peek p)

let err p fmt = Diag.error ~loc:(cur_loc p) fmt

let expect p tok =
  let got, l = peek p in
  if Token.equal got tok then advance p
  else
    Diag.error ~loc:l "expected `%s` but found `%s`" (Token.to_string tok) (Token.to_string got)

let expect_ident p =
  match peek p with
  | Token.IDENT s, _ ->
      advance p;
      s
  | got, l -> Diag.error ~loc:l "expected identifier but found `%s`" (Token.to_string got)

let expect_uident p =
  match peek p with
  | Token.UIDENT s, _ ->
      advance p;
      s
  | got, l -> Diag.error ~loc:l "expected class name but found `%s`" (Token.to_string got)

let parse_ty p =
  match peek p with
  | Token.KW_INT, _ ->
      advance p;
      Ast.Tint
  | Token.KW_BOOL, _ ->
      advance p;
      Ast.Tbool
  | Token.KW_STRING, _ ->
      advance p;
      Ast.Tstring
  | Token.KW_VOID, _ ->
      advance p;
      Ast.Tvoid
  | Token.UIDENT s, _ ->
      advance p;
      Ast.Tclass s
  | got, l -> Diag.error ~loc:l "expected a type but found `%s`" (Token.to_string got)

(* -- expressions ------------------------------------------------------ *)

let rec parse_expr p outer = parse_or p outer

and parse_or p outer =
  let lhs = parse_and p outer in
  match peek_tok p with
  | Token.OROR ->
      let l = cur_loc p in
      advance p;
      let rhs = parse_or p outer in
      Ast.expr ~loc:l (Ast.Binop (Ast.Or, lhs, rhs))
  | _ -> lhs

and parse_and p outer =
  let lhs = parse_equality p outer in
  match peek_tok p with
  | Token.ANDAND ->
      let l = cur_loc p in
      advance p;
      let rhs = parse_and p outer in
      Ast.expr ~loc:l (Ast.Binop (Ast.And, lhs, rhs))
  | _ -> lhs

and parse_equality p outer =
  let lhs = parse_relational p outer in
  match peek_tok p with
  | Token.EQ | Token.NE ->
      let op = if Token.equal (peek_tok p) Token.EQ then Ast.Eq else Ast.Ne in
      let l = cur_loc p in
      advance p;
      let rhs = parse_relational p outer in
      Ast.expr ~loc:l (Ast.Binop (op, lhs, rhs))
  | _ -> lhs

and parse_relational p outer =
  let lhs = parse_additive p outer in
  match peek_tok p with
  | Token.LT | Token.LE | Token.GT | Token.GE ->
      let op =
        match peek_tok p with
        | Token.LT -> Ast.Lt
        | Token.LE -> Ast.Le
        | Token.GT -> Ast.Gt
        | _ -> Ast.Ge
      in
      let l = cur_loc p in
      advance p;
      let rhs = parse_additive p outer in
      Ast.expr ~loc:l (Ast.Binop (op, lhs, rhs))
  | _ -> lhs

and parse_additive p outer =
  let rec go lhs =
    match peek_tok p with
    | Token.PLUS | Token.MINUS ->
        let op = if Token.equal (peek_tok p) Token.PLUS then Ast.Add else Ast.Sub in
        let l = cur_loc p in
        advance p;
        let rhs = parse_multiplicative p outer in
        go (Ast.expr ~loc:l (Ast.Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  go (parse_multiplicative p outer)

and parse_multiplicative p outer =
  let rec go lhs =
    match peek_tok p with
    | Token.STAR | Token.SLASH | Token.PERCENT ->
        let op =
          match peek_tok p with
          | Token.STAR -> Ast.Mul
          | Token.SLASH -> Ast.Div
          | _ -> Ast.Mod
        in
        let l = cur_loc p in
        advance p;
        let rhs = parse_unary p outer in
        go (Ast.expr ~loc:l (Ast.Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  go (parse_unary p outer)

and parse_unary p outer =
  match peek_tok p with
  | Token.BANG ->
      let l = cur_loc p in
      advance p;
      Ast.expr ~loc:l (Ast.Unop (Ast.Not, parse_unary p outer))
  | Token.MINUS ->
      let l = cur_loc p in
      advance p;
      Ast.expr ~loc:l (Ast.Unop (Ast.Neg, parse_unary p outer))
  | _ -> parse_postfix p outer

and parse_postfix p outer =
  let rec go recv =
    match peek_tok p with
    | Token.DOT -> (
        advance p;
        let l = cur_loc p in
        let name = expect_ident p in
        match peek_tok p with
        | Token.LPAREN ->
            let args = parse_args p outer in
            go (Ast.expr ~loc:l (Ast.Call (Some recv, name, args)))
        | _ -> go (Ast.expr ~loc:l (Ast.FieldAcc (recv, name))))
    | _ -> recv
  in
  go (parse_primary p outer)

and parse_args p outer =
  expect p Token.LPAREN;
  let rec go acc =
    match peek_tok p with
    | Token.RPAREN ->
        advance p;
        List.rev acc
    | _ -> (
        let e = parse_expr p outer in
        match peek_tok p with
        | Token.COMMA ->
            advance p;
            go (e :: acc)
        | Token.RPAREN ->
            advance p;
            List.rev (e :: acc)
        | got -> err p "expected `,` or `)` in argument list but found `%s`" (Token.to_string got))
  in
  go []

and parse_primary p outer =
  let tok, l = peek p in
  match tok with
  | Token.KW_NULL ->
      advance p;
      Ast.expr ~loc:l Ast.Null
  | Token.KW_THIS ->
      advance p;
      Ast.expr ~loc:l Ast.This
  | Token.INT n ->
      advance p;
      Ast.expr ~loc:l (Ast.IntLit n)
  | Token.KW_TRUE ->
      advance p;
      Ast.expr ~loc:l (Ast.BoolLit true)
  | Token.KW_FALSE ->
      advance p;
      Ast.expr ~loc:l (Ast.BoolLit false)
  | Token.STRING s ->
      advance p;
      Ast.expr ~loc:l (Ast.StrLit s)
  | Token.KW_NEW -> parse_new p outer l
  | Token.IDENT name -> (
      advance p;
      match peek_tok p with
      | Token.LPAREN ->
          let args = parse_args p outer in
          Ast.expr ~loc:l (Ast.Call (None, name, args))
      | _ -> Ast.expr ~loc:l (Ast.Name name))
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p outer in
      expect p Token.RPAREN;
      e
  | got -> Diag.error ~loc:l "expected an expression but found `%s`" (Token.to_string got)

and parse_new p outer l =
  expect p Token.KW_NEW;
  let cname = expect_uident p in
  let args = parse_args p outer in
  match peek_tok p with
  | Token.LBRACE ->
      (* anonymous subclass of [cname], hoisted to top level *)
      p.anon_counter <- p.anon_counter + 1;
      let anon_name = Printf.sprintf "%s$%d" outer p.anon_counter in
      let fields, methods = parse_members p anon_name in
      let cls =
        {
          Ast.c_name = anon_name;
          c_super = Some cname;
          c_fields = fields;
          c_methods = methods;
          c_anon = true;
          c_outer = Some outer;
          c_loc = l;
        }
      in
      p.hoisted <- cls :: p.hoisted;
      Ast.expr ~loc:l (Ast.New (anon_name, args))
  | _ -> Ast.expr ~loc:l (Ast.New (cname, args))

(* -- statements ------------------------------------------------------- *)

and parse_block p outer =
  expect p Token.LBRACE;
  let rec go acc =
    match peek_tok p with
    | Token.RBRACE ->
        advance p;
        List.rev acc
    | Token.EOF -> err p "unterminated block (missing `}`)"
    | _ -> go (parse_stmt p outer :: acc)
  in
  go []

and parse_stmt p outer : Ast.stmt =
  let tok, l = peek p in
  match tok with
  | Token.KW_VAR ->
      advance p;
      let ty = parse_ty p in
      let name = expect_ident p in
      let init =
        match peek_tok p with
        | Token.ASSIGN ->
            advance p;
            Some (parse_expr p outer)
        | _ -> None
      in
      expect p Token.SEMI;
      Ast.stmt ~loc:l (Ast.Decl (ty, name, init))
  | Token.KW_IF ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p outer in
      expect p Token.RPAREN;
      let then_b = parse_block p outer in
      let else_b =
        match peek_tok p with
        | Token.KW_ELSE -> (
            advance p;
            match peek_tok p with
            | Token.KW_IF -> [ parse_stmt p outer ]
            | _ -> parse_block p outer)
        | _ -> []
      in
      Ast.stmt ~loc:l (Ast.If (cond, then_b, else_b))
  | Token.KW_WHILE ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p outer in
      expect p Token.RPAREN;
      let body = parse_block p outer in
      Ast.stmt ~loc:l (Ast.While (cond, body))
  | Token.KW_RETURN ->
      advance p;
      let e =
        match peek_tok p with Token.SEMI -> None | _ -> Some (parse_expr p outer)
      in
      expect p Token.SEMI;
      Ast.stmt ~loc:l (Ast.Return e)
  | Token.KW_SYNCHRONIZED ->
      advance p;
      expect p Token.LPAREN;
      let lock = parse_expr p outer in
      expect p Token.RPAREN;
      let body = parse_block p outer in
      Ast.stmt ~loc:l (Ast.Sync (lock, body))
  | Token.LBRACE -> Ast.stmt ~loc:l (Ast.BlockStmt (parse_block p outer))
  | _ -> (
      let e = parse_expr p outer in
      match peek_tok p with
      | Token.ASSIGN -> (
          advance p;
          let rhs = parse_expr p outer in
          expect p Token.SEMI;
          match e.Ast.e with
          | Ast.Name x -> Ast.stmt ~loc:l (Ast.AssignName (x, rhs))
          | Ast.FieldAcc (r, f) -> Ast.stmt ~loc:l (Ast.AssignField (r, f, rhs))
          | Ast.Null | Ast.This | Ast.IntLit _ | Ast.BoolLit _ | Ast.StrLit _ | Ast.Call _
          | Ast.New _ | Ast.Unop _ | Ast.Binop _ ->
              Diag.error ~loc:l "left-hand side of assignment is not assignable")
      | _ ->
          expect p Token.SEMI;
          Ast.stmt ~loc:l (Ast.Expr e))

(* -- declarations ------------------------------------------------------ *)

and parse_members p cls_name : Ast.field list * Ast.meth list =
  expect p Token.LBRACE;
  let fields = ref [] in
  let methods = ref [] in
  let rec go () =
    match peek p with
    | Token.RBRACE, _ -> advance p
    | Token.EOF, l -> Diag.error ~loc:l "unterminated class body (missing `}`)"
    | Token.KW_STATIC, l ->
        advance p;
        expect p Token.KW_FIELD;
        let ty = parse_ty p in
        let name = expect_ident p in
        expect p Token.SEMI;
        fields := { Ast.f_name = name; f_ty = ty; f_static = true; f_loc = l } :: !fields;
        go ()
    | Token.KW_FIELD, l ->
        advance p;
        let ty = parse_ty p in
        let name = expect_ident p in
        expect p Token.SEMI;
        fields := { Ast.f_name = name; f_ty = ty; f_static = false; f_loc = l } :: !fields;
        go ()
    | Token.KW_METHOD, l ->
        advance p;
        let ret = parse_ty p in
        let name = expect_ident p in
        let params = parse_params p in
        let body = parse_block p cls_name in
        methods :=
          { Ast.m_name = name; m_ret = ret; m_params = params; m_body = body; m_loc = l }
          :: !methods;
        go ()
    | got, l ->
        Diag.error ~loc:l "expected `field`, `method` or `}` but found `%s`"
          (Token.to_string got)
  in
  go ();
  (List.rev !fields, List.rev !methods)

and parse_params p =
  expect p Token.LPAREN;
  let rec go acc =
    match peek_tok p with
    | Token.RPAREN ->
        advance p;
        List.rev acc
    | _ -> (
        let ty = parse_ty p in
        let name = expect_ident p in
        match peek_tok p with
        | Token.COMMA ->
            advance p;
            go ((ty, name) :: acc)
        | Token.RPAREN ->
            advance p;
            List.rev ((ty, name) :: acc)
        | got -> err p "expected `,` or `)` in parameter list but found `%s`" (Token.to_string got)
        )
  in
  go []

let parse_class p : Ast.cls =
  let _, l = peek p in
  expect p Token.KW_CLASS;
  let name = expect_uident p in
  let super =
    match peek_tok p with
    | Token.KW_EXTENDS ->
        advance p;
        Some (expect_uident p)
    | _ -> None
  in
  let fields, methods = parse_members p name in
  {
    Ast.c_name = name;
    c_super = super;
    c_fields = fields;
    c_methods = methods;
    c_anon = false;
    c_outer = None;
    c_loc = l;
  }

(* Parse a complete program. Hoisted anonymous classes are appended after
   the classes in which they appear. *)
let parse_program_of parser : Ast.program =
  let p = parser in
  let rec go acc =
    match peek p with
    | Token.EOF, _ -> List.rev acc
    | Token.KW_CLASS, _ -> go (parse_class p :: acc)
    | got, l ->
        Diag.error ~loc:l "expected `class` at top level but found `%s`" (Token.to_string got)
  in
  let classes = go [] in
  { Ast.p_classes = classes @ List.rev p.hoisted }

let parse_program ~file src : Ast.program = parse_program_of (create ~file src)

let parse_program_tokens ~file toks : Ast.program = parse_program_of (of_tokens ~file toks)
