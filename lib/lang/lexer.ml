(* Table-driven lexer for MiniAndroid.

   The lexer works on a whole in-memory string (corpus apps are embedded
   sources), tracks line/column positions for diagnostics, and skips both
   [//] line comments and non-nesting [/* */] block comments.

   The hot path dispatches on a 256-entry character-class table instead
   of nested [peek]/[peek2] option matches: classifying a byte is one
   array read and the per-class code paths touch the source with
   [String.unsafe_get] under an explicit bounds check, so no [Some c]
   is ever boxed while scanning. The previous option-based implementation
   is kept verbatim as {!Reference} — a differential oracle for the
   frontend-equivalence tests.

   A leading UTF-8 byte-order mark is skipped by {!create}: editors that
   emit one would otherwise make the very first token fail with an
   "unexpected character" at 1:1. *)

type t = {
  src : string;
  file : string;
  mutable pos : int;  (* byte offset into [src] *)
  mutable line : int;
  mutable col : int;
}

let has_bom src =
  String.length src >= 3 && src.[0] = '\xEF' && src.[1] = '\xBB' && src.[2] = '\xBF'

let create ~file src =
  (* a BOM is encoding metadata, not source: skip it without charging
     the column so the first real token still reports 1:1 *)
  { src; file; pos = (if has_bom src then 3 else 0); line = 1; col = 1 }

let loc lx = Loc.make ~file:lx.file ~line:lx.line ~col:lx.col

let at_end lx = lx.pos >= String.length lx.src

(* -- the dispatch table ------------------------------------------------- *)

(* Character classes; the per-byte table below maps every byte to one.
   [Cpunct] covers the single-byte tokens, [Cop] the [=]/[!]/[<]/[>]
   family whose meaning depends on a following [=]. *)
type cclass =
  | Cother
  | Cws  (* space, tab, carriage return *)
  | Cnl  (* newline *)
  | Cdigit
  | Calpha  (* letters, [_], [$] *)
  | Cquote
  | Cslash  (* [/]: comment opener or division *)
  | Cpunct
  | Cop
  | Camp
  | Cbar

let classes : cclass array =
  let table = Array.make 256 Cother in
  let set c v = table.(Char.code c) <- v in
  set ' ' Cws;
  set '\t' Cws;
  set '\r' Cws;
  set '\n' Cnl;
  for c = Char.code '0' to Char.code '9' do
    table.(c) <- Cdigit
  done;
  for c = Char.code 'a' to Char.code 'z' do
    table.(c) <- Calpha
  done;
  for c = Char.code 'A' to Char.code 'Z' do
    table.(c) <- Calpha
  done;
  set '_' Calpha;
  set '$' Calpha;
  set '"' Cquote;
  set '/' Cslash;
  List.iter
    (fun c -> set c Cpunct)
    [ '{'; '}'; '('; ')'; ';'; ','; '.'; '+'; '-'; '*'; '%' ];
  set '=' Cop;
  set '!' Cop;
  set '<' Cop;
  set '>' Cop;
  set '&' Camp;
  set '|' Cbar;
  table

(* Single-byte tokens, indexed by byte; only meaningful for [Cpunct]. *)
let punct : Token.t array =
  let table = Array.make 256 Token.EOF in
  List.iter
    (fun (c, t) -> table.(Char.code c) <- t)
    [
      ('{', Token.LBRACE);
      ('}', Token.RBRACE);
      ('(', Token.LPAREN);
      (')', Token.RPAREN);
      (';', Token.SEMI);
      (',', Token.COMMA);
      ('.', Token.DOT);
      ('+', Token.PLUS);
      ('-', Token.MINUS);
      ('*', Token.STAR);
      ('%', Token.PERCENT);
    ];
  table

let[@inline] classify c = Array.unsafe_get classes (Char.code c)

(* -- scanning helpers --------------------------------------------------- *)

(* Consume one byte known not to be a newline. *)
let[@inline] bump lx =
  lx.pos <- lx.pos + 1;
  lx.col <- lx.col + 1

let[@inline] bump_nl lx =
  lx.pos <- lx.pos + 1;
  lx.line <- lx.line + 1;
  lx.col <- 1

let rec skip_trivia lx =
  let n = String.length lx.src in
  if lx.pos < n then
    let c = String.unsafe_get lx.src lx.pos in
    match classify c with
    | Cws ->
        bump lx;
        skip_trivia lx
    | Cnl ->
        bump_nl lx;
        skip_trivia lx
    | Cslash when lx.pos + 1 < n -> (
        match String.unsafe_get lx.src (lx.pos + 1) with
        | '/' ->
            while lx.pos < n && String.unsafe_get lx.src lx.pos <> '\n' do
              bump lx
            done;
            skip_trivia lx
        | '*' ->
            let start = loc lx in
            bump lx;
            bump lx;
            skip_block_comment lx start;
            skip_trivia lx
        | _ -> ())
    | Cother | Cdigit | Calpha | Cquote | Cslash | Cpunct | Cop | Camp | Cbar -> ()

and skip_block_comment lx start =
  let n = String.length lx.src in
  let rec go () =
    if lx.pos >= n then Diag.error ~loc:start "unterminated block comment"
    else
      match String.unsafe_get lx.src lx.pos with
      | '*' when lx.pos + 1 < n && String.unsafe_get lx.src (lx.pos + 1) = '/' ->
          bump lx;
          bump lx
      | '\n' ->
          bump_nl lx;
          go ()
      | _ ->
          bump lx;
          go ()
  in
  go ()

let lex_ident lx =
  let n = String.length lx.src in
  let start = lx.pos in
  while
    lx.pos < n
    &&
    match classify (String.unsafe_get lx.src lx.pos) with
    | Calpha | Cdigit -> true
    | Cother | Cws | Cnl | Cquote | Cslash | Cpunct | Cop | Camp | Cbar -> false
  do
    bump lx
  done;
  String.sub lx.src start (lx.pos - start)

let lex_int lx l =
  let n = String.length lx.src in
  let start = lx.pos in
  while
    lx.pos < n
    &&
    let c = String.unsafe_get lx.src lx.pos in
    c >= '0' && c <= '9'
  do
    bump lx
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt s with
  | Some v -> Token.INT v
  | None -> Diag.error ~loc:l "integer literal out of range: %s" s

let lex_string lx l =
  bump lx;
  (* opening quote *)
  let n = String.length lx.src in
  let buf = Buffer.create 16 in
  let rec go () =
    if lx.pos >= n then Diag.error ~loc:l "unterminated string literal"
    else
      match String.unsafe_get lx.src lx.pos with
      | '"' -> bump lx
      | '\\' ->
          (* the diagnostic must point at the backslash that opens the
             escape, so capture the location before consuming it *)
          let esc_loc = loc lx in
          bump lx;
          if lx.pos >= n then Diag.error ~loc:l "unterminated string literal"
          else begin
            (match String.unsafe_get lx.src lx.pos with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | c -> Diag.error ~loc:esc_loc "invalid escape sequence: \\%c" c);
            bump lx;
            go ()
          end
      | '\n' ->
          Buffer.add_char buf '\n';
          bump_nl lx;
          go ()
      | c ->
          Buffer.add_char buf c;
          bump lx;
          go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

(* Returns the next token together with its start location. *)
let next lx : Token.t * Loc.t =
  skip_trivia lx;
  let l = loc lx in
  if at_end lx then (Token.EOF, l)
  else
    let c = String.unsafe_get lx.src lx.pos in
    match classify c with
    | Cdigit -> (lex_int lx l, l)
    | Cquote -> (lex_string lx l, l)
    | Calpha ->
        let s = lex_ident lx in
        let tok =
          match Token.keyword_of_string s with
          | Some kw -> kw
          | None -> if s.[0] >= 'A' && s.[0] <= 'Z' then Token.UIDENT s else Token.IDENT s
        in
        (tok, l)
    | Cpunct ->
        bump lx;
        (Array.unsafe_get punct (Char.code c), l)
    | Cslash ->
        (* a [//] or [/*] here was already consumed by [skip_trivia] *)
        bump lx;
        (Token.SLASH, l)
    | Cop ->
        let eq_follows =
          lx.pos + 1 < String.length lx.src && String.unsafe_get lx.src (lx.pos + 1) = '='
        in
        if eq_follows then begin
          bump lx;
          bump lx;
          ( (match c with
            | '=' -> Token.EQ
            | '!' -> Token.NE
            | '<' -> Token.LE
            | _ -> Token.GE),
            l )
        end
        else begin
          bump lx;
          ( (match c with
            | '=' -> Token.ASSIGN
            | '!' -> Token.BANG
            | '<' -> Token.LT
            | _ -> Token.GT),
            l )
        end
    | Camp | Cbar ->
        let doubled =
          lx.pos + 1 < String.length lx.src && String.unsafe_get lx.src (lx.pos + 1) = c
        in
        if doubled then begin
          bump lx;
          bump lx;
          ((if c = '&' then Token.ANDAND else Token.OROR), l)
        end
        else Diag.error ~loc:l "unexpected character %C (did you mean %c%c?)" c c c
    | Cws | Cnl | Cother -> Diag.error ~loc:l "unexpected character %C" c

(* -- whole-stream entry points ------------------------------------------ *)

(* Tokenize a whole source into one batch-allocated buffer. Tokens land
   in a growable array (geometric doubling, seeded from the source size
   at roughly one token per six bytes of MiniAndroid) instead of a cons
   cell per token; the parser indexes the result directly. *)
let tokens ~file src : (Token.t * Loc.t) array =
  let lx = create ~file src in
  let buf = ref (Array.make (max 64 (String.length src / 6)) (Token.EOF, Loc.dummy)) in
  let len = ref 0 in
  let push tl =
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * Array.length !buf) (Token.EOF, Loc.dummy) in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    Array.unsafe_set !buf !len tl;
    incr len
  in
  let rec go () =
    let ((tok, _) as tl) = next lx in
    push tl;
    match tok with Token.EOF -> () | _ -> go ()
  in
  go ();
  Array.sub !buf 0 !len

(* Tokenize a whole source string; used by tests and by the parser. *)
let tokenize ~file src = Array.to_list (tokens ~file src)

(* -- reference implementation ------------------------------------------- *)

(* The pre-table-driven lexer, kept as a differential oracle: the
   frontend-equivalence tests assert its token stream (and everything
   downstream of it) is identical to the table-driven one on arbitrary
   inputs. Behavioural fixes (BOM skip, escape-diagnostic location)
   apply to both implementations so the only difference under test is
   the dispatch strategy. *)
module Reference = struct
  let create ~file src =
    { src; file; pos = (if has_bom src then 3 else 0); line = 1; col = 1 }

  let peek lx = if at_end lx then None else Some lx.src.[lx.pos]

  let peek2 lx = if lx.pos + 1 >= String.length lx.src then None else Some lx.src.[lx.pos + 1]

  let advance lx =
    (match peek lx with
    | Some '\n' ->
        lx.line <- lx.line + 1;
        lx.col <- 1
    | Some _ -> lx.col <- lx.col + 1
    | None -> ());
    lx.pos <- lx.pos + 1

  let is_digit c = c >= '0' && c <= '9'
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
  let is_ident_char c = is_alpha c || is_digit c

  let rec skip_trivia lx =
    match peek lx with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance lx;
        skip_trivia lx
    | Some '/' -> (
        match peek2 lx with
        | Some '/' ->
            while (not (at_end lx)) && peek lx <> Some '\n' do
              advance lx
            done;
            skip_trivia lx
        | Some '*' ->
            let start = loc lx in
            advance lx;
            advance lx;
            skip_block_comment lx start;
            skip_trivia lx
        | Some _ | None -> ())
    | Some _ | None -> ()

  and skip_block_comment lx start =
    match (peek lx, peek2 lx) with
    | Some '*', Some '/' ->
        advance lx;
        advance lx
    | Some _, _ ->
        advance lx;
        skip_block_comment lx start
    | None, _ -> Diag.error ~loc:start "unterminated block comment"

  let lex_ident lx =
    let start = lx.pos in
    while (match peek lx with Some c -> is_ident_char c | None -> false) do
      advance lx
    done;
    String.sub lx.src start (lx.pos - start)

  let lex_int lx l =
    let start = lx.pos in
    while (match peek lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    match int_of_string_opt s with
    | Some n -> Token.INT n
    | None -> Diag.error ~loc:l "integer literal out of range: %s" s

  let lex_string lx l =
    advance lx;
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek lx with
      | None -> Diag.error ~loc:l "unterminated string literal"
      | Some '"' -> advance lx
      | Some '\\' -> (
          let esc_loc = loc lx in
          advance lx;
          match peek lx with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance lx;
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance lx;
              go ()
          | Some ('"' | '\\') ->
              Buffer.add_char buf lx.src.[lx.pos];
              advance lx;
              go ()
          | Some c -> Diag.error ~loc:esc_loc "invalid escape sequence: \\%c" c
          | None -> Diag.error ~loc:l "unterminated string literal")
      | Some c ->
          Buffer.add_char buf c;
          advance lx;
          go ()
    in
    go ();
    Token.STRING (Buffer.contents buf)

  let next lx : Token.t * Loc.t =
    skip_trivia lx;
    let l = loc lx in
    match peek lx with
    | None -> (Token.EOF, l)
    | Some c when is_digit c -> (lex_int lx l, l)
    | Some '"' -> (lex_string lx l, l)
    | Some c when is_alpha c ->
        let s = lex_ident lx in
        let tok =
          match Token.keyword_of_string s with
          | Some kw -> kw
          | None -> if s.[0] >= 'A' && s.[0] <= 'Z' then Token.UIDENT s else Token.IDENT s
        in
        (tok, l)
    | Some c ->
        let two t =
          advance lx;
          advance lx;
          (t, l)
        in
        let one t =
          advance lx;
          (t, l)
        in
        (match (c, peek2 lx) with
        | '=', Some '=' -> two Token.EQ
        | '=', _ -> one Token.ASSIGN
        | '!', Some '=' -> two Token.NE
        | '!', _ -> one Token.BANG
        | '<', Some '=' -> two Token.LE
        | '<', _ -> one Token.LT
        | '>', Some '=' -> two Token.GE
        | '>', _ -> one Token.GT
        | '&', Some '&' -> two Token.ANDAND
        | '|', Some '|' -> two Token.OROR
        | '{', _ -> one Token.LBRACE
        | '}', _ -> one Token.RBRACE
        | '(', _ -> one Token.LPAREN
        | ')', _ -> one Token.RPAREN
        | ';', _ -> one Token.SEMI
        | ',', _ -> one Token.COMMA
        | '.', _ -> one Token.DOT
        | '+', _ -> one Token.PLUS
        | '-', _ -> one Token.MINUS
        | '*', _ -> one Token.STAR
        | '/', _ -> one Token.SLASH
        | '%', _ -> one Token.PERCENT
        | ('&' | '|'), _ -> Diag.error ~loc:l "unexpected character %C (did you mean %c%c?)" c c c
        | _, _ -> Diag.error ~loc:l "unexpected character %C" c)

  let tokens ~file src : (Token.t * Loc.t) array =
    let lx = create ~file src in
    let rec go acc =
      let ((tok, _) as tl) = next lx in
      match tok with Token.EOF -> List.rev (tl :: acc) | _ -> go (tl :: acc)
    in
    Array.of_list (go [])
end
