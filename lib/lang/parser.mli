(** Recursive-descent parser for MiniAndroid.

    Anonymous inner classes — [new Runnable() { ... }] — are hoisted
    into fresh top-level classes named ["Outer$n"] with
    {!Ast.cls.c_anon} set and {!Ast.cls.c_outer} recording the enclosing
    class; the allocation site becomes a plain [New] of the hoisted
    class. Syntax errors raise {!Diag.Error}. *)

val parse_program : file:string -> string -> Ast.program

val parse_program_tokens : file:string -> (Token.t * Loc.t) array -> Ast.program
(** Parse an already-lexed token stream (as produced by {!Lexer.tokens}:
    terminated by a single {!Token.EOF}). [parse_program] is
    [parse_program_tokens ~file (Lexer.tokens ~file src)]; the split lets
    callers time the two phases separately and lets the equivalence
    tests drive the parser from the reference lexer. *)
