(** A blocking client for the {!Server} protocol — used by the
    [nadroid request] subcommand, the serve benchmark driver and the
    integration tests. One connection, requests answered in order. *)

type t

val connect : ?retries:int -> Server.listen -> t
(** Connect, retrying [retries] times (default 40, 50ms apart) while the
    daemon is still booting ([ENOENT]/[ECONNREFUSED]).
    @raise Unix.Unix_error when the last retry fails. *)

val request : t -> string -> string
(** Send one request line (newline appended) and block for the response
    line (newline stripped). Handles [EINTR] and partial writes.
    @raise End_of_file if the server closes before responding. *)

val send : t -> string -> unit
(** Just send a request line — for shutdown-and-go clients that do not
    wait for the acknowledgement. *)

val close : t -> unit
