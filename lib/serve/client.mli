(** A blocking client for the {!Server} protocol — used by the
    [nadroid request] subcommand, the serve benchmark driver and the
    integration tests. One connection, requests answered in order. *)

type t

val connect : ?timeout:float -> Server.listen -> t
(** Connect, retrying with exponential backoff + jitter (20ms doubling
    to 1s) while the daemon is still booting ([ENOENT]/[ECONNREFUSED]),
    for at most [timeout] seconds (default 10; [<= 0] means exactly one
    attempt).
    @raise Unix.Unix_error when the deadline expires unconnected. *)

val request : t -> string -> string
(** Send one request line (newline appended) and block for the response
    line (newline stripped). Handles [EINTR] and partial writes.
    @raise End_of_file if the server closes before responding. *)

val send : t -> string -> unit
(** Just send a request line — for shutdown-and-go clients that do not
    wait for the acknowledgement. *)

val close : t -> unit
