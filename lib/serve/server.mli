(** The [nadroid serve] daemon: a long-lived analysis service.

    One process keeps the expensive state warm — the framework model
    (the builtins program), the interned symbol tables, the on-disk
    analysis cache — and serves analyze requests over a Unix or TCP
    socket using the newline-JSON protocol of {!Protocol}. Analyses run
    on a persistent {!Nadroid_core.Parallel.Pool}; the accept/IO loop
    never analyzes, so the daemon stays responsive under load.

    Robustness contract: [SIGPIPE] is ignored and every read/write
    handles [EINTR], [EAGAIN] and partial transfers, so a client that
    disconnects mid-request (or mid-response) costs at most its own
    connection — never a worker, never the daemon. Per-request
    deadlines ride the pipeline's in-flight cancellation: an expired
    request degrades soundly or returns a budget fault, and the worker
    that ran it picks up the next request untouched. *)

type listen = [ `Unix of string | `Tcp of string * int ]
(** Where to listen: a Unix socket path (unlinked when stale on bind and
    again on exit) or a TCP host/port. *)

type config = {
  jobs : int option;  (** worker domains (default: all cores) *)
  cache_dir : string;  (** analysis-cache directory for [cache] requests *)
  cache_max_bytes : int option;  (** LRU ceiling applied after stores *)
  default_deadline : float option;
      (** deadline for requests that set none; [None] = unbounded *)
  quiet : bool;  (** suppress the per-request stderr log *)
  install_signals : bool;
      (** install [SIGTERM]/[SIGINT] handlers that trigger the graceful
          drain; disable when embedding the server in a test process *)
  supervise : bool;
      (** run each analysis in a supervised child process
          ({!Nadroid_core.Supervise}): a request that segfaults, is
          OOM-killed or wedges costs only its own response — the worker
          is respawned and the daemon keeps serving *)
  heartbeat : float option;
      (** with [supervise]: max seconds one request may stay unanswered
          before its worker is declared wedged and replaced *)
}

val default_config : config

val run : ?config:config -> listen -> unit
(** Serve until a [shutdown] request (or [SIGTERM]/[SIGINT] when
    installed) starts the graceful drain: stop accepting, let in-flight
    analyses finish and their responses flush, then join the workers and
    return. Raises [Unix.Unix_error] if the socket cannot be bound. *)
