(** The newline-JSON wire protocol of [nadroid serve].

    One request per line, one response line per request, in request
    order per connection. An analyze response is byte-identical to what
    [nadroid analyze --json FILE] prints for the same input and flags —
    the CLI renders through this module too, so the equality is by
    construction, and a CI fleet can swap cold processes for a warm
    daemon without re-teaching its parsers. *)

(** {1 JSON} *)

(** A small JSON value — the protocol needs no external dependency. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Strict-enough JSON parser: objects, arrays, strings with the
    standard escapes ([\uXXXX] included, surrogate pairs folded to
    UTF-8), numbers, [true]/[false]/[null]. Trailing garbage is an
    error. *)

val escape_string : string -> string
(** Render a string as a quoted JSON literal (control characters as
    [\u00XX]; bytes >= 0x80 passed through verbatim). *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on anything else. *)

(** {1 Requests} *)

type analyze = {
  a_path : string option;  (** analyze this file (server-side read) *)
  a_source : string option;  (** ... or this inline source *)
  a_file : string option;  (** display name for inline source *)
  a_k : int option;
  a_sound_only : bool;
  a_deadline : float option;  (** seconds, enforced in-flight *)
  a_budget_pta : int option;
  a_budget_tuples : int option;
  a_budget_explorer : int option;
  a_cache : bool option;  (** request the server's analysis cache *)
}

type request =
  | Ping  (** liveness probe; also measures queue depth *)
  | Shutdown  (** graceful drain: in-flight work finishes, then exit *)
  | Analyze of analyze

val parse_request : string -> (request, string) result
(** Parse one request line. Errors name the offending field. *)

val render_analyze : analyze -> string
(** The request line a client sends for [a] (no trailing newline). *)

val ping_request : string

val shutdown_request : string

(** {1 Responses} *)

val entry_json : name:string -> Nadroid_core.Cache.entry -> string
(** The per-app object of an analyze response: counts, the sound
    degradation inventory, and the rendered report. Deterministic for a
    deterministic analysis — no wall times — so a daemon response can be
    compared byte-for-byte against a cold run. *)

val batch_json : files:int -> apps:string list -> faults:string list -> string
(** The analyze document: [{"files":N,"apps":[...],"faults":[...]}].
    [apps]/[faults] are pre-rendered objects ({!entry_json} /
    {!Nadroid_core.Report.fault_to_json}). *)

val analyze_response :
  name:string -> (Nadroid_core.Cache.entry, Nadroid_core.Fault.t) result -> string
(** Single-file analyze document for a daemon response. *)

val ok_response : draining:bool -> string
(** Response to [Ping] ([draining:false]) and [Shutdown]. *)

val error_response : string -> string
(** A malformed request: [{"error":...,"exit":2}] — the cmdliner
    usage-error code, the protocol's analogue of a bad command line. *)

val response_exit : string -> int
(** The exit code a response implies: 0 for ok/analyze-clean, the worst
    fault [exit] of the document otherwise, 2 for protocol errors and
    unparseable responses. The CLI client folds this across responses. *)
