(* The serve daemon's event loop.

   Shape: one select(2) loop in the calling domain owns every file
   descriptor; analyses run on a persistent Parallel.Pool. A worker
   never touches a socket — it hands the finished response to a
   completion queue and wakes the loop through a self-pipe — so all
   socket error handling lives in exactly one place.

   Each connection carries at most one in-flight request; further
   pipelined request lines wait buffered until the response is flushed.
   That keeps responses in request order without per-request ids in the
   protocol, and makes backpressure automatic: a client that floods
   requests only fills its own kernel buffers. *)

module Clock = Nadroid_clock.Clock
module Pipeline = Nadroid_core.Pipeline
module Filters = Nadroid_core.Filters
module Fault = Nadroid_core.Fault
module Cache = Nadroid_core.Cache
module Parallel = Nadroid_core.Parallel
module Supervise = Nadroid_core.Supervise
module Faultinject = Nadroid_core.Faultinject

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  jobs : int option;
  cache_dir : string;
  cache_max_bytes : int option;
  default_deadline : float option;
  quiet : bool;
  install_signals : bool;
  supervise : bool;
  heartbeat : float option;
}

let default_config =
  {
    jobs = None;
    cache_dir = Cache.default_dir;
    cache_max_bytes = None;
    default_deadline = None;
    quiet = false;
    install_signals = true;
    supervise = false;
    heartbeat = None;
  }

(* stderr log, timestamped with the wall clock — the one place wall time
   belongs: display. Deadlines inside the analyses use Clock.now. *)
let log cfg fmt =
  if cfg.quiet then Printf.ifprintf stderr fmt
  else begin
    let tm = Unix.localtime (Clock.wall ()) in
    Printf.eprintf "[serve %02d:%02d:%02d] " tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec;
    Printf.kfprintf
      (fun oc ->
        output_char oc '\n';
        flush oc)
      stderr fmt
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* -- request execution (worker side) ------------------------------------- *)

let analyze_config cfg (a : Protocol.analyze) =
  let deadline =
    match a.Protocol.a_deadline with
    | Some _ as d -> d
    | None -> cfg.default_deadline
  in
  {
    Pipeline.default_config with
    Pipeline.k = Option.value ~default:Pipeline.default_config.Pipeline.k a.Protocol.a_k;
    unsound = (if a.Protocol.a_sound_only then [] else Filters.unsound);
    budgets =
      {
        Pipeline.pta_steps = a.Protocol.a_budget_pta;
        pta_tuples = a.Protocol.a_budget_tuples;
        deadline;
        explorer_schedules = a.Protocol.a_budget_explorer;
      };
  }

(* Runs on a pool worker. Everything that can go wrong folds into the
   response: a fault document for analysis failures, a protocol error
   for an unreadable path. The worker itself never dies — the next
   request finds it clean. With [spool] (the [supervise] config), the
   actual analysis runs in a supervised child process instead of this
   domain, so even a SIGSEGV/OOM of one request costs only its own
   response while the daemon keeps serving. *)
let run_analyze cfg spool (a : Protocol.analyze) =
  let name, src =
    match (a.Protocol.a_path, a.Protocol.a_source) with
    | Some p, _ -> (p, `Read p)
    | None, Some s ->
        (Option.value ~default:"<inline>" a.Protocol.a_file, `Inline s)
    | None, None -> assert false (* Protocol.parse_request rejects this *)
  in
  match
    match src with
    | `Inline s -> Ok s
    | `Read p -> ( try Ok (read_file p) with Sys_error e -> Error e)
  with
  | Error e -> Protocol.error_response (Printf.sprintf "cannot read input: %s" e)
  | Ok src ->
      let config = analyze_config cfg a in
      let use_cache = Option.value ~default:false a.Protocol.a_cache in
      let result =
        match spool with
        | Some sp ->
            Supervise.analyze sp ~config
              ?cache:
                (if use_cache then Some (cfg.cache_dir, cfg.cache_max_bytes)
                 else None)
              ~file:name src
        | None ->
            Fault.wrap (fun () ->
                if use_cache then
                  fst
                    (Cache.analyze ~config ?max_bytes:cfg.cache_max_bytes
                       ~dir:cfg.cache_dir ~file:name src)
                else
                  Cache.entry_of_result (Pipeline.analyze ~config ~file:name src))
      in
      Protocol.analyze_response ~name result

(* -- connection state (loop side) ---------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  id : int;
  inbuf : Buffer.t;  (** raw bytes read, possibly mid-line *)
  mutable in_lines : int;  (** complete ('\n'-terminated) lines in [inbuf] *)
  mutable outbuf : Bytes.t;  (** response bytes not yet written *)
  mutable outpos : int;
  mutable busy : bool;  (** a request of this connection is on the pool *)
  mutable closing : bool;  (** close once [outbuf] drains *)
}

type t = {
  cfg : config;
  pool : Parallel.Pool.t;
  spool : Supervise.t option;  (** supervised worker processes *)
  listen_fd : Unix.file_descr;
  sock_path : string option;  (** unix-socket file to unlink on exit *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;
  completions : (int * string) Queue.t;  (** (conn id, response line) *)
  cm : Mutex.t;
  mutable next_id : int;
  mutable inflight : int;
  mutable draining : bool;
  stop_requested : bool Atomic.t;  (** set from signal handlers *)
}

(* Worker -> loop hand-off. The write may find the pipe full (EAGAIN):
   fine — a wake-up is already pending. EINTR retries; any other error
   on the self-pipe is a bug worth crashing on. *)
let post t id response =
  Mutex.lock t.cm;
  Queue.push (id, response) t.completions;
  Mutex.unlock t.cm;
  let rec wake () =
    match Unix.write t.wake_w (Bytes.make 1 '!') 0 1 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wake ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  wake ()

let close_conn t (c : conn) =
  Hashtbl.remove t.conns c.id;
  (* the peer may already be gone; nothing to salvage either way *)
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* -- IO, robust against disconnects -------------------------------------- *)

let handle_read t (c : conn) =
  let buf = Bytes.create 8192 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 ->
      (* EOF: the client is gone. If an analysis is still running its
         completion is dropped on arrival; the worker is unaffected. *)
      close_conn t c
  | n ->
      (* count lines as bytes arrive so the no-request-pending check in
         [advance] is O(1) per loop round, not a rescan of the buffer *)
      for i = 0 to n - 1 do
        if Bytes.unsafe_get buf i = '\n' then c.in_lines <- c.in_lines + 1
      done;
      Buffer.add_subbytes c.inbuf buf 0 n
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | exception Unix.Unix_error _ -> close_conn t c

let handle_write t (c : conn) =
  let len = Bytes.length c.outbuf - c.outpos in
  if len > 0 then begin
    match
      Faultinject.trip Faultinject.Server_send;
      Unix.write c.fd c.outbuf c.outpos len
    with
    | n -> c.outpos <- c.outpos + n (* partial writes resume next round *)
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ ->
        (* EPIPE/ECONNRESET and friends: with SIGPIPE ignored a dead
           client surfaces here as an error on its own fd, nowhere else *)
        close_conn t c
  end;
  if c.outpos >= Bytes.length c.outbuf && Hashtbl.mem t.conns c.id then begin
    c.outbuf <- Bytes.empty;
    c.outpos <- 0;
    if c.closing then close_conn t c
  end

let send_line (c : conn) line =
  c.outbuf <- Bytes.of_string (line ^ "\n");
  c.outpos <- 0

(* -- request dispatch ----------------------------------------------------- *)

let pop_line (c : conn) =
  if c.in_lines = 0 then None
  else begin
    let i = ref 0 in
    while Buffer.nth c.inbuf !i <> '\n' do incr i done;
    let line = Buffer.sub c.inbuf 0 !i in
    let rest = Buffer.sub c.inbuf (!i + 1) (Buffer.length c.inbuf - !i - 1) in
    (* [reset] when drained so a one-off multi-megabyte inline request
       does not pin its capacity for the connection's lifetime *)
    if String.length rest = 0 then Buffer.reset c.inbuf
    else begin
      Buffer.clear c.inbuf;
      Buffer.add_string c.inbuf rest
    end;
    c.in_lines <- c.in_lines - 1;
    Some line
  end

let dispatch t (c : conn) line =
  match Protocol.parse_request line with
  | Error e ->
      log t.cfg "conn %d: bad request: %s" c.id e;
      send_line c (Protocol.error_response e)
  | Ok Protocol.Ping ->
      log t.cfg "conn %d: ping" c.id;
      send_line c (Protocol.ok_response ~draining:t.draining)
  | Ok Protocol.Shutdown ->
      log t.cfg "conn %d: shutdown requested, draining" c.id;
      t.draining <- true;
      c.closing <- true;
      send_line c (Protocol.ok_response ~draining:true)
  | Ok (Protocol.Analyze a) ->
      log t.cfg "conn %d: analyze %s" c.id
        (match a.Protocol.a_path with
        | Some p -> p
        | None -> Option.value ~default:"<inline>" a.Protocol.a_file);
      c.busy <- true;
      t.inflight <- t.inflight + 1;
      let id = c.id in
      ignore
        (Parallel.Pool.submit t.pool (fun () ->
             let response =
               (* a worker must survive anything a request throws at it *)
               try run_analyze t.cfg t.spool a
               with e ->
                 Protocol.analyze_response
                   ~name:(Option.value ~default:"<inline>"
                            (match a.Protocol.a_path with
                            | Some _ as p -> p
                            | None -> a.Protocol.a_file))
                   (Error (Fault.of_exn e))
             in
             post t id response))

(* A connection is ready for its next buffered request once nothing is
   in flight and nothing is waiting to be written. *)
let advance t (c : conn) =
  if
    (not c.busy)
    && (not c.closing)
    && Bytes.length c.outbuf = 0
    && not t.draining
  then match pop_line c with None -> () | Some line -> dispatch t c line

let drain_completions t =
  let pending = Queue.create () in
  Mutex.lock t.cm;
  Queue.transfer t.completions pending;
  Mutex.unlock t.cm;
  Queue.iter
    (fun (id, response) ->
      t.inflight <- t.inflight - 1;
      match Hashtbl.find_opt t.conns id with
      | None -> () (* client hung up mid-request: drop the response *)
      | Some c ->
          log t.cfg "conn %d: response ready (%d bytes)" c.id
            (String.length response);
          c.busy <- false;
          send_line c response)
    pending

let drain_wake_pipe t =
  let buf = Bytes.create 64 in
  let rec loop () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | n when n = Bytes.length buf -> loop ()
    | _ -> ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
  in
  loop ()

let accept_all t =
  let rec loop () =
    match
      Faultinject.trip Faultinject.Server_accept;
      Unix.accept ~cloexec:true t.listen_fd
    with
    | fd, _ ->
        Unix.set_nonblock fd;
        let id = t.next_id in
        t.next_id <- id + 1;
        Hashtbl.replace t.conns id
          {
            fd;
            id;
            inbuf = Buffer.create 256;
            in_lines = 0;
            outbuf = Bytes.empty;
            outpos = 0;
            busy = false;
            closing = false;
          };
        loop ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
    | exception Unix.Unix_error (e, _, _) ->
        (* transient accept failure (EMFILE, injected EIO, ...): the
           listener survives it; pending connections stay in the kernel
           backlog and the next loop round retries *)
        log t.cfg "accept failed: %s" (Unix.error_message e)
  in
  loop ()

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

(* -- the loop ------------------------------------------------------------- *)

let bind_listen = function
  | `Unix path ->
      (* a stale socket file from a crashed daemon would make bind fail;
         a live one is somebody else's — connect distinguishes them *)
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (
          let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () ->
              Unix.close probe;
              raise
                (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
              Unix.close probe;
              Unix.unlink path
          | exception e ->
              Unix.close probe;
              raise e)
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, Some path)
  | `Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, None)

let run ?(config = default_config) listen =
  (* a client closing mid-write must surface as EPIPE, not kill us *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  (* force shared lazies before any domain exists (fork-before-spawn
     discipline; also first-request latency) *)
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let listen_fd, sock_path = bind_listen listen in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  (* supervised worker processes spawn before the domain pool exists:
     fewer inherited threads, and the exec discipline keeps later
     respawns safe from any domain *)
  let spool =
    if config.supervise then
      Some (Supervise.create ?jobs:config.jobs ?heartbeat:config.heartbeat ())
    else None
  in
  let t =
    {
      cfg = config;
      pool = Parallel.Pool.create ?jobs:config.jobs ();
      spool;
      listen_fd;
      sock_path;
      wake_r;
      wake_w;
      conns = Hashtbl.create 16;
      completions = Queue.create ();
      cm = Mutex.create ();
      next_id = 0;
      inflight = 0;
      draining = false;
      stop_requested = Atomic.make false;
    }
  in
  if config.install_signals then begin
    let handler _ =
      Atomic.set t.stop_requested true;
      try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
      with Unix.Unix_error _ -> ()
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
    Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
  end;
  log config "listening (%d worker domain%s)"
    (Parallel.Pool.jobs t.pool)
    (if Parallel.Pool.jobs t.pool = 1 then "" else "s");
  let listening = ref true in
  let finished () =
    t.draining && Hashtbl.length t.conns = 0 && t.inflight = 0
  in
  while not (finished ()) do
    if Atomic.get t.stop_requested && not t.draining then begin
      log config "signal received, draining";
      t.draining <- true
    end;
    if t.draining && !listening then begin
      listening := false;
      try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
    end;
    (* when draining, idle connections go away now; busy or unflushed
       ones finish first — that is the graceful part *)
    if t.draining then
      List.iter
        (fun (c : conn) ->
          if (not c.busy) && Bytes.length c.outbuf = 0 then close_conn t c)
        (conn_list t);
    if not (finished ()) then begin
      let conns = conn_list t in
      let reads =
        (t.wake_r :: (if !listening then [ t.listen_fd ] else []))
        @ List.map (fun (c : conn) -> c.fd) conns
      in
      let writes =
        List.filter_map
          (fun (c : conn) ->
            if Bytes.length c.outbuf > c.outpos then Some c.fd else None)
          conns
      in
      match Unix.select reads writes [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.mem t.wake_r readable then drain_wake_pipe t;
          drain_completions t;
          if !listening && List.mem t.listen_fd readable then accept_all t;
          List.iter
            (fun (c : conn) ->
              if List.mem c.fd readable && Hashtbl.mem t.conns c.id then
                handle_read t c)
            conns;
          List.iter
            (fun (c : conn) ->
              if List.mem c.fd writable && Hashtbl.mem t.conns c.id then
                handle_write t c)
            conns;
          List.iter
            (fun (c : conn) ->
              (* advance, then opportunistically flush (short responses
                 usually fit the socket buffer, saving a select
                 round-trip) — and if that flush drained the response
                 with more pipelined lines buffered, go again: no fd
                 event will ever fire for bytes already in [inbuf], so
                 stopping here would stall the connection forever.
                 Terminates because each iteration past the first
                 consumes a buffered line. *)
              let rec pump () =
                if Hashtbl.mem t.conns c.id then begin
                  advance t c;
                  if Bytes.length c.outbuf > c.outpos then begin
                    handle_write t c;
                    if
                      Hashtbl.mem t.conns c.id
                      && Bytes.length c.outbuf = 0
                      && c.in_lines > 0
                    then pump ()
                  end
                end
              in
              pump ())
            conns
    end
  done;
  log config "drained, shutting down workers";
  Parallel.Pool.shutdown t.pool;
  Option.iter Supervise.shutdown t.spool;
  if !listening then (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (match sock_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  log config "bye"
