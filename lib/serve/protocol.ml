(* The newline-JSON wire protocol of `nadroid serve`.

   The repo carries no JSON dependency — output everywhere is built with
   Printf — so the protocol brings its own small value type and
   recursive-descent parser rather than growing one. The response
   builders here are shared with `nadroid analyze --json`: the daemon
   and the cold CLI render through the same functions, which is what
   makes "daemon responses are byte-identical to cold runs" a property
   of the code shape instead of a test we hope keeps passing. *)

module Cache = Nadroid_core.Cache
module Pipeline = Nadroid_core.Pipeline
module Report = Nadroid_core.Report
module Fault = Nadroid_core.Fault

(* -- JSON values --------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Encode a Unicode scalar value as UTF-8 (for \uXXXX escapes). *)
let utf8_of_scalar buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

type parser_state = { s : string; mutable pos : int }

let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail "expected '%c' at offset %d, found '%c'" c p.pos c'
  | None -> fail "expected '%c' at offset %d, found end of input" c p.pos

let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | c -> fail "bad hex digit '%c'" c

let parse_hex4 p =
  if p.pos + 4 > String.length p.s then fail "truncated \\u escape";
  let v =
    (hex_digit p.s.[p.pos] lsl 12)
    lor (hex_digit p.s.[p.pos + 1] lsl 8)
    lor (hex_digit p.s.[p.pos + 2] lsl 4)
    lor hex_digit p.s.[p.pos + 3]
  in
  p.pos <- p.pos + 4;
  v

let parse_string p =
  expect p '"';
  let buf = Buffer.create 32 in
  let rec loop () =
    match peek p with
    | None -> fail "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
        advance p;
        (match peek p with
        | None -> fail "unterminated escape"
        | Some c ->
            advance p;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let hi = parse_hex4 p in
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* surrogate pair: a low surrogate must follow *)
                  expect p '\\';
                  expect p 'u';
                  let lo = parse_hex4 p in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail "lone high surrogate \\u%04X" hi;
                  utf8_of_scalar buf
                    (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else if hi >= 0xDC00 && hi <= 0xDFFF then
                  fail "lone low surrogate \\u%04X" hi
                else utf8_of_scalar buf hi
            | c -> fail "bad escape '\\%c'" c));
        loop ()
    | Some c ->
        advance p;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  let lit = String.sub p.s start (p.pos - start) in
  match float_of_string_opt lit with
  | Some f -> f
  | None -> fail "bad number %S at offset %d" lit start

let parse_literal p lit v =
  let n = String.length lit in
  if p.pos + n <= String.length p.s && String.sub p.s p.pos n = lit then begin
    p.pos <- p.pos + n;
    v
  end
  else fail "bad literal at offset %d" p.pos

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string p)
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance p;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' at offset %d" p.pos
        in
        fields []
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        Arr []
      end
      else
        let rec elems acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              elems (v :: acc)
          | Some ']' ->
              advance p;
              Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at offset %d" p.pos
        in
        elems []
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some 'n' -> parse_literal p "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number p)
  | Some c -> fail "unexpected '%c' at offset %d" c p.pos

let parse_json s =
  let p = { s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok v
  | exception Parse_error e -> Error e

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' .. '\031' ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* -- requests ------------------------------------------------------------ *)

type analyze = {
  a_path : string option;
  a_source : string option;
  a_file : string option;
  a_k : int option;
  a_sound_only : bool;
  a_deadline : float option;
  a_budget_pta : int option;
  a_budget_tuples : int option;
  a_budget_explorer : int option;
  a_cache : bool option;
}

type request = Ping | Shutdown | Analyze of analyze

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let opt_field j k decode =
  match member k j with
  | None | Some Null -> None
  | Some v -> Some (decode k v)

let as_string k = function
  | Str s -> s
  | _ -> bad "field %S must be a string" k

let as_int k = function
  | Num f when Float.is_integer f -> int_of_float f
  | _ -> bad "field %S must be an integer" k

let as_float k = function Num f -> f | _ -> bad "field %S must be a number" k

let as_bool k = function Bool b -> b | _ -> bad "field %S must be a boolean" k

let parse_analyze j =
  let a =
    {
      a_path = opt_field j "path" as_string;
      a_source = opt_field j "source" as_string;
      a_file = opt_field j "file" as_string;
      a_k = opt_field j "k" as_int;
      a_sound_only =
        Option.value ~default:false (opt_field j "sound_only" as_bool);
      a_deadline = opt_field j "deadline" as_float;
      a_budget_pta = opt_field j "budget_pta" as_int;
      a_budget_tuples = opt_field j "budget_tuples" as_int;
      a_budget_explorer = opt_field j "budget_explorer" as_int;
      a_cache = opt_field j "cache" as_bool;
    }
  in
  (match (a.a_path, a.a_source) with
  | None, None -> bad "analyze needs a \"path\" or a \"source\""
  | Some _, Some _ -> bad "analyze takes \"path\" or \"source\", not both"
  | _ -> ());
  a

let parse_request line =
  match parse_json line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok j -> (
      match
        match member "op" j with
        | Some (Str "ping") -> Ping
        | Some (Str "shutdown") -> Shutdown
        | Some (Str "analyze") -> Analyze (parse_analyze j)
        | Some (Str op) -> bad "unknown op %S" op
        | Some _ -> bad "field \"op\" must be a string"
        | None -> bad "request needs an \"op\" field"
      with
      | req -> Ok req
      | exception Bad_request e -> Error e)

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let render_analyze a =
  let fields =
    List.filter_map Fun.id
      [
        Some "\"op\":\"analyze\"";
        Option.map (fun p -> "\"path\":" ^ escape_string p) a.a_path;
        Option.map (fun s -> "\"source\":" ^ escape_string s) a.a_source;
        Option.map (fun f -> "\"file\":" ^ escape_string f) a.a_file;
        Option.map (Printf.sprintf "\"k\":%d") a.a_k;
        (if a.a_sound_only then Some "\"sound_only\":true" else None);
        Option.map (fun d -> "\"deadline\":" ^ float_lit d) a.a_deadline;
        Option.map (Printf.sprintf "\"budget_pta\":%d") a.a_budget_pta;
        Option.map (Printf.sprintf "\"budget_tuples\":%d") a.a_budget_tuples;
        Option.map (Printf.sprintf "\"budget_explorer\":%d") a.a_budget_explorer;
        Option.map (Printf.sprintf "\"cache\":%b") a.a_cache;
      ]
  in
  "{" ^ String.concat "," fields ^ "}"

let ping_request = "{\"op\":\"ping\"}"

let shutdown_request = "{\"op\":\"shutdown\"}"

(* -- responses ----------------------------------------------------------- *)

let entry_json ~name (e : Cache.entry) =
  let degraded =
    List.map
      (fun d -> escape_string (Pipeline.degradation_to_string d))
      e.Cache.e_metrics.Pipeline.m_degraded
  in
  Printf.sprintf
    "{\"name\":%s,\"potential\":%d,\"sound\":%d,\"unsound\":%d,\"degraded\":[%s],\"report\":%s}"
    (escape_string name) e.Cache.e_potential e.Cache.e_after_sound
    e.Cache.e_after_unsound
    (String.concat "," degraded)
    (escape_string e.Cache.e_report)

let batch_json ~files ~apps ~faults =
  Printf.sprintf "{\"files\":%d,\"apps\":[%s],\"faults\":[%s]}" files
    (String.concat "," apps)
    (String.concat "," faults)

let analyze_response ~name = function
  | Ok entry -> batch_json ~files:1 ~apps:[ entry_json ~name entry ] ~faults:[]
  | Error fault ->
      batch_json ~files:1 ~apps:[] ~faults:[ Report.fault_to_json ~name fault ]

let ok_response ~draining =
  if draining then "{\"ok\":true,\"draining\":true}" else "{\"ok\":true}"

let error_response msg =
  Printf.sprintf "{\"error\":%s,\"exit\":2}" (escape_string msg)

let response_exit line =
  match parse_json line with
  | Error _ -> 2
  | Ok j -> (
      match member "error" j with
      | Some _ -> (
          match member "exit" j with Some (Num f) -> int_of_float f | _ -> 2)
      | None -> (
          match member "faults" j with
          | Some (Arr faults) ->
              List.fold_left
                (fun acc f ->
                  match member "exit" f with
                  | Some (Num e) -> max acc (int_of_float e)
                  | _ -> acc)
                0 faults
          | _ -> 0))
