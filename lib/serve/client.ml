(* Blocking protocol client. The fd stays in blocking mode — simplicity
   wins on this side — but writes still loop over partial transfers and
   retry EINTR, and reads buffer until the newline arrives, so a slow or
   chunked server never corrupts the framing. *)

type t = { fd : Unix.file_descr; mutable residue : string }

let addr_of = function
  | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | `Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

let connect ?(retries = 40) listen =
  let domain, addr = addr_of listen in
  let rec attempt left =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; residue = "" }
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when left > 0
      ->
        Unix.close fd;
        (* the daemon may still be binding its socket *)
        Unix.sleepf 0.05;
        attempt (left - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  attempt retries

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec loop pos =
    if pos < len then
      match Unix.write fd bytes pos (len - pos) with
      | n -> loop (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop pos
  in
  loop 0

let send t line = write_all t.fd (Bytes.of_string (line ^ "\n"))

let recv_line t =
  let buf = Bytes.create 8192 in
  let rec loop () =
    match String.index_opt t.residue '\n' with
    | Some i ->
        let line = String.sub t.residue 0 i in
        t.residue <-
          String.sub t.residue (i + 1) (String.length t.residue - i - 1);
        line
    | None -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> raise End_of_file
        | n ->
            t.residue <- t.residue ^ Bytes.sub_string buf 0 n;
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let request t line =
  send t line;
  recv_line t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
