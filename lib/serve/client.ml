(* Blocking protocol client. The fd stays in blocking mode — simplicity
   wins on this side — but writes still loop over partial transfers and
   retry EINTR, and reads buffer until the newline arrives, so a slow or
   chunked server never corrupts the framing. *)

type t = { fd : Unix.file_descr; mutable residue : string }

let addr_of = function
  | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | `Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

(* Jitter source for connect backoff: self-seeded so simultaneous
   clients (bench fan-out) desynchronize instead of hammering the
   daemon's accept queue in lockstep. *)
let jitter_state = lazy (Random.State.make_self_init ())

(* Connect with a hard deadline instead of a retry count: a daemon that
   never starts makes the old fixed-retry loop spin 2 seconds, and
   anything polling in a script loop spin forever. Retries back off
   exponentially (20ms doubling to 1s, ±25% jitter) while the daemon may
   still be binding its socket; once [timeout] elapses the last
   connection error propagates to the caller. [timeout <= 0] means
   exactly one attempt. *)
let connect ?(timeout = 10.0) listen =
  let domain, addr = addr_of listen in
  let deadline = Nadroid_clock.Clock.now () +. timeout in
  let rec attempt delay =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; residue = "" }
    | exception (Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) as e)
      ->
        Unix.close fd;
        let left = deadline -. Nadroid_clock.Clock.now () in
        if left <= 0.0 then raise e
        else begin
          let jitter =
            delay *. 0.25 *. (Random.State.float (Lazy.force jitter_state) 2.0 -. 1.0)
          in
          Unix.sleepf (Float.min (Float.max 0.001 (delay +. jitter)) left);
          attempt (Float.min (delay *. 2.0) 1.0)
        end
    | exception e ->
        Unix.close fd;
        raise e
  in
  attempt 0.02

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec loop pos =
    if pos < len then
      match Unix.write fd bytes pos (len - pos) with
      | n -> loop (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop pos
  in
  loop 0

let send t line = write_all t.fd (Bytes.of_string (line ^ "\n"))

let recv_line t =
  let buf = Bytes.create 8192 in
  let rec loop () =
    match String.index_opt t.residue '\n' with
    | Some i ->
        let line = String.sub t.residue 0 i in
        t.residue <-
          String.sub t.residue (i + 1) (String.length t.residue - i - 1);
        line
    | None -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> raise End_of_file
        | n ->
            t.residue <- t.residue ^ Bytes.sub_string buf 0 n;
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let request t line =
  send t line;
  recv_line t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
