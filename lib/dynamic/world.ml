(* The simulated Android runtime: a main looper processing one callback
   at a time, preemptible native threads (implemented with OCaml effects:
   threads yield at shared-memory accesses), component lifecycles driven
   by the {!Nadroid_android.Lifecycle} automaton, and the registration /
   cancellation API surface.

   The scheduler is externally driven: {!enabled_actions} lists what may
   happen next (an external event, the looper processing its queue, a
   native thread advancing to its next yield point) and {!perform}
   executes one choice. Schedule exploration lives in {!Explorer}. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_android

type task = {
  tk_recv : Value.t;
  tk_meth : string;
  tk_args : Value.t list;
  tk_source : Value.t option;  (* posting Handler, for removeCallbacksAndMessages *)
  tk_label : string;
}

type _ Effect.t += Yield : unit Effect.t

type thread_state =
  | Ready of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

type native = { nt_id : int; nt_label : string; mutable nt_state : thread_state }

type activity = {
  act_cls : string;
  act_obj : int;
  act_ui : string list;  (* overridden non-lifecycle entry callbacks *)
  mutable act_state : Lifecycle.state;
  mutable act_finished : bool;
}

type service_state = Sv_init | Sv_created | Sv_destroyed

type service = { sv_cls : string; sv_obj : int; mutable sv_state : service_state }

type t = {
  prog : Prog.t;
  heap : Heap.t;
  mutable queue : task list;  (* FIFO: append at back *)
  mutable natives : native list;
  mutable next_nt : int;
  mutable clicks : (Value.t * Value.t) list;  (* view, listener *)
  mutable long_clicks : (Value.t * Value.t) list;
  mutable receivers : Value.t list;
  mutable connections : (Value.t * bool ref) list;  (* connection, currently-connected *)
  mutable locations : Value.t list;
  mutable sensors : Value.t list;
  activities : activity list;
  services : service list;
  manifest_receivers : (string * int) list;
  views : (int * int, Value.t) Hashtbl.t;  (* (activity obj, view id) -> view *)
  singletons : (string, Value.t) Hashtbl.t;
  mutable npes : Interp.npe list;
  mutable stucks : Interp.stuck list;
  mutable logs : string list;  (* reversed *)
  mutable fuel : int;
  mutable crashed : bool;
  resume_on_npe : bool;
      (* validation mode: record the NPE and abort only the faulting
         callback/thread instead of crashing the whole app *)
  mutable wakelocks : int list;  (* every WakeLock object ever created *)
  mutable looper_fiber : thread_state option;  (* the callback currently on the looper *)
  mutable current_fiber : int;  (* -1 = looper, >= 0 = native id, -2 = idle *)
  locks : (int, int * int) Hashtbl.t;  (* object id -> (owner fiber, depth) *)
}

(* -- interpreter embedding ------------------------------------------------ *)

let has_live_native w =
  List.exists (fun nt -> match nt.nt_state with Finished -> false | Ready _ | Suspended _ -> true) w.natives

let rec interp (w : t) : Interp.t =
  {
    Interp.prog = w.prog;
    heap = w.heap;
    hooks =
      {
        Interp.h_api = (fun ~recv ~ms ~args kind -> handle_api w ~recv ~ms ~args kind);
        h_log = (fun s -> w.logs <- s :: w.logs);
        (* preemption is only observable when a native thread can run:
           with no live thread, callbacks execute atomically and the
           schedule space collapses accordingly *)
        h_yield = (fun _ -> if has_live_native w then Effect.perform Yield);
        h_fuel =
          (fun () ->
            w.fuel <- w.fuel - 1;
            if w.fuel <= 0 then raise Interp.Out_of_fuel);
        h_monitor =
          (fun op lock ->
            match (op, lock) with
            | `Enter, Value.Vobj o ->
                let rec acquire () =
                  match Hashtbl.find_opt w.locks o with
                  | None -> Hashtbl.replace w.locks o (w.current_fiber, 1)
                  | Some (owner, depth) when owner = w.current_fiber ->
                      Hashtbl.replace w.locks o (owner, depth + 1)
                  | Some _ ->
                      Effect.perform Yield;
                      acquire ()
                in
                acquire ()
            | `Exit, Value.Vobj o -> (
                match Hashtbl.find_opt w.locks o with
                | Some (owner, 1) when owner = w.current_fiber -> Hashtbl.remove w.locks o
                | Some (owner, depth) when owner = w.current_fiber ->
                    Hashtbl.replace w.locks o (owner, depth - 1)
                | Some _ | None -> ())
            | (`Enter | `Exit), (Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _) ->
                ());
      };
  }

and enqueue w task = w.queue <- w.queue @ [ task ]

and spawn_native w ~label (body : unit -> unit) =
  let nt = { nt_id = w.next_nt; nt_label = label; nt_state = Ready body } in
  w.next_nt <- w.next_nt + 1;
  w.natives <- w.natives @ [ nt ]

and call_inline w ~recv ~meth ~args = ignore (Interp.call (interp w) ~recv ~meth ~args)

and handle_api (w : t) ~(recv : Value.t) ~(ms : Sema.method_sig) ~(args : Value.t list)
    (kind : Api.kind) : Value.t =
  let arg0 () = match args with a :: _ -> a | [] -> Value.Vnull in
  match kind with
  | Api.Spawn Api.Spawn_thread -> (
      match recv with
      | Value.Vobj id -> (
          match Heap.get_field w.heap id ~key:"Thread.target" with
          | Value.Vobj _ as r ->
              spawn_native w ~label:"thread" (fun () -> call_inline w ~recv:r ~meth:"run" ~args:[]);
              Value.Vnull
          | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> Value.Vnull)
      | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> Value.Vnull)
  | Api.Spawn Api.Spawn_executor ->
      (match arg0 () with
      | Value.Vobj _ as r ->
          spawn_native w ~label:"executor" (fun () -> call_inline w ~recv:r ~meth:"run" ~args:[])
      | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> ());
      Value.Vnull
  | Api.Spawn Api.Spawn_async_task ->
      (* onPreExecute runs synchronously on the caller; doInBackground on
         a fresh thread; onPostExecute is posted back to the looper *)
      call_inline w ~recv ~meth:"onPreExecute" ~args:[];
      spawn_native w ~label:"asynctask" (fun () ->
          call_inline w ~recv ~meth:"doInBackground" ~args:[];
          enqueue w
            {
              tk_recv = recv;
              tk_meth = "onPostExecute";
              tk_args = [];
              tk_source = None;
              tk_label = "onPostExecute";
            });
      Value.Vnull
  | Api.Post Api.Post_runnable ->
      (match arg0 () with
      | Value.Vobj _ as r ->
          enqueue w
            { tk_recv = r; tk_meth = "run"; tk_args = []; tk_source = Some recv; tk_label = "run" }
      | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> ());
      Value.Vnull
  | Api.Post Api.Post_message ->
      let msg =
        match (ms.Sema.ms_name, args) with
        | "sendMessage", m :: _ -> m
        | "sendEmptyMessage", what :: _ ->
            let id = Heap.alloc w.heap ~cls:"Message" in
            Heap.set_field w.heap id ~key:"Message.what" what;
            Value.Vobj id
        | _, _ -> Value.Vnull
      in
      enqueue w
        {
          tk_recv = recv;
          tk_meth = "handleMessage";
          tk_args = [ msg ];
          tk_source = Some recv;
          tk_label = "handleMessage";
        };
      Value.Vnull
  | Api.Register Api.Reg_service ->
      w.connections <- w.connections @ [ (arg0 (), ref false) ];
      Value.Vnull
  | Api.Register Api.Reg_receiver ->
      w.receivers <- w.receivers @ [ arg0 () ];
      Value.Vnull
  | Api.Register Api.Reg_click ->
      w.clicks <- w.clicks @ [ (recv, arg0 ()) ];
      Value.Vnull
  | Api.Register Api.Reg_long_click ->
      w.long_clicks <- w.long_clicks @ [ (recv, arg0 ()) ];
      Value.Vnull
  | Api.Register Api.Reg_location ->
      w.locations <- w.locations @ [ arg0 () ];
      Value.Vnull
  | Api.Register Api.Reg_sensor ->
      w.sensors <- w.sensors @ [ arg0 () ];
      Value.Vnull
  | Api.Cancel Api.Cancel_finish ->
      List.iter
        (fun a -> if Value.equal (Value.Vobj a.act_obj) recv then a.act_finished <- true)
        w.activities;
      Value.Vnull
  | Api.Cancel Api.Cancel_unbind ->
      w.connections <- List.filter (fun (c, _) -> not (Value.equal c (arg0 ()))) w.connections;
      Value.Vnull
  | Api.Cancel Api.Cancel_unregister_receiver ->
      w.receivers <- List.filter (fun r -> not (Value.equal r (arg0 ()))) w.receivers;
      Value.Vnull
  | Api.Cancel Api.Cancel_remove_callbacks ->
      w.queue <-
        List.filter
          (fun tk -> match tk.tk_source with Some s -> not (Value.equal s recv) | None -> true)
          w.queue;
      Value.Vnull
  | Api.Cancel Api.Cancel_async_task ->
      (* cancellation only prevents onPostExecute in the real framework if
         it has not run; approximate by dropping queued completions *)
      w.queue <-
        List.filter
          (fun tk ->
            not (Value.equal tk.tk_recv recv && String.equal tk.tk_meth "onPostExecute"))
          w.queue;
      Value.Vnull
  | Api.Cancel Api.Cancel_remove_location ->
      w.locations <- List.filter (fun l -> not (Value.equal l (arg0 ()))) w.locations;
      Value.Vnull
  | Api.Cancel Api.Cancel_unregister_sensor ->
      w.sensors <- List.filter (fun l -> not (Value.equal l (arg0 ()))) w.sensors;
      Value.Vnull
  | Api.Other -> (
      match (ms.Sema.ms_class, ms.Sema.ms_name) with
      | "Activity", "findViewById" -> (
          match (recv, args) with
          | Value.Vobj a, [ Value.Vint id ] -> (
              match Hashtbl.find_opt w.views (a, id) with
              | Some v -> v
              | None ->
                  let vid = Heap.alloc w.heap ~cls:"View" in
                  (* remember the owning activity: its views die with it *)
                  Heap.set_field w.heap vid ~key:"View.owner" (Value.Vint a);
                  let v = Value.Vobj vid in
                  Hashtbl.replace w.views (a, id) v;
                  v)
          | _, _ -> Value.Vnull)
      | "Context", ("getLocationManager" | "getSensorManager" | "getPowerManager") -> (
          let cls =
            match ms.Sema.ms_name with
            | "getLocationManager" -> "LocationManager"
            | "getSensorManager" -> "SensorManager"
            | _ -> "PowerManager"
          in
          match Hashtbl.find_opt w.singletons cls with
          | Some v -> v
          | None ->
              let v = Value.Vobj (Heap.alloc w.heap ~cls) in
              Hashtbl.replace w.singletons cls v;
              v)
      | "View", "setEnabled" -> (
          match (recv, args) with
          | Value.Vobj id, [ (Value.Vbool _ as b) ] ->
              Heap.set_field w.heap id ~key:"View.enabled" b;
              Value.Vnull
          | _, _ -> Value.Vnull)
      | "PowerManager", "newWakeLock" ->
          let id = Heap.alloc w.heap ~cls:"WakeLock" in
          w.wakelocks <- id :: w.wakelocks;
          Value.Vobj id
      | "WakeLock", "acquire" -> (
          match recv with
          | Value.Vobj id ->
              Heap.set_field w.heap id ~key:"WakeLock.held" (Value.Vbool true);
              Value.Vnull
          | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> Value.Vnull)
      | "WakeLock", "release" -> (
          match recv with
          | Value.Vobj id ->
              Heap.set_field w.heap id ~key:"WakeLock.held" (Value.Vbool false);
              Value.Vnull
          | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> Value.Vnull)
      | "AsyncTask", "publishProgress" ->
          enqueue w
            {
              tk_recv = recv;
              tk_meth = "onProgressUpdate";
              tk_args = args;
              tk_source = None;
              tk_label = "onProgressUpdate";
            };
          Value.Vnull
      | _, _ -> Value.Vnull)

(* -- world construction ----------------------------------------------------- *)

let create ?(resume_on_npe = false) (prog : Prog.t) : t =
  let heap = Heap.create () in
  let components = Component.discover prog.Prog.sema in
  let activities =
    List.filter_map
      (fun (c : Component.t) ->
        match c.Component.kind with
        | Component.Activity ->
            let ui =
              List.filter_map
                (fun (m, k) ->
                  match k with
                  | Callback.Ui _ -> Some m
                  | Callback.Lifecycle _ | Callback.Service_lifecycle _ | Callback.System _
                  | Callback.Service_conn _ | Callback.Receive | Callback.Handle_message
                  | Callback.Runnable_run | Callback.Async _ ->
                      None)
                c.Component.entry_callbacks
            in
            Some
              {
                act_cls = c.Component.cls;
                act_obj = Heap.alloc heap ~cls:c.Component.cls;
                act_ui = ui;
                act_state = Lifecycle.initial;
                act_finished = false;
              }
        | Component.Service | Component.Receiver -> None)
      components
  in
  let services =
    List.filter_map
      (fun (c : Component.t) ->
        match c.Component.kind with
        | Component.Service ->
            Some { sv_cls = c.Component.cls; sv_obj = Heap.alloc heap ~cls:c.Component.cls; sv_state = Sv_init }
        | Component.Activity | Component.Receiver -> None)
      components
  in
  let manifest_receivers =
    List.filter_map
      (fun (c : Component.t) ->
        match c.Component.kind with
        | Component.Receiver -> Some (c.Component.cls, Heap.alloc heap ~cls:c.Component.cls)
        | Component.Activity | Component.Service -> None)
      components
  in
  {
    prog;
    heap;
    queue = [];
    natives = [];
    next_nt = 0;
    clicks = [];
    long_clicks = [];
    receivers = [];
    connections = [];
    locations = [];
    sensors = [];
    activities;
    services;
    manifest_receivers;
    views = Hashtbl.create 16;
    singletons = Hashtbl.create 4;
    npes = [];
    stucks = [];
    logs = [];
    fuel = 200_000;
    crashed = false;
    resume_on_npe;
    wakelocks = [];
    looper_fiber = None;
    current_fiber = -2;
    locks = Hashtbl.create 8;
  }

(* -- actions ------------------------------------------------------------------ *)

type action =
  | A_lifecycle of string * string  (** activity class, callback *)
  | A_activity_ui of string * string  (** activity class, UI/system entry callback *)
  | A_service of string * string  (** service class, callback *)
  | A_click of int
  | A_long_click of int
  | A_broadcast_dynamic of int
  | A_broadcast_manifest of int
  | A_connect of int
  | A_disconnect of int
  | A_location of int
  | A_sensor of int
  | A_looper
  | A_looper_step  (** advance the callback currently running on the looper *)
  | A_thread_step of int

let pp_action ppf = function
  | A_lifecycle (c, cb) -> Fmt.pf ppf "lifecycle:%s.%s" c cb
  | A_activity_ui (c, cb) -> Fmt.pf ppf "ui:%s.%s" c cb
  | A_service (c, cb) -> Fmt.pf ppf "service:%s.%s" c cb
  | A_click i -> Fmt.pf ppf "click:%d" i
  | A_long_click i -> Fmt.pf ppf "longclick:%d" i
  | A_broadcast_dynamic i -> Fmt.pf ppf "broadcast:%d" i
  | A_broadcast_manifest i -> Fmt.pf ppf "broadcast-manifest:%d" i
  | A_connect i -> Fmt.pf ppf "connect:%d" i
  | A_disconnect i -> Fmt.pf ppf "disconnect:%d" i
  | A_location i -> Fmt.pf ppf "location:%d" i
  | A_sensor i -> Fmt.pf ppf "sensor:%d" i
  | A_looper -> Fmt.string ppf "looper"
  | A_looper_step -> Fmt.string ppf "looper-step"
  | A_thread_step i -> Fmt.pf ppf "thread:%d" i

let ui_possible w =
  List.exists (fun a -> Lifecycle.ui_enabled a.act_state && not a.act_finished) w.activities

let view_enabled w view =
  match view with
  | Value.Vobj id -> not (Value.equal (Heap.get_field w.heap id ~key:"View.enabled") (Value.Vbool false))
  | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> true

(* UI events are deliverable only while the view's *owning* activity has
   its UI enabled — a destroyed or finished activity's view hierarchy is
   gone, exactly the fact MHB-Lifecycle's onDestroy-last rule rests on.
   Views without a recorded owner fall back to the global check. *)
let view_owner_ui w view =
  match view with
  | Value.Vobj vid -> (
      match Heap.get_field w.heap vid ~key:"View.owner" with
      | Value.Vint a -> (
          match List.find_opt (fun ac -> ac.act_obj = a) w.activities with
          | Some ac -> Lifecycle.ui_enabled ac.act_state && not ac.act_finished
          | None -> ui_possible w)
      | _ -> ui_possible w)
  | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> ui_possible w

let enabled_actions (w : t) : action list =
  if w.crashed then []
  else if w.looper_fiber <> None then
    (* a callback is mid-flight on the looper: only it and true threads
       can make progress — callbacks stay atomic w.r.t. each other *)
    A_looper_step
    :: List.filter_map
         (fun nt ->
           match nt.nt_state with
           | Finished -> None
           | Ready _ | Suspended _ -> Some (A_thread_step nt.nt_id))
         w.natives
  else
    let lifecycle =
      List.concat_map
        (fun a ->
          let allowed (cb, _) =
            if a.act_finished then List.mem cb [ "onPause"; "onStop"; "onDestroy" ] else true
          in
          List.filter_map
            (fun tr -> if allowed tr then Some (A_lifecycle (a.act_cls, fst tr)) else None)
            (Lifecycle.enabled a.act_state))
        w.activities
    in
    let service =
      List.concat_map
        (fun s ->
          match s.sv_state with
          | Sv_init -> [ A_service (s.sv_cls, "onCreate") ]
          | Sv_created ->
              [
                A_service (s.sv_cls, "onStartCommand");
                A_service (s.sv_cls, "onDestroy");
              ]
          | Sv_destroyed -> [])
        w.services
    in
    let activity_ui =
      List.concat_map
        (fun a ->
          if Lifecycle.ui_enabled a.act_state && not a.act_finished then
            List.map (fun m -> A_activity_ui (a.act_cls, m)) a.act_ui
          else [])
        w.activities
    in
    let idx l f = List.mapi (fun i _ -> f i) l in
    let clicks =
      List.concat
        (List.mapi
           (fun i (view, _) ->
             if view_owner_ui w view && view_enabled w view then [ A_click i ] else [])
           w.clicks)
    in
    let long_clicks =
      List.concat
        (List.mapi
           (fun i (view, _) -> if view_owner_ui w view then [ A_long_click i ] else [])
           w.long_clicks)
    in
    let broadcasts = idx w.receivers (fun i -> A_broadcast_dynamic i) in
    let manifest = idx w.manifest_receivers (fun i -> A_broadcast_manifest i) in
    let conns =
      List.concat
        (List.mapi
           (fun i (_, connected) -> if !connected then [ A_disconnect i ] else [ A_connect i ])
           w.connections)
    in
    let locs = idx w.locations (fun i -> A_location i) in
    let sensors = idx w.sensors (fun i -> A_sensor i) in
    let looper = match w.queue with [] -> [] | _ :: _ -> [ A_looper ] in
    let threads =
      List.filter_map
        (fun nt -> match nt.nt_state with Finished -> None | Ready _ | Suspended _ -> Some (A_thread_step nt.nt_id))
        w.natives
    in
    lifecycle @ activity_ui @ service @ clicks @ long_clicks @ broadcasts @ manifest @ conns
    @ locs @ sensors @ looper @ threads

(* Advance a fiber (the looper's current callback or a native thread) to
   its next yield point; [set_state] persists the continuation. *)
let step_fiber w ~fiber_id ~(state : thread_state) ~(set_state : thread_state -> unit) =
  w.current_fiber <- fiber_id;
  let record_exn e =
    set_state Finished;
    match e with
    | Interp.Npe npe ->
        w.npes <- npe :: w.npes;
        if not w.resume_on_npe then w.crashed <- true
    | Interp.Stuck s ->
        (* user-reachable runtime fault: survives like an NPE — the
           faulting fiber dies, the world keeps (or stops) scheduling
           under the same policy *)
        w.stucks <- s :: w.stucks;
        if not w.resume_on_npe then w.crashed <- true
    | Interp.Out_of_fuel -> w.crashed <- true
    | Nadroid_core.Fault.Fault _ as e -> raise e
    | e ->
        (* anything else escaping a fiber is a simulator bug: surface it
           as a structured internal fault, not a bare exception *)
        raise
          (Nadroid_core.Fault.Fault
             (Nadroid_core.Fault.Internal ("simulator: " ^ Printexc.to_string e)))
  in
  (match state with
  | Ready f ->
      Effect.Deep.match_with f ()
        {
          Effect.Deep.retc = (fun () -> set_state Finished);
          exnc = record_exn;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) -> set_state (Suspended k))
              | _ -> None);
        }
  | Suspended k ->
      (* resuming re-enters the original deep handler: retc / exnc / effc
         above fire again on return, crash, or the next yield *)
      Effect.Deep.continue k ()
  | Finished -> ());
  w.current_fiber <- -2

(* Start a callback on the looper and advance it to its first yield. The
   looper is expected to be idle. *)
let run_callback w ~recv ~meth ~args =
  let body () = call_inline w ~recv ~meth ~args in
  w.looper_fiber <- Some (Ready body);
  let rec drain () =
    match w.looper_fiber with
    | Some ((Ready _ | Suspended _) as st) ->
        step_fiber w ~fiber_id:(-1) ~state:st
          ~set_state:(fun s -> w.looper_fiber <- (match s with Finished -> None | s -> Some s));
        ignore drain
    | Some Finished | None -> ()
  in
  drain ()

let step_looper w =
  match w.looper_fiber with
  | Some ((Ready _ | Suspended _) as st) ->
      step_fiber w ~fiber_id:(-1) ~state:st
        ~set_state:(fun s -> w.looper_fiber <- (match s with Finished -> None | s -> Some s))
  | Some Finished -> w.looper_fiber <- None
  | None -> ()

let step_native w nt =
  step_fiber w ~fiber_id:nt.nt_id ~state:nt.nt_state ~set_state:(fun s -> nt.nt_state <- s)

let perform (w : t) (action : action) : unit =
  match action with
  | A_lifecycle (cls, cb) ->
      List.iter
        (fun a ->
          if String.equal a.act_cls cls then begin
            match Lifecycle.step a.act_state cb with
            | Some s' ->
                a.act_state <- s';
                run_callback w ~recv:(Value.Vobj a.act_obj) ~meth:cb ~args:[]
            | None -> ()
          end)
        w.activities
  | A_activity_ui (cls, cb) ->
      List.iter
        (fun a ->
          if String.equal a.act_cls cls then begin
            let args =
              match Sema.dispatch w.prog.Prog.sema cls cb with
              | Some m ->
                  List.map
                    (fun (ty, _) ->
                      match ty with
                      | Ast.Tint -> Value.Vint 0
                      | Ast.Tbool -> Value.Vbool false
                      | Ast.Tstring -> Value.Vstr ""
                      | Ast.Tvoid -> Value.Vnull
                      | Ast.Tclass c -> Value.Vobj (Heap.alloc w.heap ~cls:c))
                    m.Sema.rm_params
              | None -> []
            in
            run_callback w ~recv:(Value.Vobj a.act_obj) ~meth:cb ~args
          end)
        w.activities
  | A_service (cls, cb) ->
      List.iter
        (fun s ->
          if String.equal s.sv_cls cls then begin
            (match cb with
            | "onCreate" -> s.sv_state <- Sv_created
            | "onDestroy" -> s.sv_state <- Sv_destroyed
            | _ -> ());
            let args =
              match cb with "onStartCommand" -> [ Value.Vnull ] | _ -> []
            in
            run_callback w ~recv:(Value.Vobj s.sv_obj) ~meth:cb ~args
          end)
        w.services
  | A_click i -> (
      match List.nth_opt w.clicks i with
      | Some (view, l) -> run_callback w ~recv:l ~meth:"onClick" ~args:[ view ]
      | None -> ())
  | A_long_click i -> (
      match List.nth_opt w.long_clicks i with
      | Some (view, l) -> run_callback w ~recv:l ~meth:"onLongClick" ~args:[ view ]
      | None -> ())
  | A_broadcast_dynamic i -> (
      match List.nth_opt w.receivers i with
      | Some r ->
          let intent = Value.Vobj (Heap.alloc w.heap ~cls:"Intent") in
          run_callback w ~recv:r ~meth:"onReceive" ~args:[ intent ]
      | None -> ())
  | A_broadcast_manifest i -> (
      match List.nth_opt w.manifest_receivers i with
      | Some (_, obj) ->
          let intent = Value.Vobj (Heap.alloc w.heap ~cls:"Intent") in
          run_callback w ~recv:(Value.Vobj obj) ~meth:"onReceive" ~args:[ intent ]
      | None -> ())
  | A_connect i -> (
      match List.nth_opt w.connections i with
      | Some (c, connected) ->
          connected := true;
          let binder = Value.Vobj (Heap.alloc w.heap ~cls:"Binder") in
          run_callback w ~recv:c ~meth:"onServiceConnected" ~args:[ binder ]
      | None -> ())
  | A_disconnect i -> (
      match List.nth_opt w.connections i with
      | Some (c, connected) ->
          connected := false;
          run_callback w ~recv:c ~meth:"onServiceDisconnected" ~args:[]
      | None -> ())
  | A_location i -> (
      match List.nth_opt w.locations i with
      | Some l ->
          let loc = Value.Vobj (Heap.alloc w.heap ~cls:"Location") in
          run_callback w ~recv:l ~meth:"onLocationChanged" ~args:[ loc ]
      | None -> ())
  | A_sensor i -> (
      match List.nth_opt w.sensors i with
      | Some l -> run_callback w ~recv:l ~meth:"onSensorChanged" ~args:[ Value.Vint 1 ]
      | None -> ())
  | A_looper -> (
      match w.queue with
      | [] -> ()
      | tk :: rest ->
          w.queue <- rest;
          run_callback w ~recv:tk.tk_recv ~meth:tk.tk_meth ~args:tk.tk_args)
  | A_looper_step -> step_looper w
  | A_thread_step id -> (
      match List.find_opt (fun nt -> nt.nt_id = id) w.natives with
      | Some nt -> step_native w nt
      | None -> ())

(* The user-code class a given external action targets, used by the
   guided validator to bias schedules toward a warning's participants;
   [None] means the action is structural (looper / thread progress) and
   always relevant. *)
let action_class (w : t) (a : action) : string option =
  let class_of_value = function
    | Value.Vobj id -> Some (Heap.class_of w.heap id)
    | Value.Vnull | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> None
  in
  match a with
  | A_lifecycle (cls, _) | A_activity_ui (cls, _) | A_service (cls, _) -> Some cls
  | A_click i -> Option.bind (List.nth_opt w.clicks i) (fun (_, l) -> class_of_value l)
  | A_long_click i -> Option.bind (List.nth_opt w.long_clicks i) (fun (_, l) -> class_of_value l)
  | A_broadcast_dynamic i -> Option.bind (List.nth_opt w.receivers i) class_of_value
  | A_broadcast_manifest i -> Option.map fst (List.nth_opt w.manifest_receivers i)
  | A_connect i | A_disconnect i ->
      Option.bind (List.nth_opt w.connections i) (fun (c, _) -> class_of_value c)
  | A_location i -> Option.bind (List.nth_opt w.locations i) class_of_value
  | A_sensor i -> Option.bind (List.nth_opt w.sensors i) class_of_value
  | A_looper | A_looper_step | A_thread_step _ -> None

(* Parse the textual form produced by [pp_action] back into an action,
   resolving indices against the current world — the inverse needed to
   replay a recorded witness schedule. *)
let action_of_string (w : t) (s : string) : action option =
  let with_prefix p k =
    if String.length s > String.length p && String.equal (String.sub s 0 (String.length p)) p
    then k (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  let cls_meth k rest =
    match String.rindex_opt rest '.' with
    | Some i -> Some (k (String.sub rest 0 i) (String.sub rest (i + 1) (String.length rest - i - 1)))
    | None -> None
  in
  let indexed k rest = Option.map k (int_of_string_opt rest) in
  let candidates =
    [
      (fun () -> if String.equal s "looper" then Some A_looper else None);
      (fun () -> if String.equal s "looper-step" then Some A_looper_step else None);
      (fun () -> with_prefix "lifecycle:" (cls_meth (fun c m -> A_lifecycle (c, m))));
      (fun () -> with_prefix "ui:" (cls_meth (fun c m -> A_activity_ui (c, m))));
      (fun () -> with_prefix "service:" (cls_meth (fun c m -> A_service (c, m))));
      (fun () -> with_prefix "click:" (indexed (fun i -> A_click i)));
      (fun () -> with_prefix "longclick:" (indexed (fun i -> A_long_click i)));
      (fun () -> with_prefix "broadcast-manifest:" (indexed (fun i -> A_broadcast_manifest i)));
      (fun () -> with_prefix "broadcast:" (indexed (fun i -> A_broadcast_dynamic i)));
      (fun () -> with_prefix "connect:" (indexed (fun i -> A_connect i)));
      (fun () -> with_prefix "disconnect:" (indexed (fun i -> A_disconnect i)));
      (fun () -> with_prefix "location:" (indexed (fun i -> A_location i)));
      (fun () -> with_prefix "sensor:" (indexed (fun i -> A_sensor i)));
      (fun () -> with_prefix "thread:" (indexed (fun i -> A_thread_step i)));
    ]
  in
  match List.find_map (fun f -> f ()) candidates with
  (* only accept actions that are actually enabled right now *)
  | Some a when List.mem a (enabled_actions w) -> Some a
  | Some _ | None -> None

(* No-sleep-bug oracle (§9 extension): wake locks still held although
   every activity has left the foreground — the device cannot sleep. *)
let held_wakelocks w =
  List.filter
    (fun id -> Value.equal (Heap.get_field w.heap id ~key:"WakeLock.held") (Value.Vbool true))
    w.wakelocks

let all_backgrounded w =
  List.for_all
    (fun a ->
      match a.act_state with
      | Lifecycle.S_paused | Lifecycle.S_stopped | Lifecycle.S_destroyed | Lifecycle.S_init ->
          true
      | Lifecycle.S_created | Lifecycle.S_started | Lifecycle.S_resumed -> false)
    w.activities

let no_sleep_state w = all_backgrounded w && held_wakelocks w <> []

let npes w = List.rev w.npes

let stucks w = List.rev w.stucks

let logs w = List.rev w.logs
