(** IR interpreter: executes one method call to completion.

    Framework API calls are delegated to the embedding {!World} through
    [hooks]; [h_yield] runs before every shared-memory access so the
    scheduler can preempt native threads at race-relevant points (looper
    callbacks are atomic w.r.t. each other, §2.1). A dereference of
    [null] raises {!Npe} carrying the faulting site — the signal the
    validator matches against a warning's use site. *)

open Nadroid_lang
open Nadroid_ir

type npe = { npe_mref : Instr.mref; npe_instr_id : int; npe_loc : Loc.t }

exception Npe of npe

exception Out_of_fuel

type stuck = { st_mref : Instr.mref; st_instr_id : int; st_loc : Loc.t; st_reason : string }
(** A user-reachable runtime fault other than an NPE (division by zero,
    ...), located at the faulting instruction. The embedding survives it
    like an NPE; only true interpreter invariant violations escape as
    {!Nadroid_core.Fault.Internal}. *)

exception Stuck of stuck

type hooks = {
  h_api :
    recv:Value.t -> ms:Sema.method_sig -> args:Value.t list -> Nadroid_android.Api.kind -> Value.t;
  h_log : string -> unit;
  h_yield : Instr.t -> unit;
  h_fuel : unit -> unit;
  h_monitor : [ `Enter | `Exit ] -> Value.t -> unit;
}

type t = { prog : Prog.t; heap : Heap.t; hooks : hooks }

val field_key : Instr.fref -> string

val exec_body : t -> Cfg.body -> Value.t -> Value.t list -> Value.t

val call : t -> recv:Value.t -> meth:string -> args:Value.t list -> Value.t
(** Dynamic dispatch on the receiver's class; unoverridden framework
    callbacks are no-ops. *)
