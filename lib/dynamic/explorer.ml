(* Schedule exploration.

   The paper validated warnings by manually perturbing callback/thread
   schedules until a NullPointerException fired (§7, §8.4); this module
   mechanizes the same check:

   - {!random_run}: one seeded random walk over the enabled actions;
   - {!validate}: many seeded walks, looking for an NPE whose faulting
     instruction is the warning's use site — the witness that the
     potential UAF is truly harmful;
   - {!exhaustive}: bounded DFS over all schedules, used by tests on
     small programs where the full schedule space is tractable. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_core

type outcome = {
  o_steps : int;
  o_npes : Interp.npe list;
  o_stucks : Interp.stuck list;  (** non-NPE runtime faults survived *)
  o_crashed : bool;
  o_trace : World.action list;  (** actions taken, in order *)
}

let run_schedule ?resume_on_npe (prog : Prog.t)
    ~(choose : World.action list -> int -> World.action option) ~(max_steps : int) : outcome =
  let w = World.create ?resume_on_npe prog in
  let trace = ref [] in
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ && !steps < max_steps && not w.World.crashed do
    let actions = World.enabled_actions w in
    match choose actions !steps with
    | None -> continue_ := false
    | Some a ->
        trace := a :: !trace;
        incr steps;
        World.perform w a
  done;
  {
    o_steps = !steps;
    o_npes = World.npes w;
    o_stucks = World.stucks w;
    o_crashed = w.World.crashed;
    o_trace = List.rev !trace;
  }

let random_run ?resume_on_npe (prog : Prog.t) ~seed ~max_steps : outcome =
  let rng = Random.State.make [| seed |] in
  run_schedule ?resume_on_npe prog ~max_steps ~choose:(fun actions _ ->
      match actions with
      | [] -> None
      | _ :: _ -> Some (List.nth actions (Random.State.int rng (List.length actions))))

(* Does an NPE match a warning's use site? The faulting instruction is
   either the use [getfield] itself (when the base races) or a later
   dereference of the value the use loaded — follow the loaded temp
   through [Move]s to the instruction that finally crashed. *)
let npe_matches (prog : Prog.t) (w : Detect.warning) (npe : Interp.npe) =
  Instr.mref_equal npe.Interp.npe_mref w.Detect.w_use.Detect.s_mref
  && (npe.Interp.npe_instr_id = w.Detect.w_use.Detect.s_instr.Instr.id
     ||
     match Prog.body prog w.Detect.w_use.Detect.s_mref with
     | None -> false
     | Some body -> (
         match w.Detect.w_use.Detect.s_instr.Instr.i with
         | Instr.Getfield (d, _, _) | Instr.Getstatic (d, _) ->
             (* vars holding the loaded value: d closed under Moves *)
             let holds = Hashtbl.create 4 in
             Hashtbl.replace holds d.Instr.v_id ();
             let changed = ref true in
             while !changed do
               changed := false;
               Cfg.iter_instrs
                 (fun ins ->
                   match ins.Instr.i with
                   | Instr.Move (dst, src)
                     when Hashtbl.mem holds src.Instr.v_id
                          && not (Hashtbl.mem holds dst.Instr.v_id) ->
                       Hashtbl.replace holds dst.Instr.v_id ();
                       changed := true
                   | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _
                   | Instr.Putfield _ | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Call _
                   | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _
                   | Instr.Monitor_exit _ ->
                       ())
                 body
             done;
             let faulting = Cfg.find_instr body npe.Interp.npe_instr_id in
             (match faulting with
             | Some { Instr.i = Instr.Call (_, recv, _, _); _ }
             | Some { Instr.i = Instr.Getfield (_, recv, _); _ }
             | Some { Instr.i = Instr.Putfield (recv, _, _, _); _ } ->
                 Hashtbl.mem holds recv.Instr.v_id
             | Some _ | None -> false)
         | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Putfield _ | Instr.Putstatic _
         | Instr.Call _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _
         | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
             false))

(* Classes involved in a warning: the declaring classes of the use and
   free sites plus their enclosing (outer) classes — the activities whose
   events drive those callbacks. *)
let warning_classes (prog : Prog.t) (w : Detect.warning) : string list =
  let sema = prog.Prog.sema in
  let rec outers cls acc =
    match (Sema.get_class sema cls).Sema.rc_outer with
    | Some o -> outers o (o :: acc)
    | None -> acc
  in
  let of_site (s : Detect.site) =
    let cls = s.Detect.s_mref.Instr.mr_class in
    cls :: outers cls []
  in
  List.sort_uniq String.compare (of_site w.Detect.w_use @ of_site w.Detect.w_free)

(* A seeded walk biased toward the warning's participants: most of the
   time pick among structural actions and events on the involved classes;
   occasionally take a fully random step to keep the walk ergodic. *)
let guided_run (prog : Prog.t) (wng : Detect.warning) ~seed ~max_steps : outcome =
  let targets = warning_classes prog wng in
  let rng = Random.State.make [| seed; 0x9e37 |] in
  let w = World.create ~resume_on_npe:true prog in
  let trace = ref [] in
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ && !steps < max_steps do
    let actions = World.enabled_actions w in
    let relevant =
      List.filter
        (fun a ->
          match World.action_class w a with
          | None -> true
          | Some cls -> List.exists (String.equal cls) targets)
        actions
    in
    let pool = if relevant <> [] && Random.State.int rng 8 < 7 then relevant else actions in
    match pool with
    | [] -> continue_ := false
    | _ :: _ ->
        let a = List.nth pool (Random.State.int rng (List.length pool)) in
        trace := a :: !trace;
        incr steps;
        World.perform w a
  done;
  {
    o_steps = !steps;
    o_npes = World.npes w;
    o_stucks = World.stucks w;
    o_crashed = w.World.crashed;
    o_trace = List.rev !trace;
  }

type validation = { v_harmful : bool; v_runs : int; v_witness : World.action list option }

(* Search for a schedule triggering the warning's use on a freed field.
   [runs] seeded random walks of [max_steps] actions each. *)
let validate (prog : Prog.t) (w : Detect.warning) ?(runs = 150) ?(max_steps = 60) () : validation
    =
  let rec go seed =
    if seed >= runs then { v_harmful = false; v_runs = runs; v_witness = None }
    else
      (* crash-resume mode: one walk can witness several distinct NPEs,
         which matters in apps hosting many seeded bugs; alternate between
         uniform and lineage-guided walks *)
      let o =
        if seed mod 2 = 0 then random_run ~resume_on_npe:true prog ~seed ~max_steps
        else guided_run prog w ~seed ~max_steps
      in
      if List.exists (npe_matches prog w) o.o_npes then
        { v_harmful = true; v_runs = seed + 1; v_witness = Some o.o_trace }
      else go (seed + 1)
  in
  go 0

(* Validate a whole warning list; returns the subset confirmed harmful. *)
let validate_all (prog : Prog.t) (ws : Detect.warning list) ?runs ?max_steps () :
    (Detect.warning * validation) list =
  List.map (fun w -> (w, validate prog w ?runs ?max_steps ())) ws

(* Replay a recorded schedule (the textual action list a validation
   witness prints): deterministic reproduction of a crash for triage. *)
let replay (prog : Prog.t) (script : string list) : outcome =
  let w = World.create prog in
  let trace = ref [] in
  let steps = ref 0 in
  List.iter
    (fun line ->
      if not w.World.crashed then
        match World.action_of_string w (String.trim line) with
        | Some a ->
            trace := a :: !trace;
            incr steps;
            World.perform w a
        | None -> ())
    script;
  {
    o_steps = !steps;
    o_npes = World.npes w;
    o_stucks = World.stucks w;
    o_crashed = w.World.crashed;
    o_trace = List.rev !trace;
  }

(* Bounded exhaustive exploration: every schedule of length <= depth.
   Returns all distinct NPE sites encountered. [max_schedules] caps the
   number of schedules replayed — the explorer budget: the schedule
   space is exponential in depth, so an unbounded DFS over an
   adversarial input could run for hours. Cutting off early only loses
   potential witnesses (degrades toward fewer validations), never
   reports a spurious one. *)
let exhaustive ?max_schedules (prog : Prog.t) ~depth : Interp.npe list =
  let seen = Hashtbl.create 16 in
  let schedules = ref 0 in
  let exhausted () =
    match max_schedules with Some m -> !schedules >= m | None -> false
  in
  let rec go (prefix : int list) d =
    if not (exhausted ()) then begin
      incr schedules;
      let w = World.create prog in
      (* replay prefix *)
      let ok =
        List.for_all
          (fun idx ->
            let actions = World.enabled_actions w in
            match List.nth_opt actions idx with
            | Some a ->
                World.perform w a;
                true
            | None -> false)
          (List.rev prefix)
      in
      if ok then begin
        List.iter
          (fun (npe : Interp.npe) ->
            Hashtbl.replace seen (npe.Interp.npe_mref, npe.Interp.npe_instr_id) npe)
          (World.npes w);
        if d > 0 && not w.World.crashed then
          let n = List.length (World.enabled_actions w) in
          for i = 0 to n - 1 do
            go (i :: prefix) (d - 1)
          done
      end
    end
  in
  go [] depth;
  Hashtbl.fold (fun _ npe acc -> npe :: acc) seen []
