(** Schedule exploration: mechanises the paper's manual validation
    (§7, §8.4) — search for a schedule in which a warning's use site
    dereferences a freed field. *)

open Nadroid_ir
open Nadroid_core

type outcome = {
  o_steps : int;
  o_npes : Interp.npe list;
  o_stucks : Interp.stuck list;  (** non-NPE runtime faults survived *)
  o_crashed : bool;
  o_trace : World.action list;  (** actions taken, in order *)
}

val run_schedule :
  ?resume_on_npe:bool ->
  Prog.t ->
  choose:(World.action list -> int -> World.action option) ->
  max_steps:int ->
  outcome
(** Drive one world with an externally chosen schedule. *)

val random_run : ?resume_on_npe:bool -> Prog.t -> seed:int -> max_steps:int -> outcome
(** One seeded uniform random walk. Deterministic per seed. *)

val npe_matches : Prog.t -> Detect.warning -> Interp.npe -> bool
(** Does an NPE witness the warning? The faulting instruction is either
    the use [getfield] itself or a later dereference of the loaded value
    (followed through moves). *)

val warning_classes : Prog.t -> Detect.warning -> string list
(** Classes involved in a warning (declaring classes of both sites plus
    their outer chains) — the bias targets for guided walks. *)

val guided_run : Prog.t -> Detect.warning -> seed:int -> max_steps:int -> outcome
(** A seeded walk biased toward the warning's participants; falls back
    to fully random steps occasionally to stay ergodic. Runs in
    crash-resume mode. *)

type validation = { v_harmful : bool; v_runs : int; v_witness : World.action list option }

val validate : Prog.t -> Detect.warning -> ?runs:int -> ?max_steps:int -> unit -> validation
(** Alternate uniform and guided walks (crash-resume mode) until a
    witness schedule triggers the warning or the budget runs out. *)

val validate_all :
  Prog.t ->
  Detect.warning list ->
  ?runs:int ->
  ?max_steps:int ->
  unit ->
  (Detect.warning * validation) list

val replay : Prog.t -> string list -> outcome
(** Replay a recorded schedule (textual {!World.pp_action} lines, as a
    validation witness prints them); unknown or currently-disabled lines
    are skipped. *)

val exhaustive : ?max_schedules:int -> Prog.t -> depth:int -> Interp.npe list
(** Bounded-exhaustive exploration of every schedule up to [depth]
    actions; returns the distinct NPE sites encountered. The schedule
    space is exponential in [depth], so [max_schedules] caps the number
    of schedules replayed (the explorer budget); the cutoff can only
    lose witnesses, never invent one. *)
