(* IR interpreter.

   Executes one method call to completion. Framework API calls are
   delegated to the embedding {!World} through the [hooks] record;
   [h_yield] is invoked before every shared-memory access so that the
   scheduler can preempt native threads at race-relevant points (looper
   callbacks install a no-op yield: they are atomic, §2.1).

   A [getfield]/[putfield]/virtual call on [null] raises {!Npe} carrying
   the faulting site — the signal the validator matches against a
   warning's use site. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_android

type npe = { npe_mref : Instr.mref; npe_instr_id : int; npe_loc : Loc.t }

exception Npe of npe

exception Out_of_fuel

(* A user-reachable runtime fault other than an NPE (division by zero,
   ...): a well-typed program can trigger it, so the embedding must
   survive it like an NPE rather than treat it as an interpreter bug. *)
type stuck = { st_mref : Instr.mref; st_instr_id : int; st_loc : Loc.t; st_reason : string }

exception Stuck of stuck

(* Internal carrier for operation-level faults; [exec_instr] converts it
   into a located {!Stuck} at the faulting instruction. *)
exception Stuck_op of string

type hooks = {
  h_api : recv:Value.t -> ms:Sema.method_sig -> args:Value.t list -> Api.kind -> Value.t;
      (** handle a framework API call (post/register/spawn/cancel/opaque) *)
  h_log : string -> unit;
  h_yield : Instr.t -> unit;  (** preemption point before shared accesses *)
  h_fuel : unit -> unit;  (** called once per instruction; may raise {!Out_of_fuel} *)
  h_monitor : [ `Enter | `Exit ] -> Value.t -> unit;  (** object monitor operations *)
}

type t = { prog : Prog.t; heap : Heap.t; hooks : hooks }

let field_key (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

(* Java default value for an uninitialised field. *)
let default_of (ty : Ast.ty) : Value.t =
  match ty with
  | Ast.Tint -> Value.Vint 0
  | Ast.Tbool -> Value.Vbool false
  | Ast.Tstring -> Value.Vstr ""
  | Ast.Tvoid | Ast.Tclass _ -> Value.Vnull

let npe_at (body : Cfg.body) (ins : Instr.t) =
  raise (Npe { npe_mref = body.Cfg.mref; npe_instr_id = ins.Instr.id; npe_loc = ins.Instr.loc })

let obj_id body ins = function
  | Value.Vobj id -> id
  | Value.Vnull -> npe_at body ins
  | Value.Vint _ | Value.Vbool _ | Value.Vstr _ ->
      invalid_arg "Interp: receiver is not an object"

let eval_binop op a b =
  let int_op f =
    match (a, b) with
    | Value.Vint x, Value.Vint y -> Value.Vint (f x y)
    | _, _ -> invalid_arg "Interp: integer operands expected"
  in
  let cmp_op f =
    match (a, b) with
    | Value.Vint x, Value.Vint y -> Value.Vbool (f x y)
    | _, _ -> invalid_arg "Interp: integer operands expected"
  in
  match op with
  | Ast.Add -> (
      match (a, b) with
      | Value.Vstr x, Value.Vstr y -> Value.Vstr (x ^ y)
      | _, _ -> int_op ( + ))
  | Ast.Sub -> int_op ( - )
  | Ast.Mul -> int_op ( * )
  | Ast.Div -> (
      match b with
      | Value.Vint 0 -> raise (Stuck_op "division by zero")
      | _ -> int_op ( / ))
  | Ast.Mod -> (
      match b with
      | Value.Vint 0 -> raise (Stuck_op "modulo by zero")
      | _ -> int_op (fun x y -> x mod y))
  | Ast.Lt -> cmp_op ( < )
  | Ast.Le -> cmp_op ( <= )
  | Ast.Gt -> cmp_op ( > )
  | Ast.Ge -> cmp_op ( >= )
  | Ast.Eq -> Value.Vbool (Value.equal a b)
  | Ast.Ne -> Value.Vbool (not (Value.equal a b))
  | Ast.And | Ast.Or -> invalid_arg "Interp: && / || are lowered to control flow"

let eval_unop op a =
  match (op, a) with
  | Ast.Not, Value.Vbool b -> Value.Vbool (not b)
  | Ast.Neg, Value.Vint n -> Value.Vint (-n)
  | (Ast.Not | Ast.Neg), _ -> invalid_arg "Interp: bad unary operand"

let eval_intrinsic t name (args : Value.t list) : Value.t =
  match (name, args) with
  | "log", [ Value.Vstr s ] ->
      t.hooks.h_log s;
      Value.Vnull
  | "sleep", [ Value.Vint _ ] -> Value.Vnull
  | "i2s", [ Value.Vint n ] -> Value.Vstr (string_of_int n)
  | _, _ -> invalid_arg ("Interp: bad intrinsic call " ^ name)

(* Execute [body] with the given receiver and arguments; returns the
   returned value ([Vnull] for void). *)
let rec exec_body (t : t) (body : Cfg.body) (recv : Value.t) (args : Value.t list) : Value.t =
  let regs = Array.make body.Cfg.n_vars Value.Vnull in
  let set (v : Instr.var) x = regs.(v.Instr.v_id) <- x in
  let get (v : Instr.var) = regs.(v.Instr.v_id) in
  (match body.Cfg.params with
  | this :: rest ->
      set this recv;
      List.iteri (fun i p -> match List.nth_opt args i with Some a -> set p a | None -> ()) rest
  | [] -> ());
  let rec run_block bid =
    let blk = body.Cfg.blocks.(bid) in
    List.iter (exec_instr blk) blk.Cfg.b_instrs;
    match blk.Cfg.b_term with
    | Cfg.Goto n -> run_block n
    | Cfg.If { cond; t = bt; f = bf; _ } ->
        if Value.truthy (get cond) then run_block bt else run_block bf
    | Cfg.Ret None -> Value.Vnull
    | Cfg.Ret (Some v) -> get v
  and exec_instr blk (ins : Instr.t) =
    (* locate operation-level faults at the faulting instruction; a
       [Stuck] from a callee is already located and passes through *)
    try exec_instr_raw blk ins
    with Stuck_op reason ->
      raise
        (Stuck
           {
             st_mref = body.Cfg.mref;
             st_instr_id = ins.Instr.id;
             st_loc = ins.Instr.loc;
             st_reason = reason;
           })
  and exec_instr_raw _blk (ins : Instr.t) =
    t.hooks.h_fuel ();
    match ins.Instr.i with
    | Instr.Move (d, s) -> set d (get s)
    | Instr.Const (d, c) ->
        set d
          (match c with
          | Instr.Cnull -> Value.Vnull
          | Instr.Cint n -> Value.Vint n
          | Instr.Cbool b -> Value.Vbool b
          | Instr.Cstr s -> Value.Vstr s)
    | Instr.New (d, site, init, args) -> (
        let id = Heap.alloc t.heap ~cls:site.Instr.as_class in
        set d (Value.Vobj id);
        match init with
        | None -> ()
        | Some ms ->
            ignore (call t ~recv:(Value.Vobj id) ~meth:ms.Sema.ms_name ~args:(List.map get args)))
    | Instr.Getfield (d, o, fr) ->
        t.hooks.h_yield ins;
        let id = obj_id body ins (get o) in
        set d
          (match Heap.get_field_opt t.heap id ~key:(field_key fr) with
          | Some v -> v
          | None -> default_of fr.Sema.fr_ty)
    | Instr.Putfield (o, fr, s, _) ->
        t.hooks.h_yield ins;
        let id = obj_id body ins (get o) in
        Heap.set_field t.heap id ~key:(field_key fr) (get s)
    | Instr.Getstatic (d, fr) ->
        t.hooks.h_yield ins;
        set d
          (match Heap.get_static_opt t.heap ~key:(field_key fr) with
          | Some v -> v
          | None -> default_of fr.Sema.fr_ty)
    | Instr.Putstatic (fr, s, _) ->
        t.hooks.h_yield ins;
        Heap.set_static t.heap ~key:(field_key fr) (get s)
    | Instr.Call (dst, recv, ms, argvs) -> (
        let rv = get recv in
        let args = List.map get argvs in
        let result =
          match Api.classify ms with
          | Api.Other -> (
              (* virtual dispatch on the dynamic class *)
              match rv with
              | Value.Vnull -> npe_at body ins
              | Value.Vobj id -> (
                  let cls = Heap.class_of t.heap id in
                  match Sema.dispatch t.prog.Prog.sema cls ms.Sema.ms_name with
                  | Some m
                    when not
                           (Api.opaque_builtin t.prog.Prog.sema
                              {
                                Sema.ms_class = m.Sema.rm_class;
                                ms_name = m.Sema.rm_name;
                                ms_ret = m.Sema.rm_ret;
                                ms_params = m.Sema.rm_params;
                              }) ->
                      call t ~recv:rv ~meth:ms.Sema.ms_name ~args
                  | Some _ | None ->
                      (* framework-internal method: let the world model it *)
                      t.hooks.h_api ~recv:rv ~ms ~args Api.Other)
              | Value.Vint _ | Value.Vbool _ | Value.Vstr _ ->
                  invalid_arg "Interp: call on a primitive")
          | (Api.Spawn _ | Api.Post _ | Api.Register _ | Api.Cancel _) as k -> (
              match rv with
              | Value.Vnull -> npe_at body ins
              | Value.Vobj _ -> t.hooks.h_api ~recv:rv ~ms ~args k
              | Value.Vint _ | Value.Vbool _ | Value.Vstr _ ->
                  invalid_arg "Interp: API call on a primitive")
        in
        match dst with Some d -> set d result | None -> ())
    | Instr.Intrinsic (dst, name, argvs) -> (
        let r = eval_intrinsic t name (List.map get argvs) in
        match dst with Some d -> set d r | None -> ())
    | Instr.Unop (d, op, a) -> set d (eval_unop op (get a))
    | Instr.Binop (d, op, a, b) -> set d (eval_binop op (get a) (get b))
    | Instr.Monitor_enter v -> t.hooks.h_monitor `Enter (get v)
    | Instr.Monitor_exit v -> t.hooks.h_monitor `Exit (get v)
  in
  run_block Cfg.entry_id

(* Call [meth] on [recv] with dynamic dispatch; user-code entry point used
   by the world to run callbacks. *)
and call (t : t) ~(recv : Value.t) ~(meth : string) ~(args : Value.t list) : Value.t =
  match recv with
  | Value.Vnull -> invalid_arg ("Interp.call: null receiver for " ^ meth)
  | Value.Vint _ | Value.Vbool _ | Value.Vstr _ -> invalid_arg "Interp.call: primitive receiver"
  | Value.Vobj id -> (
      let cls = Heap.class_of t.heap id in
      match Prog.dispatch_body t.prog ~cls ~meth with
      | Some body -> exec_body t body recv args
      | None -> Value.Vnull (* unoverridden framework callback: no-op *))
