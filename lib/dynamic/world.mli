(** The simulated Android runtime: one main looper processing a callback
    at a time, preemptible native threads (OCaml effect handlers; fibers
    yield at shared-memory accesses whenever a native thread is live),
    object monitors, component lifecycles driven by the
    {!Nadroid_android.Lifecycle} automaton, and the registration /
    cancellation API surface.

    The scheduler is externally driven: {!enabled_actions} lists what may
    happen next and {!perform} executes one choice. Exploration
    strategies live in {!Explorer}. *)

open Nadroid_ir
open Nadroid_android

type task = {
  tk_recv : Value.t;
  tk_meth : string;
  tk_args : Value.t list;
  tk_source : Value.t option;  (** posting Handler, for removeCallbacksAndMessages *)
  tk_label : string;
}

type _ Effect.t += Yield : unit Effect.t

type thread_state =
  | Ready of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

type native = { nt_id : int; nt_label : string; mutable nt_state : thread_state }

type activity = {
  act_cls : string;
  act_obj : int;
  act_ui : string list;  (** overridden non-lifecycle entry callbacks *)
  mutable act_state : Lifecycle.state;
  mutable act_finished : bool;
}

type service_state = Sv_init | Sv_created | Sv_destroyed

type service = { sv_cls : string; sv_obj : int; mutable sv_state : service_state }

type t = {
  prog : Prog.t;
  heap : Heap.t;
  mutable queue : task list;  (** the main looper's FIFO *)
  mutable natives : native list;
  mutable next_nt : int;
  mutable clicks : (Value.t * Value.t) list;  (** (view, listener) *)
  mutable long_clicks : (Value.t * Value.t) list;
  mutable receivers : Value.t list;
  mutable connections : (Value.t * bool ref) list;
  mutable locations : Value.t list;
  mutable sensors : Value.t list;
  activities : activity list;
  services : service list;
  manifest_receivers : (string * int) list;
  views : (int * int, Value.t) Hashtbl.t;
  singletons : (string, Value.t) Hashtbl.t;
  mutable npes : Interp.npe list;
  mutable stucks : Interp.stuck list;
  mutable logs : string list;
  mutable fuel : int;
  mutable crashed : bool;
  resume_on_npe : bool;
  mutable wakelocks : int list;
  mutable looper_fiber : thread_state option;
  mutable current_fiber : int;
  locks : (int, int * int) Hashtbl.t;
}

val create : ?resume_on_npe:bool -> Prog.t -> t
(** Instantiate every component and reset the world. With
    [resume_on_npe] (validation mode), an NPE aborts only the faulting
    callback/thread instead of crashing the app. *)

(** One schedulable choice. *)
type action =
  | A_lifecycle of string * string  (** activity class, lifecycle callback *)
  | A_activity_ui of string * string  (** activity class, UI entry callback *)
  | A_service of string * string
  | A_click of int
  | A_long_click of int
  | A_broadcast_dynamic of int
  | A_broadcast_manifest of int
  | A_connect of int
  | A_disconnect of int
  | A_location of int
  | A_sensor of int
  | A_looper  (** start the next queued looper task *)
  | A_looper_step  (** advance the callback currently on the looper *)
  | A_thread_step of int  (** advance a native thread to its next yield *)

val pp_action : action Fmt.t

val enabled_actions : t -> action list
(** While a looper callback is mid-flight only it and native threads can
    progress — callbacks stay atomic w.r.t. each other. Clicks respect
    [setEnabled] and activity visibility; finished activities only tear
    down. *)

val perform : t -> action -> unit

val action_class : t -> action -> string option
(** The user-code class an external action targets ([None] for
    structural actions) — used by the guided validator. *)

val action_of_string : t -> string -> action option
(** Parse the textual form produced by {!pp_action}, returning the
    action only when it is currently enabled — the inverse used by
    witness-schedule replay. *)

val no_sleep_state : t -> bool
(** §9 extension oracle: some wake lock is held although every activity
    has left the foreground. *)

val held_wakelocks : t -> int list

val all_backgrounded : t -> bool

val npes : t -> Interp.npe list

val stucks : t -> Interp.stuck list
(** User-reachable runtime faults (division by zero, ...) recorded so
    far, oldest first; handled under the same crash/resume policy as
    NPEs. *)

val logs : t -> string list
