(* Threadification (§4): model event callbacks as threads.

   The transformed program is a forest: a dummy main thread (the initial
   looper) spawns one modeled thread per Entry Callback (lifecycle, UI,
   system events — §4.1); Posted Callbacks (Handler messages/runnables,
   service connections, receiver registrations, AsyncTask callbacks —
   §4.2) become children of the callback/thread that posted them,
   preserving the poster→postee lineage used both to reduce false
   positives (PHB) and to explain warnings to programmers (§7).

   The forest is derived from the points-to result: roots are the entry
   callbacks of components; every API edge (post/register/spawn) found in
   a thread's intra-thread code creates a child thread. Recursion is cut
   when a thread's entry instance already occurs in its ancestor chain
   (self-reposting runnables). *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_android
open Nadroid_analysis
module IntSet = Pta.IntSet
module Clock = Nadroid_clock.Clock

type kind =
  | Dummy_main
  | Entry_cb of Callback.kind  (** EC: child of the dummy main *)
  | Posted_cb of Callback.kind  (** PC: child of its poster *)
  | Native_thread  (** Thread.start / Executor.execute target *)
  | Async_background  (** AsyncTask.doInBackground *)

let pp_kind ppf = function
  | Dummy_main -> Fmt.string ppf "dummy-main"
  | Entry_cb k -> Fmt.pf ppf "EC(%a)" Callback.pp_kind k
  | Posted_cb k -> Fmt.pf ppf "PC(%a)" Callback.pp_kind k
  | Native_thread -> Fmt.string ppf "native-thread"
  | Async_background -> Fmt.string ppf "async-bg"

type origin =
  | O_main
  | O_root of Pta.root
  | O_edge of Pta.call_edge

type thread = {
  th_id : int;
  th_kind : kind;
  th_entry : int;  (** entry instance id; -1 for the dummy main *)
  th_parent : int option;  (** parent thread id *)
  th_origin : origin;
  th_class : string;  (** class declaring the entry method *)
  th_method : string;
  th_component : string option;  (** component of the EC ancestor, when any *)
}

type t = {
  threads : thread array;
  pta : Pta.t;
}

(* Does this modeled thread execute on the (single) main looper? *)
let on_looper th =
  match th.th_kind with
  | Dummy_main -> true
  | Entry_cb k | Posted_cb k -> Callback.on_looper k
  | Native_thread | Async_background -> false

let is_callback th =
  match th.th_kind with
  | Entry_cb _ | Posted_cb _ -> true
  | Dummy_main | Native_thread | Async_background -> false

(* Classify the thread created by an API edge, from the API kind and the
   callee's method name. *)
let kind_of_edge (sema : Sema.t) (e : Pta.call_edge) ~(callee : Pta.instance) : kind =
  let meth = callee.Pta.i_mref.Instr.mr_name in
  let cls = callee.Pta.i_mref.Instr.mr_class in
  let cb () =
    match Callback.of_method sema ~cls ~meth with
    | Some k -> k
    | None -> Callback.Runnable_run
  in
  match e.Pta.ce_kind with
  | Pta.E_ordinary -> invalid_arg "Threadify.kind_of_edge: ordinary edge"
  | Pta.E_api (Api.Spawn (Api.Spawn_thread | Api.Spawn_executor)) -> Native_thread
  | Pta.E_api (Api.Spawn Api.Spawn_async_task) ->
      if String.equal meth "doInBackground" then Async_background else Posted_cb (cb ())
  | Pta.E_api (Api.Post _) -> Posted_cb (cb ())
  | Pta.E_api (Api.Register (Api.Reg_service | Api.Reg_receiver)) -> Posted_cb (cb ())
  | Pta.E_api
      (Api.Register (Api.Reg_click | Api.Reg_long_click | Api.Reg_location | Api.Reg_sensor)) ->
      (* imperatively-registered UI/system callbacks are still *entry*
         callbacks, invoked by the runtime (§4.1) *)
      Entry_cb (cb ())
  | Pta.E_api (Api.Cancel _) | Pta.E_api Api.Other ->
      invalid_arg "Threadify.kind_of_edge: non-thread-creating API edge"

let run ?deadline (pta : Pta.t) : t =
  let sema = pta.Pta.prog.Prog.sema in
  (* One wall-clock check per thread expansion: each expansion scans the
     API edge list, so the overrun past an expired deadline is bounded
     by one scan. A partial forest would silently lose coverage (missing
     threads = missed warnings), so expiry here is a hard fault, not a
     degradation. *)
  let checkpoint =
    match deadline with
    | None -> fun () -> ()
    | Some d ->
        fun () ->
          if Clock.now () > d then
            raise (Fault.Fault (Fault.Budget Fault.P_modeling))
  in
  let threads = ref [] in
  let n = ref 0 in
  let add th =
    threads := th :: !threads;
    incr n;
    th
  in
  let main =
    add
      {
        th_id = 0;
        th_kind = Dummy_main;
        th_entry = -1;
        th_parent = None;
        th_origin = O_main;
        th_class = "@framework";
        th_method = "main";
        th_component = None;
      }
  in
  let intra entry = Pta.intra_instances pta entry in
  (* Expansion only reacts to API edges, and they are a small minority of
     the edge list; filtering once keeps each expansion from rescanning
     every ordinary call edge. The filtered list is a subsequence of the
     edge list, so children are still created in edge-list order. *)
  let api_edges =
    List.filter
      (fun (e : Pta.call_edge) ->
        match e.Pta.ce_kind with Pta.E_api _ -> true | Pta.E_ordinary -> false)
      (Pta.edges pta)
  in
  (* expand a thread: find API edges inside it and create children *)
  let rec expand (th : thread) (ancestors : int list) =
    checkpoint ();
    if th.th_entry >= 0 && not (List.mem th.th_entry ancestors) then begin
      let insts = intra th.th_entry in
      List.iter
        (fun (e : Pta.call_edge) ->
          match e.Pta.ce_kind with
          | Pta.E_ordinary -> ()
          | Pta.E_api _ when IntSet.mem e.Pta.ce_from insts ->
              let callee = Pta.instance pta e.Pta.ce_to in
              let kind = kind_of_edge sema e ~callee in
              let parent =
                match kind with
                | Entry_cb _ -> main  (* UI listeners hang off the dummy main *)
                | Posted_cb _ | Native_thread | Async_background | Dummy_main -> th
              in
              let child =
                add
                  {
                    th_id = !n;
                    th_kind = kind;
                    th_entry = e.Pta.ce_to;
                    th_parent = Some parent.th_id;
                    th_origin = O_edge e;
                    th_class = callee.Pta.i_mref.Instr.mr_class;
                    th_method = callee.Pta.i_mref.Instr.mr_name;
                    th_component = th.th_component;
                  }
              in
              expand child (th.th_entry :: ancestors)
          | Pta.E_api _ -> ())
        api_edges
    end
  in
  List.iter
    (fun (r : Pta.root) ->
      let root_th =
        add
          {
            th_id = !n;
            th_kind = Entry_cb r.Pta.r_cb_kind;
            th_entry = r.Pta.r_instance;
            th_parent = Some main.th_id;
            th_origin = O_root r;
            th_class = r.Pta.r_component.Component.cls;
            th_method = r.Pta.r_method;
            th_component = Some r.Pta.r_component.Component.cls;
          }
      in
      expand root_th [])
    (Pta.roots pta);
  let arr = Array.of_list (List.rev !threads) in
  Array.iteri (fun i th -> assert (th.th_id = i)) arr;
  { threads = arr; pta }

let threads t = Array.to_list t.threads

let thread t id = t.threads.(id)

let n_threads t = Array.length t.threads

(* Instances executed by a thread (its entry closed under ordinary calls).
   The PTA memoizes the closure per entry, so threads sharing an entry —
   and the expansions done during [run] — share one computation. *)
let instances_of t th =
  if th.th_entry < 0 then IntSet.empty
  else Pta.intra_instances t.pta th.th_entry

let parent t th = Option.map (thread t) th.th_parent

let rec ancestors t th =
  match parent t th with None -> [] | Some p -> p :: ancestors t p

let is_ancestor t ~anc ~desc = List.exists (fun a -> a.th_id = anc.th_id) (ancestors t desc)

(* The poster→postee chain shown to programmers (§7). *)
let lineage t th : string =
  let name th =
    match th.th_kind with
    | Dummy_main -> "main"
    | Entry_cb _ | Posted_cb _ | Native_thread | Async_background ->
        Fmt.str "%s.%s" th.th_class th.th_method
  in
  String.concat " -> " (List.rev_map name (th :: ancestors t th))

(* Static thread count in the paper's Table 1 sense: the dummy UI main
   thread + AsyncTask doInBackground threads + native Java threads. *)
let table1_thread_count t =
  1
  + List.length
      (List.filter
         (fun th ->
           match th.th_kind with
           | Native_thread | Async_background -> true
           | Dummy_main | Entry_cb _ | Posted_cb _ -> false)
         (threads t))

let pp_thread ppf th =
  Fmt.pf ppf "T%d %a %s.%s" th.th_id pp_kind th.th_kind th.th_class th.th_method

(* Graphviz export of the forest: modeled threads as nodes (shape by
   kind), parent edges solid; handy when triaging a large report. *)
let to_dot t : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph threadification {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  Array.iter
    (fun th ->
      let shape, color =
        match th.th_kind with
        | Dummy_main -> ("doubleoctagon", "black")
        | Entry_cb _ -> ("box", "blue")
        | Posted_cb _ -> ("ellipse", "darkgreen")
        | Native_thread -> ("diamond", "red")
        | Async_background -> ("diamond", "orange")
      in
      Buffer.add_string buf
        (Printf.sprintf "  t%d [label=\"%s\\n%s.%s\", shape=%s, color=%s];\n" th.th_id
           (Fmt.str "%a" pp_kind th.th_kind) th.th_class th.th_method shape color);
      match th.th_parent with
      | Some p -> Buffer.add_string buf (Printf.sprintf "  t%d -> t%d;\n" p th.th_id)
      | None -> ())
    t.threads;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_forest ppf t =
  Array.iter
    (fun th ->
      let depth = List.length (ancestors t th) in
      Fmt.pf ppf "%s%a@\n" (String.make (2 * depth) ' ') pp_thread th)
    t.threads
