(* Content-addressed on-disk cache for analysis results.

   A cache entry is addressed by the digest of (source bytes, canonical
   pipeline-config rendering, analyzer version): any change to the
   source, the configuration or the analyzer busts the address, so a hit
   can only ever return what a fresh run of the same analyzer over the
   same input would produce. Entries store the *rendered* artifacts — the
   warning counts, the final report string and the cold run's metrics —
   not the solver state, which keeps them small, Marshal-safe and exactly
   sufficient for every consumer (CLI output, golden canonical reports,
   bench timing rows).

   Integrity: the payload is guarded by a magic header and a digest; a
   truncated, corrupted or wrong-format file is reported as [Corrupt]
   carrying a structured {!Fault.t} and treated by callers as a miss —
   the cache can serve stale bytes never, wrong bytes never, at worst no
   bytes. Writes go through a temp file + rename, so a crashed writer
   leaves no half-written addressable entry. *)

(* Bump on any change to analysis semantics or to the entry format; old
   entries then simply stop being addressed (no migration, no unmarshal
   of foreign layouts). *)
let version = "nadroid-6"

let default_dir = "_nadroid_cache"

type entry = {
  e_potential : int;
  e_after_sound : int;
  e_after_unsound : int;
  e_report : string;  (** rendered final report ({!Report.to_string}) *)
  e_metrics : Pipeline.metrics;  (** metrics of the producing (cold) run *)
}

type outcome = Hit | Miss | Corrupt of Fault.t

(* Canonical rendering of everything in a config that can influence the
   result. Budgets are included: a budget-degraded report is a different
   (still sound) report. *)
let config_digest (c : Pipeline.config) : string =
  let names ns = String.concat "+" (List.map Filters.name_to_string ns) in
  let opt f = function None -> "-" | Some v -> f v in
  Printf.sprintf
    "k=%d;sound=%s;unsound=%s;atomic_ig=%b;pta_steps=%s;pta_tuples=%s;deadline=%s;sched=%s;solver=%s"
    c.Pipeline.k (names c.Pipeline.sound) (names c.Pipeline.unsound) c.Pipeline.atomic_ig
    (opt string_of_int c.Pipeline.budgets.Pipeline.pta_steps)
    (opt string_of_int c.Pipeline.budgets.Pipeline.pta_tuples)
    (opt string_of_float c.Pipeline.budgets.Pipeline.deadline)
    (opt string_of_int c.Pipeline.budgets.Pipeline.explorer_schedules)
    (match c.Pipeline.solver with
    | Nadroid_analysis.Pta.Worklist -> "worklist"
    | Nadroid_analysis.Pta.Reference -> "reference")

let key ?(version = version) ~(config : Pipeline.config) (src : string) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ Digest.string src; config_digest config; version ]))

let path ~dir k = Filename.concat dir (k ^ ".cache")

let magic = "nadroid-cache 1"

let corrupt what = Corrupt (Fault.Internal (Printf.sprintf "cache: %s" what))

let find ~dir (k : string) : entry option * outcome =
  let p = path ~dir k in
  if not (Sys.file_exists p) then (None, Miss)
  else
    match
      Faultinject.trip Faultinject.Cache_read;
      let ic = open_in_bin p in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception e ->
        (None, corrupt (Printf.sprintf "unreadable entry %s (%s)" p (Printexc.to_string e)))
    | raw -> (
        match String.index_opt raw '\n' with
        | None -> (None, corrupt ("truncated entry " ^ p))
        | Some nl -> (
            let header = String.sub raw 0 nl in
            let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
            match String.split_on_char ' ' header with
            | [ m1; m2; digest ] when String.equal (m1 ^ " " ^ m2) magic ->
                if not (String.equal digest (Digest.to_hex (Digest.string payload))) then
                  (None, corrupt ("checksum mismatch in " ^ p))
                else (
                  match (Marshal.from_string payload 0 : entry) with
                  | e ->
                      (* touch the entry so LRU eviction tracks hits, not
                         just stores; [utimes p 0 0] sets both times to
                         "now". Best-effort: a racing eviction may have
                         removed the file already. *)
                      (try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ());
                      (Some e, Hit)
                  | exception _ -> (None, corrupt ("undecodable entry " ^ p)))
            | _ -> (None, corrupt ("bad header in " ^ p))))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Per-process store counter: two domains of one process share a pid, so
   a pid-only temp name let concurrent stores of the same key interleave
   writes into one file and publish a garbled entry via [Sys.rename]. *)
let store_seq = Atomic.make 0

let store ~dir (k : string) (e : entry) : unit =
  Faultinject.trip Faultinject.Cache_write;
  mkdir_p dir;
  let payload = Marshal.to_string e [] in
  let header =
    Printf.sprintf "%s %s\n" magic (Digest.to_hex (Digest.string payload))
  in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp.%s.%d.%d" k (Unix.getpid ()) (Atomic.fetch_and_add store_seq 1))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      output_string oc payload);
  (match Faultinject.trip Faultinject.Cache_rename with
  | () -> ()
  | exception e ->
      (* a failed publish must not leak the temp file on top of the
         injected error — real rename failures are swept by sweep_tmp *)
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp (path ~dir k)

(* -- orphaned temp files --------------------------------------------------- *)

(* A crash (or SIGKILL) between the temp write and the rename strands a
   [.tmp.*] file: it is not addressable, [stat_entries] skips it, so
   [--cache-max-bytes] accounting never sees it and it leaks forever.
   Sweep such orphans when they are old enough that no live store can
   still own them — stores are sub-second, so minutes of age means a
   dead writer. Concurrent sweepers racing over the same orphan are
   harmless (removal tolerates ENOENT). *)
let sweep_tmp ?(max_age = 600.0) ~dir () : int =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let now = Unix.time () in
      let removed = ref 0 in
      Array.iter
        (fun name ->
          if String.starts_with ~prefix:".tmp." name then
            let p = Filename.concat dir name in
            match Unix.stat p with
            | { Unix.st_kind = Unix.S_REG; st_mtime; _ }
              when now -. st_mtime > max_age -> (
                try
                  Sys.remove p;
                  incr removed
                with Sys_error _ -> ())
            | _ | (exception Unix.Unix_error _) -> ())
        names;
      !removed

(* Sweep each directory once per process, the first time the cached
   front door opens it — "on cache open" without a stat storm on every
   analyze. *)
let swept : (string, unit) Hashtbl.t = Hashtbl.create 4

let swept_m = Mutex.create ()

let sweep_on_open ~dir =
  let fresh =
    Mutex.lock swept_m;
    let fresh = not (Hashtbl.mem swept dir) in
    if fresh then Hashtbl.replace swept dir ();
    Mutex.unlock swept_m;
    fresh
  in
  if fresh then ignore (sweep_tmp ~dir ())

(* -- size cap / LRU eviction --------------------------------------------- *)

(* Addressable entries of [dir] with their stat, skipping foreign files
   and entries a concurrent writer/evictor removed between readdir and
   stat. *)
let stat_entries ~dir : (string * float * int) list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if not (Filename.check_suffix name ".cache") then None
             else
               let p = Filename.concat dir name in
               match Unix.stat p with
               | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
                   Some (p, st_mtime, st_size)
               | _ | (exception Unix.Unix_error _) -> None)

let dir_bytes ~dir =
  List.fold_left (fun acc (_, _, size) -> acc + size) 0 (stat_entries ~dir)

(* Bring the combined size of the [*.cache] entries under [max_bytes] by
   removing least-recently-used entries first — mtimes order the entries
   because both {!store} (creation) and a {!find} hit (utimes touch)
   refresh them. Ties break on the path for determinism. Removals
   tolerate races: losing an entry to a concurrent evictor still shrinks
   the directory. Returns the number of entries removed. *)
let evict ~dir ~max_bytes : int =
  let entries =
    List.sort
      (fun (p1, m1, _) (p2, m2, _) -> match compare m1 m2 with 0 -> compare p1 p2 | c -> c)
      (stat_entries ~dir)
  in
  let total = List.fold_left (fun acc (_, _, size) -> acc + size) 0 entries in
  let removed = ref 0 in
  let excess = ref (total - max_bytes) in
  List.iter
    (fun (p, _, size) ->
      if !excess > 0 then begin
        (try
           Sys.remove p;
           incr removed
         with Sys_error _ -> ());
        (* count a racing removal as shrinkage too — the bytes are gone *)
        excess := !excess - size
      end)
    entries;
  !removed

let entry_of_result (t : Pipeline.t) : entry =
  {
    e_potential = List.length t.Pipeline.potential;
    e_after_sound = List.length t.Pipeline.after_sound;
    e_after_unsound = List.length t.Pipeline.after_unsound;
    e_report = Report.to_string t.Pipeline.threads t.Pipeline.after_unsound;
    e_metrics = t.Pipeline.metrics;
  }

(* Cached front door: serve the entry on a hit, otherwise analyze, store
   and return the fresh entry. The outcome tells the caller whether the
   result came from the cache and whether a corrupt entry was replaced —
   a corrupt entry never influences the returned result. [max_bytes]
   caps the directory size: eviction runs opportunistically after each
   store, and the just-stored entry carries the newest mtime, so it is
   the last candidate to go. *)
let analyze ?config ?max_bytes ?interner ~dir ~file (src : string) : entry * outcome =
  let config = Option.value config ~default:Pipeline.default_config in
  sweep_on_open ~dir;
  let k = key ~config src in
  match find ~dir k with
  | Some e, Hit -> (e, Hit)
  | _, ((Miss | Corrupt _) as outcome) ->
      (* [interner] stays out of the cache key on purpose: sharing a
         batch symbol table never changes the produced entry *)
      let t = Pipeline.analyze ~config ?interner ~file src in
      let e = entry_of_result t in
      (* persistence is best-effort: a failed store (disk full, injected
         I/O fault) costs the next run a recompute, never this run its
         already-computed result *)
      (try
         store ~dir k e;
         match max_bytes with
         | Some mb -> ignore (evict ~dir ~max_bytes:mb)
         | None -> ()
       with Sys_error _ | Unix.Unix_error _ -> ());
      (e, outcome)
  | None, Hit -> assert false
