(** Deterministic fault injection at the runtime's I/O and process
    seams.

    Production seams (cache reads/writes/renames, journal appends,
    worker spawns and pipes, server accept/send) call {!trip} with
    their {!site}. Unarmed, a trip is one atomic load. Armed, the plan
    decides deterministically whether and how the trip fires —
    raising the [Unix_error (EIO, "faultinject", _)] a failing kernel
    would produce, or delivering SIGKILL/SIGABRT/SIGTERM to self, or
    wedging — so crash-survival machinery can be driven from tests and
    CI with reproducible, scheduling-independent fault patterns.

    Plans are armed programmatically ({!arm_spec}, {!arm_seeded}) or
    from the {!env_var} environment variable ({!init_from_env}), which
    supervised worker processes inherit. *)

type site =
  | Cache_read
  | Cache_write
  | Cache_rename
  | Journal_append
  | Worker_spawn
  | Worker_pipe_read
  | Worker_task
  | Server_accept
  | Server_send

val all_sites : site list

val site_to_string : site -> string

val site_of_string : string -> site option

(** How a firing trip manifests: [Raise] a [Unix_error (EIO, _, _)];
    [Kill]/[Abort]/[Term] the calling process with the corresponding
    signal (Kill and Abort do not return); [Wedge] blocks for an hour
    (heartbeat-timeout coverage). *)
type action = Raise | Kill | Abort | Term | Wedge

val action_to_string : action -> string

(** [arm_spec spec] arms the plan described by [spec]:
    [entry (';' entry)*] where an entry is
    ["site:N\[:action\]"] (fire on the Nth occurrence of the site in
    this process), ["site=KEY\[:action\]"] (fire on every occurrence
    whose caller-provided key matches), or seeded-mode configuration
    ["seed=N"], ["rate=F"], ["sites=a+b"] (every occurrence of the
    listed sites fires with probability [rate], decided by a hash of
    seed, site and occurrence index). The default action is [raise].
    An empty spec disarms. Arming resets occurrence and fire
    counters. *)
val arm_spec : string -> (unit, string) result

(** [arm_seeded ~seed ~rate ~sites ()] arms only the seeded mode. *)
val arm_seeded : seed:int -> rate:float -> sites:site list -> unit -> unit

val disarm : unit -> unit

val armed : unit -> bool

(** Number of trips that fired since the last arming. *)
val fires : unit -> int

(** [trip ?key site] — called by the instrumented seams. Raises or
    signals per the armed plan; a no-op when unarmed. [key] names the
    work item at sites where a per-item match is meaningful (e.g. the
    basename of the file a worker is about to analyze). *)
val trip : ?key:string -> site -> unit

(** Name of the environment variable ([NADROID_FAULTS]) holding a spec
    for {!init_from_env}. *)
val env_var : string

(** Arm from {!env_var} if set; [Ok ()] when unset. *)
val init_from_env : unit -> (unit, string) result
