(** Programmer-facing warning reports (paper §7): racy field, use/free
    sites with source locations, origin category, and the
    callback/thread lineage chains explaining how each side runs. *)

open Nadroid_lang

type t = {
  field : string;
  use_site : string;
  use_loc : Loc.t;
  free_site : string;
  free_loc : Loc.t;
  category : Classify.category;
  use_lineages : string list;
  free_lineages : string list;
}

val field_name : Nadroid_ir.Instr.fref -> string

val of_warning : Threadify.t -> Detect.warning -> t

val pp : t Fmt.t

val pp_all : Format.formatter -> Threadify.t -> Detect.warning list -> unit
(** Highest-risk categories first. *)

val to_string : Threadify.t -> Detect.warning list -> string

val pp_degraded : Pipeline.degradation list Fmt.t
(** The degraded-mode marker ([DEGRADED (sound, may over-report): ...]);
    prints nothing for a full-precision run. *)

val pp_metrics : Pipeline.metrics Fmt.t
(** Human-readable per-phase breakdown, per-filter prune counts, and the
    degraded-mode marker when any budget fallback fired. *)

val metrics_to_json : ?name:string -> Pipeline.metrics -> string
(** One flat JSON object:
    [{"name":..., "frontend_lex":s, "frontend_parse":s,
      "frontend_sema":s, "frontend_lower":s, "pta":s, "aux":s,
      "threadify":s, "detect":s, "create_ctx":s, "filter":s,
      "phase_sum":s, "wall":s,
      "pruned":{"MHB":n, ...}, "degraded":["pta-k=1", ...]}]
    (times in seconds). *)

val fault_to_json : ?name:string -> Fault.t -> string
(** [{"name":..., "fault":"frontend"|"budget"|"internal", "exit":n,
      "detail":...}]. *)
