(** A reusable fixed-size domain pool (OCaml 5 [Domain]/[Mutex]) with a
    submit/await queue.

    Two entry points share the same workers:

    - {!Pool}: a persistent pool for long-lived processes (the serve
      daemon) — create once, submit tasks as requests arrive, await
      their futures, shut down gracefully (queued work drains first).
    - {!map_result}/{!map}: the batch primitive — results in input
      order regardless of scheduling; tasks must not share mutable
      state. Pass [?pool] to run a batch on a persistent pool, or omit
      it for a self-contained map with the historical domain budget. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

module Pool : sig
  type t
  (** A fixed set of worker domains sharing one task queue. *)

  type 'a future
  (** The pending result of a submitted task. *)

  val create : ?jobs:int -> unit -> t
  (** Spawn [jobs] workers (default {!default_jobs}, min 1). *)

  val jobs : t -> int
  (** Worker-domain count of the pool. *)

  val submit : t -> (unit -> 'a) -> 'a future
  (** Enqueue a task. Tasks start in submission order (completion order
      depends on scheduling). @raise Invalid_argument after
      {!shutdown}. *)

  val await : 'a future -> ('a, exn) result
  (** Block until the task finishes; its exception, if any, is captured
      in the result, never re-raised into the awaiting domain. *)

  val help : t -> unit
  (** Run queued tasks in the calling domain until the queue is empty —
      lets a caller that would otherwise block participate in its own
      batch (the transient-map path uses this to keep the historical
      concurrency budget). *)

  val shutdown : t -> unit
  (** Graceful: stop accepting work, let the workers drain the queue,
      then join them. Idempotent. *)
end

val map_result :
  ?pool:Pool.t -> ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Crash-isolated map: applies [f] to every element, capturing a task's
    exception as [Error] in its own slot while the remaining items still
    run — one poisoned input cannot lose the batch. Deterministic in
    input order. With [?pool], tasks run on the persistent pool (the
    caller only awaits); otherwise up to [jobs] (default
    {!default_jobs}) run concurrently, counting the caller — [jobs = 1]
    runs in the calling domain with no spawns. *)

val map : ?pool:Pool.t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Fail-fast map on top of {!map_result}: the first failure in input
    order is re-raised in the caller after the batch completes. Same
    output as [List.map f xs] whenever [f] is pure. *)

type sched =
  | Static  (** per-domain round-robin split, no rebalancing (baseline) *)
  | Steal  (** idle workers steal the back half of the longest peer deque *)

val default_window : int
(** Default admission window of {!stream} (256 in-flight indices). *)

val stream :
  ?jobs:int ->
  ?window:int ->
  ?sched:sched ->
  n:int ->
  (int -> 'b) ->
  (int -> ('b, exn) result -> unit) ->
  unit
(** [stream ~n f emit] computes [f 0 .. f (n-1)] on up to [jobs] domains
    (counting the caller) and calls [emit i result] for every index in
    strict input order, crash-isolated per slot like {!map_result}. At
    most [window] indices (default {!default_window}, floored at
    [2*jobs]) are past the emission watermark at once, so memory stays
    bounded independent of [n] — the streaming analogue of
    {!map_result} for corpus-scale batches. [emit] is serialized on one
    domain at a time and must not re-enter this module. If [emit]
    raises, no further results are emitted and the exception is
    re-raised in the caller after in-flight tasks finish. [jobs = 1]
    runs everything sequentially in the calling domain. *)
