(** A fixed-size domain pool (OCaml 5 [Domain]/[Mutex]) for data-parallel
    analysis over independent work items.

    Results are returned in input order regardless of [jobs] or
    scheduling; tasks must not share mutable state. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Crash-isolated map: applies [f] to every element on up to [jobs]
    domains (default {!default_jobs}; [jobs = 1] runs in the calling
    domain with no spawns). A task's exception is captured as [Error] in
    its own slot and the remaining items still run — one poisoned input
    cannot lose the batch. Deterministic in input order. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Fail-fast map on top of {!map_result}: the first failure in input
    order is re-raised in the caller after all domains have joined.
    Same output as [List.map f xs] whenever [f] is pure. *)
