(** A fixed-size domain pool (OCaml 5 [Domain]/[Mutex]) for data-parallel
    analysis over independent work items.

    Results are returned in input order regardless of [jobs] or
    scheduling; tasks must not share mutable state. The first exception
    raised by any task aborts the remaining work and is re-raised in the
    caller after all domains have joined. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element on up to [jobs]
    domains (default {!default_jobs}; [jobs = 1] runs in the calling
    domain with no spawns). Deterministic: same output as [List.map f xs]
    whenever [f] is pure. *)
