(** Structured fault taxonomy for the analysis runtime.

    Every failure of one analysis run folds into one of three classes so
    batch drivers can survive a bad input, report it, and keep going:
    [Frontend] (the input is bad — a diagnostic), [Budget] (a per-phase
    resource budget was exhausted with no sound degradation left), and
    [Internal] (an invariant violation — always a bug). Each class maps
    to a distinct CLI exit code. *)

open Nadroid_lang

type phase = P_pta | P_modeling | P_detect | P_filters | P_explorer | P_batch
(** [P_batch] marks work the batch driver itself gave up on — e.g. apps
    never started because SIGTERM stopped the run — rather than a phase
    inside one app's analysis. *)

type t =
  | Frontend of Diag.t  (** lexing / parsing / typing diagnostic *)
  | Budget of phase  (** budget exhausted, no degradation left *)
  | Internal of string  (** invariant violation — a bug *)

exception Fault of t

val phase_to_string : phase -> string

val class_to_string : t -> string
(** ["frontend"], ["budget"] or ["internal"]. *)

val exit_code : t -> int
(** 1 = frontend, 3 = budget, 4 = internal (0 means no fault; 2 and
    124/125 are reserved by cmdliner). Ordered by severity. *)

val worst_exit : t list -> int
(** [max] of {!exit_code} over the batch; 0 when empty. *)

val pp : t Fmt.t

val to_string : t -> string

val detail : t -> string
(** The class-specific payload (diagnostic text, phase name, message). *)

val of_exn : exn -> t
(** Fold an escaped exception into the taxonomy: {!Diag.Error} becomes
    [Frontend], {!Fault} unwraps, anything else is [Internal]. *)

val wrap : (unit -> 'a) -> ('a, t) result
(** Run a computation, catching {e every} exception into a fault. *)
