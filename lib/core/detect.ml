(* UAF ordering-violation detection (§5).

   After threadification, collect every {e use} ([getfield]) and {e free}
   ([putfield] of the null literal) executed by each modeled thread, and
   report a potential UAF for every use/free pair on the same abstract
   field — base points-to sets overlap on an escaping object — coming
   from two different modeled threads.

   Per the paper: lockset analysis is ignored at this stage (locks do not
   prevent ordering violations) and no MHP analysis is used; the
   happens-before filters (§6) replace it. The final candidate join runs
   on the Datalog engine, mirroring Chord's bddbddb-based pipeline. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_analysis
module IntSet = Pta.IntSet
module Clock = Nadroid_clock.Clock

type site = { s_inst : int; s_mref : Instr.mref; s_instr : Instr.t }

let pp_site ppf s =
  Fmt.pf ppf "%a#%d" Instr.pp_mref s.s_mref s.s_instr.Instr.id

let site_key s = Fmt.str "%s.%s#%d" s.s_mref.Instr.mr_class s.s_mref.Instr.mr_name s.s_instr.Instr.id

type access = {
  a_thread : int;  (** thread id *)
  a_site : site;
  a_field : Instr.fref;
  a_objs : IntSet.t;  (** abstract base objects; empty for statics *)
  a_static : bool;
}

type warning = {
  w_field : Instr.fref;
  w_use : site;
  w_free : site;
  w_pairs : (int * int) list;  (** (use-thread, free-thread) pairs, pruned by filters *)
}

let warning_key w = (site_key w.w_use, site_key w.w_free)

let field_key (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

(* Periodic wall-clock checkpoint for in-flight cancellation. A partial
   warning list would silently lose coverage (detection must be complete
   for the report to be sound), so expiry here is a hard fault. The
   clock is sampled every 256 calls to keep the common path cheap. *)
let deadline_checkpoint = function
  | None -> fun () -> ()
  | Some d ->
      let n = ref 0 in
      fun () ->
        incr n;
        if !n land 255 = 0 && Clock.now () > d then
          raise (Fault.Fault (Fault.Budget Fault.P_detect))

(* Collect uses and frees per thread.

   Threads overlap heavily on the instances they execute, and an
   access's (site, field, points-to) payload depends only on the
   instance — just the thread id differs. So each instance's body is
   scanned once into a template list, and the per-thread pass merely
   stamps templates with the thread id, instead of rescanning every
   shared body (and re-querying the points-to sets) per thread. *)
type templ = { t_use : bool; t_site : site; t_field : Instr.fref; t_objs : IntSet.t; t_static : bool }

let collect_accesses ?deadline (tf : Threadify.t) : access list * access list =
  let checkpoint = deadline_checkpoint deadline in
  let pta = tf.Threadify.pta in
  let prog = pta.Pta.prog in
  (* instance id -> its field accesses, in instruction order *)
  let templs : (int, templ list) Hashtbl.t = Hashtbl.create 256 in
  let templates_of inst_id =
    match Hashtbl.find_opt templs inst_id with
    | Some ts -> ts
    | None ->
        let inst = Pta.instance pta inst_id in
        let acc = ref [] in
        (match Prog.body prog inst.Pta.i_mref with
        | None -> ()
        | Some body ->
            Cfg.iter_instrs
              (fun ins ->
                checkpoint ();
                let site () = { s_inst = inst_id; s_mref = inst.Pta.i_mref; s_instr = ins } in
                match ins.Instr.i with
                | Instr.Getfield (_, o, fr) ->
                    acc :=
                      { t_use = true; t_site = site (); t_field = fr;
                        t_objs = Pta.pts_var pta ~inst:inst_id ~v:o; t_static = false }
                      :: !acc
                | Instr.Getstatic (_, fr) ->
                    acc :=
                      { t_use = true; t_site = site (); t_field = fr;
                        t_objs = IntSet.empty; t_static = true }
                      :: !acc
                | Instr.Putfield (o, fr, _, Instr.Src_null) ->
                    acc :=
                      { t_use = false; t_site = site (); t_field = fr;
                        t_objs = Pta.pts_var pta ~inst:inst_id ~v:o; t_static = false }
                      :: !acc
                | Instr.Putstatic (fr, _, Instr.Src_null) ->
                    acc :=
                      { t_use = false; t_site = site (); t_field = fr;
                        t_objs = IntSet.empty; t_static = true }
                      :: !acc
                | Instr.Putfield (_, _, _, Instr.Src_var)
                | Instr.Putstatic (_, _, Instr.Src_var)
                | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Call _
                | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _
                | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
                    ())
              body);
        let ts = List.rev !acc in
        Hashtbl.replace templs inst_id ts;
        ts
  in
  let uses = ref [] and frees = ref [] in
  List.iter
    (fun th ->
      if th.Threadify.th_entry >= 0 then
        IntSet.iter
          (fun inst_id ->
            List.iter
              (fun t ->
                let a =
                  {
                    a_thread = th.Threadify.th_id;
                    a_site = t.t_site;
                    a_field = t.t_field;
                    a_objs = t.t_objs;
                    a_static = t.t_static;
                  }
                in
                if t.t_use then uses := a :: !uses else frees := a :: !frees)
              (templates_of inst_id))
          (Threadify.instances_of tf th))
    (Threadify.threads tf);
  (!uses, !frees)

(* Do two accesses touch the same abstract memory, assuming they are on
   the same abstract field? Two static accesses of one field name the
   same cell; two instance accesses need a common, escaping base object.
   A static and an instance access never alias — they live in different
   storage even when the field keys collide. *)
let alias_memory (esc : Escape.t) (a : access) (b : access) =
  match (a.a_static, b.a_static) with
  | true, true -> true
  | false, false ->
      let common = IntSet.inter a.a_objs b.a_objs in
      IntSet.exists (fun oid -> Escape.escapes esc oid) common
  | true, false | false, true -> false

let may_alias (esc : Escape.t) (a : access) (b : access) =
  String.equal (field_key a.a_field) (field_key b.a_field) && alias_memory esc a b

(* The race rule both joins share:
     race(U, F) :- alias(U, F), use_at(U, K), free_at(F, K).
   [alias] is loaded as an EDB relation computed from points-to overlap.
   The body leads with [alias]: it is the sparsest relation (only
   genuinely aliasing pairs), so the join enumerates |alias| bindings and
   closes each with two indexed probes — leading with [use_at] made the
   engine walk every same-field use x free pair just to filter almost all
   of them against [alias]. Both fact loaders insert [alias] in
   (use index asc, free index asc) order so the derivation order, and
   with it the warning order, is unchanged. *)
let solve_race db : (int * int) list =
  let v x = Nadroid_datalog.Engine.Var x in
  Nadroid_datalog.Engine.add_rule db
    (Nadroid_datalog.Engine.atom "race" [ v "u"; v "f" ])
    [
      Nadroid_datalog.Engine.Pos (Nadroid_datalog.Engine.atom "alias" [ v "u"; v "f" ]);
      Nadroid_datalog.Engine.Pos (Nadroid_datalog.Engine.atom "use_at" [ v "u"; v "k" ]);
      Nadroid_datalog.Engine.Pos (Nadroid_datalog.Engine.atom "free_at" [ v "f"; v "k" ]);
    ];
  List.filter_map
    (fun row ->
      match row with
      | [| u; f |] ->
          let ui = int_of_string (String.sub u 1 (String.length u - 1)) in
          let fi = int_of_string (String.sub f 1 (String.length f - 1)) in
          Some (ui, fi)
      | _ -> None)
    (Nadroid_datalog.Engine.query db "race")

(* Alias facts are generated per field bucket: accesses are grouped by
   interned field key first, so the pair enumeration is O(sum over
   fields of uses_f * frees_f) instead of the |uses| * |frees| global
   cross-product with a string comparison per pair. The Datalog [race]
   join itself is unchanged, mirroring Chord's bddbddb pipeline. *)
let candidate_join ?deadline ?max_tuples ?symbols (esc : Escape.t) (uses : access array)
    (frees : access array) : (int * int) list =
  let checkpoint = deadline_checkpoint deadline in
  let db = Nadroid_datalog.Engine.create ?symbols ?max_tuples () in
  let sym = Nadroid_datalog.Engine.symbols db in
  let uid i = "u" ^ string_of_int i and fid i = "f" ^ string_of_int i in
  (* intern every access's field key and row label once, up front; the
     relations then load at the id level *)
  let ukey_ids = Array.map (fun a -> Nadroid_datalog.Symbol.intern sym (field_key a.a_field)) uses in
  let fkey_ids = Array.map (fun a -> Nadroid_datalog.Symbol.intern sym (field_key a.a_field)) frees in
  let uid_ids = Array.init (Array.length uses) (fun i -> Nadroid_datalog.Symbol.intern sym (uid i)) in
  let fid_ids = Array.init (Array.length frees) (fun i -> Nadroid_datalog.Symbol.intern sym (fid i)) in
  Nadroid_datalog.Engine.facts_ids db "use_at"
    (List.init (Array.length uses) (fun i -> [| uid_ids.(i); ukey_ids.(i) |]));
  Nadroid_datalog.Engine.facts_ids db "free_at"
    (List.init (Array.length frees) (fun i -> [| fid_ids.(i); fkey_ids.(i) |]));
  (* bucket frees by interned key, then enumerate per-bucket pairs *)
  let buckets : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun j k ->
      match Hashtbl.find_opt buckets k with
      | Some l -> l := j :: !l
      | None -> Hashtbl.add buckets k (ref [ j ]))
    fkey_ids;
  (* cons-building leaves buckets free-index-descending; flip them so the
     alias facts land in the (use asc, free asc) order [solve_race]'s
     derivation order contract requires *)
  Hashtbl.iter (fun _ l -> l := List.rev !l) buckets;
  let alias = ref [] in
  Array.iteri
    (fun i a ->
      match Hashtbl.find_opt buckets ukey_ids.(i) with
      | None -> ()
      | Some frees_of_key ->
          List.iter
            (fun j ->
              checkpoint ();
              let b = frees.(j) in
              if a.a_thread <> b.a_thread && alias_memory esc a b then
                alias := [| uid_ids.(i); fid_ids.(j) |] :: !alias)
            !frees_of_key)
    uses;
  Nadroid_datalog.Engine.facts_ids db "alias" (List.rev !alias);
  solve_race db

(* Reference oracle for the equivalence property test: the original
   naive cross-product join, per-pair field-key comparison included. *)
let candidate_join_naive (esc : Escape.t) (uses : access array) (frees : access array) :
    (int * int) list =
  let db = Nadroid_datalog.Engine.create () in
  let uid i = "u" ^ string_of_int i and fid i = "f" ^ string_of_int i in
  Array.iteri (fun i a -> Nadroid_datalog.Engine.fact db "use_at" [ uid i; field_key a.a_field ]) uses;
  Array.iteri (fun i a -> Nadroid_datalog.Engine.fact db "free_at" [ fid i; field_key a.a_field ]) frees;
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if a.a_thread <> b.a_thread && may_alias esc a b then
            Nadroid_datalog.Engine.fact db "alias" [ uid i; fid j ])
        frees)
    uses;
  solve_race db

(* Detect all potential UAF warnings, deduplicated to (use site, free
   site) pairs as in the paper ("each warning is a pair of free-use
   operations", §8.3). *)
let run_with ?deadline ~join (tf : Threadify.t) (esc : Escape.t) : warning list =
  let uses_l, frees_l = collect_accesses ?deadline tf in
  let uses = Array.of_list uses_l and frees = Array.of_list frees_l in
  let pairs = join esc uses frees in
  (* pair membership is tracked per warning in a hash set (the pair list
     used to be scanned with [List.mem], quadratic in pairs); the
     accumulated [w_pairs] order is unchanged. Warnings dedup on the
     structural site identity (method reference + instruction id, the
     same components [site_key] formats) rather than formatted key
     strings — rendering two keys per race pair dominated the dedup. *)
  let skey s = (s.s_mref.Instr.mr_class, s.s_mref.Instr.mr_name, s.s_instr.Instr.id) in
  let table
      : ( (string * string * int) * (string * string * int),
          warning ref * (int * int, unit) Hashtbl.t )
        Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (ui, fi) ->
      let u = uses.(ui) and f = frees.(fi) in
      let key = (skey u.a_site, skey f.a_site) in
      let p = (u.a_thread, f.a_thread) in
      match Hashtbl.find_opt table key with
      | Some (w, seen) ->
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.add seen p ();
            w := { !w with w_pairs = p :: !w.w_pairs }
          end
      | None ->
          let w =
            ref { w_field = u.a_field; w_use = u.a_site; w_free = f.a_site; w_pairs = [ p ] }
          in
          let seen = Hashtbl.create 8 in
          Hashtbl.add seen p ();
          Hashtbl.add table key (w, seen);
          order := key :: !order)
    pairs;
  List.rev_map (fun key -> !(fst (Hashtbl.find table key))) !order

let run ?deadline ?max_tuples ?symbols tf esc =
  try run_with ?deadline ~join:(candidate_join ?deadline ?max_tuples ?symbols) tf esc
  with Nadroid_datalog.Relation.Out_of_budget ->
    (* the candidate join blew the relation cardinality ceiling; unlike
       the PTA there is no coarser precision to fall back to, so this is
       a hard budget fault *)
    raise (Fault.Fault (Fault.Budget Fault.P_detect))

let run_reference tf esc = run_with ~join:candidate_join_naive tf esc

let n_warnings = List.length
