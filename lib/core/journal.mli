(** Append-only checkpoint journal for batch runs.

    Every completed app — success or structured fault — is appended as
    one checksummed, length-framed record (the {!Cache.store} framing
    idiom) and flushed, so it survives the process being killed at any
    instant. Replay recovers the longest valid record prefix; the
    half-written tail of a crashed append fails its checksum and is
    truncated away on reopen. A batch run with [--resume] replays the
    journal and re-analyzes only the apps whose record is missing or
    whose {!Cache.key} changed, producing output byte-identical to an
    uninterrupted run. *)

type record = {
  j_name : string;  (** the app/file name as the batch addressed it *)
  j_key : string;
      (** {!Cache.key} of (source, config, version) at completion; a
          resumed run only reuses a record whose key still matches *)
  j_result : (Cache.entry, Fault.t) result;
}

type t

val open_ : path:string -> resume:bool -> t * record list
(** Open a journal for appending, creating parent directories as
    needed. With [resume = true], replay the longest valid record
    prefix (returned), truncate any garbage tail, and append after it;
    with [resume = false], start empty (truncating any previous
    content). *)

val append : t -> record -> unit
(** Append one record and flush it to the kernel. Serialized across
    domains; raises on I/O failure (injected or real) — the caller
    decides whether lost durability is worth surfacing. *)

val close : t -> unit

val replay : path:string -> record list
(** The longest valid record prefix of the journal at [path]; [[]] if
    the file is absent or starts with garbage. Read-only. *)

val latest : record list -> (string, record) Hashtbl.t
(** Index records by [j_name], last record winning — a resumed run may
    have journaled an app once per attempt. *)

val magic : string
