(* The end-to-end nAdroid pipeline (Fig. 2):

     source --(frontend)--> program --(threadification §4)--> threads
            --(detection §5)--> potential UAFs
            --(sound filters §6.1)--> --(unsound filters §6.2)--> report

   Timings for the three phases (modeling / detection / filtering) are
   recorded to reproduce the §8.8 breakdown. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_analysis
module Clock = Nadroid_clock.Clock

(* Per-phase resource budgets. [pta_steps] is deterministic (instruction
   transfers); [pta_tuples] is a memory ceiling on live relation
   cardinality (points-to table and the detection join's Datalog
   database); [deadline] is wall-clock seconds for the whole analysis,
   enforced in-flight — inside the PTA worklist, thread-forest
   expansion, detection, and the per-warning filter loops — so an
   expired deadline cancels the running phase instead of waiting for a
   phase boundary; [explorer_schedules] caps dynamic validation and is
   threaded through to the explorer by the drivers. *)
type budgets = {
  pta_steps : int option;
  pta_tuples : int option;
  deadline : float option;
  explorer_schedules : int option;
}

let no_budgets =
  { pta_steps = None; pta_tuples = None; deadline = None; explorer_schedules = None }

type config = {
  k : int;  (** k-object-sensitivity depth (paper default: 2) *)
  sound : Filters.name list;
  unsound : Filters.name list;
  atomic_ig : bool;  (** false = DEvA-style unsound IG/IA *)
  budgets : budgets;
  solver : Pta.solver;  (** points-to fixpoint strategy *)
}

let default_config =
  {
    k = 2;
    sound = Filters.sound;
    unsound = Filters.unsound;
    atomic_ig = true;
    budgets = no_budgets;
    solver = Pta.Worklist;
  }

let sound_only_config = { default_config with unsound = [] }

(* A recorded sound degradation: the analysis completed, but with less
   precision (never less coverage) than asked for — the warning set can
   only grow. *)
type degradation =
  | D_pta_k of int  (** points-to fell back from [config.k] to this k *)
  | D_filters_skipped of Filters.name list  (** starved filters skipped *)

let degradation_to_string = function
  | D_pta_k k -> Fmt.str "pta-k=%d" k
  | D_filters_skipped names ->
      Fmt.str "filters-skipped=%s"
        (String.concat "+" (List.map Filters.name_to_string names))

type timings = { t_modeling : float; t_detection : float; t_filtering : float }

(* A batch-shared interning table for the detection join's Datalog
   engine (see {!Nadroid_datalog.Engine.create}). One table per batch
   hash-conses the common strings — field keys, race atoms — once
   instead of once per app; sharing never changes results. *)
type interner = Nadroid_datalog.Symbol.t

let create_interner () : interner = Nadroid_datalog.Symbol.create ()

(* Per-phase wall times plus per-filter prune counts. Every timed region
   of [analyze_prog] is attributed to exactly one field, so the phase
   times sum to the measured wall time (up to the record plumbing between
   clock reads) — the §8.8 breakdown invariant. All deadline
   arithmetic and duration measurement uses the monotonic clock
   ({!Clock.now}): a wall-clock step in a long-lived process must never
   fire or starve a deadline. *)
type metrics = {
  m_frontend_lex : float;  (** tokenization *)
  m_frontend_parse : float;  (** parsing the token stream *)
  m_frontend_sema : float;  (** name/type resolution *)
  m_frontend_lower : float;  (** lowering to the CFG IR *)
  m_pta : float;  (** points-to analysis *)
  m_aux : float;  (** escape + lockset analyses *)
  m_threadify : float;  (** forest construction (= modeling) *)
  m_detect : float;  (** access collection + candidate join *)
  m_ctx : float;  (** filter-context (guards / component map) construction *)
  m_filter : float;  (** sound + unsound filter application *)
  m_wall : float;  (** wall time of the whole analysis *)
  m_pta_visits : int;
      (** method-instance bodies the points-to solver executed — the
          worklist's saving over the reference solver, wall-clock aside *)
  m_pta_steps : int;  (** instruction transfers the solver executed *)
  m_pta_tuples : int;
      (** live points-to tuples the solver stored; 0 when no tuple
          ceiling was set (unbudgeted runs skip the accounting) *)
  m_pruned : (Filters.name * int) list;
      (** (warning, pair) combinations pruned, credited per filter *)
  m_degraded : degradation list;  (** empty = full-precision run *)
}

let frontend_sum m = m.m_frontend_lex +. m.m_frontend_parse +. m.m_frontend_sema +. m.m_frontend_lower

let phase_sum m =
  frontend_sum m +. m.m_pta +. m.m_aux +. m.m_threadify +. m.m_detect +. m.m_ctx +. m.m_filter

(* The paper's three-phase split, §8.8: the dominant points-to cost is
   attributed to detection; context construction is filtering work. *)
let timings_of_metrics m =
  {
    t_modeling = m.m_threadify;
    t_detection = m.m_pta +. m.m_aux +. m.m_detect;
    t_filtering = m.m_ctx +. m.m_filter;
  }

type t = {
  prog : Prog.t;
  pta : Pta.t;
  esc : Escape.t;
  locks : Lockset.t;
  threads : Threadify.t;
  ctx : Filters.ctx;
  potential : Detect.warning list;
  after_sound : Detect.warning list;
  after_unsound : Detect.warning list;
  timings : timings;
  metrics : metrics;
  config : config;
}

let time f =
  let t0 = Clock.now () in
  let r = f () in
  (r, Clock.now () -. t0)

(* Run the points-to analysis under the configured bounds — step budget,
   tuple ceiling, and the absolute wall-clock deadline, any of which may
   cancel the solve in flight. When a bound is hit at the requested k,
   fall back down the context ladder k-1, ..., 0: merging contexts means
   more aliasing, i.e. a sound over-approximation (more warnings), and a
   far cheaper fixpoint. (After a deadline expiry each retry dies within
   ~1024 transfers, so the descent itself is bounded.) Only when even
   the context-insensitive run starves do we give up with a [Budget]
   fault. *)
let run_pta config ~tuples ~deadline prog : Pta.t * degradation list =
  match (config.budgets.pta_steps, tuples, deadline) with
  | None, None, None -> (Pta.run ~solver:config.solver ~k:config.k prog, [])
  | steps, tuples, deadline ->
      let rec ladder k =
        match Pta.run_budgeted ?steps ?tuples ?deadline ~solver:config.solver ~k prog with
        | Some pta -> (pta, if k = config.k then [] else [ D_pta_k k ])
        | None ->
            if k > 0 then ladder (k - 1)
            else raise (Fault.Fault (Fault.Budget Fault.P_pta))
      in
      ladder config.k

(* Frontend phase times, as measured by {!analyze}; zero when a caller
   enters at {!analyze_prog} with an already-built program. *)
type frontend_times = { ft_lex : float; ft_parse : float; ft_sema : float; ft_lower : float }

let no_frontend = { ft_lex = 0.0; ft_parse = 0.0; ft_sema = 0.0; ft_lower = 0.0 }

let analyze_prog ?auto_tuples ?(config = default_config) ?interner
    ?(frontend = no_frontend) (prog : Prog.t) : t =
  (* modeling: threadification needs the points-to pass, whose dominant
     cost we attribute to detection as in the paper; modeling time covers
     forest construction *)
  let t0 = Clock.now () in
  let deadline = Option.map (fun d -> t0 +. d) config.budgets.deadline in
  (* The auto-derived (size-calibrated) ceiling guards the points-to
     table only: PTA can fall down the k ladder when it trips, so the
     bound is always soundly recoverable. The detection join is
     hard-bounded — an overflow there has no sound partial result — so
     it only honours an *explicit* user ceiling, never a derived one:
     a derived hard fault would turn legitimate dense inputs (e.g. a
     many-statements-per-line source) into failures. *)
  let pta_tuples =
    match config.budgets.pta_tuples with Some _ as t -> t | None -> auto_tuples
  in
  let (pta, pta_degr), t_pta =
    time (fun () -> run_pta config ~tuples:pta_tuples ~deadline prog)
  in
  (* escape/lockset are linear in the (tuple-bounded) points-to result,
     so they carry no checkpoint of their own *)
  let (esc, locks), t_aux =
    time (fun () -> (Escape.run pta, Lockset.run pta))
  in
  let threads, t_model = time (fun () -> Threadify.run ?deadline pta) in
  let potential, t_detect =
    time (fun () ->
        Detect.run ?deadline ?max_tuples:config.budgets.pta_tuples ?symbols:interner threads
          esc)
  in
  (* context construction belongs to the filtering phase: leaving it
     untimed made the §8.8 breakdown fall short of wall time *)
  let ctx, t_ctx =
    time (fun () ->
        Filters.create_ctx ~atomic_ig:config.atomic_ig ?deadline threads esc locks)
  in
  let (after_sound, after_unsound, pruned, skipped), t_filter =
    time (fun () ->
        match deadline with
        | None ->
            let s, pruned_sound = Filters.apply_counted ctx config.sound potential in
            let u, pruned_unsound = Filters.apply_counted ctx config.unsound s in
            (s, u, pruned_sound @ pruned_unsound, [])
        | Some dl ->
            let s, pruned_sound, sk1 =
              Filters.apply_counted_deadline ctx ~deadline:dl config.sound potential
            in
            let u, pruned_unsound, sk2 =
              Filters.apply_counted_deadline ctx ~deadline:dl config.unsound s
            in
            (s, u, pruned_sound @ pruned_unsound, sk1 @ sk2))
  in
  let degraded =
    pta_degr @ (match skipped with [] -> [] | _ :: _ -> [ D_filters_skipped skipped ])
  in
  let metrics =
    {
      m_frontend_lex = frontend.ft_lex;
      m_frontend_parse = frontend.ft_parse;
      m_frontend_sema = frontend.ft_sema;
      m_frontend_lower = frontend.ft_lower;
      m_pta = t_pta;
      m_aux = t_aux;
      m_threadify = t_model;
      m_detect = t_detect;
      m_ctx = t_ctx;
      m_filter = t_filter;
      (* the frontend ran before [t0]; folding its measured time into
         [m_wall] keeps the phase_sum = wall invariant for the whole
         analysis, frontend included *)
      m_wall =
        (Clock.now () -. t0) +. frontend.ft_lex +. frontend.ft_parse +. frontend.ft_sema
        +. frontend.ft_lower;
      m_pta_visits = Pta.visits pta;
      m_pta_steps = Pta.steps pta;
      m_pta_tuples = Pta.tuples pta;
      m_pruned = pruned;
      m_degraded = degraded;
    }
  in
  {
    prog;
    pta;
    esc;
    locks;
    threads;
    ctx;
    potential;
    after_sound;
    after_unsound;
    timings = timings_of_metrics metrics;
    metrics;
    config;
  }

(* Non-blank, non-comment-only lines: a line holding nothing but
   comments is documentation, not code, and must not skew the Table 1
   LOC column (or the size-derived budgets below) against the per-app
   specs. The scan is comment-aware — [//] to end of line, [/* */]
   including every interior line of a multi-line block comment (the
   original line-by-line filter only recognised [//], so block comments
   counted as code) — and string-aware, so comment-looking text inside
   a literal still counts. Unterminated constructs simply run to end of
   input, mirroring how the lexer would fault on them anyway. *)
let count_loc src =
  let n = String.length src in
  let lines = ref 0 in
  let has_code = ref false in
  let i = ref 0 in
  let newline () =
    if !has_code then incr lines;
    has_code := false
  in
  while !i < n do
    match src.[!i] with
    | '\n' ->
        newline ();
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '/' when !i + 1 < n && src.[!i + 1] = '/' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '/' when !i + 1 < n && src.[!i + 1] = '*' ->
        i := !i + 2;
        let closed = ref false in
        while (not !closed) && !i < n do
          if src.[!i] = '\n' then begin
            newline ();
            incr i
          end
          else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
            closed := true;
            i := !i + 2
          end
          else incr i
        done
    | '"' ->
        has_code := true;
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          (match src.[!i] with
          | '"' -> closed := true
          | '\\' when !i + 1 < n -> incr i
          | '\n' ->
              (* a (lexically invalid) newline inside a literal still
                 marks both lines as code *)
              newline ();
              has_code := true
          | _ -> ());
          incr i
        done
    | _ ->
        has_code := true;
        incr i
  done;
  newline ();
  !lines

(* Default PTA step budget, derived from app size. Calibrated against the
   corpus and 400 Synth seeds: the reference solver at k=2 peaks below 40
   steps per line (the worklist well below that), so a 500 steps/line
   slope plus a small-app floor leaves >10x headroom for ordinary
   programs while still bounding a pathological context explosion. *)
let auto_pta_steps ~loc = 5_000 + (500 * loc)

(* Default tuple (memory) ceiling, derived from app size like the step
   budget. Calibrated against the corpus and the Synth generator: the
   k=2 points-to table peaks at ~5.5 tuples per line (corpus max 4.6,
   SGTPuzzles; Synth max 5.5) and the detection join's relation
   cardinality stays well below that, so a 100 tuples/line slope plus a
   small-app floor leaves ~18x headroom for ordinary programs while
   still bounding a pathological heap explosion. *)
let auto_pta_tuples ~loc = 5_000 + (100 * loc)

let analyze ?(config = default_config) ?interner ~file src : t =
  (* no explicit budgets: derive them from the source size, so every
     file-level entry point is bounded by default ([--budget-pta] /
     [--budget-tuples] and explicit [budgets] fields still override) *)
  let loc = lazy (count_loc src) in
  let config =
    match config.budgets.pta_steps with
    | Some _ -> config
    | None ->
        let steps = auto_pta_steps ~loc:(Lazy.force loc) in
        { config with budgets = { config.budgets with pta_steps = Some steps } }
  in
  (* the derived tuple ceiling stays out of [config.budgets]: it bounds
     the PTA table only (see {!analyze_prog}), while an explicit
     [pta_tuples] also hard-bounds the detection join *)
  let auto_tuples =
    match config.budgets.pta_tuples with
    | Some _ -> None
    | None -> Some (auto_pta_tuples ~loc:(Lazy.force loc))
  in
  (* the four frontend phases are timed individually so the metrics
     expose where batch time goes before the analysis proper starts *)
  let toks, ft_lex = time (fun () -> Lexer.tokens ~file src) in
  let ast, ft_parse = time (fun () -> Parser.parse_program_tokens ~file toks) in
  let sema, ft_sema = time (fun () -> Sema.analyze ast) in
  let prog, ft_lower = time (fun () -> Prog.of_sema sema) in
  analyze_prog ?auto_tuples ~config ?interner ~frontend:{ ft_lex; ft_parse; ft_sema; ft_lower }
    prog

(* Counts for the Table 1 row of an app. *)
type row = {
  loc : int;  (** lines of MiniAndroid source *)
  ec : int;
  pc : int;
  threads_count : int;
  potential_count : int;
  after_sound_count : int;
  after_unsound_count : int;
  by_category : (Classify.category * int) list;
}

let row ?(src = "") (t : t) : row =
  let ec, pc =
    List.fold_left
      (fun (ec, pc) th ->
        match th.Threadify.th_kind with
        | Threadify.Entry_cb _ -> (ec + 1, pc)
        | Threadify.Posted_cb _ -> (ec, pc + 1)
        | Threadify.Dummy_main | Threadify.Native_thread | Threadify.Async_background ->
            (ec, pc))
      (0, 0) (Threadify.threads t.threads)
  in
  {
    loc = count_loc src;
    ec;
    pc;
    threads_count = Threadify.table1_thread_count t.threads;
    potential_count = List.length t.potential;
    after_sound_count = List.length t.after_sound;
    after_unsound_count = List.length t.after_unsound;
    by_category = Classify.histogram t.threads t.after_unsound;
  }
