(* Append-only checkpoint journal for batch runs.

   Each completed app — success or structured fault — is appended as one
   checksummed record in the [Cache.store] framing idiom:

     nadroid-journal 1 <payload-md5-hex> <payload-len>\n<payload>\n

   The payload is the Marshal of a {!record}; the digest guards against
   bit rot and, more importantly, against the half-written tail a
   [kill -9] mid-append leaves behind. Replay scans the longest valid
   prefix and stops at the first record that fails to frame, parse or
   checksum — everything before that point was flushed before the crash
   and is trusted; everything after is garbage and is truncated away
   when the journal is reopened for appending.

   Appends are serialized by a mutex (batch tasks run on multiple
   domains) and flushed immediately: a flush hands the bytes to the
   kernel, so they survive the *process* dying (the durability target
   here — SIGKILL, SIGSEGV, OOM), even though they could still be lost
   to a whole-machine power cut. *)

let magic = "nadroid-journal 1"

type record = {
  j_name : string;  (** the app/file name as the batch addressed it *)
  j_key : string;  (** {!Cache.key} of (source, config, version) at completion *)
  j_result : (Cache.entry, Fault.t) result;
}

type t = { path : string; oc : out_channel; m : Mutex.t }

let frame payload =
  Printf.sprintf "%s %s %d\n%s\n" magic
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

let parse_header line =
  match String.split_on_char ' ' line with
  | [ m1; m2; digest; len ] when String.equal (m1 ^ " " ^ m2) magic ->
      Option.map (fun n -> (digest, n)) (int_of_string_opt len)
  | _ -> None

(* Longest valid record prefix of [raw], with its byte length. *)
let scan raw =
  let n = String.length raw in
  let rec go pos acc =
    if pos >= n then (List.rev acc, pos)
    else
      match String.index_from_opt raw pos '\n' with
      | None -> (List.rev acc, pos)
      | Some nl -> (
          match parse_header (String.sub raw pos (nl - pos)) with
          | None -> (List.rev acc, pos)
          | Some (digest, len) ->
              let pstart = nl + 1 in
              if len < 0 || pstart + len + 1 > n then (List.rev acc, pos)
              else
                let payload = String.sub raw pstart len in
                if
                  raw.[pstart + len] <> '\n'
                  || not
                       (String.equal digest
                          (Digest.to_hex (Digest.string payload)))
                then (List.rev acc, pos)
                else (
                  match (Marshal.from_string payload 0 : record) with
                  | r -> go (pstart + len + 1) (r :: acc)
                  | exception _ -> (List.rev acc, pos)))
  in
  go 0 []

let read_raw path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))

let replay ~path = fst (scan (read_raw path))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~path ~resume : t * record list =
  let dir = Filename.dirname path in
  if not (String.equal dir "") then mkdir_p dir;
  let records =
    if resume then begin
      let records, valid = scan (read_raw path) in
      (* chop the garbage tail a crashed appender left, so the reopened
         journal stays a pure valid prefix *)
      (if Sys.file_exists path then
         let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
         Fun.protect
           ~finally:(fun () -> Unix.close fd)
           (fun () -> Unix.ftruncate fd valid));
      records
    end
    else []
  in
  let flags =
    if resume then [ Open_wronly; Open_append; Open_creat; Open_binary ]
    else [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
  in
  ({ path; oc = open_out_gen flags 0o644 path; m = Mutex.create () }, records)

let append t (r : record) : unit =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      Faultinject.trip ~key:r.j_name Faultinject.Journal_append;
      output_string t.oc (frame (Marshal.to_string r []));
      (* flush per record: the bytes must survive the process, not wait
         for a buffer that dies with it *)
      flush t.oc)

let close t = try close_out t.oc with Sys_error _ -> ()

(* Last record wins per name: a resumed run may have journaled an app
   twice (once per attempt); only the newest completion is the app's
   state. *)
let latest (records : record list) : (string, record) Hashtbl.t
    =
  let h = Hashtbl.create (List.length records) in
  List.iter (fun r -> Hashtbl.replace h r.j_name r) records;
  h
