(** Content-addressed on-disk cache for analysis results.

    Entries are addressed by [Digest (source, config rendering, analyzer
    version)] and store the rendered artifacts of one analysis — warning
    counts, the final report string and the producing run's metrics — so
    a warm re-run of an unchanged input skips analysis entirely while
    staying byte-identical to the cold run. Corrupt or truncated entries
    are reported as {!Corrupt} (carrying a {!Fault.t}) and treated as
    misses: the cache never yields a wrong report. *)

val version : string
(** Analyzer version baked into every address; bumping it busts the
    whole cache. *)

val default_dir : string
(** ["_nadroid_cache"]. *)

type entry = {
  e_potential : int;
  e_after_sound : int;
  e_after_unsound : int;
  e_report : string;  (** rendered final report ({!Report.to_string}) *)
  e_metrics : Pipeline.metrics;  (** metrics of the producing (cold) run *)
}

type outcome = Hit | Miss | Corrupt of Fault.t

val config_digest : Pipeline.config -> string
(** Canonical rendering of every result-influencing config field. *)

val key : ?version:string -> config:Pipeline.config -> string -> string
(** [key ~config src] is the hex cache address of analyzing [src] under
    [config]; [?version] overrides {!version} (tests). *)

val path : dir:string -> string -> string
(** On-disk path of an address ([<dir>/<key>.cache]); exposed for tests
    that manipulate entry mtimes directly. *)

val find : dir:string -> string -> entry option * outcome
(** Look an address up. [(Some e, Hit)] on an intact entry; [(None,
    Miss)] when absent; [(None, Corrupt f)] when present but unreadable,
    truncated, checksum-broken or undecodable. A hit touches the entry's
    mtime so LRU eviction tracks recency of use, not just of storage. *)

val store : dir:string -> string -> entry -> unit
(** Write an entry atomically (temp file + rename), creating [dir] as
    needed. The temp name is unique per store — pid alone is not enough,
    since domains share one — so concurrent stores of the same key never
    interleave into one temp file. *)

val sweep_tmp : ?max_age:float -> dir:string -> unit -> int
(** Remove orphaned [.tmp.*] files older than [max_age] seconds
    (default 600) — strandings left by a writer that died between the
    temp write and the rename. They are invisible to [*.cache]
    accounting, so nothing else ever reclaims them. Runs automatically
    the first time {!analyze} opens a directory in this process.
    Returns the number of files removed. *)

val dir_bytes : dir:string -> int
(** Combined size of the [*.cache] entries in [dir] (foreign files are
    not counted). *)

val evict : dir:string -> max_bytes:int -> int
(** Bring the combined [*.cache] size of [dir] under [max_bytes] by
    removing least-recently-used entries (mtime order, path tie-break).
    Foreign files are untouched; removal races are tolerated. Returns
    the number of entries removed. *)

val entry_of_result : Pipeline.t -> entry

val analyze :
  ?config:Pipeline.config ->
  ?max_bytes:int ->
  ?interner:Pipeline.interner ->
  dir:string ->
  file:string ->
  string ->
  entry * outcome
(** Cached {!Pipeline.analyze}: serve the entry on a hit; otherwise (miss
    or corrupt entry) analyze, store and return the fresh entry together
    with the outcome that forced the work. Analysis faults propagate
    as exceptions exactly like {!Pipeline.analyze}. [max_bytes] runs
    {!evict} opportunistically after the store; the fresh entry carries
    the newest mtime, so it is evicted last. [interner] is forwarded to
    {!Pipeline.analyze} on a miss; it is deliberately not part of the
    cache key, since sharing cannot change the entry. *)
