(** Content-addressed on-disk cache for analysis results.

    Entries are addressed by [Digest (source, config rendering, analyzer
    version)] and store the rendered artifacts of one analysis — warning
    counts, the final report string and the producing run's metrics — so
    a warm re-run of an unchanged input skips analysis entirely while
    staying byte-identical to the cold run. Corrupt or truncated entries
    are reported as {!Corrupt} (carrying a {!Fault.t}) and treated as
    misses: the cache never yields a wrong report. *)

val version : string
(** Analyzer version baked into every address; bumping it busts the
    whole cache. *)

val default_dir : string
(** ["_nadroid_cache"]. *)

type entry = {
  e_potential : int;
  e_after_sound : int;
  e_after_unsound : int;
  e_report : string;  (** rendered final report ({!Report.to_string}) *)
  e_metrics : Pipeline.metrics;  (** metrics of the producing (cold) run *)
}

type outcome = Hit | Miss | Corrupt of Fault.t

val config_digest : Pipeline.config -> string
(** Canonical rendering of every result-influencing config field. *)

val key : ?version:string -> config:Pipeline.config -> string -> string
(** [key ~config src] is the hex cache address of analyzing [src] under
    [config]; [?version] overrides {!version} (tests). *)

val find : dir:string -> string -> entry option * outcome
(** Look an address up. [(Some e, Hit)] on an intact entry; [(None,
    Miss)] when absent; [(None, Corrupt f)] when present but unreadable,
    truncated, checksum-broken or undecodable. *)

val store : dir:string -> string -> entry -> unit
(** Write an entry atomically (temp file + rename), creating [dir] as
    needed. *)

val entry_of_result : Pipeline.t -> entry

val analyze :
  ?config:Pipeline.config -> dir:string -> file:string -> string -> entry * outcome
(** Cached {!Pipeline.analyze}: serve the entry on a hit; otherwise (miss
    or corrupt entry) analyze, store and return the fresh entry together
    with the outcome that forced the work. Analysis faults propagate
    as exceptions exactly like {!Pipeline.analyze}. *)
