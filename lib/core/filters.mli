(** False-positive filters (paper §6).

    Sound: Must-Happens-Before (Service, AsyncTask, Lifecycle), If-Guard,
    Intra-Allocation. Unsound: Resume-HB, Cancel-HB, Post-HB,
    Maybe-Allocation, Used-for-Return, Thread-Thread.

    A filter is a predicate on a (warning, thread-pair); a warning is
    pruned once all of its pairs are pruned. IG/IA/MA are
    atomicity-aware: between looper callbacks they apply directly,
    across true threads only under a common lock (§6.1.2) — unless
    [atomic_ig] is disabled, which reproduces DEvA's unsound behaviour
    for the baseline comparison. *)

open Nadroid_analysis

type name = MHB | IG | IA | RHB | CHB | PHB | MA | UR | TT

val all_names : name list

val sound : name list
(** [[MHB; IG; IA]] *)

val unsound : name list
(** [[RHB; CHB; PHB; MA; UR; TT]] *)

val may_hb : name list
(** The may-happens-before group of Figure 5(b): [[RHB; CHB; PHB]]. *)

val name_to_string : name -> string

val pp_name : name Fmt.t

type ctx

val create_ctx :
  ?atomic_ig:bool -> ?deadline:float -> Threadify.t -> Escape.t -> Lockset.t -> ctx
(** [atomic_ig] defaults to [true] (nAdroid); [false] applies IG/IA/MA
    without atomicity, as DEvA does. Construction is cheap, so an
    already-expired [deadline] does not fault: it leaves the component
    map empty (disabling CHB pruning — sound over-reporting). *)

val prunes : ctx -> name -> Detect.warning -> int * int -> bool
(** Does the named filter prune this (use-thread, free-thread) pair? *)

val apply : ctx -> name list -> Detect.warning list -> Detect.warning list
(** Prune pairs by every listed filter; drop warnings with no surviving
    pair. *)

val apply_counted :
  ctx -> name list -> Detect.warning list -> Detect.warning list * (name * int) list
(** Same survivors as {!apply}, plus the number of (warning, pair)
    combinations each filter pruned. Every filter is evaluated on every
    pair, so overlapping filters are each credited. *)

val apply_counted_deadline :
  ctx ->
  deadline:float ->
  name list ->
  Detect.warning list ->
  Detect.warning list * (name * int) list * name list
(** Like {!apply_counted} but bounded by an absolute monotonic
    [deadline] (as from [Nadroid_clock.Clock.now]): filters run one name at a
    time, with the clock also sampled every few warnings {e inside} each
    filter, so one filter over a huge warning list cannot run
    arbitrarily past the deadline. A filter caught mid-run keeps its
    already-filtered prefix (each individual prune is sound), passes the
    untouched tail through, keeps its partial count, and joins the
    skipped list along with every name whose turn never came; the
    skipped names are returned in the third component. Skipping is sound
    in the more-warnings direction. Counts are sequential (no
    overlapping credit). *)

val pruned_count : ctx -> name list -> Detect.warning list -> int
(** Warnings fully pruned when only [names] are enabled — the Figure 5
    per-filter measurements. *)
