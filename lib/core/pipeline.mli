(** The end-to-end nAdroid pipeline (paper Fig. 2):

    source -> frontend -> threadification (§4) -> detection (§5) ->
    sound filters (§6.1) -> unsound filters (§6.2) -> report.

    Per-phase timings are recorded to reproduce the §8.8 breakdown. *)

open Nadroid_ir
open Nadroid_analysis

type config = {
  k : int;  (** k-object-sensitivity depth (paper default: 2) *)
  sound : Filters.name list;
  unsound : Filters.name list;
  atomic_ig : bool;  (** [false] = DEvA-style unsound IG/IA *)
}

val default_config : config

type timings = { t_modeling : float; t_detection : float; t_filtering : float }

(** Per-phase wall times plus per-filter prune counts. Every timed
    region of the analysis is attributed to exactly one field, so
    {!phase_sum} equals [m_wall] up to the plumbing between clock
    reads. *)
type metrics = {
  m_pta : float;  (** points-to analysis *)
  m_aux : float;  (** escape + lockset analyses *)
  m_threadify : float;  (** forest construction (= modeling) *)
  m_detect : float;  (** access collection + candidate join *)
  m_ctx : float;  (** filter-context (guards / component map) construction *)
  m_filter : float;  (** sound + unsound filter application *)
  m_wall : float;  (** wall time of the whole analysis *)
  m_pruned : (Filters.name * int) list;
      (** (warning, pair) combinations pruned, credited per filter *)
}

val phase_sum : metrics -> float

val timings_of_metrics : metrics -> timings
(** The paper's three-phase split (§8.8): modeling = threadify,
    detection = points-to + aux + join, filtering = context + filters. *)

type t = {
  prog : Prog.t;
  pta : Pta.t;
  esc : Escape.t;
  locks : Lockset.t;
  threads : Threadify.t;
  ctx : Filters.ctx;
  potential : Detect.warning list;
  after_sound : Detect.warning list;
  after_unsound : Detect.warning list;
  timings : timings;
  metrics : metrics;
  config : config;
}

val analyze_prog : ?config:config -> Prog.t -> t

val analyze : ?config:config -> file:string -> string -> t
(** Parse, typecheck, lower and analyse a MiniAndroid source. *)

(** Counts for an app's Table 1 row. *)
type row = {
  loc : int;  (** non-blank lines of MiniAndroid source *)
  ec : int;
  pc : int;
  threads_count : int;
  potential_count : int;
  after_sound_count : int;
  after_unsound_count : int;
  by_category : (Classify.category * int) list;
}

val count_loc : string -> int
(** Non-blank, non-comment-only ([//]) lines of MiniAndroid source. *)

val row : ?src:string -> t -> row

val time : (unit -> 'a) -> 'a * float
