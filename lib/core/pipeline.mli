(** The end-to-end nAdroid pipeline (paper Fig. 2):

    source -> frontend -> threadification (§4) -> detection (§5) ->
    sound filters (§6.1) -> unsound filters (§6.2) -> report.

    Per-phase timings are recorded to reproduce the §8.8 breakdown. *)

open Nadroid_ir
open Nadroid_analysis

(** Per-phase resource budgets; [no_budgets] (all [None]) disables
    enforcement. Exhaustion degrades soundly toward {e more} warnings
    (recorded in [metrics.m_degraded]) and only raises
    [Fault (Budget _)] when no sound degradation remains. *)
type budgets = {
  pta_steps : int option;
      (** points-to step budget (instruction transfers, deterministic);
          on exhaustion the solver retries with smaller k down to 0 *)
  pta_tuples : int option;
      (** memory ceiling: live relation cardinality, covering both the
          points-to table (down the same k ladder on exhaustion) and the
          detection join's Datalog database (a hard bound there); the
          auto-derived default applies to the points-to table only *)
  deadline : float option;
      (** seconds of real time for the whole analysis (measured on the
          monotonic clock, so a wall-clock step never fires or starves
          it), enforced in-flight:
          periodic checkpoints inside the PTA worklist (down the k
          ladder), thread-forest expansion and detection (hard faults —
          partial results there would lose coverage), and the
          per-warning filter loops (remaining filters are skipped) *)
  explorer_schedules : int option;
      (** cap on dynamic-validation schedules, threaded to the explorer
          by the drivers (not enforced by {!analyze_prog} itself) *)
}

val no_budgets : budgets

type config = {
  k : int;  (** k-object-sensitivity depth (paper default: 2) *)
  sound : Filters.name list;
  unsound : Filters.name list;
  atomic_ig : bool;  (** [false] = DEvA-style unsound IG/IA *)
  budgets : budgets;
  solver : Pta.solver;
      (** points-to fixpoint strategy; [Pta.Worklist] by default, with
          [Pta.Reference] producing bit-identical results slower *)
}

val default_config : config

val sound_only_config : config
(** {!default_config} with the unsound filters disabled — the §6.1
    contract configuration: the surviving warning set may only
    over-report, so every dynamically witnessable UAF must appear in it.
    This is the configuration the differential soundness harness
    ({!Nadroid_corpus.Differential}) checks the pipeline against. *)

(** A recorded sound degradation: the analysis completed with less
    precision (never less coverage) than configured. *)
type degradation =
  | D_pta_k of int  (** points-to fell back from [config.k] to this k *)
  | D_filters_skipped of Filters.name list  (** starved filters skipped *)

val degradation_to_string : degradation -> string
(** e.g. ["pta-k=1"], ["filters-skipped=UR+TT"]. *)

type timings = { t_modeling : float; t_detection : float; t_filtering : float }

type interner = Nadroid_datalog.Symbol.t
(** A batch-shared, hash-consed interning table for the detection
    join's Datalog engine. Create one per batch and pass it to every
    {!analyze} of the batch: the common strings (field keys, race
    atoms) are interned once instead of once per app. It is thread-safe
    (safe to share across the parallel workers of one batch), and
    sharing never changes any report — engine iteration order is
    insertion-ordered, independent of id assignment. *)

val create_interner : unit -> interner

(** Per-phase wall times plus per-filter prune counts. Every timed
    region of the analysis is attributed to exactly one field, so
    {!phase_sum} equals [m_wall] up to the plumbing between clock
    reads. The [m_frontend_*] fields are zero when the caller entered
    at {!analyze_prog} with an already-built program. *)
type metrics = {
  m_frontend_lex : float;  (** tokenization *)
  m_frontend_parse : float;  (** parsing the token stream *)
  m_frontend_sema : float;  (** name/type resolution *)
  m_frontend_lower : float;  (** lowering to the CFG IR *)
  m_pta : float;  (** points-to analysis *)
  m_aux : float;  (** escape + lockset analyses *)
  m_threadify : float;  (** forest construction (= modeling) *)
  m_detect : float;  (** access collection + candidate join *)
  m_ctx : float;  (** filter-context (guards / component map) construction *)
  m_filter : float;  (** sound + unsound filter application *)
  m_wall : float;  (** wall time of the whole analysis *)
  m_pta_visits : int;
      (** method-instance bodies the points-to solver executed — the
          worklist's saving over the reference solver, wall-clock aside *)
  m_pta_steps : int;  (** instruction transfers the solver executed *)
  m_pta_tuples : int;
      (** live points-to tuples the solver stored; 0 when no tuple
          ceiling was set (unbudgeted runs skip the accounting) *)
  m_pruned : (Filters.name * int) list;
      (** (warning, pair) combinations pruned, credited per filter *)
  m_degraded : degradation list;  (** empty = full-precision run *)
}

val phase_sum : metrics -> float

val frontend_sum : metrics -> float
(** Sum of the four [m_frontend_*] phases. *)

val timings_of_metrics : metrics -> timings
(** The paper's three-phase split (§8.8): modeling = threadify,
    detection = points-to + aux + join, filtering = context + filters. *)

type t = {
  prog : Prog.t;
  pta : Pta.t;
  esc : Escape.t;
  locks : Lockset.t;
  threads : Threadify.t;
  ctx : Filters.ctx;
  potential : Detect.warning list;
  after_sound : Detect.warning list;
  after_unsound : Detect.warning list;
  timings : timings;
  metrics : metrics;
  config : config;
}

(** Frontend phase times as measured by {!analyze}; {!analyze_prog}
    merges them into the run's metrics (and [m_wall]). *)
type frontend_times = { ft_lex : float; ft_parse : float; ft_sema : float; ft_lower : float }

val analyze_prog :
  ?auto_tuples:int -> ?config:config -> ?interner:interner -> ?frontend:frontend_times ->
  Prog.t -> t
(** [auto_tuples] is the size-derived tuple ceiling {!analyze} passes
    down: it bounds the points-to table only (recoverable down the k
    ladder) and is ignored when [config.budgets.pta_tuples] is set. An
    explicit [pta_tuples] additionally hard-bounds the detection join's
    Datalog database, where no sound partial result exists.

    [interner] hands the detection join a batch-shared symbol table;
    [frontend] carries the frontend timings of the program being
    analysed (zero when omitted). Neither changes any result. *)

val auto_pta_steps : loc:int -> int
(** Default PTA step budget for a [loc]-line app — the budget
    auto-calibration: [5000 + 500*loc], >10x above the worst observed
    steps-per-line of the reference solver at k=2 over the corpus and the
    Synth generator. *)

val auto_pta_tuples : loc:int -> int
(** Default tuple (memory) ceiling for a [loc]-line app:
    [5000 + 100*loc], ~18x above the worst observed k=2 points-to
    tuples-per-line (~5.5) over the corpus and the Synth generator. *)

val analyze : ?config:config -> ?interner:interner -> file:string -> string -> t
(** Parse, typecheck, lower and analyse a MiniAndroid source, timing
    the four frontend phases into the run's [m_frontend_*] metrics.
    When the config carries no explicit [pta_steps] / [pta_tuples]
    budget, one is derived from the source size via {!auto_pta_steps} /
    {!auto_pta_tuples} (the derived tuple ceiling bounds the points-to
    table only); {!analyze_prog} never derives budgets itself (it has no
    source to size). [interner] shares one symbol table across a batch
    of analyses without changing any result. *)

(** Counts for an app's Table 1 row. *)
type row = {
  loc : int;  (** non-blank lines of MiniAndroid source *)
  ec : int;
  pc : int;
  threads_count : int;
  potential_count : int;
  after_sound_count : int;
  after_unsound_count : int;
  by_category : (Classify.category * int) list;
}

val count_loc : string -> int
(** Non-blank, non-comment-only lines of MiniAndroid source. Both [//]
    line comments and [/* */] block comments (including every interior
    line of a multi-line one) are recognised; string literals are
    scanned so comment-looking text inside them still counts. *)

val row : ?src:string -> t -> row

val time : (unit -> 'a) -> 'a * float
