(* Supervised worker processes: per-app analysis in expendable children.

   PR 2's crash isolation catches exceptions; it cannot catch a SIGSEGV
   in the runtime, an OOM-kill, or a wedged analysis that ignores its
   deadline. This module moves each app's analysis into a child
   *process*, so any of those costs exactly one structured fault while
   the batch — or the serve daemon — keeps going.

   Mechanics:

   - Workers are spawned by fork+exec of [Sys.executable_name] with the
     [NADROID_SUPERVISED_WORKER] environment marker set. Re-executing
     (rather than bare fork) keeps respawn safe from any domain of a
     multi-domain parent — fork without exec may inherit another
     domain's held runtime locks; exec replaces the image. Host binaries
     call {!worker_check} as their first statement: in a marked process
     it runs the worker loop on stdin/stdout and never returns.

   - The request/reply protocol is Marshal in the checksummed,
     length-framed [Cache.store] idiom over the two pipes. Requests
     carry (file, source, config, cache settings); replies carry
     [(Cache.entry, Fault.t) result] — entries and faults are plain
     data, safe to Marshal, unlike a full [Pipeline.t].

   - The supervisor (any calling domain) checks a worker out, writes the
     request, and reads the reply with an optional heartbeat deadline.
     A worker that exits, dies on a signal, garbles a frame or misses
     the heartbeat is SIGKILLed, reaped and replaced; the request is
     retried on a fresh worker once. An app that takes down two
     consecutive workers is quarantined — its entry becomes a
     [Fault.Internal] naming the crash — because retrying a
     deterministic crasher forever would stall the fleet. *)

let env_var = "NADROID_SUPERVISED_WORKER"

let magic = "nadroid-worker 1"

type request = {
  q_file : string;
  q_source : string;
  q_config : Pipeline.config;
  q_cache : (string * int option) option;  (** cache dir, max bytes *)
}

type reply = (Cache.entry, Fault.t) result

(* -- framing over raw fds -------------------------------------------------- *)

let frame payload =
  Printf.sprintf "%s %s %d\n%s\n" magic
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

let parse_header line =
  match String.split_on_char ' ' line with
  | [ m1; m2; digest; len ] when String.equal (m1 ^ " " ^ m2) magic ->
      Option.map (fun n -> (digest, n)) (int_of_string_opt len)
  | _ -> None

exception Timeout

(* Write all of [s] to [fd], honouring [deadline] (absolute monotonic
   time). With a deadline the fd must be non-blocking: every chunk is
   gated by a deadline-bounded select, so a worker that wedges and stops
   draining its request pipe mid-frame — requests embed the full source,
   easily past pipe capacity — surfaces as [Timeout] instead of blocking
   the supervisor domain forever. *)
let write_all ?deadline fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec wait () =
    let left =
      match deadline with
      | None -> -1.0
      | Some d ->
          let left = d -. Nadroid_clock.Clock.now () in
          if left <= 0.0 then raise Timeout;
          left
    in
    match Unix.select [] [ fd ] [] left with
    | _, [], _ -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          wait ();
          go off
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Read exactly [n] more bytes into [buf], honouring [deadline] (absolute
   monotonic time) via select before every read. Returns false on EOF. *)
let read_into ?deadline fd buf n =
  let chunk = Bytes.create (min (max n 1) 65536) in
  let rec go remaining =
    if remaining = 0 then true
    else begin
      (match deadline with
      | None -> ()
      | Some d ->
          let left = d -. Nadroid_clock.Clock.now () in
          if left <= 0.0 then raise Timeout
          else
            let rec wait left =
              match Unix.select [ fd ] [] [] left with
              | [], _, _ -> raise Timeout
              | _ -> ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                  let left = d -. Nadroid_clock.Clock.now () in
                  if left <= 0.0 then raise Timeout else wait left
            in
            wait left);
      let r = Unix.read fd chunk 0 (min remaining 65536) in
      if r = 0 then false
      else begin
        Buffer.add_subbytes buf chunk 0 r;
        go (remaining - r)
      end
    end
  in
  go n

(* One frame from [fd]. [None] on clean EOF at a frame boundary; raises
   [Failure] on a garbled frame, [Timeout] past the deadline. Lines that
   are not frame headers are skipped (up to a cap): a host binary's
   module initializers — test harnesses especially — may print to
   stdout before the worker loop claims the reply pipe, and that noise
   must not read as worker death. The payload checksum still guards
   every byte that matters. *)
let read_frame ?deadline fd : string option =
  let rec frames skipped =
    if skipped > 1_000_000 then failwith "no frame in 1MB of pipe output";
    let buf = Buffer.create 256 in
    (* header: read byte-wise up to the newline (headers are ~60 bytes
       and there is exactly one request in flight, so not a hot path) *)
    let rec header () =
      let before = Buffer.length buf in
      if not (read_into ?deadline fd buf 1) then
        if before = 0 then None else failwith "truncated frame header"
      else if Buffer.nth buf before = '\n' then Some (Buffer.sub buf 0 before)
      else header ()
    in
    match header () with
    | None -> None
    | Some line -> (
        match parse_header line with
        | None -> frames (skipped + String.length line + 1)
        | Some (digest, len) ->
            let body = Buffer.create (len + 1) in
            if not (read_into ?deadline fd body (len + 1)) then
              failwith "truncated frame payload";
            let payload = Buffer.sub body 0 len in
            if Buffer.nth body len <> '\n' then failwith "bad frame terminator";
            if not (String.equal digest (Digest.to_hex (Digest.string payload)))
            then failwith "frame checksum mismatch";
            Some payload)
  in
  frames 0

(* -- worker (child) side --------------------------------------------------- *)

let is_worker () = Sys.getenv_opt env_var <> None

let analyze_request (q : request) : reply =
  Fault.wrap (fun () ->
      (* the injection seam inside the worker: [Raise] here becomes a
         structured fault in this app's entry; [Kill]/[Abort]/[Wedge]
         manufacture the crashes the supervisor exists to survive *)
      Faultinject.trip ~key:(Filename.basename q.q_file) Faultinject.Worker_task;
      match q.q_cache with
      | Some (dir, max_bytes) ->
          fst (Cache.analyze ~config:q.q_config ?max_bytes ~dir ~file:q.q_file q.q_source)
      | None ->
          Cache.entry_of_result (Pipeline.analyze ~config:q.q_config ~file:q.q_file q.q_source))

let worker_main () =
  (* claim the reply pipe: move it to a private fd and point fd 1 at
     stderr, so stray prints from the analysis (or any library) can
     never land inside a reply frame *)
  let reply_fd = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  (* anything a module initializer buffered now drains to stderr *)
  flush stdout;
  (match Faultinject.init_from_env () with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "nadroid worker: bad %s: %s\n%!" Faultinject.env_var e;
      exit 2);
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let rec loop () =
    match read_frame Unix.stdin with
    | None -> exit 0
    | Some payload ->
        let q : request = Marshal.from_string payload 0 in
        let r = analyze_request q in
        write_all reply_fd (frame (Marshal.to_string (r : reply) []));
        loop ()
  in
  try loop ()
  with
  | Failure _ | End_of_file ->
    (* garbled request stream: the supervisor is gone or confused
       either way this worker is done *)
    exit 1
  | Unix.Unix_error (Unix.EPIPE, _, _) -> exit 1

let worker_check () =
  if is_worker () then begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    worker_main ()
  end

(* -- supervisor (parent) side ---------------------------------------------- *)

type worker = {
  pid : int;
  w_in : Unix.file_descr;  (** write requests here *)
  w_out : Unix.file_descr;  (** read replies here *)
}

type t = {
  m : Mutex.t;
  avail : Condition.t;
  idle : worker Queue.t;
  mutable live : int;  (** workers alive, idle or checked out *)
  mutable down : bool;
  pool_jobs : int;
  heartbeat : float option;
}

let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigabrt then "SIGABRT"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" n

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> "killed by " ^ signal_name n
  | Unix.WSTOPPED n -> "stopped by " ^ signal_name n

(* Environment of a worker child: ours, minus any stale marker, plus the
   marker. NADROID_FAULTS (if set) passes through untouched — that is
   how injection specs reach seams inside workers. *)
let worker_env () =
  let keep e = not (String.length e > 0 && String.starts_with ~prefix:(env_var ^ "=") e) in
  let base = Array.to_list (Unix.environment ()) in
  Array.of_list (List.filter keep base @ [ env_var ^ "=1" ])

let spawn_one () : worker =
  Faultinject.trip Faultinject.Worker_spawn;
  (* all four ends close-on-exec: create_process dup2s req_r/resp_w onto
     the child's stdin/stdout (dup2 clears the flag on the copies), so
     the child keeps exactly those two — in particular it must NOT
     inherit req_w, or its own stdin would never see EOF at shutdown *)
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  match
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      (worker_env ()) req_r resp_w Unix.stderr
  with
  | pid ->
      Unix.close req_r;
      Unix.close resp_w;
      (* non-blocking on our write end only (the child's stdin copy is
         unaffected), so [write_all] can bound it with the heartbeat *)
      Unix.set_nonblock req_w;
      { pid; w_in = req_w; w_out = resp_r }
  | exception e ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ req_r; req_w; resp_r; resp_w ];
      raise e

(* Spawning can fail transiently (EAGAIN under fork pressure, injected
   faults); retry a few times before giving the worker up. *)
let try_spawn () : worker option =
  let rec go attempts =
    match spawn_one () with
    | w -> Some w
    | exception (Unix.Unix_error _ | Sys_error _) when attempts > 1 ->
        Unix.sleepf 0.01;
        go (attempts - 1)
    | exception (Unix.Unix_error _ | Sys_error _) -> None
  in
  go 3

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let reap w =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  close_quiet w.w_in;
  close_quiet w.w_out;
  match Unix.waitpid [] w.pid with
  | _, status -> status_string status
  | exception Unix.Unix_error _ -> "unreaped"

let create ?jobs ?heartbeat () : t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let pool_jobs = max 1 (Option.value jobs ~default:(Parallel.default_jobs ())) in
  let t =
    {
      m = Mutex.create ();
      avail = Condition.create ();
      idle = Queue.create ();
      live = 0;
      down = false;
      pool_jobs;
      heartbeat;
    }
  in
  for _ = 1 to pool_jobs do
    match try_spawn () with
    | Some w ->
        Queue.push w t.idle;
        t.live <- t.live + 1
    | None -> ()
  done;
  t

let jobs t = t.pool_jobs

let checkout t : worker option =
  Mutex.lock t.m;
  let rec wait () =
    if t.down || t.live = 0 then None
    else if Queue.is_empty t.idle then begin
      Condition.wait t.avail t.m;
      wait ()
    end
    else Some (Queue.pop t.idle)
  in
  let w = wait () in
  Mutex.unlock t.m;
  w

let checkin t w =
  Mutex.lock t.m;
  Queue.push w t.idle;
  Condition.broadcast t.avail;
  Mutex.unlock t.m

(* The checked-out worker died: drop it from the live count and try to
   put a replacement into the pool. *)
let replace t w : string =
  let status = reap w in
  Mutex.lock t.m;
  t.live <- t.live - 1;
  Mutex.unlock t.m;
  (match try_spawn () with
  | Some w' ->
      Mutex.lock t.m;
      t.live <- t.live + 1;
      Queue.push w' t.idle;
      Condition.broadcast t.avail;
      Mutex.unlock t.m
  | None ->
      (* no replacement: wake waiters so they can observe live = 0 *)
      Mutex.lock t.m;
      Condition.broadcast t.avail;
      Mutex.unlock t.m);
  status

(* One attempt on one checked-out worker. [Ok payload] is a fully framed
   reply; [Error reason] means the worker is unusable (dead, wedged,
   garbled) and must be replaced. One heartbeat deadline bounds the
   whole exchange — writing the request as much as reading the reply,
   since a wedged worker can stop consuming either pipe. *)
let attempt t w payload : (string, string) result =
  let deadline =
    Option.map (fun h -> Nadroid_clock.Clock.now () +. h) t.heartbeat
  in
  match
    write_all ?deadline w.w_in (frame payload);
    Faultinject.trip Faultinject.Worker_pipe_read;
    read_frame ?deadline w.w_out
  with
  | Some reply -> Ok reply
  | None -> Error "worker closed the pipe"
  | exception Timeout ->
      Error
        (Printf.sprintf "heartbeat timeout after %gs"
           (Option.value t.heartbeat ~default:0.0))
  | exception Failure what -> Error what
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "worker pipe: %s" (Unix.error_message e))

let analyze t ~(config : Pipeline.config) ?cache ~file (source : string) : reply =
  let payload =
    Marshal.to_string { q_file = file; q_source = source; q_config = config; q_cache = cache } []
  in
  let rec go crashes =
    match checkout t with
    | None ->
        Error
          (Fault.Internal
             (if t.down then "supervisor is shut down"
              else "supervisor has no live workers"))
    | Some w -> (
        match attempt t w payload with
        | Ok reply -> (
            checkin t w;
            match (Marshal.from_string reply 0 : reply) with
            | r -> r
            | exception _ -> Error (Fault.Internal "undecodable worker reply"))
        | Error reason ->
            let status = replace t w in
            let crashes = crashes + 1 in
            if crashes >= 2 then
              Error
                (Fault.Internal
                   (Printf.sprintf
                      "%s quarantined: crashed %d consecutive workers (last: %s; worker %s)"
                      file crashes reason status))
            else go crashes)
  in
  go 0

let shutdown t =
  Mutex.lock t.m;
  if t.down then Mutex.unlock t.m
  else begin
    t.down <- true;
    Condition.broadcast t.avail;
    (* wait for checked-out workers to come home before closing pipes *)
    while Queue.length t.idle < t.live do
      Condition.wait t.avail t.m
    done;
    let ws = List.of_seq (Queue.to_seq t.idle) in
    Queue.clear t.idle;
    t.live <- 0;
    Mutex.unlock t.m;
    (* closing the request pipe is the shutdown signal: the worker sees
       EOF and exits 0; reap in a second pass so they exit in parallel *)
    List.iter (fun w -> close_quiet w.w_in) ws;
    List.iter
      (fun w ->
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        close_quiet w.w_out)
      ws
  end
