(* False-positive filters (§6).

   Sound filters: Must-Happens-Before (MHB: Service, AsyncTask,
   Lifecycle), If-Guard (IG), Intra-Allocation (IA). Unsound filters:
   Resume-HB (RHB), Cancel-HB (CHB), Post-HB (PHB), Maybe-Allocation
   (MA), Used-for-Return (UR), Thread-Thread (TT).

   A filter is a predicate on a (warning, thread-pair); a warning is
   pruned once all of its thread pairs are pruned. The IG/IA/MA filters
   are atomicity-aware (§6.1.2): between looper callbacks they apply
   directly, across true threads only under a common lock — the unsound
   shortcut DEvA takes (applying them without atomicity) is available
   separately for the baseline comparison. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_android
open Nadroid_analysis
module IntSet = Pta.IntSet
module Clock = Nadroid_clock.Clock

type name = MHB | IG | IA | RHB | CHB | PHB | MA | UR | TT

let all_names = [ MHB; IG; IA; RHB; CHB; PHB; MA; UR; TT ]

let sound = [ MHB; IG; IA ]

let unsound = [ RHB; CHB; PHB; MA; UR; TT ]

let may_hb = [ RHB; CHB; PHB ]

let name_to_string = function
  | MHB -> "MHB"
  | IG -> "IG"
  | IA -> "IA"
  | RHB -> "RHB"
  | CHB -> "CHB"
  | PHB -> "PHB"
  | MA -> "MA"
  | UR -> "UR"
  | TT -> "TT"

let pp_name ppf n = Fmt.string ppf (name_to_string n)

type ctx = {
  tf : Threadify.t;
  esc : Escape.t;
  locks : Lockset.t;
  guards_cache : (string, Guards.t) Hashtbl.t;
  component_obj : (string, int) Hashtbl.t;  (* component class -> abstract object id *)
  cancel_cache : (int, (Api.cancel * IntSet.t * IntSet.t) list) Hashtbl.t;
      (* thread id -> its cancellation calls; CHB queries the same
         canceller once per surviving pair, and the scan walks every
         body the thread reaches *)
  atomic_ig : bool;
      (** true: IG/IA/MA require atomicity (nAdroid). false: DEvA-style
          unsound application regardless of concurrency. *)
}

let create_ctx ?(atomic_ig = true) ?deadline (tf : Threadify.t) (esc : Escape.t)
    (locks : Lockset.t) : ctx =
  let component_obj = Hashtbl.create 16 in
  (* Construction is cheap (one pass over the roots), so an expired
     deadline does not fault here: it just leaves the component map
     empty, which only disables CHB pruning — sound over-reporting — and
     the filter phase that follows will record itself as skipped. *)
  let expired = match deadline with Some d -> Clock.now () > d | None -> false in
  if not expired then
    List.iter
      (fun (r : Pta.root) ->
        Hashtbl.replace component_obj r.Pta.r_component.Component.cls r.Pta.r_recv)
      (Pta.roots tf.Threadify.pta);
  {
    tf;
    esc;
    locks;
    guards_cache = Hashtbl.create 64;
    component_obj;
    cancel_cache = Hashtbl.create 16;
    atomic_ig;
  }

let guards_of ctx (mref : Instr.mref) : Guards.t =
  let key = mref.Instr.mr_class ^ "." ^ mref.Instr.mr_name in
  match Hashtbl.find_opt ctx.guards_cache key with
  | Some g -> g
  | None ->
      let body = Prog.body_exn ctx.tf.Threadify.pta.Pta.prog mref in
      let g = Guards.analyze body in
      Hashtbl.replace ctx.guards_cache key g;
      g

let thread ctx id = Threadify.thread ctx.tf id

(* -- MHB (sound, §6.1.1) ------------------------------------------------- *)

let same_origin_edge (a : Threadify.thread) (b : Threadify.thread) =
  match (a.Threadify.th_origin, b.Threadify.th_origin) with
  | Threadify.O_edge e1, Threadify.O_edge e2 ->
      e1.Pta.ce_from = e2.Pta.ce_from && e1.Pta.ce_instr.Instr.id = e2.Pta.ce_instr.Instr.id
  | (Threadify.O_main | Threadify.O_root _ | Threadify.O_edge _), _ -> false

let async_rank = function
  | Callback.Async `Pre -> Some 0
  | Callback.Async (`Progress | `Background) -> Some 1
  | Callback.Async `Post -> Some 2
  | Callback.Lifecycle _ | Callback.Service_lifecycle _ | Callback.Ui _ | Callback.System _
  | Callback.Service_conn _ | Callback.Receive | Callback.Handle_message
  | Callback.Runnable_run ->
      None

let thread_async_rank (th : Threadify.thread) =
  match th.Threadify.th_kind with
  | Threadify.Async_background -> Some 1
  | Threadify.Posted_cb k -> async_rank k
  | Threadify.Dummy_main | Threadify.Entry_cb _ | Threadify.Native_thread -> None

let service_mhb ~first ~second =
  let mid = [ "onStartCommand"; "onBind"; "onUnbind" ] in
  (String.equal first "onCreate"
   && (List.mem second mid || String.equal second "onDestroy"))
  || (String.equal second "onDestroy" && (List.mem first mid || String.equal first "onCreate"))

(* Prune when the use must happen before the free. *)
let mhb ctx w (tu_id, tf_id) =
  ignore w;
  let tu = thread ctx tu_id and tfr = thread ctx tf_id in
  (* MHB-Service: connected before disconnected, same binding *)
  let service =
    match (tu.Threadify.th_kind, tfr.Threadify.th_kind) with
    | ( Threadify.Posted_cb (Callback.Service_conn `Connected),
        Threadify.Posted_cb (Callback.Service_conn `Disconnected) ) ->
        same_origin_edge tu tfr
    | (Threadify.Dummy_main | Threadify.Entry_cb _ | Threadify.Posted_cb _
      | Threadify.Native_thread | Threadify.Async_background), _ ->
        false
  in
  (* MHB-AsyncTask: pre < {background, progress} < post, same execute *)
  let async =
    match (thread_async_rank tu, thread_async_rank tfr) with
    | Some r1, Some r2 -> r1 < r2 && same_origin_edge tu tfr
    | (Some _ | None), _ -> false
  in
  (* MHB-Lifecycle: onCreate first, onDestroy last, same component *)
  let lifecycle =
    match (tu.Threadify.th_kind, tfr.Threadify.th_kind) with
    | Threadify.Entry_cb ku, Threadify.Entry_cb kf -> (
        match (tu.Threadify.th_component, tfr.Threadify.th_component) with
        | Some c1, Some c2 when String.equal c1 c2 -> (
            match (ku, kf) with
            | (Callback.Lifecycle _ | Callback.Ui _), (Callback.Lifecycle _ | Callback.Ui _)
              ->
                Lifecycle.must_happen_before ~first:tu.Threadify.th_method
                  ~second:tfr.Threadify.th_method
            | Callback.Service_lifecycle _, Callback.Service_lifecycle _ ->
                service_mhb ~first:tu.Threadify.th_method ~second:tfr.Threadify.th_method
            | ( ( Callback.Lifecycle _ | Callback.Service_lifecycle _ | Callback.Ui _
                | Callback.System _ | Callback.Service_conn _ | Callback.Receive
                | Callback.Handle_message | Callback.Runnable_run | Callback.Async _ ),
                _ ) ->
                false)
        | (Some _ | None), _ -> false)
    | (Threadify.Dummy_main | Threadify.Entry_cb _ | Threadify.Posted_cb _
      | Threadify.Native_thread | Threadify.Async_background), _ ->
        false
  in
  service || async || lifecycle

(* -- IG / IA / MA (atomicity-aware) --------------------------------------- *)

(* Does the atomicity required by a check-then-use pattern hold for this
   thread pair? Same looper => callbacks are atomic w.r.t. each other;
   otherwise a common lock must protect both end points (§6.1.2). *)
let atomic ctx (w : Detect.warning) (tu : Threadify.thread) (tfr : Threadify.thread) =
  if not ctx.atomic_ig then true
  else if Threadify.on_looper tu && Threadify.on_looper tfr then true
  else
    Lockset.common_lock ctx.locks ~inst1:w.Detect.w_use.Detect.s_inst
      ~instr1:w.Detect.w_use.Detect.s_instr.Instr.id ~inst2:w.Detect.w_free.Detect.s_inst
      ~instr2:w.Detect.w_free.Detect.s_instr.Instr.id

let ig ctx (w : Detect.warning) (tu_id, tf_id) =
  Guards.is_guarded_use (guards_of ctx w.Detect.w_use.Detect.s_mref)
    ~instr:w.Detect.w_use.Detect.s_instr
  && atomic ctx w (thread ctx tu_id) (thread ctx tf_id)

let ia ctx (w : Detect.warning) (tu_id, tf_id) =
  Guards.is_must_alloc_use (guards_of ctx w.Detect.w_use.Detect.s_mref)
    ~instr:w.Detect.w_use.Detect.s_instr
  && atomic ctx w (thread ctx tu_id) (thread ctx tf_id)

let ma ctx (w : Detect.warning) (tu_id, tf_id) =
  Guards.is_maybe_alloc_use (guards_of ctx w.Detect.w_use.Detect.s_mref)
    ~instr:w.Detect.w_use.Detect.s_instr
  && atomic ctx w (thread ctx tu_id) (thread ctx tf_id)

(* -- RHB (unsound, §6.2.1) ------------------------------------------------ *)

let rhb ctx (w : Detect.warning) (tu_id, tf_id) =
  let tu = thread ctx tu_id and tfr = thread ctx tf_id in
  match (tu.Threadify.th_kind, tfr.Threadify.th_kind) with
  | Threadify.Entry_cb _, Threadify.Entry_cb (Callback.Lifecycle _)
    when String.equal tfr.Threadify.th_method "onPause"
         && not (String.equal tu.Threadify.th_method "onPause") -> (
      match (tu.Threadify.th_component, tfr.Threadify.th_component) with
      | Some c1, Some c2 when String.equal c1 c2 -> (
          (* an allocation of the field in onResume restores the invariant *)
          let prog = ctx.tf.Threadify.pta.Pta.prog in
          match Prog.dispatch_body prog ~cls:c1 ~meth:"onResume" with
          | None -> false
          | Some body ->
              let g = Guards.analyze body in
              Guards.may_allocates g w.Detect.w_field)
      | (Some _ | None), _ -> false)
  | (Threadify.Dummy_main | Threadify.Entry_cb _ | Threadify.Posted_cb _
    | Threadify.Native_thread | Threadify.Async_background), _ ->
      false

(* -- CHB (unsound, §6.2.1) ------------------------------------------------ *)

(* Points-to of the argument/receiver of a thread-creating edge's call,
   evaluated in the poster's instance. *)
let edge_carrier_objs ctx (e : Pta.call_edge) ~(carrier : [ `Receiver | `Arg of int ]) =
  let pta = ctx.tf.Threadify.pta in
  match e.Pta.ce_instr.Instr.i with
  | Instr.Call (_, recv, _, args) -> (
      match carrier with
      | `Receiver -> Pta.pts_var pta ~inst:e.Pta.ce_from ~v:recv
      | `Arg i -> (
          match List.nth_opt args i with
          | Some a -> Pta.pts_var pta ~inst:e.Pta.ce_from ~v:a
          | None -> IntSet.empty))
  | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Putfield _
  | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _
  | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
      IntSet.empty

(* The registration object a posted/registered victim thread hangs off. *)
let victim_listener_objs ctx (victim : Threadify.thread) =
  match victim.Threadify.th_origin with
  | Threadify.O_edge e -> (
      match e.Pta.ce_kind with
      | Pta.E_api k -> (
          match Api.carrier k with
          | Some c -> edge_carrier_objs ctx e ~carrier:c
          | None -> (
              (* Post_message: the handler is the receiver *)
              match e.Pta.ce_instr.Instr.i with
              | Instr.Call (_, recv, _, _) ->
                  Pta.pts_var ctx.tf.Threadify.pta ~inst:e.Pta.ce_from ~v:recv
              | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _
              | Instr.Putfield _ | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _
              | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
                  IntSet.empty))
      | Pta.E_ordinary -> IntSet.empty)
  | Threadify.O_main | Threadify.O_root _ -> IntSet.empty

(* All cancellation calls in a thread's reachable code, with their
   receiver/argument points-to. Memoized per thread. *)
let rec cancel_calls ctx (th : Threadify.thread) : (Api.cancel * IntSet.t * IntSet.t) list =
  match Hashtbl.find_opt ctx.cancel_cache th.Threadify.th_id with
  | Some calls -> calls
  | None ->
      let calls = cancel_calls_uncached ctx th in
      Hashtbl.replace ctx.cancel_cache th.Threadify.th_id calls;
      calls

and cancel_calls_uncached ctx (th : Threadify.thread) : (Api.cancel * IntSet.t * IntSet.t) list =
  let pta = ctx.tf.Threadify.pta in
  let prog = pta.Pta.prog in
  let out = ref [] in
  IntSet.iter
    (fun inst_id ->
      let inst = Pta.instance pta inst_id in
      match Prog.body prog inst.Pta.i_mref with
      | None -> ()
      | Some body ->
          Cfg.iter_instrs
            (fun ins ->
              match ins.Instr.i with
              | Instr.Call (_, recv, ms, args) -> (
                  match Api.classify ms with
                  | Api.Cancel c ->
                      let recv_pts = Pta.pts_var pta ~inst:inst_id ~v:recv in
                      let arg_pts =
                        match args with
                        | a :: _ -> Pta.pts_var pta ~inst:inst_id ~v:a
                        | [] -> IntSet.empty
                      in
                      out := (c, recv_pts, arg_pts) :: !out
                  | Api.Spawn _ | Api.Post _ | Api.Register _ | Api.Other -> ())
              | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _
              | Instr.Putfield _ | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _
              | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
                  ())
            body)
    (Threadify.instances_of ctx.tf th);
  !out

let overlaps a b = not (IntSet.is_empty (IntSet.inter a b))

(* Does a cancellation in [canceller] prevent [victim] from running
   afterwards? *)
let cancels ctx ~(canceller : Threadify.thread) ~(victim : Threadify.thread) =
  let victim_component_obj =
    match victim.Threadify.th_component with
    | Some c -> (
        match Hashtbl.find_opt ctx.component_obj c with
        | Some oid -> IntSet.singleton oid
        | None -> IntSet.empty)
    | None -> IntSet.empty
  in
  let listener = lazy (victim_listener_objs ctx victim) in
  List.exists
    (fun (c, recv_pts, arg_pts) ->
      match (c, victim.Threadify.th_kind) with
      | Api.Cancel_finish, Threadify.Entry_cb (Callback.Lifecycle _ | Callback.Ui _) ->
          overlaps recv_pts victim_component_obj
      | Api.Cancel_unbind, Threadify.Posted_cb (Callback.Service_conn _) ->
          overlaps arg_pts (Lazy.force listener)
      | Api.Cancel_unregister_receiver, Threadify.Posted_cb Callback.Receive ->
          overlaps arg_pts (Lazy.force listener)
      | ( Api.Cancel_remove_callbacks,
          Threadify.Posted_cb (Callback.Runnable_run | Callback.Handle_message) ) -> (
          (* same handler: compare the post's receiver with the cancel's *)
          match victim.Threadify.th_origin with
          | Threadify.O_edge e -> (
              match e.Pta.ce_instr.Instr.i with
              | Instr.Call (_, recv, ms, _)
                when String.equal ms.Sema.ms_class "Handler" ->
                  overlaps recv_pts
                    (Pta.pts_var ctx.tf.Threadify.pta ~inst:e.Pta.ce_from ~v:recv)
              | Instr.Call _ | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _
              | Instr.Putfield _ | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _
              | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
                  false)
          | Threadify.O_main | Threadify.O_root _ -> false)
      | ( Api.Cancel_async_task,
          (Threadify.Posted_cb (Callback.Async _) | Threadify.Async_background) ) ->
          overlaps recv_pts (Lazy.force listener)
      | Api.Cancel_remove_location, Threadify.Entry_cb (Callback.System _) ->
          overlaps arg_pts (Lazy.force listener)
      | Api.Cancel_unregister_sensor, Threadify.Entry_cb (Callback.System _) ->
          overlaps arg_pts (Lazy.force listener)
      | ( ( Api.Cancel_finish | Api.Cancel_unbind | Api.Cancel_unregister_receiver
          | Api.Cancel_remove_callbacks | Api.Cancel_async_task | Api.Cancel_remove_location
          | Api.Cancel_unregister_sensor ),
          _ ) ->
          false)
    (cancel_calls ctx canceller)

let chb ctx (w : Detect.warning) (tu_id, tf_id) =
  ignore w;
  let tu = thread ctx tu_id and tfr = thread ctx tf_id in
  Threadify.is_callback tfr && cancels ctx ~canceller:tfr ~victim:tu

(* -- PHB (unsound, §6.2.1) ------------------------------------------------ *)

(* Use-thread posts (transitively) the free-thread, all hops being looper
   callbacks: the poster's instructions happen before the postee's. *)
let phb ctx (w : Detect.warning) (tu_id, tf_id) =
  ignore w;
  let tu = thread ctx tu_id in
  let rec ascend (th : Threadify.thread) =
    if th.Threadify.th_id = tu_id then true
    else
      match th.Threadify.th_kind with
      | Threadify.Posted_cb k when Callback.on_looper k -> (
          match Threadify.parent ctx.tf th with
          | Some p -> ascend p
          | None -> false)
      | Threadify.Dummy_main | Threadify.Entry_cb _ | Threadify.Posted_cb _
      | Threadify.Native_thread | Threadify.Async_background ->
          false
  in
  let tfr = thread ctx tf_id in
  tf_id <> tu_id && Threadify.on_looper tu && ascend tfr

(* -- UR / TT --------------------------------------------------------------- *)

let ur ctx (w : Detect.warning) _pair =
  Guards.is_used_for_return (guards_of ctx w.Detect.w_use.Detect.s_mref)
    ~instr:w.Detect.w_use.Detect.s_instr

let tt ctx (w : Detect.warning) (tu_id, tf_id) =
  ignore w;
  (not (Threadify.on_looper (thread ctx tu_id)))
  && not (Threadify.on_looper (thread ctx tf_id))

(* -- driver ----------------------------------------------------------------- *)

let prunes ctx name (w : Detect.warning) pair =
  match name with
  | MHB -> mhb ctx w pair
  | IG -> ig ctx w pair
  | IA -> ia ctx w pair
  | RHB -> rhb ctx w pair
  | CHB -> chb ctx w pair
  | PHB -> phb ctx w pair
  | MA -> ma ctx w pair
  | UR -> ur ctx w pair
  | TT -> tt ctx w pair

(* Apply a set of filters: a pair survives when no filter prunes it; a
   warning survives when at least one pair survives. *)
let apply ctx names (ws : Detect.warning list) : Detect.warning list =
  List.filter_map
    (fun (w : Detect.warning) ->
      let pairs =
        List.filter (fun p -> not (List.exists (fun n -> prunes ctx n w p) names)) w.Detect.w_pairs
      in
      match pairs with [] -> None | _ :: _ -> Some { w with Detect.w_pairs = pairs })
    ws

(* Same pruning as {!apply}, but every filter is evaluated on every pair
   and each pruning filter is credited, so overlapping filters both
   count (the per-filter columns of the metrics record). *)
let apply_counted ctx names (ws : Detect.warning list) :
    Detect.warning list * (name * int) list =
  let counts = List.map (fun n -> (n, ref 0)) names in
  let survivors =
    List.filter_map
      (fun (w : Detect.warning) ->
        let pairs =
          List.filter
            (fun p ->
              let pruned = ref false in
              List.iter2
                (fun n (_, c) ->
                  if prunes ctx n w p then begin
                    incr c;
                    pruned := true
                  end)
                names counts;
              not !pruned)
            w.Detect.w_pairs
        in
        match pairs with [] -> None | _ :: _ -> Some { w with Detect.w_pairs = pairs })
      ws
  in
  (survivors, List.map (fun (n, c) -> (n, !c)) counts)

(* Deadline-aware variant: filters run one name at a time against the
   survivors of the previous ones, with the clock sampled both at each
   filter start and every few warnings inside the per-warning loop — a
   single filter over a huge warning list used to run arbitrarily past
   the deadline. Once the absolute [deadline] passes, the in-flight
   filter stops where it is (its already-filtered prefix is kept — every
   individual prune is sound — and the untouched tail passes through)
   and all remaining names are skipped. Skipping is sound in the
   more-warnings direction, so a starved filter phase degrades instead
   of hanging. Counts credit each filter only with the pairs it pruned
   itself (earlier filters already removed theirs), unlike
   {!apply_counted}'s overlapping credit; a partially-run filter keeps
   its partial count and also appears in the skipped list. *)
let apply_counted_deadline ctx ~deadline names (ws : Detect.warning list) :
    Detect.warning list * (name * int) list * name list =
  let counts = ref [] and skipped = ref [] in
  let expired = ref false in
  let checked = ref 0 in
  (* sampled every 8 warnings, so one filter overruns an expired
     deadline by at most 8 warnings' worth of pruning *)
  let now_expired () =
    !expired
    ||
    (incr checked;
     if !checked land 7 = 0 && Clock.now () > deadline then expired := true;
     !expired)
  in
  let survivors =
    List.fold_left
      (fun ws n ->
        if !expired || Clock.now () > deadline then begin
          expired := true;
          skipped := n :: !skipped;
          ws
        end
        else begin
          let c = ref 0 in
          let rec go acc = function
            | [] -> List.rev acc
            | (w : Detect.warning) :: rest ->
                if now_expired () then begin
                  skipped := n :: !skipped;
                  List.rev_append acc (w :: rest)
                end
                else begin
                  let pairs =
                    List.filter
                      (fun p ->
                        let pruned = prunes ctx n w p in
                        if pruned then incr c;
                        not pruned)
                      w.Detect.w_pairs
                  in
                  match pairs with
                  | [] -> go acc rest
                  | _ :: _ -> go ({ w with Detect.w_pairs = pairs } :: acc) rest
                end
          in
          let ws = go [] ws in
          counts := (n, !c) :: !counts;
          ws
        end)
      ws names
  in
  (survivors, List.rev !counts, List.rev !skipped)

(* Number of warnings fully pruned when only [names] are enabled. *)
let pruned_count ctx names ws = List.length ws - List.length (apply ctx names ws)
