(* Programmer-facing warning reports (§7): each potential UAF is rendered
   with its racy field, use/free sites, origin categories, and the
   callback/thread lineage chains that explain how each side comes to
   run. *)

open Nadroid_lang
open Nadroid_ir

type t = {
  field : string;
  use_site : string;
  use_loc : Loc.t;
  free_site : string;
  free_loc : Loc.t;
  category : Classify.category;
  use_lineages : string list;
  free_lineages : string list;
}

let field_name (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

let of_warning (tf : Threadify.t) (w : Detect.warning) : t =
  let lineages side =
    List.sort_uniq String.compare
      (List.map
         (fun (u, f) -> Threadify.lineage tf (Threadify.thread tf (side (u, f))))
         w.Detect.w_pairs)
  in
  {
    field = field_name w.Detect.w_field;
    use_site = Fmt.str "%a" Detect.pp_site w.Detect.w_use;
    use_loc = w.Detect.w_use.Detect.s_instr.Instr.loc;
    free_site = Fmt.str "%a" Detect.pp_site w.Detect.w_free;
    free_loc = w.Detect.w_free.Detect.s_instr.Instr.loc;
    category = Classify.of_warning tf w;
    use_lineages = lineages fst;
    free_lineages = lineages snd;
  }

let pp ppf r =
  Fmt.pf ppf "potential UAF on %s [%a]@\n" r.field Classify.pp r.category;
  Fmt.pf ppf "  use : %s (%a)@\n" r.use_site Loc.pp r.use_loc;
  List.iter (fun l -> Fmt.pf ppf "        via %s@\n" l) r.use_lineages;
  Fmt.pf ppf "  free: %s (%a)@\n" r.free_site Loc.pp r.free_loc;
  List.iter (fun l -> Fmt.pf ppf "        via %s@\n" l) r.free_lineages

(* -- per-phase metrics (§8.8) ------------------------------------------- *)

(* The degraded-mode marker. Shown wherever a budget-starved result is
   printed, so a report produced under degradation can never be mistaken
   for a full-precision one: the warning set is a sound superset. *)
let pp_degraded ppf = function
  | [] -> ()
  | ds ->
      Fmt.pf ppf "DEGRADED (sound, may over-report):%a@\n"
        (Fmt.list ~sep:Fmt.nop (fun ppf d ->
             Fmt.pf ppf " %s" (Pipeline.degradation_to_string d)))
        ds

let pp_metrics ppf (m : Pipeline.metrics) =
  let line name v =
    Fmt.pf ppf "  %-12s %8.3f ms  (%5.1f%%)@\n" name (1000.0 *. v)
      (if m.Pipeline.m_wall > 0.0 then 100.0 *. v /. m.Pipeline.m_wall else 0.0)
  in
  Fmt.pf ppf "analysis phases:@\n";
  line "lex" m.Pipeline.m_frontend_lex;
  line "parse" m.Pipeline.m_frontend_parse;
  line "sema" m.Pipeline.m_frontend_sema;
  line "lower" m.Pipeline.m_frontend_lower;
  line "points-to" m.Pipeline.m_pta;
  line "escape+locks" m.Pipeline.m_aux;
  line "threadify" m.Pipeline.m_threadify;
  line "detect" m.Pipeline.m_detect;
  line "filter-ctx" m.Pipeline.m_ctx;
  line "filters" m.Pipeline.m_filter;
  Fmt.pf ppf "  %-12s %8.3f ms@\n" "wall" (1000.0 *. m.Pipeline.m_wall);
  Fmt.pf ppf "  %-12s %8d visits %8d steps %8d tuples@\n" "pta-work" m.Pipeline.m_pta_visits
    m.Pipeline.m_pta_steps m.Pipeline.m_pta_tuples;
  (match m.Pipeline.m_pruned with
  | [] -> ()
  | pruned ->
      Fmt.pf ppf "pairs pruned per filter:";
      List.iter
        (fun (n, c) -> Fmt.pf ppf " %a=%d" Filters.pp_name n c)
        pruned;
      Fmt.pf ppf "@\n");
  pp_degraded ppf m.Pipeline.m_degraded

(* Machine-readable metrics: one flat JSON object (no external JSON
   dependency; every value is a number except the name). *)
let metrics_to_json ?name (m : Pipeline.metrics) : string =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  (match name with
  | Some n -> Buffer.add_string buf (Printf.sprintf "\"name\":%S," n)
  | None -> ());
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "\"%s\":%.6f," k v))
    [
      ("frontend_lex", m.Pipeline.m_frontend_lex);
      ("frontend_parse", m.Pipeline.m_frontend_parse);
      ("frontend_sema", m.Pipeline.m_frontend_sema);
      ("frontend_lower", m.Pipeline.m_frontend_lower);
      ("pta", m.Pipeline.m_pta);
      ("aux", m.Pipeline.m_aux);
      ("threadify", m.Pipeline.m_threadify);
      ("detect", m.Pipeline.m_detect);
      ("create_ctx", m.Pipeline.m_ctx);
      ("filter", m.Pipeline.m_filter);
      ("phase_sum", Pipeline.phase_sum m);
      ("wall", m.Pipeline.m_wall);
    ];
  Buffer.add_string buf
    (Printf.sprintf "\"pta_visits\":%d,\"pta_steps\":%d,\"pta_tuples\":%d,"
       m.Pipeline.m_pta_visits m.Pipeline.m_pta_steps m.Pipeline.m_pta_tuples);
  Buffer.add_string buf "\"pruned\":{";
  List.iteri
    (fun i (n, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (Filters.name_to_string n) c))
    m.Pipeline.m_pruned;
  Buffer.add_string buf "},\"degraded\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S" (Pipeline.degradation_to_string d)))
    m.Pipeline.m_degraded;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* A structured fault as JSON, for failure summaries in batch output. *)
let fault_to_json ?name (f : Fault.t) : string =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  (match name with
  | Some n -> Buffer.add_string buf (Printf.sprintf "\"name\":%S," n)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "\"fault\":%S,\"exit\":%d,\"detail\":%S}" (Fault.class_to_string f)
       (Fault.exit_code f) (Fault.detail f));
  Buffer.contents buf

let pp_all ppf (tf : Threadify.t) (ws : Detect.warning list) =
  (* highest-risk categories first, per the §7 triage hypothesis *)
  let reports = List.map (of_warning tf) ws in
  let sorted =
    List.sort (fun a b -> compare (Classify.rank b.category) (Classify.rank a.category)) reports
  in
  List.iteri (fun i r -> Fmt.pf ppf "[%d] %a@\n" (i + 1) pp r) sorted

let to_string tf ws = Fmt.str "%a" (fun ppf () -> pp_all ppf tf ws) ()
