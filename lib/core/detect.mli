(** UAF ordering-violation detection (paper §5).

    After threadification, every {e use} ([getfield]) and {e free}
    ([putfield] of the null literal) is collected per modeled thread; a
    potential UAF is a use/free pair on the same abstract field (base
    points-to sets overlap on an escaping object) from two different
    threads. Locksets and MHP are deliberately not used at this stage
    (§5); the §6 filters replace them. The candidate join runs on the
    Datalog engine. *)

open Nadroid_ir
open Nadroid_analysis
module IntSet = Pta.IntSet

type site = { s_inst : int; s_mref : Instr.mref; s_instr : Instr.t }

val pp_site : site Fmt.t

val site_key : site -> string

(** One field access executed by a modeled thread. *)
type access = {
  a_thread : int;  (** thread id *)
  a_site : site;
  a_field : Instr.fref;
  a_objs : IntSet.t;  (** abstract base objects; empty for statics *)
  a_static : bool;
}

val may_alias : Escape.t -> access -> access -> bool
(** Do two accesses touch the same abstract memory? Same field key, and
    either both static, or both instance with a common escaping base
    object. A static and an instance access never alias, even when their
    field keys collide. *)

type warning = {
  w_field : Instr.fref;
  w_use : site;
  w_free : site;
  w_pairs : (int * int) list;
      (** (use-thread, free-thread) pairs; filters prune them and a
          warning dies when none survive *)
}

val warning_key : warning -> string * string

val field_key : Instr.fref -> string

val collect_accesses : ?deadline:float -> Threadify.t -> access list * access list
(** Uses and frees per modeled thread, in (thread, instance, instruction)
    order. Exposed for profiling and the equivalence tests. *)

val run :
  ?deadline:float ->
  ?max_tuples:int ->
  ?symbols:Nadroid_datalog.Symbol.t ->
  Threadify.t ->
  Escape.t ->
  warning list
(** All potential UAFs, deduplicated to (use site, free site) pairs as
    in the paper ("each warning is a pair of free-use operations").
    The candidate join buckets accesses by interned field key before
    generating alias facts, so pair enumeration is linear in the
    per-field use/free products.

    [deadline] (absolute instant) is sampled periodically during access
    collection and alias enumeration; [max_tuples] caps the Datalog
    database cardinality. A partial warning list would be unsound, so
    either bound expiring raises [Fault (Budget P_detect)].

    [symbols] hands the join's Datalog engine a shared (batch-wide)
    interning table; results are byte-identical with or without it. *)

val run_reference : Threadify.t -> Escape.t -> warning list
(** Oracle for the equivalence property test: identical semantics to
    {!run}, but alias facts come from the naive uses x frees
    cross-product with a per-pair field-key comparison. *)

val n_warnings : warning list -> int
