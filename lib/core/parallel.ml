(* A reusable fixed-size domain pool with a submit/await queue.

   Historically this module spawned fresh domains for every [map] call.
   The serve daemon needs workers that outlive any one batch — spawning
   a domain per request would dominate request latency — so the pool is
   now a first-class value: [Pool.create] spawns the workers once,
   [Pool.submit] enqueues a task and returns a future, [Pool.await]
   blocks on its completion, and [Pool.shutdown] drains the queue and
   joins the workers (graceful: queued work still runs).

   [map_result] keeps its historical contract on top of the pool: input
   order, crash isolation per slot, and — when no persistent pool is
   passed — the same domain budget as the old spawn-per-map code (the
   caller participates in the work via {!Pool.help}, so a transient map
   on [jobs] still runs at most [jobs] tasks concurrently). *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

module Pool = struct
  type t = {
    m : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable domains : unit Domain.t list;
    jobs : int;  (** worker domain count *)
  }

  type 'a state = Pending | Value of 'a | Exn of exn

  type 'a future = {
    fm : Mutex.t;
    fc : Condition.t;
    mutable state : 'a state;
  }

  let jobs t = t.jobs

  let worker t =
    let rec loop () =
      Mutex.lock t.m;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.nonempty t.m
      done;
      (* on shutdown, keep draining until the queue is empty *)
      if Queue.is_empty t.queue then Mutex.unlock t.m
      else begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.m;
        task ();
        loop ()
      end
    in
    loop ()

  let create ?jobs () =
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let t =
      {
        m = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        domains = [];
        jobs;
      }
    in
    t.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let submit t f =
    let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
    let task () =
      let r = match f () with v -> Value v | exception e -> Exn e in
      Mutex.lock fut.fm;
      fut.state <- r;
      Condition.broadcast fut.fc;
      Mutex.unlock fut.fm
    in
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Parallel.Pool.submit: pool is shut down"
    end;
    Queue.push task t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.m;
    fut

  let await fut =
    Mutex.lock fut.fm;
    let rec wait () =
      match fut.state with
      | Pending ->
          Condition.wait fut.fc fut.fm;
          wait ()
      | Value v -> Ok v
      | Exn e -> Error e
    in
    let r = wait () in
    Mutex.unlock fut.fm;
    r

  let help t =
    let rec loop () =
      Mutex.lock t.m;
      let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
      Mutex.unlock t.m;
      match task with
      | None -> ()
      | Some task ->
          task ();
          loop ()
    in
    loop ()

  let shutdown t =
    Mutex.lock t.m;
    if t.stopping then Mutex.unlock t.m
    else begin
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.m;
      List.iter Domain.join t.domains;
      t.domains <- []
    end
end

let map_result ?pool ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  let n = List.length xs in
  if n = 0 then []
  else
    match pool with
    | Some p ->
        (* persistent pool: the caller blocks on the futures rather than
           stealing work — a server's control loop must stay responsive,
           not run analyses *)
        ignore (Pool.jobs p);
        let futs = List.map (fun x -> Pool.submit p (fun () -> f x)) xs in
        List.map Pool.await futs
    | None ->
        let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
        if jobs = 1 || n = 1 then
          List.map (fun x -> try Ok (f x) with e -> Error e) xs
        else begin
          (* transient pool, same domain budget as the historical
             spawn-per-map: [min jobs n - 1] workers plus the caller *)
          let p = Pool.create ~jobs:(min jobs n - 1) () in
          let futs = List.map (fun x -> Pool.submit p (fun () -> f x)) xs in
          Pool.help p;
          let rs = List.map Pool.await futs in
          Pool.shutdown p;
          rs
        end

(* Fail-fast map: every item still runs (all results are computed), but
   the first failure in input order is re-raised in the caller, so
   existing callers keep their contract. *)
let map ?pool ?jobs f xs =
  let rec unwrap = function
    | [] -> []
    | Ok r :: rest -> r :: unwrap rest
    | Error e :: _ -> raise e
  in
  unwrap (map_result ?pool ?jobs f xs)
