(* A small fixed-size domain pool for data-parallel analysis.

   Work items are claimed from a mutex-protected counter and results are
   written back into a slot array indexed by input position, so the
   output order (and content) is independent of the number of domains
   and of scheduling. The first exception raised by any task aborts the
   remaining work and is re-raised in the caller once every domain has
   joined. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type 'b slot = Pending | Done of 'b

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if jobs = 1 || n = 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let m = Mutex.create () in
    let next = ref 0 in
    let failed : exn option ref = ref None in
    let claim () =
      Mutex.lock m;
      let r = if !failed <> None || !next >= n then None else Some !next in
      if r <> None then incr next;
      Mutex.unlock m;
      r
    in
    let fail e =
      Mutex.lock m;
      if !failed = None then failed := Some e;
      Mutex.unlock m
    in
    let rec worker () =
      match claim () with
      | None -> ()
      | Some i ->
          (match f items.(i) with
          | r -> results.(i) <- Done r
          | exception e -> fail e);
          worker ()
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match !failed with
    | Some e -> raise e
    | None ->
        Array.to_list
          (Array.map (function Done r -> r | Pending -> assert false) results)
  end
