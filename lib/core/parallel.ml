(* A small fixed-size domain pool for data-parallel analysis.

   Work items are claimed from a mutex-protected counter and results are
   written back into a slot array indexed by input position, so the
   output order (and content) is independent of the number of domains
   and of scheduling.

   [map_result] is the crash-isolated primitive: a task's exception is
   captured in its own slot and the remaining items still run, so one
   poisoned input cannot lose a batch. [map] keeps the historical
   fail-fast contract on top of it. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type 'b slot = Pending | Done of 'b

let map_result ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if jobs = 1 || n = 1 then
    List.map (fun x -> try Ok (f x) with e -> Error e) xs
  else begin
    let results = Array.make n Pending in
    let m = Mutex.create () in
    let next = ref 0 in
    let claim () =
      Mutex.lock m;
      let r = if !next >= n then None else Some !next in
      if r <> None then incr next;
      Mutex.unlock m;
      r
    in
    let rec worker () =
      match claim () with
      | None -> ()
      | Some i ->
          results.(i) <- (match f items.(i) with r -> Done (Ok r) | exception e -> Done (Error e));
          worker ()
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map (function Done r -> r | Pending -> assert false) results)
  end

(* Fail-fast map: every item still runs (unlike the historical abort-on-
   first-failure pool, all results are computed), but the first failure
   in input order is re-raised in the caller, so existing callers keep
   their contract. *)
let map ?jobs f xs =
  let rec unwrap = function
    | [] -> []
    | Ok r :: rest -> r :: unwrap rest
    | Error e :: _ -> raise e
  in
  unwrap (map_result ?jobs f xs)
