(* A reusable fixed-size domain pool with a submit/await queue.

   Historically this module spawned fresh domains for every [map] call.
   The serve daemon needs workers that outlive any one batch — spawning
   a domain per request would dominate request latency — so the pool is
   now a first-class value: [Pool.create] spawns the workers once,
   [Pool.submit] enqueues a task and returns a future, [Pool.await]
   blocks on its completion, and [Pool.shutdown] drains the queue and
   joins the workers (graceful: queued work still runs).

   [map_result] keeps its historical contract on top of the pool: input
   order, crash isolation per slot, and — when no persistent pool is
   passed — the same domain budget as the old spawn-per-map code (the
   caller participates in the work via {!Pool.help}, so a transient map
   on [jobs] still runs at most [jobs] tasks concurrently). *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

module Pool = struct
  type t = {
    m : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable domains : unit Domain.t list;
    jobs : int;  (** worker domain count *)
  }

  type 'a state = Pending | Value of 'a | Exn of exn

  type 'a future = {
    fm : Mutex.t;
    fc : Condition.t;
    mutable state : 'a state;
  }

  let jobs t = t.jobs

  let worker t =
    let rec loop () =
      Mutex.lock t.m;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.nonempty t.m
      done;
      (* on shutdown, keep draining until the queue is empty *)
      if Queue.is_empty t.queue then Mutex.unlock t.m
      else begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.m;
        task ();
        loop ()
      end
    in
    loop ()

  let create ?jobs () =
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let t =
      {
        m = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        domains = [];
        jobs;
      }
    in
    t.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let submit t f =
    let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
    let task () =
      let r = match f () with v -> Value v | exception e -> Exn e in
      Mutex.lock fut.fm;
      fut.state <- r;
      Condition.broadcast fut.fc;
      Mutex.unlock fut.fm
    in
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Parallel.Pool.submit: pool is shut down"
    end;
    Queue.push task t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.m;
    fut

  let await fut =
    Mutex.lock fut.fm;
    let rec wait () =
      match fut.state with
      | Pending ->
          Condition.wait fut.fc fut.fm;
          wait ()
      | Value v -> Ok v
      | Exn e -> Error e
    in
    let r = wait () in
    Mutex.unlock fut.fm;
    r

  let help t =
    let rec loop () =
      Mutex.lock t.m;
      let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
      Mutex.unlock t.m;
      match task with
      | None -> ()
      | Some task ->
          task ();
          loop ()
    in
    loop ()

  let shutdown t =
    Mutex.lock t.m;
    if t.stopping then Mutex.unlock t.m
    else begin
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.m;
      List.iter Domain.join t.domains;
      t.domains <- []
    end
end

let map_result ?pool ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  let n = List.length xs in
  if n = 0 then []
  else
    match pool with
    | Some p ->
        (* persistent pool: the caller blocks on the futures rather than
           stealing work — a server's control loop must stay responsive,
           not run analyses *)
        ignore (Pool.jobs p);
        let futs = List.map (fun x -> Pool.submit p (fun () -> f x)) xs in
        List.map Pool.await futs
    | None ->
        let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
        if jobs = 1 || n = 1 then
          List.map (fun x -> try Ok (f x) with e -> Error e) xs
        else begin
          (* transient pool, same domain budget as the historical
             spawn-per-map: [min jobs n - 1] workers plus the caller *)
          let p = Pool.create ~jobs:(min jobs n - 1) () in
          let futs = List.map (fun x -> Pool.submit p (fun () -> f x)) xs in
          Pool.help p;
          let rs = List.map Pool.await futs in
          Pool.shutdown p;
          rs
        end

(* Fail-fast map: every item still runs (all results are computed), but
   the first failure in input order is re-raised in the caller, so
   existing callers keep their contract. *)
let map ?pool ?jobs f xs =
  let rec unwrap = function
    | [] -> []
    | Ok r :: rest -> r :: unwrap rest
    | Error e :: _ -> raise e
  in
  unwrap (map_result ?pool ?jobs f xs)

(* -- streaming batch scheduler ------------------------------------------- *)

(* [stream] runs [f 0 .. f (n-1)] over a fixed worker set and hands each
   result to [emit] in strict input order, holding at most [window]
   results (plus in-flight tasks) at any instant — so a corpus-sized
   batch never accumulates O(corpus) outputs.

   Scheduling: indices are admitted into per-worker deques round-robin
   as the emission watermark advances (the admission window is what
   bounds memory). Under [Static] a worker only ever drains its own
   deque — the classic static split, kept as the bench baseline — so one
   adversarial straggler idles its whole residue class. Under [Steal]
   (the default) a worker whose deque runs dry takes the *back* half of
   the longest peer deque: the victim keeps its imminent, ordering-
   critical front while the thief carries work far from the watermark,
   which is exactly the work a straggler would otherwise strand.

   All scheduler state lives under one mutex. That is deliberate: tasks
   here are whole-app analyses (milliseconds and up), so the lock is
   cold; a lock-free deque would buy nothing and cost the determinism
   argument. [emit] runs under the same mutex — it is serialized, in
   input order, and must not call back into the scheduler. *)

type sched = Static | Steal

let default_window = 256

let stream ?jobs ?(window = default_window) ?(sched = Steal) ~n
    (f : int -> 'b) (emit : int -> ('b, exn) result -> unit) : unit =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if n <= 0 then ()
  else if jobs = 1 || n = 1 then
    for i = 0 to n - 1 do
      emit i (match f i with v -> Ok v | exception e -> Error e)
    done
  else begin
    let jobs = min jobs n in
    let window = max window (2 * jobs) in
    let m = Mutex.create () in
    let work = Condition.create () in
    let deques = Array.init jobs (fun _ -> Queue.create ()) in
    let admitted = ref 0 and emit_next = ref 0 in
    let buf : (int, ('b, exn) result) Hashtbl.t = Hashtbl.create (2 * window) in
    let failed = ref None in
    (* with [m] held: top the deques up to the admission window *)
    let admit () =
      while !admitted < n && !admitted - !emit_next < window do
        Queue.push !admitted deques.(!admitted mod jobs);
        incr admitted
      done
    in
    (* with [m] held: emit every ready result at the watermark *)
    let drain () =
      let continue = ref true in
      while !continue && !failed = None do
        match Hashtbl.find_opt buf !emit_next with
        | None -> continue := false
        | Some r -> (
            Hashtbl.remove buf !emit_next;
            match emit !emit_next r with
            | () -> incr emit_next
            | exception e ->
                failed := Some e;
                incr emit_next)
      done
    in
    (* with [m] held: next index for worker [w] — own deque first, then
       (Steal only) the back half of the longest peer deque *)
    let pop w =
      if not (Queue.is_empty deques.(w)) then Some (Queue.pop deques.(w))
      else if sched = Static then None
      else begin
        let victim = ref (-1) and best = ref 0 in
        Array.iteri
          (fun i q ->
            let l = Queue.length q in
            if i <> w && l > !best then begin
              victim := i;
              best := l
            end)
          deques;
        if !victim < 0 then None
        else begin
          let q = deques.(!victim) in
          (* take the back half, at least one — a lone queued item is
             still worth stealing, the reorder buffer owns ordering *)
          let keep = Queue.length q - max 1 (Queue.length q / 2) in
          let front = Queue.create () in
          for _ = 1 to keep do
            Queue.push (Queue.pop q) front
          done;
          Queue.transfer q deques.(w);
          Queue.transfer front q;
          Some (Queue.pop deques.(w))
        end
      end
    in
    let rec worker w =
      Mutex.lock m;
      let rec get () =
        if !failed <> None || !emit_next >= n then None
        else
          match pop w with
          | Some i -> Some i
          | None ->
              Condition.wait work m;
              get ()
      in
      match get () with
      | None -> Mutex.unlock m
      | Some i ->
          Mutex.unlock m;
          let r = match f i with v -> Ok v | exception e -> Error e in
          Mutex.lock m;
          Hashtbl.replace buf i r;
          let before = !admitted in
          drain ();
          admit ();
          (* a waiter can only be unblocked by newly admitted work,
             termination, or failure — don't wake the house otherwise *)
          if !admitted > before || !emit_next >= n || !failed <> None then
            Condition.broadcast work;
          Mutex.unlock m;
          worker w
    in
    Mutex.lock m;
    admit ();
    Mutex.unlock m;
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    List.iter Domain.join domains;
    match !failed with Some e -> raise e | None -> ()
  end
