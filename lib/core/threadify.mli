(** Threadification (paper §4): model event callbacks as threads.

    The transformed program is a forest: a dummy main thread (the
    initial looper) spawns one modeled thread per Entry Callback;
    Posted Callbacks become children of the callback/thread that posted
    them, preserving the poster-to-postee lineage used both by the PHB
    filter and by the §7 triage report. Recursion through self-reposting
    callbacks is cut when a thread's entry instance already occurs in
    its ancestor chain. *)

open Nadroid_analysis
module IntSet = Pta.IntSet

type kind =
  | Dummy_main
  | Entry_cb of Nadroid_android.Callback.kind  (** EC: child of the dummy main *)
  | Posted_cb of Nadroid_android.Callback.kind  (** PC: child of its poster *)
  | Native_thread  (** Thread.start / Executor.execute target *)
  | Async_background  (** AsyncTask.doInBackground *)

val pp_kind : kind Fmt.t

type origin = O_main | O_root of Pta.root | O_edge of Pta.call_edge

type thread = {
  th_id : int;
  th_kind : kind;
  th_entry : int;  (** entry instance id; -1 for the dummy main *)
  th_parent : int option;
  th_origin : origin;
  th_class : string;
  th_method : string;
  th_component : string option;  (** component of the EC ancestor *)
}

type t = {
  threads : thread array;
  pta : Pta.t;
}

val on_looper : thread -> bool
(** Does this modeled thread execute on the (single) main looper? *)

val is_callback : thread -> bool

val run : ?deadline:float -> Pta.t -> t
(** Build the thread forest. [deadline] (absolute monotonic
    {!Nadroid_clock.Clock.now} instant) is checked once per thread expansion; a partial forest would
    silently drop warnings, so expiry raises
    [Fault (Budget P_modeling)] rather than degrading. *)

val threads : t -> thread list

val thread : t -> int -> thread

val n_threads : t -> int

val instances_of : t -> thread -> IntSet.t
(** Instances executed by the thread (entry closed under ordinary calls). *)

val parent : t -> thread -> thread option

val ancestors : t -> thread -> thread list

val is_ancestor : t -> anc:thread -> desc:thread -> bool

val lineage : t -> thread -> string
(** The poster-to-postee chain shown to programmers (§7). *)

val table1_thread_count : t -> int
(** Thread count in Table 1's sense: dummy main + doInBackground +
    native threads. *)

val pp_thread : thread Fmt.t

val to_dot : t -> string
(** Graphviz rendering of the forest, for report triage. *)

val pp_forest : t Fmt.t
