(* Deterministic fault injection at the runtime's I/O and process seams.

   Every seam that can fail in production (cache reads/writes/renames,
   journal appends, worker spawns and pipes, server accept/send) calls
   {!trip} with its site. With no plan armed a trip is a single atomic
   load — cheap enough to leave in release builds. An armed plan decides
   deterministically whether the trip fires, and how:

   - [Raise]: raise the error the seam would see from a failing kernel —
     [Unix.Unix_error (EIO, "faultinject", site)] — so injected faults
     travel exactly the code paths real I/O errors take, and any handler
     gap shows up as an escaped exception rather than a bespoke test
     failure.
   - [Kill]/[Abort]: deliver SIGKILL/SIGABRT to the calling process — the
     shapes of an OOM-kill and of a native crash. These are what the
     supervision and checkpoint/resume tests use to manufacture dead
     workers and half-written journals on demand.
   - [Term]: deliver SIGTERM to self and return — the process's own
     handler (cooperative batch stop) takes it from there.
   - [Wedge]: block for an hour — a hung worker, for heartbeat-timeout
     coverage.

   Plans come in two forms, combinable in one spec string:
   - deterministic rules: fire on the [n]th occurrence of a site in this
     process ("journal_append:4:kill"), or on every occurrence whose
     caller-provided key matches ("worker_task=K9Mail.mand:abort");
   - a seeded random mode: every occurrence of the listed sites fires
     with probability [rate], decided by a hash of (seed, site,
     occurrence) — reproducible across runs, independent of scheduling
     of *other* sites.

   The spec can also arrive via the [NADROID_FAULTS] environment
   variable, which child processes (supervised workers) inherit — that
   is how a test reaches a seam inside a worker it never talks to
   directly. *)

type site =
  | Cache_read
  | Cache_write
  | Cache_rename
  | Journal_append
  | Worker_spawn
  | Worker_pipe_read
  | Worker_task
  | Server_accept
  | Server_send

let all_sites =
  [
    Cache_read;
    Cache_write;
    Cache_rename;
    Journal_append;
    Worker_spawn;
    Worker_pipe_read;
    Worker_task;
    Server_accept;
    Server_send;
  ]

let site_index = function
  | Cache_read -> 0
  | Cache_write -> 1
  | Cache_rename -> 2
  | Journal_append -> 3
  | Worker_spawn -> 4
  | Worker_pipe_read -> 5
  | Worker_task -> 6
  | Server_accept -> 7
  | Server_send -> 8

let n_sites = 9

let site_to_string = function
  | Cache_read -> "cache_read"
  | Cache_write -> "cache_write"
  | Cache_rename -> "cache_rename"
  | Journal_append -> "journal_append"
  | Worker_spawn -> "worker_spawn"
  | Worker_pipe_read -> "worker_pipe_read"
  | Worker_task -> "worker_task"
  | Server_accept -> "server_accept"
  | Server_send -> "server_send"

let site_of_string s =
  List.find_opt (fun site -> String.equal (site_to_string site) s) all_sites

type action = Raise | Kill | Abort | Term | Wedge

let action_to_string = function
  | Raise -> "raise"
  | Kill -> "kill"
  | Abort -> "abort"
  | Term -> "term"
  | Wedge -> "wedge"

let action_of_string = function
  | "raise" -> Some Raise
  | "kill" -> Some Kill
  | "abort" -> Some Abort
  | "term" -> Some Term
  | "wedge" -> Some Wedge
  | _ -> None

type selector = Nth of int | Key of string

type rule = { r_site : site; r_sel : selector; r_action : action }

type seeded = { s_seed : int; s_rate : float; s_sites : site list }

type plan = { rules : rule list; seeded : seeded option }

(* The armed plan plus per-site occurrence counters. Arming resets the
   counters and the fire count, so a test that arms, runs, disarms and
   reads {!fires} sees only its own injections. *)
let plan : plan option Atomic.t = Atomic.make None

let counters = Array.init n_sites (fun _ -> Atomic.make 0)

let fired = Atomic.make 0

let armed () = Atomic.get plan <> None

let fires () = Atomic.get fired

let disarm () = Atomic.set plan None

let reset_counts () =
  Array.iter (fun c -> Atomic.set c 0) counters;
  Atomic.set fired 0

let arm p =
  reset_counts ();
  Atomic.set plan (Some p)

let arm_seeded ~seed ~rate ~sites () =
  arm { rules = []; seeded = Some { s_seed = seed; s_rate = rate; s_sites = sites } }

(* Deterministic per-occurrence coin: the first three digest bytes of
   (seed, site, occurrence) as a fraction of 2^24. Independent of any
   global PRNG state and of what other sites do. *)
let seeded_fires s site n =
  let h =
    Digest.string (Printf.sprintf "%d|%s|%d" s.s_seed (site_to_string site) n)
  in
  let v =
    (Char.code h.[0] lsl 16) lor (Char.code h.[1] lsl 8) lor Char.code h.[2]
  in
  float_of_int v /. 16777216.0 < s.s_rate

let perform action site key =
  Atomic.incr fired;
  let what =
    match key with
    | Some k -> site_to_string site ^ ":" ^ k
    | None -> site_to_string site
  in
  match action with
  | Raise -> raise (Unix.Unix_error (Unix.EIO, "faultinject", what))
  | Kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Abort -> Unix.kill (Unix.getpid ()) Sys.sigabrt
  | Term -> Unix.kill (Unix.getpid ()) Sys.sigterm
  | Wedge -> Unix.sleepf 3600.0

let trip ?key site =
  match Atomic.get plan with
  | None -> ()
  | Some p -> (
      let n = Atomic.fetch_and_add counters.(site_index site) 1 + 1 in
      let rule_action =
        List.find_map
          (fun r ->
            if r.r_site <> site then None
            else
              match r.r_sel with
              | Nth k -> if n = k then Some r.r_action else None
              | Key s -> (
                  match key with
                  | Some k when String.equal k s -> Some r.r_action
                  | _ -> None))
          p.rules
      in
      match rule_action with
      | Some a -> perform a site key
      | None -> (
          match p.seeded with
          | Some s when List.mem site s.s_sites && seeded_fires s site n ->
              perform Raise site key
          | _ -> ()))

(* -- spec parsing --------------------------------------------------------- *)

let env_var = "NADROID_FAULTS"

(* spec   := entry (';' entry)*
   entry  := SITE ':' N [':' ACTION]        deterministic, nth occurrence
           | SITE '=' KEY [':' ACTION]      deterministic, matching key
           | 'seed=' N | 'rate=' F | 'sites=' SITE ('+' SITE)*
   The seeded mode activates when both seed and rate appear; its site
   list defaults to every site. *)
let parse_spec spec =
  let entries =
    List.filter_map
      (fun e ->
        let e = String.trim e in
        if String.equal e "" then None else Some e)
      (String.split_on_char ';' spec)
  in
  let rules = ref [] in
  let seed = ref None and rate = ref None and sites = ref None in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  let parse_action = function
    | None -> Some Raise
    | Some a -> action_of_string a
  in
  List.iter
    (fun entry ->
      match String.split_on_char ':' entry with
      | [ kv ] | [ kv; _ ] when String.contains kv '=' -> (
          let i = String.index kv '=' in
          let lhs = String.sub kv 0 i in
          let rhs = String.sub kv (i + 1) (String.length kv - i - 1) in
          let action =
            match String.split_on_char ':' entry with
            | [ _; a ] -> Some a
            | _ -> None
          in
          match lhs with
          | ("seed" | "rate" | "sites") when action <> None ->
              (* silently dropping the suffix would arm a different
                 fault than the spec's author wrote *)
              fail "%s= takes no ':action' suffix (in %S)" lhs entry
          | "seed" -> (
              match int_of_string_opt rhs with
              | Some s -> seed := Some s
              | None -> fail "bad seed %S" rhs)
          | "rate" -> (
              match float_of_string_opt rhs with
              | Some r when r >= 0.0 && r <= 1.0 -> rate := Some r
              | _ -> fail "bad rate %S (want a float in [0,1])" rhs)
          | "sites" ->
              let names = String.split_on_char '+' rhs in
              let resolved = List.filter_map site_of_string names in
              if List.length resolved <> List.length names then
                fail "bad site list %S" rhs
              else sites := Some resolved
          | s -> (
              match (site_of_string s, parse_action action) with
              | Some site, Some a ->
                  rules := { r_site = site; r_sel = Key rhs; r_action = a } :: !rules
              | None, _ -> fail "unknown site %S" s
              | _, None -> fail "unknown action in %S" entry))
      | site_s :: nth_s :: rest -> (
          let action =
            match rest with
            | [] -> None
            | [ a ] -> Some a
            | _ ->
                fail "too many ':' in %S" entry;
                None
          in
          match site_of_string site_s with
          | None -> fail "unknown site %S" site_s
          | Some site -> (
              match int_of_string_opt nth_s with
              | None -> fail "bad occurrence count %S" nth_s
              | Some n when n < 1 -> fail "bad occurrence count %S" nth_s
              | Some n -> (
                  match parse_action action with
                  | None -> fail "unknown action in %S" entry
                  | Some a ->
                      rules :=
                        { r_site = site; r_sel = Nth n; r_action = a } :: !rules)))
      | _ -> fail "bad entry %S" entry)
    entries;
  match !err with
  | Some e -> Error e
  | None ->
      let seeded =
        match (!seed, !rate) with
        | Some s_seed, Some s_rate ->
            Some
              {
                s_seed;
                s_rate;
                s_sites = Option.value ~default:all_sites !sites;
              }
        | _ -> None
      in
      Ok { rules = List.rev !rules; seeded }

let arm_spec spec =
  match parse_spec spec with
  | Ok { rules = []; seeded = None } ->
      disarm ();
      Ok ()
  | Ok p ->
      arm p;
      Ok ()
  | Error _ as e -> e

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None -> Ok ()
  | Some spec -> arm_spec spec
