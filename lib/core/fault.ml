(* Structured fault taxonomy for the analysis runtime.

   Every way an analysis of one input can fail is folded into one of
   three classes, so batch drivers (corpus analysis, bench tables, the
   chaos harness) can survive a bad input, report it, and keep going:

   - [Frontend]: the input itself is bad — a lexing/parsing/typing
     diagnostic. Expected on malformed sources; never a bug in nAdroid.
   - [Budget]: a per-phase resource budget was exhausted and no sound
     degradation remained (e.g. the points-to solver ran out of steps
     even at k=0). The result is absent but the process is healthy.
   - [Internal]: an invariant violation — any exception that is neither
     a diagnostic nor a budget signal. Always a bug worth a report.

   Each class maps to a distinct CLI exit code so scripts can triage
   batch outcomes without parsing output. *)

open Nadroid_lang

type phase = P_pta | P_modeling | P_detect | P_filters | P_explorer | P_batch

type t =
  | Frontend of Diag.t
  | Budget of phase
  | Internal of string

exception Fault of t

let phase_to_string = function
  | P_pta -> "pta"
  | P_modeling -> "modeling"
  | P_detect -> "detect"
  | P_filters -> "filters"
  | P_explorer -> "explorer"
  | P_batch -> "batch"

let class_to_string = function
  | Frontend _ -> "frontend"
  | Budget _ -> "budget"
  | Internal _ -> "internal"

(* Exit codes: 0 = clean, 1 = frontend diagnostic, 3 = budget exhausted,
   4 = internal error. 2 is cmdliner's usage-error code and 124/125 are
   reserved by it as well; the ordering is by severity so a batch's
   worst fault is [max] over the per-item codes. *)
let exit_code = function Frontend _ -> 1 | Budget _ -> 3 | Internal _ -> 4

let worst_exit faults = List.fold_left (fun acc f -> max acc (exit_code f)) 0 faults

let pp ppf = function
  | Frontend d -> Diag.pp ppf d
  | Budget p -> Fmt.pf ppf "budget exhausted in %s phase" (phase_to_string p)
  | Internal msg -> Fmt.pf ppf "internal error: %s" msg

let to_string f = Fmt.str "%a" pp f

let detail = function
  | Frontend d -> Diag.to_string d
  | Budget p -> phase_to_string p
  | Internal msg -> msg

(* Fold an escaped exception into the taxonomy. [Out_of_memory] and
   [Stack_overflow] are kept (they are resource faults of the runtime,
   not invariants), everything else unknown is an internal bug. *)
let of_exn = function
  | Diag.Error d -> Frontend d
  | Fault f -> f
  | Stack_overflow -> Internal "stack overflow"
  | Out_of_memory -> Internal "out of memory"
  | e -> Internal (Printexc.to_string e)

let wrap f = try Ok (f ()) with e -> Error (of_exn e)
