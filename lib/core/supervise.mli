(** Supervised worker processes: per-app analysis in expendable
    children.

    In-process crash isolation ({!Parallel.map_result}) catches
    exceptions; it cannot catch a SIGSEGV, an OOM-kill, or a wedged
    analysis. A supervised pool runs each app in a child process
    (fork+exec of [Sys.executable_name] with an environment marker) and
    talks to it over pipes with checksummed Marshal framing. A child
    that exits, dies on a signal, garbles a frame or misses the
    heartbeat is killed, reaped and replaced, and the request retries
    once on a fresh worker; an app that crashes two consecutive workers
    is quarantined as a [Fault.Internal] entry. One app's death can
    therefore never cost more than its own entry.

    Every binary that hosts supervised workers must call
    {!worker_check} as its very first statement: in a marked child it
    runs the worker loop and never returns. *)

val env_var : string
(** The environment marker ([NADROID_SUPERVISED_WORKER]) distinguishing
    worker children from normal invocations. *)

val worker_check : unit -> unit
(** In a worker child (marker set): serve framed analysis requests on
    stdin/stdout until EOF, then exit — never returns. In a normal
    process: no-op. Must run before any CLI parsing. *)

val is_worker : unit -> bool

type t
(** A supervisor owning a fixed set of worker processes. Checkout,
    request and replacement are safe from any domain. *)

val create : ?jobs:int -> ?heartbeat:float -> unit -> t
(** Spawn [jobs] workers (default {!Parallel.default_jobs}, min 1).
    [heartbeat] bounds how long one request may stay unanswered before
    the worker is declared wedged and killed; omitted = unbounded. *)

val jobs : t -> int

val analyze :
  t ->
  config:Pipeline.config ->
  ?cache:string * int option ->
  file:string ->
  string ->
  (Cache.entry, Fault.t) result
(** [analyze t ~config ?cache ~file source] runs one app in a worker
    (blocking the calling domain, not the pool). [cache] is the worker's
    cache directory and optional byte cap. Structured faults raised by
    the analysis come back as [Error]; a worker crash retries once on a
    fresh worker and then quarantines the app. *)

val shutdown : t -> unit
(** Wait for checked-out workers to come home, then close their request
    pipes (EOF = clean worker exit) and reap them. Idempotent; later
    {!analyze} calls return a shutdown fault. *)

(**/**)

val magic : string

val signal_name : int -> string

val status_string : Unix.process_status -> string
