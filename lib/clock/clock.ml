(* Monotonic time for deadlines, wall time for humans.

   OCaml 5.1's [Unix] exposes no [clock_gettime], so the monotonic
   source is the bechamel CLOCK_MONOTONIC stub (nanoseconds as int64).
   The float conversion keeps sub-microsecond precision for uptimes
   beyond a century — far past any daemon's lifetime. *)

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Test-only wall skew: [wall] is never on a deadline path, so a racy
   read of the skew is harmless; [Atomic] just keeps the read/write
   well-defined across domains. *)
let skew = Atomic.make 0.0

let wall () = Unix.gettimeofday () +. Atomic.get skew

let rec step_wall d =
  let s = Atomic.get skew in
  if not (Atomic.compare_and_set skew s (s +. d)) then step_wall d
