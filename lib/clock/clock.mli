(** Time sources for the analysis runtime.

    Two clocks, deliberately kept apart:

    - {!now} is monotonic (CLOCK_MONOTONIC). Every deadline is computed
      and checked against it, and every duration is measured with it. A
      long-lived process ([nadroid serve]) rides out NTP slews, manual
      resets and suspend/resume without deadlines firing early or
      starving: a wall-clock step must never cancel — or immortalise —
      an in-flight analysis.
    - {!wall} is the wall clock, for human-facing timestamps (log lines)
      only. It is skewable in tests precisely to prove nothing on the
      deadline path consults it. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary epoch. Comparable across
    domains of one process; meaningless across processes or reboots.
    Use for all deadline arithmetic and elapsed-time measurement. *)

val wall : unit -> float
(** Wall-clock seconds since the Unix epoch, plus any test skew
    installed by {!step_wall}. Human-facing timestamps only — never
    derive or check a deadline against this. *)

val step_wall : float -> unit
(** [step_wall d] shifts every subsequent {!wall} reading by [d] more
    seconds, simulating an operator/NTP clock step. Test hook: a
    deadline derived before a step must still expire exactly once. *)
