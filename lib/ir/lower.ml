(* Lowering of resolved MiniAndroid methods to the CFG-based IR.

   Notable points:
   - [&&] / [||] are short-circuiting and lowered to control flow, both in
     statement conditions and in value contexts;
   - conditional branches record non-null facts ({!Cfg.nonnull_fact}) for
     conditions of the shape [x != null] / [this.f != null], which the
     If-Guard filter consumes;
   - allocations of anonymous classes set the implicit [outer] field to
     the current [this] immediately after the [new];
   - a [putfield] whose right-hand side is the [null] literal is tagged
     [Src_null]: these are the {e free} operations of the paper. *)

open Nadroid_lang

type st = {
  sema : Sema.t;
  mref : Instr.mref;
  mutable n_vars : int;
  mutable n_instrs : int;
  mutable n_allocs : int;
  mutable n_blocks : int;
  mutable blocks : Cfg.block list;  (* all blocks, reverse creation order *)
  mutable cur : Cfg.block;  (* [b_instrs] held in reverse emission order
                               until [lower_method] finalizes *)
  mutable terminated : bool;  (* whether [cur] already has a real terminator *)
  locals : (string, Instr.var) Hashtbl.t;  (* unique local name -> slot *)
}

let sentinel_term = Cfg.Goto (-1)

let fresh_var st name =
  let v = { Instr.v_id = st.n_vars; v_name = name } in
  st.n_vars <- st.n_vars + 1;
  v

let new_block st =
  let blk = { Cfg.b_id = st.n_blocks; b_instrs = []; b_term = sentinel_term } in
  st.n_blocks <- st.n_blocks + 1;
  st.blocks <- blk :: st.blocks;
  blk

let switch_to st blk =
  st.cur <- blk;
  st.terminated <- false

(* Prepend, not append: an append per instruction re-copies the block's
   list and turns a straight-line body into O(n^2) lowering. Blocks are
   reversed once at the end of [lower_method]. *)
let emit st ~loc kind =
  if not st.terminated then begin
    let ins = { Instr.i = kind; loc; id = st.n_instrs } in
    st.n_instrs <- st.n_instrs + 1;
    st.cur.Cfg.b_instrs <- ins :: st.cur.Cfg.b_instrs
  end

let set_term st term =
  if not st.terminated then begin
    st.cur.Cfg.b_term <- term;
    st.terminated <- true
  end

let local st name =
  match Hashtbl.find_opt st.locals name with
  | Some v -> v
  | None ->
      (* locals are pre-registered; reaching here is a lowering bug *)
      invalid_arg (Printf.sprintf "Lower: unbound local %s in %s.%s" name st.mref.Instr.mr_class
           st.mref.Instr.mr_name)

let this_var st = local st "this"

(* Does this expression denote the [this] of the enclosing component,
   possibly through a chain of implicit [outer] hops? Used to decide
   whether a null-check condition yields a field fact. *)
let rec is_this_or_outer (e : Sema.rexpr) =
  match e.Sema.re with
  | Sema.Rthis -> true
  | Sema.Rget (base, fr) -> String.equal fr.Sema.fr_name "outer" && is_this_or_outer base
  | Sema.Rnull | Sema.Rint _ | Sema.Rbool _ | Sema.Rstr _ | Sema.Rlocal _ | Sema.Rget_static _
  | Sema.Rcall _ | Sema.Rintrinsic _ | Sema.Rnew _ | Sema.Runop _ | Sema.Rbinop _ ->
      false

let rec lower_expr st (e : Sema.rexpr) : Instr.var =
  let loc = e.Sema.rloc in
  match e.Sema.re with
  | Sema.Rnull ->
      let v = fresh_var st "$null" in
      emit st ~loc (Instr.Const (v, Instr.Cnull));
      v
  | Sema.Rthis -> this_var st
  | Sema.Rint n ->
      let v = fresh_var st "$c" in
      emit st ~loc (Instr.Const (v, Instr.Cint n));
      v
  | Sema.Rbool b ->
      let v = fresh_var st "$c" in
      emit st ~loc (Instr.Const (v, Instr.Cbool b));
      v
  | Sema.Rstr s ->
      let v = fresh_var st "$c" in
      emit st ~loc (Instr.Const (v, Instr.Cstr s));
      v
  | Sema.Rlocal x -> local st x
  | Sema.Rget (r, fr) ->
      let o = lower_expr st r in
      let v = fresh_var st ("$" ^ fr.Sema.fr_name) in
      emit st ~loc (Instr.Getfield (v, o, fr));
      v
  | Sema.Rget_static fr ->
      let v = fresh_var st ("$" ^ fr.Sema.fr_name) in
      emit st ~loc (Instr.Getstatic (v, fr));
      v
  | Sema.Rcall (recv, ms, args) ->
      let r = lower_expr st recv in
      let argvs = List.map (lower_expr st) args in
      let dst =
        match ms.Sema.ms_ret with
        | Ast.Tvoid -> None
        | Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tclass _ -> Some (fresh_var st "$ret")
      in
      emit st ~loc (Instr.Call (dst, r, ms, argvs));
      (match dst with Some d -> d | None -> fresh_var st "$void")
  | Sema.Rintrinsic (name, args) ->
      let argvs = List.map (lower_expr st) args in
      let dst =
        match Builtins.intrinsic_sig name with
        | Some (_, Ast.Tvoid) | None -> None
        | Some (_, (Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tclass _)) ->
            Some (fresh_var st "$ret")
      in
      emit st ~loc (Instr.Intrinsic (dst, name, argvs));
      (match dst with Some d -> d | None -> fresh_var st "$void")
  | Sema.Rnew (cname, init, args) ->
      let argvs = List.map (lower_expr st) args in
      let site =
        { Instr.as_method = st.mref; as_idx = st.n_allocs; as_class = cname; as_loc = loc }
      in
      st.n_allocs <- st.n_allocs + 1;
      let dst = fresh_var st ("$new_" ^ cname) in
      emit st ~loc (Instr.New (dst, site, init, argvs));
      let cls = Sema.get_class st.sema cname in
      if cls.Sema.rc_anon then begin
        match Sema.lookup_field st.sema cname "outer" with
        | Some outer_fr ->
            emit st ~loc (Instr.Putfield (dst, outer_fr, this_var st, Instr.Src_var))
        | None -> invalid_arg ("Lower: anonymous class without outer field: " ^ cname)
      end;
      dst
  | Sema.Runop (op, a) ->
      let av = lower_expr st a in
      let v = fresh_var st "$u" in
      emit st ~loc (Instr.Unop (v, op, av));
      v
  | Sema.Rbinop ((Ast.And | Ast.Or), _, _) ->
      (* short-circuit in value context: materialise via control flow *)
      let res = fresh_var st "$bool" in
      let bt = new_block st and bf = new_block st and bj = new_block st in
      lower_cond st e bt.Cfg.b_id bf.Cfg.b_id;
      switch_to st bt;
      emit st ~loc (Instr.Const (res, Instr.Cbool true));
      set_term st (Cfg.Goto bj.Cfg.b_id);
      switch_to st bf;
      emit st ~loc (Instr.Const (res, Instr.Cbool false));
      set_term st (Cfg.Goto bj.Cfg.b_id);
      switch_to st bj;
      res
  | Sema.Rbinop (op, a, b) ->
      let av = lower_expr st a in
      let bv = lower_expr st b in
      let v = fresh_var st "$b" in
      emit st ~loc (Instr.Binop (v, op, av, bv));
      v

(* Lower a boolean expression as a branch to [on_true] / [on_false],
   recording non-null facts on the edges. *)
and lower_cond st (e : Sema.rexpr) on_true on_false =
  let loc = e.Sema.rloc in
  match e.Sema.re with
  | Sema.Rbinop (Ast.And, a, b) ->
      let mid = new_block st in
      lower_cond st a mid.Cfg.b_id on_false;
      switch_to st mid;
      lower_cond st b on_true on_false
  | Sema.Rbinop (Ast.Or, a, b) ->
      let mid = new_block st in
      lower_cond st a on_true mid.Cfg.b_id;
      switch_to st mid;
      lower_cond st b on_true on_false
  | Sema.Runop (Ast.Not, a) -> lower_cond st a on_false on_true
  | Sema.Rbinop (((Ast.Eq | Ast.Ne) as op), a, b) ->
      (* null-comparison facts *)
      let facts_of (x : Sema.rexpr) (xv : Instr.var) =
        let base_facts = [ Cfg.Nn_var xv ] in
        match x.Sema.re with
        | Sema.Rget (base, fr) when is_this_or_outer base -> Cfg.Nn_field fr :: base_facts
        | Sema.Rget_static fr -> Cfg.Nn_field fr :: base_facts
        | Sema.Rnull | Sema.Rthis | Sema.Rint _ | Sema.Rbool _ | Sema.Rstr _ | Sema.Rlocal _
        | Sema.Rget _ | Sema.Rcall _ | Sema.Rintrinsic _ | Sema.Rnew _ | Sema.Runop _
        | Sema.Rbinop _ ->
            base_facts
      in
      let is_null (x : Sema.rexpr) = match x.Sema.re with Sema.Rnull -> true | _ -> false in
      let av = lower_expr st a in
      let bv = lower_expr st b in
      let cond = fresh_var st "$cmp" in
      emit st ~loc (Instr.Binop (cond, op, av, bv));
      let nonnull_facts =
        if is_null b && not (is_null a) then facts_of a av
        else if is_null a && not (is_null b) then facts_of b bv
        else []
      in
      let t_facts, f_facts =
        match op with
        | Ast.Ne -> (nonnull_facts, [])
        | Ast.Eq -> ([], nonnull_facts)
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge
        | Ast.And | Ast.Or ->
            ([], [])
      in
      set_term st (Cfg.If { cond; t = on_true; f = on_false; t_facts; f_facts })
  | Sema.Rnull | Sema.Rthis | Sema.Rint _ | Sema.Rbool _ | Sema.Rstr _ | Sema.Rlocal _
  | Sema.Rget _ | Sema.Rget_static _ | Sema.Rcall _ | Sema.Rintrinsic _ | Sema.Rnew _
  | Sema.Runop _ | Sema.Rbinop _ ->
      let v = lower_expr st e in
      set_term st (Cfg.If { cond = v; t = on_true; f = on_false; t_facts = []; f_facts = [] })

let rec lower_stmt st (s : Sema.rstmt) =
  let loc = s.Sema.rsloc in
  match s.Sema.rs with
  | Sema.Rdecl (_, x, init) -> (
      let v = fresh_var st x in
      Hashtbl.replace st.locals x v;
      match init with
      | None -> ()
      | Some ({ Sema.re = Sema.Rnull; _ } as e) ->
          ignore e;
          emit st ~loc (Instr.Const (v, Instr.Cnull))
      | Some e ->
          let src = lower_expr st e in
          emit st ~loc (Instr.Move (v, src)))
  | Sema.Rset_local (x, { Sema.re = Sema.Rnull; _ }) ->
      emit st ~loc (Instr.Const (local st x, Instr.Cnull))
  | Sema.Rset_local (x, e) ->
      let src = lower_expr st e in
      emit st ~loc (Instr.Move (local st x, src))
  | Sema.Rset_field (recv, fr, rhs) -> (
      let o = lower_expr st recv in
      match rhs.Sema.re with
      | Sema.Rnull ->
          let nv = fresh_var st "$null" in
          emit st ~loc (Instr.Const (nv, Instr.Cnull));
          emit st ~loc (Instr.Putfield (o, fr, nv, Instr.Src_null))
      | Sema.Rthis | Sema.Rint _ | Sema.Rbool _ | Sema.Rstr _ | Sema.Rlocal _ | Sema.Rget _
      | Sema.Rget_static _ | Sema.Rcall _ | Sema.Rintrinsic _ | Sema.Rnew _ | Sema.Runop _
      | Sema.Rbinop _ ->
          let src = lower_expr st rhs in
          emit st ~loc (Instr.Putfield (o, fr, src, Instr.Src_var)))
  | Sema.Rset_static (fr, rhs) -> (
      match rhs.Sema.re with
      | Sema.Rnull ->
          let nv = fresh_var st "$null" in
          emit st ~loc (Instr.Const (nv, Instr.Cnull));
          emit st ~loc (Instr.Putstatic (fr, nv, Instr.Src_null))
      | Sema.Rthis | Sema.Rint _ | Sema.Rbool _ | Sema.Rstr _ | Sema.Rlocal _ | Sema.Rget _
      | Sema.Rget_static _ | Sema.Rcall _ | Sema.Rintrinsic _ | Sema.Rnew _ | Sema.Runop _
      | Sema.Rbinop _ ->
          let src = lower_expr st rhs in
          emit st ~loc (Instr.Putstatic (fr, src, Instr.Src_var)))
  | Sema.Rexpr e -> ignore (lower_expr st e)
  | Sema.Rif (c, a, b) ->
      let bt = new_block st and bf = new_block st and bj = new_block st in
      lower_cond st c bt.Cfg.b_id bf.Cfg.b_id;
      switch_to st bt;
      lower_block st a;
      set_term st (Cfg.Goto bj.Cfg.b_id);
      switch_to st bf;
      lower_block st b;
      set_term st (Cfg.Goto bj.Cfg.b_id);
      switch_to st bj
  | Sema.Rwhile (c, body) ->
      let bh = new_block st and bb = new_block st and bx = new_block st in
      set_term st (Cfg.Goto bh.Cfg.b_id);
      switch_to st bh;
      lower_cond st c bb.Cfg.b_id bx.Cfg.b_id;
      switch_to st bb;
      lower_block st body;
      set_term st (Cfg.Goto bh.Cfg.b_id);
      switch_to st bx
  | Sema.Rreturn e ->
      let v = Option.map (lower_expr st) e in
      set_term st (Cfg.Ret v);
      switch_to st (new_block st)
      (* dead code after return lands in an unreachable block *)
  | Sema.Rsync (l, body) ->
      let v = lower_expr st l in
      emit st ~loc (Instr.Monitor_enter v);
      lower_block st body;
      emit st ~loc (Instr.Monitor_exit v)
  | Sema.Rblock b -> lower_block st b

and lower_block st b = List.iter (lower_stmt st) b

let lower_method (sema : Sema.t) (m : Sema.rmeth) : Cfg.body =
  let mref = { Instr.mr_class = m.Sema.rm_class; mr_name = m.Sema.rm_name } in
  let entry = { Cfg.b_id = 0; b_instrs = []; b_term = sentinel_term } in
  let st =
    {
      sema;
      mref;
      n_vars = 0;
      n_instrs = 0;
      n_allocs = 0;
      n_blocks = 1;
      blocks = [ entry ];
      cur = entry;
      terminated = false;
      locals = Hashtbl.create 16;
    }
  in
  let this = fresh_var st "this" in
  Hashtbl.replace st.locals "this" this;
  let params =
    this
    :: List.map
         (fun (_, name) ->
           let v = fresh_var st name in
           Hashtbl.replace st.locals name v;
           v)
         m.Sema.rm_params
  in
  lower_block st m.Sema.rm_body;
  set_term st (Cfg.Ret None);
  let blocks = Array.of_list (List.rev st.blocks) in
  (* finalize: restore emission order (instrs were prepended), and any
     block still carrying the sentinel becomes a return *)
  Array.iter
    (fun blk ->
      blk.Cfg.b_instrs <- List.rev blk.Cfg.b_instrs;
      if blk.Cfg.b_term = sentinel_term then blk.Cfg.b_term <- Cfg.Ret None)
    blocks;
  Array.iteri (fun i blk -> assert (blk.Cfg.b_id = i)) blocks;
  {
    Cfg.mref;
    params;
    ret_ty = m.Sema.rm_ret;
    blocks;
    n_vars = st.n_vars;
    loc = m.Sema.rm_loc;
  }
