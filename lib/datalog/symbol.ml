(* String interning: Datalog constants are small integers; this table maps
   them back and forth to human-readable names.

   Analyses encode their domains (methods, fields, allocation sites,
   abstract threads...) as interned strings, mirroring how Chord maps
   program entities into bddbddb domains.

   Concurrency: a warm serve daemon interns from several worker domains
   at once, so writes ([intern]) are mutex-guarded — including the
   [by_id] resize — while [name]/[size] reads stay lock-free on the hot
   path. Publication order makes the lock-free read safe: the slot and
   (on growth) the new array are written {e before} [next] is bumped
   (an [Atomic] release), so any reader that learned an id through a
   synchronised hand-off (future await, domain join, a mutex) observes
   the slot it indexes. A reader holding a stale [by_id] (resized after
   it was read) falls back to a locked read instead of faulting. *)

type t = {
  by_name : (string, int) Hashtbl.t;  (* guarded by [m], reads included *)
  mutable by_id : string array;  (* grow-only; republished under [m] *)
  next : int Atomic.t;
  m : Mutex.t;
}

let create () =
  {
    by_name = Hashtbl.create 256;
    by_id = Array.make 256 "";
    next = Atomic.make 0;
    m = Mutex.create ();
  }

let intern t name =
  Mutex.lock t.m;
  let id =
    match Hashtbl.find_opt t.by_name name with
    | Some id -> id
    | None ->
        let id = Atomic.get t.next in
        if id >= Array.length t.by_id then begin
          let bigger = Array.make (2 * Array.length t.by_id) "" in
          Array.blit t.by_id 0 bigger 0 (Array.length t.by_id);
          t.by_id <- bigger
        end;
        t.by_id.(id) <- name;
        Hashtbl.add t.by_name name id;
        (* publish last: a reader that sees [next > id] sees the slot *)
        Atomic.set t.next (id + 1);
        id
  in
  Mutex.unlock t.m;
  id

let find_opt t name =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.by_name name in
  Mutex.unlock t.m;
  r

let name t id =
  if id < 0 || id >= Atomic.get t.next then
    invalid_arg (Printf.sprintf "Symbol.name: bad id %d" id);
  let arr = t.by_id in
  if id < Array.length arr then arr.(id)
  else begin
    (* raced with a resize: re-read the array under the lock *)
    Mutex.lock t.m;
    let v = t.by_id.(id) in
    Mutex.unlock t.m;
    v
  end

let size t = Atomic.get t.next
