(* A Datalog relation: a mutable set of integer tuples of fixed arity,
   with on-demand hash indexes over column subsets for joins. *)

module TupleSet = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b = a = b
  let hash (a : int array) = Hashtbl.hash a
end)

(* A cardinality ceiling, shared across every relation it is passed to so
   the bound covers a whole database, not one relation. The datalog layer
   has no dependency on the analysis fault taxonomy, so exhaustion raises
   a local exception that clients translate. *)
type budget = { mutable b_used : int; b_limit : int }

exception Out_of_budget

let budget ~limit = { b_used = 0; b_limit = limit }

let budget_used b = b.b_used

type t = {
  name : string;
  arity : int;
  tuples : unit TupleSet.t;  (* membership only; never iterated *)
  mutable order : int array array;  (* tuples in insertion order; grow-only *)
  mutable count : int;  (* live prefix of [order] *)
  budget : budget option;
  mutable indexes : (int list * (int list, int array list ref) Hashtbl.t) list;
      (* bound-column positions -> (projection of tuple on those columns -> tuples) *)
}

let create ?budget ~name ~arity () =
  {
    name;
    arity;
    tuples = TupleSet.create 64;
    order = Array.make 64 [||];
    count = 0;
    budget;
    indexes = [];
  }

let name t = t.name

let arity t = t.arity

let mem t tup = TupleSet.mem t.tuples tup

let cardinal t = TupleSet.length t.tuples

let check_arity t tup =
  if Array.length tup <> t.arity then
    invalid_arg
      (Printf.sprintf "relation %s has arity %d, got a tuple of width %d" t.name t.arity
         (Array.length tup))

let project tup cols = List.map (fun c -> tup.(c)) cols

(* Adding a fact maintains existing indexes in place: the new tuple is
   appended to its bucket in every live index. Dropping the indexes here
   instead (the previous behaviour) made a semi-naive iteration that
   derives n facts rebuild O(n) full indexes — quadratic in the relation
   size where an insert should be O(#indexes). *)
let add t tup =
  check_arity t tup;
  if TupleSet.mem t.tuples tup then false
  else begin
    (match t.budget with
    | None -> ()
    | Some b ->
        b.b_used <- b.b_used + 1;
        if b.b_used > b.b_limit then raise Out_of_budget);
    TupleSet.replace t.tuples tup ();
    if t.count = Array.length t.order then begin
      let bigger = Array.make (2 * Array.length t.order) [||] in
      Array.blit t.order 0 bigger 0 t.count;
      t.order <- bigger
    end;
    t.order.(t.count) <- tup;
    t.count <- t.count + 1;
    List.iter
      (fun (cols, idx) ->
        let k = project tup cols in
        match Hashtbl.find_opt idx k with
        | Some l -> l := tup :: !l
        | None -> Hashtbl.add idx k (ref [ tup ]))
      t.indexes;
    true
  end

(* Iteration runs over the insertion-order array, NOT the hash table:
   hash order depends on the interned id values inside the tuples, and
   anything downstream of iteration (query results, derivation order,
   warning order) must stay byte-identical whether an engine's symbol
   table is private or shared across a whole batch (where id assignment
   depends on scheduling). Insertion order is a pure function of the
   fact/rule evaluation sequence, so it is id-independent. *)
let iter f t =
  for i = 0 to t.count - 1 do
    f (Array.unsafe_get t.order i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.count - 1 do
    acc := f !acc (Array.unsafe_get t.order i)
  done;
  !acc

let to_list t = fold (fun acc tup -> tup :: acc) [] t

let index t cols =
  match List.assoc_opt cols t.indexes with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create (max 16 (cardinal t)) in
      iter
        (fun tup ->
          let k = project tup cols in
          match Hashtbl.find_opt idx k with
          | Some l -> l := tup :: !l
          | None -> Hashtbl.add idx k (ref [ tup ]))
        t;
      t.indexes <- (cols, idx) :: t.indexes;
      idx

let n_indexes t = List.length t.indexes

(* All tuples whose projection on [cols] equals [key]. *)
let lookup t ~cols ~key =
  match cols with
  | [] -> to_list t
  | _ -> (
      let idx = index t cols in
      match Hashtbl.find_opt idx key with Some l -> !l | None -> [])

let pp sym ppf t =
  Fmt.pf ppf "%s/%d {@\n" t.name t.arity;
  iter
    (fun tup ->
      Fmt.pf ppf "  (%a)@\n"
        Fmt.(list ~sep:(any ", ") string)
        (Array.to_list (Array.map (Symbol.name sym) tup)))
    t;
  Fmt.pf ppf "}"
