(** A Datalog relation: a mutable set of integer tuples of fixed arity,
    with on-demand hash indexes over column subsets for joins. *)

type t

type budget
(** A tuple-cardinality ceiling. One budget value may be shared by many
    relations, in which case the ceiling bounds their combined growth —
    a database-wide memory bound. *)

exception Out_of_budget
(** Raised by {!add} when a budgeted insert would exceed its ceiling. *)

val budget : limit:int -> budget

val budget_used : budget -> int
(** Tuples charged against the budget so far. *)

val create : ?budget:budget -> name:string -> arity:int -> unit -> t

val name : t -> string

val arity : t -> int

val mem : t -> int array -> bool

val cardinal : t -> int

val add : t -> int array -> bool
(** [add t tup] returns [true] when the tuple is new. Existing column
    indexes are maintained in place — an insert is O(#indexes), never a
    rebuild.
    @raise Invalid_argument on arity mismatch.
    @raise Out_of_budget when the relation's budget is exhausted. *)

val n_indexes : t -> int
(** Number of live column indexes (for tests). *)

val iter : (int array -> unit) -> t -> unit
(** In insertion order. Iteration (and everything derived from it:
    {!fold}, {!to_list}, {!lookup} bucket order) is deliberately
    independent of the interned id {e values} inside the tuples, so
    query results are byte-identical whether the engine's symbol table
    is private or shared across a batch. *)

val fold : ('a -> int array -> 'a) -> 'a -> t -> 'a
(** In insertion order. *)

val to_list : t -> int array list
(** In reverse insertion order. *)

val lookup : t -> cols:int list -> key:int list -> int array list
(** All tuples whose projection on [cols] equals [key]; builds and
    caches a hash index on [cols]. [cols = []] returns everything. *)

val pp : Symbol.t -> t Fmt.t
