(** A Datalog relation: a mutable set of integer tuples of fixed arity,
    with on-demand hash indexes over column subsets for joins. *)

type t

val create : name:string -> arity:int -> t

val name : t -> string

val arity : t -> int

val mem : t -> int array -> bool

val cardinal : t -> int

val add : t -> int array -> bool
(** [add t tup] returns [true] when the tuple is new. Existing column
    indexes are maintained in place — an insert is O(#indexes), never a
    rebuild.
    @raise Invalid_argument on arity mismatch. *)

val n_indexes : t -> int
(** Number of live column indexes (for tests). *)

val iter : (int array -> unit) -> t -> unit

val fold : ('a -> int array -> 'a) -> 'a -> t -> 'a

val to_list : t -> int array list

val lookup : t -> cols:int list -> key:int list -> int array list
(** All tuples whose projection on [cols] equals [key]; builds and
    caches a hash index on [cols]. [cols = []] returns everything. *)

val pp : Symbol.t -> t Fmt.t
