(** Semi-naive Datalog evaluation with stratified negation — the fixpoint
    substrate standing in for Chord's bddbddb solver.

    Usage: {!create} an engine, load base facts with {!fact}, state rules
    with {!add_rule}, then query with {!mem} / {!query} / {!cardinal}
    (which {!solve} lazily). Adding facts or rules after a solve
    invalidates it; the next query re-solves.

    Rules must be range-restricted (every head variable and every
    variable under negation bound by a positive body atom) and the
    program must be stratifiable; violations raise [Invalid_argument]. *)

type term = Var of string | Const of int

type atom = { pred : string; args : term list }

type literal = Pos of atom | Neg of atom

type rule = { head : atom; body : literal list }

type t

val create : ?symbols:Symbol.t -> ?max_tuples:int -> unit -> t
(** [symbols] makes the engine intern into an existing (shared,
    thread-safe) table instead of a private one — one hash-consed
    domain per batch of engines. Sharing never changes any engine
    output: relation iteration is insertion-ordered, independent of the
    id values a shared table happens to assign.

    [max_tuples] caps the combined cardinality of all persistent
    relations (one shared {!Relation.budget}); transient semi-naive
    deltas are exempt, as they only mirror already-charged tuples.
    {!Relation.add} — hence {!fact}/{!facts}/{!solve} — raises
    {!Relation.Out_of_budget} past the cap. *)

val symbols : t -> Symbol.t

val const : t -> string -> term
(** Intern a name as a constant term. *)

val relation : t -> string -> arity:int -> Relation.t
(** Declare (or fetch) a relation.
    @raise Invalid_argument when redeclared at a different arity. *)

val fact : t -> string -> string list -> unit
(** [fact t pred args] adds a base (EDB) tuple, interning the names. *)

val facts : t -> string -> string list list -> unit
(** [facts t pred tuples] bulk-loads EDB tuples: the relation is looked
    up once for the whole batch. Equivalent to [List.iter (fact t pred)]. *)

val facts_ids : t -> string -> int array list -> unit
(** [facts_ids t pred tuples] bulk-loads EDB tuples whose columns are
    already interned symbol ids (see {!symbols}); each array becomes the
    stored tuple. Equivalent to the {!facts} of the corresponding names,
    without the per-tuple string traffic. *)

val atom : string -> term list -> atom

val add_rule : t -> atom -> literal list -> unit
(** [add_rule t head body].
    @raise Invalid_argument on range-restriction violations. *)

val solve : t -> unit
(** Stratify and run semi-naive evaluation to fixpoint. Idempotent.
    @raise Invalid_argument when the program is not stratifiable. *)

val mem : t -> string -> string list -> bool

val query : t -> string -> string array list
(** All tuples of a predicate, with names restored. *)

val cardinal : t -> string -> int
