(* Semi-naive Datalog evaluation with stratified negation.

   This is the fixpoint substrate standing in for Chord's bddbddb solver:
   analyses declare relations, load base facts (EDB), state rules, and
   call {!solve}. Evaluation is stratified (negated predicates must be
   fully computed in an earlier stratum) and semi-naive (each iteration
   joins against the delta of the previous one).

   Terms are integers produced by {!Symbol} interning. *)

type term = Var of string | Const of int

type atom = { pred : string; args : term list }

type literal = Pos of atom | Neg of atom

type rule = { head : atom; body : literal list }

type t = {
  sym : Symbol.t;
  relations : (string, Relation.t) Hashtbl.t;
  budget : Relation.budget option;
      (* shared by all persistent relations: one database-wide ceiling *)
  mutable rules : rule list;
  mutable solved : bool;
}

(* [symbols] lets a batch of engines share one hash-consed interning
   table (it is thread-safe): the common strings — field keys, framework
   entity names — are interned once per batch instead of once per app.
   Safe for determinism because no engine output depends on id values:
   relations iterate in insertion order (see {!Relation.iter}) and
   {!query} restores names. *)
let create ?symbols ?max_tuples () =
  {
    sym = (match symbols with Some s -> s | None -> Symbol.create ());
    relations = Hashtbl.create 32;
    budget = Option.map (fun limit -> Relation.budget ~limit) max_tuples;
    rules = [];
    solved = false;
  }

let symbols t = t.sym

let const t name = Const (Symbol.intern t.sym name)

let relation t name ~arity =
  match Hashtbl.find_opt t.relations name with
  | Some r ->
      if Relation.arity r <> arity then
        invalid_arg (Printf.sprintf "relation %s redeclared with arity %d (was %d)" name arity (Relation.arity r));
      r
  | None ->
      let r = Relation.create ?budget:t.budget ~name ~arity () in
      Hashtbl.add t.relations name r;
      r

let fact t name args =
  let r = relation t name ~arity:(List.length args) in
  ignore (Relation.add r (Array.of_list (List.map (Symbol.intern t.sym) args)));
  t.solved <- false

(* Bulk EDB loading: one relation lookup for the whole batch. *)
let facts t name tuples =
  match tuples with
  | [] -> ()
  | first :: _ ->
      let r = relation t name ~arity:(List.length first) in
      List.iter
        (fun args ->
          ignore (Relation.add r (Array.of_list (List.map (Symbol.intern t.sym) args))))
        tuples;
      t.solved <- false

(* Id-level bulk loading for clients that already interned their
   columns (e.g. a join staging thousands of accesses): skips the
   per-tuple string traffic. Each array is consumed as the stored tuple. *)
let facts_ids t name tuples =
  match tuples with
  | [] -> ()
  | first :: _ ->
      let r = relation t name ~arity:(Array.length first) in
      List.iter (fun tup -> ignore (Relation.add r tup)) tuples;
      t.solved <- false

let atom pred args = { pred; args }

let add_rule t head body =
  (* declare relations eagerly so arity errors surface at rule creation *)
  ignore (relation t head.pred ~arity:(List.length head.args));
  List.iter
    (fun lit ->
      let a = match lit with Pos a | Neg a -> a in
      ignore (relation t a.pred ~arity:(List.length a.args)))
    body;
  (* range restriction: every head variable must occur in a positive body atom *)
  let positive_vars =
    List.concat_map
      (function
        | Pos a -> List.filter_map (function Var v -> Some v | Const _ -> None) a.args
        | Neg _ -> [])
      body
  in
  List.iter
    (function
      | Var v when not (List.mem v positive_vars) ->
          invalid_arg
            (Printf.sprintf "rule for %s: head variable %s not bound by a positive body atom"
               head.pred v)
      | Var _ | Const _ -> ())
    head.args;
  (* same restriction for variables under negation *)
  List.iter
    (function
      | Neg a ->
          List.iter
            (function
              | Var v when not (List.mem v positive_vars) ->
                  invalid_arg
                    (Printf.sprintf
                       "rule for %s: variable %s under negation not bound positively" head.pred v)
              | Var _ | Const _ -> ())
            a.args
      | Pos _ -> ())
    body;
  t.rules <- { head; body } :: t.rules;
  t.solved <- false

(* -- stratification ----------------------------------------------------- *)

module SMap = Map.Make (String)

(* Strata are computed by a longest-path style fixpoint over the predicate
   dependency graph: an edge P -> Q (Q depends on P) forces
   stratum(Q) >= stratum(P), strictly greater when Q uses [not P].
   A negative cycle means the program is not stratifiable. *)
let stratify t : rule list list =
  let preds = Hashtbl.fold (fun name _ acc -> name :: acc) t.relations [] in
  let stratum = ref (List.fold_left (fun m p -> SMap.add p 0 m) SMap.empty preds) in
  let n_preds = List.length preds in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > n_preds + 1 then invalid_arg "Datalog program is not stratifiable (negative cycle)";
    List.iter
      (fun rule ->
        let head_s = SMap.find rule.head.pred !stratum in
        List.iter
          (fun lit ->
            let dep, strict =
              match lit with Pos a -> (a.pred, false) | Neg a -> (a.pred, true)
            in
            let dep_s = SMap.find dep !stratum in
            let required = if strict then dep_s + 1 else dep_s in
            if head_s < required then begin
              stratum := SMap.add rule.head.pred required !stratum;
              changed := true
            end)
          rule.body)
      t.rules
  done;
  let max_stratum = SMap.fold (fun _ s acc -> max s acc) !stratum 0 in
  List.init (max_stratum + 1) (fun i ->
      List.filter (fun r -> SMap.find r.head.pred !stratum = i) t.rules)

(* -- rule evaluation ----------------------------------------------------- *)

(* A binding environment during body evaluation. *)
type env = int SMap.t

let match_tuple (env : env) (args : term list) (tup : int array) : env option =
  let rec go env i = function
    | [] -> Some env
    | Const c :: rest -> if tup.(i) = c then go env (i + 1) rest else None
    | Var v :: rest -> (
        match SMap.find_opt v env with
        | Some bound -> if tup.(i) = bound then go env (i + 1) rest else None
        | None -> go (SMap.add v tup.(i) env) (i + 1) rest)
  in
  go env 0 args

(* Columns of [args] already determined by [env] (or constant), with the
   key they must equal: used to exploit relation indexes. *)
let bound_cols (env : env) (args : term list) : int list * int list =
  let cols, keys =
    List.fold_left
      (fun (cols, keys) (i, arg) ->
        match arg with
        | Const c -> (i :: cols, c :: keys)
        | Var v -> (
            match SMap.find_opt v env with
            | Some c -> (i :: cols, c :: keys)
            | None -> (cols, keys)))
      ([], [])
      (List.mapi (fun i a -> (i, a)) args)
  in
  (List.rev cols, List.rev keys)

let eval_atom t (env : env) (a : atom) ~(delta : Relation.t option) : env list =
  let rel = match delta with Some d -> d | None -> Hashtbl.find t.relations a.pred in
  let cols, key = bound_cols env a.args in
  let candidates = Relation.lookup rel ~cols ~key in
  List.filter_map (fun tup -> match_tuple env a.args tup) candidates

let term_value (env : env) = function
  | Const c -> c
  | Var v -> (
      match SMap.find_opt v env with
      | Some c -> c
      | None -> invalid_arg ("unbound variable in head or negation: " ^ v))

(* Evaluate the body with at most one atom read from a delta relation
   (semi-naive): [delta_at] is the index of the positive atom to source
   from [deltas] instead of the full relation. *)
let eval_rule t (rule : rule) ~(deltas : (string, Relation.t) Hashtbl.t) ~(delta_at : int option) :
    int array list =
  let rec go env i lits acc =
    match lits with
    | [] ->
        let tup = Array.of_list (List.map (term_value env) rule.head.args) in
        tup :: acc
    | Pos a :: rest ->
        (* when this atom is the designated delta position, source it from
           the delta relation; a predicate with no delta contributes
           nothing this round *)
        let delta =
          match delta_at with
          | Some j when j = i -> (
              match Hashtbl.find_opt deltas a.pred with
              | Some d -> Some d
              | None -> Some (Relation.create ~name:"#empty" ~arity:(List.length a.args) ()))
          | Some _ | None -> None
        in
        List.fold_left
          (fun acc env' -> go env' (i + 1) rest acc)
          acc
          (eval_atom t env a ~delta)
    | Neg a :: rest ->
        let cols, key = bound_cols env a.args in
        if List.length cols <> List.length a.args then
          invalid_arg ("negated atom with unbound variable in rule for " ^ rule.head.pred);
        let rel = Hashtbl.find t.relations a.pred in
        let tup = Array.of_list key in
        ignore cols;
        if Relation.mem rel tup then acc else go env (i + 1) rest acc
  in
  go SMap.empty 0 rule.body []

(* Count positive atoms, to know which delta positions exist. *)
let positive_positions rule =
  List.filter_map
    (fun (i, lit) -> match lit with Pos _ -> Some i | Neg _ -> None)
    (List.mapi (fun i l -> (i, l)) rule.body)

let solve_stratum t (rules : rule list) =
  (* deltas: tuples added in the previous iteration, per predicate *)
  let heads = List.sort_uniq String.compare (List.map (fun r -> r.head.pred) rules) in
  let mk_delta () =
    let h = Hashtbl.create 8 in
    List.iter
      (fun p ->
        let arity = Relation.arity (Hashtbl.find t.relations p) in
        (* deltas mirror tuples already charged to the persistent
           relations, so they stay unbudgeted to avoid double-counting *)
        Hashtbl.replace h p (Relation.create ~name:(p ^ "#d") ~arity ()))
      heads;
    h
  in
  (* Deltas that derived nothing contribute nothing next round; dropping
     them lets the loop skip the whole rule-position evaluation (which
     would otherwise enumerate the full join prefix before reaching the
     empty delta atom). Pruning never changes which tuples are derived or
     their derivation order, only skips provably empty evaluations. *)
  let prune h =
    let keep = Hashtbl.create 8 in
    Hashtbl.iter (fun p d -> if Relation.cardinal d > 0 then Hashtbl.replace keep p d) h;
    keep
  in
  (* cache per-rule positive positions; stable across iterations *)
  let rule_positions = List.map (fun rule -> (rule, positive_positions rule)) rules in
  (* naive first round: evaluate every rule on full relations *)
  let delta = mk_delta () in
  List.iter
    (fun rule ->
      let rel = Hashtbl.find t.relations rule.head.pred in
      List.iter
        (fun tup ->
          if Relation.add rel tup then ignore (Relation.add (Hashtbl.find delta rule.head.pred) tup))
        (eval_rule t rule ~deltas:(Hashtbl.create 0) ~delta_at:None))
    rules;
  let current = ref (prune delta) in
  while Hashtbl.length !current > 0 do
    let next = mk_delta () in
    List.iter
      (fun (rule, positions) ->
        List.iter
          (fun pos ->
            (* only source from a delta that actually has new tuples *)
            let a =
              match List.nth rule.body pos with
              | Pos a -> a
              | Neg _ -> assert false
            in
            if Hashtbl.mem !current a.pred then
              let rel = Hashtbl.find t.relations rule.head.pred in
              List.iter
                (fun tup ->
                  if Relation.add rel tup then
                    ignore (Relation.add (Hashtbl.find next rule.head.pred) tup))
                (eval_rule t rule ~deltas:!current ~delta_at:(Some pos)))
          positions)
      rule_positions;
    current := prune next
  done

let solve t =
  if not t.solved then begin
    let strata = stratify t in
    List.iter (fun rules -> solve_stratum t rules) strata;
    t.solved <- true
  end

(* -- queries ------------------------------------------------------------- *)

let mem t pred args =
  solve t;
  match Hashtbl.find_opt t.relations pred with
  | None -> false
  | Some rel -> Relation.mem rel (Array.of_list (List.map (Symbol.intern t.sym) args))

let query t pred : string array list =
  solve t;
  match Hashtbl.find_opt t.relations pred with
  | None -> []
  | Some rel ->
      Relation.fold
        (fun acc tup -> Array.map (Symbol.name t.sym) tup :: acc)
        [] rel

let cardinal t pred =
  solve t;
  match Hashtbl.find_opt t.relations pred with None -> 0 | Some rel -> Relation.cardinal rel
