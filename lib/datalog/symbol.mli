(** String interning: Datalog constants are dense integers; this table
    maps them back and forth to names, mirroring how Chord maps program
    entities into bddbddb domains.

    Safe for concurrent use from several domains: {!intern} and
    {!find_opt} are mutex-guarded (interning the same overlapping name
    sets from N domains yields one consistent bijection), while {!name}
    and {!size} read lock-free. Ids must reach other domains through a
    synchronised hand-off (a future, a join, a mutex) — which every
    pool-based consumer already provides. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Idempotent: the same name always yields the same id, including under
    concurrent interning from several domains. *)

val find_opt : t -> string -> int option

val name : t -> int -> string
(** @raise Invalid_argument on an id never produced by {!intern}. *)

val size : t -> int
