(* nadroid — command-line front end.

     nadroid analyze  app.mand      static UAF analysis + report
     nadroid serve                  analysis-as-a-service daemon
     nadroid request  app.mand      send analyze requests to a running daemon
     nadroid validate app.mand      analysis + dynamic schedule validation
     nadroid forest   app.mand      print the threadification forest
     nadroid ir       app.mand      dump the lowered IR
     nadroid deva     app.mand      run the DEvA baseline
     nadroid run      app.mand      one random simulator run
     nadroid fuzz                   chaos-fuzz the runtime over corpus mutants
     nadroid difftest               differential soundness test on generated apps
     nadroid golden                 diff/bless the corpus golden reports
     nadroid synth                  print a generated app (random or adversarial)
     nadroid corpus [NAME]          list corpus apps / dump one source

   Exit codes follow the fault taxonomy: 0 ok, 1 frontend diagnostic,
   3 budget exhausted, 4 internal error (2/124/125 are cmdliner's). *)

open Cmdliner
module Pipeline = Nadroid_core.Pipeline
module Filters = Nadroid_core.Filters
module Fault = Nadroid_core.Fault

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_fault f =
  match Fault.wrap f with
  | Ok x -> x
  | Error fault ->
      Fmt.epr "%a@." Fault.pp fault;
      exit (Fault.exit_code fault)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniAndroid source file")

let k_arg =
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"object-sensitivity depth (default 2)")

let sound_only_arg =
  Arg.(value & flag & info [ "sound-only" ] ~doc:"apply only the sound filters (MHB, IG, IA)")

let budget_pta_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-pta" ] ~docv:"STEPS"
        ~doc:
          "points-to step budget; on exhaustion the analysis retries with a coarser context \
           depth (sound: may over-report) before giving up")

let budget_tuples_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-tuples" ] ~docv:"N"
        ~doc:
          "memory ceiling: live relation tuples across the points-to table and the detection \
           join; on exhaustion the points-to solver retries with a coarser context depth \
           (sound: may over-report) before giving up")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "wall-clock deadline, enforced in-flight: the running analysis is cancelled at the \
           next checkpoint and degrades soundly (coarser points-to, skipped filters — may \
           over-report) or fails with the budget exit code when no sound partial result \
           remains")

let budget_explorer_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-explorer" ] ~docv:"N"
        ~doc:"cap on dynamic-validation schedules (can only lose witnesses)")

let budgets pta_steps pta_tuples deadline explorer_schedules =
  { Pipeline.pta_steps; pta_tuples; deadline; explorer_schedules }

(* -- analysis-cache flags (analyze, golden) ------------------------------ *)

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "serve and record results through the content-addressed on-disk analysis cache; a \
           warm hit skips analysis and is byte-identical to a cold run")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"bypass the analysis cache (overrides --cache)")

let cache_dir_arg =
  Arg.(
    value
    & opt string Nadroid_core.Cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"cache directory (default $(b,_nadroid_cache)); created on first store")

let cache_max_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "cap the cache directory size: after each store, least-recently-used entries are \
           evicted until the combined $(b,*.cache) size is at most $(docv)")

let cache_enabled cache no_cache = cache && not no_cache

(* A corrupt entry is served as a miss (the fresh result replaces it) but
   the fault is surfaced, never silently swallowed. *)
let warn_cache_outcome path = function
  | Nadroid_core.Cache.Hit | Nadroid_core.Cache.Miss -> ()
  | Nadroid_core.Cache.Corrupt f ->
      Fmt.epr "%s: %a (cache entry replaced)@." path Fault.pp f

let analyze_pipeline ?(budgets = Pipeline.no_budgets) path k sound_only =
  let src = read_file path in
  let config =
    {
      Pipeline.default_config with
      Pipeline.k;
      unsound = (if sound_only then [] else Filters.unsound);
      budgets;
    }
  in
  with_fault (fun () -> Pipeline.analyze ~config ~file:path src)

let analyze_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"MiniAndroid source file(s)")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"analyze the FILEs on $(docv) domains in parallel (default 1)")
  in
  let timings_arg =
    Arg.(
      value & flag
      & info [ "timings" ] ~doc:"print the per-phase timing breakdown and filter prune counts")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "machine-readable output: one JSON object with per-file warning counts and the \
             fault inventory, instead of the human report")
  in
  let supervise_arg =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "analyze each FILE in a supervised child process: a file that segfaults, is \
             OOM-killed or wedges costs exactly one fault entry — the worker is respawned \
             and the rest of the batch completes; a file that crashes two consecutive \
             workers is quarantined")
  in
  let heartbeat_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "heartbeat" ] ~docv:"SECS"
          ~doc:
            "with --supervise: max seconds one file may stay unanswered before its worker is \
             declared wedged and replaced (default: unbounded)")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "record each completed file in an append-only checksummed journal; together with \
             $(b,--resume), a killed batch can be rerun re-analyzing only the missing files")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "replay the $(b,--journal) before analyzing: files whose journaled completion \
             digest still matches are served from the journal, producing output \
             byte-identical to an uninterrupted run")
  in
  let stream_arg =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "streamed emission for corpus-scale batches: one JSON line per FILE (the same \
             per-file objects $(b,--json) aggregates), flushed as each file completes, in \
             input order — nothing is accumulated, so memory stays bounded independent of \
             the batch size. Journal/resume compatible. Mutually exclusive with $(b,--json)")
  in
  let run files k sound_only jobs timings json budget_pta budget_tuples deadline
      budget_explorer cache no_cache cache_dir cache_max_bytes supervise heartbeat
      journal_path resume stream =
    let module Cache = Nadroid_core.Cache in
    let module Journal = Nadroid_core.Journal in
    let module Supervise = Nadroid_core.Supervise in
    let config =
      {
        Pipeline.default_config with
        Pipeline.k;
        unsound = (if sound_only then [] else Filters.unsound);
        budgets = budgets budget_pta budget_tuples deadline budget_explorer;
      }
    in
    let use_cache = cache_enabled cache no_cache in
    if resume && journal_path = None then begin
      Fmt.epr "--resume needs --journal PATH@.";
      exit 2
    end;
    if stream && json then begin
      Fmt.epr "--stream and --json are mutually exclusive@.";
      exit 2
    end;
    (* force the shared builtin-program lazy before any domain spawns *)
    ignore (Lazy.force Nadroid_lang.Builtins.program);
    (* SIGTERM stops the batch at the next task boundary: files already
       analyzed still print (and journal), files never started become
       batch faults, and the exit code reflects the worst class seen *)
    let stop = Atomic.make false in
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true)));
    let journal = Option.map (fun p -> Journal.open_ ~path:p ~resume) journal_path in
    let replayed =
      match journal with
      | Some (_, records) -> Journal.latest records
      | None -> Hashtbl.create 0
    in
    let spool =
      if supervise then Some (Supervise.create ~jobs ?heartbeat ()) else None
    in
    let reused = Atomic.make 0 in
    (* crash-isolated: a bad file yields its own fault report while the
       remaining files are still analyzed; exit with the worst class.
       All paths produce a cache entry — the entry holds exactly what
       this command prints (counts, rendered report, metrics), which is
       what keeps cached, uncached, supervised and journal-resumed
       output byte-identical. *)
    let analyze_one path =
      if Atomic.get stop then raise (Fault.Fault (Fault.Budget Fault.P_batch));
      let src = read_file path in
      let key = Cache.key ~config src in
      match Hashtbl.find_opt replayed path with
      | Some r when String.equal r.Journal.j_key key -> (
          ignore (Atomic.fetch_and_add reused 1);
          match r.Journal.j_result with
          | Ok e -> (e, Cache.Hit)
          | Error f -> raise (Fault.Fault f))
      | _ ->
          let result =
            match spool with
            | Some sp ->
                Result.map
                  (fun e -> (e, Cache.Miss))
                  (Supervise.analyze sp ~config
                     ?cache:
                       (if use_cache then Some (cache_dir, cache_max_bytes)
                        else None)
                     ~file:path src)
            | None ->
                Fault.wrap (fun () ->
                    if use_cache then
                      Cache.analyze ~config ?max_bytes:cache_max_bytes
                        ~dir:cache_dir ~file:path src
                    else
                      ( Cache.entry_of_result (Pipeline.analyze ~config ~file:path src),
                        Cache.Miss ))
          in
          (match journal with
          | Some (j, _) -> (
              (* losing a journal record costs resume coverage, never
                 the batch: surface it and continue *)
              try
                Journal.append j
                  { Journal.j_name = path; j_key = key; j_result = Result.map fst result }
              with e -> Fmt.epr "journal: %s: %a@." path Fault.pp (Fault.of_exn e))
          | None -> ());
          (match result with
          | Ok entry_outcome -> entry_outcome
          | Error f -> raise (Fault.Fault f))
    in
    if stream then begin
      (* corpus-scale path: the per-file JSON objects --json would
         aggregate, one per line, flushed in input order as each file
         completes. Nothing is accumulated except the fault inventory
         (for the exit code), so memory is bounded by the scheduler
         window, not the batch size. *)
      let module Protocol = Nadroid_serve.Protocol in
      let arr = Array.of_list files in
      let n = Array.length arr in
      let faults = ref [] in
      Nadroid_core.Parallel.stream ~jobs ~n
        (fun i -> analyze_one arr.(i))
        (fun i r ->
          let path = arr.(i) in
          (match r with
          | Ok ((e : Cache.entry), outcome) ->
              warn_cache_outcome path outcome;
              print_string (Protocol.entry_json ~name:path e)
          | Error exn ->
              let f = Fault.of_exn exn in
              faults := f :: !faults;
              print_string (Nadroid_core.Report.fault_to_json ~name:path f));
          print_newline ();
          flush stdout);
      Option.iter Supervise.shutdown spool;
      (match journal with Some (j, _) -> Journal.close j | None -> ());
      if resume then
        Fmt.epr "resume: %d of %d file(s) replayed from the journal@."
          (Atomic.get reused) n;
      match !faults with
      | [] -> ()
      | fs ->
          Fmt.epr "%d of %d file(s) failed@." (List.length fs) n;
          exit (Fault.worst_exit fs)
    end
    else begin
    let results =
      List.map2
        (fun path r -> (path, Result.map_error Fault.of_exn r))
        files
        (Nadroid_core.Parallel.map_result ~jobs analyze_one files)
    in
    Option.iter Supervise.shutdown spool;
    (match journal with Some (j, _) -> Journal.close j | None -> ());
    if resume then
      Fmt.epr "resume: %d of %d file(s) replayed from the journal@."
        (Atomic.get reused) (List.length files);
    List.iter
      (fun (path, r) ->
        match r with Ok (_, outcome) -> warn_cache_outcome path outcome | Error _ -> ())
      results;
    (if json then
       (* stable machine-readable form: per-file counts, degradations and
          the rendered report plus the fault inventory — built by the
          same Protocol functions the serve daemon answers with, so a
          daemon response is byte-identical to this output *)
       let module Protocol = Nadroid_serve.Protocol in
       let file_json (path, r) =
         match r with
         | Ok ((e : Cache.entry), _) -> Protocol.entry_json ~name:path e
         | Error fault -> Nadroid_core.Report.fault_to_json ~name:path fault
       in
       let ok, bad = List.partition (fun (_, r) -> Result.is_ok r) results in
       Fmt.pr "%s@."
         (Protocol.batch_json ~files:(List.length results)
            ~apps:(List.map file_json ok) ~faults:(List.map file_json bad))
     else
       List.iter
         (fun (path, r) ->
           if List.length files > 1 then Fmt.pr "== %s ==@." path;
           match r with
           | Ok ((e : Cache.entry), _) ->
               Fmt.pr "potential UAFs: %d; after sound filters: %d; after unsound filters: %d@.@."
                 e.Cache.e_potential e.Cache.e_after_sound e.Cache.e_after_unsound;
               print_string e.Cache.e_report;
               if timings then Fmt.pr "%a" Nadroid_core.Report.pp_metrics e.Cache.e_metrics
           | Error fault -> Fmt.epr "%s: %a@." path Fault.pp fault)
         results);
    let faults = List.filter_map (fun (_, r) -> Result.fold ~ok:(fun _ -> None) ~error:Option.some r) results in
    (match faults with
    | [] -> ()
    | _ :: _ ->
        Fmt.epr "%d of %d file(s) failed@." (List.length faults) (List.length files);
        exit (Fault.worst_exit faults))
    end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"statically detect UAF ordering violations")
    Term.(
      const run $ files_arg $ k_arg $ sound_only_arg $ jobs_arg $ timings_arg $ json_arg
      $ budget_pta_arg $ budget_tuples_arg $ deadline_arg $ budget_explorer_arg $ cache_arg
      $ no_cache_arg $ cache_dir_arg $ cache_max_bytes_arg $ supervise_arg $ heartbeat_arg
      $ journal_arg $ resume_arg $ stream_arg)

(* -- serve / request: the analysis daemon and its client ----------------- *)

let default_socket = "nadroid.sock"

(* One --socket/--tcp pair shared by serve and request; --tcp wins. *)
let listen_term =
  let socket_arg =
    Arg.(
      value
      & opt string default_socket
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix socket path (default $(b,nadroid.sock))")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"use TCP instead of a Unix socket")
  in
  let listen socket tcp =
    match tcp with
    | None -> `Unix socket
    | Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i -> (
            let host = String.sub spec 0 i in
            let port = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt port with
            | Some port when host <> "" -> `Tcp (host, port)
            | _ ->
                Fmt.epr "bad --tcp %s (expected HOST:PORT)@." spec;
                exit 2)
        | None ->
            Fmt.epr "bad --tcp %s (expected HOST:PORT)@." spec;
            exit 2)
  in
  Term.(const listen $ socket_arg $ tcp_arg)

let serve_cmd =
  let module Server = Nadroid_serve.Server in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"worker domains analyzing requests (default: all cores)")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"suppress the per-request stderr log")
  in
  let default_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"SECS"
          ~doc:
            "deadline applied to requests that carry none (default: unbounded); a request's \
             own deadline always wins")
  in
  let supervise_arg =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "run each analysis in a supervised child process: a request that segfaults, is \
             OOM-killed or wedges costs only its own response while the daemon keeps serving")
  in
  let heartbeat_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "heartbeat" ] ~docv:"SECS"
          ~doc:
            "with --supervise: max seconds one request may stay unanswered before its worker \
             is declared wedged and replaced (default: unbounded)")
  in
  let run listen jobs quiet default_deadline cache_dir cache_max_bytes supervise heartbeat =
    let config =
      {
        Server.default_config with
        Server.jobs;
        cache_dir;
        cache_max_bytes;
        default_deadline;
        quiet;
        supervise;
        heartbeat;
      }
    in
    with_fault (fun () -> Server.run ~config listen)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run the analysis-as-a-service daemon: a long-lived process that keeps the framework \
          model, interned symbols and the analysis cache warm and answers newline-JSON analyze \
          requests over a Unix or TCP socket (byte-identical to $(b,nadroid analyze --json)); \
          a $(b,shutdown) request, SIGTERM or SIGINT drains in-flight work and exits 0")
    Term.(
      const run $ listen_term $ jobs_arg $ quiet_arg $ default_deadline_arg $ cache_dir_arg
      $ cache_max_bytes_arg $ supervise_arg $ heartbeat_arg)

let request_cmd =
  let module Protocol = Nadroid_serve.Protocol in
  let module Client = Nadroid_serve.Client in
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"MiniAndroid source file(s)")
  in
  let ping_arg = Arg.(value & flag & info [ "ping" ] ~doc:"send a liveness probe first") in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"ask the daemon to drain and exit (after any FILEs)")
  in
  let connect_timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "connect-timeout" ] ~docv:"SECS"
          ~doc:
            "give up connecting after $(docv) seconds of exponential-backoff retries \
             (default 10) — a daemon that never starts fails the request instead of \
             spinning forever")
  in
  let run listen files ping shutdown connect_timeout k sound_only budget_pta budget_tuples
      deadline budget_explorer cache no_cache =
    if files = [] && not (ping || shutdown) then begin
      Fmt.epr "nothing to do: give FILEs, --ping or --shutdown@.";
      exit 2
    end;
    let c =
      try Client.connect ~timeout:connect_timeout listen
      with Unix.Unix_error (e, _, _) ->
        Fmt.epr "cannot connect to the daemon within %gs: %s@." connect_timeout
          (Unix.error_message e);
        exit 4
    in
    let worst = ref 0 in
    let round line =
      let response = Client.request c line in
      print_endline response;
      worst := max !worst (Protocol.response_exit response)
    in
    if ping then round Protocol.ping_request;
    List.iter
      (fun path ->
        round
          (Protocol.render_analyze
             {
               Protocol.a_path = Some path;
               a_source = None;
               a_file = None;
               a_k = (if k = 2 then None else Some k);
               a_sound_only = sound_only;
               a_deadline = deadline;
               a_budget_pta = budget_pta;
               a_budget_tuples = budget_tuples;
               a_budget_explorer = budget_explorer;
               a_cache = (if cache_enabled cache no_cache then Some true else None);
             }))
      files;
    if shutdown then round Protocol.shutdown_request;
    Client.close c;
    if !worst <> 0 then exit !worst
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "send requests to a running $(b,nadroid serve) daemon and print the response lines; \
          exits with the worst fault code of the batch, like $(b,analyze)")
    Term.(
      const run $ listen_term $ files_arg $ ping_arg $ shutdown_arg $ connect_timeout_arg
      $ k_arg $ sound_only_arg $ budget_pta_arg $ budget_tuples_arg $ deadline_arg
      $ budget_explorer_arg $ cache_arg $ no_cache_arg)

let validate_cmd =
  let runs_arg =
    Arg.(value & opt int 150 & info [ "runs" ] ~doc:"random schedules per warning")
  in
  let run path k runs budget_pta budget_tuples deadline budget_explorer =
    let t =
      analyze_pipeline
        ~budgets:(budgets budget_pta budget_tuples deadline budget_explorer)
        path k false
    in
    (* the explorer budget caps schedules tried per warning *)
    let runs = match budget_explorer with Some b -> min runs b | None -> runs in
    List.iter
      (fun w ->
        let v = Nadroid_dynamic.Explorer.validate t.Pipeline.prog w ~runs () in
        Fmt.pr "%s: %s@."
          (Nadroid_core.Report.field_name w.Nadroid_core.Detect.w_field)
          (if v.Nadroid_dynamic.Explorer.v_harmful then "HARMFUL (witness schedule found)"
           else "no witness found");
        match v.Nadroid_dynamic.Explorer.v_witness with
        | Some trace ->
            Fmt.pr "  schedule: %a@."
              Fmt.(list ~sep:(any " ; ") Nadroid_dynamic.World.pp_action)
              trace
        | None -> ())
      t.Pipeline.after_unsound
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"dynamically validate surviving warnings")
    Term.(
      const run $ file_arg $ k_arg $ runs_arg $ budget_pta_arg $ budget_tuples_arg
      $ deadline_arg $ budget_explorer_arg)

let forest_cmd =
  let run path k =
    let t = analyze_pipeline path k false in
    Fmt.pr "%a" Nadroid_core.Threadify.pp_forest t.Pipeline.threads
  in
  Cmd.v
    (Cmd.info "forest" ~doc:"print the threadification forest (modeled threads)")
    Term.(const run $ file_arg $ k_arg)

let dot_cmd =
  let run path k =
    let t = analyze_pipeline path k false in
    print_string (Nadroid_core.Threadify.to_dot t.Pipeline.threads)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"emit the threadification forest as Graphviz")
    Term.(const run $ file_arg $ k_arg)

let ir_cmd =
  let run path =
    let src = read_file path in
    let prog = with_fault (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    List.iter (fun b -> Fmt.pr "%a@.@." Nadroid_ir.Cfg.pp b) (Nadroid_ir.Prog.user_bodies prog)
  in
  Cmd.v (Cmd.info "ir" ~doc:"dump the lowered IR of user methods") Term.(const run $ file_arg)

let deva_cmd =
  let run path =
    let src = read_file path in
    let prog = with_fault (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    List.iter (fun w -> Fmt.pr "%a@." Nadroid_deva.Deva.pp w) (Nadroid_deva.Deva.run prog)
  in
  Cmd.v
    (Cmd.info "deva" ~doc:"run the DEvA event-anomaly baseline")
    Term.(const run $ file_arg)

let run_cmd =
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"schedule seed") in
  let steps_arg = Arg.(value & opt int 100 & info [ "steps" ] ~doc:"max schedule steps") in
  let run path seed steps =
    let src = read_file path in
    let prog = with_fault (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    let o = Nadroid_dynamic.Explorer.random_run prog ~seed ~max_steps:steps in
    Fmt.pr "schedule (%d steps): %a@." o.Nadroid_dynamic.Explorer.o_steps
      Fmt.(list ~sep:(any " ; ") Nadroid_dynamic.World.pp_action)
      o.Nadroid_dynamic.Explorer.o_trace;
    List.iter
      (fun (npe : Nadroid_dynamic.Interp.npe) ->
        Fmt.pr "NullPointerException at %a (%a)@." Nadroid_ir.Instr.pp_mref
          npe.Nadroid_dynamic.Interp.npe_mref Nadroid_lang.Loc.pp
          npe.Nadroid_dynamic.Interp.npe_loc)
      o.Nadroid_dynamic.Explorer.o_npes;
    List.iter
      (fun (s : Nadroid_dynamic.Interp.stuck) ->
        Fmt.pr "Stuck (%s) at %a (%a)@." s.Nadroid_dynamic.Interp.st_reason
          Nadroid_ir.Instr.pp_mref s.Nadroid_dynamic.Interp.st_mref Nadroid_lang.Loc.pp
          s.Nadroid_dynamic.Interp.st_loc)
      o.Nadroid_dynamic.Explorer.o_stucks;
    if o.Nadroid_dynamic.Explorer.o_crashed then Fmt.pr "(app crashed)@."
  in
  Cmd.v
    (Cmd.info "run" ~doc:"execute one random schedule in the simulator")
    Term.(const run $ file_arg $ seed_arg $ steps_arg)

let replay_cmd =
  let sched_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"SCHEDULE" ~doc:"file with one action per line, as printed by validate")
  in
  let run path sched =
    let src = read_file path in
    let prog = with_fault (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    let script =
      String.split_on_char '\n' (read_file sched)
      |> List.concat_map (String.split_on_char ';')
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")
    in
    let o = Nadroid_dynamic.Explorer.replay prog script in
    Fmt.pr "replayed %d action(s)@." o.Nadroid_dynamic.Explorer.o_steps;
    List.iter
      (fun (npe : Nadroid_dynamic.Interp.npe) ->
        Fmt.pr "NullPointerException at %a (%a)@." Nadroid_ir.Instr.pp_mref
          npe.Nadroid_dynamic.Interp.npe_mref Nadroid_lang.Loc.pp
          npe.Nadroid_dynamic.Interp.npe_loc)
      o.Nadroid_dynamic.Explorer.o_npes
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"replay a recorded witness schedule")
    Term.(const run $ file_arg $ sched_arg)

let fuzz_cmd =
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"mutation seed") in
  let mutants_arg =
    Arg.(value & opt int 200 & info [ "mutants" ] ~docv:"N" ~doc:"number of mutants to analyze")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"domains to fuzz on (default: all cores)")
  in
  let fuzz_deadline_arg =
    Arg.(
      value & opt float 10.0
      & info [ "deadline" ] ~docv:"SECS" ~doc:"per-mutant wall-clock deadline (default 10)")
  in
  let run seed mutants jobs deadline =
    let summary =
      Nadroid_corpus.Chaos.run ?jobs ~deadline ~seed ~mutants
        (Lazy.force Nadroid_corpus.Corpus.all)
    in
    Fmt.pr "%a@?" Nadroid_corpus.Chaos.pp_summary summary;
    if summary.Nadroid_corpus.Chaos.s_uncaught <> [] then exit 4
    else if summary.Nadroid_corpus.Chaos.s_overruns <> [] then exit 3
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "chaos-fuzz the analysis runtime: analyze seeded mutants of every corpus source and \
          fail on any uncaught exception or deadline overrun")
    Term.(const run $ seed_arg $ mutants_arg $ jobs_arg $ fuzz_deadline_arg)

let difftest_cmd =
  let module Differential = Nadroid_corpus.Differential in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"generation seed (app i uses N+i)")
  in
  let apps_arg =
    Arg.(value & opt int 100 & info [ "apps" ] ~docv:"N" ~doc:"number of generated apps")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"domains to check on (default: all cores)")
  in
  let runs_arg =
    Arg.(
      value
      & opt int Differential.default_oracle.Differential.dr_runs
      & info [ "runs" ] ~docv:"N" ~doc:"uniform random walks per app")
  in
  let guided_arg =
    Arg.(
      value
      & opt int Differential.default_oracle.Differential.dr_guided
      & info [ "guided" ] ~docv:"N" ~doc:"guided walks per surviving warning")
  in
  let steps_arg =
    Arg.(
      value
      & opt int Differential.default_oracle.Differential.dr_steps
      & info [ "steps" ] ~docv:"N" ~doc:"max schedule steps per walk")
  in
  let weaken_arg =
    Arg.(
      value & opt string "none"
      & info [ "weaken" ] ~docv:"MODE"
          ~doc:
            "deliberately weaken a sound filter to prove the harness catches it: 'invert-ig' \
             inverts IG's guard check (default 'none')")
  in
  let run seed apps jobs runs guided steps weaken =
    let weaken =
      match Differential.weaken_of_string weaken with
      | Some w -> w
      | None ->
          Fmt.epr "unknown --weaken mode %s (try 'none' or 'invert-ig')@." weaken;
          exit 2
    in
    let oracle =
      { Differential.dr_runs = runs; dr_guided = guided; dr_steps = steps }
    in
    let summary =
      with_fault (fun () -> Differential.run ?jobs ~oracle ~weaken ~seed ~apps ())
    in
    Fmt.pr "%a@?" Differential.pp_summary summary;
    if summary.Differential.su_counterexamples <> [] then exit 4
    else if summary.Differential.su_faults <> [] then
      exit (Fault.worst_exit (List.map snd summary.Differential.su_faults))
  in
  Cmd.v
    (Cmd.info "difftest"
       ~doc:
         "differential soundness test: generate random well-typed apps, cross-check the \
          sound-filters-only static pipeline against the schedule explorer as a dynamic \
          oracle, and shrink any counterexample")
    Term.(
      const run $ seed_arg $ apps_arg $ jobs_arg $ runs_arg $ guided_arg $ steps_arg
      $ weaken_arg)

let golden_cmd =
  let module Golden = Nadroid_corpus.Golden in
  let dir_arg =
    Arg.(
      value & opt string "test/golden"
      & info [ "dir" ] ~docv:"DIR" ~doc:"directory of .expected files (default test/golden)")
  in
  let bless_arg =
    Arg.(value & flag & info [ "bless" ] ~doc:"regenerate every .expected file instead of diffing")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"domains to analyze on (default: all cores)")
  in
  let run dir bless jobs cache no_cache cache_dir =
    let cache_dir = if cache_enabled cache no_cache then Some cache_dir else None in
    if bless then
      let n = with_fault (fun () -> Golden.bless ~dir ?jobs ()) in
      Fmt.pr "blessed %d golden report(s) into %s@." n dir
    else
      let results = with_fault (fun () -> Golden.check ~dir ?jobs ?cache_dir ()) in
      List.iter (fun r -> Fmt.pr "%a@." Golden.pp_status r) results;
      if not (Golden.ok results) then (
        let bad = List.filter (fun (_, s) -> s <> Golden.G_ok) results in
        Fmt.epr "golden: %d of %d report(s) drifted or missing@." (List.length bad)
          (List.length results);
        exit 1)
  in
  Cmd.v
    (Cmd.info "golden"
       ~doc:
         "diff the corpus against committed canonical reports (fails on any warning-set \
          drift); --bless regenerates them; --cache serves the reports through the analysis \
          cache (the cold-then-warm CI gate)")
    Term.(const run $ dir_arg $ bless_arg $ jobs_arg $ cache_arg $ no_cache_arg $ cache_dir_arg)

let synth_cmd =
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"generation seed") in
  let size_arg =
    Arg.(
      value & opt int 12
      & info [ "size" ] ~docv:"N" ~doc:"size parameter for --adversarial (default 12)")
  in
  let adversarial_arg =
    Arg.(
      value & flag
      & info [ "adversarial" ]
          ~doc:
            "emit the deadline-pathology app (filter phase superlinear in $(b,--size)) instead \
             of a random well-typed app")
  in
  let run seed size adversarial =
    if adversarial then print_string (Nadroid_corpus.Synth.adversarial ~seed ~size)
    else print_string (fst (Nadroid_corpus.Synth.render (Nadroid_corpus.Synth.generate ~seed)))
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "print a generated MiniAndroid app: random well-typed by default, or the adversarial \
          deadline-pathology app with --adversarial")
    Term.(const run $ seed_arg $ size_arg $ adversarial_arg)

let faultfuzz_cmd =
  let module Faultfuzz = Nadroid_corpus.Faultfuzz in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"injection seed (trial i uses N+i)")
  in
  let trials_arg =
    Arg.(
      value & opt int 10
      & info [ "trials" ] ~docv:"N"
          ~doc:"fuzz trials, alternating in-process and supervised (default 10)")
  in
  let apps_arg =
    Arg.(
      value & opt int 8
      & info [ "apps" ] ~docv:"N" ~doc:"corpus apps per trial (default 8)")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"batch parallelism per trial (default 2)")
  in
  let run seed trials apps jobs =
    let summary = with_fault (fun () -> Faultfuzz.run ?jobs ~apps ~seed ~trials ()) in
    Fmt.pr "%a@?" Faultfuzz.pp_summary summary;
    if summary.Faultfuzz.fz_escapes <> [] then exit 4
  in
  Cmd.v
    (Cmd.info "faultfuzz"
       ~doc:
         "blast-radius fuzzing: seed deterministic faults into the cache/journal/worker \
          seams while analyzing corpus batches, and fail (exit 4) if any fault escapes its \
          app — every entry must be byte-identical to a clean run or a structured fault \
          attributable to the injection")
    Term.(const run $ seed_arg $ trials_arg $ apps_arg $ jobs_arg)

let corpus_cmd =
  let name_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  let run name =
    match name with
    | None ->
        List.iter
          (fun (a : Nadroid_corpus.Corpus.app) ->
            Fmt.pr "%-16s %s@." a.Nadroid_corpus.Corpus.name
              (match a.Nadroid_corpus.Corpus.group with
              | Nadroid_corpus.Corpus.Train -> "train"
              | Nadroid_corpus.Corpus.Test -> "test"))
          (Lazy.force Nadroid_corpus.Corpus.all)
    | Some n -> (
        match Nadroid_corpus.Corpus.find n with
        | Some a -> print_string a.Nadroid_corpus.Corpus.source
        | None ->
            Fmt.epr "unknown corpus app %s@." n;
            exit 1)
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"list evaluation-corpus apps, or dump one app's source")
    Term.(const run $ name_arg)

let () =
  (* a supervised worker child serves framed requests on stdin/stdout
     and never reaches the CLI — this must run before Cmd.eval *)
  Nadroid_core.Supervise.worker_check ();
  (match Nadroid_core.Faultinject.init_from_env () with
  | Ok () -> ()
  | Error e ->
      Fmt.epr "bad %s: %s@." Nadroid_core.Faultinject.env_var e;
      exit 2);
  let info = Cmd.info "nadroid" ~doc:"static ordering-violation detector for MiniAndroid apps" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd;
            serve_cmd;
            request_cmd;
            validate_cmd;
            forest_cmd;
            dot_cmd;
            ir_cmd;
            deva_cmd;
            run_cmd;
            replay_cmd;
            fuzz_cmd;
            difftest_cmd;
            golden_cmd;
            synth_cmd;
            faultfuzz_cmd;
            corpus_cmd;
          ]))
