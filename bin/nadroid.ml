(* nadroid — command-line front end.

     nadroid analyze  app.mand      static UAF analysis + report
     nadroid validate app.mand      analysis + dynamic schedule validation
     nadroid forest   app.mand      print the threadification forest
     nadroid ir       app.mand      dump the lowered IR
     nadroid deva     app.mand      run the DEvA baseline
     nadroid run      app.mand      one random simulator run
     nadroid corpus [NAME]          list corpus apps / dump one source *)

open Cmdliner
module Pipeline = Nadroid_core.Pipeline
module Filters = Nadroid_core.Filters

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_diag f =
  match Nadroid_lang.Diag.protect f with
  | Ok x -> x
  | Error d ->
      Fmt.epr "%a@." Nadroid_lang.Diag.pp d;
      exit 1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniAndroid source file")

let k_arg =
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"object-sensitivity depth (default 2)")

let sound_only_arg =
  Arg.(value & flag & info [ "sound-only" ] ~doc:"apply only the sound filters (MHB, IG, IA)")

let analyze_pipeline path k sound_only =
  let src = read_file path in
  let config =
    {
      Pipeline.default_config with
      Pipeline.k;
      unsound = (if sound_only then [] else Filters.unsound);
    }
  in
  with_diag (fun () -> Pipeline.analyze ~config ~file:path src)

let analyze_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"MiniAndroid source file(s)")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"analyze the FILEs on $(docv) domains in parallel (default 1)")
  in
  let timings_arg =
    Arg.(
      value & flag
      & info [ "timings" ] ~doc:"print the per-phase timing breakdown and filter prune counts")
  in
  let run files k sound_only jobs timings =
    let config =
      {
        Pipeline.default_config with
        Pipeline.k;
        unsound = (if sound_only then [] else Filters.unsound);
      }
    in
    (* force the shared builtin-program lazy before any domain spawns *)
    ignore (Lazy.force Nadroid_lang.Builtins.program);
    let results =
      with_diag (fun () ->
          Nadroid_core.Parallel.map ~jobs
            (fun path -> (path, Pipeline.analyze ~config ~file:path (read_file path)))
            files)
    in
    List.iter
      (fun (path, (t : Pipeline.t)) ->
        if List.length files > 1 then Fmt.pr "== %s ==@." path;
        Fmt.pr "potential UAFs: %d; after sound filters: %d; after unsound filters: %d@.@."
          (List.length t.Pipeline.potential)
          (List.length t.Pipeline.after_sound)
          (List.length t.Pipeline.after_unsound);
        print_string (Nadroid_core.Report.to_string t.Pipeline.threads t.Pipeline.after_unsound);
        if timings then Fmt.pr "%a" Nadroid_core.Report.pp_metrics t.Pipeline.metrics)
      results
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"statically detect UAF ordering violations")
    Term.(const run $ files_arg $ k_arg $ sound_only_arg $ jobs_arg $ timings_arg)

let validate_cmd =
  let runs_arg =
    Arg.(value & opt int 150 & info [ "runs" ] ~doc:"random schedules per warning")
  in
  let run path k runs =
    let t = analyze_pipeline path k false in
    List.iter
      (fun w ->
        let v = Nadroid_dynamic.Explorer.validate t.Pipeline.prog w ~runs () in
        Fmt.pr "%s: %s@."
          (Nadroid_core.Report.field_name w.Nadroid_core.Detect.w_field)
          (if v.Nadroid_dynamic.Explorer.v_harmful then "HARMFUL (witness schedule found)"
           else "no witness found");
        match v.Nadroid_dynamic.Explorer.v_witness with
        | Some trace ->
            Fmt.pr "  schedule: %a@."
              Fmt.(list ~sep:(any " ; ") Nadroid_dynamic.World.pp_action)
              trace
        | None -> ())
      t.Pipeline.after_unsound
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"dynamically validate surviving warnings")
    Term.(const run $ file_arg $ k_arg $ runs_arg)

let forest_cmd =
  let run path k =
    let t = analyze_pipeline path k false in
    Fmt.pr "%a" Nadroid_core.Threadify.pp_forest t.Pipeline.threads
  in
  Cmd.v
    (Cmd.info "forest" ~doc:"print the threadification forest (modeled threads)")
    Term.(const run $ file_arg $ k_arg)

let dot_cmd =
  let run path k =
    let t = analyze_pipeline path k false in
    print_string (Nadroid_core.Threadify.to_dot t.Pipeline.threads)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"emit the threadification forest as Graphviz")
    Term.(const run $ file_arg $ k_arg)

let ir_cmd =
  let run path =
    let src = read_file path in
    let prog = with_diag (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    List.iter (fun b -> Fmt.pr "%a@.@." Nadroid_ir.Cfg.pp b) (Nadroid_ir.Prog.user_bodies prog)
  in
  Cmd.v (Cmd.info "ir" ~doc:"dump the lowered IR of user methods") Term.(const run $ file_arg)

let deva_cmd =
  let run path =
    let src = read_file path in
    let prog = with_diag (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    List.iter (fun w -> Fmt.pr "%a@." Nadroid_deva.Deva.pp w) (Nadroid_deva.Deva.run prog)
  in
  Cmd.v
    (Cmd.info "deva" ~doc:"run the DEvA event-anomaly baseline")
    Term.(const run $ file_arg)

let run_cmd =
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"schedule seed") in
  let steps_arg = Arg.(value & opt int 100 & info [ "steps" ] ~doc:"max schedule steps") in
  let run path seed steps =
    let src = read_file path in
    let prog = with_diag (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    let o = Nadroid_dynamic.Explorer.random_run prog ~seed ~max_steps:steps in
    Fmt.pr "schedule (%d steps): %a@." o.Nadroid_dynamic.Explorer.o_steps
      Fmt.(list ~sep:(any " ; ") Nadroid_dynamic.World.pp_action)
      o.Nadroid_dynamic.Explorer.o_trace;
    List.iter
      (fun (npe : Nadroid_dynamic.Interp.npe) ->
        Fmt.pr "NullPointerException at %a (%a)@." Nadroid_ir.Instr.pp_mref
          npe.Nadroid_dynamic.Interp.npe_mref Nadroid_lang.Loc.pp
          npe.Nadroid_dynamic.Interp.npe_loc)
      o.Nadroid_dynamic.Explorer.o_npes;
    if o.Nadroid_dynamic.Explorer.o_crashed then Fmt.pr "(app crashed)@."
  in
  Cmd.v
    (Cmd.info "run" ~doc:"execute one random schedule in the simulator")
    Term.(const run $ file_arg $ seed_arg $ steps_arg)

let replay_cmd =
  let sched_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"SCHEDULE" ~doc:"file with one action per line, as printed by validate")
  in
  let run path sched =
    let src = read_file path in
    let prog = with_diag (fun () -> Nadroid_ir.Prog.of_source ~file:path src) in
    let script =
      String.split_on_char '\n' (read_file sched)
      |> List.concat_map (String.split_on_char ';')
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")
    in
    let o = Nadroid_dynamic.Explorer.replay prog script in
    Fmt.pr "replayed %d action(s)@." o.Nadroid_dynamic.Explorer.o_steps;
    List.iter
      (fun (npe : Nadroid_dynamic.Interp.npe) ->
        Fmt.pr "NullPointerException at %a (%a)@." Nadroid_ir.Instr.pp_mref
          npe.Nadroid_dynamic.Interp.npe_mref Nadroid_lang.Loc.pp
          npe.Nadroid_dynamic.Interp.npe_loc)
      o.Nadroid_dynamic.Explorer.o_npes
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"replay a recorded witness schedule")
    Term.(const run $ file_arg $ sched_arg)

let corpus_cmd =
  let name_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  let run name =
    match name with
    | None ->
        List.iter
          (fun (a : Nadroid_corpus.Corpus.app) ->
            Fmt.pr "%-16s %s@." a.Nadroid_corpus.Corpus.name
              (match a.Nadroid_corpus.Corpus.group with
              | Nadroid_corpus.Corpus.Train -> "train"
              | Nadroid_corpus.Corpus.Test -> "test"))
          (Lazy.force Nadroid_corpus.Corpus.all)
    | Some n -> (
        match Nadroid_corpus.Corpus.find n with
        | Some a -> print_string a.Nadroid_corpus.Corpus.source
        | None ->
            Fmt.epr "unknown corpus app %s@." n;
            exit 1)
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"list evaluation-corpus apps, or dump one app's source")
    Term.(const run $ name_arg)

let () =
  let info = Cmd.info "nadroid" ~doc:"static ordering-violation detector for MiniAndroid apps" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd;
            validate_cmd;
            forest_cmd;
            dot_cmd;
            ir_cmd;
            deva_cmd;
            run_cmd;
            replay_cmd;
            corpus_cmd;
          ]))
