(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table1     -- Table 1 (main results)
     dune exec bench/main.exe fig5       -- Figure 5(a)/(b) (filter power)
     dune exec bench/main.exe table2     -- Table 2 (false-negative study)
     dune exec bench/main.exe table3     -- Table 3 (DEvA comparison)
     dune exec bench/main.exe timing     -- §8.8 phase split + Bechamel
     dune exec bench/main.exe perf       -- cold/warm/reference batches (BENCH_9.json)
     dune exec bench/main.exe serve      -- daemon throughput/latency (BENCH_6.json)
     dune exec bench/main.exe crash      -- supervision + kill/resume (BENCH_7.json)
     dune exec bench/main.exe ablation   -- design-choice ablations

   Expected shapes (not absolute numbers — see DESIGN.md §2) are quoted
   from the paper next to each output. *)

open Nadroid_corpus
module Pipeline = Nadroid_core.Pipeline
module Detect = Nadroid_core.Detect
module Filters = Nadroid_core.Filters
module Classify = Nadroid_core.Classify
module Threadify = Nadroid_core.Threadify
module Fault = Nadroid_core.Fault
module Cache = Nadroid_core.Cache
module Clock = Nadroid_clock.Clock

(* Corpus batch through the analysis cache (crash-isolated, like
   {!Corpus.analyze_all}); results are cache entries. The batch runs on
   the same streaming scheduler as the uncached path — frontend and
   analysis pipelined through one set of worker slots, with one
   batch-shared interning table for the misses. [max_bytes] caps the
   cache directory across the batch (LRU eviction after stores). *)
let analyze_all_cached ?config ?max_bytes ~jobs ~dir (apps : Corpus.app list) :
    (Corpus.app * (Cache.entry * Cache.outcome, Fault.t) result) list =
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let interner = Pipeline.create_interner () in
  let arr = Array.of_list apps in
  let out = Array.make (Array.length arr) None in
  Nadroid_core.Parallel.stream ~jobs ~n:(Array.length arr)
    (fun i ->
      Cache.analyze ?config ?max_bytes ~interner ~dir ~file:arr.(i).Corpus.name
        arr.(i).Corpus.source)
    (fun i r -> out.(i) <- Some r);
  List.mapi
    (fun i app ->
      match out.(i) with
      | Some r -> (app, Result.map_error Fault.of_exn r)
      | None -> assert false)
    apps

(* ---------------------------------------------------------------- *)
(* Table 1                                                            *)
(* ---------------------------------------------------------------- *)

let table1 ~jobs () =
  Eval.section "Table 1: nAdroid's UAF analysis over the 27-app corpus";
  let rows = ref [] in
  let tot = ref (0, 0, 0) in
  let harmful_total = ref 0 in
  List.iter
    (fun (e : Eval.evaluated) ->
      let app = e.Eval.app in
      let r = e.Eval.row in
      let harmful = Eval.harmful_count e in
      harmful_total := !harmful_total + harmful;
      let p, s, u = !tot in
      tot :=
        ( p + r.Pipeline.potential_count,
          s + r.Pipeline.after_sound_count,
          u + r.Pipeline.after_unsound_count );
      let cat c = List.assoc c r.Pipeline.by_category in
      (* false-positive attribution for surviving non-harmful warnings *)
      let fp_counts = Hashtbl.create 4 in
      List.iter
        (fun (w, h) ->
          if not h then begin
            let c = Eval.fp_cause app w in
            Hashtbl.replace fp_counts c
              (1 + Option.value ~default:0 (Hashtbl.find_opt fp_counts c))
          end)
        e.Eval.verdicts;
      let fp c = string_of_int (Option.value ~default:0 (Hashtbl.find_opt fp_counts c)) in
      rows :=
        [
          app.Corpus.name;
          (match app.Corpus.group with Corpus.Train -> "train" | Corpus.Test -> "test");
          string_of_int r.Pipeline.loc;
          string_of_int r.Pipeline.ec;
          string_of_int r.Pipeline.pc;
          string_of_int r.Pipeline.threads_count;
          string_of_int r.Pipeline.potential_count;
          string_of_int r.Pipeline.after_sound_count;
          string_of_int r.Pipeline.after_unsound_count;
          string_of_int (cat Classify.EC_EC);
          string_of_int (cat Classify.EC_PC);
          string_of_int (cat Classify.PC_PC);
          string_of_int (cat Classify.C_RT);
          string_of_int (cat Classify.C_NT);
          string_of_int harmful;
          fp "path-insens";
          fp "missing-hb";
          fp "unattributed";
        ]
        :: !rows)
    (List.map snd
       (Eval.keep_ok ~what:"table1" ~name:Eval.app_name
          (Eval.evaluate_all ~jobs (Lazy.force Corpus.all))));
  Eval.print_table
    ~header:
      [
        "app"; "grp"; "loc"; "EC"; "PC"; "T"; "potential"; "sound"; "unsound"; "EC-EC"; "EC-PC";
        "PC-PC"; "C-RT"; "C-NT"; "harmful"; "fp:path"; "fp:hb"; "fp:other";
      ]
    (List.rev !rows);
  let p, s, u = !tot in
  Printf.printf
    "\nTotals: potential=%d, after sound=%d (%.0f%% pruned; paper: 88%%), after unsound=%d \
     (%.0f%% of remainder pruned; paper: 70%%), combined %.0f%% (paper: 96%%).\n"
    p s (Eval.pct (p - s) p) u
    (Eval.pct (s - u) s)
    (Eval.pct (p - u) p);
  Printf.printf "True harmful UAFs (validated by schedule exploration): %d (paper: 88).\n"
    !harmful_total

(* ---------------------------------------------------------------- *)
(* Figure 5                                                           *)
(* ---------------------------------------------------------------- *)

(* Effectiveness of each filter applied individually, over the 20 test
   apps (the paper excludes the train group from Figure 5). *)
let fig5 ~jobs () =
  Eval.section "Figure 5(a): sound filters applied individually (20 test apps)";
  let evaluated =
    Eval.keep_ok ~what:"fig5" ~name:Eval.app_name
      (Corpus.analyze_all ~jobs (Lazy.force Corpus.test))
  in
  let count_pruned names stage =
    List.fold_left
      (fun (pruned, total) ((_app : Corpus.app), (t : Pipeline.t)) ->
        let base =
          match stage with
          | `Potential -> t.Pipeline.potential
          | `Sound -> t.Pipeline.after_sound
        in
        (pruned + Filters.pruned_count t.Pipeline.ctx names base, total + List.length base))
      (0, 0) evaluated
  in
  let line name names stage paper =
    let pruned, total = count_pruned names stage in
    Printf.printf "  %-8s prunes %4d / %4d  (%5.1f%%; paper: ~%s%%)\n" name pruned total
      (Eval.pct pruned total) paper
  in
  line "MHB" [ Filters.MHB ] `Potential "21";
  line "IG" [ Filters.IG ] `Potential "66";
  line "IA" [ Filters.IA ] `Potential "13";
  line "all" Filters.sound `Potential "88";
  Eval.section "Figure 5(b): unsound filters applied individually (after sound filters)";
  line "mayHB" Filters.may_hb `Sound "13";
  line "PHB" [ Filters.PHB ] `Sound "10";
  line "MA" [ Filters.MA ] `Sound "26";
  line "UR" [ Filters.UR ] `Sound "29";
  line "TT" [ Filters.TT ] `Sound "15";
  line "all" Filters.unsound `Sound "70"

(* ---------------------------------------------------------------- *)
(* Table 2                                                            *)
(* ---------------------------------------------------------------- *)

let table2 ~jobs () =
  Eval.section
    "Table 2: false-negative study — 28 artificial UAFs injected into 8 apps (paper: 2 missed \
     by detection, 3 pruned by the unsound CHB filter)";
  let header =
    [ "app"; "EC-EC"; "EC-PC"; "PC-PC"; "C-RT"; "C-NT"; "all"; "missed"; "pruned-unsound" ]
  in
  let rows = ref [] in
  let totals = Array.make 8 0 in
  let injected = Lazy.force Corpus.injected in
  let inj_name (inj : Corpus.injected_app) = inj.Corpus.inj_base.Corpus.name ^ "+inj" in
  let analyzed =
    Eval.keep_ok ~what:"table2" ~name:inj_name
      (List.map2
         (fun inj r -> (inj, Result.map_error Fault.of_exn r))
         injected
         (Nadroid_core.Parallel.map_result ~jobs
            (fun (inj : Corpus.injected_app) ->
              Pipeline.analyze ~file:(inj_name inj) inj.Corpus.inj_source)
            injected))
  in
  List.iter
    (fun ((inj : Corpus.injected_app), (t : Pipeline.t)) ->
      let field_has warnings (sd : Spec.seeded) =
        List.exists
          (fun (w : Detect.warning) ->
            String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_name sd.Spec.sd_field
            && String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_class sd.Spec.sd_activity)
          warnings
      in
      let cat_count = Hashtbl.create 4 in
      let missed = ref 0 and pruned = ref 0 in
      List.iter
        (fun (sd : Spec.seeded) ->
          let c = Corpus.injected_category sd.Spec.sd_pattern in
          Hashtbl.replace cat_count c
            (1 + Option.value ~default:0 (Hashtbl.find_opt cat_count c));
          if not (field_has t.Pipeline.potential sd) then incr missed
          else if not (field_has t.Pipeline.after_unsound sd) then incr pruned)
        inj.Corpus.inj_seeded;
      let n c = Option.value ~default:0 (Hashtbl.find_opt cat_count c) in
      let all = List.length inj.Corpus.inj_seeded in
      let vals =
        [
          n Classify.EC_EC; n Classify.EC_PC; n Classify.PC_PC; n Classify.C_RT; n Classify.C_NT;
          all; !missed; !pruned;
        ]
      in
      List.iteri (fun i v -> totals.(i) <- totals.(i) + v) vals;
      rows := (inj.Corpus.inj_base.Corpus.name :: List.map string_of_int vals) :: !rows)
    analyzed;
  let total_row = "TOTAL" :: Array.to_list (Array.map string_of_int totals) in
  Eval.print_table ~header (List.rev !rows @ [ total_row ]);
  Printf.printf
    "\nPaper totals: EC-EC 4, EC-PC 11, PC-PC 5, C-RT 1, C-NT 7, all 28; 2 missed (unanalysed \
     framework-mediated path), 3 pruned by unsound CHB.\n"

(* ---------------------------------------------------------------- *)
(* Table 3                                                            *)
(* ---------------------------------------------------------------- *)

(* Restrict the listing to hand-written fields (the named Table 3 rows);
   generated pattern fields ("f<n>") behave identically and would flood
   the table. *)
let generated_field dw_field =
  match String.rindex_opt dw_field '.' with
  | Some i ->
      let fname = String.sub dw_field (i + 1) (String.length dw_field - i - 1) in
      String.length fname > 1
      && fname.[0] = 'f'
      && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub fname 1 (String.length fname - 1))
  | None -> false

let table3 () =
  Eval.section
    "Table 3: comparison to DEvA on the train apps (DEvA-harmful warnings vs nAdroid)";
  let header = [ "app"; "field"; "class"; "use cb"; "free cb"; "nAdroid" ] in
  let rows = ref [] in
  List.iter
    (fun (app : Corpus.app) ->
      let prog =
        Nadroid_ir.Prog.of_sema
          (Nadroid_lang.Sema.of_source ~file:app.Corpus.name app.Corpus.source)
      in
      let deva = Nadroid_deva.Deva.run prog in
      (* nAdroid with the paper's comparison protocol: IG+IA only for
         "detected", all filters for "filtered" (§8.7) *)
      let detect_cfg =
        { Pipeline.default_config with Pipeline.sound = [ Filters.IG; Filters.IA ]; unsound = [] }
      in
      let t_detect = Pipeline.analyze_prog ~config:detect_cfg prog in
      let t_full = Pipeline.analyze_prog prog in
      let matches (dw : Nadroid_deva.Deva.warning) (w : Detect.warning) =
        let site_cb (s : Detect.site) =
          s.Detect.s_mref.Nadroid_ir.Instr.mr_class ^ "."
          ^ s.Detect.s_mref.Nadroid_ir.Instr.mr_name
        in
        String.equal
          (w.Detect.w_field.Nadroid_lang.Sema.fr_class ^ "."
          ^ w.Detect.w_field.Nadroid_lang.Sema.fr_name)
          dw.Nadroid_deva.Deva.dw_field
        && String.equal (site_cb w.Detect.w_use) dw.Nadroid_deva.Deva.dw_use_cb
        && String.equal (site_cb w.Detect.w_free) dw.Nadroid_deva.Deva.dw_free_cb
      in
      List.iter
        (fun (dw : Nadroid_deva.Deva.warning) ->
          if not (generated_field dw.Nadroid_deva.Deva.dw_field) then begin
            let detected = List.exists (matches dw) t_detect.Pipeline.after_sound in
            let filtered = not (List.exists (matches dw) t_full.Pipeline.after_unsound) in
            let verdict =
              if not detected then "Not detected"
              else if filtered then "Detected & Filtered"
              else "Detected & Reported"
            in
            let field_only =
              match String.rindex_opt dw.Nadroid_deva.Deva.dw_field '.' with
              | Some i ->
                  String.sub dw.Nadroid_deva.Deva.dw_field (i + 1)
                    (String.length dw.Nadroid_deva.Deva.dw_field - i - 1)
              | None -> dw.Nadroid_deva.Deva.dw_field
            in
            rows :=
              [
                app.Corpus.name;
                field_only;
                dw.Nadroid_deva.Deva.dw_class;
                dw.Nadroid_deva.Deva.dw_use_cb;
                dw.Nadroid_deva.Deva.dw_free_cb;
                verdict;
              ]
              :: !rows
          end)
        deva)
    (Lazy.force Corpus.train);
  Eval.print_table ~header (List.rev !rows);
  Printf.printf
    "\nPaper: of 13 DEvA-harmful warnings, nAdroid detects 12 (1 missed: the Fragment case), \
     filters 11 of them, and agrees on 1 as harmful. DEvA misses all of nAdroid's inter-class \
     and thread-involving bugs.\n"

(* ---------------------------------------------------------------- *)
(* §8.8 timing                                                        *)
(* ---------------------------------------------------------------- *)

(* Machine-readable bench point: per-app phase metrics plus aggregate
   totals, one JSON document on stdout. The per-phase times sum to the
   measured per-app wall time (create_ctx included under filtering).
   Works on cache entries so the cached and uncached paths share it;
   served-from-cache entries report the producing (cold) run's
   metrics. *)
let timing_json ~jobs ~elapsed entries =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "{\"jobs\":%d,\"apps\":[" jobs);
  List.iteri
    (fun i ((app : Corpus.app), (e : Cache.entry)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Nadroid_core.Report.metrics_to_json ~name:app.Corpus.name e.Cache.e_metrics))
    entries;
  let m, d, f, sum, wall =
    List.fold_left
      (fun (m, d, f, sum, wall) ((_ : Corpus.app), (e : Cache.entry)) ->
        let tm = Pipeline.timings_of_metrics e.Cache.e_metrics in
        ( m +. tm.Pipeline.t_modeling,
          d +. tm.Pipeline.t_detection,
          f +. tm.Pipeline.t_filtering,
          sum +. Pipeline.phase_sum e.Cache.e_metrics,
          wall +. e.Cache.e_metrics.Pipeline.m_wall ))
      (0.0, 0.0, 0.0, 0.0, 0.0) entries
  in
  Buffer.add_string buf
    (Printf.sprintf
       "],\"totals\":{\"modeling\":%.6f,\"detection\":%.6f,\"filtering\":%.6f,\"phase_sum\":%.6f,\"wall\":%.6f,\"elapsed\":%.6f}}"
       m d f sum wall elapsed);
  print_endline (Buffer.contents buf)

let timing ~jobs ~json ~cache ~cache_max_bytes () =
  (* [elapsed] is the batch wall clock; under [jobs] > 1 the per-app wall
     times overlap, so their sum exceeds it. *)
  let t0 = Clock.now () in
  let analyzed =
    match cache with
    | Some dir ->
        List.map
          (fun (app, (e, _outcome)) -> (app, e))
          (Eval.keep_ok ~what:"timing" ~name:Eval.app_name
             (analyze_all_cached ?max_bytes:cache_max_bytes ~jobs ~dir (Lazy.force Corpus.all)))
    | None ->
        List.map
          (fun (app, t) -> (app, Cache.entry_of_result t))
          (Eval.keep_ok ~what:"timing" ~name:Eval.app_name
             (Corpus.analyze_all ~jobs (Lazy.force Corpus.all)))
  in
  let elapsed = Clock.now () -. t0 in
  if json then timing_json ~jobs ~elapsed analyzed
  else begin
  Eval.section
    "Analysis execution time (§8.8: modeling ~1.2%, detection ~95.7%, filtering ~3.1%)";
  let m = ref 0.0 and d = ref 0.0 and f = ref 0.0 in
  List.iter
    (fun ((_ : Corpus.app), (e : Cache.entry)) ->
      let tm = Pipeline.timings_of_metrics e.Cache.e_metrics in
      m := !m +. tm.Pipeline.t_modeling;
      d := !d +. tm.Pipeline.t_detection;
      f := !f +. tm.Pipeline.t_filtering)
    analyzed;
  let total = !m +. !d +. !f in
  Printf.printf "  modeling  : %8.3f s  (%5.2f%%)\n" !m (100.0 *. !m /. total);
  Printf.printf "  detection : %8.3f s  (%5.2f%%)\n" !d (100.0 *. !d /. total);
  Printf.printf "  filtering : %8.3f s  (%5.2f%%)\n" !f (100.0 *. !f /. total);
  Printf.printf "  batch wall: %8.3f s  (%d job%s)\n" elapsed jobs (if jobs = 1 then "" else "s");
  (* Bechamel micro-benchmarks of the three phases on a mid-size app *)
  print_newline ();
  let open Bechamel in
  let app =
    List.find (fun (a : Corpus.app) -> String.equal a.Corpus.name "Mms") (Lazy.force Corpus.all)
  in
  let prog =
    Nadroid_ir.Prog.of_sema (Nadroid_lang.Sema.of_source ~file:"Mms" app.Corpus.source)
  in
  let pta = Nadroid_analysis.Pta.run ~k:2 prog in
  let esc = Nadroid_analysis.Escape.run pta in
  let locks = Nadroid_analysis.Lockset.run pta in
  let tf = Threadify.run pta in
  let pot = Detect.run tf esc in
  let ctx = Filters.create_ctx tf esc locks in
  let tests =
    Test.make_grouped ~name:"phases" ~fmt:"%s/%s"
      [
        Test.make ~name:"modeling:threadify" (Staged.stage (fun () -> Threadify.run pta));
        Test.make ~name:"detection:points-to-k2"
          (Staged.stage (fun () -> Nadroid_analysis.Pta.run ~k:2 prog));
        Test.make ~name:"detection:race-join" (Staged.stage (fun () -> Detect.run tf esc));
        Test.make ~name:"filtering:all"
          (Staged.stage (fun () ->
               Filters.apply ctx Filters.unsound (Filters.apply ctx Filters.sound pot)));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "Bechamel (monotonic clock) on app 'Mms':\n";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "  %-32s %12.0f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results
  end

(* ---------------------------------------------------------------- *)
(* perf: cold vs warm vs reference                                    *)
(* ---------------------------------------------------------------- *)

(* Clear a scratch cache directory. Only entries the cache itself writes
   ([*.cache] and orphaned [.tmp.*] files) are removed — a foreign file
   or subdirectory is left alone rather than faulting the whole bench
   run, and the rmdir then simply doesn't happen. Removals tolerate
   races with concurrent evictors/writers. *)
let rm_cache_dir dir =
  if Sys.file_exists dir then begin
    (match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".cache" || String.length f >= 5 && String.sub f 0 5 = ".tmp."
            then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          names);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let bench_json_file = "BENCH_9.json"

(* Three timed full-corpus batches: cold (worklist solver, empty cache
   dir), warm (same dir — every analysis a cache hit) and reference
   (the snapshot re-iterate-all solver, uncached). Under --json the
   document also lands in BENCH_9.json. *)
let perf ~jobs ~json ~cache_dir ~cache_max_bytes () =
  let apps = Lazy.force Corpus.all in
  let dir = Filename.concat cache_dir (Printf.sprintf "perf.%d" (Unix.getpid ())) in
  rm_cache_dir dir;
  let cached_batch what =
    let t0 = Clock.now () in
    let rs =
      Eval.keep_ok ~what ~name:Eval.app_name
        (analyze_all_cached ?max_bytes:cache_max_bytes ~jobs ~dir apps)
    in
    (rs, Clock.now () -. t0)
  in
  let cold_raw, cold_elapsed = cached_batch "perf-cold" in
  let warm_raw, warm_elapsed = cached_batch "perf-warm" in
  let ref_config =
    { Pipeline.default_config with Pipeline.solver = Nadroid_analysis.Pta.Reference }
  in
  let t0 = Clock.now () in
  let reference =
    List.map
      (fun (app, t) -> (app, Cache.entry_of_result t))
      (Eval.keep_ok ~what:"perf-reference" ~name:Eval.app_name
         (Corpus.analyze_all ~config:ref_config ~jobs apps))
  in
  let ref_elapsed = Clock.now () -. t0 in
  rm_cache_dir dir;
  let cold = List.map (fun (app, (e, _)) -> (app, e)) cold_raw in
  let warm_hits =
    List.length (List.filter (fun (_, (_, o)) -> o = Cache.Hit) warm_raw)
  in
  let sums entries =
    List.fold_left
      (fun (w, v, s) ((_ : Corpus.app), (e : Cache.entry)) ->
        ( w +. e.Cache.e_metrics.Pipeline.m_wall,
          v + e.Cache.e_metrics.Pipeline.m_pta_visits,
          s + e.Cache.e_metrics.Pipeline.m_pta_steps ))
      (0.0, 0, 0) entries
  in
  let cold_wall, cold_visits, cold_steps = sums cold in
  let ref_wall, ref_visits, ref_steps = sums reference in
  let cold_frontend =
    List.fold_left
      (fun acc ((_ : Corpus.app), (e : Cache.entry)) ->
        acc +. Pipeline.frontend_sum e.Cache.e_metrics)
      0.0 cold
  in
  let speedup a b = if b > 0.0 then a /. b else 0.0 in
  let find_ref (app : Corpus.app) =
    List.find_opt (fun ((a : Corpus.app), _) -> String.equal a.Corpus.name app.Corpus.name)
      reference
  in
  if json then begin
    let buf = Buffer.create 8192 in
    Buffer.add_string buf (Printf.sprintf "{\"jobs\":%d,\"apps\":[" jobs);
    List.iteri
      (fun i ((app : Corpus.app), (e : Cache.entry)) ->
        if i > 0 then Buffer.add_char buf ',';
        let rw, rv, rs =
          match find_ref app with
          | Some (_, r) ->
              ( r.Cache.e_metrics.Pipeline.m_wall,
                r.Cache.e_metrics.Pipeline.m_pta_visits,
                r.Cache.e_metrics.Pipeline.m_pta_steps )
          | None -> (0.0, 0, 0)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":%S,\"cold_wall\":%.6f,\"frontend\":%.6f,\"ref_wall\":%.6f,\"pta_visits\":%d,\"pta_visits_ref\":%d,\"pta_steps\":%d,\"pta_steps_ref\":%d}"
             app.Corpus.name e.Cache.e_metrics.Pipeline.m_wall
             (Pipeline.frontend_sum e.Cache.e_metrics) rw
             e.Cache.e_metrics.Pipeline.m_pta_visits rv
             e.Cache.e_metrics.Pipeline.m_pta_steps rs))
      cold;
    Buffer.add_string buf
      (Printf.sprintf
         "],\"totals\":{\"apps\":%d,\"warm_hits\":%d,\"cold_elapsed\":%.6f,\"warm_elapsed\":%.6f,\"reference_elapsed\":%.6f,\"cold_wall\":%.6f,\"cold_frontend\":%.6f,\"reference_wall\":%.6f,\"speedup_cold_vs_reference\":%.3f,\"speedup_warm_vs_cold\":%.1f,\"pta_visits\":%d,\"pta_visits_ref\":%d,\"pta_steps\":%d,\"pta_steps_ref\":%d}}"
         (List.length cold) warm_hits cold_elapsed warm_elapsed ref_elapsed cold_wall
         cold_frontend ref_wall
         (speedup ref_elapsed cold_elapsed)
         (speedup cold_elapsed warm_elapsed)
         cold_visits ref_visits cold_steps ref_steps);
    let doc = Buffer.contents buf in
    let oc = open_out_bin bench_json_file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc);
    print_endline doc
  end
  else begin
    Eval.section
      "Performance: cold (worklist + cache fill) vs warm (cache hits) vs reference solver";
    let rows =
      List.map
        (fun ((app : Corpus.app), (e : Cache.entry)) ->
          let rw, rv, rs =
            match find_ref app with
            | Some (_, r) ->
                ( r.Cache.e_metrics.Pipeline.m_wall,
                  r.Cache.e_metrics.Pipeline.m_pta_visits,
                  r.Cache.e_metrics.Pipeline.m_pta_steps )
            | None -> (0.0, 0, 0)
          in
          [
            app.Corpus.name;
            Printf.sprintf "%.4f" e.Cache.e_metrics.Pipeline.m_wall;
            Printf.sprintf "%.4f" rw;
            string_of_int e.Cache.e_metrics.Pipeline.m_pta_visits;
            string_of_int rv;
            string_of_int e.Cache.e_metrics.Pipeline.m_pta_steps;
            string_of_int rs;
          ])
        cold
    in
    Eval.print_table
      ~header:[ "app"; "cold s"; "ref s"; "visits"; "visits-ref"; "steps"; "steps-ref" ]
      rows;
    Printf.printf
      "\nBatch elapsed (%d job%s): cold %.3f s, warm %.3f s (%d/%d hits), reference %.3f s.\n"
      jobs (if jobs = 1 then "" else "s")
      cold_elapsed warm_elapsed warm_hits (List.length cold) ref_elapsed;
    Printf.printf
      "Speedups: cold vs reference %.2fx (PTA visits %d -> %d, steps %d -> %d); warm vs cold %.0fx.\n"
      (speedup ref_elapsed cold_elapsed)
      ref_visits cold_visits ref_steps cold_steps
      (speedup cold_elapsed warm_elapsed)
  end

(* ---------------------------------------------------------------- *)
(* serve: daemon throughput and latency                               *)
(* ---------------------------------------------------------------- *)

let bench6_json_file = "BENCH_6.json"

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

(* Spawn a `nadroid serve` daemon (fork + in-process Server.run — forked
   BEFORE any client domain exists, so the child is single-domain), then
   drive [clients] concurrent connections over the corpus, [rounds]
   requests per app in total. Every response is compared byte-for-byte
   against the output the cold CLI would print for that app — the
   daemon's warm state must never show through. Emits sustained req/s
   and p50/p99 latency; under --json the document also lands in
   BENCH_6.json. Fails (exit 1) on any response mismatch or a daemon
   that does not exit 0 after the graceful shutdown. *)
let serve_bench ~jobs ~json ~clients ~rounds () =
  let module Server = Nadroid_serve.Server in
  let module Protocol = Nadroid_serve.Protocol in
  let module Client = Nadroid_serve.Client in
  let apps = Array.of_list (Lazy.force Corpus.all) in
  let napps = Array.length apps in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nadroid-bench-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* child: the daemon. _exit, not exit — at_exit in the forked
         image would replay the parent's buffered output *)
      (try
         Server.run
           ~config:
             {
               Server.default_config with
               Server.jobs = Some jobs;
               quiet = true;
               install_signals = false;
             }
           (`Unix sock)
       with _ -> Unix._exit 1);
      Unix._exit 0
  | daemon_pid ->
      (* expected responses: exactly the daemon's own rendering path,
         run cold in this process while the daemon boots *)
      let expected =
        Array.of_list
          (Nadroid_core.Parallel.map ~jobs
             (fun (app : Corpus.app) ->
               Protocol.analyze_response ~name:app.Corpus.name
                 (Fault.wrap (fun () ->
                      Cache.entry_of_result
                        (Pipeline.analyze ~file:app.Corpus.name app.Corpus.source))))
             (Array.to_list apps))
      in
      let request_of (app : Corpus.app) =
        Protocol.render_analyze
          {
            Protocol.a_path = None;
            a_source = Some app.Corpus.source;
            a_file = Some app.Corpus.name;
            a_k = None;
            a_sound_only = false;
            a_deadline = None;
            a_budget_pta = None;
            a_budget_tuples = None;
            a_budget_explorer = None;
            a_cache = None;
          }
      in
      let total = rounds * napps in
      let counter = Atomic.make 0 in
      let t0 = Clock.now () in
      let worker () =
        let c = Client.connect (`Unix sock) in
        let lats = ref [] and mismatches = ref 0 in
        let rec loop () =
          let i = Atomic.fetch_and_add counter 1 in
          if i < total then begin
            let app = apps.(i mod napps) in
            let s = Clock.now () in
            let response = Client.request c (request_of app) in
            lats := (Clock.now () -. s) :: !lats;
            if not (String.equal response expected.(i mod napps)) then begin
              incr mismatches;
              Printf.eprintf "serve-bench: response for %s differs from cold run\n"
                app.Corpus.name
            end;
            loop ()
          end
        in
        loop ();
        Client.close c;
        (!lats, !mismatches)
      in
      let domains = List.init clients (fun _ -> Domain.spawn worker) in
      let per_client = List.map Domain.join domains in
      let elapsed = Clock.now () -. t0 in
      let lats =
        Array.of_list (List.concat_map (fun (ls, _) -> ls) per_client)
      in
      let mismatches = List.fold_left (fun a (_, m) -> a + m) 0 per_client in
      Array.sort compare lats;
      (* graceful shutdown, then insist the daemon exits 0 *)
      let c = Client.connect (`Unix sock) in
      let shutdown_ack = Client.request c Protocol.shutdown_request in
      Client.close c;
      let daemon_exit =
        match Unix.waitpid [] daemon_pid with
        | _, Unix.WEXITED n -> n
        | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n
      in
      let rps = if elapsed > 0.0 then float_of_int total /. elapsed else 0.0 in
      let p50 = percentile lats 0.50 and p99 = percentile lats 0.99 in
      let lmin = if Array.length lats > 0 then lats.(0) else 0.0 in
      let lmax =
        if Array.length lats > 0 then lats.(Array.length lats - 1) else 0.0
      in
      if json then begin
        let doc =
          Printf.sprintf
            "{\"clients\":%d,\"jobs\":%d,\"apps\":%d,\"requests\":%d,\"elapsed\":%.6f,\"rps\":%.3f,\"latency\":{\"p50\":%.6f,\"p99\":%.6f,\"min\":%.6f,\"max\":%.6f},\"identical\":%d,\"mismatches\":%d,\"shutdown_ack\":%s,\"daemon_exit\":%d}"
            clients jobs napps total elapsed rps p50 p99 lmin lmax
            (total - mismatches) mismatches
            (Protocol.escape_string shutdown_ack)
            daemon_exit
        in
        let oc = open_out_bin bench6_json_file in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc);
        print_endline doc
      end
      else begin
        Eval.section
          "Serve: daemon throughput over the corpus (every response checked against a cold run)";
        Printf.printf
          "  %d requests (%d apps x %d rounds) over %d client connections, %d worker domain(s)\n"
          total napps rounds clients jobs;
        Printf.printf "  sustained: %8.2f req/s  (%.3f s elapsed)\n" rps elapsed;
        Printf.printf "  latency  : p50 %.4f s, p99 %.4f s, min %.4f s, max %.4f s\n" p50 p99
          lmin lmax;
        Printf.printf "  identity : %d/%d responses byte-identical to the cold CLI\n"
          (total - mismatches) total;
        Printf.printf "  shutdown : %s (daemon exit %d)\n" shutdown_ack daemon_exit
      end;
      if mismatches > 0 || daemon_exit <> 0 then exit 1

(* ---------------------------------------------------------------- *)
(* Ablations                                                          *)
(* ---------------------------------------------------------------- *)

(* A micro-program whose precision depends on the heap context depth:
   both activities allocate their [Data] at the same site (the inherited
   factory), so k<2 merges the two objects and reports a spurious
   cross-activity UAF, while k=2 separates them. *)
let k_sensitivity_demo =
  {|
class Buf { field int n; method void use() { n = n + 1; } }
class Data { field Buf buf; }
class BaseActivity extends Activity {
  method Data mk() { return new Data(); }
}
class AlphaActivity extends BaseActivity {
  field Data cache;
  method void onCreate() { cache = this.mk(); cache.buf = new Buf(); }
  method void onStart() {
    this.findViewById(1).setOnClickListener(new OnClickListener() {
      method void onClick(View v) { cache.buf = null; }
    });
  }
}
class BetaActivity extends BaseActivity {
  field Data cache;
  method void onCreate() { cache = this.mk(); cache.buf = new Buf(); }
  method void onStart() {
    this.findViewById(2).setOnClickListener(new OnClickListener() {
      method void onClick(View v) { cache.buf.use(); }
    });
  }
}
|}

let ablation () =
  Eval.section "Ablation: k-object-sensitivity depth (paper uses k=2, §8.8)";
  Printf.printf "  corpus-wide cost/precision:\n";
  List.iter
    (fun k ->
      let t0 = Clock.now () in
      let p, u =
        List.fold_left
          (fun (p, u) (app : Corpus.app) ->
            let cfg = { Pipeline.default_config with Pipeline.k } in
            let t = Eval.analyze ~config:cfg app in
            (p + List.length t.Pipeline.potential, u + List.length t.Pipeline.after_unsound))
          (0, 0) (Lazy.force Corpus.all)
      in
      Printf.printf "    k=%d: potential=%4d remaining=%3d  (%.2f s)\n" k p u
        (Clock.now () -. t0))
    [ 0; 1; 2 ];
  Printf.printf
    "  shared-factory micro-program (distinct activities allocating at one site):\n";
  List.iter
    (fun k ->
      let cfg = { Pipeline.default_config with Pipeline.k } in
      let t = Pipeline.analyze ~config:cfg ~file:"k-demo" k_sensitivity_demo in
      Printf.printf "    k=%d: %d warning(s)%s\n" k
        (List.length t.Pipeline.after_unsound)
        (if List.length t.Pipeline.after_unsound > 0 then
           "  <- spurious cross-activity alias from merged heap contexts"
         else "  <- contexts keep the two caches apart"))
    [ 0; 1; 2 ];
  Eval.section
    "Ablation: atomicity-aware IG/IA (nAdroid) vs DEvA-style unconditional application \
     (§6.1.2)";
  List.iter
    (fun atomic ->
      let harmful = ref 0 and remaining = ref 0 in
      List.iter
        (fun (app : Corpus.app) ->
          let cfg = { Pipeline.default_config with Pipeline.atomic_ig = atomic } in
          let e = Eval.evaluate ~config:cfg app in
          harmful := !harmful + Eval.harmful_count e;
          remaining := !remaining + List.length e.Eval.result.Pipeline.after_unsound)
        ((* thread-heavy subjects, including the C-NT-rich injected
            variants where guarded cross-thread uses abound *)
         Option.get (Corpus.find "FireFox")
         :: Option.get (Corpus.find "MyTracks_1")
         :: Option.get (Corpus.find "Aard")
         :: List.filter_map
              (fun (inj : Corpus.injected_app) ->
                if List.mem inj.Corpus.inj_base.Corpus.name [ "SGTPuzzles"; "Music"; "K9Mail" ]
                then
                  Some
                    {
                      inj.Corpus.inj_base with
                      Corpus.source = inj.Corpus.inj_source;
                      seeded = inj.Corpus.inj_base.Corpus.seeded @ inj.Corpus.inj_seeded;
                    }
                else None)
              (Lazy.force Corpus.injected));
      Printf.printf "  atomic_ig=%b: remaining=%d validated-harmful=%d\n" atomic !remaining
        !harmful)
    [ true; false ];
  Printf.printf
    "  (unconditional IG/IA prunes guarded-but-unsynchronised uses, losing true C-NT/C-RT \
     bugs — DEvA's false-negative source, §2.3)\n";
  Eval.section
    "Ablation: Chord's join-based MHP analysis (dropped by the paper, §5)";
  let pruned_by_mhp, total_cnt =
    List.fold_left
      (fun (p, n) (app : Corpus.app) ->
        let t = Eval.analyze app in
        let after = Nadroid_core.Mhp.prune t.Pipeline.threads t.Pipeline.potential in
        (p + (List.length t.Pipeline.potential - List.length after), n + List.length t.Pipeline.potential))
      (0, 0) (Lazy.force Corpus.all)
  in
  Printf.printf
    "  MHP would prune %d / %d potential warnings (%.2f%%) — blocking synchronisation is rare      on Android, which is why the paper drops MHP in favour of the HB filters.\n" pruned_by_mhp
    total_cnt
    (Eval.pct pruned_by_mhp total_cnt);
  Eval.section "Ablation: unsound filters off (sound-only operation, §6.2)";
  let s, u =
    List.fold_left
      (fun (s, u) (app : Corpus.app) ->
        let t = Eval.analyze app in
        (s + List.length t.Pipeline.after_sound, u + List.length t.Pipeline.after_unsound))
      (0, 0) (Lazy.force Corpus.all)
  in
  Printf.printf
    "  sound-only report: %d warnings; with unsound filters (as ranking): %d — the paper's \
     argument for shipping unsound filters as a ranking layer.\n" s u

(* ---------------------------------------------------------------- *)
(* §9 extension: no-sleep / energy bugs                               *)
(* ---------------------------------------------------------------- *)

let extension () =
  Eval.section
    "Extension (§9): no-sleep / energy bugs as acquire/release ordering violations";
  let scenarios =
    [
      ( "teardown-release (safe)",
        {|class A extends Activity { field WakeLock wl;
            method void onCreate() { wl = this.getPowerManager().newWakeLock("t"); }
            method void onResume() { wl.acquire(); }
            method void onPause() { wl.release(); } }|} );
      ( "release-in-click (unordered)",
        {|class A extends Activity { field WakeLock wl;
            method void onCreate() {
              wl = this.getPowerManager().newWakeLock("t");
              this.findViewById(1).setOnClickListener(new OnClickListener() {
                method void onClick(View v) { wl.release(); } });
            }
            method void onResume() { wl.acquire(); } }|} );
      ( "error-path leak",
        {|class A extends Activity { field WakeLock wl; field bool bad;
            method void onResume() {
              wl = this.getPowerManager().newWakeLock("t");
              wl.acquire();
              if (bad) { log("skip"); } else { wl.release(); }
            } }|} );
      ( "no release at all",
        {|class S extends Service { field WakeLock wl;
            method void onCreate() { wl = this.getPowerManager().newWakeLock("t"); }
            method void onStartCommand(Intent i) { wl.acquire(); } }|} );
    ]
  in
  List.iter
    (fun (name, src) ->
      let t = Pipeline.analyze ~file:(name ^ ".mand") src in
      let ws = Nadroid_core.Energy.detect t.Pipeline.threads in
      Printf.printf "  %-30s %d warning(s)%s\n" name (List.length ws)
        (match ws with
        | [] -> ""
        | w :: _ -> Fmt.str "  [%a]" Nadroid_core.Energy.pp_kind w.Nadroid_core.Energy.nw_kind))
    scenarios;
  Printf.printf
    "  (same threadification + points-to machinery; the teardown filter is the MHB analogue)\n"

(* ---------------------------------------------------------------- *)
(* crash: supervision overhead and kill/resume latency (BENCH_7)      *)
(* ---------------------------------------------------------------- *)

module Journal = Nadroid_core.Journal
module Supervise = Nadroid_core.Supervise
module Faultinject = Nadroid_core.Faultinject

let bench7_json_file = "BENCH_7.json"

(* One journaled corpus batch — the `nadroid analyze --journal` shape,
   in-process: replayed records short-circuit, fresh results append.
   Returns the batch digest (one MD5 over every entry's counts and
   report bytes in corpus order) and the replay count; kill/resume
   identity is judged on the digest. *)
let journaled_batch ~jobs ~jpath ~resume apps : string * int =
  let journal, replayed = Journal.open_ ~path:jpath ~resume in
  let idx = Journal.latest replayed in
  let config = Pipeline.default_config in
  let reused = Atomic.make 0 in
  let task (app : Corpus.app) =
    let key = Cache.key ~config app.Corpus.source in
    match Hashtbl.find_opt idx app.Corpus.name with
    | Some r when String.equal r.Journal.j_key key -> (
        ignore (Atomic.fetch_and_add reused 1);
        match r.Journal.j_result with
        | Ok e -> e
        | Error f -> raise (Fault.Fault f))
    | _ ->
        let e =
          Cache.entry_of_result
            (Pipeline.analyze ~config ~file:app.Corpus.name app.Corpus.source)
        in
        Journal.append journal
          { Journal.j_name = app.Corpus.name; j_key = key; j_result = Ok e };
        e
  in
  let entries =
    List.map
      (function Ok e -> e | Error e -> raise e)
      (Nadroid_core.Parallel.map_result ~jobs task apps)
  in
  Journal.close journal;
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Cache.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d/%d/%d\n%s\n" e.Cache.e_potential e.Cache.e_after_sound
           e.Cache.e_after_unsound e.Cache.e_report))
    entries;
  (Digest.to_hex (Digest.string (Buffer.contents buf)), Atomic.get reused)

(* Run one journaled batch in a child process (re-exec of this binary in
   the hidden `crash-batch` mode — fork is off-limits once any domain
   has existed). [faults] becomes the child's NADROID_FAULTS, so the
   kill lands through the same env-armed path production workers use.
   Returns the wait status and the elapsed wall time. *)
let run_batch_child ?faults ~jobs ~jpath ~dfile ~resume () =
  let env =
    Array.of_list
      (List.filter
         (fun e -> not (String.starts_with ~prefix:(Faultinject.env_var ^ "=") e))
         (Array.to_list (Unix.environment ()))
      @ (match faults with None -> [] | Some f -> [ Faultinject.env_var ^ "=" ^ f ]))
  in
  flush stdout;
  flush stderr;
  let t0 = Clock.now () in
  let pid =
    Unix.create_process_env Sys.executable_name
      [|
        Sys.executable_name; "crash-batch"; jpath; dfile;
        (if resume then "1" else "0"); string_of_int jobs;
      |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  let _, status = Unix.waitpid [] pid in
  (status, Clock.now () -. t0)

let read_small_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Crash-survival economics: what supervision costs on a clean batch
   (apps/sec, plain vs one-process-per-app workers) and what resume
   saves after a mid-batch SIGKILL (a child armed to die at the middle
   journal append, then a --resume-shaped rerun whose digest must equal
   the uninterrupted run's). Under --json the document also lands in
   BENCH_7.json. Fails (exit 1) on any supervised fault, a child that
   does not die/exit as scripted, or a digest mismatch. *)
let crash ~jobs ~json () =
  let apps = Lazy.force Corpus.all in
  let n = List.length apps in
  let config = Pipeline.default_config in
  (* plain in-process batch *)
  let t0 = Clock.now () in
  let plain =
    Eval.keep_ok ~what:"crash-plain" ~name:Eval.app_name
      (Corpus.analyze_all ~config ~jobs apps)
  in
  let plain_elapsed = Clock.now () -. t0 in
  if List.length plain < n then exit 1;
  (* supervised batch: same apps, each in a worker process *)
  let sp = Supervise.create ~jobs () in
  let t0 = Clock.now () in
  let sup =
    Nadroid_core.Parallel.map_result ~jobs
      (fun (app : Corpus.app) ->
        match Supervise.analyze sp ~config ~file:app.Corpus.name app.Corpus.source with
        | Ok e -> e
        | Error f -> raise (Fault.Fault f))
      apps
  in
  let sup_elapsed = Clock.now () -. t0 in
  Supervise.shutdown sp;
  let sup_ok = List.length (List.filter Result.is_ok sup) in
  if sup_ok < n then begin
    Printf.eprintf "crash: %d of %d supervised analyses faulted\n" (n - sup_ok) n;
    exit 1
  end;
  (* kill + resume over a journaled batch *)
  let dir = Printf.sprintf "_crash_bench.%d" (Unix.getpid ()) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let jpath = Filename.concat dir "journal" in
  let dfile = Filename.concat dir "digest" in
  (* every bail below leaves through [exit], which does NOT unwind the
     stack (no Fun.protect finalizers) — clean the scratch dir from
     at_exit so failure paths can't leak it into the repo root *)
  at_exit (fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ jpath; dfile ];
      try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let expect_exit0 what = function
    | Unix.WEXITED 0 -> ()
    | s ->
        Printf.eprintf "crash: %s child %s\n" what (Supervise.status_string s);
        exit 1
  in
  (try Sys.remove jpath with Sys_error _ -> ());
  let full_status, full_elapsed = run_batch_child ~jobs ~jpath ~dfile ~resume:false () in
  expect_exit0 "uninterrupted" full_status;
  let full_digest = read_small_file dfile in
  (try Sys.remove jpath with Sys_error _ -> ());
  let kill_at = max 1 (n / 2) in
  let kill_status, _ =
    run_batch_child
      ~faults:(Printf.sprintf "journal_append:%d:kill" kill_at)
      ~jobs ~jpath ~dfile ~resume:false ()
  in
  (match kill_status with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | s ->
      Printf.eprintf "crash: expected the batch to die by SIGKILL, got %s\n"
        (Supervise.status_string s);
      exit 1);
  let survivors = List.length (Journal.replay ~path:jpath) in
  let resume_status, resume_elapsed = run_batch_child ~jobs ~jpath ~dfile ~resume:true () in
  expect_exit0 "resume" resume_status;
  let identical = String.equal full_digest (read_small_file dfile) in
  if not identical then begin
    Printf.eprintf "crash: resumed batch digest differs from the uninterrupted run\n";
    exit 1
  end;
  let rate t = if t > 0.0 then float_of_int n /. t else 0.0 in
  let ratio a b = if b > 0.0 then a /. b else 0.0 in
  if json then begin
    let doc =
      Printf.sprintf
        "{\"jobs\":%d,\"plain\":{\"apps\":%d,\"elapsed\":%.6f,\"apps_per_sec\":%.3f},\"supervised\":{\"apps\":%d,\"elapsed\":%.6f,\"apps_per_sec\":%.3f,\"overhead_vs_plain\":%.3f},\"kill_resume\":{\"apps\":%d,\"kill_at_append\":%d,\"journal_records_at_kill\":%d,\"full_elapsed\":%.6f,\"resume_elapsed\":%.6f,\"resume_speedup\":%.3f,\"identical\":%b}}"
        jobs n plain_elapsed (rate plain_elapsed) n sup_elapsed (rate sup_elapsed)
        (ratio sup_elapsed plain_elapsed)
        n kill_at survivors full_elapsed resume_elapsed
        (ratio full_elapsed resume_elapsed)
        identical
    in
    let oc = open_out_bin bench7_json_file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc);
    print_endline doc
  end
  else begin
    Eval.section "Crash survival: supervision overhead and kill/resume latency";
    Printf.printf
      "  plain batch:      %d apps in %.3f s (%.1f apps/s, %d jobs)\n" n plain_elapsed
      (rate plain_elapsed) jobs;
    Printf.printf
      "  supervised batch: %d apps in %.3f s (%.1f apps/s, %.2fx the plain wall)\n" n
      sup_elapsed (rate sup_elapsed)
      (ratio sup_elapsed plain_elapsed);
    Printf.printf
      "  kill/resume:      SIGKILL at append %d left %d journaled; resume %.3f s vs full %.3f s (%.1fx), digests %s\n"
      kill_at survivors resume_elapsed full_elapsed
      (ratio full_elapsed resume_elapsed)
      (if identical then "identical" else "DIFFER")
  end

(* ---------------------------------------------------------------- *)

let () =
  (* usage: main.exe [EXPERIMENT] [--jobs N] [--json]
                     [--cache] [--no-cache] [--cache-dir DIR]
                     [--cache-max-bytes BYTES]
     --jobs parallelizes the corpus drivers over N domains (default: all
     cores); --json makes `timing`/`perf` emit machine-readable bench
     points (perf also writes BENCH_9.json) and switches every batch
     failure inventory to JSON lines on stderr; --cache routes `timing`
     through the analysis cache; `perf` always uses a scratch cache
     under --cache-dir; --cache-max-bytes LRU-evicts the cache to that
     size after each store. *)
  (* a marked child (supervised worker) serves analyses and never
     reaches the drivers; injection specs in the environment apply to
     this process too *)
  Supervise.worker_check ();
  (match Faultinject.init_from_env () with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "bad %s: %s\n" Faultinject.env_var e;
      exit 2);
  (* hidden child mode for the crash driver: one journaled corpus batch,
     digest written to a file (see run_batch_child) *)
  (match Array.to_list Sys.argv with
  | _ :: "crash-batch" :: jpath :: dfile :: resume :: jobs :: _ ->
      ignore (Lazy.force Nadroid_lang.Builtins.program);
      let d, _ =
        journaled_batch ~jobs:(int_of_string jobs) ~jpath
          ~resume:(String.equal resume "1")
          (Lazy.force Corpus.all)
      in
      let oc = open_out_bin dfile in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc d);
      exit 0
  | _ -> ());
  let which = ref "all" and jobs = ref (Nadroid_core.Parallel.default_jobs ()) and json = ref false in
  let use_cache = ref false
  and no_cache = ref false
  and cache_dir = ref Nadroid_core.Cache.default_dir
  and cache_max_bytes = ref None in
  let clients = ref 8 and rounds = ref 5 in
  let fleet_apps = ref 5000
  and fleet_adversarial = ref 0.02
  and fleet_seed = ref 0
  and fleet_window = ref Nadroid_core.Parallel.default_window in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--cache" :: rest ->
        use_cache := true;
        parse rest
    | "--no-cache" :: rest ->
        no_cache := true;
        parse rest
    | "--cache-dir" :: dir :: rest ->
        cache_dir := dir;
        parse rest
    | "--cache-max-bytes" :: n :: rest ->
        (match int_of_string_opt n with
        | Some b when b >= 0 -> cache_max_bytes := Some b
        | Some _ | None ->
            Printf.eprintf "--cache-max-bytes expects a non-negative integer, got %s\n" n;
            exit 2);
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            exit 2);
        parse rest
    | "--clients" :: n :: rest ->
        (match int_of_string_opt n with
        | Some c when c >= 1 -> clients := c
        | Some _ | None ->
            Printf.eprintf "--clients expects a positive integer, got %s\n" n;
            exit 2);
        parse rest
    | "--rounds" :: n :: rest ->
        (match int_of_string_opt n with
        | Some r when r >= 1 -> rounds := r
        | Some _ | None ->
            Printf.eprintf "--rounds expects a positive integer, got %s\n" n;
            exit 2);
        parse rest
    | "--apps" :: n :: rest ->
        (match int_of_string_opt n with
        | Some a when a >= 1 -> fleet_apps := a
        | Some _ | None ->
            Printf.eprintf "--apps expects a positive integer, got %s\n" n;
            exit 2);
        parse rest
    | "--adversarial" :: n :: rest ->
        (match float_of_string_opt n with
        | Some f when f >= 0.0 && f <= 1.0 -> fleet_adversarial := f
        | Some _ | None ->
            Printf.eprintf "--adversarial expects a fraction in [0,1], got %s\n" n;
            exit 2);
        parse rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> fleet_seed := s
        | None ->
            Printf.eprintf "--seed expects an integer, got %s\n" n;
            exit 2);
        parse rest
    | "--window" :: n :: rest ->
        (match int_of_string_opt n with
        | Some w when w >= 1 -> fleet_window := w
        | Some _ | None ->
            Printf.eprintf "--window expects a positive integer, got %s\n" n;
            exit 2);
        parse rest
    | arg :: rest ->
        which := arg;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = !jobs and json = !json in
  let clients = !clients and rounds = !rounds in
  let cache_dir = !cache_dir and cache_max_bytes = !cache_max_bytes in
  let cache = if !use_cache && not !no_cache then Some cache_dir else None in
  (* under --json, batch failure inventories also go out as JSON lines *)
  Eval.json_faults := json;
  (* force the shared builtin-program lazy before any domain spawns *)
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let all =
    [
      ("table1", table1 ~jobs);
      ("fig5", fig5 ~jobs);
      ("table2", table2 ~jobs);
      ("table3", table3);
      ("timing", timing ~jobs ~json ~cache ~cache_max_bytes);
      ("perf", perf ~jobs ~json ~cache_dir ~cache_max_bytes);
      ("serve", serve_bench ~jobs ~json ~clients ~rounds);
      ("crash", crash ~jobs ~json);
      ("ablation", ablation);
      ("extension", extension);
    ]
  in
  (* fleet is opt-in only: a 5000-app mega-corpus has no place in the
     `all` sweep *)
  let extras =
    [
      ( "fleet",
        fun () ->
          Fleet.run ~jobs ~json ~window:!fleet_window ~apps:!fleet_apps
            ~adversarial:!fleet_adversarial ~seed:!fleet_seed ~cache
            ~cache_max_bytes () );
    ]
  in
  (match List.assoc_opt !which (all @ extras) with
  | Some f -> f ()
  | None ->
      if String.equal !which "all" then List.iter (fun (_, f) -> f ()) all
      else begin
        Printf.eprintf "unknown experiment %s (expected: all %s %s)\n" !which
          (String.concat " " (List.map fst all))
          (String.concat " " (List.map fst extras));
        exit 2
      end);
  (* partial-failure batches printed their tables; still exit with the
     worst fault class so CI notices *)
  if !Eval.worst_exit > 0 then exit !Eval.worst_exit
