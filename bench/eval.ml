(* Shared evaluation plumbing for the benchmark drivers: analyzing corpus
   apps, validating survivors, attributing false positives to their
   seeded §8.5 cause, and printing aligned tables. *)

open Nadroid_corpus
module Pipeline = Nadroid_core.Pipeline
module Detect = Nadroid_core.Detect
module Filters = Nadroid_core.Filters
module Classify = Nadroid_core.Classify
module Explorer = Nadroid_dynamic.Explorer

type evaluated = {
  app : Corpus.app;
  result : Pipeline.t;
  row : Pipeline.row;
  (* survivors paired with their dynamic-validation verdict *)
  verdicts : (Detect.warning * bool) list;
}

let analyze ?config (app : Corpus.app) : Pipeline.t =
  Pipeline.analyze ?config ~file:app.Corpus.name app.Corpus.source

let validation_runs = 120

let validation_steps = 70

let evaluate ?config (app : Corpus.app) : evaluated =
  let result = analyze ?config app in
  let verdicts =
    List.map
      (fun w ->
        let v =
          Explorer.validate result.Pipeline.prog w ~runs:validation_runs
            ~max_steps:validation_steps ()
        in
        (w, v.Explorer.v_harmful))
      result.Pipeline.after_unsound
  in
  { app; result; row = Pipeline.row ~src:app.Corpus.source result; verdicts }

let harmful_count e = List.length (List.filter snd e.verdicts)

(* Evaluate a batch of apps (analysis + schedule validation) on a domain
   pool; output order is input order, independent of [jobs]. Failures
   are isolated per app (see {!Corpus.analyze_all}). *)
let evaluate_all ?config ?jobs (apps : Corpus.app list) :
    (Corpus.app * (evaluated, Nadroid_core.Fault.t) result) list =
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  List.map2
    (fun app r -> (app, Result.map_error Nadroid_core.Fault.of_exn r))
    apps
    (Nadroid_core.Parallel.map_result ?jobs (evaluate ?config) apps)

(* -- batch failure handling ------------------------------------------- *)

(* Worst fault exit code seen by [keep_ok] so far; the driver exits with
   it after printing every (partial) table, so a poisoned app costs its
   own row, not the batch. *)
let worst_exit = ref 0

(* When set (by the drivers' [--json] flag), [keep_ok] emits its failure
   inventory as one JSON line on stderr — always, even when empty, so a
   harvesting script sees one record per batch — instead of the aligned
   human summary. *)
let json_faults = ref false

(* Split a batch into its successful payloads, printing a failure
   summary for the rest on stderr (stdout may be machine-readable). *)
let keep_ok ~what ~name (results : ('a * ('b, Nadroid_core.Fault.t) result) list) :
    ('a * 'b) list =
  let faults =
    List.filter_map
      (fun (x, r) -> match r with Error f -> Some (x, f) | Ok _ -> None)
      results
  in
  if !json_faults then
    Printf.eprintf "{\"what\":%S,\"items\":%d,\"faults\":[%s]}\n" what (List.length results)
      (String.concat ","
         (List.map
            (fun (x, f) -> Nadroid_core.Report.fault_to_json ~name:(name x) f)
            faults))
  else begin
    match faults with
    | [] -> ()
    | _ :: _ ->
        Printf.eprintf "%s: %d/%d item(s) failed:\n" what (List.length faults)
          (List.length results);
        List.iter
          (fun (x, f) ->
            Printf.eprintf "  %-14s [%s] %s\n" (name x)
              (Nadroid_core.Fault.class_to_string f)
              (Nadroid_core.Fault.to_string f))
          faults
  end;
  if faults <> [] then
    worst_exit := max !worst_exit (Nadroid_core.Fault.worst_exit (List.map snd faults));
  List.filter_map (fun (x, r) -> match r with Ok v -> Some (x, v) | Error _ -> None) results

let app_name (a : Corpus.app) = a.Corpus.name

(* Map a warning back to the pattern that seeded it: generated fields are
   declared on the activity named in the seed record. *)
let seeded_of (app : Corpus.app) (w : Detect.warning) : Spec.seeded option =
  let fr = w.Detect.w_field in
  List.find_opt
    (fun (sd : Spec.seeded) ->
      String.equal sd.Spec.sd_field fr.Nadroid_lang.Sema.fr_name
      && String.equal sd.Spec.sd_activity fr.Nadroid_lang.Sema.fr_class)
    app.Corpus.seeded

(* §8.5 false-positive attribution for a surviving, non-harmful warning. *)
let fp_cause (app : Corpus.app) (w : Detect.warning) : string =
  match seeded_of app w with
  | Some { Spec.sd_expect = Spec.E_false_positive c; _ } -> Spec.fp_cause_to_string c
  | Some _ | None -> "unattributed"

(* -- table rendering -------------------------------------------------- *)

let print_rule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let print_row widths cells =
  print_string "|";
  List.iter2 (fun w c -> Printf.printf " %-*s |" w c) widths cells;
  print_newline ()

let print_table ~header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  print_rule widths;
  print_row widths header;
  print_rule widths;
  List.iter (print_row widths) rows;
  print_rule widths

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let section title =
  Printf.printf "\n== %s ==\n\n" title
