(* bench fleet: the corpus scale-out driver (BENCH_8).

   Analyzes a seeded {!Megacorpus} (Table 1-shaped sizes, a configurable
   adversarial fraction) through {!Parallel.stream} under each scheduler
   — work-stealing (the headline), the static per-domain split (the
   baseline it must beat on an adversarial mix) and, for corpora small
   enough, a sequential reference — and insists the three runs are
   byte-identical: every emitted per-app JSON object is folded into one
   chained digest, never accumulated, so the driver itself obeys the
   O(window) memory discipline it is benchmarking. Sources materialize
   lazily (generate→analyze→drop); with --cache the batch runs through
   the analysis cache under --cache-max-bytes pressure, on a scratch
   subdirectory cleared between runs so no run starts warm.

   Headline metrics: apps/sec, peak RSS (VmHWM — read after the steal
   run, which goes first, so later runs can't inflate it), per-domain
   utilization, and the straggler profile (per-app wall p50/p99/max).
   Exits 1 on any fault or any cross-scheduler digest mismatch. *)

open Nadroid_corpus
module Pipeline = Nadroid_core.Pipeline
module Fault = Nadroid_core.Fault
module Cache = Nadroid_core.Cache
module Parallel = Nadroid_core.Parallel
module Protocol = Nadroid_serve.Protocol
module Clock = Nadroid_clock.Clock

let bench8_json_file = "BENCH_8.json"

(* VmHWM (peak resident set) in kB from /proc/self/status; 0 where the
   proc filesystem is unavailable. *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0
            | line -> (
                match Scanf.sscanf line "VmHWM: %d kB" Fun.id with
                | kb -> kb
                | exception (Scanf.Scan_failure _ | End_of_file | Failure _) -> scan ())
          in
          scan ())

(* Clear a scratch cache directory (cache-written files only). *)
let rm_cache_dir dir =
  if Sys.file_exists dir then begin
    (match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".cache" || String.length f >= 5 && String.sub f 0 5 = ".tmp."
            then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          names);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

type run_stats = {
  rs_label : string;
  rs_elapsed : float;
  rs_digest : string;
  rs_faults : int;
  rs_walls : float array;  (** per-app wall, corpus order *)
  rs_util : (int * float) list;  (** (domain slot, busy seconds), slot-sorted *)
  rs_hwm_kb : int;  (** VmHWM right after this run *)
}

(* One full pass over the plan under [sched]. All mutation happens in
   [emit], which {!Parallel.stream} serializes, so no locking here. *)
let run_one ~label ~jobs ~window ~sched ~cache plan : run_stats =
  let n = Array.length plan in
  let config = Pipeline.default_config in
  let digest = ref (Digest.string "") in
  let faults = ref 0 in
  let walls = Array.make n 0.0 in
  let busy : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let t0 = Clock.now () in
  Parallel.stream ~jobs ~window ~sched ~n
    (fun i ->
      let app = plan.(i) in
      let src = Megacorpus.source app in
      let ts = Clock.now () in
      let r =
        Fault.wrap (fun () ->
            match cache with
            | Some (dir, max_bytes) ->
                fst
                  (Cache.analyze ~config ?max_bytes ~dir
                     ~file:app.Megacorpus.mc_name src)
            | None ->
                Cache.entry_of_result
                  (Pipeline.analyze ~config ~file:app.Megacorpus.mc_name src))
      in
      (r, Clock.now () -. ts, (Domain.self () :> int)))
    (fun i out ->
      let name = plan.(i).Megacorpus.mc_name in
      let line =
        match out with
        | Ok (Ok e, wall, dom) ->
            walls.(i) <- wall;
            Hashtbl.replace busy dom
              (wall +. Option.value ~default:0.0 (Hashtbl.find_opt busy dom));
            Protocol.entry_json ~name e
        | Ok (Error f, wall, dom) ->
            incr faults;
            walls.(i) <- wall;
            Hashtbl.replace busy dom
              (wall +. Option.value ~default:0.0 (Hashtbl.find_opt busy dom));
            Nadroid_core.Report.fault_to_json ~name f
        | Error e ->
            incr faults;
            Nadroid_core.Report.fault_to_json ~name (Fault.of_exn e)
      in
      digest := Digest.string (Digest.to_hex !digest ^ line));
  let elapsed = Clock.now () -. t0 in
  let util =
    List.sort compare (Hashtbl.fold (fun d b acc -> (d, b) :: acc) busy [])
  in
  {
    rs_label = label;
    rs_elapsed = elapsed;
    rs_digest = Digest.to_hex !digest;
    rs_faults = !faults;
    rs_walls = walls;
    rs_util = util;
    rs_hwm_kb = vm_hwm_kb ();
  }

(* Nearest-rank percentile over a sorted array (same rule as the serve
   bench). *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let straggler rs =
  let sorted = Array.copy rs.rs_walls in
  Array.sort compare sorted;
  (percentile sorted 0.50, percentile sorted 0.99, percentile sorted 1.0)

let run_json ~jobs rs =
  let p50, p99, wmax = straggler rs in
  let util_json =
    String.concat ","
      (List.mapi
         (fun i (_, b) ->
           Printf.sprintf "{\"slot\":%d,\"busy\":%.6f,\"util\":%.4f}" i b
             (if rs.rs_elapsed > 0.0 then b /. rs.rs_elapsed else 0.0))
         rs.rs_util)
  in
  ignore jobs;
  Printf.sprintf
    "{\"label\":%S,\"elapsed\":%.6f,\"apps_per_sec\":%.3f,\"faults\":%d,\"digest\":%S,\"straggler\":{\"p50\":%.6f,\"p99\":%.6f,\"max\":%.6f},\"utilization\":[%s],\"vm_hwm_kb\":%d}"
    rs.rs_label rs.rs_elapsed
    (if rs.rs_elapsed > 0.0 then
       float_of_int (Array.length rs.rs_walls) /. rs.rs_elapsed
     else 0.0)
    rs.rs_faults rs.rs_digest p50 p99 wmax util_json rs.rs_hwm_kb

let run ~jobs ~json ~window ~apps ~adversarial ~seed ~cache ~cache_max_bytes () =
  ignore (Lazy.force Nadroid_lang.Builtins.program);
  let spec =
    {
      Megacorpus.mc_seed = seed;
      mc_apps = apps;
      mc_adversarial = adversarial;
      mc_loc_scale = 1.0;
    }
  in
  let plan = Megacorpus.plan spec in
  let nadv =
    Array.fold_left
      (fun n (a : Megacorpus.app) ->
        match a.Megacorpus.mc_kind with Megacorpus.Adversarial _ -> n + 1 | Megacorpus.Normal _ -> n)
      0 plan
  in
  let scratch label =
    match cache with
    | None -> None
    | Some dir ->
        Some (Filename.concat dir (Printf.sprintf "fleet.%d.%s" (Unix.getpid ()) label))
  in
  let with_scratch label f =
    match scratch label with
    | None -> f None
    | Some dir ->
        rm_cache_dir dir;
        Fun.protect
          ~finally:(fun () -> rm_cache_dir dir)
          (fun () -> f (Some (dir, cache_max_bytes)))
  in
  (* steal first: its VmHWM reading is the honest peak of the headline
     run, not an echo of a previous pass *)
  let steal =
    with_scratch "steal" (fun cache ->
        run_one ~label:"steal" ~jobs ~window ~sched:Parallel.Steal ~cache plan)
  in
  let static =
    with_scratch "static" (fun cache ->
        run_one ~label:"static" ~jobs ~window ~sched:Parallel.Static ~cache plan)
  in
  let sequential =
    if apps <= 1000 then
      Some
        (with_scratch "seq" (fun cache ->
             run_one ~label:"sequential" ~jobs:1 ~window ~sched:Parallel.Static
               ~cache plan))
    else None
  in
  let runs = [ steal; static ] @ Option.to_list sequential in
  let identical =
    List.for_all (fun rs -> String.equal rs.rs_digest steal.rs_digest) runs
  in
  let total_faults = List.fold_left (fun a rs -> a + rs.rs_faults) 0 runs in
  let speedup =
    if steal.rs_elapsed > 0.0 then static.rs_elapsed /. steal.rs_elapsed else 0.0
  in
  if json then begin
    let doc =
      Printf.sprintf
        "{\"seed\":%d,\"apps\":%d,\"adversarial_fraction\":%.4f,\"adversarial_apps\":%d,\"jobs\":%d,\"window\":%d,\"cache\":%b,\"cache_max_bytes\":%s,\"runs\":[%s],\"apps_per_sec\":%.3f,\"speedup_steal_vs_static\":%.3f,\"digests_identical\":%b,\"faults\":%d,\"vm_hwm_kb\":%d}"
        seed apps adversarial nadv jobs window (cache <> None)
        (match cache_max_bytes with Some b -> string_of_int b | None -> "null")
        (String.concat "," (List.map (run_json ~jobs) runs))
        (if steal.rs_elapsed > 0.0 then
           float_of_int apps /. steal.rs_elapsed
         else 0.0)
        speedup identical total_faults (vm_hwm_kb ())
    in
    let oc = open_out_bin bench8_json_file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc);
    print_endline doc
  end
  else begin
    Eval.section
      (Printf.sprintf
         "Fleet: %d-app mega-corpus (seed %d, %d adversarial), %d jobs, window %d"
         apps seed nadv jobs window);
    List.iter
      (fun rs ->
        let p50, p99, wmax = straggler rs in
        Printf.printf
          "  %-10s %8.3f s  %8.1f apps/s  faults %d  straggler p50 %.4f p99 %.4f max %.4f\n"
          rs.rs_label rs.rs_elapsed
          (if rs.rs_elapsed > 0.0 then
             float_of_int apps /. rs.rs_elapsed
           else 0.0)
          rs.rs_faults p50 p99 wmax;
        List.iteri
          (fun i (_, b) ->
            Printf.printf "    slot %d: busy %.3f s (%.0f%%)\n" i b
              (if rs.rs_elapsed > 0.0 then 100.0 *. b /. rs.rs_elapsed else 0.0))
          rs.rs_util)
      runs;
    Printf.printf "  steal vs static: %.2fx;  digests %s;  peak RSS %d kB\n" speedup
      (if identical then "identical" else "DIFFER")
      (vm_hwm_kb ())
  end;
  if total_faults > 0 || not identical then exit 1
