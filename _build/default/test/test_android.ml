(* Android model tests: callback classification, API classification, the
   lifecycle automaton and its must-happens-before relation, component
   discovery. *)

open Nadroid_lang
open Nadroid_android

let sema src = Sema.of_source ~file:"t" src

let callback_tests =
  [
    Alcotest.test_case "activity lifecycle override" `Quick (fun () ->
        let s = sema "class A extends Activity { method void onResume() { } }" in
        match Callback.of_method s ~cls:"A" ~meth:"onResume" with
        | Some (Callback.Lifecycle "onResume") -> ()
        | _ -> Alcotest.fail "expected lifecycle classification");
    Alcotest.test_case "ui callback override" `Quick (fun () ->
        let s = sema "class A extends Activity { method void onBackPressed() { } }" in
        match Callback.of_method s ~cls:"A" ~meth:"onBackPressed" with
        | Some (Callback.Ui _) -> ()
        | _ -> Alcotest.fail "expected ui classification");
    Alcotest.test_case "listener override" `Quick (fun () ->
        let s = sema "class L extends OnClickListener { method void onClick(View v) { } }" in
        match Callback.of_method s ~cls:"L" ~meth:"onClick" with
        | Some (Callback.Ui "onClick") -> ()
        | _ -> Alcotest.fail "expected onClick");
    Alcotest.test_case "service connection callbacks" `Quick (fun () ->
        let s =
          sema
            "class Conn extends ServiceConnection { method void onServiceConnected(Binder b) { \
             } method void onServiceDisconnected() { } }"
        in
        (match Callback.of_method s ~cls:"Conn" ~meth:"onServiceConnected" with
        | Some (Callback.Service_conn `Connected) -> ()
        | _ -> Alcotest.fail "connected");
        match Callback.of_method s ~cls:"Conn" ~meth:"onServiceDisconnected" with
        | Some (Callback.Service_conn `Disconnected) -> ()
        | _ -> Alcotest.fail "disconnected");
    Alcotest.test_case "inherited callback through user base class" `Quick (fun () ->
        let s =
          sema
            "class Base extends Activity { method void onPause() { } } class A extends Base { \
             }"
        in
        match Callback.of_method s ~cls:"A" ~meth:"onPause" with
        | Some (Callback.Lifecycle "onPause") -> ()
        | _ -> Alcotest.fail "expected inherited classification");
    Alcotest.test_case "ordinary method is not a callback" `Quick (fun () ->
        let s = sema "class A extends Activity { method void refresh() { } }" in
        Alcotest.(check bool) "none" true (Callback.of_method s ~cls:"A" ~meth:"refresh" = None));
    Alcotest.test_case "onX name without framework super is not a callback" `Quick (fun () ->
        let s = sema "class Frag { method void onResume() { } }" in
        Alcotest.(check bool) "none" true (Callback.of_method s ~cls:"Frag" ~meth:"onResume" = None));
    Alcotest.test_case "doInBackground runs off the looper" `Quick (fun () ->
        Alcotest.(check bool) "bg" false (Callback.on_looper (Callback.Async `Background));
        Alcotest.(check bool) "post" true (Callback.on_looper (Callback.Async `Post));
        Alcotest.(check bool) "run" true (Callback.on_looper Callback.Runnable_run));
  ]

let api_sig ~cls ~meth =
  let s = sema "class Dummy { }" in
  match Sema.lookup_method s cls meth with
  | Some ms -> ms
  | None -> Alcotest.failf "no such builtin method %s.%s" cls meth

let api_tests =
  [
    Alcotest.test_case "spawn classification" `Quick (fun () ->
        Alcotest.(check bool) "thread.start" true
          (Api.classify (api_sig ~cls:"Thread" ~meth:"start") = Api.Spawn Api.Spawn_thread);
        Alcotest.(check bool) "executor.execute" true
          (Api.classify (api_sig ~cls:"Executor" ~meth:"execute") = Api.Spawn Api.Spawn_executor);
        Alcotest.(check bool) "asynctask.execute" true
          (Api.classify (api_sig ~cls:"AsyncTask" ~meth:"execute") = Api.Spawn Api.Spawn_async_task));
    Alcotest.test_case "post classification" `Quick (fun () ->
        Alcotest.(check bool) "handler.post" true
          (Api.classify (api_sig ~cls:"Handler" ~meth:"post") = Api.Post Api.Post_runnable);
        Alcotest.(check bool) "runOnUiThread" true
          (Api.classify (api_sig ~cls:"Activity" ~meth:"runOnUiThread") = Api.Post Api.Post_runnable);
        Alcotest.(check bool) "sendMessage" true
          (Api.classify (api_sig ~cls:"Handler" ~meth:"sendMessage") = Api.Post Api.Post_message));
    Alcotest.test_case "register and cancel classification" `Quick (fun () ->
        Alcotest.(check bool) "bindService" true
          (Api.classify (api_sig ~cls:"Activity" ~meth:"bindService") = Api.Register Api.Reg_service);
        Alcotest.(check bool) "finish" true
          (Api.classify (api_sig ~cls:"Activity" ~meth:"finish") = Api.Cancel Api.Cancel_finish);
        Alcotest.(check bool) "removeCallbacks" true
          (Api.classify (api_sig ~cls:"Handler" ~meth:"removeCallbacksAndMessages")
          = Api.Cancel Api.Cancel_remove_callbacks));
    Alcotest.test_case "triggered callbacks of a registration" `Quick (fun () ->
        Alcotest.(check (list string))
          "service conn"
          [ "onServiceConnected"; "onServiceDisconnected" ]
          (Api.triggered_callbacks (Api.Register Api.Reg_service));
        Alcotest.(check (list string))
          "asynctask"
          [ "onPreExecute"; "doInBackground"; "onProgressUpdate"; "onPostExecute" ]
          (Api.triggered_callbacks (Api.Spawn Api.Spawn_async_task)));
    Alcotest.test_case "user methods are Other" `Quick (fun () ->
        let s = sema "class A { method void post() { } }" in
        match Sema.lookup_method s "A" "post" with
        | Some ms -> Alcotest.(check bool) "other" true (Api.classify ms = Api.Other)
        | None -> Alcotest.fail "missing method");
  ]

let lifecycle_tests =
  [
    Alcotest.test_case "canonical happy path" `Quick (fun () ->
        let s =
          List.fold_left
            (fun st cb ->
              match Lifecycle.step st cb with
              | Some st' -> st'
              | None -> Alcotest.failf "transition %s refused" cb)
            Lifecycle.initial
            [ "onCreate"; "onStart"; "onResume"; "onPause"; "onStop"; "onDestroy" ]
        in
        Alcotest.(check bool) "destroyed" true (s = Lifecycle.S_destroyed));
    Alcotest.test_case "back edges exist" `Quick (fun () ->
        Alcotest.(check bool) "pause->resume" true
          (Lifecycle.step Lifecycle.S_paused "onResume" = Some Lifecycle.S_resumed);
        Alcotest.(check bool) "stop->restart" true
          (Lifecycle.step Lifecycle.S_stopped "onRestart" = Some Lifecycle.S_started));
    Alcotest.test_case "invalid transitions refused" `Quick (fun () ->
        Alcotest.(check bool) "no early resume" true
          (Lifecycle.step Lifecycle.S_init "onResume" = None);
        Alcotest.(check bool) "no resurrection" true
          (Lifecycle.step Lifecycle.S_destroyed "onCreate" = None));
    Alcotest.test_case "must_happen_before is onCreate-first / onDestroy-last" `Quick (fun () ->
        Alcotest.(check bool) "create < click" true
          (Lifecycle.must_happen_before ~first:"onCreate" ~second:"onClick");
        Alcotest.(check bool) "click < destroy" true
          (Lifecycle.must_happen_before ~first:"onClick" ~second:"onDestroy");
        Alcotest.(check bool) "no resume < pause" false
          (Lifecycle.must_happen_before ~first:"onResume" ~second:"onPause");
        Alcotest.(check bool) "no pause < resume" false
          (Lifecycle.must_happen_before ~first:"onPause" ~second:"onResume"));
    Alcotest.test_case "ui enabled only when visible" `Quick (fun () ->
        Alcotest.(check bool) "resumed" true (Lifecycle.ui_enabled Lifecycle.S_resumed);
        Alcotest.(check bool) "started" true (Lifecycle.ui_enabled Lifecycle.S_started);
        Alcotest.(check bool) "stopped" false (Lifecycle.ui_enabled Lifecycle.S_stopped);
        Alcotest.(check bool) "init" false (Lifecycle.ui_enabled Lifecycle.S_init));
  ]

(* every sequence the automaton generates is replayable step by step, and
   onCreate always comes first *)
let sequences_valid =
  QCheck2.Test.make ~name:"lifecycle sequences are consistent" ~count:50
    (QCheck2.Gen.int_range 1 7)
    (fun n ->
      let seqs = Lifecycle.sequences ~max_len:n in
      List.for_all
        (fun seq ->
          let rec replay st = function
            | [] -> true
            | cb :: rest -> (
                match Lifecycle.step st cb with Some st' -> replay st' rest | None -> false)
          in
          replay Lifecycle.initial seq
          && (match seq with [] -> true | first :: _ -> String.equal first "onCreate"))
        seqs)

let component_tests =
  [
    Alcotest.test_case "components discovered with their callbacks" `Quick (fun () ->
        let s =
          sema
            "class A extends Activity { method void onCreate() { } method void helper() { } } \
             class S extends Service { method void onDestroy() { } } class R extends \
             BroadcastReceiver { method void onReceive(Intent i) { } } class Plain { }"
        in
        let comps = Component.discover s in
        Alcotest.(check int) "three components" 3 (List.length comps);
        let a = List.find (fun c -> c.Component.cls = "A") comps in
        Alcotest.(check bool) "activity kind" true (a.Component.kind = Component.Activity);
        Alcotest.(check (list string)) "callbacks" [ "onCreate" ]
          (List.map fst a.Component.entry_callbacks));
    Alcotest.test_case "anonymous classes are not components" `Quick (fun () ->
        let s =
          sema
            "class A extends Activity { method void onCreate() { \
             this.registerReceiver(new BroadcastReceiver() { method void onReceive(Intent i) { \
             } }); } }"
        in
        let comps = Component.discover s in
        Alcotest.(check int) "only A" 1 (List.length comps));
  ]

let suite =
  [
    ("android-callback", callback_tests);
    ("android-api", api_tests);
    ("android-lifecycle", lifecycle_tests);
    ("android-lifecycle-properties", [ QCheck_alcotest.to_alcotest sequences_valid ]);
    ("android-component", component_tests);
  ]
