(* IR tests: lowering shapes (free tagging, branch facts, short-circuit),
   CFG structure, and the generic dataflow engine. *)

open Nadroid_lang
open Nadroid_ir

let body_of src ~cls ~meth =
  let prog = Prog.of_source ~file:"t" src in
  Prog.body_exn prog { Instr.mr_class = cls; mr_name = meth }

let instrs body = Cfg.fold_instrs (fun acc i -> i :: acc) [] body |> List.rev

let count_kind p body = List.length (List.filter p (instrs body))

let tests =
  [
    Alcotest.test_case "putfield of null is tagged as a free" `Quick (fun () ->
        let b =
          body_of "class C { field Runnable r; method void m() { r = null; } }" ~cls:"C"
            ~meth:"m"
        in
        Alcotest.(check int) "one free" 1
          (count_kind
             (fun i ->
               match i.Instr.i with
               | Instr.Putfield (_, _, _, Instr.Src_null) -> true
               | _ -> false)
             b));
    Alcotest.test_case "putfield of value is not a free" `Quick (fun () ->
        let b =
          body_of "class C { field Runnable r; method void m(Runnable x) { r = x; } }" ~cls:"C"
            ~meth:"m"
        in
        Alcotest.(check int) "no free" 0
          (count_kind
             (fun i ->
               match i.Instr.i with
               | Instr.Putfield (_, _, _, Instr.Src_null) -> true
               | _ -> false)
             b);
        Alcotest.(check int) "one store" 1
          (count_kind
             (fun i -> match i.Instr.i with Instr.Putfield _ -> true | _ -> false)
             b));
    Alcotest.test_case "null-check records branch facts" `Quick (fun () ->
        let b =
          body_of
            "class C { field Runnable r; method void m() { if (r != null) { log(\"y\"); } } }"
            ~cls:"C" ~meth:"m"
        in
        let found = ref false in
        Array.iter
          (fun blk ->
            match blk.Cfg.b_term with
            | Cfg.If { t_facts; f_facts; _ } ->
                if
                  List.exists
                    (function Cfg.Nn_field fr -> fr.Sema.fr_name = "r" | Cfg.Nn_var _ -> false)
                    t_facts
                then found := true;
                Alcotest.(check bool) "no false facts" true (f_facts = [])
            | Cfg.Goto _ | Cfg.Ret _ -> ())
          b.Cfg.blocks;
        Alcotest.(check bool) "fact on true edge" true !found);
    Alcotest.test_case "inverted null-check records facts on false edge" `Quick (fun () ->
        let b =
          body_of
            "class C { field Runnable r; method void m() { if (r == null) { log(\"n\"); } } }"
            ~cls:"C" ~meth:"m"
        in
        let found = ref false in
        Array.iter
          (fun blk ->
            match blk.Cfg.b_term with
            | Cfg.If { f_facts; _ } ->
                if
                  List.exists
                    (function Cfg.Nn_field fr -> fr.Sema.fr_name = "r" | Cfg.Nn_var _ -> false)
                    f_facts
                then found := true
            | Cfg.Goto _ | Cfg.Ret _ -> ())
          b.Cfg.blocks;
        Alcotest.(check bool) "fact on false edge" true !found);
    Alcotest.test_case "&& is lowered to control flow" `Quick (fun () ->
        let b =
          body_of
            "class C { field Runnable r; method void m(bool p) { if (p && r != null) { \
             log(\"y\"); } } }"
            ~cls:"C" ~meth:"m"
        in
        (* no And/Or instruction must survive *)
        Alcotest.(check int) "no boolean binop" 0
          (count_kind
             (fun i ->
               match i.Instr.i with
               | Instr.Binop (_, (Ast.And | Ast.Or), _, _) -> true
               | _ -> false)
             b);
        (* two conditional branches instead *)
        let ifs =
          Array.to_list b.Cfg.blocks
          |> List.filter (fun blk -> match blk.Cfg.b_term with Cfg.If _ -> true | _ -> false)
        in
        Alcotest.(check int) "two branches" 2 (List.length ifs));
    Alcotest.test_case "&& in value position short-circuits" `Quick (fun () ->
        (* would crash the interpreter at runtime if rhs were evaluated
           eagerly; here we only check the lowering introduces branches *)
        let b =
          body_of
            "class C { field C next; method void m() { var bool ok = next != null && true; } }"
            ~cls:"C" ~meth:"m"
        in
        Alcotest.(check bool) "has branch" true
          (Array.exists
             (fun blk -> match blk.Cfg.b_term with Cfg.If _ -> true | _ -> false)
             b.Cfg.blocks));
    Alcotest.test_case "while loop creates a back edge" `Quick (fun () ->
        let b =
          body_of "class C { method int m(int n) { var int i = 0; while (i < n) { i = i + 1; } \
                   return i; } }"
            ~cls:"C" ~meth:"m"
        in
        let back_edge = ref false in
        Array.iter
          (fun blk ->
            List.iter (fun s -> if s < blk.Cfg.b_id then back_edge := true) (Cfg.successors blk))
          b.Cfg.blocks;
        Alcotest.(check bool) "back edge" true !back_edge);
    Alcotest.test_case "anonymous allocation sets outer" `Quick (fun () ->
        let b =
          body_of
            "class C extends Activity { method void m() { this.runOnUiThread(new Runnable() { \
             method void run() { } }); } }"
            ~cls:"C" ~meth:"m"
        in
        Alcotest.(check int) "outer store" 1
          (count_kind
             (fun i ->
               match i.Instr.i with
               | Instr.Putfield (_, fr, _, Instr.Src_var) -> fr.Sema.fr_name = "outer"
               | _ -> false)
             b));
    Alcotest.test_case "synchronized emits balanced monitors" `Quick (fun () ->
        let b =
          body_of "class C { field C l; method void m() { synchronized (l) { log(\"x\"); } } }"
            ~cls:"C" ~meth:"m"
        in
        let enters =
          count_kind (fun i -> match i.Instr.i with Instr.Monitor_enter _ -> true | _ -> false) b
        in
        let exits =
          count_kind (fun i -> match i.Instr.i with Instr.Monitor_exit _ -> true | _ -> false) b
        in
        Alcotest.(check int) "enter" 1 enters;
        Alcotest.(check int) "exit" 1 exits);
    Alcotest.test_case "instruction ids are unique" `Quick (fun () ->
        let b =
          body_of "class C { method int m(int x) { if (x > 0) { return x; } return 0 - x; } }"
            ~cls:"C" ~meth:"m"
        in
        let ids = List.map (fun i -> i.Instr.id) (instrs b) in
        Alcotest.(check int) "unique" (List.length ids)
          (List.length (List.sort_uniq Int.compare ids)));
    Alcotest.test_case "reverse postorder starts at entry" `Quick (fun () ->
        let b =
          body_of "class C { method int m(int x) { if (x > 0) { return 1; } return 2; } }"
            ~cls:"C" ~meth:"m"
        in
        match Cfg.reverse_postorder b with
        | 0 :: _ -> ()
        | _ -> Alcotest.fail "entry not first");
    Alcotest.test_case "dead code after return is unreachable" `Quick (fun () ->
        let b =
          body_of "class C { method int m() { return 1; var int y = 2; return y; } }" ~cls:"C"
            ~meth:"m"
        in
        let reachable = Cfg.reverse_postorder b in
        Alcotest.(check bool) "some block unreachable" true
          (List.length reachable < Array.length b.Cfg.blocks));
  ]

(* dataflow: a simple reaching-"constant-assigned" must analysis *)
module SSet = Set.Make (String)

let dataflow_tests =
  [
    Alcotest.test_case "must-analysis meets at join" `Quick (fun () ->
        let b =
          body_of
            "class C { field Runnable r; field Runnable s; method void m(bool p) { if (p) { r \
             = new Runnable(); s = new Runnable(); } else { r = new Runnable(); } log(\"x\"); \
             } }"
            ~cls:"C" ~meth:"m"
        in
        (* track which fields were definitely stored *)
        let spec =
          {
            Dataflow.init_entry = SSet.empty;
            init_other = SSet.of_list [ "r"; "s" ];
            join = SSet.inter;
            equal = SSet.equal;
            transfer_instr =
              (fun ins fact ->
                match ins.Instr.i with
                | Instr.Putfield (_, fr, _, _) -> SSet.add fr.Sema.fr_name fact
                | _ -> fact);
            transfer_edge = (fun _ _ f -> f);
          }
        in
        let res = Dataflow.run b spec in
        (* at the final log call, r is definitely set but s is not *)
        let at_log = ref SSet.empty in
        Dataflow.iter_facts res (fun ins fact ->
            match ins.Instr.i with Instr.Intrinsic (_, "log", _) -> at_log := fact | _ -> ());
        Alcotest.(check bool) "r definite" true (SSet.mem "r" !at_log);
        Alcotest.(check bool) "s not definite" false (SSet.mem "s" !at_log));
    Alcotest.test_case "loops reach a fixpoint" `Quick (fun () ->
        let b =
          body_of
            "class C { field Runnable r; method void m(int n) { while (n > 0) { r = new \
             Runnable(); n = n - 1; } log(\"x\"); } }"
            ~cls:"C" ~meth:"m"
        in
        let spec =
          {
            Dataflow.init_entry = SSet.empty;
            init_other = SSet.of_list [ "r" ];
            join = SSet.inter;
            equal = SSet.equal;
            transfer_instr =
              (fun ins fact ->
                match ins.Instr.i with
                | Instr.Putfield (_, fr, _, _) -> SSet.add fr.Sema.fr_name fact
                | _ -> fact);
            transfer_edge = (fun _ _ f -> f);
          }
        in
        let res = Dataflow.run b spec in
        (* the loop may execute zero times: r is NOT definitely assigned *)
        let at_log = ref (SSet.singleton "r") in
        Dataflow.iter_facts res (fun ins fact ->
            match ins.Instr.i with Instr.Intrinsic (_, "log", _) -> at_log := fact | _ -> ());
        Alcotest.(check bool) "r not definite after maybe-zero loop" false (SSet.mem "r" !at_log));
  ]

let suite = [ ("ir", tests); ("ir-dataflow", dataflow_tests) ]
