(* Frontend tests: lexer, parser, pretty-printer round-trips, and
   semantic analysis (resolution, typing, capture). *)

open Nadroid_lang

let tokens src = List.map fst (Lexer.tokenize ~file:"t" src)

let token = Alcotest.testable (fun ppf t -> Fmt.string ppf (Token.to_string t)) Token.equal

let check_tokens msg expected src = Alcotest.(check (list token)) msg expected (tokens src)

let fails_with_diag f = match Diag.protect f with Ok _ -> false | Error _ -> true

(* -- lexer -------------------------------------------------------------- *)

let lexer_tests =
  let open Token in
  [
    Alcotest.test_case "keywords and idents" `Quick (fun () ->
        check_tokens "mix"
          [ KW_CLASS; UIDENT "Foo"; KW_EXTENDS; UIDENT "Activity"; LBRACE; RBRACE; EOF ]
          "class Foo extends Activity { }");
    Alcotest.test_case "operators" `Quick (fun () ->
        check_tokens "ops"
          [ IDENT "a"; EQ; IDENT "b"; NE; IDENT "c"; LE; GE; LT; GT; ANDAND; OROR; BANG; EOF ]
          "a == b != c <= >= < > && || !");
    Alcotest.test_case "assign vs eq" `Quick (fun () ->
        check_tokens "assign" [ IDENT "x"; ASSIGN; INT 1; SEMI; EOF ] "x = 1;");
    Alcotest.test_case "integer literal" `Quick (fun () ->
        check_tokens "int" [ INT 12345; EOF ] "12345");
    Alcotest.test_case "string literal with escapes" `Quick (fun () ->
        check_tokens "string" [ STRING "a\nb\"c\\d"; EOF ] {|"a\nb\"c\\d"|});
    Alcotest.test_case "line comment" `Quick (fun () ->
        check_tokens "line" [ INT 1; INT 2; EOF ] "1 // comment\n2");
    Alcotest.test_case "block comment" `Quick (fun () ->
        check_tokens "block" [ INT 1; INT 2; EOF ] "1 /* a\nb */ 2");
    Alcotest.test_case "dollar in identifiers" `Quick (fun () ->
        check_tokens "dollar" [ UIDENT "Foo$1"; EOF ] "Foo$1");
    Alcotest.test_case "locations track lines" `Quick (fun () ->
        let toks = Lexer.tokenize ~file:"t" "1\n  2" in
        match toks with
        | [ (_, l1); (_, l2); _ ] ->
            Alcotest.(check int) "line1" 1 l1.Loc.line;
            Alcotest.(check int) "line2" 2 l2.Loc.line;
            Alcotest.(check int) "col2" 3 l2.Loc.col
        | _ -> Alcotest.fail "expected three tokens");
    Alcotest.test_case "unterminated string fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (fails_with_diag (fun () -> tokens "\"abc")));
    Alcotest.test_case "unterminated block comment fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (fails_with_diag (fun () -> tokens "/* abc")));
    Alcotest.test_case "stray character fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (fails_with_diag (fun () -> tokens "a # b")));
    Alcotest.test_case "single & fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (fails_with_diag (fun () -> tokens "a & b")));
  ]

(* -- parser ------------------------------------------------------------- *)

let parse src = Parser.parse_program ~file:"t" src

let parse_expr_via_stmt src =
  (* wrap an expression in a method to parse it *)
  let prog = parse (Printf.sprintf "class C { method void m() { var int x = %s; } }" src) in
  match prog.Ast.p_classes with
  | [ { Ast.c_methods = [ { Ast.m_body = [ { Ast.s = Ast.Decl (_, _, Some e); _ } ]; _ } ]; _ } ]
    ->
      e
  | _ -> Alcotest.fail "unexpected program shape"

let rec expr_to_string (e : Ast.expr) = Fmt.str "%a" Pretty.pp_expr e |> fun s -> ignore expr_to_string; s

let parser_tests =
  [
    Alcotest.test_case "precedence: mul over add" `Quick (fun () ->
        let e = parse_expr_via_stmt "1 + 2 * 3" in
        Alcotest.(check string) "tree" "1 + 2 * 3" (expr_to_string e);
        match e.Ast.e with
        | Ast.Binop (Ast.Add, _, { Ast.e = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
        | _ -> Alcotest.fail "mul should bind tighter");
    Alcotest.test_case "precedence: comparison over and" `Quick (fun () ->
        match (parse_expr_via_stmt "1 < 2 && true").Ast.e with
        | Ast.Binop (Ast.And, { Ast.e = Ast.Binop (Ast.Lt, _, _); _ }, _) -> ()
        | _ -> Alcotest.fail "comparison should bind tighter than &&");
    Alcotest.test_case "and binds tighter than or" `Quick (fun () ->
        match (parse_expr_via_stmt "true || false && false").Ast.e with
        | Ast.Binop (Ast.Or, _, { Ast.e = Ast.Binop (Ast.And, _, _); _ }) -> ()
        | _ -> Alcotest.fail "&& should bind tighter than ||");
    Alcotest.test_case "postfix chains" `Quick (fun () ->
        match (parse_expr_via_stmt "a.b.c(1).d").Ast.e with
        | Ast.FieldAcc ({ Ast.e = Ast.Call (Some _, "c", [ _ ]); _ }, "d") -> ()
        | _ -> Alcotest.fail "postfix chain shape");
    Alcotest.test_case "unary not" `Quick (fun () ->
        match (parse_expr_via_stmt "!a && b").Ast.e with
        | Ast.Binop (Ast.And, { Ast.e = Ast.Unop (Ast.Not, _); _ }, _) -> ()
        | _ -> Alcotest.fail "not binds to operand only");
    Alcotest.test_case "anonymous class is hoisted" `Quick (fun () ->
        let prog =
          parse
            "class C { method void m() { var Runnable r = new Runnable() { method void run() \
             { } }; } }"
        in
        let names = List.map (fun c -> c.Ast.c_name) prog.Ast.p_classes in
        Alcotest.(check (list string)) "classes" [ "C"; "C$1" ] names;
        let anon = List.nth prog.Ast.p_classes 1 in
        Alcotest.(check bool) "anon flag" true anon.Ast.c_anon;
        Alcotest.(check (option string)) "outer" (Some "C") anon.Ast.c_outer;
        Alcotest.(check (option string)) "super" (Some "Runnable") anon.Ast.c_super);
    Alcotest.test_case "nested anonymous classes" `Quick (fun () ->
        let prog =
          parse
            "class C { method void m() { var Runnable r = new Runnable() { method void run() \
             { var Runnable q = new Runnable() { method void run() { } }; } }; } }"
        in
        Alcotest.(check int) "three classes" 3 (List.length prog.Ast.p_classes);
        (* the inner anonymous class is enclosed by the outer one *)
        let inner =
          List.find (fun c -> c.Ast.c_outer = Some "C$1") prog.Ast.p_classes
        in
        Alcotest.(check bool) "inner anon" true inner.Ast.c_anon);
    Alcotest.test_case "else-if chains" `Quick (fun () ->
        let prog =
          parse
            "class C { method int m(int x) { if (x > 1) { return 1; } else if (x > 0) { \
             return 2; } else { return 3; } } }"
        in
        match prog.Ast.p_classes with
        | [ { Ast.c_methods = [ { Ast.m_body = [ { Ast.s = Ast.If (_, _, [ { Ast.s = Ast.If _; _ } ]); _ } ]; _ } ]; _ } ]
          ->
            ()
        | _ -> Alcotest.fail "else-if shape");
    Alcotest.test_case "synchronized statement" `Quick (fun () ->
        let prog = parse "class C { field C l; method void m() { synchronized (l) { m(); } } }" in
        match prog.Ast.p_classes with
        | [ { Ast.c_methods = [ { Ast.m_body = [ { Ast.s = Ast.Sync (_, [ _ ]); _ } ]; _ } ]; _ } ] -> ()
        | _ -> Alcotest.fail "sync shape");
    Alcotest.test_case "static fields" `Quick (fun () ->
        let prog = parse "class C { static field int n; }" in
        match prog.Ast.p_classes with
        | [ { Ast.c_fields = [ f ]; _ } ] -> Alcotest.(check bool) "static" true f.Ast.f_static
        | _ -> Alcotest.fail "field shape");
    Alcotest.test_case "assignment to call fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (fails_with_diag (fun () -> parse "class C { method void m() { m() = 1; } }")));
    Alcotest.test_case "missing semicolon fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (fails_with_diag (fun () -> parse "class C { method void m() { var int x = 1 } }")));
    Alcotest.test_case "unbalanced braces fail" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (fails_with_diag (fun () -> parse "class C { method void m() { ")));
  ]

(* qcheck: pretty-printing a random program and re-parsing it yields the
   same pretty output (fixpoint round-trip on a restricted AST without
   anonymous classes, which the parser hoists). *)

let gen_ident = QCheck2.Gen.oneofl [ "a"; "b"; "count"; "flag"; "x" ]

let gen_expr : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               map (fun i -> Ast.expr (Ast.IntLit (abs i))) small_int;
               map (fun b -> Ast.expr (Ast.BoolLit b)) bool;
               map (fun x -> Ast.expr (Ast.Name x)) gen_ident;
               return (Ast.expr Ast.Null);
               return (Ast.expr Ast.This);
             ]
         in
         if n = 0 then leaf
         else
           oneof
             [
               leaf;
               map2
                 (fun a b -> Ast.expr (Ast.Binop (Ast.Add, a, b)))
                 (self (n / 2)) (self (n / 2));
               map2
                 (fun a b -> Ast.expr (Ast.Binop (Ast.Eq, a, b)))
                 (self (n / 2)) (self (n / 2));
               map2
                 (fun a b -> Ast.expr (Ast.Binop (Ast.And, a, b)))
                 (self (n / 2)) (self (n / 2));
               map (fun a -> Ast.expr (Ast.Unop (Ast.Not, a))) (self (n / 2));
               map (fun a -> Ast.expr (Ast.FieldAcc (a, "f"))) (self (n / 2));
             ])

let expr_roundtrip =
  QCheck2.Test.make ~name:"pretty/parse expression fixpoint" ~count:300 gen_expr (fun e ->
      let printed = Fmt.str "%a" Pretty.pp_expr e in
      let wrapped = Printf.sprintf "class C { method void m() { var int x = %s; } }" printed in
      match Diag.protect (fun () -> parse wrapped) with
      | Error _ -> false
      | Ok prog -> (
          match prog.Ast.p_classes with
          | [ { Ast.c_methods = [ { Ast.m_body = [ { Ast.s = Ast.Decl (_, _, Some e'); _ } ]; _ } ]; _ } ]
            ->
              String.equal printed (Fmt.str "%a" Pretty.pp_expr e')
          | _ -> false))

let program_roundtrip =
  (* full corpus sources: pretty(parse(src)) parses to the same pretty *)
  QCheck2.Test.make ~name:"pretty/parse program fixpoint on corpus" ~count:27
    (QCheck2.Gen.oneofl (List.map (fun (a : Nadroid_corpus.Corpus.app) -> a.Nadroid_corpus.Corpus.source)
         (Lazy.force Nadroid_corpus.Corpus.all)))
    (fun src ->
      let p1 = parse src in
      let printed = Pretty.program_to_string p1 in
      let p2 = parse printed in
      String.equal printed (Pretty.program_to_string p2))

(* -- sema --------------------------------------------------------------- *)

let sema_ok src = Sema.of_source ~file:"t" src

let sema_fails src = fails_with_diag (fun () -> sema_ok src)

let sema_tests =
  [
    Alcotest.test_case "locals shadow fields" `Quick (fun () ->
        let s =
          sema_ok
            "class C { field int x; method int m() { var int x = 1; return x; } }"
        in
        let c = Sema.get_class s "C" in
        match (List.hd c.Sema.rc_methods).Sema.rm_body with
        | [ _; { Sema.rs = Sema.Rreturn (Some { Sema.re = Sema.Rlocal _; _ }); _ } ] -> ()
        | _ -> Alcotest.fail "expected local reference");
    Alcotest.test_case "field access through this" `Quick (fun () ->
        let s = sema_ok "class C { field int x; method int m() { return x; } }" in
        let c = Sema.get_class s "C" in
        match (List.hd c.Sema.rc_methods).Sema.rm_body with
        | [ { Sema.rs = Sema.Rreturn (Some { Sema.re = Sema.Rget ({ Sema.re = Sema.Rthis; _ }, _); _ }); _ } ] ->
            ()
        | _ -> Alcotest.fail "expected this.field");
    Alcotest.test_case "outer capture desugars to outer chain" `Quick (fun () ->
        let s =
          sema_ok
            "class C extends Activity { field int x; method void m() { \
             this.runOnUiThread(new Runnable() { method void run() { x = x + 1; } }); } }"
        in
        let anon = Sema.get_class s "C$1" in
        let run = List.hd anon.Sema.rc_methods in
        (* x = ... resolves to (this.outer).x *)
        (match run.Sema.rm_body with
        | [ { Sema.rs = Sema.Rset_field ({ Sema.re = Sema.Rget ({ Sema.re = Sema.Rthis; _ }, outer_fr); _ }, fr, _); _ } ] ->
            Alcotest.(check string) "outer field" "outer" outer_fr.Sema.fr_name;
            Alcotest.(check string) "target field" "x" fr.Sema.fr_name
        | _ -> Alcotest.fail "expected outer-chain store");
        (* anon class has an implicit outer field typed by C *)
        match Sema.lookup_field s "C$1" "outer" with
        | Some fr -> Alcotest.(check bool) "outer type" true (fr.Sema.fr_ty = Ast.Tclass "C")
        | None -> Alcotest.fail "missing outer field");
    Alcotest.test_case "static field resolution" `Quick (fun () ->
        let s =
          sema_ok "class C { static field int total; method void m() { total = total + 1; } }"
        in
        let c = Sema.get_class s "C" in
        match (List.hd c.Sema.rc_methods).Sema.rm_body with
        | [ { Sema.rs = Sema.Rset_static (fr, _); _ } ] ->
            Alcotest.(check bool) "static" true fr.Sema.fr_static
        | _ -> Alcotest.fail "expected static store");
    Alcotest.test_case "intrinsic call" `Quick (fun () ->
        let s = sema_ok {|class C { method void m() { log("hi"); } }|} in
        let c = Sema.get_class s "C" in
        match (List.hd c.Sema.rc_methods).Sema.rm_body with
        | [ { Sema.rs = Sema.Rexpr { Sema.re = Sema.Rintrinsic ("log", [ _ ]); _ }; _ } ] -> ()
        | _ -> Alcotest.fail "expected intrinsic");
    Alcotest.test_case "null assignable to any class" `Quick (fun () ->
        ignore (sema_ok "class C { field Runnable r; method void m() { r = null; } }"));
    Alcotest.test_case "null comparable with objects" `Quick (fun () ->
        ignore
          (sema_ok
             "class C { field Runnable r; method bool m() { return r != null; } }"));
    Alcotest.test_case "subtype assignment ok" `Quick (fun () ->
        ignore
          (sema_ok "class C { field View v; method void m() { v = new Button(); } }"));
    Alcotest.test_case "supertype assignment fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { field Button b; method void m() { b = new View(); } }"));
    Alcotest.test_case "int to bool fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method void m() { var bool b = 1; } }"));
    Alcotest.test_case "condition must be bool" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method void m() { if (1) { } } }"));
    Alcotest.test_case "unknown name fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method void m() { nope = 1; } }"));
    Alcotest.test_case "unknown method fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method void m() { this.nope(); } }"));
    Alcotest.test_case "arity mismatch fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method void n(int x) { } method void m() { this.n(); } }"));
    Alcotest.test_case "duplicate class fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (sema_fails "class C { } class C { }"));
    Alcotest.test_case "redefining a builtin fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (sema_fails "class Activity { }"));
    Alcotest.test_case "unknown superclass fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (sema_fails "class C extends Nope { }"));
    Alcotest.test_case "inheritance cycle fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class A extends B { } class B extends A { }"));
    Alcotest.test_case "field hiding fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class A { field int x; } class B extends A { field int x; }"));
    Alcotest.test_case "override with wrong signature fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails
             "class A { method void m(int x) { } } class B extends A { method void m(bool x) \
              { } }"));
    Alcotest.test_case "compatible override ok" `Quick (fun () ->
        ignore
          (sema_ok
             "class A { method int m(int x) { return x; } } class B extends A { method int \
              m(int y) { return y + 1; } }"));
    Alcotest.test_case "duplicate local fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method void m() { var int x = 1; var int x = 2; } }"));
    Alcotest.test_case "shadowing in inner scope allowed" `Quick (fun () ->
        ignore
          (sema_ok
             "class C { method void m() { var int x = 1; if (x > 0) { var int x = 2; log(i2s(x)); } } }"));
    Alcotest.test_case "void variable fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method void m() { var void v; } }"));
    Alcotest.test_case "return type mismatch fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class C { method int m() { return true; } }"));
    Alcotest.test_case "init constructor resolution" `Quick (fun () ->
        let s =
          sema_ok "class P { field int v; method void init(int x) { v = x; } } class C { \
                   method P m() { return new P(7); } }"
        in
        let c = Sema.get_class s "C" in
        match (List.hd c.Sema.rc_methods).Sema.rm_body with
        | [ { Sema.rs = Sema.Rreturn (Some { Sema.re = Sema.Rnew ("P", Some ms, [ _ ]); _ }); _ } ] ->
            Alcotest.(check string) "init" "init" ms.Sema.ms_name
        | _ -> Alcotest.fail "expected init-carrying new");
    Alcotest.test_case "new with args but no init fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true
          (sema_fails "class P { } class C { method void m() { var P p = new P(1); } }"));
    Alcotest.test_case "dispatch finds most-derived" `Quick (fun () ->
        let s =
          sema_ok
            "class A { method int m() { return 1; } } class B extends A { method int m() { \
             return 2; } }"
        in
        match Sema.dispatch s "B" "m" with
        | Some m -> Alcotest.(check string) "class" "B" m.Sema.rm_class
        | None -> Alcotest.fail "dispatch failed");
    Alcotest.test_case "builtins parse and analyse" `Quick (fun () ->
        let s = sema_ok "class C { }" in
        Alcotest.(check bool) "Activity is builtin" true
          (Sema.get_class s "Activity").Sema.rc_builtin);
  ]

let suite =
  [
    ("lexer", lexer_tests);
    ("parser", parser_tests);
    ( "parser-properties",
      List.map QCheck_alcotest.to_alcotest [ expr_roundtrip; program_roundtrip ] );
    ("sema", sema_tests);
  ]
