(* Corpus tests: all 27 apps (and the 8 injected variants) must parse,
   typecheck and analyse; the generator is deterministic; seeded ground
   truth stays consistent with the analysis results; and the headline
   aggregate shapes from the paper's evaluation hold. *)

open Nadroid_corpus
module Pipeline = Nadroid_core.Pipeline
module Detect = Nadroid_core.Detect

let analyze (app : Corpus.app) = Pipeline.analyze ~file:app.Corpus.name app.Corpus.source

let app_cases =
  List.map
    (fun (app : Corpus.app) ->
      Alcotest.test_case (app.Corpus.name ^ " analyses cleanly") `Quick (fun () ->
          match Nadroid_lang.Diag.protect (fun () -> analyze app) with
          | Ok t ->
              Alcotest.(check bool) "phases monotone" true
                (List.length t.Pipeline.potential >= List.length t.Pipeline.after_sound
                && List.length t.Pipeline.after_sound >= List.length t.Pipeline.after_unsound)
          | Error d -> Alcotest.failf "diagnostic: %s" (Nadroid_lang.Diag.to_string d)))
    (Lazy.force Corpus.all)

let injected_cases =
  List.map
    (fun (inj : Corpus.injected_app) ->
      Alcotest.test_case (inj.Corpus.inj_base.Corpus.name ^ "+inj analyses cleanly") `Quick
        (fun () ->
          match
            Nadroid_lang.Diag.protect (fun () ->
                Pipeline.analyze ~file:"inj" inj.Corpus.inj_source)
          with
          | Ok _ -> ()
          | Error d -> Alcotest.failf "diagnostic: %s" (Nadroid_lang.Diag.to_string d)))
    (Lazy.force Corpus.injected)

(* Check every seeded expectation across the whole corpus: a seeded true
   bug must survive all filters, a seeded filtered idiom must not, a
   seeded FP must survive, an inert pattern must be invisible. *)
let field_warned warnings (sd : Spec.seeded) =
  List.exists
    (fun (w : Detect.warning) ->
      String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_name sd.Spec.sd_field
      && String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_class sd.Spec.sd_activity)
    warnings

let ground_truth_cases =
  List.map
    (fun (app : Corpus.app) ->
      Alcotest.test_case (app.Corpus.name ^ " honours its seeded ground truth") `Quick
        (fun () ->
          let t = analyze app in
          List.iter
            (fun (sd : Spec.seeded) ->
              let tag = Spec.pattern_to_string sd.Spec.sd_pattern ^ "/" ^ sd.Spec.sd_field in
              match sd.Spec.sd_expect with
              | Spec.E_true_bug _ | Spec.E_false_positive _ ->
                  Alcotest.(check bool) (tag ^ " survives") true
                    (field_warned t.Pipeline.after_unsound sd)
              | Spec.E_filtered _ ->
                  Alcotest.(check bool) (tag ^ " detected") true
                    (field_warned t.Pipeline.potential sd);
                  Alcotest.(check bool) (tag ^ " pruned") false
                    (field_warned t.Pipeline.after_unsound sd)
              | Spec.E_none ->
                  Alcotest.(check bool) (tag ^ " invisible") false
                    (field_warned t.Pipeline.potential sd))
            app.Corpus.seeded))
    (Lazy.force Corpus.all)

let aggregate_tests =
  [
    Alcotest.test_case "27 apps: 7 train + 20 test" `Quick (fun () ->
        Alcotest.(check int) "train" 7 (List.length (Lazy.force Corpus.train));
        Alcotest.(check int) "test" 20 (List.length (Lazy.force Corpus.test)));
    Alcotest.test_case "generator is deterministic" `Quick (fun () ->
        let spec = List.hd Apps_test.all in
        let s1, _ = Gen.generate spec and s2, _ = Gen.generate spec in
        Alcotest.(check string) "same source" s1 s2);
    Alcotest.test_case "seeded true bugs total the paper's 88" `Quick (fun () ->
        let seeded =
          List.fold_left
            (fun acc (app : Corpus.app) ->
              acc
              + List.length
                  (List.filter
                     (fun (sd : Spec.seeded) ->
                       match sd.Spec.sd_expect with Spec.E_true_bug _ -> true | _ -> false)
                     app.Corpus.seeded))
            0 (Lazy.force Corpus.all)
        in
        (* 84 generated + 4 hand-written (ConnectBot x2, FireFox, MyTracks) *)
        Alcotest.(check int) "seeded + hand = 88" 88 (seeded + 4));
    Alcotest.test_case "sound filters prune most warnings (paper: 88%)" `Quick (fun () ->
        let p, s =
          List.fold_left
            (fun (p, s) (app : Corpus.app) ->
              let t = analyze app in
              (p + List.length t.Pipeline.potential, s + List.length t.Pipeline.after_sound))
            (0, 0) (Lazy.force Corpus.all)
        in
        let rate = float_of_int (p - s) /. float_of_int p in
        Alcotest.(check bool) "within [0.8, 0.95]" true (rate > 0.8 && rate < 0.95));
    Alcotest.test_case "table 2 injection mix matches the paper" `Quick (fun () ->
        let total =
          List.fold_left
            (fun acc (inj : Corpus.injected_app) -> acc + List.length inj.Corpus.inj_seeded)
            0 (Lazy.force Corpus.injected)
        in
        Alcotest.(check int) "28 injected UAFs" 28 total;
        Alcotest.(check int) "8 apps" 8 (List.length (Lazy.force Corpus.injected)));
    Alcotest.test_case "injected missed/pruned ground truth" `Quick (fun () ->
        (* exactly the inj-unmodeled seeds are undetectable, exactly the
           chb-error-path seeds are wrongly pruned *)
        List.iter
          (fun (inj : Corpus.injected_app) ->
            let t = Pipeline.analyze ~file:"inj" inj.Corpus.inj_source in
            List.iter
              (fun (sd : Spec.seeded) ->
                match sd.Spec.sd_pattern with
                | Spec.P_inj_unmodeled ->
                    Alcotest.(check bool) "missed" false (field_warned t.Pipeline.potential sd)
                | Spec.P_chb_error_path ->
                    Alcotest.(check bool) "detected" true (field_warned t.Pipeline.potential sd);
                    Alcotest.(check bool) "wrongly pruned" false
                      (field_warned t.Pipeline.after_unsound sd)
                | _ ->
                    Alcotest.(check bool) "injected bug survives" true
                      (field_warned t.Pipeline.after_unsound sd))
              inj.Corpus.inj_seeded)
          (Lazy.force Corpus.injected));
    Alcotest.test_case "hand-written Fig 1 bugs survive in ConnectBot/FireFox" `Quick (fun () ->
        let cb = analyze (Option.get (Corpus.find "ConnectBot")) in
        let fields =
          List.map
            (fun (w : Detect.warning) -> w.Detect.w_field.Nadroid_lang.Sema.fr_name)
            cb.Pipeline.after_unsound
        in
        Alcotest.(check bool) "bound (Fig 1a)" true (List.mem "bound" fields);
        Alcotest.(check bool) "hostBridge (Fig 1b)" true (List.mem "hostBridge" fields);
        let ff = analyze (Option.get (Corpus.find "FireFox")) in
        let fields =
          List.map
            (fun (w : Detect.warning) -> w.Detect.w_field.Nadroid_lang.Sema.fr_name)
            ff.Pipeline.after_unsound
        in
        Alcotest.(check bool) "jClient (Fig 1c)" true (List.mem "jClient" fields));
    Alcotest.test_case "browser's fragment bug is invisible to nAdroid" `Quick (fun () ->
        let t = analyze (Option.get (Corpus.find "Browser")) in
        Alcotest.(check bool) "mCtrlWV not reported" false
          (List.exists
             (fun (w : Detect.warning) ->
               String.equal w.Detect.w_field.Nadroid_lang.Sema.fr_name "mCtrlWV")
             t.Pipeline.potential));
  ]

let suite =
  [
    ("corpus-apps", app_cases);
    ("corpus-injected", injected_cases);
    ("corpus-ground-truth", ground_truth_cases);
    ("corpus-aggregates", aggregate_tests);
  ]
