(* DEvA baseline tests: it must exhibit exactly the limitations the paper
   describes (§2.3, §8.7) — intra-class scope, no happens-before, unsound
   IG — while still finding intra-class event anomalies. *)

open Nadroid_ir
module Deva = Nadroid_deva.Deva

let deva src = Deva.run (Prog.of_source ~file:"t" src)

let has_warning ws ~field ~use ~free =
  List.exists
    (fun (w : Deva.warning) ->
      String.equal w.Deva.dw_field field
      && String.equal w.Deva.dw_use_cb use
      && String.equal w.Deva.dw_free_cb free)
    ws

let tests =
  [
    Alcotest.test_case "finds an intra-class event anomaly" `Quick (fun () ->
        let ws =
          deva
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onResume() { d.op(); } method void onDestroy() { d = null; } }"
        in
        Alcotest.(check bool) "found" true
          (has_warning ws ~field:"A.d" ~use:"A.onResume" ~free:"A.onDestroy"));
    Alcotest.test_case "no happens-before: reports MHB-orderable pairs" `Quick (fun () ->
        (* use in onCreate, free in onDestroy: nAdroid's MHB prunes this;
           DEvA keeps it *)
        let ws =
          deva
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onCreate() { d = new Data(); } method void onActivityResult(int c) { \
             d.op(); } method void onDestroy() { d = null; } }"
        in
        Alcotest.(check bool) "kept" true
          (has_warning ws ~field:"A.d" ~use:"A.onActivityResult" ~free:"A.onDestroy"));
    Alcotest.test_case "anonymous inner classes are in scope" `Quick (fun () ->
        let ws =
          deva
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onCreate() { this.runOnUiThread(new Runnable() { method void run() { \
             d.op(); } }); } method void onDestroy() { d = null; } }"
        in
        Alcotest.(check bool) "found through inner class" true
          (has_warning ws ~field:"A.d" ~use:"A$1.run" ~free:"A.onDestroy"));
    Alcotest.test_case "misses inter-class accesses" `Quick (fun () ->
        (* a separate top-level worker nulls another class's field: the
           paper's main DEvA false-negative source *)
        let ws =
          deva
            "class Data { method void op() { } } class Worker extends Runnable { field A \
             owner; method void init(A o) { owner = o; } method void run() { owner.d = null; \
             } } class A extends Activity { field Data d; field Executor ex; method void \
             onCreate() { ex = new Executor(); d = new Data(); ex.execute(new Worker(this)); \
             } method void onPause() { d.op(); } }"
        in
        Alcotest.(check bool) "missed" false
          (List.exists (fun (w : Deva.warning) -> String.equal w.Deva.dw_field "A.d") ws));
    Alcotest.test_case "unsound IG prunes guarded uses even across threads" `Quick (fun () ->
        let ws =
          deva
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onPause() { if (d != null) { d.op(); } } method void onStop() { d = \
             null; } }"
        in
        Alcotest.(check bool) "pruned" false
          (List.exists (fun (w : Deva.warning) -> String.equal w.Deva.dw_field "A.d") ws));
    Alcotest.test_case "fragment-style callbacks recognised by name" `Quick (fun () ->
        let ws =
          deva
            "class Ctrl { method void go() { } } class Frag { field Ctrl c; method void \
             onResume() { c.go(); } method void onDestroy() { c = null; } }"
        in
        Alcotest.(check bool) "found in plain class" true
          (has_warning ws ~field:"Frag.c" ~use:"Frag.onResume" ~free:"Frag.onDestroy"));
    Alcotest.test_case "no self-pairs" `Quick (fun () ->
        let ws =
          deva
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void onPause() { d.op(); d = null; } }"
        in
        Alcotest.(check bool) "no same-callback pair" false
          (List.exists
             (fun (w : Deva.warning) -> String.equal w.Deva.dw_use_cb w.Deva.dw_free_cb)
             ws));
  ]

let suite = [ ("deva", tests) ]
