test/test_lang.ml: Alcotest Ast Diag Fmt Lazy Lexer List Loc Nadroid_corpus Nadroid_lang Parser Pretty Printf QCheck2 QCheck_alcotest Sema String Token
