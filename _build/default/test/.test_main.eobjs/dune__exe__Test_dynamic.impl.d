test/test_dynamic.ml: Alcotest Explorer Fmt Instr Interp List Nadroid_core Nadroid_corpus Nadroid_dynamic Nadroid_ir Option Prog String World
