test/test_datalog.ml: Alcotest Engine Hashtbl List Nadroid_datalog QCheck2 QCheck_alcotest
