test/test_android.ml: Alcotest Api Callback Component Lifecycle List Nadroid_android Nadroid_lang QCheck2 QCheck_alcotest Sema String
