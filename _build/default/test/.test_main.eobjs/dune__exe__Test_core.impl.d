test/test_core.ml: Alcotest Astring Classify Detect Filters Fmt List Nadroid_core Nadroid_corpus Pipeline Report String Threadify
