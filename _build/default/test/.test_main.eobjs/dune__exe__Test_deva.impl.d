test/test_deva.ml: Alcotest List Nadroid_deva Nadroid_ir Prog String
