test/test_props.ml: Lazy List Nadroid_core Nadroid_corpus Nadroid_dynamic Nadroid_ir QCheck2 QCheck_alcotest
