test/test_corpus.ml: Alcotest Apps_test Corpus Gen Lazy List Nadroid_core Nadroid_corpus Nadroid_lang Option Spec String
