test/test_ir.ml: Alcotest Array Ast Cfg Dataflow Instr Int List Nadroid_ir Nadroid_lang Prog Sema Set String
