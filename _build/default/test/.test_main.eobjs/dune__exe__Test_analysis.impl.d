test/test_analysis.ml: Alcotest Cfg Escape Fmt Guards Instr List Lockset Nadroid_analysis Nadroid_android Nadroid_ir Nadroid_lang Prog Pta Sema String
