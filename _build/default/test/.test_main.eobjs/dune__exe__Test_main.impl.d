test/test_main.ml: Alcotest Test_analysis Test_android Test_core Test_corpus Test_datalog Test_deva Test_dynamic Test_energy Test_ir Test_lang Test_more Test_props
