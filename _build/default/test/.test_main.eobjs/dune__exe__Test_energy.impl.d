test/test_energy.ml: Alcotest Energy Fmt List Nadroid_core Nadroid_dynamic Nadroid_ir Pipeline String
