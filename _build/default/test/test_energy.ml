(* No-sleep / energy-bug extension tests (§9): the static detector's
   three verdicts, the teardown filter, wake-lock aliasing, and the
   simulator's no-sleep oracle. *)

open Nadroid_core
module World = Nadroid_dynamic.World

let detect src =
  let t = Pipeline.analyze ~file:"t" src in
  (t, Energy.detect t.Pipeline.threads)

let kinds ws = List.map (fun w -> Fmt.str "%a" Energy.pp_kind w.Energy.nw_kind) ws

let tests =
  [
    Alcotest.test_case "balanced acquire/release in one callback is safe" `Quick (fun () ->
        let _, ws =
          detect
            {|class A extends Activity { field WakeLock wl;
                method void onResume() {
                  wl = this.getPowerManager().newWakeLock("t");
                  wl.acquire();
                  log("work");
                  wl.release();
                } }|}
        in
        Alcotest.(check (list string)) "clean" [] (kinds ws));
    Alcotest.test_case "teardown release is lifecycle-ordered and safe" `Quick (fun () ->
        let _, ws =
          detect
            {|class A extends Activity { field WakeLock wl;
                method void onCreate() { wl = this.getPowerManager().newWakeLock("t"); }
                method void onResume() { wl.acquire(); }
                method void onPause() { wl.release(); } }|}
        in
        Alcotest.(check (list string)) "clean" [] (kinds ws));
    Alcotest.test_case "missing release entirely" `Quick (fun () ->
        let _, ws =
          detect
            {|class A extends Activity { field WakeLock wl;
                method void onResume() {
                  wl = this.getPowerManager().newWakeLock("t");
                  wl.acquire();
                } }|}
        in
        Alcotest.(check (list string)) "no-release" [ "no-release" ] (kinds ws));
    Alcotest.test_case "error path that skips the release" `Quick (fun () ->
        let _, ws =
          detect
            {|class A extends Activity { field WakeLock wl; field bool bad;
                method void onResume() {
                  wl = this.getPowerManager().newWakeLock("t");
                  wl.acquire();
                  if (bad) { log("skip"); } else { wl.release(); }
                } }|}
        in
        Alcotest.(check (list string)) "leaky" [ "leaky-path" ] (kinds ws));
    Alcotest.test_case "release only in an unordered click handler" `Quick (fun () ->
        let _, ws =
          detect
            {|class A extends Activity { field WakeLock wl;
                method void onCreate() {
                  wl = this.getPowerManager().newWakeLock("t");
                  this.findViewById(1).setOnClickListener(new OnClickListener() {
                    method void onClick(View v) { wl.release(); }
                  });
                }
                method void onResume() { wl.acquire(); } }|}
        in
        Alcotest.(check (list string)) "unordered" [ "unordered-release" ] (kinds ws));
    Alcotest.test_case "releasing a different lock does not count" `Quick (fun () ->
        let _, ws =
          detect
            {|class A extends Activity { field WakeLock a; field WakeLock b;
                method void onCreate() {
                  a = this.getPowerManager().newWakeLock("a");
                  b = this.getPowerManager().newWakeLock("b");
                }
                method void onResume() { a.acquire(); }
                method void onPause() { b.release(); } }|}
        in
        Alcotest.(check (list string)) "wrong lock" [ "no-release" ] (kinds ws));
    Alcotest.test_case "service teardown also qualifies" `Quick (fun () ->
        let _, ws =
          detect
            {|class S extends Service { field WakeLock wl;
                method void onCreate() { wl = this.getPowerManager().newWakeLock("t"); }
                method void onStartCommand(Intent i) { wl.acquire(); }
                method void onDestroy() { wl.release(); } }|}
        in
        Alcotest.(check (list string)) "clean" [] (kinds ws));
    Alcotest.test_case "dynamic no-sleep oracle" `Quick (fun () ->
        let prog =
          Nadroid_ir.Prog.of_source ~file:"t"
            {|class A extends Activity { field WakeLock wl;
                method void onResume() {
                  wl = this.getPowerManager().newWakeLock("t");
                  wl.acquire();
                } }|}
        in
        let w = World.create prog in
        let run prefix =
          match
            List.find_opt
              (fun a ->
                let s = Fmt.str "%a" World.pp_action a in
                String.length s >= String.length prefix
                && String.equal (String.sub s 0 (String.length prefix)) prefix)
              (World.enabled_actions w)
          with
          | Some a -> World.perform w a
          | None -> Alcotest.failf "no action %s" prefix
        in
        run "lifecycle:A.onCreate";
        run "lifecycle:A.onStart";
        run "lifecycle:A.onResume";
        Alcotest.(check bool) "held but foreground" false (World.no_sleep_state w);
        run "lifecycle:A.onPause";
        Alcotest.(check bool) "held and backgrounded" true (World.no_sleep_state w));
  ]

let suite = [ ("energy", tests) ]
