(* Dynamic substrate tests: the IR interpreter, the simulated Android
   runtime (looper atomicity, thread preemption, monitors, registration
   and cancellation semantics), and the schedule explorer. *)

open Nadroid_ir
open Nadroid_dynamic
module Explorer = Explorer
module Spec = Nadroid_corpus.Spec
module Gen = Nadroid_corpus.Gen

let prog_of src = Prog.of_source ~file:"t" src

(* Run a fixed schedule by action predicate: at each step, perform the
   first enabled action matching the next label prefix. *)
let run_script prog script =
  let w = World.create prog in
  List.iter
    (fun prefix ->
      let actions = World.enabled_actions w in
      match
        List.find_opt
          (fun a ->
            let s = Fmt.str "%a" World.pp_action a in
            String.length s >= String.length prefix
            && String.equal (String.sub s 0 (String.length prefix)) prefix)
          actions
      with
      | Some a -> World.perform w a
      | None -> Alcotest.failf "no enabled action matching %s" prefix)
    script;
  w

let logs_of w = World.logs w

let interp_tests =
  [
    Alcotest.test_case "arithmetic and strings" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { method void onCreate() {
                var int x = 2 + 3 * 4;
                var string s = "v=" + i2s(x - 7 / 2);
                log(s);
              } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        Alcotest.(check (list string)) "log" [ "v=11" ] (logs_of w));
    Alcotest.test_case "short-circuit protects null dereference" `Quick (fun () ->
        let prog =
          prog_of
            {|class Data { field bool ready; }
              class A extends Activity { field Data d;
                method void onCreate() {
                  if (d != null && d.ready) { log("yes"); } else { log("no"); }
                } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        Alcotest.(check (list string)) "no NPE" [ "no" ] (logs_of w);
        Alcotest.(check int) "clean" 0 (List.length (World.npes w)));
    Alcotest.test_case "while loop" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { method void onCreate() {
                var int i = 0; var int acc = 0;
                while (i < 5) { acc = acc + i; i = i + 1; }
                log(i2s(acc));
              } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        Alcotest.(check (list string)) "sum" [ "10" ] (logs_of w));
    Alcotest.test_case "virtual dispatch and init" `Quick (fun () ->
        let prog =
          prog_of
            {|class P { field int v; method void init(int x) { v = x; } method int get() { return v; } }
              class Q extends P { method int get() { return v + 100; } }
              class A extends Activity { method void onCreate() {
                var P p = new Q(7);
                log(i2s(p.get()));
              } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        Alcotest.(check (list string)) "dispatched" [ "107" ] (logs_of w));
    Alcotest.test_case "field defaults per type" `Quick (fun () ->
        let prog =
          prog_of
            {|class B { field int n; field bool b; field string s; field B next; }
              class A extends Activity { method void onCreate() {
                var B x = new B();
                if (x.next == null && !x.b && x.n == 0 && x.s == "") { log("defaults"); }
              } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        Alcotest.(check (list string)) "defaults" [ "defaults" ] (logs_of w));
    Alcotest.test_case "NPE carries the faulting site" `Quick (fun () ->
        let prog =
          prog_of
            {|class Data { method void op() { } }
              class A extends Activity { field Data d;
                method void onCreate() { d.op(); } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        match World.npes w with
        | [ npe ] ->
            Alcotest.(check string) "method" "A.onCreate"
              (Fmt.str "%a" Instr.pp_mref npe.Interp.npe_mref)
        | l -> Alcotest.failf "expected one NPE, got %d" (List.length l));
    Alcotest.test_case "outer capture reads the activity state" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { field int clicks;
                method void onCreate() {
                  this.findViewById(1).setOnClickListener(new OnClickListener() {
                    method void onClick(View v) { clicks = clicks + 1; log(i2s(clicks)); }
                  });
                }
                method void onStart() { } }|}
        in
        let w =
          run_script prog
            [ "lifecycle:A.onCreate"; "lifecycle:A.onStart"; "click:0"; "click:0" ]
        in
        Alcotest.(check (list string)) "counts" [ "1"; "2" ] (logs_of w));
  ]

let world_tests =
  [
    Alcotest.test_case "looper delivers posts in FIFO order" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { field Handler h;
                method void onCreate() {
                  h = new Handler();
                  h.post(new Runnable() { method void run() { log("first"); } });
                  h.post(new Runnable() { method void run() { log("second"); } });
                } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate"; "looper"; "looper" ] in
        Alcotest.(check (list string)) "fifo" [ "first"; "second" ] (logs_of w));
    Alcotest.test_case "removeCallbacksAndMessages drops queued posts" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { field Handler h;
                method void onCreate() {
                  h = new Handler();
                  h.post(new Runnable() { method void run() { log("dropped"); } });
                  h.removeCallbacksAndMessages();
                } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        Alcotest.(check int) "queue empty" 0 (List.length w.World.queue);
        Alcotest.(check (list string)) "nothing ran" [] (logs_of w));
    Alcotest.test_case "sendEmptyMessage carries what" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { field Handler h;
                method void onCreate() {
                  h = new Handler() { method void handleMessage(Message m) { log(i2s(m.what)); } };
                  h.sendEmptyMessage(42);
                } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate"; "looper" ] in
        Alcotest.(check (list string)) "what" [ "42" ] (logs_of w));
    Alcotest.test_case "service connect then disconnect" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity {
                method void onCreate() {
                  this.bindService(new ServiceConnection() {
                    method void onServiceConnected(Binder b) { log("up"); }
                    method void onServiceDisconnected() { log("down"); }
                  });
                } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate"; "connect:0"; "disconnect:0" ] in
        Alcotest.(check (list string)) "updown" [ "up"; "down" ] (logs_of w);
        (* disconnect only enabled after connect *)
        let w2 = run_script prog [ "lifecycle:A.onCreate" ] in
        let acts = List.map (Fmt.str "%a" World.pp_action) (World.enabled_actions w2) in
        Alcotest.(check bool) "connect enabled" true (List.mem "connect:0" acts);
        Alcotest.(check bool) "disconnect not enabled" false (List.mem "disconnect:0" acts));
    Alcotest.test_case "finish gates lifecycle and clicks" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity {
                method void onCreate() {
                  this.findViewById(1).setOnClickListener(new OnClickListener() {
                    method void onClick(View v) { log("click"); }
                  });
                }
                method void onBackPressed() { finish(); } }|}
        in
        let w =
          run_script prog
            [ "lifecycle:A.onCreate"; "lifecycle:A.onStart"; "ui:A.onBackPressed" ]
        in
        let acts = List.map (Fmt.str "%a" World.pp_action) (World.enabled_actions w) in
        Alcotest.(check bool) "no clicks after finish" false (List.mem "click:0" acts);
        Alcotest.(check bool) "no restart forward" false
          (List.exists (fun a -> String.equal a "lifecycle:A.onResume") acts));
    Alcotest.test_case "setEnabled(false) gates the listener" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { field View btn;
                method void onCreate() {
                  btn = this.findViewById(1);
                  btn.setOnClickListener(new OnClickListener() {
                    method void onClick(View v) { log("never"); }
                  });
                  btn.setEnabled(false);
                } }|}
        in
        let w = run_script prog [ "lifecycle:A.onCreate"; "lifecycle:A.onStart" ] in
        let acts = List.map (Fmt.str "%a" World.pp_action) (World.enabled_actions w) in
        Alcotest.(check bool) "click disabled" false (List.mem "click:0" acts));
    Alcotest.test_case "looper callbacks are atomic without live threads" `Quick (fun () ->
        let prog =
          prog_of
            {|class A extends Activity { field int x;
                method void onCreate() { x = 1; x = x + 1; x = x * 10; log(i2s(x)); } }|}
        in
        (* the whole callback runs in one action: no looper-step needed *)
        let w = run_script prog [ "lifecycle:A.onCreate" ] in
        Alcotest.(check (list string)) "completed atomically" [ "20" ] (logs_of w));
    Alcotest.test_case "native thread can interleave into a looper callback" `Quick (fun () ->
        (* Fig 1(c): thread frees between the looper's check and use *)
        let prog =
          prog_of
            {|class Data { method void op() { } }
              class A extends Activity { field Data d; field Executor ex;
                method void onCreate() { ex = new Executor(); d = new Data(); }
                method void onResume() {
                  ex.execute(new Runnable() { method void run() { d = null; } });
                }
                method void onPause() { if (d != null) { d.op(); } } }|}
        in
        (* start onPause, let it pass the check, drain the freeing thread,
           then resume the callback: the re-read of d crashes *)
        let w =
          run_script prog
            [
              "lifecycle:A.onCreate";
              "lifecycle:A.onStart";
              "lifecycle:A.onResume";
              "lifecycle:A.onPause" (* starts; suspends before the guard read *);
              "looper-step" (* guard getfield: d is non-null, branch taken *);
            ]
        in
        (* run the freeing thread to completion *)
        let rec drain_thread () =
          let acts = List.map (Fmt.str "%a" World.pp_action) (World.enabled_actions w) in
          if List.mem "thread:0" acts then begin
            World.perform w (World.A_thread_step 0);
            drain_thread ()
          end
        in
        drain_thread ();
        (* resume the looper callback: the use re-reads d = null *)
        let rec drain_looper () =
          let acts = List.map (Fmt.str "%a" World.pp_action) (World.enabled_actions w) in
          if List.mem "looper-step" acts then begin
            World.perform w World.A_looper_step;
            drain_looper ()
          end
        in
        drain_looper ();
        Alcotest.(check bool) "NPE observed" true (List.length (World.npes w) >= 1));
    Alcotest.test_case "monitors block the other fiber" `Quick (fun () ->
        let prog =
          prog_of
            {|class Data { method void op() { } }
              class A extends Activity { field Data d; field Data lock;
                method void onCreate() { lock = new Data(); d = new Data(); }
                method void onResume() {
                  new Thread(new Runnable() {
                    method void run() { synchronized (lock) { d = null; } }
                  }).start();
                }
                method void onPause() {
                  synchronized (lock) { if (d != null) { d.op(); } }
                } }|}
        in
        (* brute-force all interleavings up to depth 9: the lock makes the
           guarded use safe, so no schedule may produce an NPE *)
        let npes = Explorer.exhaustive (prog_of "class Unused { }") ~depth:0 in
        ignore npes;
        let found = ref false in
        for seed = 0 to 60 do
          let o = Explorer.random_run prog ~seed ~max_steps:40 in
          if o.Explorer.o_npes <> [] then found := true
        done;
        Alcotest.(check bool) "no NPE under lock" false !found);
  ]

let explorer_tests =
  [
    Alcotest.test_case "same seed, same trace" `Quick (fun () ->
        let app =
          Option.get (Nadroid_corpus.Corpus.find "ConnectBot")
        in
        let prog = prog_of app.Nadroid_corpus.Corpus.source in
        let o1 = Explorer.random_run prog ~seed:5 ~max_steps:30 in
        let o2 = Explorer.random_run prog ~seed:5 ~max_steps:30 in
        Alcotest.(check (list string)) "deterministic"
          (List.map (Fmt.str "%a" World.pp_action) o1.Explorer.o_trace)
          (List.map (Fmt.str "%a" World.pp_action) o2.Explorer.o_trace));
    Alcotest.test_case "validate confirms a seeded true bug" `Quick (fun () ->
        let src, _ =
          Gen.generate
            {
              Spec.app_name = "t";
              activities =
                [ { Spec.act_name = "MainActivity"; patterns = [ Spec.P_ec_pc_uaf ] } ];
              services = 0;
              padding = 0;
            }
        in
        let t = Nadroid_core.Pipeline.analyze ~file:"t" src in
        match t.Nadroid_core.Pipeline.after_unsound with
        | [ w ] ->
            let v = Explorer.validate t.Nadroid_core.Pipeline.prog w () in
            Alcotest.(check bool) "harmful" true v.Explorer.v_harmful;
            Alcotest.(check bool) "has witness" true (v.Explorer.v_witness <> None)
        | _ -> Alcotest.fail "expected one surviving warning");
    Alcotest.test_case "validate rejects a seeded false positive" `Quick (fun () ->
        let src, _ =
          Gen.generate
            {
              Spec.app_name = "t";
              activities =
                [ { Spec.act_name = "MainActivity"; patterns = [ Spec.P_fp_path ] } ];
              services = 0;
              padding = 0;
            }
        in
        let t = Nadroid_core.Pipeline.analyze ~file:"t" src in
        match t.Nadroid_core.Pipeline.after_unsound with
        | [ w ] ->
            let v = Explorer.validate t.Nadroid_core.Pipeline.prog w ~runs:80 () in
            Alcotest.(check bool) "benign" false v.Explorer.v_harmful
        | _ -> Alcotest.fail "expected one surviving warning");
    Alcotest.test_case "exhaustive finds the menu crash" `Quick (fun () ->
        let prog =
          prog_of
            {|class Data { method void op() { } }
              class A extends Activity { field Data d;
                method void onCreateContextMenu() { d.op(); } }|}
        in
        let npes = Explorer.exhaustive prog ~depth:4 in
        Alcotest.(check int) "one distinct site" 1 (List.length npes));
  ]

let suite =
  [ ("interp", interp_tests); ("world", world_tests); ("explorer", explorer_tests) ]
