(* Static-analysis tests: k-object-sensitive points-to + on-the-fly call
   graph, thread-escape, must-held locksets, and the guard/allocation
   dataflow behind the IG/IA/MA/UR filters. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_analysis
module IntSet = Pta.IntSet

let prog_of src = Prog.of_source ~file:"t" src

let pta_of ?k src = Pta.run ?k (prog_of src)

let has_edge pta ~from_meth ~to_meth ~kind_str =
  List.exists
    (fun (e : Pta.call_edge) ->
      let f = (Pta.instance pta e.Pta.ce_from).Pta.i_mref in
      let t = (Pta.instance pta e.Pta.ce_to).Pta.i_mref in
      let k =
        match e.Pta.ce_kind with
        | Pta.E_ordinary -> "ord"
        | Pta.E_api k -> Fmt.str "%a" Nadroid_android.Api.pp k
      in
      String.equal (Fmt.str "%a" Instr.pp_mref f) from_meth
      && String.equal (Fmt.str "%a" Instr.pp_mref t) to_meth
      && String.equal k kind_str)
    (Pta.edges pta)

let pta_tests =
  [
    Alcotest.test_case "entry callbacks become roots" `Quick (fun () ->
        let pta =
          pta_of "class A extends Activity { method void onCreate() { } method void onPause() \
                  { } }"
        in
        Alcotest.(check int) "two roots" 2 (List.length (Pta.roots pta)));
    Alcotest.test_case "virtual dispatch through points-to" `Quick (fun () ->
        let pta =
          pta_of
            "class Base { method void go() { } } class Derived extends Base { method void go() \
             { log(\"d\"); } } class A extends Activity { method void onCreate() { var Base b \
             = new Derived(); b.go(); } }"
        in
        Alcotest.(check bool) "dispatches to Derived.go" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"Derived.go" ~kind_str:"ord"));
    Alcotest.test_case "thread start dispatches the stored target" `Quick (fun () ->
        let pta =
          pta_of
            "class W extends Runnable { method void run() { } } class A extends Activity { \
             method void onCreate() { new Thread(new W()).start(); } }"
        in
        Alcotest.(check bool) "spawn edge" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"W.run" ~kind_str:"spawn:thread"));
    Alcotest.test_case "bindService dispatches both connection callbacks" `Quick (fun () ->
        let pta =
          pta_of
            "class A extends Activity { method void onCreate() { this.bindService(new \
             ServiceConnection() { method void onServiceConnected(Binder b) { } method void \
             onServiceDisconnected() { } }); } }"
        in
        Alcotest.(check bool) "connected" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"A$1.onServiceConnected"
             ~kind_str:"register:service");
        Alcotest.(check bool) "disconnected" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"A$1.onServiceDisconnected"
             ~kind_str:"register:service"));
    Alcotest.test_case "handler post reaches run" `Quick (fun () ->
        let pta =
          pta_of
            "class A extends Activity { field Handler h; method void onCreate() { h = new \
             Handler(); h.post(new Runnable() { method void run() { } }); } }"
        in
        Alcotest.(check bool) "post edge" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"A$1.run" ~kind_str:"post:runnable"));
    Alcotest.test_case "asynctask callbacks dispatched" `Quick (fun () ->
        let pta =
          pta_of
            "class A extends Activity { method void onCreate() { new AsyncTask() { method \
             void doInBackground() { } method void onPostExecute() { } }.execute(); } }"
        in
        Alcotest.(check bool) "background" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"A$1.doInBackground"
             ~kind_str:"spawn:asynctask");
        Alcotest.(check bool) "post execute" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"A$1.onPostExecute"
             ~kind_str:"spawn:asynctask"));
    Alcotest.test_case "opaque factory returns a synthetic object" `Quick (fun () ->
        let pta =
          pta_of
            "class A extends Activity { method void onCreate() { var View v = \
             this.findViewById(3); v.setOnClickListener(new OnClickListener() { method void \
             onClick(View w) { } }); } }"
        in
        Alcotest.(check bool) "click registration seen" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"A$1.onClick" ~kind_str:"register:click"));
    Alcotest.test_case "field flow through the heap" `Quick (fun () ->
        let pta =
          pta_of
            "class Box { field Runnable content; } class A extends Activity { field Box box; \
             method void onCreate() { box = new Box(); box.content = new Runnable() { method \
             void run() { } }; } method void onResume() { var Runnable r = box.content; \
             r.run(); } }"
        in
        Alcotest.(check bool) "run dispatched from load" true
          (has_edge pta ~from_meth:"A.onResume" ~to_meth:"A$1.run" ~kind_str:"ord"));
    Alcotest.test_case "k=2 separates factory allocations; k=0/1 merge them" `Quick (fun () ->
        let src =
          "class Data { } class Base extends Activity { method Data mk() { return new Data(); \
           } } class A extends Base { field Data d; method void onCreate() { d = this.mk(); } \
           } class B extends Base { field Data d; method void onCreate() { d = this.mk(); } }"
        in
        let count_data_objs pta =
          let n = ref 0 in
          for i = 0 to Pta.n_objects pta - 1 do
            if String.equal (Pta.obj_class (Pta.obj pta i)) "Data" then incr n
          done;
          !n
        in
        Alcotest.(check int) "k=0 merges" 1 (count_data_objs (pta_of ~k:0 src));
        Alcotest.(check int) "k=1 merges" 1 (count_data_objs (pta_of ~k:1 src));
        Alcotest.(check int) "k=2 separates" 2 (count_data_objs (pta_of ~k:2 src)));
    Alcotest.test_case "returns flow back to callers" `Quick (fun () ->
        let pta =
          pta_of
            "class P { method void ping() { } } class A extends Activity { method P get() { \
             return new P(); } method void onCreate() { var P p = this.get(); p.ping(); } }"
        in
        Alcotest.(check bool) "ping dispatched" true
          (has_edge pta ~from_meth:"A.onCreate" ~to_meth:"P.ping" ~kind_str:"ord"));
    Alcotest.test_case "unreachable code is not analysed" `Quick (fun () ->
        let pta =
          pta_of
            "class Orphan { method void lost() { log(\"never\"); } } class A extends Activity \
             { method void onCreate() { } }"
        in
        Alcotest.(check bool) "no instance of Orphan.lost" true
          (not
             (List.exists
                (fun (i : Pta.instance) ->
                  String.equal i.Pta.i_mref.Instr.mr_class "Orphan")
                (Pta.instances pta))));
  ]

let escape_tests =
  [
    Alcotest.test_case "component fields escape, callback-locals do not" `Quick (fun () ->
        let src =
          "class Data { } class A extends Activity { field Data shared; method void onCreate() \
           { shared = new Data(); var Data local = new Data(); } method void onPause() { \
           shared = null; } }"
        in
        let pta = pta_of src in
        let esc = Escape.run pta in
        (* find the two Data objects by allocation index *)
        let escaping_data = ref 0 and total_data = ref 0 in
        for i = 0 to Pta.n_objects pta - 1 do
          if String.equal (Pta.obj_class (Pta.obj pta i)) "Data" then begin
            incr total_data;
            if Escape.escapes esc i then incr escaping_data
          end
        done;
        Alcotest.(check int) "two Data objects" 2 !total_data;
        Alcotest.(check int) "only the shared one escapes" 1 !escaping_data);
    Alcotest.test_case "static fields escape" `Quick (fun () ->
        let src =
          "class Data { } class A extends Activity { static field Data cache; method void \
           onCreate() { cache = new Data(); } }"
        in
        let pta = pta_of src in
        let esc = Escape.run pta in
        let any_data_escapes = ref false in
        for i = 0 to Pta.n_objects pta - 1 do
          if String.equal (Pta.obj_class (Pta.obj pta i)) "Data" && Escape.escapes esc i then
            any_data_escapes := true
        done;
        Alcotest.(check bool) "escapes" true !any_data_escapes);
  ]

let lockset_tests =
  let src =
    "class Data { method void op() { } } class A extends Activity { field Data lock; field \
     Data d; method void onCreate() { lock = new Data(); d = new Data(); } method void \
     onPause() { synchronized (lock) { d.op(); } d.op(); } }"
  in
  [
    Alcotest.test_case "lock held inside, empty outside" `Quick (fun () ->
        let prog = prog_of src in
        let pta = Pta.run prog in
        let locks = Lockset.run pta in
        (* find the onPause instance and its two calls to op *)
        let inst =
          List.find
            (fun (i : Pta.instance) ->
              String.equal (Fmt.str "%a" Instr.pp_mref i.Pta.i_mref) "A.onPause")
            (Pta.instances pta)
        in
        let body = Prog.body_exn prog inst.Pta.i_mref in
        let calls =
          Cfg.fold_instrs
            (fun acc i ->
              match i.Instr.i with
              | Instr.Call (_, _, ms, _) when String.equal ms.Sema.ms_name "op" -> i :: acc
              | _ -> acc)
            [] body
          |> List.rev
        in
        match calls with
        | [ inside; outside ] ->
            Alcotest.(check bool) "held inside" false
              (IntSet.is_empty (Lockset.locks_at locks ~inst:inst.Pta.i_id ~instr_id:inside.Instr.id));
            Alcotest.(check bool) "free outside" true
              (IntSet.is_empty (Lockset.locks_at locks ~inst:inst.Pta.i_id ~instr_id:outside.Instr.id))
        | _ -> Alcotest.fail "expected two calls");
    Alcotest.test_case "locks propagate into callees" `Quick (fun () ->
        let src =
          "class Data { } class A extends Activity { field Data lock; field Data d; method \
           void helper() { d = null; } method void onPause() { synchronized (lock) { \
           this.helper(); } } method void onCreate() { lock = new Data(); } }"
        in
        let prog = prog_of src in
        let pta = Pta.run prog in
        let locks = Lockset.run pta in
        let inst =
          List.find
            (fun (i : Pta.instance) ->
              String.equal (Fmt.str "%a" Instr.pp_mref i.Pta.i_mref) "A.helper")
            (Pta.instances pta)
        in
        let body = Prog.body_exn prog inst.Pta.i_mref in
        let put =
          Cfg.fold_instrs
            (fun acc i ->
              match i.Instr.i with Instr.Putfield _ -> Some i | _ -> acc)
            None body
        in
        match put with
        | Some i ->
            Alcotest.(check bool) "held in callee" false
              (IntSet.is_empty (Lockset.locks_at locks ~inst:inst.Pta.i_id ~instr_id:i.Instr.id))
        | None -> Alcotest.fail "no putfield");
  ]

(* -- guards -------------------------------------------------------------- *)

let guards_of src ~meth =
  let prog = prog_of src in
  let body = Prog.body_exn prog { Instr.mr_class = "A"; mr_name = meth } in
  (Guards.analyze body, body)

let first_use body =
  match
    Cfg.fold_instrs
      (fun acc i -> match i.Instr.i with Instr.Getfield _ when acc = None -> Some i | _ -> acc)
      None body
  with
  | Some i -> i
  | None -> Alcotest.fail "no getfield in body"

let last_use body =
  match
    Cfg.fold_instrs
      (fun acc i -> match i.Instr.i with Instr.Getfield _ -> Some i | _ -> acc)
      None body
  with
  | Some i -> i
  | None -> Alcotest.fail "no getfield in body"

let guards_tests =
  [
    Alcotest.test_case "guarded use recognised (field fact)" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void m() { if (d != null) { d.op(); } } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "guarded" true (Guards.is_guarded_use g ~instr:(last_use body)));
    Alcotest.test_case "unguarded use not recognised" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void m() { d.op(); } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "not guarded" false
          (Guards.is_guarded_use g ~instr:(first_use body)));
    Alcotest.test_case "guard via checked local" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void m() { var Data x = d; if (x != null) { x.op(); } } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "guarded via local" true
          (Guards.is_guarded_use g ~instr:(first_use body)));
    Alcotest.test_case "guard killed by an intervening free" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void m() { if (d != null) { d = null; d.op(); } } }"
            ~meth:"m"
        in
        (* the second read of d happens after d = null: the field fact is
           gone, and the loaded temp is never null-checked *)
        Alcotest.(check bool) "fact killed" false
          (Guards.is_guarded_use g ~instr:(last_use body)));
    Alcotest.test_case "must-allocation before use" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void m() { d = new Data(); d.op(); } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "must alloc" true
          (Guards.is_must_alloc_use g ~instr:(last_use body)));
    Alcotest.test_case "allocation on one branch only is not must" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void m(bool p) { if (p) { d = new Data(); } d.op(); } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "not must" false
          (Guards.is_must_alloc_use g ~instr:(last_use body));
        Alcotest.(check bool) "but may" true (Guards.may_allocates g
             (match (last_use body).Instr.i with
             | Instr.Getfield (_, _, fr) -> fr
             | _ -> Alcotest.fail "use")));
    Alcotest.test_case "getter counts only for maybe-allocation" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method Data mk() { return new Data(); } method void m() { d = this.mk(); d.op(); \
             } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "not IA" false (Guards.is_must_alloc_use g ~instr:(last_use body));
        Alcotest.(check bool) "but MA" true (Guards.is_maybe_alloc_use g ~instr:(last_use body)));
    Alcotest.test_case "used-for-return" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { } class A extends Activity { field Data d; method Data peek() { \
             return d; } }"
            ~meth:"peek"
        in
        Alcotest.(check bool) "UR" true (Guards.is_used_for_return g ~instr:(first_use body)));
    Alcotest.test_case "dereferenced load is not used-for-return" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { method void op() { } } class A extends Activity { field Data d; \
             method void m() { d.op(); } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "not UR" false (Guards.is_used_for_return g ~instr:(first_use body)));
    Alcotest.test_case "argument-only load is used-for-return" `Quick (fun () ->
        let g, body =
          guards_of
            "class Data { } class A extends Activity { field Data d; method void sink(Data x) \
             { } method void m() { this.sink(d); } }"
            ~meth:"m"
        in
        Alcotest.(check bool) "UR as argument" true
          (Guards.is_used_for_return g ~instr:(first_use body)));
  ]

let suite =
  [
    ("pta", pta_tests);
    ("escape", escape_tests);
    ("lockset", lockset_tests);
    ("guards", guards_tests);
  ]
