(* Classification of Android callbacks.

   Mirrors the paper's taxonomy (§4, §7): Entry Callbacks (EC) are
   invoked by the Android runtime (lifecycle, UI, system events); Posted
   Callbacks (PC) are triggered from within the application (Handler,
   Service connection, BroadcastReceiver registration, AsyncTask). *)

open Nadroid_lang

type kind =
  | Lifecycle of string  (** Activity lifecycle: onCreate, onResume, ... *)
  | Service_lifecycle of string  (** Service: onCreate, onStartCommand, onBind, onDestroy *)
  | Ui of string  (** onClick, onLongClick, menu callbacks, ... *)
  | System of string  (** onLocationChanged, onSensorChanged, onReceive (manifest) *)
  | Service_conn of [ `Connected | `Disconnected ]
  | Receive  (** dynamically registered BroadcastReceiver.onReceive *)
  | Handle_message
  | Runnable_run
  | Async of [ `Pre | `Background | `Progress | `Post ]

let pp_kind ppf = function
  | Lifecycle m -> Fmt.pf ppf "lifecycle:%s" m
  | Service_lifecycle m -> Fmt.pf ppf "service:%s" m
  | Ui m -> Fmt.pf ppf "ui:%s" m
  | System m -> Fmt.pf ppf "system:%s" m
  | Service_conn `Connected -> Fmt.string ppf "onServiceConnected"
  | Service_conn `Disconnected -> Fmt.string ppf "onServiceDisconnected"
  | Receive -> Fmt.string ppf "onReceive"
  | Handle_message -> Fmt.string ppf "handleMessage"
  | Runnable_run -> Fmt.string ppf "run"
  | Async `Pre -> Fmt.string ppf "onPreExecute"
  | Async `Background -> Fmt.string ppf "doInBackground"
  | Async `Progress -> Fmt.string ppf "onProgressUpdate"
  | Async `Post -> Fmt.string ppf "onPostExecute"

(* Activity lifecycle callback names, in canonical order. *)
let activity_lifecycle =
  [ "onCreate"; "onStart"; "onResume"; "onPause"; "onStop"; "onRestart"; "onDestroy" ]

(* Non-lifecycle entry callbacks declared on Activity. *)
let activity_ui =
  [
    "onActivityResult";
    "onCreateContextMenu";
    "onCreateOptionsMenu";
    "onRetainNonConfigurationInstance";
    "onBackPressed";
    "onConfigurationChanged";
    "onSaveInstanceState";
    "onNewIntent";
  ]

let service_lifecycle = [ "onCreate"; "onStartCommand"; "onBind"; "onUnbind"; "onDestroy" ]

(* Classify an overridden method [meth] given the builtin class that
   declares it ([decl_class]: the closest framework ancestor declaring a
   method of that name). Returns [None] for ordinary methods. *)
let classify ~decl_class ~meth : kind option =
  match (decl_class, meth) with
  | "Activity", m when List.mem m activity_lifecycle -> Some (Lifecycle m)
  | "Activity", m when List.mem m activity_ui -> Some (Ui m)
  | "Service", m when List.mem m service_lifecycle -> Some (Service_lifecycle m)
  | "OnClickListener", "onClick" -> Some (Ui "onClick")
  | "OnLongClickListener", "onLongClick" -> Some (Ui "onLongClick")
  | "LocationListener", "onLocationChanged" -> Some (System "onLocationChanged")
  | "SensorListener", "onSensorChanged" -> Some (System "onSensorChanged")
  | "BroadcastReceiver", "onReceive" -> Some Receive
  | "ServiceConnection", "onServiceConnected" -> Some (Service_conn `Connected)
  | "ServiceConnection", "onServiceDisconnected" -> Some (Service_conn `Disconnected)
  | "Handler", "handleMessage" -> Some Handle_message
  | "Runnable", "run" -> Some Runnable_run
  | "AsyncTask", "onPreExecute" -> Some (Async `Pre)
  | "AsyncTask", "doInBackground" -> Some (Async `Background)
  | "AsyncTask", "onProgressUpdate" -> Some (Async `Progress)
  | "AsyncTask", "onPostExecute" -> Some (Async `Post)
  | _, _ -> None

(* The closest builtin ancestor of [cls] (inclusive) that declares [meth],
   i.e. the framework signature an override implements. *)
let framework_decl (sema : Sema.t) ~cls ~meth : string option =
  let rec go name =
    let c = Sema.get_class sema name in
    let declares = List.exists (fun m -> String.equal m.Sema.rm_name meth) c.Sema.rc_methods in
    if c.Sema.rc_builtin && declares then Some name
    else match c.Sema.rc_super with None -> None | Some s -> go s
  in
  go cls

(* Classify a user method as a callback: it must override a framework
   callback declaration. *)
let of_method (sema : Sema.t) ~cls ~meth : kind option =
  match framework_decl sema ~cls ~meth with
  | None -> None
  | Some decl_class -> classify ~decl_class ~meth

(* Does a callback run on a looper (event) thread? [doInBackground] is the
   only callback executing on a background thread. *)
let on_looper = function
  | Async `Background -> false
  | Lifecycle _ | Service_lifecycle _ | Ui _ | System _ | Service_conn _ | Receive
  | Handle_message | Runnable_run
  | Async (`Pre | `Progress | `Post) ->
      true
