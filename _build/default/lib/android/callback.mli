(** Classification of Android callbacks, mirroring the paper's taxonomy
    (§4, §7): Entry Callbacks are invoked by the runtime (lifecycle, UI,
    system events); Posted Callbacks are triggered from within the
    application (Handler, service connection, receiver registration,
    AsyncTask). *)

type kind =
  | Lifecycle of string  (** Activity lifecycle: onCreate, onResume, ... *)
  | Service_lifecycle of string
  | Ui of string  (** onClick, menu and result callbacks, ... *)
  | System of string  (** onLocationChanged, onSensorChanged *)
  | Service_conn of [ `Connected | `Disconnected ]
  | Receive
  | Handle_message
  | Runnable_run
  | Async of [ `Pre | `Background | `Progress | `Post ]

val pp_kind : kind Fmt.t

val activity_lifecycle : string list
(** Activity lifecycle callback names in canonical order. *)

val activity_ui : string list
(** Non-lifecycle entry callbacks declared on Activity. *)

val service_lifecycle : string list

val classify : decl_class:string -> meth:string -> kind option
(** Classify an override given the builtin class declaring it. *)

val framework_decl : Nadroid_lang.Sema.t -> cls:string -> meth:string -> string option
(** The closest builtin ancestor of [cls] declaring [meth]. *)

val of_method : Nadroid_lang.Sema.t -> cls:string -> meth:string -> kind option
(** Classify a user method as a callback (it must override a framework
    callback declaration). *)

val on_looper : kind -> bool
(** Does the callback run on a looper thread? Only [doInBackground]
    does not. *)
