(** The Activity lifecycle automaton.

    Used by the Must-Happens-Before filter (§6.1.1) — where only
    [onCreate]-first and [onDestroy]-last are statically sound, because
    of the pause/resume and stop/restart back edges — and by the
    simulator's event generator, which only fires transitions the
    automaton allows. *)

type state = S_init | S_created | S_started | S_resumed | S_paused | S_stopped | S_destroyed

val pp_state : state Fmt.t

val transitions : (state * string * state) list

val initial : state

val enabled : state -> (string * state) list
(** Callbacks that may fire in a state, with their successor state. *)

val step : state -> string -> state option

val ui_enabled : state -> bool
(** May UI events (clicks, menus) fire in this state? *)

val must_happen_before : first:string -> second:string -> bool
(** The statically sound lifecycle orders, for two callbacks of the
    {e same} activity: [onCreate] before everything, everything before
    [onDestroy]. Callers guarantee both are lifecycle/UI callbacks. *)

val sequences : max_len:int -> string list list
(** All callback sequences of bounded length the automaton accepts. *)
