lib/android/callback.ml: Fmt List Nadroid_lang Sema String
