lib/android/api.ml: Fmt Nadroid_lang Sema
