lib/android/callback.mli: Fmt Nadroid_lang
