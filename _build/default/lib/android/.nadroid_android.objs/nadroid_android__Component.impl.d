lib/android/component.ml: Callback Fmt List Nadroid_lang Sema
