lib/android/lifecycle.mli: Fmt
