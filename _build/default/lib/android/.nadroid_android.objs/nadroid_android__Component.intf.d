lib/android/component.mli: Callback Fmt Nadroid_lang
