lib/android/api.mli: Fmt Nadroid_lang
