lib/android/lifecycle.ml: Fmt List String
