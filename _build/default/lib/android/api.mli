(** Classification of framework API calls.

    Calls whose statically resolved declaring class is a framework
    builtin are treated specially by the analyses: spawns create native
    threads, posts and registrations create posted callbacks (children
    of the caller, paper §4.2), and cancellation APIs feed the
    Cancel-Happens-Before filter (§6.2.1). *)

type spawn = Spawn_thread | Spawn_executor | Spawn_async_task

type post =
  | Post_runnable  (** Handler.post/postDelayed, View.post, runOnUiThread *)
  | Post_message  (** Handler.sendMessage / sendEmptyMessage *)

type register =
  | Reg_service  (** bindService *)
  | Reg_receiver  (** registerReceiver *)
  | Reg_click
  | Reg_long_click
  | Reg_location
  | Reg_sensor

type cancel =
  | Cancel_finish
  | Cancel_unbind
  | Cancel_unregister_receiver
  | Cancel_remove_callbacks
  | Cancel_async_task
  | Cancel_remove_location
  | Cancel_unregister_sensor

type kind = Spawn of spawn | Post of post | Register of register | Cancel of cancel | Other

type callback_carrier = [ `Receiver | `Arg of int ]
(** Where the callback object lives for a spawn/post/register call. *)

val pp : kind Fmt.t

val classify : Nadroid_lang.Sema.method_sig -> kind
(** Keyed on the {e declaring} class, so user methods that merely share a
    framework method's name classify as {!Other}. *)

val carrier : kind -> callback_carrier option

val triggered_callbacks : kind -> string list
(** Callback method names invoked on the carrier object. *)

val opaque_builtin : Nadroid_lang.Sema.t -> Nadroid_lang.Sema.method_sig -> bool
(** Is this a framework intrinsic whose empty builtin body must not be
    analysed as an ordinary call target? *)
