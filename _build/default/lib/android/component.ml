(* Discovery of application components.

   A component is a user (non-anonymous) class extending Activity,
   Service, or BroadcastReceiver. Components are the roots of
   threadification: the framework instantiates them and invokes their
   entry callbacks (§4.1). A BroadcastReceiver that is only ever
   registered dynamically is not a manifest component; we treat
   non-anonymous receiver subclasses as manifest-declared, matching how
   real apps declare them in XML. *)

open Nadroid_lang

type kind = Activity | Service | Receiver

let pp_kind ppf = function
  | Activity -> Fmt.string ppf "activity"
  | Service -> Fmt.string ppf "service"
  | Receiver -> Fmt.string ppf "receiver"

type t = {
  cls : string;
  kind : kind;
  entry_callbacks : (string * Callback.kind) list;
      (** overridden entry-callback methods, with their classification *)
}

let kind_of_class (sema : Sema.t) name : kind option =
  if Sema.is_subclass sema name "Activity" then Some Activity
  else if Sema.is_subclass sema name "Service" then Some Service
  else if Sema.is_subclass sema name "BroadcastReceiver" then Some Receiver
  else None

(* Entry callbacks of a component: every overridden method that
   classifies as a framework callback. This includes callbacks inherited
   from user-written superclasses (common with base activities). *)
let entry_callbacks_of (sema : Sema.t) name : (string * Callback.kind) list =
  let rec collect cls acc =
    let c = Sema.get_class sema cls in
    let acc =
      if c.Sema.rc_builtin then acc
      else
        List.fold_left
          (fun acc (m : Sema.rmeth) ->
            if List.mem_assoc m.Sema.rm_name acc then acc
            else
              match Callback.of_method sema ~cls:name ~meth:m.Sema.rm_name with
              | Some k -> (m.Sema.rm_name, k) :: acc
              | None -> acc)
          acc c.Sema.rc_methods
    in
    match c.Sema.rc_super with None -> acc | Some s -> collect s acc
  in
  List.rev (collect name [])

let discover (sema : Sema.t) : t list =
  List.filter_map
    (fun (c : Sema.rcls) ->
      if c.Sema.rc_anon then None
      else
        match kind_of_class sema c.Sema.rc_name with
        | None -> None
        | Some kind ->
            Some
              {
                cls = c.Sema.rc_name;
                kind;
                entry_callbacks = entry_callbacks_of sema c.Sema.rc_name;
              })
    (Sema.user_classes sema)

let pp ppf t =
  Fmt.pf ppf "%a %s [%a]" pp_kind t.kind t.cls
    Fmt.(list ~sep:(any ", ") (using fst string))
    t.entry_callbacks
