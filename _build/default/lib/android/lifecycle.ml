(* The Activity lifecycle automaton.

   Used in two places:
   - the Must-Happens-Before filter (§6.1.1): onCreate must precede every
     other callback of the same activity, and onDestroy must follow them;
     crucially there is NO static MHB among onResume/onPause/UI callbacks
     because of the lifecycle back-edges (the "back button", §6.1.1);
   - the dynamic simulator's event generator, which only fires lifecycle
     transitions the automaton allows. *)

type state = S_init | S_created | S_started | S_resumed | S_paused | S_stopped | S_destroyed

let pp_state ppf s =
  Fmt.string ppf
    (match s with
    | S_init -> "init"
    | S_created -> "created"
    | S_started -> "started"
    | S_resumed -> "resumed"
    | S_paused -> "paused"
    | S_stopped -> "stopped"
    | S_destroyed -> "destroyed")

(* Transitions: (from, callback, to). Includes the back edges that defeat
   naive happens-before assumptions. *)
let transitions =
  [
    (S_init, "onCreate", S_created);
    (S_created, "onStart", S_started);
    (S_started, "onResume", S_resumed);
    (S_resumed, "onPause", S_paused);
    (S_paused, "onResume", S_resumed);  (* back edge *)
    (S_paused, "onStop", S_stopped);
    (S_stopped, "onRestart", S_started);  (* back edge *)
    (S_stopped, "onDestroy", S_destroyed);
  ]

let initial = S_init

let enabled state = List.filter_map (fun (f, cb, t) -> if f = state then Some (cb, t) else None) transitions

let step state cb =
  List.find_map (fun (f, c, t) -> if f = state && String.equal c cb then Some t else None) transitions

(* In which states can a given UI / system callback fire? UI callbacks
   need a visible activity; we allow them whenever the activity is
   started or resumed. *)
let ui_enabled state = match state with S_started | S_resumed -> true | S_init | S_created | S_paused | S_stopped | S_destroyed -> false

(* -- static must-happens-before ---------------------------------------- *)

(* MHB-Lifecycle (§6.1.1): the only sound lifecycle orders are
   [onCreate < X] for every other callback X of the same activity, and
   [X < onDestroy]. Everything in between is circular. *)
let must_happen_before ~(first : string) ~(second : string) : bool =
  (* callers guarantee both callbacks belong to the same activity and are
     lifecycle/UI callbacks (including registered listeners like onClick) *)
  (String.equal first "onCreate" && not (String.equal second "onCreate"))
  || (String.equal second "onDestroy" && not (String.equal first "onDestroy"))

(* All callback sequences of bounded length the automaton accepts,
   starting from [initial]; used by property tests and by the simulator's
   exhaustive mode. *)
let sequences ~max_len : string list list =
  let rec go state len =
    if len = 0 then [ [] ]
    else
      let stop = [ [] ] in
      let continue =
        List.concat_map (fun (cb, s') -> List.map (fun rest -> cb :: rest) (go s' (len - 1)))
          (enabled state)
      in
      stop @ continue
  in
  go initial max_len
