(** Discovery of application components: user (non-anonymous) classes
    extending Activity, Service, or BroadcastReceiver. Components are
    the roots of threadification — the framework instantiates them and
    invokes their entry callbacks (§4.1). *)

type kind = Activity | Service | Receiver

val pp_kind : kind Fmt.t

type t = {
  cls : string;
  kind : kind;
  entry_callbacks : (string * Callback.kind) list;
      (** overridden entry-callback methods with their classification,
          including ones inherited from user-written base classes *)
}

val kind_of_class : Nadroid_lang.Sema.t -> string -> kind option

val entry_callbacks_of : Nadroid_lang.Sema.t -> string -> (string * Callback.kind) list

val discover : Nadroid_lang.Sema.t -> t list

val pp : t Fmt.t
