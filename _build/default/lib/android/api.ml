(* Classification of framework API calls.

   The analyses treat calls whose statically resolved declaring class is a
   framework builtin specially: spawns create native threads, posts and
   registrations create posted callbacks (children of the caller, §4.2),
   and cancellation APIs feed the Cancel-Happens-Before filter (§6.2.1). *)

open Nadroid_lang

type spawn =
  | Spawn_thread  (** [Thread.start()]: run() of the thread's target *)
  | Spawn_executor  (** [Executor.execute(r)]: run() of [r] on a pool thread *)
  | Spawn_async_task  (** [AsyncTask.execute()]: doInBackground + looper callbacks *)

type post =
  | Post_runnable  (** Handler.post/postDelayed, View.post, Activity.runOnUiThread *)
  | Post_message  (** Handler.sendMessage / sendEmptyMessage -> handleMessage *)

type register =
  | Reg_service  (** bindService: onServiceConnected / onServiceDisconnected *)
  | Reg_receiver  (** registerReceiver: onReceive *)
  | Reg_click  (** setOnClickListener: onClick *)
  | Reg_long_click
  | Reg_location  (** requestLocationUpdates: onLocationChanged *)
  | Reg_sensor

type cancel =
  | Cancel_finish  (** Activity.finish: no further UI/lifecycle callbacks *)
  | Cancel_unbind  (** unbindService *)
  | Cancel_unregister_receiver
  | Cancel_remove_callbacks  (** Handler.removeCallbacksAndMessages *)
  | Cancel_async_task
  | Cancel_remove_location
  | Cancel_unregister_sensor

type kind =
  | Spawn of spawn
  | Post of post
  | Register of register
  | Cancel of cancel
  | Other  (** ordinary (or framework-internal) call *)

(* Which argument carries the callback object. [`Receiver]: the receiver
   itself (AsyncTask.execute, Thread.start). [`Arg n]: the n-th argument. *)
type callback_carrier = [ `Receiver | `Arg of int ]

let pp ppf = function
  | Spawn Spawn_thread -> Fmt.string ppf "spawn:thread"
  | Spawn Spawn_executor -> Fmt.string ppf "spawn:executor"
  | Spawn Spawn_async_task -> Fmt.string ppf "spawn:asynctask"
  | Post Post_runnable -> Fmt.string ppf "post:runnable"
  | Post Post_message -> Fmt.string ppf "post:message"
  | Register Reg_service -> Fmt.string ppf "register:service"
  | Register Reg_receiver -> Fmt.string ppf "register:receiver"
  | Register Reg_click -> Fmt.string ppf "register:click"
  | Register Reg_long_click -> Fmt.string ppf "register:longclick"
  | Register Reg_location -> Fmt.string ppf "register:location"
  | Register Reg_sensor -> Fmt.string ppf "register:sensor"
  | Cancel Cancel_finish -> Fmt.string ppf "cancel:finish"
  | Cancel Cancel_unbind -> Fmt.string ppf "cancel:unbind"
  | Cancel Cancel_unregister_receiver -> Fmt.string ppf "cancel:unregister-receiver"
  | Cancel Cancel_remove_callbacks -> Fmt.string ppf "cancel:remove-callbacks"
  | Cancel Cancel_async_task -> Fmt.string ppf "cancel:asynctask"
  | Cancel Cancel_remove_location -> Fmt.string ppf "cancel:remove-location"
  | Cancel Cancel_unregister_sensor -> Fmt.string ppf "cancel:unregister-sensor"
  | Other -> Fmt.string ppf "other"

(* Classify a statically resolved call. The signature's [ms_class] is the
   declaring class, so user overrides of ordinary methods don't collide
   with framework names. *)
let classify (ms : Sema.method_sig) : kind =
  match (ms.Sema.ms_class, ms.Sema.ms_name) with
  | "Thread", "start" -> Spawn Spawn_thread
  | "Executor", "execute" -> Spawn Spawn_executor
  | "AsyncTask", "execute" -> Spawn Spawn_async_task
  | "Handler", ("post" | "postDelayed") -> Post Post_runnable
  | "View", "post" -> Post Post_runnable
  | "Activity", "runOnUiThread" -> Post Post_runnable
  | "Handler", ("sendMessage" | "sendEmptyMessage") -> Post Post_message
  | "Context", "bindService" -> Register Reg_service
  | "Context", "registerReceiver" -> Register Reg_receiver
  | "View", "setOnClickListener" -> Register Reg_click
  | "View", "setOnLongClickListener" -> Register Reg_long_click
  | "LocationManager", "requestLocationUpdates" -> Register Reg_location
  | "SensorManager", "registerListener" -> Register Reg_sensor
  | "Activity", "finish" -> Cancel Cancel_finish
  | "Context", "unbindService" -> Cancel Cancel_unbind
  | "Context", "unregisterReceiver" -> Cancel Cancel_unregister_receiver
  | "Handler", "removeCallbacksAndMessages" -> Cancel Cancel_remove_callbacks
  | "AsyncTask", "cancel" -> Cancel Cancel_async_task
  | "LocationManager", "removeUpdates" -> Cancel Cancel_remove_location
  | "SensorManager", "unregisterListener" -> Cancel Cancel_unregister_sensor
  | _, _ -> Other

(* Where the callback object lives for a spawn/post/register call. *)
let carrier : kind -> callback_carrier option = function
  | Spawn Spawn_thread | Spawn Spawn_async_task -> Some `Receiver
  | Spawn Spawn_executor -> Some (`Arg 0)
  | Post Post_runnable -> Some (`Arg 0)
  | Post Post_message -> None  (* the *receiving handler* is the callback object *)
  | Register (Reg_service | Reg_receiver | Reg_click | Reg_long_click | Reg_location | Reg_sensor)
    ->
      Some (`Arg 0)
  | Cancel _ | Other -> None

(* Callback method names triggered on the carrier object. *)
let triggered_callbacks : kind -> string list = function
  | Spawn Spawn_thread | Spawn Spawn_executor -> [ "run" ]
  | Spawn Spawn_async_task ->
      [ "onPreExecute"; "doInBackground"; "onProgressUpdate"; "onPostExecute" ]
  | Post Post_runnable -> [ "run" ]
  | Post Post_message -> [ "handleMessage" ]
  | Register Reg_service -> [ "onServiceConnected"; "onServiceDisconnected" ]
  | Register Reg_receiver -> [ "onReceive" ]
  | Register Reg_click -> [ "onClick" ]
  | Register Reg_long_click -> [ "onLongClick" ]
  | Register Reg_location -> [ "onLocationChanged" ]
  | Register Reg_sensor -> [ "onSensorChanged" ]
  | Cancel _ | Other -> []

(* Is this call a framework intrinsic whose (empty) builtin body should
   not be analysed as an ordinary call target? True for every builtin
   method except the handful with real MiniAndroid bodies. *)
let opaque_builtin (sema : Sema.t) (ms : Sema.method_sig) : bool =
  let cls = Sema.get_class sema ms.Sema.ms_class in
  if not cls.Sema.rc_builtin then false
  else
    match (ms.Sema.ms_class, ms.Sema.ms_name) with
    | "Thread", "init" | "Message", "init" -> false
    | _, _ -> true
