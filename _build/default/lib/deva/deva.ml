(* A faithful reimplementation of the DEvA baseline (Safi et al.,
   ESEC/FSE'15) as characterised by the paper (§2.3, §8.7):

   - {b intra-class scope}: read/write sets are computed per class group
     (a class plus its anonymous inner classes); accesses to another
     class's fields through object references are invisible, so
     inter-class anomalies are missed;
   - {b no happens-before analysis}: every pair of event callbacks is
     considered racy, which floods the report with MHB-orderable pairs
     (e.g. uses in onX vs frees in onDestroy);
   - {b no multi-threading}: bodies reached only through native threads
     are not part of any event callback's read/write set;
   - {b unsound IG/IA}: the if-guard and intra-allocation filters are
     applied assuming all methods are atomic, pruning true races between
     callbacks and threads.

   Used by the Table 3 comparison. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_android
open Nadroid_analysis

type warning = {
  dw_field : string;  (** qualified racy field *)
  dw_class : string;  (** class group owning the callbacks *)
  dw_use_cb : string;  (** callback containing the use *)
  dw_free_cb : string;  (** callback containing the free *)
}

let pp ppf w =
  Fmt.pf ppf "%s in %s: use in %s, free in %s" w.dw_field w.dw_class w.dw_use_cb w.dw_free_cb

(* The root of a class's outer chain: anonymous classes belong to the
   group of the class they were written in. *)
let rec group_root (sema : Sema.t) cls =
  match (Sema.get_class sema cls).Sema.rc_outer with
  | Some o -> group_root sema o
  | None -> cls

(* Event callbacks of a group: methods (of the root or its anonymous
   members) that override a framework callback. DEvA has no thread model,
   so [run] bodies only count when they are posted as events — without a
   points-to analysis DEvA cannot tell, and it includes them all; we
   follow that. *)
(* DEvA recognises event handlers by name against a broad handler list
   covering Fragments and custom components — approximated here as any
   [onXxx] method. This is how DEvA sees the Fragment callbacks nAdroid's
   component model misses (Table 3, Browser row). *)
let name_looks_like_callback name =
  String.length name > 2
  && String.sub name 0 2 = "on"
  && name.[2] >= 'A'
  && name.[2] <= 'Z'

let group_callbacks (sema : Sema.t) root : (string * Sema.rmeth) list =
  List.concat_map
    (fun (c : Sema.rcls) ->
      if String.equal (group_root sema c.Sema.rc_name) root then
        List.filter_map
          (fun (m : Sema.rmeth) ->
            match Callback.of_method sema ~cls:c.Sema.rc_name ~meth:m.Sema.rm_name with
            | Some _ -> Some (c.Sema.rc_name ^ "." ^ m.Sema.rm_name, m)
            | None ->
                if name_looks_like_callback m.Sema.rm_name then
                  Some (c.Sema.rc_name ^ "." ^ m.Sema.rm_name, m)
                else None)
          c.Sema.rc_methods
      else [])
    (Sema.user_classes sema)

let field_key (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

(* Accesses of a callback body to fields of classes inside the group:
   DEvA's read/write sets are intra-class, so only fields declared by the
   group's classes count. *)
type accesses = { reads : (string * Instr.t) list; writes_null : (string * Instr.t) list }

let body_accesses (sema : Sema.t) (prog : Prog.t) root (m : Sema.rmeth) : accesses =
  let in_group (fr : Instr.fref) = String.equal (group_root sema fr.Sema.fr_class) root in
  match Prog.body prog { Instr.mr_class = m.Sema.rm_class; mr_name = m.Sema.rm_name } with
  | None -> { reads = []; writes_null = [] }
  | Some body ->
      let reads = ref [] and writes = ref [] in
      Cfg.iter_instrs
        (fun ins ->
          match ins.Instr.i with
          | Instr.Getfield (_, _, fr) when in_group fr ->
              if not (String.equal fr.Sema.fr_name "outer") then
                reads := (field_key fr, ins) :: !reads
          | Instr.Getstatic (_, fr) when in_group fr -> reads := (field_key fr, ins) :: !reads
          | Instr.Putfield (_, fr, _, Instr.Src_null) when in_group fr ->
              writes := (field_key fr, ins) :: !writes
          | Instr.Putstatic (fr, _, Instr.Src_null) when in_group fr ->
              writes := (field_key fr, ins) :: !writes
          | Instr.Getfield _ | Instr.Getstatic _ | Instr.Putfield _ | Instr.Putstatic _
          | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Call _ | Instr.Intrinsic _
          | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
              ())
        body;
      { reads = !reads; writes_null = !writes }

(* Unsound IG/IA: prune a use that is guarded or preceded by an
   allocation, with no atomicity requirement (§2.3). *)
let unsoundly_protected (prog : Prog.t) (m : Sema.rmeth) (ins : Instr.t) =
  match Prog.body prog { Instr.mr_class = m.Sema.rm_class; mr_name = m.Sema.rm_name } with
  | None -> false
  | Some body ->
      let g = Guards.analyze body in
      Guards.is_guarded_use g ~instr:ins || Guards.is_must_alloc_use g ~instr:ins

let run (prog : Prog.t) : warning list =
  let sema = prog.Prog.sema in
  let roots =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (c : Sema.rcls) ->
           if c.Sema.rc_anon then None else Some c.Sema.rc_name)
         (Sema.user_classes sema))
  in
  let out = ref [] in
  List.iter
    (fun root ->
      let cbs = group_callbacks sema root in
      List.iter
        (fun (use_name, use_m) ->
          let ua = body_accesses sema prog root use_m in
          List.iter
            (fun (free_name, free_m) ->
              if not (String.equal use_name free_name) then
                let fa = body_accesses sema prog root free_m in
                List.iter
                  (fun (ukey, uins) ->
                    if
                      List.exists (fun (fkey, _) -> String.equal ukey fkey) fa.writes_null
                      && not (unsoundly_protected prog use_m uins)
                    then
                      let w =
                        {
                          dw_field = ukey;
                          dw_class = root;
                          dw_use_cb = use_name;
                          dw_free_cb = free_name;
                        }
                      in
                      if not (List.mem w !out) then out := w :: !out)
                  ua.reads)
            cbs)
        cbs)
    roots;
  List.rev !out
