(** The DEvA baseline (Safi et al., ESEC/FSE'15), reimplemented with the
    limitations the paper documents (§2.3, §8.7): intra-class read/write
    sets (a class plus its anonymous inner classes), broad name-based
    event-handler recognition (covering Fragment-style classes), no
    happens-before analysis, no thread model, and unsound IG/IA filters
    applied as if all methods were atomic. *)

type warning = {
  dw_field : string;  (** qualified racy field *)
  dw_class : string;  (** class group owning the callbacks *)
  dw_use_cb : string;
  dw_free_cb : string;
}

val pp : warning Fmt.t

val run : Nadroid_ir.Prog.t -> warning list
(** DEvA's "harmful" warnings: event anomalies surviving its own
    (unsound) if-guard and intra-allocation filters. *)
