lib/deva/deva.mli: Fmt Nadroid_ir
