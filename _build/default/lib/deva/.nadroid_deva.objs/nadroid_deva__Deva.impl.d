lib/deva/deva.ml: Callback Cfg Fmt Guards Instr List Nadroid_analysis Nadroid_android Nadroid_ir Nadroid_lang Prog Sema String
