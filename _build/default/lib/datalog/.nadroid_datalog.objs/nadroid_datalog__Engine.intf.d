lib/datalog/engine.mli: Relation Symbol
