lib/datalog/relation.ml: Array Fmt Hashtbl List Printf Symbol
