lib/datalog/relation.mli: Fmt Symbol
