lib/datalog/symbol.mli:
