lib/datalog/symbol.ml: Array Hashtbl Printf
