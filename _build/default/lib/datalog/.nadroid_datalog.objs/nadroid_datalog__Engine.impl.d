lib/datalog/engine.ml: Array Hashtbl List Map Printf Relation String Symbol
