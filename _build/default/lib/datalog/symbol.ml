(* String interning: Datalog constants are small integers; this table maps
   them back and forth to human-readable names.

   Analyses encode their domains (methods, fields, allocation sites,
   abstract threads...) as interned strings, mirroring how Chord maps
   program entities into bddbddb domains. *)

type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create () = { by_name = Hashtbl.create 256; by_id = Array.make 256 ""; next = 0 }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      let id = t.next in
      t.next <- id + 1;
      if id >= Array.length t.by_id then begin
        let bigger = Array.make (2 * Array.length t.by_id) "" in
        Array.blit t.by_id 0 bigger 0 (Array.length t.by_id);
        t.by_id <- bigger
      end;
      t.by_id.(id) <- name;
      Hashtbl.add t.by_name name id;
      id

let find_opt t name = Hashtbl.find_opt t.by_name name

let name t id =
  if id < 0 || id >= t.next then invalid_arg (Printf.sprintf "Symbol.name: bad id %d" id);
  t.by_id.(id)

let size t = t.next
