(** String interning: Datalog constants are dense integers; this table
    maps them back and forth to names, mirroring how Chord maps program
    entities into bddbddb domains. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Idempotent: the same name always yields the same id. *)

val find_opt : t -> string -> int option

val name : t -> int -> string
(** @raise Invalid_argument on an id never produced by {!intern}. *)

val size : t -> int
