(* Classification of UAF warnings by the origins of their use and free
   operations (§7): callbacks are Entry Callbacks (EC) or Posted Callbacks
   (PC); native threads are Reachable (RT) or Non-reachable (NT) relative
   to the callback they race with. Thread reachability is transitive
   across thread creation and event posting (it follows the
   threadification lineage). *)

type category = EC_EC | EC_PC | PC_PC | C_RT | C_NT

let all = [ EC_EC; EC_PC; PC_PC; C_RT; C_NT ]

let to_string = function
  | EC_EC -> "EC-EC"
  | EC_PC -> "EC-PC"
  | PC_PC -> "PC-PC"
  | C_RT -> "C-RT"
  | C_NT -> "C-NT"

let pp ppf c = Fmt.string ppf (to_string c)

type side = S_ec | S_pc | S_thread

let side_of (th : Threadify.thread) : side =
  match th.Threadify.th_kind with
  | Threadify.Entry_cb _ -> S_ec
  | Threadify.Posted_cb _ -> S_pc
  | Threadify.Native_thread | Threadify.Async_background -> S_thread
  | Threadify.Dummy_main -> S_ec

(* Category of a single (use-thread, free-thread) pair. *)
let of_pair (tf : Threadify.t) (tu_id : int) (tf_id : int) : category =
  let tu = Threadify.thread tf tu_id and tfr = Threadify.thread tf tf_id in
  match (side_of tu, side_of tfr) with
  | S_ec, S_ec -> EC_EC
  | S_ec, S_pc | S_pc, S_ec -> EC_PC
  | S_pc, S_pc -> PC_PC
  | (S_ec | S_pc), S_thread | S_thread, (S_ec | S_pc) ->
      let cb, th = if side_of tu = S_thread then (tfr, tu) else (tu, tfr) in
      (* RT: the thread descends from this callback (transitively through
         spawns and posts) *)
      if Threadify.is_ancestor tf ~anc:cb ~desc:th then C_RT else C_NT
  | S_thread, S_thread -> C_NT

(* A warning's category: the most asynchronous of its pairs — the paper's
   hypothesis (§7) is that more complex interactions are likelier bugs, so
   we surface the highest-risk category. Order: C-NT > C-RT > PC-PC >
   EC-PC > EC-EC. *)
let rank = function C_NT -> 4 | C_RT -> 3 | PC_PC -> 2 | EC_PC -> 1 | EC_EC -> 0

let of_warning (tf : Threadify.t) (w : Detect.warning) : category =
  match w.Detect.w_pairs with
  | [] -> EC_EC
  | p :: rest ->
      List.fold_left
        (fun acc (u, f) ->
          let c = of_pair tf u f in
          if rank c > rank acc then c else acc)
        (of_pair tf (fst p) (snd p))
        rest

(* Histogram of warnings by category, in the Table 1 column order. *)
let histogram (tf : Threadify.t) (ws : Detect.warning list) : (category * int) list =
  List.map
    (fun c -> (c, List.length (List.filter (fun w -> of_warning tf w = c) ws)))
    all
