(* May-Happen-in-Parallel analysis — implemented to justify dropping it.

   Chord's race detector includes an MHP analysis driven by blocking
   synchronisation ([Thread.join], wait/notify). The paper removes it
   (§5): on Android, blocking primitives that enforce cross-thread order
   are rare (blocking the looper freezes the UI), so MHP adds almost
   nothing while requiring flow-sensitive reasoning; the Android-specific
   happens-before filters (§6) replace it.

   This module implements the join-based core of such an analysis so the
   claim can be measured (see the `ablation` benchmark): a callback's
   instructions after a [Thread.join] cannot run in parallel with the
   joined thread, so a racy pair whose callback-side access is
   join-ordered is pruned. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_analysis
module IntSet = Pta.IntSet

(* Thread objects joined before a given instruction of a body: forward
   must-analysis collecting the points-to sets of join receivers. *)
let joined_before (pta : Pta.t) ~inst (body : Cfg.body) : (int, IntSet.t) Hashtbl.t =
  let module D = Dataflow in
  let universe = ref IntSet.empty in
  Cfg.iter_instrs
    (fun ins ->
      match ins.Instr.i with
      | Instr.Call (_, recv, ms, _)
        when String.equal ms.Sema.ms_class "Thread" && String.equal ms.Sema.ms_name "join" ->
          universe := IntSet.union !universe (Pta.pts_var pta ~inst ~v:recv)
      | Instr.Call _ | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _
      | Instr.Putfield _ | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _
      | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
          ())
    body;
  let spec =
    {
      D.init_entry = IntSet.empty;
      init_other = !universe;
      join = IntSet.inter;
      equal = IntSet.equal;
      transfer_instr =
        (fun ins fact ->
          match ins.Instr.i with
          | Instr.Call (_, recv, ms, _)
            when String.equal ms.Sema.ms_class "Thread" && String.equal ms.Sema.ms_name "join"
            ->
              (* a join only orders when the receiver is unambiguous *)
              let p = Pta.pts_var pta ~inst ~v:recv in
              if IntSet.cardinal p = 1 then IntSet.union fact p else fact
          | Instr.Call _ | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _
          | Instr.Putfield _ | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _
          | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
              fact);
      transfer_edge = (fun _ _ f -> f);
    }
  in
  let res = D.run body spec in
  let table = Hashtbl.create 32 in
  D.iter_facts res (fun ins fact -> Hashtbl.replace table ins.Instr.id fact) ;
  table

(* The Thread objects behind a native modeled thread: the receivers of
   the Thread.start() edge that created it. *)
let thread_objects (tf : Threadify.t) (th : Threadify.thread) : IntSet.t =
  match th.Threadify.th_origin with
  | Threadify.O_edge e -> (
      match e.Pta.ce_kind with
      | Pta.E_api (Nadroid_android.Api.Spawn Nadroid_android.Api.Spawn_thread) -> (
          match e.Pta.ce_instr.Instr.i with
          | Instr.Call (_, recv, _, _) ->
              Pta.pts_var tf.Threadify.pta ~inst:e.Pta.ce_from ~v:recv
          | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Putfield _
          | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _ | Instr.Unop _
          | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
              IntSet.empty)
      | Pta.E_api _ | Pta.E_ordinary -> IntSet.empty)
  | Threadify.O_main | Threadify.O_root _ -> IntSet.empty

(* Can the two sides of a warning pair actually run in parallel? [false]
   only when the callback-side access is ordered after a join of the
   thread-side's Thread object, in the same body. *)
let may_happen_in_parallel (tf : Threadify.t) (w : Detect.warning) ((tu, tfr) : int * int) :
    bool =
  let pta = tf.Threadify.pta in
  let prog = pta.Pta.prog in
  let check ~(cb_site : Detect.site) ~(thread : Threadify.thread) =
    let tobjs = thread_objects tf thread in
    if IntSet.is_empty tobjs then true
    else
      match Prog.body prog cb_site.Detect.s_mref with
      | None -> true
      | Some body -> (
          let table = joined_before pta ~inst:cb_site.Detect.s_inst body in
          match Hashtbl.find_opt table cb_site.Detect.s_instr.Instr.id with
          | Some joined -> not (IntSet.subset tobjs joined)
          | None -> true)
  in
  let ut = Threadify.thread tf tu and ft = Threadify.thread tf tfr in
  match (ut.Threadify.th_kind, ft.Threadify.th_kind) with
  | _, Threadify.Native_thread when Threadify.on_looper ut ->
      check ~cb_site:w.Detect.w_use ~thread:ft
  | Threadify.Native_thread, _ when Threadify.on_looper ft ->
      check ~cb_site:w.Detect.w_free ~thread:ut
  | _, _ -> true

(* Apply MHP as an extra filter, for the ablation: how many warnings
   would Chord's join-based MHP have pruned? *)
let prune (tf : Threadify.t) (ws : Detect.warning list) : Detect.warning list =
  List.filter_map
    (fun (w : Detect.warning) ->
      let pairs = List.filter (may_happen_in_parallel tf w) w.Detect.w_pairs in
      match pairs with [] -> None | _ :: _ -> Some { w with Detect.w_pairs = pairs })
    ws
