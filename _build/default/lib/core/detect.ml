(* UAF ordering-violation detection (§5).

   After threadification, collect every {e use} ([getfield]) and {e free}
   ([putfield] of the null literal) executed by each modeled thread, and
   report a potential UAF for every use/free pair on the same abstract
   field — base points-to sets overlap on an escaping object — coming
   from two different modeled threads.

   Per the paper: lockset analysis is ignored at this stage (locks do not
   prevent ordering violations) and no MHP analysis is used; the
   happens-before filters (§6) replace it. The final candidate join runs
   on the Datalog engine, mirroring Chord's bddbddb-based pipeline. *)

open Nadroid_lang
open Nadroid_ir
open Nadroid_analysis
module IntSet = Pta.IntSet

type site = { s_inst : int; s_mref : Instr.mref; s_instr : Instr.t }

let pp_site ppf s =
  Fmt.pf ppf "%a#%d" Instr.pp_mref s.s_mref s.s_instr.Instr.id

let site_key s = Fmt.str "%s.%s#%d" s.s_mref.Instr.mr_class s.s_mref.Instr.mr_name s.s_instr.Instr.id

type access = {
  a_thread : int;  (** thread id *)
  a_site : site;
  a_field : Instr.fref;
  a_objs : IntSet.t;  (** abstract base objects; empty for statics *)
  a_static : bool;
}

type warning = {
  w_field : Instr.fref;
  w_use : site;
  w_free : site;
  w_pairs : (int * int) list;  (** (use-thread, free-thread) pairs, pruned by filters *)
}

let warning_key w = (site_key w.w_use, site_key w.w_free)

let field_key (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

(* Collect uses and frees per thread. *)
let collect_accesses (tf : Threadify.t) : access list * access list =
  let pta = tf.Threadify.pta in
  let prog = pta.Pta.prog in
  let uses = ref [] and frees = ref [] in
  List.iter
    (fun th ->
      if th.Threadify.th_entry >= 0 then
        IntSet.iter
          (fun inst_id ->
            let inst = Pta.instance pta inst_id in
            match Prog.body prog inst.Pta.i_mref with
            | None -> ()
            | Some body ->
                Cfg.iter_instrs
                  (fun ins ->
                    let site = { s_inst = inst_id; s_mref = inst.Pta.i_mref; s_instr = ins } in
                    match ins.Instr.i with
                    | Instr.Getfield (_, o, fr) ->
                        uses :=
                          {
                            a_thread = th.Threadify.th_id;
                            a_site = site;
                            a_field = fr;
                            a_objs = Pta.pts_var pta ~inst:inst_id ~v:o;
                            a_static = false;
                          }
                          :: !uses
                    | Instr.Getstatic (_, fr) ->
                        uses :=
                          {
                            a_thread = th.Threadify.th_id;
                            a_site = site;
                            a_field = fr;
                            a_objs = IntSet.empty;
                            a_static = true;
                          }
                          :: !uses
                    | Instr.Putfield (o, fr, _, Instr.Src_null) ->
                        frees :=
                          {
                            a_thread = th.Threadify.th_id;
                            a_site = site;
                            a_field = fr;
                            a_objs = Pta.pts_var pta ~inst:inst_id ~v:o;
                            a_static = false;
                          }
                          :: !frees
                    | Instr.Putstatic (fr, _, Instr.Src_null) ->
                        frees :=
                          {
                            a_thread = th.Threadify.th_id;
                            a_site = site;
                            a_field = fr;
                            a_objs = IntSet.empty;
                            a_static = true;
                          }
                          :: !frees
                    | Instr.Putfield (_, _, _, Instr.Src_var)
                    | Instr.Putstatic (_, _, Instr.Src_var)
                    | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Call _
                    | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _
                    | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
                        ())
                  body)
          (Threadify.instances_of tf th))
    (Threadify.threads tf);
  (!uses, !frees)

(* Do two accesses touch the same abstract memory? Statics match by field
   key; instance fields need a common, escaping base object. *)
let may_alias (esc : Escape.t) (a : access) (b : access) =
  String.equal (field_key a.a_field) (field_key b.a_field)
  &&
  if a.a_static || b.a_static then true
  else
    let common = IntSet.inter a.a_objs b.a_objs in
    IntSet.exists (fun oid -> Escape.escapes esc oid) common

(* The candidate join, expressed in Datalog over interned access ids:
     race(U, F) :- use_at(U, K), free_at(F, K), alias(U, F).
   [alias] is loaded as an EDB relation computed from points-to overlap. *)
let candidate_join (esc : Escape.t) (uses : access array) (frees : access array) :
    (int * int) list =
  let db = Nadroid_datalog.Engine.create () in
  let uid i = "u" ^ string_of_int i and fid i = "f" ^ string_of_int i in
  Array.iteri (fun i a -> Nadroid_datalog.Engine.fact db "use_at" [ uid i; field_key a.a_field ]) uses;
  Array.iteri (fun i a -> Nadroid_datalog.Engine.fact db "free_at" [ fid i; field_key a.a_field ]) frees;
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if a.a_thread <> b.a_thread && may_alias esc a b then
            Nadroid_datalog.Engine.fact db "alias" [ uid i; fid j ])
        frees)
    uses;
  let v x = Nadroid_datalog.Engine.Var x in
  Nadroid_datalog.Engine.add_rule db
    (Nadroid_datalog.Engine.atom "race" [ v "u"; v "f" ])
    [
      Nadroid_datalog.Engine.Pos (Nadroid_datalog.Engine.atom "use_at" [ v "u"; v "k" ]);
      Nadroid_datalog.Engine.Pos (Nadroid_datalog.Engine.atom "free_at" [ v "f"; v "k" ]);
      Nadroid_datalog.Engine.Pos (Nadroid_datalog.Engine.atom "alias" [ v "u"; v "f" ]);
    ];
  List.filter_map
    (fun row ->
      match row with
      | [| u; f |] ->
          let ui = int_of_string (String.sub u 1 (String.length u - 1)) in
          let fi = int_of_string (String.sub f 1 (String.length f - 1)) in
          Some (ui, fi)
      | _ -> None)
    (Nadroid_datalog.Engine.query db "race")

(* Detect all potential UAF warnings, deduplicated to (use site, free
   site) pairs as in the paper ("each warning is a pair of free-use
   operations", §8.3). *)
let run (tf : Threadify.t) (esc : Escape.t) : warning list =
  let uses_l, frees_l = collect_accesses tf in
  let uses = Array.of_list uses_l and frees = Array.of_list frees_l in
  let pairs = candidate_join esc uses frees in
  let table : (string * string, warning ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (ui, fi) ->
      let u = uses.(ui) and f = frees.(fi) in
      let key = (site_key u.a_site, site_key f.a_site) in
      match Hashtbl.find_opt table key with
      | Some w ->
          let p = (u.a_thread, f.a_thread) in
          if not (List.mem p !w.w_pairs) then w := { !w with w_pairs = p :: !w.w_pairs }
      | None ->
          let w =
            ref
              {
                w_field = u.a_field;
                w_use = u.a_site;
                w_free = f.a_site;
                w_pairs = [ (u.a_thread, f.a_thread) ];
              }
          in
          Hashtbl.add table key w;
          order := key :: !order)
    pairs;
  List.rev_map (fun key -> !(Hashtbl.find table key)) !order

let n_warnings = List.length
