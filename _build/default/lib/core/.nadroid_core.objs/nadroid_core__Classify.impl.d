lib/core/classify.ml: Detect Fmt List Threadify
