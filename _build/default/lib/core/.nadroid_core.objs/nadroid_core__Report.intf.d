lib/core/report.mli: Classify Detect Fmt Format Loc Nadroid_ir Nadroid_lang Threadify
