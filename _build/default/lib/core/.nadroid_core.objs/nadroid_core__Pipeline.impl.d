lib/core/pipeline.ml: Classify Detect Escape Filters List Lockset Nadroid_analysis Nadroid_ir Nadroid_lang Prog Pta Sema String Threadify Unix
