lib/core/classify.mli: Detect Fmt Threadify
