lib/core/report.ml: Classify Detect Fmt Instr List Loc Nadroid_ir Nadroid_lang Sema String Threadify
