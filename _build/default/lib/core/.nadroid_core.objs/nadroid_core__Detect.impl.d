lib/core/detect.ml: Array Cfg Escape Fmt Hashtbl Instr List Nadroid_analysis Nadroid_datalog Nadroid_ir Nadroid_lang Prog Pta Sema String Threadify
