lib/core/detect.mli: Escape Fmt Instr Nadroid_analysis Nadroid_ir Pta Threadify
