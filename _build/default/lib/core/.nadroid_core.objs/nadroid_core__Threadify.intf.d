lib/core/threadify.mli: Fmt Hashtbl Nadroid_analysis Nadroid_android Pta
