lib/core/filters.mli: Detect Escape Fmt Lockset Nadroid_analysis Threadify
