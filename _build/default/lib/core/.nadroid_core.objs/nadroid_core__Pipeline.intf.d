lib/core/pipeline.mli: Classify Detect Escape Filters Lockset Nadroid_analysis Nadroid_ir Prog Pta Threadify
