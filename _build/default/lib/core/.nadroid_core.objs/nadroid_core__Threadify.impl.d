lib/core/threadify.ml: Api Array Buffer Callback Component Escape Fmt Hashtbl Instr List Nadroid_analysis Nadroid_android Nadroid_ir Nadroid_lang Option Printf Prog Pta Sema String
