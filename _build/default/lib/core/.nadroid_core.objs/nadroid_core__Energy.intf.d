lib/core/energy.mli: Detect Fmt Threadify
