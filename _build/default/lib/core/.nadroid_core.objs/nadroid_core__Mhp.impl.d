lib/core/mhp.ml: Cfg Dataflow Detect Hashtbl Instr List Nadroid_analysis Nadroid_android Nadroid_ir Nadroid_lang Prog Pta Sema String Threadify
