lib/core/energy.ml: Array Cfg Detect Fmt Hashtbl Instr List Nadroid_analysis Nadroid_android Nadroid_ir Nadroid_lang Prog Pta String Threadify
