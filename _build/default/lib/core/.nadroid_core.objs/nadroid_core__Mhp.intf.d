lib/core/mhp.mli: Detect Threadify
