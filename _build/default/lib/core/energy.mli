(** No-sleep / energy-bug detection — the paper's §9 extension: a wake
    lock acquired by one callback must be released on every
    continuation; when the only releases live in callbacks with no
    guaranteed order after the acquire, the device can be kept awake —
    an ordering violation between [acquire] and [release].

    Reuses the UAF machinery: the threadification forest for structure,
    points-to for wake-lock identity, and a lifecycle teardown filter
    (releases in onPause/onStop/onDestroy of the owning component are
    ordered before the app backgrounds — the MHB analogue). *)

type kind =
  | No_release  (** no aliasing release anywhere *)
  | Leaky_path  (** the acquiring callback may exit without releasing *)
  | Unordered_release  (** releases exist but are not ordered after the acquire *)

val pp_kind : kind Fmt.t

type warning = {
  nw_kind : kind;
  nw_acquire : Detect.site;
  nw_thread : int;
  nw_releases : (int * Detect.site) list;
}

val pp : warning Fmt.t

val detect : Threadify.t -> warning list
