(* No-sleep / energy-bug detection — the paper's §9 extension.

   "nAdroid can be applied to other concurrency bugs such as no-sleep
   bugs and energy bugs where racy API calls lead to ordering
   violations." A wake lock acquired by one callback must be released on
   every continuation; when the only releases live in callbacks that are
   not guaranteed to run after the acquire (no MHB order, cancellable,
   unordered UI events), the device can be kept awake forever — an
   ordering violation between [acquire] and [release] instead of between
   [putfield null] and [getfield].

   The detector reuses the same machinery as UAF detection: the
   threadification forest for callback structure, points-to for wake-lock
   identity, and an MHB-style teardown filter: a release in onPause /
   onStop / onDestroy of the owning component is guaranteed before the
   app is backgrounded, so such pairs are pruned (the analogue of the
   §6.1.1 lifecycle reasoning). *)

open Nadroid_ir
open Nadroid_analysis
module IntSet = Pta.IntSet

type kind =
  | No_release  (** no matching release is reachable anywhere *)
  | Leaky_path  (** same callback may exit without releasing *)
  | Unordered_release
      (** releases exist, but only in callbacks with no guaranteed order
          after the acquire *)

let pp_kind ppf = function
  | No_release -> Fmt.string ppf "no-release"
  | Leaky_path -> Fmt.string ppf "leaky-path"
  | Unordered_release -> Fmt.string ppf "unordered-release"

type warning = {
  nw_kind : kind;
  nw_acquire : Detect.site;
  nw_thread : int;  (** thread performing the acquire *)
  nw_releases : (int * Detect.site) list;  (** (thread, site) of aliasing releases *)
}

let pp ppf w =
  Fmt.pf ppf "no-sleep %a: acquire at %a%a" pp_kind w.nw_kind Detect.pp_site w.nw_acquire
    (fun ppf rels ->
      match rels with
      | [] -> ()
      | _ :: _ ->
          Fmt.pf ppf "; releases: %a"
            Fmt.(list ~sep:(any ", ") (using snd Detect.pp_site))
            rels)
    w.nw_releases

type lock_call = { lc_thread : int; lc_site : Detect.site; lc_objs : IntSet.t }

(* All WakeLock.acquire / WakeLock.release calls per thread. *)
let collect (tf : Threadify.t) : lock_call list * lock_call list =
  let pta = tf.Threadify.pta in
  let prog = pta.Pta.prog in
  let acquires = ref [] and releases = ref [] in
  List.iter
    (fun th ->
      if th.Threadify.th_entry >= 0 then
        IntSet.iter
          (fun inst_id ->
            let inst = Pta.instance pta inst_id in
            match Prog.body prog inst.Pta.i_mref with
            | None -> ()
            | Some body ->
                Cfg.iter_instrs
                  (fun ins ->
                    match ins.Instr.i with
                    | Instr.Call (_, recv, ms, _)
                      when String.equal ms.Nadroid_lang.Sema.ms_class "WakeLock" ->
                        let call =
                          {
                            lc_thread = th.Threadify.th_id;
                            lc_site =
                              {
                                Detect.s_inst = inst_id;
                                s_mref = inst.Pta.i_mref;
                                s_instr = ins;
                              };
                            lc_objs = Pta.pts_var pta ~inst:inst_id ~v:recv;
                          }
                        in
                        if String.equal ms.Nadroid_lang.Sema.ms_name "acquire" then
                          acquires := call :: !acquires
                        else if String.equal ms.Nadroid_lang.Sema.ms_name "release" then
                          releases := call :: !releases
                    | Instr.Call _ | Instr.Move _ | Instr.Const _ | Instr.New _
                    | Instr.Getfield _ | Instr.Putfield _ | Instr.Getstatic _
                    | Instr.Putstatic _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _
                    | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
                        ())
                  body)
          (Threadify.instances_of tf th))
    (Threadify.threads tf);
  (!acquires, !releases)

let overlaps a b = not (IntSet.is_empty (IntSet.inter a b))

(* May the callback exit after [acquire] without passing an aliasing
   release? Intra-procedural path-insensitive may-analysis over the CFG,
   mirroring how the UAF filters reason about callbacks. *)
let leaky_path (prog : Prog.t) (acq : lock_call) : bool =
  match Prog.body prog acq.lc_site.Detect.s_mref with
  | None -> true
  | Some body ->
      let releases_here ins =
        match ins.Instr.i with
        | Instr.Call (_, _, ms, _) ->
            String.equal ms.Nadroid_lang.Sema.ms_class "WakeLock"
            && String.equal ms.Nadroid_lang.Sema.ms_name "release"
        | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Putfield _
        | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _ | Instr.Unop _
        | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
            false
      in
      (* walk from the acquire to block exits; a block whose suffix (or a
         reachable successor) hits a release is safe along that path *)
      let blocks = body.Cfg.blocks in
      let acq_block =
        Array.to_list blocks
        |> List.find_opt (fun blk ->
               List.exists (fun i -> i.Instr.id = acq.lc_site.Detect.s_instr.Instr.id) blk.Cfg.b_instrs)
      in
      (match acq_block with
      | None -> true
      | Some blk0 ->
          (* instructions after the acquire within its own block *)
          let rec after = function
            | [] -> []
            | i :: rest ->
                if i.Instr.id = acq.lc_site.Detect.s_instr.Instr.id then rest else after rest
          in
          let visited = Hashtbl.create 8 in
          (* returns true when an exit is reachable without a release *)
          let rec escapes_block instrs blk =
            if List.exists releases_here instrs then false
            else
              match blk.Cfg.b_term with
              | Cfg.Ret _ -> true
              | Cfg.Goto n -> escapes n
              | Cfg.If { t; f; _ } -> escapes t || escapes f
          and escapes bid =
            if Hashtbl.mem visited bid then false
            else begin
              Hashtbl.add visited bid ();
              let blk = blocks.(bid) in
              escapes_block blk.Cfg.b_instrs blk
            end
          in
          escapes_block (after blk0.Cfg.b_instrs) blk0)

(* Is a release guaranteed to run once the app leaves the foreground?
   Releases in the teardown callbacks (onPause/onStop/onDestroy) of the
   acquiring thread's component qualify — the lifecycle automaton forces
   them before the device would want to sleep. *)
let teardown_release (tf : Threadify.t) (acq : lock_call) (rel : lock_call) : bool =
  let rth = Threadify.thread tf rel.lc_thread in
  let ath = Threadify.thread tf acq.lc_thread in
  match rth.Threadify.th_kind with
  | Threadify.Entry_cb (Nadroid_android.Callback.Lifecycle m)
  | Threadify.Entry_cb (Nadroid_android.Callback.Service_lifecycle m) ->
      List.mem m [ "onPause"; "onStop"; "onDestroy" ]
      && (match (ath.Threadify.th_component, rth.Threadify.th_component) with
         | Some a, Some b -> String.equal a b
         | (Some _ | None), _ -> false)
  | Threadify.Dummy_main | Threadify.Entry_cb _ | Threadify.Posted_cb _
  | Threadify.Native_thread | Threadify.Async_background ->
      false

(* Detect no-sleep ordering violations over a threadified program. *)
let detect (tf : Threadify.t) : warning list =
  let prog = tf.Threadify.pta.Pta.prog in
  let acquires, releases = collect tf in
  List.filter_map
    (fun acq ->
      let aliasing = List.filter (fun rel -> overlaps acq.lc_objs rel.lc_objs) releases in
      let mk kind =
        Some
          {
            nw_kind = kind;
            nw_acquire = acq.lc_site;
            nw_thread = acq.lc_thread;
            nw_releases = List.map (fun r -> (r.lc_thread, r.lc_site)) aliasing;
          }
      in
      match aliasing with
      | [] -> mk No_release
      | _ :: _ ->
          let same_cb_safe =
            List.exists (fun r -> r.lc_thread = acq.lc_thread) aliasing
            && not (leaky_path prog acq)
          in
          let teardown_safe = List.exists (fun r -> teardown_release tf acq r) aliasing in
          if same_cb_safe || teardown_safe then None
          else if List.exists (fun r -> r.lc_thread = acq.lc_thread) aliasing then
            mk Leaky_path
          else mk Unordered_release)
    acquires
