(** Classification of warnings by the origins of their use and free
    operations (paper §7): EC-EC, EC-PC, PC-PC, C-RT (the thread descends
    from the racing callback), C-NT. Used to rank reports by the paper's
    hypothesis that more asynchronous interactions are likelier bugs. *)

type category = EC_EC | EC_PC | PC_PC | C_RT | C_NT

val all : category list

val to_string : category -> string

val pp : category Fmt.t

val of_pair : Threadify.t -> int -> int -> category
(** Category of a single (use-thread, free-thread) pair. *)

val rank : category -> int
(** C-NT > C-RT > PC-PC > EC-PC > EC-EC. *)

val of_warning : Threadify.t -> Detect.warning -> category
(** The most asynchronous category among the warning's pairs. *)

val histogram : Threadify.t -> Detect.warning list -> (category * int) list
