(** May-Happen-in-Parallel analysis — implemented to justify dropping it.

    The paper removes Chord's MHP analysis (§5) because Android code
    rarely uses blocking cross-thread synchronisation. This module
    implements the join-based core of such an analysis so the claim can
    be measured: a callback access ordered after [Thread.join] of the
    racing thread's object cannot run in parallel with it. *)

val may_happen_in_parallel : Threadify.t -> Detect.warning -> int * int -> bool

val prune : Threadify.t -> Detect.warning list -> Detect.warning list
(** Drop warning pairs that provably cannot run in parallel; the
    `ablation` benchmark reports how little this buys on the corpus. *)
