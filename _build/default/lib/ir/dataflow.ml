(* A small generic forward dataflow framework over {!Cfg} bodies.

   Clients provide a join semilattice and transfer functions for
   instructions and for conditional edges (the latter lets analyses pick
   up the non-null facts the lowering attached to branches). The engine
   iterates to a fixpoint in reverse post-order.

   Used for the must-non-null analysis behind the If-Guard filter and the
   must-allocated analysis behind the Intra-Allocation filter (§6.1). *)

type edge = Edge_goto | Edge_true | Edge_false

type 'a spec = {
  init_entry : 'a;  (** fact at the entry of block 0 *)
  init_other : 'a;  (** initial fact for all other blocks (top for a must analysis) *)
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  transfer_instr : Instr.t -> 'a -> 'a;
  transfer_edge : Cfg.block -> edge -> 'a -> 'a;
}

type 'a result = {
  block_in : 'a array;  (** fact at block entry, indexed by block id *)
  spec : 'a spec;
  body : Cfg.body;
}

let block_out spec blk fact = List.fold_left (fun f ins -> spec.transfer_instr ins f) fact blk.Cfg.b_instrs

let run (body : Cfg.body) (spec : 'a spec) : 'a result =
  let n = Array.length body.Cfg.blocks in
  let block_in = Array.make n spec.init_other in
  block_in.(Cfg.entry_id) <- spec.init_entry;
  let order = Cfg.reverse_postorder body in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        let blk = body.Cfg.blocks.(bid) in
        let out = block_out spec blk block_in.(bid) in
        let push succ edge =
          let v = spec.transfer_edge blk edge out in
          (* the entry block keeps its boundary fact; joining would lose it *)
          let joined =
            if succ = Cfg.entry_id then block_in.(succ) else spec.join block_in.(succ) v
          in
          if not (spec.equal joined block_in.(succ)) then begin
            block_in.(succ) <- joined;
            changed := true
          end
        in
        match blk.Cfg.b_term with
        | Cfg.Goto s -> push s Edge_goto
        | Cfg.If { t; f; _ } ->
            push t Edge_true;
            push f Edge_false
        | Cfg.Ret _ -> ())
      order
  done;
  { block_in; spec; body }

(* Replay transfer functions inside a block to obtain the fact holding
   just before each instruction. [f] receives (instr, fact-before). *)
let iter_facts (r : 'a result) (f : Instr.t -> 'a -> unit) =
  Array.iter
    (fun blk ->
      let fact = ref r.block_in.(blk.Cfg.b_id) in
      List.iter
        (fun ins ->
          f ins !fact;
          fact := r.spec.transfer_instr ins !fact)
        blk.Cfg.b_instrs)
    r.body.Cfg.blocks

(* Fact holding just before instruction [id], if the instruction exists. *)
let fact_before (r : 'a result) ~(instr_id : int) : 'a option =
  let found = ref None in
  iter_facts r (fun ins fact -> if ins.Instr.id = instr_id then found := Some fact);
  !found
