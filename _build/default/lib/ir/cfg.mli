(** Control-flow graphs for lowered method bodies. *)

open Nadroid_lang

(** What is known non-null when a conditional edge is taken; recorded by
    the lowering for [x != null] / [this.f != null] conditions and
    consumed by the If-Guard filter (§6.1.2). *)
type nonnull_fact =
  | Nn_var of Instr.var
  | Nn_field of Instr.fref  (** field read off [this] / the outer chain *)

val pp_nonnull_fact : nonnull_fact Fmt.t

type terminator =
  | Goto of int
  | If of {
      cond : Instr.var;
      t : int;
      f : int;
      t_facts : nonnull_fact list;
      f_facts : nonnull_fact list;
    }
  | Ret of Instr.var option

type block = {
  b_id : int;
  mutable b_instrs : Instr.t list;  (** execution order *)
  mutable b_term : terminator;
}

type body = {
  mref : Instr.mref;
  params : Instr.var list;  (** [this] first, then declared parameters *)
  ret_ty : Ast.ty;
  mutable blocks : block array;  (** indexed by [b_id]; entry is block 0 *)
  n_vars : int;
  loc : Loc.t;
}

val entry_id : int

val block : body -> int -> block

val successors : block -> int list

val predecessors : body -> int list array

val iter_instrs : (Instr.t -> unit) -> body -> unit

val fold_instrs : ('a -> Instr.t -> 'a) -> 'a -> body -> 'a

val find_instr : body -> int -> Instr.t option

val n_instrs : body -> int

val pp_terminator : terminator Fmt.t

val pp : body Fmt.t

val reverse_postorder : body -> int list
(** Reverse post-order of reachable blocks, starting at the entry. *)
