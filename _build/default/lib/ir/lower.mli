(** Lowering of resolved MiniAndroid methods to the CFG-based IR.

    Guarantees relied on downstream:
    - [&&] / [||] are short-circuiting and lowered to control flow;
    - conditional branches carry {!Cfg.nonnull_fact}s for [x != null] /
      [this.f != null] conditions (consumed by the If-Guard filter);
    - anonymous-class allocations store the current [this] into the
      implicit [outer] field right after the [new];
    - a [putfield] whose right-hand side is the [null] literal is tagged
      {!Instr.Src_null} — the paper's {e free} operations;
    - every [new] expression gets its own fresh temporary (exploited by
      the must-allocation analysis). *)

val lower_method : Nadroid_lang.Sema.t -> Nadroid_lang.Sema.rmeth -> Cfg.body
