(* Bytecode-like intermediate representation.

   MiniAndroid methods are lowered (see {!Lower}) to three-address
   instructions over numbered local slots, organised into basic blocks
   ({!Cfg}). The instruction set mirrors the fragment of Java bytecode
   nAdroid's analyses consume: [getfield]/[putfield] (uses and frees),
   [new] (allocation sites), virtual calls, and monitor enter/exit for
   the lockset analysis. *)

open Nadroid_lang

type var = { v_id : int; v_name : string }
(** A local slot. Slot 0 is always [this]. *)

let pp_var ppf v = Fmt.pf ppf "%s/%d" v.v_name v.v_id

let var_equal a b = a.v_id = b.v_id

type const = Cnull | Cint of int | Cbool of bool | Cstr of string

let pp_const ppf = function
  | Cnull -> Fmt.string ppf "null"
  | Cint n -> Fmt.int ppf n
  | Cbool b -> Fmt.bool ppf b
  | Cstr s -> Fmt.pf ppf "%S" s

type mref = { mr_class : string; mr_name : string }
(** Method reference: declaring class + method name (names are unique per
    class in MiniAndroid, so no descriptor is needed). *)

let pp_mref ppf m = Fmt.pf ppf "%s.%s" m.mr_class m.mr_name

let mref_equal a b = String.equal a.mr_class b.mr_class && String.equal a.mr_name b.mr_name

let mref_compare a b =
  match String.compare a.mr_class b.mr_class with
  | 0 -> String.compare a.mr_name b.mr_name
  | c -> c

type alloc_site = {
  as_method : mref;  (** method containing the [new] *)
  as_idx : int;  (** index of the [new] within that method *)
  as_class : string;  (** class being allocated *)
  as_loc : Loc.t;
}

let pp_alloc_site ppf a = Fmt.pf ppf "%a/new%d:%s" pp_mref a.as_method a.as_idx a.as_class

let alloc_site_compare a b =
  match mref_compare a.as_method b.as_method with 0 -> Int.compare a.as_idx b.as_idx | c -> c

let alloc_site_equal a b = alloc_site_compare a b = 0

type fref = Sema.field_ref

let pp_fref ppf (f : fref) = Fmt.pf ppf "%s.%s" f.Sema.fr_class f.Sema.fr_name

let fref_equal (a : fref) (b : fref) =
  String.equal a.Sema.fr_class b.Sema.fr_class && String.equal a.Sema.fr_name b.Sema.fr_name

(* Provenance of the value stored by a [PutField]: a field set to the
   [null] literal is a *free* in the paper's sense (§5). *)
type put_src = Src_null | Src_var

type binop = Ast.binop

type unop = Ast.unop

type kind =
  | Move of var * var  (** dst, src *)
  | Const of var * const
  | New of var * alloc_site * Sema.method_sig option * var list
      (** dst, site, optional [init] method, init args. The lowering of an
          anonymous-class allocation additionally emits a [PutField] of
          the implicit [outer] field right after the [New]. *)
  | Getfield of var * var * fref  (** dst = obj.f — a {e use} of [f] *)
  | Putfield of var * fref * var * put_src  (** obj.f = src — a {e free} when [Src_null] *)
  | Getstatic of var * fref
  | Putstatic of fref * var * put_src
  | Call of var option * var * Sema.method_sig * var list  (** dst, recv, callee, args *)
  | Intrinsic of var option * string * var list
  | Unop of var * unop * var
  | Binop of var * binop * var * var
  | Monitor_enter of var
  | Monitor_exit of var

type t = {
  i : kind;
  loc : Loc.t;
  id : int;  (** unique within the enclosing method body *)
}

(* Pretty-printing, mainly for tests and [--dump-ir]. *)
let pp ppf ins =
  match ins.i with
  | Move (d, s) -> Fmt.pf ppf "%a = %a" pp_var d pp_var s
  | Const (d, c) -> Fmt.pf ppf "%a = %a" pp_var d pp_const c
  | New (d, site, _, args) ->
      Fmt.pf ppf "%a = new %s(%a) @%d" pp_var d site.as_class
        Fmt.(list ~sep:(any ", ") pp_var)
        args site.as_idx
  | Getfield (d, o, f) -> Fmt.pf ppf "%a = %a.%a" pp_var d pp_var o pp_fref f
  | Putfield (o, f, s, Src_var) -> Fmt.pf ppf "%a.%a = %a" pp_var o pp_fref f pp_var s
  | Putfield (o, f, _, Src_null) -> Fmt.pf ppf "%a.%a = null  ; free" pp_var o pp_fref f
  | Getstatic (d, f) -> Fmt.pf ppf "%a = static %a" pp_var d pp_fref f
  | Putstatic (f, s, Src_var) -> Fmt.pf ppf "static %a = %a" pp_fref f pp_var s
  | Putstatic (f, _, Src_null) -> Fmt.pf ppf "static %a = null  ; free" pp_fref f
  | Call (d, r, ms, args) ->
      let pp_dst ppf = function None -> () | Some d -> Fmt.pf ppf "%a = " pp_var d in
      Fmt.pf ppf "%a%a.%s.%s(%a)" pp_dst d pp_var r ms.Sema.ms_class ms.Sema.ms_name
        Fmt.(list ~sep:(any ", ") pp_var)
        args
  | Intrinsic (d, name, args) ->
      let pp_dst ppf = function None -> () | Some d -> Fmt.pf ppf "%a = " pp_var d in
      Fmt.pf ppf "%a%s!(%a)" pp_dst d name Fmt.(list ~sep:(any ", ") pp_var) args
  | Unop (d, op, a) -> Fmt.pf ppf "%a = %a%a" pp_var d Ast.pp_unop op pp_var a
  | Binop (d, op, a, b) ->
      Fmt.pf ppf "%a = %a %a %a" pp_var d pp_var a Ast.pp_binop op pp_var b
  | Monitor_enter v -> Fmt.pf ppf "monitorenter %a" pp_var v
  | Monitor_exit v -> Fmt.pf ppf "monitorexit %a" pp_var v

(* Variables defined / used by an instruction; used by dataflow. *)
let defs ins =
  match ins.i with
  | Move (d, _)
  | Const (d, _)
  | New (d, _, _, _)
  | Getfield (d, _, _)
  | Getstatic (d, _)
  | Unop (d, _, _)
  | Binop (d, _, _, _) ->
      [ d ]
  | Putfield _ | Putstatic _ | Monitor_enter _ | Monitor_exit _ -> []
  | Call (d, _, _, _) | Intrinsic (d, _, _) -> Option.to_list d

let uses ins =
  match ins.i with
  | Move (_, s) -> [ s ]
  | Const _ -> []
  | New (_, _, _, args) -> args
  | Getfield (_, o, _) -> [ o ]
  | Putfield (o, _, s, Src_var) -> [ o; s ]
  | Putfield (o, _, _, Src_null) -> [ o ]
  | Getstatic _ -> []
  | Putstatic (_, s, Src_var) -> [ s ]
  | Putstatic (_, _, Src_null) -> []
  | Call (_, r, _, args) -> r :: args
  | Intrinsic (_, _, args) -> args
  | Unop (_, _, a) -> [ a ]
  | Binop (_, _, a, b) -> [ a; b ]
  | Monitor_enter v | Monitor_exit v -> [ v ]
