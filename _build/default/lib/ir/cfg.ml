(* Control-flow graphs for lowered method bodies. *)

open Nadroid_lang

(* Facts attached to conditional edges: what is known non-null when the
   edge is taken. The lowering records them for conditions of the shape
   [x != null], [this.f != null] (possibly through an outer chain) and
   their negations; the If-Guard filter (§6.1.2) consumes them. *)
type nonnull_fact =
  | Nn_var of Instr.var  (** this local is non-null *)
  | Nn_field of Instr.fref  (** field [f] (read off [this]/outer) is non-null *)

let pp_nonnull_fact ppf = function
  | Nn_var v -> Fmt.pf ppf "%a!=null" Instr.pp_var v
  | Nn_field f -> Fmt.pf ppf "%a!=null" Instr.pp_fref f

type terminator =
  | Goto of int
  | If of {
      cond : Instr.var;
      t : int;
      f : int;
      t_facts : nonnull_fact list;  (** known non-null on the true edge *)
      f_facts : nonnull_fact list;  (** known non-null on the false edge *)
    }
  | Ret of Instr.var option

type block = {
  b_id : int;
  mutable b_instrs : Instr.t list;  (** in execution order *)
  mutable b_term : terminator;
}

type body = {
  mref : Instr.mref;
  params : Instr.var list;  (** [this] first, then declared parameters *)
  ret_ty : Ast.ty;
  mutable blocks : block array;  (** indexed by [b_id]; entry is block 0 *)
  n_vars : int;  (** number of local slots (params + locals + temps) *)
  loc : Loc.t;
}

let entry_id = 0

let block body id = body.blocks.(id)

let successors blk =
  match blk.b_term with Goto n -> [ n ] | If { t; f; _ } -> [ t; f ] | Ret _ -> []

let predecessors body : int list array =
  let preds = Array.make (Array.length body.blocks) [] in
  Array.iter
    (fun blk -> List.iter (fun s -> preds.(s) <- blk.b_id :: preds.(s)) (successors blk))
    body.blocks;
  preds

let iter_instrs f body = Array.iter (fun blk -> List.iter f blk.b_instrs) body.blocks

let fold_instrs f acc body =
  Array.fold_left (fun acc blk -> List.fold_left f acc blk.b_instrs) acc body.blocks

let find_instr body id =
  let found = ref None in
  iter_instrs (fun ins -> if ins.Instr.id = id then found := Some ins) body;
  !found

let n_instrs body = fold_instrs (fun n _ -> n + 1) 0 body

let pp_terminator ppf = function
  | Goto n -> Fmt.pf ppf "goto B%d" n
  | If { cond; t; f; t_facts; f_facts } ->
      Fmt.pf ppf "if %a then B%d else B%d" Instr.pp_var cond t f;
      if t_facts <> [] then
        Fmt.pf ppf "  [T: %a]" Fmt.(list ~sep:(any ", ") pp_nonnull_fact) t_facts;
      if f_facts <> [] then
        Fmt.pf ppf "  [F: %a]" Fmt.(list ~sep:(any ", ") pp_nonnull_fact) f_facts
  | Ret None -> Fmt.string ppf "return"
  | Ret (Some v) -> Fmt.pf ppf "return %a" Instr.pp_var v

let pp ppf body =
  Fmt.pf ppf "%a(%a) : %a {@\n" Instr.pp_mref body.mref
    Fmt.(list ~sep:(any ", ") Instr.pp_var)
    body.params Ast.pp_ty body.ret_ty;
  Array.iter
    (fun blk ->
      Fmt.pf ppf " B%d:@\n" blk.b_id;
      List.iter (fun ins -> Fmt.pf ppf "   %a@\n" Instr.pp ins) blk.b_instrs;
      Fmt.pf ppf "   %a@\n" pp_terminator blk.b_term)
    body.blocks;
  Fmt.pf ppf "}"

(* Reverse-post-order of reachable blocks: the iteration order used by the
   dataflow engine. *)
let reverse_postorder body : int list =
  let n = Array.length body.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs (successors body.blocks.(id));
      order := id :: !order
    end
  in
  dfs entry_id;
  !order
