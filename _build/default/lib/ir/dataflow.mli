(** A small generic forward dataflow engine over {!Cfg} bodies.

    Clients provide a join semilattice and transfer functions for
    instructions and conditional edges (the latter lets analyses pick up
    the non-null facts recorded on branches). Iterates to fixpoint in
    reverse post-order. *)

type edge = Edge_goto | Edge_true | Edge_false

type 'a spec = {
  init_entry : 'a;  (** boundary fact at the entry block *)
  init_other : 'a;  (** initial fact elsewhere (top for a must-analysis) *)
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  transfer_instr : Instr.t -> 'a -> 'a;
  transfer_edge : Cfg.block -> edge -> 'a -> 'a;
}

type 'a result

val run : Cfg.body -> 'a spec -> 'a result

val iter_facts : 'a result -> (Instr.t -> 'a -> unit) -> unit
(** Replay transfers inside each block, calling [f instr fact-before]. *)

val fact_before : 'a result -> instr_id:int -> 'a option
