(** Bytecode-like intermediate representation.

    MiniAndroid methods lower to three-address instructions over numbered
    local slots, organised into basic blocks ({!Cfg}). The instruction
    set mirrors the fragment of Java bytecode nAdroid's analyses consume:
    [getfield]/[putfield] (uses and frees), [new] (allocation sites),
    virtual calls, and monitor enter/exit for the lockset analysis. *)

open Nadroid_lang

type var = { v_id : int; v_name : string }
(** A local slot; slot 0 is always [this]. *)

val pp_var : var Fmt.t

val var_equal : var -> var -> bool

type const = Cnull | Cint of int | Cbool of bool | Cstr of string

val pp_const : const Fmt.t

type mref = { mr_class : string; mr_name : string }
(** Method reference: declaring class + method name. *)

val pp_mref : mref Fmt.t

val mref_equal : mref -> mref -> bool

val mref_compare : mref -> mref -> int

type alloc_site = {
  as_method : mref;  (** method containing the [new] *)
  as_idx : int;  (** index of the [new] within that method *)
  as_class : string;
  as_loc : Loc.t;
}

val pp_alloc_site : alloc_site Fmt.t

val alloc_site_compare : alloc_site -> alloc_site -> int

val alloc_site_equal : alloc_site -> alloc_site -> bool

type fref = Sema.field_ref

val pp_fref : fref Fmt.t

val fref_equal : fref -> fref -> bool

(** Provenance of a stored value: a field set to the [null] literal is a
    {e free} in the paper's sense (§5). *)
type put_src = Src_null | Src_var

type binop = Ast.binop

type unop = Ast.unop

type kind =
  | Move of var * var
  | Const of var * const
  | New of var * alloc_site * Sema.method_sig option * var list
      (** dst, site, optional [init] constructor, init args *)
  | Getfield of var * var * fref  (** a {e use} of the field *)
  | Putfield of var * fref * var * put_src  (** a {e free} when [Src_null] *)
  | Getstatic of var * fref
  | Putstatic of fref * var * put_src
  | Call of var option * var * Sema.method_sig * var list
  | Intrinsic of var option * string * var list
  | Unop of var * unop * var
  | Binop of var * binop * var * var
  | Monitor_enter of var
  | Monitor_exit of var

type t = {
  i : kind;
  loc : Loc.t;
  id : int;  (** unique within the enclosing method body *)
}

val pp : t Fmt.t

val defs : t -> var list

val uses : t -> var list
