(** A whole lowered program: the resolved class table plus one CFG body
    per method (builtins included). *)

type t = {
  sema : Nadroid_lang.Sema.t;
  bodies : (string, Cfg.body) Hashtbl.t;  (** keyed by ["Class.method"] *)
}

val of_sema : Nadroid_lang.Sema.t -> t

val of_source : file:string -> string -> t

val body : t -> Instr.mref -> Cfg.body option

val body_exn : t -> Instr.mref -> Cfg.body

val dispatch_body : t -> cls:string -> meth:string -> Cfg.body option
(** The most-derived implementation reached when calling [meth] on a
    dynamic instance of [cls]. *)

val iter_bodies : (Cfg.body -> unit) -> t -> unit

val fold_bodies : ('a -> Cfg.body -> 'a) -> 'a -> t -> 'a

val user_bodies : t -> Cfg.body list
(** Bodies of user-declared (non-builtin) methods. *)

val n_instrs : t -> int
