(* A whole lowered program: the resolved class table plus one CFG body per
   method (builtins included — their empty bodies are harmless, and the
   ones with real MiniAndroid bodies, e.g. [Thread.init], are analysed
   like user code). *)

open Nadroid_lang

type t = {
  sema : Sema.t;
  bodies : (string, Cfg.body) Hashtbl.t;  (* key: "Class.method" *)
}

let key_of ~cls ~meth = cls ^ "." ^ meth

let key_of_mref (m : Instr.mref) = key_of ~cls:m.Instr.mr_class ~meth:m.Instr.mr_name

let of_sema (sema : Sema.t) : t =
  let bodies = Hashtbl.create 256 in
  ignore
    (Sema.fold_methods sema
       (fun () cls m ->
         let body = Lower.lower_method sema m in
         Hashtbl.replace bodies (key_of ~cls:cls.Sema.rc_name ~meth:m.Sema.rm_name) body)
       ());
  { sema; bodies }

let of_source ~file src = of_sema (Sema.of_source ~file src)

let body t (m : Instr.mref) : Cfg.body option = Hashtbl.find_opt t.bodies (key_of_mref m)

let body_exn t m =
  match body t m with
  | Some b -> b
  | None -> invalid_arg ("Prog.body_exn: no body for " ^ key_of_mref m)

(* The most-derived implementation reached when calling [name] on a
   dynamic instance of [cls]. *)
let dispatch_body t ~cls ~meth : Cfg.body option =
  match Sema.dispatch t.sema cls meth with
  | None -> None
  | Some m -> body t { Instr.mr_class = m.Sema.rm_class; mr_name = m.Sema.rm_name }

let iter_bodies f t = Hashtbl.iter (fun _ b -> f b) t.bodies

let fold_bodies f acc t = Hashtbl.fold (fun _ b acc -> f acc b) t.bodies acc

(* All user-declared (non-builtin) method bodies. *)
let user_bodies t =
  List.concat_map
    (fun (c : Sema.rcls) ->
      List.filter_map
        (fun (m : Sema.rmeth) -> body t { Instr.mr_class = c.Sema.rc_name; mr_name = m.Sema.rm_name })
        c.Sema.rc_methods)
    (Sema.user_classes t.sema)

let n_instrs t = fold_bodies (fun acc b -> acc + Cfg.n_instrs b) 0 t
