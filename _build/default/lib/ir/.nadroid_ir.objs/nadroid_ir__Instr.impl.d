lib/ir/instr.ml: Ast Fmt Int Loc Nadroid_lang Option Sema String
