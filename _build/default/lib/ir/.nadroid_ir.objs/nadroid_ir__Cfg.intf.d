lib/ir/cfg.mli: Ast Fmt Instr Loc Nadroid_lang
