lib/ir/prog.ml: Cfg Hashtbl Instr List Lower Nadroid_lang Sema
