lib/ir/lower.mli: Cfg Nadroid_lang
