lib/ir/prog.mli: Cfg Hashtbl Instr Nadroid_lang
