lib/ir/dataflow.mli: Cfg Instr
