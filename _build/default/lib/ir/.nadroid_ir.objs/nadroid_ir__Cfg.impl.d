lib/ir/cfg.ml: Array Ast Fmt Instr List Loc Nadroid_lang
