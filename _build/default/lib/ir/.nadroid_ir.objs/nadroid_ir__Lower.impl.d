lib/ir/lower.ml: Array Ast Builtins Cfg Hashtbl Instr List Nadroid_lang Option Printf Sema String
