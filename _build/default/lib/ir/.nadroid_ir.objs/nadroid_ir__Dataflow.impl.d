lib/ir/dataflow.ml: Array Cfg Instr List
