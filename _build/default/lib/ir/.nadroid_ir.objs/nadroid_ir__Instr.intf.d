lib/ir/instr.mli: Ast Fmt Loc Nadroid_lang Sema
