(** Bug / idiom patterns seeded into generated corpus apps, with their
    ground-truth expectations: report as a true harmful UAF (of which
    origin category), prune (with which filter), survive as a false
    positive (from which §8.5 source), or stay invisible. *)

type pattern =
  | P_ec_pc_uaf  (** Fig 1(a): service disconnect frees, UI callback uses *)
  | P_pc_pc_uaf  (** Fig 1(b): posted runnable uses, disconnect frees *)
  | P_c_nt_uaf  (** Fig 1(c): separate worker class on a pool thread *)
  | P_c_rt_uaf  (** thread spawned by the racing callback itself *)
  | P_ec_ec_uaf
  | P_guarded  (** IG: null-check in an atomic callback *)
  | P_guarded_locked  (** IG across threads, under a common lock *)
  | P_intra_alloc  (** IA *)
  | P_mhb_service
  | P_mhb_lifecycle
  | P_mhb_async
  | P_rhb
  | P_chb
  | P_phb
  | P_ma
  | P_ur
  | P_tt
  | P_fp_path  (** surviving FP: flag-guarded infeasible path *)
  | P_fp_missing_hb  (** surviving FP: setEnabled(false) ordering *)
  | P_inj_unmodeled  (** Table 2: bug through an unmodelled callback *)
  | P_chb_error_path  (** Table 2: real bug wrongly pruned by may-CHB *)
  | P_safe  (** inert padding *)

val all_patterns : pattern list

val pattern_to_string : pattern -> string

val pp_pattern : pattern Fmt.t

type fp_cause = Fp_path_insensitive | Fp_points_to | Fp_not_reachable | Fp_missing_hb

val fp_cause_to_string : fp_cause -> string

type expectation =
  | E_true_bug of Nadroid_core.Classify.category
  | E_filtered of Nadroid_core.Filters.name
  | E_false_positive of fp_cause
  | E_none

val expectation : pattern -> expectation

type activity_spec = { act_name : string; patterns : pattern list }

type t = {
  app_name : string;
  activities : activity_spec list;
  services : int;  (** bare background services, for the T column *)
  padding : int;  (** inert helper classes, for LOC realism *)
}

(** Ground truth for one seeded pattern instance. *)
type seeded = {
  sd_app : string;
  sd_activity : string;
  sd_pattern : pattern;
  sd_field : string;  (** unqualified field name, e.g. ["f3"] *)
  sd_expect : expectation;
}
